# Build, test and reproduction targets.

GO ?= go

.PHONY: all build vet test check chaos bench figures scorecard examples \
        trace-demo clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full pre-merge gate: vet plus the test suite under the race detector.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# Chaos drills: fault injection, lane supervision and degraded-mode
# serving under concurrent load, always with the race detector.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/gateway/ ./internal/faults/

# End-to-end tracing demo: boot llmperfd, drive it with the llmperf load
# generator, print the server-side phase-breakdown table (parsed from
# Server-Timing headers) and a retained trace, then shut down.
TRACE_DEMO_ADDR ?= 127.0.0.1:18080
trace-demo:
	$(GO) build -o /tmp/llmperfd-demo ./cmd/llmperfd
	$(GO) build -o /tmp/llmperf-demo ./cmd/llmperf
	/tmp/llmperfd-demo -addr $(TRACE_DEMO_ADDR) -timescale 0.02 & \
	pid=$$!; sleep 1; \
	/tmp/llmperf-demo -url http://$(TRACE_DEMO_ADDR) -n 32 -concurrency 8 \
	    -model OPT-13B -in 128 -out 8; st=$$?; \
	echo; echo "=== one retained trace ==="; \
	curl -s "http://$(TRACE_DEMO_ADDR)/v1/traces?limit=1"; echo; \
	kill $$pid; wait $$pid 2>/dev/null; exit $$st

# One benchmark per paper table/figure plus kernel/engine/ablation benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the evaluation as text.
figures:
	$(GO) run ./cmd/figures

# PASS/FAIL report over every tracked paper claim.
scorecard:
	$(GO) run ./cmd/scorecard

examples:
	for ex in quickstart chatbot batch_analytics numa_tuning capacity_planner \
	          serving_policies offload_trace speculative streaming; do \
		echo "=== $$ex ==="; $(GO) run ./examples/$$ex || exit 1; \
	done

# Archive the outputs the reproduction is judged on.
results:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
