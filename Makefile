# Build, test and reproduction targets.

GO ?= go

.PHONY: all build vet test check chaos bench figures scorecard examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full pre-merge gate: vet plus the test suite under the race detector.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# Chaos drills: fault injection, lane supervision and degraded-mode
# serving under concurrent load, always with the race detector.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/gateway/ ./internal/faults/

# One benchmark per paper table/figure plus kernel/engine/ablation benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the evaluation as text.
figures:
	$(GO) run ./cmd/figures

# PASS/FAIL report over every tracked paper claim.
scorecard:
	$(GO) run ./cmd/scorecard

examples:
	for ex in quickstart chatbot batch_analytics numa_tuning capacity_planner \
	          serving_policies offload_trace speculative streaming; do \
		echo "=== $$ex ==="; $(GO) run ./examples/$$ex || exit 1; \
	done

# Archive the outputs the reproduction is judged on.
results:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
