# Build, test and reproduction targets.

GO ?= go

.PHONY: all build vet test check chaos chaos-cluster chaos-overload bench \
        bench-decode bench-decode-short bench-spec bench-spec-short figures \
        scorecard examples trace-demo memdemo stream-demo cluster-demo \
        cache-demo overload-demo clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full pre-merge gate: vet plus the test suite under the race detector.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# Chaos drills: fault injection, lane supervision, degraded-mode serving
# and KV memory-pressure governance (TestChaosMemPressure) under
# concurrent load, always with the race detector.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/gateway/ ./internal/faults/

# Cluster chaos drills: replica-down under 64 concurrent mixed
# streamed/buffered clients (exactly one outcome per request, no token
# delivered twice across failover, recovery after disarm), the flap
# drill, and the exactly-once property tests — under the race detector.
chaos-cluster:
	$(GO) test -race -count=1 -run 'TestClusterChaos|TestWrapSink|TestFailoverRescues' ./internal/cluster/

# End-to-end tracing demo: boot llmperfd, drive it with the llmperf load
# generator, print the server-side phase-breakdown table (parsed from
# Server-Timing headers) and a retained trace, then shut down.
TRACE_DEMO_ADDR ?= 127.0.0.1:18080
trace-demo:
	$(GO) build -o /tmp/llmperfd-demo ./cmd/llmperfd
	$(GO) build -o /tmp/llmperf-demo ./cmd/llmperf
	/tmp/llmperfd-demo -addr $(TRACE_DEMO_ADDR) -timescale 0.02 & \
	pid=$$!; sleep 1; \
	/tmp/llmperf-demo -url http://$(TRACE_DEMO_ADDR) -n 32 -concurrency 8 \
	    -model OPT-13B -in 128 -out 8; st=$$?; \
	echo; echo "=== one retained trace ==="; \
	curl -s "http://$(TRACE_DEMO_ADDR)/v1/traces?limit=1"; echo; \
	kill $$pid; wait $$pid 2>/dev/null; exit $$st

# KV-governance demo: boot llmperfd with a deliberately tiny KV budget
# (the 1 MiB request floors to 64 blocks = 1024 tokens), then overload it
# so the phase table shows preemption-by-recompute ("preempted" rows),
# the status counts show watermark shedding (HTTP 503), and the final
# /v1/kv + /readyz probes show the pool fully free and serving recovered.
MEMDEMO_ADDR ?= 127.0.0.1:18081
memdemo:
	$(GO) build -o /tmp/llmperfd-memdemo ./cmd/llmperfd
	$(GO) build -o /tmp/llmperf-memdemo ./cmd/llmperf
	/tmp/llmperfd-memdemo -addr $(MEMDEMO_ADDR) -timescale 0.02 -kv-budget-mb 1 & \
	pid=$$!; sleep 1; \
	/tmp/llmperf-memdemo -url http://$(MEMDEMO_ADDR) -n 96 -concurrency 24 \
	    -model OPT-13B -in 128 -out 16; st=$$?; \
	echo; echo "=== KV governance after the wave ==="; \
	curl -s "http://$(MEMDEMO_ADDR)/v1/kv"; echo; \
	curl -s -o /dev/null -w "readyz: HTTP %{http_code}\n" "http://$(MEMDEMO_ADDR)/readyz"; \
	kill $$pid; wait $$pid 2>/dev/null; exit $$st

# SSE streaming demo: boot llmperfd, drive it with llmperf's streaming
# client (client-side TTFT/ITL percentiles from live SSE chunks), show a
# raw curl -N stream, then scrape the first-token/ITL histograms the
# streaming path feeds into /metrics.
STREAM_DEMO_ADDR ?= 127.0.0.1:18082
stream-demo:
	$(GO) build -o /tmp/llmperfd-stream ./cmd/llmperfd
	$(GO) build -o /tmp/llmperf-stream ./cmd/llmperf
	/tmp/llmperfd-stream -addr $(STREAM_DEMO_ADDR) -timescale 0.02 & \
	pid=$$!; sleep 1; \
	/tmp/llmperf-stream -url http://$(STREAM_DEMO_ADDR) -stream -n 32 -concurrency 8 \
	    -model OPT-13B -in 128 -out 8; st=$$?; \
	echo; echo "=== raw SSE stream (curl -N) ==="; \
	curl -sN "http://$(STREAM_DEMO_ADDR)/v1/generate" -H 'Content-Type: application/json' \
	    -d '{"platform":"spr","model":"OPT-13B","in":32,"out":4,"stream":true}'; \
	echo "=== streaming metrics ==="; \
	curl -s "http://$(STREAM_DEMO_ADDR)/metrics" | \
	    grep -E '^gateway_(first_token_seconds|itl_seconds)_(count|sum)|^gateway_stream_tokens_total' \
	    || { echo "streaming metrics missing"; st=1; }; \
	kill $$pid; wait $$pid 2>/dev/null; exit $$st

# Cluster failover demo: boot 3 replicas behind the fault-tolerant
# router, run a clean wave (even replica spread), kill r1 mid-load via
# the faults admin endpoint (the wave shows failovers rescuing requests
# routed at the dead replica), then disarm and verify /v1/cluster
# reports all 3 replicas healthy again.
CLUSTER_DEMO_ADDR ?= 127.0.0.1:18083
cluster-demo:
	$(GO) build -o /tmp/llmperfd-cluster ./cmd/llmperfd
	$(GO) build -o /tmp/llmperf-cluster ./cmd/llmperf
	/tmp/llmperfd-cluster -addr $(CLUSTER_DEMO_ADDR) -timescale 0.02 \
	    -replicas 3 -route round-robin -probe-interval 50ms -retry-budget 64 & \
	pid=$$!; sleep 1; \
	echo "=== clean wave: even replica spread ==="; \
	/tmp/llmperf-cluster -url http://$(CLUSTER_DEMO_ADDR) -n 48 -concurrency 8 \
	    -model OPT-13B -in 128 -out 8; st=$$?; \
	echo; echo "=== killing replica r1 mid-load ==="; \
	( sleep 0.15; curl -s -X POST "http://$(CLUSTER_DEMO_ADDR)/v1/admin/faults" \
	    -H 'Content-Type: application/json' \
	    -d '{"rules":[{"class":"replica-down","site":"replica","lane":"r1"}]}' >/dev/null ) & \
	armpid=$$!; \
	/tmp/llmperf-cluster -url http://$(CLUSTER_DEMO_ADDR) -n 256 -concurrency 16 \
	    -model OPT-13B -in 128 -out 8 || true; \
	wait $$armpid; \
	echo; echo "=== cluster status with r1 down ==="; \
	curl -s "http://$(CLUSTER_DEMO_ADDR)/v1/cluster"; echo; \
	echo "=== disarming: r1 recovers through half-open probing ==="; \
	curl -s -X DELETE "http://$(CLUSTER_DEMO_ADDR)/v1/admin/faults" >/dev/null; \
	sleep 1; \
	/tmp/llmperf-cluster -url http://$(CLUSTER_DEMO_ADDR) -n 48 -concurrency 8 \
	    -model OPT-13B -in 128 -out 8 || st=1; \
	curl -s "http://$(CLUSTER_DEMO_ADDR)/v1/cluster" | grep -q '"healthy":3' \
	    && echo "recovery: all 3 replicas healthy" \
	    || { echo "recovery FAILED: cluster not back to 3 healthy replicas"; st=1; }; \
	kill $$pid; wait $$pid 2>/dev/null; exit $$st

# Prefix-cache demo: boot llmperfd with the radix KV cache on, replay a
# multi-turn chatbot trace twice (cache off, flush, cache on) with
# llmperf's chat mode, and assert the cache actually pays: the A/B
# prefill_reduction line must clear 30% (the issue's acceptance floor)
# and the server's /v1/cache view must report hits.
CACHE_DEMO_ADDR ?= 127.0.0.1:18084
cache-demo:
	$(GO) build -o /tmp/llmperfd-cache ./cmd/llmperfd
	$(GO) build -o /tmp/llmperf-cache ./cmd/llmperf
	/tmp/llmperfd-cache -addr $(CACHE_DEMO_ADDR) -timescale 0.02 & \
	pid=$$!; sleep 1; \
	/tmp/llmperf-cache -url http://$(CACHE_DEMO_ADDR) -chat-sessions 6 -chat-turns 4 \
	    -system-tokens 512 -model OPT-13B -in 64 -out 32 -concurrency 4 \
	    | tee /tmp/cache-demo.out; st=$$?; \
	red=$$(grep -o 'prefill_reduction=[0-9.]*' /tmp/cache-demo.out | cut -d= -f2); \
	if [ -z "$$red" ]; then echo "cache-demo FAILED: no prefill_reduction line"; st=1; \
	elif ! awk "BEGIN{exit !($$red >= 30)}"; then \
	    echo "cache-demo FAILED: prefill reduction $$red% below the 30% floor"; st=1; \
	else echo "cache-demo: prefill reduction $$red% clears the 30% floor"; fi; \
	echo "=== /v1/cache ==="; \
	curl -s "http://$(CACHE_DEMO_ADDR)/v1/cache"; echo; \
	curl -s "http://$(CACHE_DEMO_ADDR)/v1/cache" | grep -q '"hits":' \
	    || { echo "cache-demo FAILED: /v1/cache reports no hit counters"; st=1; }; \
	kill $$pid; wait $$pid 2>/dev/null; exit $$st

# Overload chaos drill: a standing load-spike at 2× saturation under 64
# mixed-class clients — interactive goodput must survive while batch is
# shed class-ordered, and the brownout ladder must walk back to nominal
# after disarm — under the race detector.
chaos-overload:
	$(GO) test -race -count=1 -run 'TestChaosOverload' ./internal/gateway/

# Overload-control demo: an A/B load ramp past saturation. With overload
# control on (the default), llmperf's 3-class ramp at 2× offered load
# must keep interactive p99 TTFT inside the SLO and interactive goodput
# at >= 85% of its peak; with -overload=false the same ramp on the
# class-blind FIFO baseline must collapse below 50% — the gap is the
# tentpole's measurable win.
OVERLOAD_DEMO_ADDR ?= 127.0.0.1:18085
overload-demo:
	$(GO) build -o /tmp/llmperfd-overload ./cmd/llmperfd
	$(GO) build -o /tmp/llmperf-overload ./cmd/llmperf
	@echo "=== A: overload control ON ==="; \
	/tmp/llmperfd-overload -addr $(OVERLOAD_DEMO_ADDR) -timescale 0.02 & \
	pid=$$!; sleep 1; \
	/tmp/llmperf-overload -url http://$(OVERLOAD_DEMO_ADDR) -ramp \
	    -concurrency 8 -model OPT-13B -in 128 -out 8 \
	    | tee /tmp/overload-demo-on.out; st=$$?; \
	echo "=== /v1/overload after the ramp ==="; \
	curl -s "http://$(OVERLOAD_DEMO_ADDR)/v1/overload"; echo; \
	kill $$pid; wait $$pid 2>/dev/null; \
	echo; echo "=== B: overload control OFF (class-blind baseline) ==="; \
	/tmp/llmperfd-overload -addr $(OVERLOAD_DEMO_ADDR) -timescale 0.02 -overload=false & \
	pid=$$!; sleep 1; \
	/tmp/llmperf-overload -url http://$(OVERLOAD_DEMO_ADDR) -ramp \
	    -concurrency 8 -model OPT-13B -in 128 -out 8 \
	    | tee /tmp/overload-demo-off.out || st=1; \
	kill $$pid; wait $$pid 2>/dev/null; \
	on=$$(grep -o 'interactive_goodput_ratio=[0-9]*' /tmp/overload-demo-on.out | cut -d= -f2); \
	off=$$(grep -o 'interactive_goodput_ratio=[0-9]*' /tmp/overload-demo-off.out | cut -d= -f2); \
	slo=$$(grep -o 'interactive_slo_ok=[01]' /tmp/overload-demo-on.out | cut -d= -f2); \
	echo; echo "overload-demo: goodput ratio ON=$$on% OFF=$$off% (SLO held: $$slo)"; \
	if [ -z "$$on" ] || [ -z "$$off" ]; then echo "overload-demo FAILED: missing summary lines"; st=1; \
	elif [ "$$slo" != "1" ]; then echo "overload-demo FAILED: interactive p99 TTFT busted the SLO at 2x"; st=1; \
	elif ! awk "BEGIN{exit !($$on >= 85)}"; then echo "overload-demo FAILED: ratio $$on% below the 85% floor with overload on"; st=1; \
	elif ! awk "BEGIN{exit !($$off < 50)}"; then echo "overload-demo FAILED: baseline ratio $$off% did not collapse below 50%"; st=1; \
	else echo "overload-demo: interactive goodput held at $$on% of peak under 2x load (baseline $$off%)"; fi; \
	exit $$st

# One benchmark per paper table/figure plus kernel/engine/ablation benches,
# then the decode-batching sweep (per-seq GEMV loop vs fused batch GEMM),
# which seeds the perf trajectory artifact BENCH_decode.json.
bench: bench-decode
	$(GO) test -bench=. -benchmem ./...

# Prefill/decode tok/s at several batch sizes, fused vs per-sequence
# baseline, plus the decode-shape kernel sweep. Writes BENCH_decode.json.
bench-decode:
	$(GO) run ./cmd/gemmbench -decode -json BENCH_decode.json

# CI-sized variant: smaller shapes, fewer reps, still writes the artifact.
bench-decode-short:
	$(GO) run ./cmd/gemmbench -decode -short -json BENCH_decode.json

# Speculative decoding sweep: measured draft+verify vs fused greedy
# baseline across kernel tiers and acceptance rates (bit-identity asserted
# per point), plus the modeled roofline sweep on the paper platform where
# memory-bound decode makes speculation pay. Writes BENCH_specdec.json.
bench-spec:
	$(GO) run ./cmd/gemmbench -spec -json BENCH_specdec.json

# CI-sized variant: one kernel tier, one acceptance rate, same modeled
# sweep and the same >= 1.5x tile-tier self-check.
bench-spec-short:
	$(GO) run ./cmd/gemmbench -spec -short -json BENCH_specdec.json

# Regenerate every table and figure of the evaluation as text.
figures:
	$(GO) run ./cmd/figures

# PASS/FAIL report over every tracked paper claim.
scorecard:
	$(GO) run ./cmd/scorecard

examples:
	for ex in quickstart chatbot batch_analytics numa_tuning capacity_planner \
	          serving_policies offload_trace speculative streaming; do \
		echo "=== $$ex ==="; $(GO) run ./examples/$$ex || exit 1; \
	done

# Archive the outputs the reproduction is judged on.
results:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
