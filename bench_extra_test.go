package repro

// Benchmarks for the extension subsystems: the serving simulator, the
// cache-hierarchy simulator, the quantization kernels, and the functional
// engine's chunked prefill. These back the ablation discussions in
// DESIGN.md beyond the paper's own tables and figures.

import (
	"fmt"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// runExtExp runs a registered experiment b.N times.
func runExtExp(b *testing.B, key string) []experiments.Table {
	b.Helper()
	e, err := experiments.ByKey(key)
	if err != nil {
		b.Fatal(err)
	}
	var tabs []experiments.Table
	for i := 0; i < b.N; i++ {
		tabs, err = e.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	return tabs
}

func parseCellExtra(b *testing.B, tab experiments.Table, row, col int) float64 {
	b.Helper()
	var v float64
	if _, err := fmtSscan(tab.Rows[row][col], &v); err != nil {
		b.Fatalf("%s[%d][%d]=%q", tab.ID, row, col, tab.Rows[row][col])
	}
	return v
}

func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscanf(s, "%f", v)
}

// --- serving simulator -------------------------------------------------------

func benchServe(b *testing.B, policy serve.Policy) {
	cost := serve.NewCPUCost(experiments.SPRSetup(), model.Llama13B)
	gen := workload.NewGenerator(17)
	gen.ArrivalRate = 4
	gen.LenJitter = 0.8
	trace := gen.Trace(48)
	var sm serve.Summary
	for i := 0; i < b.N; i++ {
		srv := serve.Server{Cost: cost, Policy: policy, MaxBatch: 8, BatchWait: 0.25}
		cs, err := srv.Run(trace)
		if err != nil {
			b.Fatal(err)
		}
		sm = serve.Summarize(cs)
	}
	b.ReportMetric(sm.TokensPerSecond, "served_tok/s")
	b.ReportMetric(sm.P95E2E, "p95_e2e_s")
}

func BenchmarkServeFCFS(b *testing.B)       { benchServe(b, serve.FCFS) }
func BenchmarkServeStatic(b *testing.B)     { benchServe(b, serve.Static) }
func BenchmarkServeContinuous(b *testing.B) { benchServe(b, serve.Continuous) }

// --- cache simulator ---------------------------------------------------------

func benchCacheTrace(b *testing.B, trace func(m, n, k int, visit func(uint64))) float64 {
	const dim = 192 // working set ≈ 442 KB ≫ L1, so locality differentiates
	var rate float64
	for i := 0; i < b.N; i++ {
		h, err := cachesim.SPRLike(1024)
		if err != nil {
			b.Fatal(err)
		}
		trace(dim, dim, dim, func(a uint64) { h.Access(a) })
		rate = h.Levels[0].MissRate()
	}
	return rate
}

func BenchmarkCacheNaiveGemm(b *testing.B) {
	r := benchCacheTrace(b, cachesim.TraceGemmNaive)
	b.ReportMetric(r*100, "l1_miss_pct")
}

func BenchmarkCacheBlockedGemm(b *testing.B) {
	r := benchCacheTrace(b, cachesim.TraceGemmBlocked)
	b.ReportMetric(r*100, "l1_miss_pct")
}

// --- quantization kernels ----------------------------------------------------

func BenchmarkQuantGemvInt4(b *testing.B) {
	const m, k = 256, 256
	w := make([]float32, m*k)
	for i := range w {
		w[i] = float32(i%17) * 0.01
	}
	g, err := quant.QuantizeInt4(w, 64)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float32, k)
	y := make([]float32, m)
	for i := range x {
		x[i] = 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := quant.GemvInt4(m, k, g, x, y); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.Bytes()), "weight_bytes")
}

func BenchmarkQuantGemvInt8(b *testing.B) {
	const m, k = 256, 256
	w := make([]float32, m*k)
	for i := range w {
		w[i] = float32(i%17) * 0.01
	}
	g, err := quant.QuantizeInt8(w, 64)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float32, k)
	y := make([]float32, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := quant.GemvInt8(m, k, g, x, y); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.Bytes()), "weight_bytes")
}

// --- extension ablations -------------------------------------------------------

func benchAblation(b *testing.B, key string, row, col int, metric string) {
	tabs := runExtExp(b, key)
	v := parseCellExtra(b, tabs[0], row, col)
	b.ReportMetric(v, metric)
}

func BenchmarkOptPagedKV(b *testing.B) { benchAblation(b, "opt-paged", 4, 3, "paged_gain_x@256") }
func BenchmarkOptTensorParallel(b *testing.B) {
	benchAblation(b, "opt-tp", 2, 4, "tp2_vs_1socket_x_opt66b")
}
func BenchmarkOptSpeculative(b *testing.B) {
	benchAblation(b, "opt-spec", 4, 5, "spec_speedup_a08_k4")
}
func BenchmarkServePoliciesTable(b *testing.B) {
	benchAblation(b, "serve-policies", 8, 4, "continuous_tok_s@8rps")
}

// --- functional speculative decoding -------------------------------------------

func BenchmarkEngineSpeculative(b *testing.B) {
	cfg := model.Tiny(model.OPT)
	tw, err := engine.NewWeights(cfg, 42, tensor.FP32)
	if err != nil {
		b.Fatal(err)
	}
	target, _ := engine.New(tw, engine.Options{Kernel: engine.KernelBlocked})
	dcfg := cfg
	dcfg.Layers = 1
	dw, _ := engine.NewWeights(dcfg, 7, tensor.FP32)
	draft, _ := engine.New(dw, engine.Options{Kernel: engine.KernelBlocked})
	p := workload.NewGenerator(1).Prompt(12, cfg.Vocab)
	var st engine.SpecStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		_, st, err = engine.SpeculativeGenerate(target, draft, p, 16, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(st.AcceptanceRate()*100, "acceptance_pct")
	b.ReportMetric(float64(st.TargetPasses), "target_passes")
}

// --- paged vs dense engine sessions --------------------------------------------

func benchEngineSession(b *testing.B, paged bool) {
	w, err := engine.NewWeights(model.Tiny(model.LLaMA2), 42, tensor.BF16)
	if err != nil {
		b.Fatal(err)
	}
	e, err := engine.New(w, engine.Options{Kernel: engine.KernelBlocked})
	if err != nil {
		b.Fatal(err)
	}
	p := workload.NewGenerator(1).Prompt(16, e.Config().Vocab)
	var kvBytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s *engine.Session
		if paged {
			s = e.NewPagedSession(1, 32, 8)
		} else {
			s = e.NewSession(1, 32)
		}
		toks, err := e.Prefill(s, [][]int{p})
		if err != nil {
			b.Fatal(err)
		}
		for step := 1; step < 8; step++ {
			if toks, err = e.DecodeStep(s, toks); err != nil {
				b.Fatal(err)
			}
		}
		kvBytes = s.KVBytes()
	}
	b.ReportMetric(float64(kvBytes), "kv_bytes")
}

func BenchmarkEngineDenseSession(b *testing.B) { benchEngineSession(b, false) }
func BenchmarkEnginePagedSession(b *testing.B) { benchEngineSession(b, true) }

// --- flash vs standard attention ---------------------------------------------------

func benchEngineAttention(b *testing.B, flash bool) {
	w, err := engine.NewWeights(model.Tiny(model.LLaMA2), 42, tensor.BF16)
	if err != nil {
		b.Fatal(err)
	}
	e, err := engine.New(w, engine.Options{Kernel: engine.KernelBlocked, FlashAttention: flash})
	if err != nil {
		b.Fatal(err)
	}
	p := workload.NewGenerator(1).Prompt(48, e.Config().Vocab)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Generate([][]int{p}, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineStandardAttention(b *testing.B) { benchEngineAttention(b, false) }
func BenchmarkEngineFlashAttention(b *testing.B)    { benchEngineAttention(b, true) }

// --- chunked-prefill serving --------------------------------------------------------

func BenchmarkServeChunkedPrefill(b *testing.B) {
	cost := serve.NewCPUCost(experiments.SPRSetup(), model.Llama13B)
	gen := workload.NewGenerator(29)
	gen.ArrivalRate = 4
	trace := gen.Trace(24)
	var worst float64
	for i := 0; i < b.N; i++ {
		srv := serve.ChunkedServer{Cost: cost, MaxBatch: 8, PrefillChunk: 64}
		if _, err := srv.Run(trace); err != nil {
			b.Fatal(err)
		}
		worst = srv.MaxIterationSeconds
	}
	b.ReportMetric(worst*1e3, "max_iteration_ms")
}

// --- perplexity evaluation -------------------------------------------------------

func BenchmarkEnginePerplexity(b *testing.B) {
	w, err := engine.NewWeights(model.Tiny(model.OPT), 42, tensor.BF16)
	if err != nil {
		b.Fatal(err)
	}
	e, err := engine.New(w, engine.Options{Kernel: engine.KernelBlocked})
	if err != nil {
		b.Fatal(err)
	}
	seq := workload.NewGenerator(2).Prompt(32, e.Config().Vocab)
	var ppl float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Perplexity(seq)
		if err != nil {
			b.Fatal(err)
		}
		ppl = res.Perplexity
	}
	b.ReportMetric(ppl, "perplexity")
}

// --- chunked prefill ---------------------------------------------------------

func BenchmarkEngineChunkedPrefill(b *testing.B) {
	w, err := engine.NewWeights(model.Tiny(model.OPT), 42, tensor.BF16)
	if err != nil {
		b.Fatal(err)
	}
	e, err := engine.New(w, engine.Options{Kernel: engine.KernelBlocked})
	if err != nil {
		b.Fatal(err)
	}
	p := workload.NewGenerator(1).Prompt(32, e.Config().Vocab)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.GenerateWith([][]int{p},
			engine.GenerateOptions{MaxNew: 4, PrefillChunk: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
