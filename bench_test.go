// Package repro's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation. Each benchmark regenerates its
// experiment through the same code path as `cmd/figures` and reports the
// figure's headline quantity as a custom benchmark metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation and prints the paper-comparable
// numbers. Functional-substrate benchmarks (real GEMM kernels and the
// pure-Go engine) sit alongside, grounding the simulator's compute model
// in measured Go kernels.
package repro

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/model"
	"repro/internal/offload"
	"repro/internal/perfmodel"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// runExp runs a registered experiment b.N times and returns its tables.
func runExp(b *testing.B, key string) []experiments.Table {
	b.Helper()
	e, err := experiments.ByKey(key)
	if err != nil {
		b.Fatal(err)
	}
	var tabs []experiments.Table
	for i := 0; i < b.N; i++ {
		tabs, err = e.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	return tabs
}

func parseCell(b *testing.B, tab experiments.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[row][col], "%"), 64)
	if err != nil {
		b.Fatalf("%s[%d][%d]=%q", tab.ID, row, col, tab.Rows[row][col])
	}
	return v
}

// --- Tables I & II ---------------------------------------------------------

func BenchmarkTableICPUSetup(b *testing.B) {
	tabs := runExp(b, "table1")
	b.ReportMetric(float64(len(tabs[0].Rows)), "cpus")
}

func BenchmarkTableIIGPUSetup(b *testing.B) {
	tabs := runExp(b, "table2")
	b.ReportMetric(float64(len(tabs[0].Rows)), "gpus")
}

// --- Fig 1: GEMM throughput -------------------------------------------------

func BenchmarkFig1GEMMThroughput(b *testing.B) {
	tabs := runExp(b, "fig1")
	tab := tabs[0]
	last := len(tab.Rows) - 1
	b.ReportMetric(parseCell(b, tab, last, 2), "spr_amx_tflops@8192")
	b.ReportMetric(parseCell(b, tab, last, 2)/parseCell(b, tab, last, 1), "amx_vs_avx512_x")
}

// --- Fig 6/7: footprints ----------------------------------------------------

func BenchmarkFig6ModelFootprint(b *testing.B) {
	tabs := runExp(b, "fig6")
	for _, row := range tabs[0].Rows {
		if row[0] == "OPT-175B" {
			gb, _ := strconv.ParseFloat(row[2], 64)
			b.ReportMetric(gb, "opt175b_fp16_gb")
		}
	}
}

func BenchmarkFig7KVCacheFootprint(b *testing.B) {
	var bytes int64
	for i := 0; i < b.N; i++ {
		bytes = model.OPT66B.KVCacheBytes(4096, 32, tensor.BF16)
	}
	b.ReportMetric(float64(bytes)/(1<<30), "opt66b_kv_gib@4096x32")
	runExp(b, "fig7")
}

// --- Figs 8–10: ICL vs SPR ---------------------------------------------------

func BenchmarkFig8EndToEnd(b *testing.B) {
	tabs := runExp(b, "fig8")
	var speedups []float64
	thr := tabs[1]
	for r := range thr.Rows {
		for c := 1; c < len(thr.Rows[r]); c++ {
			speedups = append(speedups, parseCell(b, thr, r, c))
		}
	}
	g, _ := stats.GeoMean(speedups)
	b.ReportMetric(g, "spr_thpt_speedup_geomean")
	b.ReportMetric(stats.Max(speedups), "spr_thpt_speedup_max")
}

func BenchmarkFig9PhaseLatency(b *testing.B) {
	tabs := runExp(b, "fig9")
	var pre, dec []float64
	for r := range tabs[0].Rows {
		for c := 1; c < len(tabs[0].Rows[r]); c++ {
			pre = append(pre, parseCell(b, tabs[0], r, c))
			dec = append(dec, parseCell(b, tabs[1], r, c))
		}
	}
	b.ReportMetric((1-stats.Mean(pre))*100, "prefill_latency_reduction_pct")
	b.ReportMetric((1-stats.Mean(dec))*100, "decode_latency_reduction_pct")
}

func BenchmarkFig10PhaseThroughput(b *testing.B) {
	tabs := runExp(b, "fig10")
	var pre, dec []float64
	for r := range tabs[0].Rows {
		for c := 1; c < len(tabs[0].Rows[r]); c++ {
			pre = append(pre, parseCell(b, tabs[0], r, c))
			dec = append(dec, parseCell(b, tabs[1], r, c))
		}
	}
	gp, _ := stats.GeoMean(pre)
	gd, _ := stats.GeoMean(dec)
	b.ReportMetric(gp, "prefill_speedup_geomean")
	b.ReportMetric(gd, "decode_speedup_geomean")
}

// --- Figs 11/12: counters ----------------------------------------------------

func benchCounters(b *testing.B, key string) {
	tabs := runExp(b, key)
	tab := tabs[0]
	first := parseCell(b, tab, 0, 1)
	last := parseCell(b, tab, len(tab.Rows)-1, 1)
	b.ReportMetric(first/last, "mpki_drop_b1_to_b32_x")
	b.ReportMetric(parseCell(b, tab, len(tab.Rows)-1, 2), "core_util@b32")
}

func BenchmarkFig11CountersLlama13B(b *testing.B) { benchCounters(b, "fig11") }
func BenchmarkFig12CountersOPT66B(b *testing.B)   { benchCounters(b, "fig12") }

// --- Figs 13–16: server configuration ----------------------------------------

func BenchmarkFig13NUMAModes(b *testing.B) {
	tabs := runExp(b, "fig13")
	tab := tabs[0]
	for r, row := range tab.Rows {
		if row[0] == "quad_flat" {
			b.ReportMetric(parseCell(b, tab, r, 1), "quad_flat_norm_latency")
		}
		if row[0] == "snc_cache" {
			b.ReportMetric(parseCell(b, tab, r, 1), "snc_cache_norm_latency")
		}
	}
}

func BenchmarkFig14CoreSweep(b *testing.B) {
	tabs := runExp(b, "fig14")
	tab := tabs[0]
	for r, row := range tab.Rows {
		if row[0] == "48" {
			b.ReportMetric((1-parseCell(b, tab, r, 1))*100, "e2e_reduction_48_vs_12_pct")
			b.ReportMetric(parseCell(b, tab, r, len(row)-1), "thpt_48_vs_12_x")
		}
	}
}

func BenchmarkFig15NUMACounters(b *testing.B) {
	tabs := runExp(b, "fig15")
	tab := tabs[0]
	for r, row := range tab.Rows {
		if row[0] == "quad_flat" {
			b.ReportMetric(parseCell(b, tab, r, 3), "quad_remote_llc_M")
		}
		if row[0] == "snc_flat" {
			b.ReportMetric(parseCell(b, tab, r, 3), "snc_remote_llc_M")
		}
	}
}

func BenchmarkFig16CoreCounters(b *testing.B) {
	tabs := runExp(b, "fig16")
	tab := tabs[0]
	b.ReportMetric(parseCell(b, tab, len(tab.Rows)-1, 3), "upi_util@96cores")
}

// --- Figs 17–21: CPU vs GPU ----------------------------------------------------

func BenchmarkFig17CPUvsGPUBatch1(b *testing.B) {
	tabs := runExp(b, "fig17")
	lat := tabs[0]
	for r, row := range lat.Rows {
		switch row[0] {
		case "OPT-13B":
			b.ReportMetric((1-parseCell(b, lat, r, 3))*100, "h100_opt13b_latency_reduction_pct")
		case "OPT-30B":
			b.ReportMetric(parseCell(b, lat, r, 2), "a100_opt30b_norm_latency")
		case "OPT-66B":
			b.ReportMetric(parseCell(b, lat, r, 3), "h100_opt66b_norm_latency")
		}
	}
}

func BenchmarkFig18OffloadBreakdown(b *testing.B) {
	tabs := runExp(b, "fig18")
	tab := tabs[0]
	b.ReportMetric(parseCell(b, tab, 0, 1), "a100_pcie_pct@b1")
	b.ReportMetric(parseCell(b, tab, len(tab.Rows)-1, 1), "a100_pcie_pct@b32")
	b.ReportMetric(parseCell(b, tab, 0, 3), "h100_pcie_pct@b1")
	b.ReportMetric(parseCell(b, tab, len(tab.Rows)-1, 3), "h100_pcie_pct@b32")
}

func BenchmarkFig19CPUvsGPUBatch16(b *testing.B) {
	tabs := runExp(b, "fig19")
	lat := tabs[0]
	for r, row := range lat.Rows {
		if row[0] == "OPT-66B" {
			b.ReportMetric(parseCell(b, lat, r, 3), "h100_opt66b_norm_latency@b16")
		}
	}
}

func benchSeqSweep(b *testing.B, key string) {
	tabs := runExp(b, key)
	cpuWins := 0
	for _, row := range tabs[0].Rows {
		if row[len(row)-1] == "CPU" {
			cpuWins++
		}
	}
	b.ReportMetric(float64(cpuWins), "cpu_wins")
	b.ReportMetric(float64(len(tabs[0].Rows)), "points")
}

func BenchmarkFig20SeqLenBatch1(b *testing.B)  { benchSeqSweep(b, "fig20") }
func BenchmarkFig21SeqLenBatch16(b *testing.B) { benchSeqSweep(b, "fig21") }

// --- §VI optimizations ----------------------------------------------------------

func BenchmarkOptNUMAPlacement(b *testing.B) {
	tabs := runExp(b, "opt-numa")
	b.ReportMetric(parseCell(b, tabs[0], 1, 3), "placement_speedup_x")
}

func BenchmarkOptHybridExecution(b *testing.B) {
	tabs := runExp(b, "opt-hybrid")
	b.ReportMetric(parseCell(b, tabs[0], 0, 5), "hybrid_vs_offload_x")
}

func BenchmarkOptInt8(b *testing.B) {
	tabs := runExp(b, "opt-int8")
	b.ReportMetric(parseCell(b, tabs[0], 0, 5), "int8_speedup_x")
}

// --- Functional substrate: real measured kernels --------------------------------

func benchGemm(b *testing.B, n int, f func(n int, a, bm, c []float32)) {
	a := make([]float32, n*n)
	bm := make([]float32, n*n)
	c := make([]float32, n*n)
	for i := range a {
		a[i] = float32(i%13) * 0.1
		bm[i] = float32(i%7) * 0.1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(n, a, bm, c)
	}
	flops := 2 * float64(n) * float64(n) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkGemmNaive128(b *testing.B) {
	benchGemm(b, 128, func(n int, a, bm, c []float32) { kernels.GemmNaive(n, n, n, a, bm, c) })
}

func BenchmarkGemmBlocked128(b *testing.B) {
	benchGemm(b, 128, func(n int, a, bm, c []float32) { kernels.GemmBlocked(n, n, n, a, bm, c) })
}

func BenchmarkGemmBlocked512(b *testing.B) {
	benchGemm(b, 512, func(n int, a, bm, c []float32) { kernels.GemmBlocked(n, n, n, a, bm, c) })
}

func BenchmarkGemmParallel512(b *testing.B) {
	benchGemm(b, 512, func(n int, a, bm, c []float32) { kernels.GemmParallel(n, n, n, a, bm, c, 0) })
}

func BenchmarkGemmTileBF16x128(b *testing.B) {
	benchGemm(b, 128, func(n int, a, bm, c []float32) { kernels.GemmTileBF16(n, n, n, a, bm, c) })
}

func BenchmarkGemmTileBF16Parallel512(b *testing.B) {
	benchGemm(b, 512, func(n int, a, bm, c []float32) { kernels.GemmTileBF16Parallel(n, n, n, a, bm, c, 0) })
}

func BenchmarkGemmInt8x128(b *testing.B) {
	n := 128
	a := make([]float32, n*n)
	for i := range a {
		a[i] = float32(i%13) * 0.1
	}
	aq, as := tensor.QuantizeInt8(a)
	bq, bs := tensor.QuantizeInt8(a)
	c := make([]float32, n*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.GemmInt8(n, n, n, aq, as, bq, bs, c)
	}
	flops := 2 * float64(n) * float64(n) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GOP/s")
}

// --- Functional substrate: the pure-Go engine ------------------------------------

func benchEngine(b *testing.B, fam model.Family, k engine.Kernel, batch int) {
	w, err := engine.NewWeights(model.Tiny(fam), 42, tensor.BF16)
	if err != nil {
		b.Fatal(err)
	}
	if k == engine.KernelInt8 {
		w.QuantizeAll()
	}
	e, err := engine.New(w, engine.Options{Kernel: k})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewGenerator(1)
	prompts := make([][]int, batch)
	for i := range prompts {
		prompts[i] = gen.Prompt(16, e.Config().Vocab)
	}
	b.ResetTimer()
	var tokens int
	for i := 0; i < b.N; i++ {
		out, _, err := e.Generate(prompts, 8)
		if err != nil {
			b.Fatal(err)
		}
		tokens += len(out) * len(out[0])
	}
	b.ReportMetric(float64(tokens)/b.Elapsed().Seconds(), "tok/s")
}

func BenchmarkEngineOPTBlocked(b *testing.B)   { benchEngine(b, model.OPT, engine.KernelBlocked, 1) }
func BenchmarkEngineOPTTileBF16(b *testing.B)  { benchEngine(b, model.OPT, engine.KernelTileBF16, 1) }
func BenchmarkEngineLlamaBlocked(b *testing.B) { benchEngine(b, model.LLaMA2, engine.KernelBlocked, 1) }
func BenchmarkEngineLlamaBatch4(b *testing.B)  { benchEngine(b, model.LLaMA2, engine.KernelBlocked, 4) }
func BenchmarkEngineOPTInt8(b *testing.B)      { benchEngine(b, model.OPT, engine.KernelInt8, 1) }

// --- Simulator micro-benchmarks ---------------------------------------------------

func BenchmarkSimulateCPUPoint(b *testing.B) {
	run := perfmodel.CPURun{
		Model: model.OPT66B,
		Setup: experiments.SPRSetup(),
		Batch: 8, InputLen: 128, OutputLen: 32, Weights: tensor.BF16,
	}
	for i := 0; i < b.N; i++ {
		if _, err := run.Simulate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateOffloadPoint(b *testing.B) {
	run := offload.Run{
		GPU: hw.H100, Host: hw.SPRMax9468, Model: model.OPT66B,
		Batch: 8, InputLen: 128, OutputLen: 32, Weights: tensor.BF16,
	}
	for i := 0; i < b.N; i++ {
		if _, err := run.Simulate(); err != nil {
			b.Fatal(err)
		}
	}
}
