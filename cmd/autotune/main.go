// Command autotune searches the SPR configuration space (cores × memory
// mode × clustering × batch) for the best configuration of a workload,
// optionally under latency budgets — the paper's §IV-B study as a tool.
//
// Usage:
//
//	autotune -model LLaMA2-13B -objective throughput
//	autotune -model OPT-30B -objective e2e -batch 8
//	autotune -model LLaMA2-13B -objective throughput -max-ttft 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/autotune"
	"repro/internal/model"
)

func main() {
	modelName := flag.String("model", "LLaMA2-13B", "model preset")
	objective := flag.String("objective", "e2e", "e2e | throughput | ttft")
	batch := flag.Int("batch", 0, "pin the batch size (0 = search 1..32)")
	in := flag.Int("in", 128, "input length")
	out := flag.Int("out", 32, "output length")
	maxTTFT := flag.Float64("max-ttft", 0, "TTFT budget in seconds (0 = none)")
	maxTPOT := flag.Float64("max-tpot", 0, "TPOT budget in seconds (0 = none)")
	top := flag.Int("top", 8, "show the N best candidates")
	flag.Parse()

	m, err := model.ByName(*modelName)
	if err != nil {
		fatal(err)
	}
	var obj autotune.Objective
	switch *objective {
	case "e2e":
		obj = autotune.MinE2ELatency
	case "throughput":
		obj = autotune.MaxThroughput
	case "ttft":
		obj = autotune.MinTTFT
	default:
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}

	cands, err := autotune.Tune(autotune.DefaultSpace(), autotune.Request{
		Model: m, InputLen: *in, OutputLen: *out,
		Objective:   obj,
		Constraints: autotune.Constraints{MaxTTFTSeconds: *maxTTFT, MaxTPOTSeconds: *maxTPOT},
		FixedBatch:  *batch,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("tuning %s for %s (in=%d out=%d), %d feasible configurations\n\n",
		m.Name, obj, *in, *out, len(cands))
	fmt.Printf("%-22s %10s %10s %10s %12s\n",
		"configuration", "TTFT (ms)", "TPOT (ms)", "E2E (s)", "tokens/s")
	n := *top
	if n > len(cands) {
		n = len(cands)
	}
	for i := 0; i < n; i++ {
		c := cands[i]
		marker := " "
		if i == 0 {
			marker = "→"
		}
		fmt.Printf("%s %-20s %10.0f %10.1f %10.2f %12.1f\n",
			marker, c.Name(),
			c.Result.Latency.TTFT*1e3, c.Result.Latency.TPOT*1e3,
			c.Result.Latency.E2E, c.Result.Throughput.E2E)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "autotune:", err)
	os.Exit(1)
}
