// Command calibrate audits the simulator's calibration: it evaluates the
// paper anchors against the shipped constants and sweeps each calibration
// knob to show the anchor-loss landscape around the shipped setting.
//
// Usage:
//
//	calibrate              # anchor table + per-knob loss curves
//	calibrate -steps 13 -lo 0.5 -hi 1.5
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/calibrate"
)

func main() {
	lo := flag.Float64("lo", 0.6, "lowest knob factor")
	hi := flag.Float64("hi", 1.4, "highest knob factor")
	steps := flag.Int("steps", 9, "sweep points per knob")
	flag.Parse()

	env := calibrate.DefaultEnv()
	fmt.Println("anchor audit (shipped constants):")
	fmt.Printf("  %-40s %10s %10s %8s\n", "anchor", "target", "measured", "error")
	for _, a := range calibrate.Anchors() {
		got, err := a.Measure(env)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %-40s %10.3g %10.3g %7.1f%%\n",
			a.Name, a.Target, got, (got-a.Target)/a.Target*100)
	}
	base, err := calibrate.Loss(env)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\ntotal loss (Σ squared relative error): %.4f\n\n", base)

	fmt.Println("knob sweeps (loss vs multiplicative factor; '*' marks the shipped 1.0):")
	for _, k := range calibrate.Knobs() {
		pts, err := calibrate.SweepKnob(k, *lo, *hi, *steps)
		if err != nil {
			fatal(err)
		}
		maxLoss := 0.0
		for _, p := range pts {
			if p.Loss > maxLoss {
				maxLoss = p.Loss
			}
		}
		fmt.Printf("  %-18s", k.Name)
		for _, p := range pts {
			bar := int(p.Loss / (maxLoss + 1e-12) * 6)
			mark := fmt.Sprintf("%s", strings.Repeat("#", bar+1))
			if math.Abs(p.Factor-1) < 1e-9 {
				mark = "*" + mark
			}
			fmt.Printf(" %6s", mark)
		}
		fmt.Println()
		fmt.Printf("  %-18s", "")
		for _, p := range pts {
			fmt.Printf(" %6.2f", p.Factor)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "calibrate:", err)
	os.Exit(1)
}
