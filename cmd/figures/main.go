// Command figures regenerates the paper's tables and figures as plain-text
// tables.
//
// Usage:
//
//	figures              # run every experiment in paper order
//	figures -exp fig18   # run one experiment
//	figures -list        # list experiment keys
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	exp := flag.String("exp", "", "experiment key (e.g. fig18, table1); empty = all")
	list := flag.Bool("list", false, "list experiment keys and exit")
	markdown := flag.Bool("markdown", false, "render tables as GitHub Markdown")
	flag.Parse()

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-10s %s\n", e.Key, e.Title)
		}
		return
	}

	run := func(e core.Experiment) error {
		tabs, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.Key, err)
		}
		for _, t := range tabs {
			if *markdown {
				fmt.Println(t.Markdown())
			} else {
				fmt.Println(t.Render())
			}
		}
		return nil
	}

	if *exp != "" {
		e, err := core.ExperimentByKey(*exp)
		if err == nil {
			err = run(e)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	for _, e := range core.Experiments() {
		if err := run(e); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
