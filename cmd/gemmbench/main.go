// Command gemmbench measures the repository's real GEMM kernel tiers on
// the current machine — the functional analog of Fig 1. It reports
// GFLOP/s for the naive, blocked, parallel, and AMX-emulating BF16 tile
// kernels across matrix sizes, showing the same qualitative structure the
// paper measures across ISAs: tiled/parallel kernels pull ahead as
// matrices grow.
//
// With -decode it instead sweeps decode shapes (M = batch ∈ {1,4,8,16,32}),
// contrasting the legacy per-sequence GEMV loop against the fused batch
// GEMM over packed weights, and runs the tiny functional engine end to end
// (fused decode vs the per-sequence baseline) — the software analog of the
// paper's throughput-vs-batch curves. -json writes the results to a file
// (the perf-trajectory artifact `make bench` stores as BENCH_decode.json).
//
// Usage:
//
//	gemmbench                        # default sizes 64..512
//	gemmbench -sizes 128,256 -reps 5
//	gemmbench -decode -json BENCH_decode.json
//	gemmbench -decode -short         # CI-sized variant
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/specdec"
	"repro/internal/tensor"
	"repro/internal/workload"
)

type tier struct {
	name string
	run  func(n int, a, b, c []float32)
}

func main() {
	sizesFlag := flag.String("sizes", "64,128,256,512", "comma-separated square sizes")
	reps := flag.Int("reps", 3, "repetitions per measurement (best is kept)")
	withNaive := flag.Bool("naive", true, "include the naive kernel (slow at large sizes)")
	decode := flag.Bool("decode", false, "run the decode-shape sweep (per-seq GEMV loop vs fused batch GEMM)")
	spec := flag.Bool("spec", false, "run the speculative-decoding sweep (draft+verify vs fused greedy baseline across kernel tiers and acceptance rates)")
	jsonOut := flag.String("json", "", "write decode sweep results to this JSON file")
	short := flag.Bool("short", false, "CI-sized decode sweep (smaller shapes, fewer reps)")
	flag.Parse()

	if *decode {
		if err := runDecode(*jsonOut, *short); err != nil {
			fmt.Fprintln(os.Stderr, "gemmbench:", err)
			os.Exit(1)
		}
		return
	}
	if *spec {
		if err := runSpec(*jsonOut, *short); err != nil {
			fmt.Fprintln(os.Stderr, "gemmbench:", err)
			os.Exit(1)
		}
		return
	}

	sizes, err := ints(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gemmbench:", err)
		os.Exit(1)
	}
	workers := runtime.GOMAXPROCS(0)
	tiers := []tier{
		{"blocked", func(n int, a, b, c []float32) { kernels.GemmBlocked(n, n, n, a, b, c) }},
		{fmt.Sprintf("parallel(%d)", workers), func(n int, a, b, c []float32) { kernels.GemmParallel(n, n, n, a, b, c, workers) }},
		{"tile-bf16", func(n int, a, b, c []float32) { kernels.GemmTileBF16(n, n, n, a, b, c) }},
		{fmt.Sprintf("tile-bf16-par(%d)", workers), func(n int, a, b, c []float32) { kernels.GemmTileBF16Parallel(n, n, n, a, b, c, workers) }},
	}
	if *withNaive {
		tiers = append([]tier{{"naive", func(n int, a, b, c []float32) { kernels.GemmNaive(n, n, n, a, b, c) }}}, tiers...)
	}

	fmt.Printf("%-8s", "size")
	for _, t := range tiers {
		fmt.Printf("  %18s", t.name)
	}
	fmt.Println("   (GFLOP/s, best of", *reps, "reps)")

	rng := rand.New(rand.NewSource(1))
	for _, n := range sizes {
		a, b, c := randMat(rng, n*n), randMat(rng, n*n), make([]float32, n*n)
		fmt.Printf("%-8d", n)
		for _, t := range tiers {
			best := 0.0
			for r := 0; r < *reps; r++ {
				start := time.Now()
				t.run(n, a, b, c)
				el := time.Since(start).Seconds()
				if g := 2 * float64(n) * float64(n) * float64(n) / el / 1e9; g > best {
					best = g
				}
			}
			fmt.Printf("  %18.2f", best)
		}
		fmt.Println()
	}
}

// kernelPoint is one decode-shape kernel measurement: M rows × [k,n]
// weight, per-sequence loop vs fused batch GEMM.
type kernelPoint struct {
	Tier          string  `json:"tier"`
	M             int     `json:"m"`
	K             int     `json:"k"`
	N             int     `json:"n"`
	PerSeqGFLOPs  float64 `json:"perseq_gflops"`
	FusedGFLOPs   float64 `json:"fused_gflops"`
	Speedup       float64 `json:"speedup"`
	PerSeqSeconds float64 `json:"perseq_seconds"`
	FusedSeconds  float64 `json:"fused_seconds"`
}

// enginePoint is one end-to-end tiny-engine measurement at a batch size.
type enginePoint struct {
	Family          string  `json:"family"`
	Kernel          string  `json:"kernel"`
	Batch           int     `json:"batch"`
	PromptLen       int     `json:"prompt_len"`
	NewTokens       int     `json:"new_tokens"`
	FusedDecodeTokS float64 `json:"fused_decode_toks"`
	BaseDecodeTokS  float64 `json:"baseline_decode_toks"`
	DecodeSpeedup   float64 `json:"decode_speedup"`
	FusedPrefillS   float64 `json:"fused_prefill_seconds"`
	BasePrefillS    float64 `json:"baseline_prefill_seconds"`
}

// benchReport is the BENCH_decode.json schema.
type benchReport struct {
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Short       bool          `json:"short"`
	KernelSweep []kernelPoint `json:"kernel_sweep"`
	EngineSweep []enginePoint `json:"engine_sweep"`
}

func runDecode(jsonPath string, short bool) error {
	batches := []int{1, 4, 8, 16, 32}
	k, n := 256, 1024
	reps := 5
	newTokens := 24
	if short {
		batches = []int{1, 8}
		k, n = 128, 512
		reps = 2
		newTokens = 8
	}
	rep := benchReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Short: short}

	fmt.Printf("decode-shape kernel sweep  (weight %dx%d, best of %d reps)\n", k, n, reps)
	fmt.Printf("%-14s %6s  %14s  %14s  %8s\n", "tier", "M", "perseq GFLOP/s", "fused GFLOP/s", "speedup")
	rng := rand.New(rand.NewSource(1))
	b := randMat(rng, k*n)
	pool := kernels.NewPool(0)
	defer pool.Close()
	for _, tierName := range []string{"tile-bf16", "blocked-fp32"} {
		var pb *kernels.PackedB
		var perSeq func(m int, a, c []float32)
		if tierName == "tile-bf16" {
			pb = kernels.PackBBF16(k, n, b)
			perSeq = func(m int, a, c []float32) {
				for i := 0; i < m; i++ {
					kernels.GemmTileBF16(1, n, k, a[i*k:(i+1)*k], b, c[i*n:(i+1)*n])
				}
			}
		} else {
			pb = kernels.PackB(k, n, b)
			perSeq = func(m int, a, c []float32) {
				for i := 0; i < m; i++ {
					kernels.GemmBlocked(1, n, k, a[i*k:(i+1)*k], b, c[i*n:(i+1)*n])
				}
			}
		}
		var job kernels.PackedJob
		for _, m := range batches {
			a, c := randMat(rng, m*k), make([]float32, m*n)
			flops := 2 * float64(m) * float64(n) * float64(k)
			ps := bestOf(reps, func() { perSeq(m, a, c) })
			fs := bestOf(reps, func() { kernels.GemmPackedPooled(pool, &job, m, a, pb, c) })
			pt := kernelPoint{
				Tier: tierName, M: m, K: k, N: n,
				PerSeqGFLOPs: flops / ps / 1e9, FusedGFLOPs: flops / fs / 1e9,
				Speedup: ps / fs, PerSeqSeconds: ps, FusedSeconds: fs,
			}
			rep.KernelSweep = append(rep.KernelSweep, pt)
			fmt.Printf("%-14s %6d  %14.2f  %14.2f  %7.2fx\n",
				tierName, m, pt.PerSeqGFLOPs, pt.FusedGFLOPs, pt.Speedup)
		}
	}

	fmt.Printf("\ntiny-engine decode throughput  (prompt 8, %d new tokens)\n", newTokens)
	fmt.Printf("%-8s %-20s %6s  %12s  %12s  %8s\n",
		"family", "kernel", "batch", "fused tok/s", "perseq tok/s", "speedup")
	families := []model.Family{model.LLaMA2}
	if !short {
		families = append(families, model.OPT)
	}
	for _, fam := range families {
		kern := engine.KernelTileBF16
		w, err := engine.NewWeights(model.Tiny(fam), 42, tensor.BF16)
		if err != nil {
			return err
		}
		fused, err := engine.New(w, engine.Options{Kernel: kern})
		if err != nil {
			return err
		}
		base, err := engine.New(w, engine.Options{Kernel: kern, DisablePacking: true})
		if err != nil {
			return err
		}
		famName := "opt"
		if fam == model.LLaMA2 {
			famName = "llama"
		}
		for _, batch := range batches {
			prompts := make([][]int, batch)
			for i := range prompts {
				prompts[i] = workload.NewGenerator(int64(i+1)).Prompt(8, w.Config.Vocab)
			}
			fTokS, fPre, err := decodeTokS(fused, prompts, newTokens, reps)
			if err != nil {
				return err
			}
			bTokS, bPre, err := decodeTokS(base, prompts, newTokens, reps)
			if err != nil {
				return err
			}
			pt := enginePoint{
				Family: famName, Kernel: kern.String(), Batch: batch,
				PromptLen: 8, NewTokens: newTokens,
				FusedDecodeTokS: fTokS, BaseDecodeTokS: bTokS,
				DecodeSpeedup: fTokS / bTokS,
				FusedPrefillS: fPre, BasePrefillS: bPre,
			}
			rep.EngineSweep = append(rep.EngineSweep, pt)
			fmt.Printf("%-8s %-20s %6d  %12.1f  %12.1f  %7.2fx\n",
				famName, pt.Kernel, batch, fTokS, bTokS, pt.DecodeSpeedup)
		}
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
	return nil
}

// specPoint is one speculative-vs-baseline measurement: b prompts decoded
// greedily by the target alone (fused batch decode) vs draft-proposed and
// batch-verified, with the draft steered to the target acceptance rate.
type specPoint struct {
	Kernel        string  `json:"kernel"`
	Batch         int     `json:"batch"`
	Alpha         float64 `json:"alpha"` // steered acceptance target
	Lookahead     int     `json:"lookahead"`
	NewTokens     int     `json:"new_tokens"`
	BaselineTokS  float64 `json:"baseline_toks"`
	SpecTokS      float64 `json:"spec_toks"`
	Speedup       float64 `json:"speedup"`
	MeasuredAlpha float64 `json:"measured_alpha"` // includes post-mismatch tail proposals
	VerifyPasses  int     `json:"verify_passes"`
	BitIdentical  bool    `json:"bit_identical"`
}

// modeledPoint is one roofline-model point: plain greedy decode vs a
// speculation cycle (k draft steps + one fused (k+1)-row verification
// pass) priced on the paper platform, per kernel tier's weight dtype.
type modeledPoint struct {
	Kernel        string  `json:"kernel"`
	Dtype         string  `json:"dtype"`
	Batch         int     `json:"batch"`
	Alpha         float64 `json:"alpha"`
	Lookahead     int     `json:"lookahead"`
	BaselineTokS  float64 `json:"baseline_toks"`
	SpecTokS      float64 `json:"spec_toks"`
	Speedup       float64 `json:"speedup"`
	TokensPerPass float64 `json:"tokens_per_pass"`
	DraftShare    float64 `json:"draft_share"`
}

// specReport is the BENCH_specdec.json schema. Measured is the wall-clock
// emulation sweep (pure-Go scalar kernels: decode is compute-bound, so
// speculation loses there — the sweep's job is the bit-identity proof and
// the honest cost accounting). Modeled prices the same cycle on the
// paper's memory-bound CPU (SPR roofline), the regime Figs 9-12 put real
// CPU decode in and the one where fused verification pays.
type specReport struct {
	GOMAXPROCS    int            `json:"gomaxprocs"`
	Short         bool           `json:"short"`
	DModel        int            `json:"d_model"`
	Layers        int            `json:"layers"`
	DraftLayers   int            `json:"draft_layers"`
	Lookahead     int            `json:"lookahead"`
	MeasuredNote  string         `json:"measured_note"`
	Measured      []specPoint    `json:"measured"`
	ModeledTarget string         `json:"modeled_target"`
	ModeledDraft  string         `json:"modeled_draft"`
	ModeledNote   string         `json:"modeled_note"`
	Modeled       []modeledPoint `json:"modeled"`
}

// runSpec sweeps speculative decoding two ways. The measured sweep runs
// the real engines (draft proposals, steered acceptance, fused multi-row
// verification) against the fused greedy baseline, wall-timed — its job
// is proving bit-identity on every kernel tier and charging the honest
// emulation cost: pure-Go scalar kernels are compute-bound, verification
// FLOPs scale with rows, so speculation *loses* wall-clock there, exactly
// as the roofline predicts for a compute-bound regime. The modeled sweep
// prices the identical cycle on the paper's CPU (SPR, Figs 9-12), where
// decode streams all weights per token and the (k+1)-row verification
// pass streams them once — the memory-bound regime where speculation
// pays; that sweep carries the headline speedups. Steering pins the
// measured acceptance at each α while the draft still runs honestly for
// cost; greedy output stays bit-identical to the baseline regardless of
// steering, which each point asserts.
func runSpec(jsonPath string, short bool) error {
	cfg := model.Config{Name: "bench-spec", Family: model.OPT, Layers: 10,
		DModel: 320, Heads: 8, KVHeads: 8, DFF: 1280, Vocab: 512, MaxSeq: 2048}
	batches := []int{1, 2, 4}
	alphas := []float64{0.5, 0.7, 0.9}
	newTokens := 32
	promptLen := 16
	reps := 2
	tiers := []engine.Kernel{engine.KernelBlocked, engine.KernelParallel,
		engine.KernelTileBF16, engine.KernelTileBF16Parallel,
		engine.KernelInt8, engine.KernelLUT}
	if short {
		cfg.Layers, cfg.DModel, cfg.DFF = 6, 192, 768
		batches = []int{1, 2}
		alphas = []float64{0.7}
		newTokens = 16
		tiers = []engine.Kernel{engine.KernelTileBF16Parallel}
	}
	dcfg := cfg
	dcfg.Name = "bench-spec-draft"
	dcfg.Layers = 1
	const lookahead = 4

	rep := specReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Short: short,
		DModel: cfg.DModel, Layers: cfg.Layers, DraftLayers: dcfg.Layers,
		Lookahead: lookahead,
		MeasuredNote: "wall-clock on pure-Go scalar kernels: compute-bound, " +
			"verification FLOPs scale with rows, speculation loses — the sweep " +
			"asserts bit-identity and honest accounting, not speedup",
		ModeledNote: "roofline on the paper's memory-bound CPU: decode streams " +
			"all weights per token, fused verification streams them once per " +
			"(k+1)-row pass — the regime where speculation pays"}
	pool := kernels.NewPool(0)
	defer pool.Close()

	fmt.Printf("speculative decode sweep  (d=%d L=%d draft-L=%d k=%d, %d new tokens, best of %d reps)\n",
		cfg.DModel, cfg.Layers, dcfg.Layers, lookahead, newTokens, reps)
	fmt.Printf("%-22s %6s %6s  %14s  %14s  %8s  %6s\n",
		"kernel", "batch", "alpha", "baseline tok/s", "spec tok/s", "speedup", "ident")
	for _, kern := range tiers {
		tw, err := engine.NewWeights(cfg, 42, tensor.BF16)
		if err != nil {
			return err
		}
		dw, err := engine.NewWeights(dcfg, 43, tensor.BF16)
		if err != nil {
			return err
		}
		if kern == engine.KernelInt8 || kern == engine.KernelLUT {
			tw.QuantizeAll()
			dw.QuantizeAll()
		}
		target, err := engine.New(tw, engine.Options{Kernel: kern, Pool: pool})
		if err != nil {
			return err
		}
		draft, err := engine.New(dw, engine.Options{Kernel: kern, Pool: pool})
		if err != nil {
			return err
		}
		for _, batch := range batches {
			prompts := make([][]int, batch)
			for i := range prompts {
				prompts[i] = workload.NewGenerator(int64(i+1)).Prompt(promptLen, cfg.Vocab)
			}
			// Fused greedy baseline: one batched Generate, wall-timed
			// end to end; its outputs are the steering reference and the
			// bit-identity oracle.
			var ref [][]int
			baseWall := bestOf(reps, func() {
				out, _, gerr := target.Generate(prompts, newTokens)
				if gerr != nil {
					err = gerr
					return
				}
				ref = out
			})
			if err != nil {
				return err
			}
			baseTokS := float64(batch*newTokens) / baseWall
			for _, alpha := range alphas {
				var st engine.SpecStats
				identical := true
				specWall := bestOf(reps, func() {
					st = engine.SpecStats{}
					for i, prompt := range prompts {
						rng := rand.New(rand.NewSource(int64(1000*alpha) + int64(i)))
						out, s, serr := engine.SpeculativeGenerateOpts(target, draft, prompt, newTokens,
							engine.SpecOptions{Lookahead: lookahead,
								Steer: steerTo(ref[i], rng, alpha, cfg.Vocab)})
						if serr != nil {
							err = serr
							return
						}
						st.Proposed += s.Proposed
						st.Accepted += s.Accepted
						st.TargetPasses += s.TargetPasses
						if !equalInts(out, ref[i]) {
							identical = false
						}
					}
				})
				if err != nil {
					return err
				}
				specTokS := float64(batch*newTokens) / specWall
				pt := specPoint{
					Kernel: kern.String(), Batch: batch, Alpha: alpha,
					Lookahead: lookahead, NewTokens: newTokens,
					BaselineTokS: baseTokS, SpecTokS: specTokS,
					Speedup:       specTokS / baseTokS,
					MeasuredAlpha: st.AcceptanceRate(),
					VerifyPasses:  st.TargetPasses,
					BitIdentical:  identical,
				}
				rep.Measured = append(rep.Measured, pt)
				fmt.Printf("%-22s %6d %6.2f  %14.1f  %14.1f  %7.2fx  %6v\n",
					pt.Kernel, batch, alpha, baseTokS, specTokS, pt.Speedup, identical)
				if !identical {
					return fmt.Errorf("speculative output diverged from greedy baseline on %s batch %d alpha %.2f",
						pt.Kernel, batch, alpha)
				}
			}
		}
	}

	if err := runSpecModeled(&rep, batches, alphas, lookahead); err != nil {
		return err
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
	return nil
}

// specTierDtype maps a kernel tier to the weight dtype it streams: the
// fp32 tiers read 4-byte weights, the BF16 tile tiers 2, and the
// quantized tiers (int8, lut-gemv) 1 — the bytes fused verification
// amortizes across rows.
func specTierDtype(k engine.Kernel) tensor.DType {
	switch k {
	case engine.KernelBlocked, engine.KernelParallel:
		return tensor.FP32
	case engine.KernelInt8, engine.KernelLUT:
		return tensor.INT8
	default:
		return tensor.BF16
	}
}

// runSpecModeled prices the speculation cycle on the paper platform (SPR
// Max 9468, flat memory, SNC4) for OPT-13B with an OPT-1.3B draft, per
// kernel tier's weight dtype. It hard-fails if the tile tier at batch 1
// and α ≥ 0.7 models below 1.5× — the headline this artifact exists to
// show; a regression in the verification pricing would silently erase it.
func runSpecModeled(rep *specReport, batches []int, alphas []float64, lookahead int) error {
	setup := memsim.Config{CPU: hw.SPRMax9468, Cores: 48,
		Mem: memsim.Flat, Cluster: memsim.Quad}
	target, draft := model.OPT13B, model.OPT1B3
	const ctx = 128
	rep.ModeledTarget, rep.ModeledDraft = target.Name, draft.Name

	step := func(m model.Config, batch int, dt tensor.DType) (float64, error) {
		res, err := perfmodel.CPURun{Model: m, Setup: setup, Batch: batch,
			InputLen: ctx, OutputLen: 2, Weights: dt}.Simulate()
		return res.DecodeSeconds, err
	}

	tiers := []engine.Kernel{engine.KernelBlocked, engine.KernelParallel,
		engine.KernelTileBF16, engine.KernelTileBF16Parallel,
		engine.KernelInt8, engine.KernelLUT}
	fmt.Printf("\nmodeled roofline sweep  (%s target, %s draft, %s, ctx=%d, k=%d)\n",
		target.Name, draft.Name, setup.CPU.Name, ctx, lookahead)
	fmt.Printf("%-22s %6s %6s %6s  %14s  %14s  %8s  %8s\n",
		"kernel", "dtype", "batch", "alpha", "baseline tok/s", "spec tok/s", "speedup", "tok/pass")
	for _, kern := range tiers {
		dt := specTierDtype(kern)
		for _, batch := range batches {
			targetStep, err := step(target, batch, dt)
			if err != nil {
				return err
			}
			draftStep, err := step(draft, batch, dt)
			if err != nil {
				return err
			}
			verify, err := specdec.VerifySecondsDT(target, setup, batch, ctx, lookahead+1, dt)
			if err != nil {
				return err
			}
			for _, alpha := range alphas {
				e := specdec.ExpectedTokensPerCycle(alpha, lookahead)
				cycle := float64(lookahead)*draftStep + verify
				pt := modeledPoint{
					Kernel: kern.String(), Dtype: dt.String(),
					Batch: batch, Alpha: alpha, Lookahead: lookahead,
					BaselineTokS:  float64(batch) / targetStep,
					SpecTokS:      float64(batch) * e / cycle,
					Speedup:       targetStep * e / cycle,
					TokensPerPass: e,
					DraftShare:    float64(lookahead) * draftStep / cycle,
				}
				rep.Modeled = append(rep.Modeled, pt)
				fmt.Printf("%-22s %6s %6d %6.2f  %14.1f  %14.1f  %7.2fx  %8.2f\n",
					pt.Kernel, pt.Dtype, batch, alpha,
					pt.BaselineTokS, pt.SpecTokS, pt.Speedup, e)
			}
		}
	}

	for _, pt := range rep.Modeled {
		if pt.Batch == 1 && pt.Alpha >= 0.7 && pt.Speedup < 1.5 &&
			(pt.Kernel == engine.KernelTileBF16.String() ||
				pt.Kernel == engine.KernelTileBF16Parallel.String()) {
			return fmt.Errorf("modeled tile-tier speedup %.2fx at batch 1 alpha %.2f, want >= 1.5x",
				pt.Speedup, pt.Alpha)
		}
	}
	return nil
}

// steerTo returns a Steer function pinning acceptance near alpha: each
// proposal is the known-correct baseline token with probability alpha and
// a guaranteed-wrong token otherwise. Only the first wrong token per
// cycle matters (the verification pass discards the rest), so the leading
// accepted run is Bernoulli(alpha), matching the specdec model.
func steerTo(ref []int, rng *rand.Rand, alpha float64, vocab int) func(outLen, i, proposed int) int {
	return func(outLen, i, proposed int) int {
		pos := outLen + i
		if pos >= len(ref) {
			return proposed
		}
		if rng.Float64() < alpha {
			return ref[pos]
		}
		wrong := ref[pos] + 1
		if wrong >= vocab {
			wrong = 0
		}
		return wrong
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// decodeTokS measures decode tokens/second (and prefill seconds) for one
// engine over `reps` Generate runs, keeping the best decode rate.
func decodeTokS(e *engine.Engine, prompts [][]int, maxNew, reps int) (tokS, prefill float64, err error) {
	for r := 0; r < reps; r++ {
		_, st, gerr := e.Generate(prompts, maxNew)
		if gerr != nil {
			return 0, 0, gerr
		}
		if st.DecodeSeconds > 0 {
			if rate := float64(len(prompts)*(maxNew-1)) / st.DecodeSeconds; rate > tokS {
				tokS = rate
				prefill = st.PrefillSeconds
			}
		}
	}
	return tokS, prefill, nil
}

func bestOf(reps int, f func()) float64 {
	best := 0.0
	for r := 0; r < reps; r++ {
		start := time.Now()
		f()
		el := time.Since(start).Seconds()
		if best == 0 || el < best {
			best = el
		}
	}
	return best
}

func randMat(r *rand.Rand, n int) []float32 {
	m := make([]float32, n)
	for i := range m {
		m[i] = float32(r.NormFloat64())
	}
	return m
}

func ints(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("size must be positive, got %d", n)
		}
		out = append(out, n)
	}
	return out, nil
}
