// Command gemmbench measures the repository's real GEMM kernel tiers on
// the current machine — the functional analog of Fig 1. It reports
// GFLOP/s for the naive, blocked, parallel, and AMX-emulating BF16 tile
// kernels across matrix sizes, showing the same qualitative structure the
// paper measures across ISAs: tiled/parallel kernels pull ahead as
// matrices grow.
//
// With -decode it instead sweeps decode shapes (M = batch ∈ {1,4,8,16,32}),
// contrasting the legacy per-sequence GEMV loop against the fused batch
// GEMM over packed weights, and runs the tiny functional engine end to end
// (fused decode vs the per-sequence baseline) — the software analog of the
// paper's throughput-vs-batch curves. -json writes the results to a file
// (the perf-trajectory artifact `make bench` stores as BENCH_decode.json).
//
// Usage:
//
//	gemmbench                        # default sizes 64..512
//	gemmbench -sizes 128,256 -reps 5
//	gemmbench -decode -json BENCH_decode.json
//	gemmbench -decode -short         # CI-sized variant
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/kernels"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/workload"
)

type tier struct {
	name string
	run  func(n int, a, b, c []float32)
}

func main() {
	sizesFlag := flag.String("sizes", "64,128,256,512", "comma-separated square sizes")
	reps := flag.Int("reps", 3, "repetitions per measurement (best is kept)")
	withNaive := flag.Bool("naive", true, "include the naive kernel (slow at large sizes)")
	decode := flag.Bool("decode", false, "run the decode-shape sweep (per-seq GEMV loop vs fused batch GEMM)")
	jsonOut := flag.String("json", "", "write decode sweep results to this JSON file")
	short := flag.Bool("short", false, "CI-sized decode sweep (smaller shapes, fewer reps)")
	flag.Parse()

	if *decode {
		if err := runDecode(*jsonOut, *short); err != nil {
			fmt.Fprintln(os.Stderr, "gemmbench:", err)
			os.Exit(1)
		}
		return
	}

	sizes, err := ints(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gemmbench:", err)
		os.Exit(1)
	}
	workers := runtime.GOMAXPROCS(0)
	tiers := []tier{
		{"blocked", func(n int, a, b, c []float32) { kernels.GemmBlocked(n, n, n, a, b, c) }},
		{fmt.Sprintf("parallel(%d)", workers), func(n int, a, b, c []float32) { kernels.GemmParallel(n, n, n, a, b, c, workers) }},
		{"tile-bf16", func(n int, a, b, c []float32) { kernels.GemmTileBF16(n, n, n, a, b, c) }},
		{fmt.Sprintf("tile-bf16-par(%d)", workers), func(n int, a, b, c []float32) { kernels.GemmTileBF16Parallel(n, n, n, a, b, c, workers) }},
	}
	if *withNaive {
		tiers = append([]tier{{"naive", func(n int, a, b, c []float32) { kernels.GemmNaive(n, n, n, a, b, c) }}}, tiers...)
	}

	fmt.Printf("%-8s", "size")
	for _, t := range tiers {
		fmt.Printf("  %18s", t.name)
	}
	fmt.Println("   (GFLOP/s, best of", *reps, "reps)")

	rng := rand.New(rand.NewSource(1))
	for _, n := range sizes {
		a, b, c := randMat(rng, n*n), randMat(rng, n*n), make([]float32, n*n)
		fmt.Printf("%-8d", n)
		for _, t := range tiers {
			best := 0.0
			for r := 0; r < *reps; r++ {
				start := time.Now()
				t.run(n, a, b, c)
				el := time.Since(start).Seconds()
				if g := 2 * float64(n) * float64(n) * float64(n) / el / 1e9; g > best {
					best = g
				}
			}
			fmt.Printf("  %18.2f", best)
		}
		fmt.Println()
	}
}

// kernelPoint is one decode-shape kernel measurement: M rows × [k,n]
// weight, per-sequence loop vs fused batch GEMM.
type kernelPoint struct {
	Tier          string  `json:"tier"`
	M             int     `json:"m"`
	K             int     `json:"k"`
	N             int     `json:"n"`
	PerSeqGFLOPs  float64 `json:"perseq_gflops"`
	FusedGFLOPs   float64 `json:"fused_gflops"`
	Speedup       float64 `json:"speedup"`
	PerSeqSeconds float64 `json:"perseq_seconds"`
	FusedSeconds  float64 `json:"fused_seconds"`
}

// enginePoint is one end-to-end tiny-engine measurement at a batch size.
type enginePoint struct {
	Family          string  `json:"family"`
	Kernel          string  `json:"kernel"`
	Batch           int     `json:"batch"`
	PromptLen       int     `json:"prompt_len"`
	NewTokens       int     `json:"new_tokens"`
	FusedDecodeTokS float64 `json:"fused_decode_toks"`
	BaseDecodeTokS  float64 `json:"baseline_decode_toks"`
	DecodeSpeedup   float64 `json:"decode_speedup"`
	FusedPrefillS   float64 `json:"fused_prefill_seconds"`
	BasePrefillS    float64 `json:"baseline_prefill_seconds"`
}

// benchReport is the BENCH_decode.json schema.
type benchReport struct {
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Short       bool          `json:"short"`
	KernelSweep []kernelPoint `json:"kernel_sweep"`
	EngineSweep []enginePoint `json:"engine_sweep"`
}

func runDecode(jsonPath string, short bool) error {
	batches := []int{1, 4, 8, 16, 32}
	k, n := 256, 1024
	reps := 5
	newTokens := 24
	if short {
		batches = []int{1, 8}
		k, n = 128, 512
		reps = 2
		newTokens = 8
	}
	rep := benchReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Short: short}

	fmt.Printf("decode-shape kernel sweep  (weight %dx%d, best of %d reps)\n", k, n, reps)
	fmt.Printf("%-14s %6s  %14s  %14s  %8s\n", "tier", "M", "perseq GFLOP/s", "fused GFLOP/s", "speedup")
	rng := rand.New(rand.NewSource(1))
	b := randMat(rng, k*n)
	pool := kernels.NewPool(0)
	defer pool.Close()
	for _, tierName := range []string{"tile-bf16", "blocked-fp32"} {
		var pb *kernels.PackedB
		var perSeq func(m int, a, c []float32)
		if tierName == "tile-bf16" {
			pb = kernels.PackBBF16(k, n, b)
			perSeq = func(m int, a, c []float32) {
				for i := 0; i < m; i++ {
					kernels.GemmTileBF16(1, n, k, a[i*k:(i+1)*k], b, c[i*n:(i+1)*n])
				}
			}
		} else {
			pb = kernels.PackB(k, n, b)
			perSeq = func(m int, a, c []float32) {
				for i := 0; i < m; i++ {
					kernels.GemmBlocked(1, n, k, a[i*k:(i+1)*k], b, c[i*n:(i+1)*n])
				}
			}
		}
		var job kernels.PackedJob
		for _, m := range batches {
			a, c := randMat(rng, m*k), make([]float32, m*n)
			flops := 2 * float64(m) * float64(n) * float64(k)
			ps := bestOf(reps, func() { perSeq(m, a, c) })
			fs := bestOf(reps, func() { kernels.GemmPackedPooled(pool, &job, m, a, pb, c) })
			pt := kernelPoint{
				Tier: tierName, M: m, K: k, N: n,
				PerSeqGFLOPs: flops / ps / 1e9, FusedGFLOPs: flops / fs / 1e9,
				Speedup: ps / fs, PerSeqSeconds: ps, FusedSeconds: fs,
			}
			rep.KernelSweep = append(rep.KernelSweep, pt)
			fmt.Printf("%-14s %6d  %14.2f  %14.2f  %7.2fx\n",
				tierName, m, pt.PerSeqGFLOPs, pt.FusedGFLOPs, pt.Speedup)
		}
	}

	fmt.Printf("\ntiny-engine decode throughput  (prompt 8, %d new tokens)\n", newTokens)
	fmt.Printf("%-8s %-20s %6s  %12s  %12s  %8s\n",
		"family", "kernel", "batch", "fused tok/s", "perseq tok/s", "speedup")
	families := []model.Family{model.LLaMA2}
	if !short {
		families = append(families, model.OPT)
	}
	for _, fam := range families {
		kern := engine.KernelTileBF16
		w, err := engine.NewWeights(model.Tiny(fam), 42, tensor.BF16)
		if err != nil {
			return err
		}
		fused, err := engine.New(w, engine.Options{Kernel: kern})
		if err != nil {
			return err
		}
		base, err := engine.New(w, engine.Options{Kernel: kern, DisablePacking: true})
		if err != nil {
			return err
		}
		famName := "opt"
		if fam == model.LLaMA2 {
			famName = "llama"
		}
		for _, batch := range batches {
			prompts := make([][]int, batch)
			for i := range prompts {
				prompts[i] = workload.NewGenerator(int64(i+1)).Prompt(8, w.Config.Vocab)
			}
			fTokS, fPre, err := decodeTokS(fused, prompts, newTokens, reps)
			if err != nil {
				return err
			}
			bTokS, bPre, err := decodeTokS(base, prompts, newTokens, reps)
			if err != nil {
				return err
			}
			pt := enginePoint{
				Family: famName, Kernel: kern.String(), Batch: batch,
				PromptLen: 8, NewTokens: newTokens,
				FusedDecodeTokS: fTokS, BaseDecodeTokS: bTokS,
				DecodeSpeedup: fTokS / bTokS,
				FusedPrefillS: fPre, BasePrefillS: bPre,
			}
			rep.EngineSweep = append(rep.EngineSweep, pt)
			fmt.Printf("%-8s %-20s %6d  %12.1f  %12.1f  %7.2fx\n",
				famName, pt.Kernel, batch, fTokS, bTokS, pt.DecodeSpeedup)
		}
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
	return nil
}

// decodeTokS measures decode tokens/second (and prefill seconds) for one
// engine over `reps` Generate runs, keeping the best decode rate.
func decodeTokS(e *engine.Engine, prompts [][]int, maxNew, reps int) (tokS, prefill float64, err error) {
	for r := 0; r < reps; r++ {
		_, st, gerr := e.Generate(prompts, maxNew)
		if gerr != nil {
			return 0, 0, gerr
		}
		if st.DecodeSeconds > 0 {
			if rate := float64(len(prompts)*(maxNew-1)) / st.DecodeSeconds; rate > tokS {
				tokS = rate
				prefill = st.PrefillSeconds
			}
		}
	}
	return tokS, prefill, nil
}

func bestOf(reps int, f func()) float64 {
	best := 0.0
	for r := 0; r < reps; r++ {
		start := time.Now()
		f()
		el := time.Since(start).Seconds()
		if best == 0 || el < best {
			best = el
		}
	}
	return best
}

func randMat(r *rand.Rand, n int) []float32 {
	m := make([]float32, n)
	for i := range m {
		m[i] = float32(r.NormFloat64())
	}
	return m
}

func ints(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("size must be positive, got %d", n)
		}
		out = append(out, n)
	}
	return out, nil
}
