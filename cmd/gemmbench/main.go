// Command gemmbench measures the repository's real GEMM kernel tiers on
// the current machine — the functional analog of Fig 1. It reports
// GFLOP/s for the naive, blocked, parallel, and AMX-emulating BF16 tile
// kernels across matrix sizes, showing the same qualitative structure the
// paper measures across ISAs: tiled/parallel kernels pull ahead as
// matrices grow.
//
// Usage:
//
//	gemmbench                # default sizes 64..512
//	gemmbench -sizes 128,256 -reps 5
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/kernels"
)

type tier struct {
	name string
	run  func(n int, a, b, c []float32)
}

func main() {
	sizesFlag := flag.String("sizes", "64,128,256,512", "comma-separated square sizes")
	reps := flag.Int("reps", 3, "repetitions per measurement (best is kept)")
	withNaive := flag.Bool("naive", true, "include the naive kernel (slow at large sizes)")
	flag.Parse()

	sizes, err := ints(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gemmbench:", err)
		os.Exit(1)
	}
	workers := runtime.GOMAXPROCS(0)
	tiers := []tier{
		{"blocked", func(n int, a, b, c []float32) { kernels.GemmBlocked(n, n, n, a, b, c) }},
		{fmt.Sprintf("parallel(%d)", workers), func(n int, a, b, c []float32) { kernels.GemmParallel(n, n, n, a, b, c, workers) }},
		{"tile-bf16", func(n int, a, b, c []float32) { kernels.GemmTileBF16(n, n, n, a, b, c) }},
		{fmt.Sprintf("tile-bf16-par(%d)", workers), func(n int, a, b, c []float32) { kernels.GemmTileBF16Parallel(n, n, n, a, b, c, workers) }},
	}
	if *withNaive {
		tiers = append([]tier{{"naive", func(n int, a, b, c []float32) { kernels.GemmNaive(n, n, n, a, b, c) }}}, tiers...)
	}

	fmt.Printf("%-8s", "size")
	for _, t := range tiers {
		fmt.Printf("  %18s", t.name)
	}
	fmt.Println("   (GFLOP/s, best of", *reps, "reps)")

	rng := rand.New(rand.NewSource(1))
	for _, n := range sizes {
		a, b, c := randMat(rng, n*n), randMat(rng, n*n), make([]float32, n*n)
		fmt.Printf("%-8d", n)
		for _, t := range tiers {
			best := 0.0
			for r := 0; r < *reps; r++ {
				start := time.Now()
				t.run(n, a, b, c)
				el := time.Since(start).Seconds()
				if g := 2 * float64(n) * float64(n) * float64(n) / el / 1e9; g > best {
					best = g
				}
			}
			fmt.Printf("  %18.2f", best)
		}
		fmt.Println()
	}
}

func randMat(r *rand.Rand, n int) []float32 {
	m := make([]float32, n)
	for i := range m {
		m[i] = float32(r.NormFloat64())
	}
	return m
}

func ints(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("size must be positive, got %d", n)
		}
		out = append(out, n)
	}
	return out, nil
}
