package main

// chat.go is llmperf's prefix-cache measurement mode: it replays a
// multi-turn chatbot trace (internal/workload.ChatSessions) against a
// running llmperfd twice — once with the prefix cache disabled per
// request, once enabled — and reports the hit rate and the prefill
// compute the cache saved. Prefill compute is measured in modeled
// seconds (ttft_s - queue_s from each result), so the comparison is
// deterministic and independent of -timescale.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/workload"
)

// chatResult aggregates one replay pass.
type chatResult struct {
	ok, failed     int
	prefillSeconds float64 // sum of modeled ttft - queue
	hits           int
	cachedTokens   int
	savedSeconds   float64 // server-reported cost-model savings
}

// loadChat runs the chatbot A/B measurement. Sessions replay
// sequentially within themselves (turn t+1 needs turn t's context) and
// concurrently across each other, bounded by concurrency.
func loadChat(base, platform, modelName string, in, out, sessions, turns, sysTokens, concurrency int, seed int64) {
	if concurrency < 1 {
		fatal(fmt.Errorf("concurrency must be positive"))
	}
	g := workload.NewGenerator(seed)
	g.MeanInputLen, g.MeanOutputLen = in, out
	trace := workload.BySession(g.ChatSessions(sessions, turns, sysTokens))
	total := sessions * turns

	fmt.Printf("chat: %d sessions x %d turns to %s/v1/generate (%s/%s, system=%d user~%d out~%d), %d clients\n",
		sessions, turns, base, platform, modelName, sysTokens, in, out, concurrency)

	off := replayChat(base, platform, modelName, trace, concurrency, false)
	flushCache(base)
	on := replayChat(base, platform, modelName, trace, concurrency, true)

	fmt.Printf("  cache off  : %d ok, %d failed, prefill %.3fs (modeled)\n",
		off.ok, off.failed, off.prefillSeconds)
	fmt.Printf("  cache on   : %d ok, %d failed, prefill %.3fs (modeled)\n",
		on.ok, on.failed, on.prefillSeconds)
	hitRate := 0.0
	if on.ok > 0 {
		hitRate = float64(on.hits) / float64(on.ok)
	}
	fmt.Printf("  cache hits : %d/%d (hit_rate=%.2f), %d prompt tokens served from cache\n",
		on.hits, total, hitRate, on.cachedTokens)
	fmt.Printf("  saved      : %.3fs prefill compute per the platform cost model\n", on.savedSeconds)
	if off.prefillSeconds > 0 {
		red := 100 * (1 - on.prefillSeconds/off.prefillSeconds)
		fmt.Printf("  prefill_reduction=%.1f%% (cache on vs off)\n", red)
	}
	printServerCacheStatus(base)
}

// replayChat replays the per-session trace once and aggregates results.
func replayChat(base string, platform, modelName string, trace [][]workload.PrefixRequest, concurrency int, cacheOn bool) chatResult {
	client := &http.Client{Timeout: 5 * time.Minute}
	var mu sync.Mutex
	var agg chatResult
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	for _, session := range trace {
		wg.Add(1)
		go func(session []workload.PrefixRequest) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			for _, r := range session {
				body := map[string]any{
					"platform": platform, "model": modelName,
					"in": r.InputLen, "out": r.OutputLen,
					"prefix_group": r.Group, "prefix_tokens": r.SharedTokens,
				}
				if !cacheOn {
					body["cache"] = map[string]any{"enabled": false}
				}
				buf, err := json.Marshal(body)
				if err != nil {
					fatal(err)
				}
				resp, err := client.Post(base+"/v1/generate", "application/json", bytes.NewReader(buf))
				if err != nil {
					mu.Lock()
					agg.failed++
					mu.Unlock()
					continue
				}
				var res struct {
					QueueSeconds        float64 `json:"queue_s"`
					TTFTSeconds         float64 `json:"ttft_s"`
					CachedTokens        int     `json:"cached_tokens"`
					PrefillSavedSeconds float64 `json:"prefill_saved_s"`
				}
				decodeErr := json.NewDecoder(resp.Body).Decode(&res)
				hdr := resp.Header.Get("X-Prefix-Cache")
				resp.Body.Close()
				mu.Lock()
				if resp.StatusCode != http.StatusOK || decodeErr != nil {
					agg.failed++
				} else {
					agg.ok++
					if p := res.TTFTSeconds - res.QueueSeconds; p > 0 {
						agg.prefillSeconds += p
					}
					if res.CachedTokens > 0 || strings.HasPrefix(hdr, "hit") {
						agg.hits++
						agg.cachedTokens += res.CachedTokens
						agg.savedSeconds += res.PrefillSavedSeconds
					}
				}
				mu.Unlock()
			}
		}(session)
	}
	wg.Wait()
	return agg
}

// flushCache resets the server's prefix cache between the A and B passes
// so the enabled pass starts cold. A 404 (caching disabled server-side)
// is tolerated; the B pass will simply score zero hits.
func flushCache(base string) {
	resp, err := http.Post(base+"/v1/admin/cache/flush", "application/json", nil)
	if err == nil {
		resp.Body.Close()
	}
}

// printServerCacheStatus corroborates the client-side tallies with the
// server's own GET /v1/cache view.
func printServerCacheStatus(base string) {
	resp, err := http.Get(base + "/v1/cache")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var st struct {
		HitRate        float64 `json:"hit_rate"`
		RetainedBlocks int     `json:"retained_blocks"`
		HitTokens      uint64  `json:"hit_tokens"`
		Evictions      uint64  `json:"evictions"`
	}
	if json.NewDecoder(resp.Body).Decode(&st) != nil {
		return
	}
	fmt.Printf("  server     : /v1/cache hit_rate=%.2f retained_blocks=%d hit_tokens=%d evictions=%d\n",
		st.HitRate, st.RetainedBlocks, st.HitTokens, st.Evictions)
}
