// Command llmperf simulates one LLM-inference point on a modeled platform
// and prints the paper's metrics (TTFT, TPOT, E2E latency, tokens/s) plus
// emulated hardware counters for CPU runs.
//
// Usage:
//
//	llmperf -platform spr -model OPT-30B -batch 4
//	llmperf -platform h100 -model OPT-66B -in 512 -out 32
//	llmperf -platform spr -cores 96 -cluster snc -memmode cache -model LLaMA2-13B
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/offload"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

func main() {
	platform := flag.String("platform", "spr", "spr | icl | a100 | h100 | gh200")
	modelName := flag.String("model", "OPT-13B", "model preset (see README)")
	batch := flag.Int("batch", 1, "batch size")
	in := flag.Int("in", 128, "input (prompt) length")
	out := flag.Int("out", 32, "output (generation) length")
	cores := flag.Int("cores", 48, "active CPU cores (CPU platforms)")
	memmode := flag.String("memmode", "flat", "SPR memory mode: flat | cache | hbm-only")
	cluster := flag.String("cluster", "quad", "SPR clustering mode: quad | snc")
	showOps := flag.Bool("ops", false, "print the per-operator roofline breakdown (CPU platforms)")
	traceOut := flag.String("trace", "", "write a Chrome trace JSON of one offloaded decode step to this file (GPU platforms)")
	flag.Parse()

	m, err := core.ModelByName(*modelName)
	if err != nil {
		fatal(err)
	}

	var res core.Result
	switch *platform {
	case "spr", "icl":
		setup, err := cpuSetup(*platform, *cores, *memmode, *cluster)
		if err != nil {
			fatal(err)
		}
		res, err = core.SimulateCPU(setup, m, *batch, *in, *out)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		c := res.Counters
		fmt.Printf("counters: LLC MPKI=%.1f core-util=%.2f UPI-util=%.2f remote-LLC=%.3g\n",
			c.LLCMPKI, c.CoreUtilization, c.UPIUtilization, c.RemoteLLCAccess)
		if *showOps {
			run := perfmodel.CPURun{Model: m, Setup: setup, Batch: *batch,
				InputLen: *in, OutputLen: *out, Weights: tensor.BF16}
			pre, err := run.Analyze(model.Prefill, *in, 0)
			if err != nil {
				fatal(err)
			}
			fmt.Println("\nprefill roofline:")
			fmt.Print(perfmodel.RenderAnalysis(pre))
			dec, err := run.Analyze(model.Decode, 1, *in)
			if err != nil {
				fatal(err)
			}
			fmt.Println("\ndecode-step roofline:")
			fmt.Print(perfmodel.RenderAnalysis(dec))
		}
	case "a100", "h100", "gh200":
		g := core.A100()
		switch *platform {
		case "h100":
			g = core.H100()
		case "gh200":
			g = hw.GH200
		}
		res, err = core.SimulateGPU(g, m, *batch, *in, *out)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		if res.TransferSeconds > 0 {
			fmt.Printf("offloading: %.0f%% of time on PCIe data loading (Fig 18 metric)\n",
				res.PCIeFraction()*100)
		}
		if *traceOut != "" {
			if res.TransferSeconds == 0 {
				fatal(fmt.Errorf("-trace requires an offloaded run (model fits resident)"))
			}
			run := offload.Run{GPU: g, Host: hw.SPRMax9468, Model: m,
				Batch: *batch, InputLen: *in, OutputLen: *out, Weights: tensor.BF16}
			tl, err := run.Trace(model.Decode, *in)
			if err != nil {
				fatal(err)
			}
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			if err := tl.WriteChromeTrace(f); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote Chrome trace of one decode step to %s (open in chrome://tracing)\n", *traceOut)
		}
	default:
		fatal(fmt.Errorf("unknown platform %q", *platform))
	}
}

func cpuSetup(platform string, cores int, memmode, cluster string) (core.CPUSetup, error) {
	setup := core.SPRQuadFlat(cores)
	if platform == "icl" {
		setup = core.ICLBaseline()
		setup.Cores = cores
		if cores > 64 {
			return setup, fmt.Errorf("icl has 64 cores total")
		}
		return setup, nil
	}
	switch memmode {
	case "flat":
		setup.Mem = memsim.Flat
	case "cache":
		setup.Mem = memsim.Cache
	case "hbm-only":
		setup.Mem = memsim.HBMOnly
	default:
		return setup, fmt.Errorf("unknown memory mode %q", memmode)
	}
	switch cluster {
	case "quad":
		setup.Cluster = memsim.Quad
	case "snc":
		setup.Cluster = memsim.SNC4
	default:
		return setup, fmt.Errorf("unknown clustering mode %q", cluster)
	}
	_ = hw.SPRMax9468
	return setup, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llmperf:", err)
	os.Exit(1)
}
