// Command llmperf simulates one LLM-inference point on a modeled platform
// and prints the paper's metrics (TTFT, TPOT, E2E latency, tokens/s) plus
// emulated hardware counters for CPU runs. With -url it instead acts as an
// HTTP load generator against a running llmperfd gateway, reporting
// client-side latency percentiles and per-status counts.
//
// In load-generator mode, -stream switches to SSE streaming requests and
// reports client-side TTFT and inter-token-latency percentiles, and -ramp
// calibrates the server's capacity then sweeps offered load through
// multiples of it with a mixed interactive/standard/batch class mix,
// reporting per-class SLO-conditioned goodput (the overload-control A/B
// harness behind `make overload-demo`).
//
// Usage:
//
//	llmperf -platform spr -model OPT-30B -batch 4
//	llmperf -platform h100 -model OPT-66B -in 512 -out 32
//	llmperf -platform spr -cores 96 -cluster snc -memmode cache -model LLaMA2-13B
//	llmperf -url http://localhost:8080 -n 128 -concurrency 16 -model OPT-13B
//	llmperf -url http://localhost:8080 -stream -platform tiny-opt -n 32
//	llmperf -url http://localhost:8080 -ramp -platform tiny-opt -ramp-steps 0.5,1,2
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/offload"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
	"repro/internal/trace"
)

func main() {
	platform := flag.String("platform", "spr", "spr | icl | a100 | h100 | gh200")
	modelName := flag.String("model", "OPT-13B", "model preset (see README)")
	batch := flag.Int("batch", 1, "batch size")
	in := flag.Int("in", 128, "input (prompt) length")
	out := flag.Int("out", 32, "output (generation) length")
	cores := flag.Int("cores", 48, "active CPU cores (CPU platforms)")
	memmode := flag.String("memmode", "flat", "SPR memory mode: flat | cache | hbm-only")
	cluster := flag.String("cluster", "quad", "SPR clustering mode: quad | snc")
	showOps := flag.Bool("ops", false, "print the per-operator roofline breakdown (CPU platforms)")
	traceOut := flag.String("trace", "", "write a Chrome trace JSON of one offloaded decode step to this file (GPU platforms)")
	url := flag.String("url", "", "load-generator mode: base URL of a running llmperfd (e.g. http://localhost:8080)")
	n := flag.Int("n", 64, "load generator: total requests")
	concurrency := flag.Int("concurrency", 8, "load generator: concurrent clients")
	stream := flag.Bool("stream", false, "load generator: use SSE streaming and report client-side TTFT/ITL percentiles")
	ramp := flag.Bool("ramp", false, "load generator: sweep offered load past saturation with a 3-class mix and report per-class goodput (overload-control drill)")
	rampSteps := flag.String("ramp-steps", "0.5,1,2", "ramp: comma-separated offered-load multipliers of calibrated capacity")
	rampStep := flag.Duration("ramp-step-duration", 6*time.Second, "ramp: duration of the calibration phase and each open-loop step")
	rampSLO := flag.Float64("ramp-slo-ttft-ms", 500, "ramp: interactive TTFT SLO (ms) that conditions interactive goodput")
	chatSessions := flag.Int("chat-sessions", 0, "load generator: replay a multi-turn chatbot trace with this many sessions and A/B the prefix cache (0 = off)")
	chatTurns := flag.Int("chat-turns", 4, "load generator: turns per chat session")
	systemTokens := flag.Int("system-tokens", 512, "load generator: shared system-prompt tokens per chat session")
	seed := flag.Int64("seed", 1, "load generator: workload seed for the chat trace")
	flag.Parse()

	if *url != "" {
		if *ramp {
			loadRamp(*url, *platform, *modelName, *in, *out, *concurrency,
				*rampSteps, *rampStep, *rampSLO)
			return
		}
		if *chatSessions > 0 {
			loadChat(*url, *platform, *modelName, *in, *out, *chatSessions, *chatTurns, *systemTokens, *concurrency, *seed)
			return
		}
		if *stream {
			loadStream(*url, *platform, *modelName, *in, *out, *n, *concurrency)
		} else {
			loadGenerate(*url, *platform, *modelName, *in, *out, *n, *concurrency)
		}
		return
	}

	m, err := core.ModelByName(*modelName)
	if err != nil {
		fatal(err)
	}

	var res core.Result
	switch *platform {
	case "spr", "icl":
		setup, err := cpuSetup(*platform, *cores, *memmode, *cluster)
		if err != nil {
			fatal(err)
		}
		res, err = core.SimulateCPU(setup, m, *batch, *in, *out)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		c := res.Counters
		fmt.Printf("counters: LLC MPKI=%.1f core-util=%.2f UPI-util=%.2f remote-LLC=%.3g\n",
			c.LLCMPKI, c.CoreUtilization, c.UPIUtilization, c.RemoteLLCAccess)
		if *showOps {
			run := perfmodel.CPURun{Model: m, Setup: setup, Batch: *batch,
				InputLen: *in, OutputLen: *out, Weights: tensor.BF16}
			pre, err := run.Analyze(model.Prefill, *in, 0)
			if err != nil {
				fatal(err)
			}
			fmt.Println("\nprefill roofline:")
			fmt.Print(perfmodel.RenderAnalysis(pre))
			dec, err := run.Analyze(model.Decode, 1, *in)
			if err != nil {
				fatal(err)
			}
			fmt.Println("\ndecode-step roofline:")
			fmt.Print(perfmodel.RenderAnalysis(dec))
		}
	case "a100", "h100", "gh200":
		g := core.A100()
		switch *platform {
		case "h100":
			g = core.H100()
		case "gh200":
			g = hw.GH200
		}
		res, err = core.SimulateGPU(g, m, *batch, *in, *out)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		if res.TransferSeconds > 0 {
			fmt.Printf("offloading: %.0f%% of time on PCIe data loading (Fig 18 metric)\n",
				res.PCIeFraction()*100)
		}
		if *traceOut != "" {
			if res.TransferSeconds == 0 {
				fatal(fmt.Errorf("-trace requires an offloaded run (model fits resident)"))
			}
			run := offload.Run{GPU: g, Host: hw.SPRMax9468, Model: m,
				Batch: *batch, InputLen: *in, OutputLen: *out, Weights: tensor.BF16}
			tl, err := run.Trace(model.Decode, *in)
			if err != nil {
				fatal(err)
			}
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			if err := tl.WriteChromeTrace(f); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote Chrome trace of one decode step to %s (open in chrome://tracing)\n", *traceOut)
		}
	default:
		fatal(fmt.Errorf("unknown platform %q", *platform))
	}
}

func cpuSetup(platform string, cores int, memmode, cluster string) (core.CPUSetup, error) {
	setup := core.SPRQuadFlat(cores)
	if platform == "icl" {
		setup = core.ICLBaseline()
		setup.Cores = cores
		if cores > 64 {
			return setup, fmt.Errorf("icl has 64 cores total")
		}
		return setup, nil
	}
	switch memmode {
	case "flat":
		setup.Mem = memsim.Flat
	case "cache":
		setup.Mem = memsim.Cache
	case "hbm-only":
		setup.Mem = memsim.HBMOnly
	default:
		return setup, fmt.Errorf("unknown memory mode %q", memmode)
	}
	switch cluster {
	case "quad":
		setup.Cluster = memsim.Quad
	case "snc":
		setup.Cluster = memsim.SNC4
	default:
		return setup, fmt.Errorf("unknown clustering mode %q", cluster)
	}
	_ = hw.SPRMax9468
	return setup, nil
}

// loadGenerate drives n POST /v1/generate requests at the given base URL
// with the requested client concurrency, then reports client-side wall
// latency percentiles and a count per HTTP status.
func loadGenerate(base, platform, modelName string, in, out, n, concurrency int) {
	if concurrency < 1 {
		fatal(fmt.Errorf("concurrency must be positive"))
	}
	body, err := json.Marshal(map[string]any{
		"platform": platform, "model": modelName, "in": in, "out": out})
	if err != nil {
		fatal(err)
	}
	endpoint := base + "/v1/generate"
	client := &http.Client{Timeout: 5 * time.Minute}

	var (
		mu        sync.Mutex
		latencies []float64
		statuses  = map[int]int{}
		netErrs   int
		// phases accumulates per-phase server-side seconds parsed from each
		// 200 response's Server-Timing header, keyed by phase name.
		phases = map[string][]float64{}
		// replicas counts 200s per serving replica (X-Replica-ID), and
		// failovers/hedged tally the cluster's rescue work (X-Failovers,
		// X-Hedged) — all empty against a single-gateway llmperfd.
		replicas  = map[string]int{}
		failovers int
		hedged    int
		// spec accumulates speculation totals from X-Speculation headers;
		// silent when the server never advertises speculation.
		spec specStats
	)
	jobs := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
				t0 := time.Now()
				resp, err := client.Post(endpoint, "application/json", bytes.NewReader(body))
				lat := time.Since(t0).Seconds()
				mu.Lock()
				if err != nil {
					netErrs++
				} else {
					statuses[resp.StatusCode]++
					if resp.StatusCode == http.StatusOK {
						latencies = append(latencies, lat)
						// ParseServerTiming yields milliseconds (the header's
						// dur unit); the breakdown table reports seconds.
						for name, ms := range trace.ParseServerTiming(resp.Header.Get("Server-Timing")) {
							phases[name] = append(phases[name], ms/1e3)
						}
						if id := resp.Header.Get("X-Replica-ID"); id != "" {
							replicas[id]++
						}
						if f, err := strconv.Atoi(resp.Header.Get("X-Failovers")); err == nil {
							failovers += f
						}
						if resp.Header.Get("X-Hedged") == "true" {
							hedged++
						}
						spec.observe(resp.Header.Get("X-Speculation"))
					}
					resp.Body.Close()
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- struct{}{}
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start).Seconds()

	fmt.Printf("load: %d requests to %s (%s/%s in=%d out=%d), %d clients, %.2fs wall\n",
		n, endpoint, platform, modelName, in, out, concurrency, wall)
	var codes []int
	for c := range statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Printf("  HTTP %d    : %d\n", c, statuses[c])
	}
	if netErrs > 0 {
		fmt.Printf("  transport  : %d errors\n", netErrs)
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		fmt.Printf("  latency    : p50 %.3fs   p95 %.3fs   p99 %.3fs (client wall)\n",
			quantileSorted(latencies, 0.50), quantileSorted(latencies, 0.95), quantileSorted(latencies, 0.99))
		fmt.Printf("  throughput : %.1f req/s completed\n", float64(len(latencies))/wall)
	}
	printReplicaDistribution(replicas, failovers, hedged)
	printPhaseBreakdown(phases)
	spec.print()
}

// specStats accumulates the server's speculative-decoding outcomes from
// X-Speculation headers ("on;proposed=N;accepted=N;passes=N" / "off").
type specStats struct {
	on, off                    int
	proposed, accepted, passes int
}

func (s *specStats) observe(header string) {
	if header == "" {
		return
	}
	fields := strings.Split(header, ";")
	if fields[0] != "on" {
		s.off++
		return
	}
	s.on++
	for _, f := range fields[1:] {
		name, val, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		v, err := strconv.Atoi(val)
		if err != nil {
			continue
		}
		switch name {
		case "proposed":
			s.proposed += v
		case "accepted":
			s.accepted += v
		case "passes":
			s.passes += v
		}
	}
}

// print renders the speculation section of the report: how much of the
// decode work the draft proposed, how much the target accepted, and the
// verification passes it cost. Silent when the server never sent
// X-Speculation (no draft model configured).
func (s *specStats) print() {
	if s.on+s.off == 0 {
		return
	}
	fmt.Println("  speculation (X-Speculation):")
	fmt.Printf("    requests     : %d speculative, %d plain\n", s.on, s.off)
	if s.passes == 0 {
		return
	}
	fmt.Printf("    acceptance   : %.1f%% (%d of %d proposed)\n",
		100*float64(s.accepted)/float64(max(s.proposed, 1)), s.accepted, s.proposed)
	fmt.Printf("    accepted run : %.2f tokens mean per verify pass\n",
		float64(s.accepted)/float64(s.passes))
	fmt.Printf("    verify passes: %d (%.2f per speculative request)\n",
		s.passes, float64(s.passes)/float64(max(s.on, 1)))
}

// printReplicaDistribution renders how a clustered llmperfd spread the
// load and how much failover/hedging it took to serve it; silent when
// the server never sent X-Replica-ID (single-gateway mode).
func printReplicaDistribution(replicas map[string]int, failovers, hedged int) {
	if len(replicas) == 0 {
		return
	}
	total := 0
	var ids []string
	for id, c := range replicas {
		ids = append(ids, id)
		total += c
	}
	sort.Strings(ids)
	fmt.Println("  replica distribution:")
	for _, id := range ids {
		fmt.Printf("    %-10s %6d (%.0f%%)\n", id, replicas[id],
			100*float64(replicas[id])/float64(total))
	}
	if failovers > 0 || hedged > 0 {
		fmt.Printf("  failovers  : %d rescued requests, %d hedge wins\n", failovers, hedged)
	}
}

// loadStream drives n streaming POST /v1/generate requests and reports
// the two latencies a streaming user actually perceives (§II-C): TTFT —
// request start to the first SSE token chunk — and ITL, the gap between
// consecutive chunks, both measured at the client.
func loadStream(base, platform, modelName string, in, out, n, concurrency int) {
	if concurrency < 1 {
		fatal(fmt.Errorf("concurrency must be positive"))
	}
	body, err := json.Marshal(map[string]any{
		"platform": platform, "model": modelName, "in": in, "out": out,
		"stream": true})
	if err != nil {
		fatal(err)
	}
	endpoint := base + "/v1/generate"
	// No overall client timeout: a stream is alive as long as chunks flow.
	client := &http.Client{}

	var (
		mu       sync.Mutex
		ttfts    []float64
		itls     []float64
		e2es     []float64
		tokens   int
		statuses = map[int]int{}
		netErrs  int
		aborted  int // streams that ended without data: [DONE]
		// Cluster attribution from the terminal generate.result event
		// (streams commit their headers long before the serving replica
		// is known, so it travels in-band).
		replicas  = map[string]int{}
		failovers int
		hedged    int
		// spec accumulates speculation totals from the terminal event's
		// in-band "speculation" field (same format as X-Speculation).
		spec specStats
	)
	jobs := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
				t0 := time.Now()
				resp, err := client.Post(endpoint, "application/json", bytes.NewReader(body))
				if err != nil {
					mu.Lock()
					netErrs++
					mu.Unlock()
					continue
				}
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close()
					mu.Lock()
					statuses[resp.StatusCode]++
					mu.Unlock()
					continue
				}
				var reqTTFT float64
				var reqITLs []float64
				var reqReplica string
				var reqFailovers int
				var reqHedged bool
				var reqSpec string
				reqTokens, done := 0, false
				last := t0
				sc := bufio.NewScanner(resp.Body)
				sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
				for sc.Scan() {
					data, ok := strings.CutPrefix(sc.Text(), "data: ")
					if !ok {
						continue // blank separator lines
					}
					if data == "[DONE]" {
						done = true
						break
					}
					var ev struct {
						Object      string `json:"object"`
						Replica     string `json:"replica"`
						Failovers   int    `json:"failovers"`
						Hedged      bool   `json:"hedged"`
						Speculation string `json:"speculation"`
					}
					if json.Unmarshal([]byte(data), &ev) != nil || ev.Object != "generate.token" {
						if ev.Object == "generate.result" {
							reqReplica, reqFailovers, reqHedged = ev.Replica, ev.Failovers, ev.Hedged
							reqSpec = ev.Speculation
						}
						continue // terminal result event, or error envelope
					}
					now := time.Now()
					if reqTokens == 0 {
						reqTTFT = now.Sub(t0).Seconds()
					} else {
						reqITLs = append(reqITLs, now.Sub(last).Seconds())
					}
					last = now
					reqTokens++
				}
				resp.Body.Close()
				mu.Lock()
				statuses[resp.StatusCode]++
				if reqTokens > 0 {
					ttfts = append(ttfts, reqTTFT)
					itls = append(itls, reqITLs...)
					e2es = append(e2es, time.Since(t0).Seconds())
					tokens += reqTokens
				}
				if reqReplica != "" {
					replicas[reqReplica]++
					failovers += reqFailovers
					if reqHedged {
						hedged++
					}
				}
				spec.observe(reqSpec)
				if !done {
					aborted++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- struct{}{}
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start).Seconds()

	fmt.Printf("stream: %d requests to %s (%s/%s in=%d out=%d), %d clients, %.2fs wall\n",
		n, endpoint, platform, modelName, in, out, concurrency, wall)
	var codes []int
	for c := range statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Printf("  HTTP %d    : %d\n", c, statuses[c])
	}
	if netErrs > 0 {
		fmt.Printf("  transport  : %d errors\n", netErrs)
	}
	if aborted > 0 {
		fmt.Printf("  aborted    : %d streams ended without [DONE]\n", aborted)
	}
	if len(ttfts) > 0 {
		sort.Float64s(ttfts)
		fmt.Printf("  TTFT       : p50 %.3fs   p95 %.3fs   p99 %.3fs (client wall)\n",
			quantileSorted(ttfts, 0.50), quantileSorted(ttfts, 0.95), quantileSorted(ttfts, 0.99))
	}
	if len(itls) > 0 {
		sort.Float64s(itls)
		fmt.Printf("  ITL        : p50 %.1fms   p95 %.1fms   p99 %.1fms (inter-token)\n",
			quantileSorted(itls, 0.50)*1e3, quantileSorted(itls, 0.95)*1e3, quantileSorted(itls, 0.99)*1e3)
	}
	if len(e2es) > 0 {
		sort.Float64s(e2es)
		fmt.Printf("  E2E        : p50 %.3fs   p95 %.3fs   p99 %.3fs\n",
			quantileSorted(e2es, 0.50), quantileSorted(e2es, 0.95), quantileSorted(e2es, 0.99))
		fmt.Printf("  throughput : %.1f tok/s streamed, %.1f req/s completed\n",
			float64(tokens)/wall, float64(len(e2es))/wall)
	}
	printReplicaDistribution(replicas, failovers, hedged)
	spec.print()
}

// printPhaseBreakdown renders the server-side phase percentiles collected
// from Server-Timing headers: where each request's residence time went
// (queueing, batch formation, prefill, decode, ...), as the gateway saw it.
func printPhaseBreakdown(phases map[string][]float64) {
	if len(phases) == 0 {
		return
	}
	var names []string
	seen := map[string]bool{}
	for _, name := range trace.PhaseOrder {
		if _, ok := phases[name]; ok {
			names = append(names, name)
			seen[name] = true
		}
	}
	var rest []string
	for name := range phases {
		if !seen[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	names = append(names, rest...)

	fmt.Println("  server-side phase breakdown (Server-Timing):")
	fmt.Printf("    %-12s %8s %10s %10s %10s\n", "phase", "n", "p50", "p95", "p99")
	for _, name := range names {
		xs := phases[name]
		sort.Float64s(xs)
		fmt.Printf("    %-12s %8d %9.3fs %9.3fs %9.3fs\n", name, len(xs),
			quantileSorted(xs, 0.50), quantileSorted(xs, 0.95), quantileSorted(xs, 0.99))
	}
}

// quantileSorted returns the p-quantile of an ascending-sorted slice.
func quantileSorted(xs []float64, p float64) float64 {
	idx := int(math.Ceil(p*float64(len(xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	return xs[idx]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llmperf:", err)
	os.Exit(1)
}
