// Command llmperf simulates one LLM-inference point on a modeled platform
// and prints the paper's metrics (TTFT, TPOT, E2E latency, tokens/s) plus
// emulated hardware counters for CPU runs. With -url it instead acts as an
// HTTP load generator against a running llmperfd gateway, reporting
// client-side latency percentiles and per-status counts.
//
// Usage:
//
//	llmperf -platform spr -model OPT-30B -batch 4
//	llmperf -platform h100 -model OPT-66B -in 512 -out 32
//	llmperf -platform spr -cores 96 -cluster snc -memmode cache -model LLaMA2-13B
//	llmperf -url http://localhost:8080 -n 128 -concurrency 16 -model OPT-13B
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/offload"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
	"repro/internal/trace"
)

func main() {
	platform := flag.String("platform", "spr", "spr | icl | a100 | h100 | gh200")
	modelName := flag.String("model", "OPT-13B", "model preset (see README)")
	batch := flag.Int("batch", 1, "batch size")
	in := flag.Int("in", 128, "input (prompt) length")
	out := flag.Int("out", 32, "output (generation) length")
	cores := flag.Int("cores", 48, "active CPU cores (CPU platforms)")
	memmode := flag.String("memmode", "flat", "SPR memory mode: flat | cache | hbm-only")
	cluster := flag.String("cluster", "quad", "SPR clustering mode: quad | snc")
	showOps := flag.Bool("ops", false, "print the per-operator roofline breakdown (CPU platforms)")
	traceOut := flag.String("trace", "", "write a Chrome trace JSON of one offloaded decode step to this file (GPU platforms)")
	url := flag.String("url", "", "load-generator mode: base URL of a running llmperfd (e.g. http://localhost:8080)")
	n := flag.Int("n", 64, "load generator: total requests")
	concurrency := flag.Int("concurrency", 8, "load generator: concurrent clients")
	flag.Parse()

	if *url != "" {
		loadGenerate(*url, *platform, *modelName, *in, *out, *n, *concurrency)
		return
	}

	m, err := core.ModelByName(*modelName)
	if err != nil {
		fatal(err)
	}

	var res core.Result
	switch *platform {
	case "spr", "icl":
		setup, err := cpuSetup(*platform, *cores, *memmode, *cluster)
		if err != nil {
			fatal(err)
		}
		res, err = core.SimulateCPU(setup, m, *batch, *in, *out)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		c := res.Counters
		fmt.Printf("counters: LLC MPKI=%.1f core-util=%.2f UPI-util=%.2f remote-LLC=%.3g\n",
			c.LLCMPKI, c.CoreUtilization, c.UPIUtilization, c.RemoteLLCAccess)
		if *showOps {
			run := perfmodel.CPURun{Model: m, Setup: setup, Batch: *batch,
				InputLen: *in, OutputLen: *out, Weights: tensor.BF16}
			pre, err := run.Analyze(model.Prefill, *in, 0)
			if err != nil {
				fatal(err)
			}
			fmt.Println("\nprefill roofline:")
			fmt.Print(perfmodel.RenderAnalysis(pre))
			dec, err := run.Analyze(model.Decode, 1, *in)
			if err != nil {
				fatal(err)
			}
			fmt.Println("\ndecode-step roofline:")
			fmt.Print(perfmodel.RenderAnalysis(dec))
		}
	case "a100", "h100", "gh200":
		g := core.A100()
		switch *platform {
		case "h100":
			g = core.H100()
		case "gh200":
			g = hw.GH200
		}
		res, err = core.SimulateGPU(g, m, *batch, *in, *out)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		if res.TransferSeconds > 0 {
			fmt.Printf("offloading: %.0f%% of time on PCIe data loading (Fig 18 metric)\n",
				res.PCIeFraction()*100)
		}
		if *traceOut != "" {
			if res.TransferSeconds == 0 {
				fatal(fmt.Errorf("-trace requires an offloaded run (model fits resident)"))
			}
			run := offload.Run{GPU: g, Host: hw.SPRMax9468, Model: m,
				Batch: *batch, InputLen: *in, OutputLen: *out, Weights: tensor.BF16}
			tl, err := run.Trace(model.Decode, *in)
			if err != nil {
				fatal(err)
			}
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			if err := tl.WriteChromeTrace(f); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote Chrome trace of one decode step to %s (open in chrome://tracing)\n", *traceOut)
		}
	default:
		fatal(fmt.Errorf("unknown platform %q", *platform))
	}
}

func cpuSetup(platform string, cores int, memmode, cluster string) (core.CPUSetup, error) {
	setup := core.SPRQuadFlat(cores)
	if platform == "icl" {
		setup = core.ICLBaseline()
		setup.Cores = cores
		if cores > 64 {
			return setup, fmt.Errorf("icl has 64 cores total")
		}
		return setup, nil
	}
	switch memmode {
	case "flat":
		setup.Mem = memsim.Flat
	case "cache":
		setup.Mem = memsim.Cache
	case "hbm-only":
		setup.Mem = memsim.HBMOnly
	default:
		return setup, fmt.Errorf("unknown memory mode %q", memmode)
	}
	switch cluster {
	case "quad":
		setup.Cluster = memsim.Quad
	case "snc":
		setup.Cluster = memsim.SNC4
	default:
		return setup, fmt.Errorf("unknown clustering mode %q", cluster)
	}
	_ = hw.SPRMax9468
	return setup, nil
}

// loadGenerate drives n POST /v1/generate requests at the given base URL
// with the requested client concurrency, then reports client-side wall
// latency percentiles and a count per HTTP status.
func loadGenerate(base, platform, modelName string, in, out, n, concurrency int) {
	if concurrency < 1 {
		fatal(fmt.Errorf("concurrency must be positive"))
	}
	body, err := json.Marshal(map[string]any{
		"platform": platform, "model": modelName, "in": in, "out": out})
	if err != nil {
		fatal(err)
	}
	endpoint := base + "/v1/generate"
	client := &http.Client{Timeout: 5 * time.Minute}

	var (
		mu        sync.Mutex
		latencies []float64
		statuses  = map[int]int{}
		netErrs   int
		// phases accumulates per-phase server-side seconds parsed from each
		// 200 response's Server-Timing header, keyed by phase name.
		phases = map[string][]float64{}
	)
	jobs := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
				t0 := time.Now()
				resp, err := client.Post(endpoint, "application/json", bytes.NewReader(body))
				lat := time.Since(t0).Seconds()
				mu.Lock()
				if err != nil {
					netErrs++
				} else {
					statuses[resp.StatusCode]++
					if resp.StatusCode == http.StatusOK {
						latencies = append(latencies, lat)
						// ParseServerTiming yields milliseconds (the header's
						// dur unit); the breakdown table reports seconds.
						for name, ms := range trace.ParseServerTiming(resp.Header.Get("Server-Timing")) {
							phases[name] = append(phases[name], ms/1e3)
						}
					}
					resp.Body.Close()
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- struct{}{}
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start).Seconds()

	fmt.Printf("load: %d requests to %s (%s/%s in=%d out=%d), %d clients, %.2fs wall\n",
		n, endpoint, platform, modelName, in, out, concurrency, wall)
	var codes []int
	for c := range statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Printf("  HTTP %d    : %d\n", c, statuses[c])
	}
	if netErrs > 0 {
		fmt.Printf("  transport  : %d errors\n", netErrs)
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		fmt.Printf("  latency    : p50 %.3fs   p95 %.3fs   p99 %.3fs (client wall)\n",
			quantileSorted(latencies, 0.50), quantileSorted(latencies, 0.95), quantileSorted(latencies, 0.99))
		fmt.Printf("  throughput : %.1f req/s completed\n", float64(len(latencies))/wall)
	}
	printPhaseBreakdown(phases)
}

// printPhaseBreakdown renders the server-side phase percentiles collected
// from Server-Timing headers: where each request's residence time went
// (queueing, batch formation, prefill, decode, ...), as the gateway saw it.
func printPhaseBreakdown(phases map[string][]float64) {
	if len(phases) == 0 {
		return
	}
	var names []string
	seen := map[string]bool{}
	for _, name := range trace.PhaseOrder {
		if _, ok := phases[name]; ok {
			names = append(names, name)
			seen[name] = true
		}
	}
	var rest []string
	for name := range phases {
		if !seen[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	names = append(names, rest...)

	fmt.Println("  server-side phase breakdown (Server-Timing):")
	fmt.Printf("    %-12s %8s %10s %10s %10s\n", "phase", "n", "p50", "p95", "p99")
	for _, name := range names {
		xs := phases[name]
		sort.Float64s(xs)
		fmt.Printf("    %-12s %8d %9.3fs %9.3fs %9.3fs\n", name, len(xs),
			quantileSorted(xs, 0.50), quantileSorted(xs, 0.95), quantileSorted(xs, 0.99))
	}
}

// quantileSorted returns the p-quantile of an ascending-sorted slice.
func quantileSorted(xs []float64, p float64) float64 {
	idx := int(math.Ceil(p*float64(len(xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	return xs[idx]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llmperf:", err)
	os.Exit(1)
}
