package main

// ramp.go is the overload-control load sweep (-ramp): calibrate the
// server's capacity closed-loop, then sweep open-loop offered load
// through a list of multipliers of that capacity with a three-way
// interactive/standard/batch class mix, and report per-class
// goodput-vs-offered-load. Goodput for the interactive class is
// SLO-conditioned: a request only counts if its client-measured TTFT is
// inside the target. The final greppable summary lines drive the
// `make overload-demo` A/B assertions:
//
//	interactive_goodput_ratio=NN        goodput at the top step vs the
//	                                    peak across all steps, percent
//	interactive_p99_ttft_ms_at_2x=NN.N  client p99 TTFT at the top step

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

var rampClasses = []string{"interactive", "standard", "batch"}

// rampOutcome is one finished request as the client saw it.
type rampOutcome struct {
	class string
	ok    bool    // HTTP 200 and the stream reached data: [DONE]
	ttft  float64 // seconds; 0 when no token arrived
}

// loadRamp runs the sweep. steps is a comma-separated multiplier list
// ("0.5,1,2"); stepDur is the open-loop duration per step; sloMs is the
// interactive TTFT target goodput is conditioned on.
func loadRamp(base, platform, modelName string, in, out, concurrency int,
	steps string, stepDur time.Duration, sloMs float64) {
	mults, err := parseRampSteps(steps)
	if err != nil {
		fatal(err)
	}
	endpoint := base + "/v1/generate"

	// Phase 1 — calibrate: closed-loop standard-class traffic measures
	// the sustainable completion rate with no queue growth; that is the
	// capacity the multipliers scale.
	capacity := calibrate(endpoint, platform, modelName, in, out, concurrency, stepDur)
	if capacity <= 0 {
		fatal(fmt.Errorf("calibration completed no requests — is %s serving?", base))
	}
	fmt.Printf("ramp: calibrated capacity %.1f req/s (%d closed-loop clients, %.0fs)\n",
		capacity, concurrency, stepDur.Seconds())

	// Phase 2 — sweep: open-loop arrivals at each multiplier of capacity
	// with a 1/3-each class mix. Requests carry both the priority body
	// field and the X-SLO-Class header (the API requires them to agree),
	// and a deadline derived from the SLO so doomed work is evicted
	// server-side instead of timing out at the client.
	type stepResult struct {
		mult    float64
		offered float64
		goodput map[string]float64 // SLO-conditioned req/s for interactive, raw for others
		p99TTFT map[string]float64 // ms
		sent    int
	}
	var results []stepResult
	for _, m := range mults {
		rate := m * capacity
		outcomes, sent := rampStep(endpoint, platform, modelName, in, out, rate, stepDur, sloMs)
		sr := stepResult{mult: m, offered: rate, sent: sent,
			goodput: map[string]float64{}, p99TTFT: map[string]float64{}}
		for _, cls := range rampClasses {
			var good int
			var ttfts []float64
			for _, o := range outcomes {
				if o.class != cls || !o.ok {
					continue
				}
				if o.ttft > 0 {
					ttfts = append(ttfts, o.ttft)
				}
				// Interactive goodput is SLO-conditioned: a token that
				// arrived late is as useless to an interactive caller as
				// no token at all.
				if cls == "interactive" && o.ttft*1e3 > sloMs {
					continue
				}
				good++
			}
			sr.goodput[cls] = float64(good) / stepDur.Seconds()
			if len(ttfts) > 0 {
				sort.Float64s(ttfts)
				sr.p99TTFT[cls] = quantileSorted(ttfts, 0.99) * 1e3
			}
		}
		results = append(results, sr)
		fmt.Printf("ramp step x%.2f: offered=%.1f req/s sent=%d", m, rate, sent)
		for _, cls := range rampClasses {
			fmt.Printf(" | %s goodput=%.1f/s p99_ttft=%.0fms",
				cls, sr.goodput[cls], sr.p99TTFT[cls])
		}
		fmt.Println()
	}

	// Summary: the ratio pits the top (most overloaded) step's
	// interactive goodput against the best step's. A server that falls
	// over a cliff past saturation scores near zero; graceful overload
	// control holds it near 100.
	peak := 0.0
	for _, sr := range results {
		if g := sr.goodput["interactive"]; g > peak {
			peak = g
		}
	}
	last := results[len(results)-1]
	ratio := 0.0
	if peak > 0 {
		ratio = 100 * last.goodput["interactive"] / peak
	}
	fmt.Printf("interactive_goodput_ratio=%.0f\n", ratio)
	fmt.Printf("interactive_p99_ttft_ms_at_2x=%.1f\n", last.p99TTFT["interactive"])
	fmt.Printf("interactive_slo_ok=%d\n", boolToInt(
		last.p99TTFT["interactive"] > 0 && last.p99TTFT["interactive"] <= sloMs))
}

func parseRampSteps(s string) ([]float64, error) {
	var mults []float64
	for _, f := range strings.Split(s, ",") {
		m, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || m <= 0 {
			return nil, fmt.Errorf("-ramp-steps %q: each step must be a positive multiplier", s)
		}
		mults = append(mults, m)
	}
	if len(mults) == 0 {
		return nil, fmt.Errorf("-ramp-steps must list at least one multiplier")
	}
	return mults, nil
}

// calibrate runs closed-loop standard-class traffic and returns the
// observed completion rate (req/s).
func calibrate(endpoint, platform, modelName string, in, out, concurrency int,
	dur time.Duration) float64 {
	body, err := json.Marshal(map[string]any{
		"platform": platform, "model": modelName, "in": in, "out": out,
		"priority": "standard"})
	if err != nil {
		fatal(err)
	}
	client := &http.Client{Timeout: time.Minute}
	var completed int64
	var mu sync.Mutex
	stop := time.Now().Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				resp, err := client.Post(endpoint, "application/json", bytes.NewReader(body))
				if err != nil {
					continue
				}
				ok := resp.StatusCode == http.StatusOK
				resp.Body.Close()
				if ok {
					mu.Lock()
					completed++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return float64(completed) / dur.Seconds()
}

// rampStep fires open-loop arrivals at rate req/s for dur, cycling the
// class mix, and returns every outcome plus the number of requests sent.
// Arrivals are paced on a fixed interval; each request runs in its own
// goroutine (open loop: arrivals do not wait for completions), streams
// its response to measure client TTFT, and carries a deadline of 4× the
// interactive SLO so a collapsed server fails fast instead of hanging
// the step.
func rampStep(endpoint, platform, modelName string, in, out int,
	rate float64, dur time.Duration, sloMs float64) ([]rampOutcome, int) {
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	deadline := time.Duration(4*sloMs) * time.Millisecond
	client := &http.Client{Timeout: 2 * deadline}

	var (
		mu       sync.Mutex
		outcomes []rampOutcome
		wg       sync.WaitGroup
		sent     int
	)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.Now().Add(dur)
	for i := 0; time.Now().Before(stop); i++ {
		<-ticker.C
		cls := rampClasses[i%len(rampClasses)]
		sent++
		wg.Add(1)
		go func(cls string) {
			defer wg.Done()
			o := streamOnce(client, endpoint, platform, modelName, in, out, cls, deadline)
			mu.Lock()
			outcomes = append(outcomes, o)
			mu.Unlock()
		}(cls)
	}
	wg.Wait()
	return outcomes, sent
}

// streamOnce runs one streaming generate call for a class and measures
// client-side TTFT. The class travels in both the priority body field
// and the X-SLO-Class header; the deadline in X-Request-Deadline.
func streamOnce(client *http.Client, endpoint, platform, modelName string,
	in, out int, cls string, deadline time.Duration) rampOutcome {
	o := rampOutcome{class: cls}
	body, err := json.Marshal(map[string]any{
		"platform": platform, "model": modelName, "in": in, "out": out,
		"stream": true, "priority": cls})
	if err != nil {
		return o
	}
	req, err := http.NewRequest(http.MethodPost, endpoint, bytes.NewReader(body))
	if err != nil {
		return o
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-SLO-Class", cls)
	req.Header.Set("X-Request-Deadline", deadline.String())
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return o
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return o
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	tokens, done := 0, false
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		if data == "[DONE]" {
			done = true
			break
		}
		var ev struct {
			Object string `json:"object"`
		}
		if json.Unmarshal([]byte(data), &ev) != nil || ev.Object != "generate.token" {
			continue
		}
		if tokens == 0 {
			o.ttft = time.Since(t0).Seconds()
		}
		tokens++
	}
	o.ok = done && tokens > 0
	return o
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
