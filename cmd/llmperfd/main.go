// Command llmperfd serves the simulator over HTTP as a JSON API. All
// requests flow through the serving gateway: a bounded admission queue,
// a worker pool running continuous or chunked batching, per-request
// phase tracing at /v1/traces, and Prometheus metrics at /metrics.
// SIGINT/SIGTERM drains in-flight requests before exiting.
//
// Usage:
//
//	llmperfd -addr :8080 -queue 256 -max-batch 8 -policy continuous -workers 4
//	curl 'localhost:8080/v1/simulate?platform=spr&model=OPT-30B&batch=4'
//	curl -X POST localhost:8080/v1/generate -H 'Content-Type: application/json' \
//	    -d '{"platform":"spr","model":"OPT-13B"}'
//	curl 'localhost:8080/v1/traces?id=<trace_id>'
//	curl 'localhost:8080/metrics'
//
// Observability knobs (see docs/observability.md): -trace-sample sets the
// retention fraction for ok traces, -trace-out appends one JSON line per
// retained trace, -log-level picks the slog threshold on stderr, and
// -debug-addr exposes net/http/pprof on a private listener.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers on DefaultServeMux, served only by -debug-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/gateway"
	"repro/internal/govern"
	"repro/internal/metrics"
	"repro/internal/overload"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	queue := flag.Int("queue", 256, "admission queue bound (excess requests get 429)")
	maxBatch := flag.Int("max-batch", 8, "maximum tokens batched per scheduler iteration")
	policy := flag.String("policy", "continuous", "batching policy: continuous | chunked")
	chunk := flag.Int("chunk", 64, "prefill chunk size (chunked policy)")
	workers := flag.Int("workers", 4, "concurrent scheduler lanes")
	timescale := flag.Float64("timescale", 0, "wall seconds slept per modeled second (0 = as fast as possible)")
	drainWait := flag.Duration("drain", 30*time.Second, "graceful shutdown drain budget")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "hard shutdown ceiling: force-exit nonzero if drain exceeds this")
	faultSeed := flag.Int64("fault-seed", 1, "deterministic seed for the fault injector")
	faultSpec := flag.String("fault-spec", "", "arm fault rules at boot, e.g. 'panic@lane:every=50;latency@cost.decode:p=0.05,delay=20ms' (see docs/resilience.md)")
	kvGovern := flag.Bool("kv-govern", true, "govern per-lane KV memory: budgeted admission, preemption, watermark shedding")
	kvMode := flag.String("kv-mode", "optimistic", "KV admission mode: optimistic (prompt-only, preempt on exhaustion) | conservative (reserve in+out)")
	kvBlock := flag.Int("kv-block", govern.DefaultBlockSize, "KV pool block size in tokens")
	kvBudgetMB := flag.Int("kv-budget-mb", 0, "override every lane's KV budget in MiB (0 = derive from the platform's memory minus weights)")
	kvQuota := flag.Int("kv-quota-tokens", 0, "per-client in-flight KV token quota, keyed by X-Client-ID (0 = unlimited)")
	kvCache := flag.Bool("kv-cache", true, "prefix-aware radix KV cache: requests sharing a prompt prefix skip its prefill (requires -kv-govern)")
	kvHigh := flag.Float64("kv-high", 0.95, "KV utilization high watermark: shed new work (503) at or above it")
	kvLow := flag.Float64("kv-low", 0.75, "KV utilization low watermark: stop shedding at or below it")
	draftModel := flag.String("draft-model", "", "draft model name enabling speculative decoding (e.g. OPT-1.3B; tiny-* lanes use a built-in 1-layer draft)")
	specK := flag.Int("spec-k", 4, "max draft proposal length per speculation cycle (requires -draft-model)")
	specAccept := flag.Float64("spec-accept", 0.8, "modeled per-token draft acceptance rate α (requires -draft-model)")
	overloadCtl := flag.Bool("overload", true, "overload control: SLO-class admission priorities, adaptive concurrency limiting, brownout degradation ladder")
	sloInteractive := flag.Duration("slo-interactive-ttft", 500*time.Millisecond, "interactive-class TTFT SLO target for the adaptive limiter")
	sloStandard := flag.Duration("slo-standard-ttft", 2*time.Second, "standard-class TTFT SLO target for the adaptive limiter")
	sloBatch := flag.Duration("slo-batch-ttft", 10*time.Second, "batch-class TTFT SLO target for the adaptive limiter")
	brownoutUp := flag.Duration("brownout-step-up", 250*time.Millisecond, "sustained pressure required before the brownout ladder climbs one rung")
	brownoutDown := flag.Duration("brownout-step-down", time.Second, "sustained calm required before the brownout ladder descends one rung")
	brownoutCap := flag.Int("brownout-batch-cap", 16, "max_tokens cap applied to batch-class requests at brownout level 2+ (finish_reason \"brownout\")")
	replicas := flag.Int("replicas", 1, "in-process gateway replicas behind the fault-tolerant router (>1 enables cluster mode)")
	route := flag.String("route", "round-robin", "cluster routing policy: round-robin | least-loaded | weighted")
	probeInterval := flag.Duration("probe-interval", 100*time.Millisecond, "cluster health-check period")
	failoverMax := flag.Int("failover-max", 2, "max re-dispatch attempts per request beyond the first (cluster mode)")
	retryBudget := flag.Int("retry-budget", 8, "per-client failover tokens per 10s window, -1 = unlimited (cluster mode)")
	hedgeAfter := flag.Duration("hedge-after", 0, "hedge short non-streamed requests on a second replica after this delay (0 = off)")
	traceSample := flag.Float64("trace-sample", 1, "fraction of ok traces retained for /v1/traces (errored and degraded requests are always kept)")
	traceOut := flag.String("trace-out", "", "append one JSON line per retained trace to this file")
	logLevel := flag.String("log-level", "info", "stderr log threshold: debug | info | warn | error")
	debugAddr := flag.String("debug-addr", "", "private listen address for net/http/pprof (empty = disabled)")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "llmperfd: -log-level: %v\n", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	var pol gateway.Policy
	switch *policy {
	case "continuous":
		pol = gateway.Continuous
	case "chunked":
		pol = gateway.Chunked
	default:
		fmt.Fprintf(os.Stderr, "llmperfd: unknown policy %q (want continuous or chunked)\n", *policy)
		os.Exit(2)
	}

	inj := faults.New(*faultSeed)
	if *faultSpec != "" {
		rules, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "llmperfd: -fault-spec: %v\n", err)
			os.Exit(2)
		}
		if err := inj.Arm(rules...); err != nil {
			fmt.Fprintf(os.Stderr, "llmperfd: -fault-spec: %v\n", err)
			os.Exit(2)
		}
	}

	reg := metrics.NewRegistry()
	traceCfg := trace.Config{SampleRate: *traceSample, Registry: reg}
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "llmperfd: -trace-out: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		traceCfg.Output = f
	}

	var gov *govern.Governor
	if *kvGovern {
		switch *kvMode {
		case "optimistic", "conservative":
		default:
			fmt.Fprintf(os.Stderr, "llmperfd: unknown -kv-mode %q (want optimistic or conservative)\n", *kvMode)
			os.Exit(2)
		}
		gov = govern.New(govern.Config{
			Specs:         api.PoolSpecResolver(*kvBlock, int64(*kvBudgetMB)<<20),
			Conservative:  *kvMode == "conservative",
			HighWatermark: *kvHigh,
			LowWatermark:  *kvLow,
			QuotaTokens:   *kvQuota,
			EnableCache:   *kvCache,
			Registry:      reg,
		})
	}

	// Speculative decoding: -draft-model switches lanes to the speculation-
	// capable resolver and arms the gateway's cycle scheduler. The draft
	// name is validated at boot so a typo fails fast instead of breaking
	// every analytic lane at its first request (tiny-* lanes use a built-in
	// one-layer draft and ignore the name).
	laneResolver := api.LaneResolver()
	var specCfg *gateway.SpecConfig
	if *draftModel != "" {
		if _, err := core.ModelByName(*draftModel); err != nil {
			fmt.Fprintf(os.Stderr, "llmperfd: -draft-model: %v\n", err)
			os.Exit(2)
		}
		if *specK < 1 {
			fmt.Fprintf(os.Stderr, "llmperfd: -spec-k must be at least 1, got %d\n", *specK)
			os.Exit(2)
		}
		if *specAccept <= 0 || *specAccept > 1 {
			fmt.Fprintf(os.Stderr, "llmperfd: -spec-accept must be in (0, 1], got %g\n", *specAccept)
			os.Exit(2)
		}
		laneResolver = api.SpecLaneResolver(*draftModel)
		specCfg = &gateway.SpecConfig{
			Lookahead:  *specK,
			Acceptance: *specAccept,
			Seed:       *faultSeed,
		}
	}

	tracer := trace.New(traceCfg)
	// newGateway builds one gateway instance; cluster mode calls it once
	// per replica (each with its own lanes and KV governor, sharing the
	// registry, tracer, logger and fault injector), single mode once.
	newGateway := func(id string) *gateway.Gateway {
		g := gov
		if *kvGovern && *replicas > 1 {
			// Each replica governs its own KV pools; sharing one governor
			// would double-count admissions across independent lanes.
			g = govern.New(govern.Config{
				Specs:         api.PoolSpecResolver(*kvBlock, int64(*kvBudgetMB)<<20),
				Conservative:  *kvMode == "conservative",
				HighWatermark: *kvHigh,
				LowWatermark:  *kvLow,
				QuotaTokens:   *kvQuota,
				EnableCache:   *kvCache,
				Registry:      reg,
			})
		}
		var oc *overload.Config
		if *overloadCtl {
			oc = &overload.Config{
				InteractiveTTFT: *sloInteractive,
				StandardTTFT:    *sloStandard,
				BatchTTFT:       *sloBatch,
				StepUp:          *brownoutUp,
				StepDown:        *brownoutDown,
				BatchTokenCap:   *brownoutCap,
			}
		}
		return gateway.New(gateway.Config{
			MaxQueue:     *queue,
			MaxBatch:     *maxBatch,
			Policy:       pol,
			PrefillChunk: *chunk,
			Workers:      *workers,
			Timescale:    *timescale,
			Injector:     inj,
			Governor:     g,
			Overload:     oc,
			Spec:         specCfg,
			Fallback:     api.FallbackResolver(),
			Registry:     reg,
			Tracer:       tracer,
			Logger:       logger.With("replica", id),
		}, laneResolver)
	}

	var backend api.Backend
	if *replicas > 1 {
		routePolicy, err := cluster.ParsePolicy(*route)
		if err != nil {
			fmt.Fprintf(os.Stderr, "llmperfd: -route: %v\n", err)
			os.Exit(2)
		}
		router, err := cluster.New(cluster.Config{
			Replicas:      *replicas,
			Factory:       func(id string) (*gateway.Gateway, error) { return newGateway(id), nil },
			Policy:        routePolicy,
			Registry:      reg,
			Tracer:        tracer,
			Logger:        logger,
			Injector:      inj,
			ProbeInterval: *probeInterval,
			MaxFailovers:  *failoverMax,
			RetryBudget:   *retryBudget,
			HedgeAfter:    *hedgeAfter,
			Seed:          *faultSeed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "llmperfd: cluster: %v\n", err)
			os.Exit(2)
		}
		backend = router
	} else {
		backend = newGateway("r0")
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.NewServer(backend).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	if *debugAddr != "" {
		// net/http/pprof registered itself on DefaultServeMux at import;
		// serve that mux on a separate private listener so profiling never
		// rides the public API address.
		go func() {
			dbg := &http.Server{Addr: *debugAddr, ReadHeaderTimeout: 5 * time.Second}
			logger.Info("llmperfd: pprof listening", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil {
				logger.Error("llmperfd: pprof listener failed", "err", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	kvDesc := "off"
	if *kvGovern {
		kvDesc = *kvMode
		if *kvCache {
			kvDesc += "+cache"
		}
	}
	topo := "single"
	if *replicas > 1 {
		topo = fmt.Sprintf("%d replicas, %s routing", *replicas, *route)
	}
	overloadDesc := "off"
	if *overloadCtl {
		overloadDesc = "on"
	}
	specDesc := "off"
	if specCfg != nil {
		specDesc = fmt.Sprintf("%s,k=%d,accept=%g", *draftModel, *specK, *specAccept)
	}
	fmt.Printf("llmperfd listening on %s (queue=%d batch=%d policy=%s workers=%d trace-sample=%g kv=%s overload=%s spec=%s cluster=%s)\n",
		*addr, *queue, *maxBatch, pol, *workers, *traceSample, kvDesc, overloadDesc, specDesc, topo)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "llmperfd:", err)
		os.Exit(1)
	case sig := <-sigCh:
		fmt.Printf("llmperfd: %v, draining (up to %v)\n", sig, *drainWait)
	}

	// Hard ceiling: if graceful drain wedges (a stalled lane, a hung
	// connection), force the process down rather than hanging forever.
	forceExit := time.AfterFunc(*drainTimeout, func() {
		fmt.Fprintf(os.Stderr, "llmperfd: drain exceeded -drain-timeout %v, forcing exit\n", *drainTimeout)
		os.Exit(1)
	})
	defer forceExit.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := backend.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "llmperfd: gateway drain:", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "llmperfd: http shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("llmperfd: drained cleanly")
}
