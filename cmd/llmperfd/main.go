// Command llmperfd serves the simulator over HTTP as a JSON API.
//
// Usage:
//
//	llmperfd -addr :8080
//	curl 'localhost:8080/v1/simulate?platform=spr&model=OPT-30B&batch=4'
//	curl 'localhost:8080/v1/experiments/fig18'
//	curl 'localhost:8080/v1/scorecard'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/api"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.NewHandler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("llmperfd listening on %s\n", *addr)
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "llmperfd:", err)
		os.Exit(1)
	}
}
