// Command modelinfo prints the analytic properties of the evaluated
// models: architecture, parameter counts, weight footprints per dtype,
// per-phase FLOPs and bytes for a workload shape, and KV-cache demand —
// the quantities behind Figs 6 and 7.
//
// Usage:
//
//	modelinfo                      # all eight evaluated models
//	modelinfo -model LLaMA2-70B -batch 16 -in 512
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/model"
	"repro/internal/tensor"
)

func main() {
	name := flag.String("model", "", "model preset (empty = all evaluated)")
	batch := flag.Int("batch", 1, "batch size for the workload columns")
	in := flag.Int("in", 128, "input length")
	out := flag.Int("out", 32, "output length")
	flag.Parse()

	var models []model.Config
	if *name == "" {
		models = model.Evaluated()
	} else {
		m, err := model.ByName(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "modelinfo:", err)
			os.Exit(1)
		}
		models = []model.Config{m}
	}

	fmt.Printf("workload: batch=%d input=%d output=%d\n\n", *batch, *in, *out)
	fmt.Printf("%-11s %7s %6s %6s %7s %6s | %9s %9s %9s | %12s %12s %14s\n",
		"model", "layers", "d", "heads", "dff", "kvdim",
		"params(B)", "BF16(GB)", "INT8(GB)",
		"prefillTF", "decodeGF/t", "KV@done(GiB)")
	for _, m := range models {
		kvDone := float64(m.KVCacheBytes(*in+*out, *batch, tensor.BF16)) / (1 << 30)
		fmt.Printf("%-11s %7d %6d %6d %7d %6d | %9.2f %9.1f %9.1f | %12.2f %12.1f %14.2f\n",
			m.Name, m.Layers, m.DModel, m.Heads, m.DFF, m.KVDim(),
			float64(m.ParamCount())/1e9,
			float64(m.WeightBytes(tensor.BF16))/1e9,
			float64(m.WeightBytes(tensor.INT8))/1e9,
			m.PrefillFLOPs(*in, *batch)/1e12,
			m.DecodeStepFLOPs(*in, *batch)/1e9,
			kvDone)
	}
	fmt.Println("\nper-op work inventory (decode step, ctx=input):")
	for _, m := range models {
		if len(models) > 1 {
			continue // op dump only for a single model
		}
		for _, o := range m.Ops(model.Decode, *batch, 1, *in, tensor.BF16) {
			fmt.Printf("  %-13s M=%-6d N=%-6d K=%-6d ×%-5d  %8.2f GFLOP  %8.1f MB  AI=%.2f\n",
				o.Name, o.M, o.N, o.K, o.Instances,
				o.FLOPs()/1e9, float64(o.Bytes())/1e6, o.ArithmeticIntensity())
		}
	}
}
