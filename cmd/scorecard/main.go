// Command scorecard evaluates every tracked paper claim against the
// simulator and prints a PASS/FAIL reproduction report — the programmatic
// counterpart of EXPERIMENTS.md.
//
// Usage:
//
//	scorecard        # evaluate all claims
//	scorecard -v     # include each claim's full statement
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	verbose := flag.Bool("v", false, "print full claim statements")
	flag.Parse()

	tab, err := experiments.RunScorecard()
	if err != nil {
		fmt.Fprintln(os.Stderr, "scorecard:", err)
		os.Exit(1)
	}
	fmt.Println(tab.Render())
	if *verbose {
		for _, c := range experiments.Scorecard() {
			fmt.Printf("%-16s %s\n", c.ID+":", c.Statement)
		}
	}
	failed := 0
	for _, row := range tab.Rows {
		if row[len(row)-1] == "FAIL" {
			failed++
		}
	}
	fmt.Printf("\n%d/%d claims reproduced\n", len(tab.Rows)-failed, len(tab.Rows))
	if failed > 0 {
		os.Exit(1)
	}
}
