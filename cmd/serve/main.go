// Command serve runs the inference-serving simulator: a Poisson request
// trace against a platform under a batching policy, reporting queueing
// delay, TTFT/E2E (mean and p95), and sustained tokens/s.
//
// The default mode replays the trace through the discrete-event simulator
// (deterministic, instant). With -gateway the same trace is driven through
// the live concurrent serving gateway — real goroutines, admission
// control, and the iteration-level scheduler — exercising the production
// path instead of the event loop.
//
// Usage:
//
//	serve -platform spr -model LLaMA2-13B -policy continuous -rate 2 -n 64
//	serve -platform h100 -model OPT-66B -policy static -batch 16
//	serve -platform spr -model OPT-13B -gateway -queue 64 -n 64
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	platform := flag.String("platform", "spr", "spr | icl | a100 | h100")
	modelName := flag.String("model", "LLaMA2-13B", "model preset")
	policy := flag.String("policy", "continuous", "fcfs | static | continuous (gateway: continuous | chunked)")
	maxBatch := flag.Int("batch", 8, "maximum batch size")
	wait := flag.Float64("wait", 0.25, "static batching fill timeout (s)")
	rate := flag.Float64("rate", 1, "request arrival rate (req/s)")
	n := flag.Int("n", 32, "number of requests")
	seed := flag.Int64("seed", 1, "trace seed")
	useGateway := flag.Bool("gateway", false, "drive the trace through the live concurrent gateway")
	queue := flag.Int("queue", 256, "gateway admission queue bound")
	timescale := flag.Float64("timescale", 0, "gateway: wall seconds per modeled second (0 = as fast as possible)")
	flag.Parse()

	m, err := model.ByName(*modelName)
	if err != nil {
		fatal(err)
	}
	var cost serve.CostModel
	switch *platform {
	case "spr":
		cost = serve.NewCPUCost(core.SPRQuadFlat(48), m)
	case "icl":
		cost = serve.NewCPUCost(memsim.Config{CPU: hw.ICL8352Y, Cores: 32,
			Mem: memsim.DDROnly, Cluster: memsim.Quad}, m)
	case "a100":
		cost = serve.NewGPUCost(hw.A100, m)
	case "h100":
		cost = serve.NewGPUCost(hw.H100, m)
	default:
		fatal(fmt.Errorf("unknown platform %q", *platform))
	}

	gen := workload.NewGenerator(*seed)
	gen.ArrivalRate = *rate
	trace := gen.Trace(*n)

	if *useGateway {
		runGateway(cost, trace, *platform, m.Name, *policy, *maxBatch, *queue, *rate, *timescale)
		return
	}

	var pol serve.Policy
	switch *policy {
	case "fcfs":
		pol = serve.FCFS
	case "static":
		pol = serve.Static
	case "continuous":
		pol = serve.Continuous
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}
	srv := serve.Server{Cost: cost, Policy: pol, MaxBatch: *maxBatch, BatchWait: *wait}
	cs, err := srv.Run(trace)
	if err != nil {
		fatal(err)
	}
	sm := serve.Summarize(cs)
	fmt.Printf("served %d requests on %s/%s, policy=%s, max batch %d, rate %.2f req/s\n",
		sm.Count, *platform, m.Name, pol, *maxBatch, *rate)
	fmt.Printf("  queue wait : mean %.2fs\n", sm.MeanQueueWait)
	fmt.Printf("  TTFT       : mean %.2fs   p95 %.2fs\n", sm.MeanTTFT, sm.P95TTFT)
	fmt.Printf("  E2E        : mean %.2fs   p95 %.2fs\n", sm.MeanE2E, sm.P95E2E)
	fmt.Printf("  throughput : %.1f tokens/s (makespan %.1fs)\n",
		sm.TokensPerSecond, sm.Makespan)
}

// runGateway replays the trace through the live concurrent gateway,
// pacing arrivals by timescale (0 submits everything immediately), and
// summarizes the modeled latencies the scheduler produced.
func runGateway(cost serve.CostModel, trace []workload.Request,
	platform, modelName, policy string, maxBatch, queue int, rate, timescale float64) {
	var pol gateway.Policy
	switch policy {
	case "continuous":
		pol = gateway.Continuous
	case "chunked":
		pol = gateway.Chunked
	default:
		fatal(fmt.Errorf("gateway mode supports policy continuous or chunked, not %q", policy))
	}
	gw := gateway.New(gateway.Config{
		MaxQueue:  queue,
		MaxBatch:  maxBatch,
		Policy:    pol,
		Timescale: timescale,
	}, func(string) (serve.CostModel, error) { return cost, nil })

	lane := platform + "/" + modelName
	var (
		mu       sync.Mutex
		results  []gateway.Result
		rejected int
	)
	var wg sync.WaitGroup
	start := time.Now()
	for _, req := range trace {
		wg.Add(1)
		go func(req workload.Request) {
			defer wg.Done()
			if timescale > 0 {
				time.Sleep(time.Duration(req.ArrivalSeconds * timescale * float64(time.Second)))
			}
			res, err := gw.Generate(context.Background(), gateway.Request{
				Lane: lane, InputLen: req.InputLen, OutputLen: req.OutputLen})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				rejected++
				return
			}
			results = append(results, res)
		}(req)
	}
	wg.Wait()
	if err := gw.Shutdown(context.Background()); err != nil {
		fatal(err)
	}
	wall := time.Since(start).Seconds()

	fmt.Printf("gateway served %d/%d requests on %s, policy=%s, max batch %d, rate %.2f req/s (%d rejected)\n",
		len(results), len(trace), lane, pol, maxBatch, rate, rejected)
	if len(results) == 0 {
		return
	}
	var queueWait, ttfts, e2es []float64
	for _, r := range results {
		queueWait = append(queueWait, r.QueueSeconds)
		ttfts = append(ttfts, r.TTFTSeconds)
		e2es = append(e2es, r.E2ESeconds)
	}
	fmt.Printf("  queue wait : mean %.4fs (wall)\n", mean(queueWait))
	fmt.Printf("  TTFT       : mean %.2fs   p95 %.2fs (modeled)\n", mean(ttfts), percentile(ttfts, 0.95))
	fmt.Printf("  E2E        : mean %.2fs   p95 %.2fs (modeled)\n", mean(e2es), percentile(e2es, 0.95))
	fmt.Printf("  wall       : %.2fs scheduling %d requests\n", wall, len(results))
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func percentile(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(math.Ceil(p*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serve:", err)
	os.Exit(1)
}
