// Command serve runs the inference-serving simulator: a Poisson request
// trace against a platform under a batching policy, reporting queueing
// delay, TTFT/E2E (mean and p95), and sustained tokens/s.
//
// Usage:
//
//	serve -platform spr -model LLaMA2-13B -policy continuous -rate 2 -n 64
//	serve -platform h100 -model OPT-66B -policy static -batch 16
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	platform := flag.String("platform", "spr", "spr | icl | a100 | h100")
	modelName := flag.String("model", "LLaMA2-13B", "model preset")
	policy := flag.String("policy", "continuous", "fcfs | static | continuous")
	maxBatch := flag.Int("batch", 8, "maximum batch size")
	wait := flag.Float64("wait", 0.25, "static batching fill timeout (s)")
	rate := flag.Float64("rate", 1, "request arrival rate (req/s)")
	n := flag.Int("n", 32, "number of requests")
	seed := flag.Int64("seed", 1, "trace seed")
	flag.Parse()

	m, err := model.ByName(*modelName)
	if err != nil {
		fatal(err)
	}
	var cost serve.CostModel
	switch *platform {
	case "spr":
		cost = serve.NewCPUCost(core.SPRQuadFlat(48), m)
	case "icl":
		cost = serve.NewCPUCost(memsim.Config{CPU: hw.ICL8352Y, Cores: 32,
			Mem: memsim.DDROnly, Cluster: memsim.Quad}, m)
	case "a100":
		cost = serve.NewGPUCost(hw.A100, m)
	case "h100":
		cost = serve.NewGPUCost(hw.H100, m)
	default:
		fatal(fmt.Errorf("unknown platform %q", *platform))
	}
	var pol serve.Policy
	switch *policy {
	case "fcfs":
		pol = serve.FCFS
	case "static":
		pol = serve.Static
	case "continuous":
		pol = serve.Continuous
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	gen := workload.NewGenerator(*seed)
	gen.ArrivalRate = *rate
	trace := gen.Trace(*n)

	srv := serve.Server{Cost: cost, Policy: pol, MaxBatch: *maxBatch, BatchWait: *wait}
	cs, err := srv.Run(trace)
	if err != nil {
		fatal(err)
	}
	sm := serve.Summarize(cs)
	fmt.Printf("served %d requests on %s/%s, policy=%s, max batch %d, rate %.2f req/s\n",
		sm.Count, *platform, m.Name, pol, *maxBatch, *rate)
	fmt.Printf("  queue wait : mean %.2fs\n", sm.MeanQueueWait)
	fmt.Printf("  TTFT       : mean %.2fs   p95 %.2fs\n", sm.MeanTTFT, sm.P95TTFT)
	fmt.Printf("  E2E        : mean %.2fs   p95 %.2fs\n", sm.MeanE2E, sm.P95E2E)
	fmt.Printf("  throughput : %.1f tokens/s (makespan %.1fs)\n",
		sm.TokensPerSecond, sm.Makespan)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serve:", err)
	os.Exit(1)
}
