// Command sweep runs parameter sweeps over (platform, model, batch, input
// length) and emits CSV rows for plotting or regression tracking.
//
// Usage:
//
//	sweep                                 # paper default grid, all platforms
//	sweep -models OPT-30B,OPT-66B -batches 1,16 -inputs 128,1024
//	sweep -platforms spr,h100 > results.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/sweeprun"
)

func main() {
	platforms := flag.String("platforms", "spr,icl,a100,h100", "comma-separated platforms")
	models := flag.String("models", "", "comma-separated model presets (default: all eight)")
	batches := flag.String("batches", "1,2,4,8,16,32", "comma-separated batch sizes")
	inputs := flag.String("inputs", "128", "comma-separated input lengths")
	out := flag.Int("out", 32, "output length")
	flag.Parse()

	grid := sweeprun.Grid{Output: *out}
	for _, p := range strings.Split(*platforms, ",") {
		grid.Platforms = append(grid.Platforms, strings.TrimSpace(p))
	}
	if *models == "" {
		grid.Models = core.Models()
	} else {
		for _, name := range strings.Split(*models, ",") {
			m, err := core.ModelByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			grid.Models = append(grid.Models, m)
		}
	}
	var err error
	if grid.Batches, err = ints(*batches); err != nil {
		fatal(err)
	}
	if grid.Inputs, err = ints(*inputs); err != nil {
		fatal(err)
	}

	rows, err := sweeprun.Run(grid)
	if err != nil {
		fatal(err)
	}
	skipped, err := sweeprun.WriteCSV(os.Stdout, *out, rows)
	if err != nil {
		fatal(err)
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "sweep: skipped %d infeasible points\n", skipped)
	}
}

func ints(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
