// Batch analytics: a throughput-oriented offline job (§II-C: "batch
// processing of text data for sentiment analysis ... higher system
// throughput is preferred"). The example sweeps batch sizes for a large
// model on the AMX CPU and the offloading GPUs, showing how batching
// amortizes weight streaming on both sides (Figs 8 and 18), and estimates
// the wall-clock time to label a million documents.
//
// Run with: go run ./examples/batch_analytics
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

const (
	documents = 1_000_000
	inputLen  = 128
	outputLen = 32
)

func main() {
	m := core.MustModel("OPT-66B")
	fmt.Printf("offline sentiment job: %d documents, model %s, in=%d out=%d\n\n",
		documents, m.Name, inputLen, outputLen)

	batches := []int{1, 2, 4, 8, 16, 32}
	fmt.Printf("%-8s %22s %22s %22s\n", "batch",
		"SPR CPU tok/s (job h)", "A100+offload tok/s (job h)", "H100+offload tok/s (job h)")

	type best struct {
		name  string
		thpt  float64
		batch int
	}
	var winner best
	for _, b := range batches {
		cpu, err := core.SimulateCPU(core.SPRQuadFlat(48), m, b, inputLen, outputLen)
		if err != nil {
			log.Fatal(err)
		}
		a100, err := core.SimulateGPU(core.A100(), m, b, inputLen, outputLen)
		if err != nil {
			log.Fatal(err)
		}
		h100, err := core.SimulateGPU(core.H100(), m, b, inputLen, outputLen)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %12.1f (%6.0f) %12.1f (%6.0f) %12.1f (%6.0f)\n", b,
			cpu.Throughput.E2E, jobHours(cpu.Throughput.E2E),
			a100.Throughput.E2E, jobHours(a100.Throughput.E2E),
			h100.Throughput.E2E, jobHours(h100.Throughput.E2E))
		for _, cand := range []best{
			{"SPR CPU", cpu.Throughput.E2E, b},
			{"A100+offload", a100.Throughput.E2E, b},
			{"H100+offload", h100.Throughput.E2E, b},
		} {
			if cand.thpt > winner.thpt {
				winner = cand
			}
		}
	}
	fmt.Printf("\nfastest configuration: %s at batch %d — %.0f hours for the job\n",
		winner.name, winner.batch, jobHours(winner.thpt))
	fmt.Println("note how batching closes the CPU-vs-offloading-GPU gap: weight")
	fmt.Println("streaming (HBM on the CPU, PCIe on the GPU) amortizes over the batch.")
}

// jobHours converts a sustained token rate into wall-clock hours for the
// whole corpus.
func jobHours(tokensPerSecond float64) float64 {
	totalTokens := float64(documents) * outputLen
	return totalTokens / tokensPerSecond / 3600
}
