// Capacity planner: given a model and workload, decide where to serve it —
// resident GPU, offloading GPU, AMX CPU, or the §VI CPU-GPU hybrid split.
// This walks the paper's decision surface (Key Findings #4 and #5): GPUs
// win when the model fits, the CPU wins when offloading would dominate,
// and the hybrid partition beats both for oversized models at small batch.
//
// Run with: go run ./examples/capacity_planner
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/hybrid"
	"repro/internal/tensor"
)

func main() {
	scenarios := []struct {
		model string
		batch int
		in    int
	}{
		{"OPT-13B", 1, 128},
		{"OPT-30B", 1, 128},
		{"OPT-66B", 1, 128},
		{"LLaMA2-70B", 16, 512},
	}
	fmt.Println("capacity planning (output = 32 tokens):")
	for _, sc := range scenarios {
		m := core.MustModel(sc.model)
		weightsGB := float64(m.WeightBytes(tensor.BF16)) / 1e9
		fmt.Printf("\n== %s (%.0f GB BF16), batch %d, input %d ==\n",
			m.Name, weightsGB, sc.batch, sc.in)

		type option struct {
			name string
			e2e  float64
		}
		var opts []option

		cpu, err := core.SimulateCPU(core.SPRQuadFlat(48), m, sc.batch, sc.in, 32)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, option{"SPR CPU (quad_flat)", cpu.Latency.E2E})

		for _, g := range []core.GPU{core.A100(), core.H100()} {
			res, err := core.SimulateGPU(g, m, sc.batch, sc.in, 32)
			if err != nil {
				log.Fatal(err)
			}
			mode := "resident"
			if res.TransferSeconds > 0 {
				mode = fmt.Sprintf("offload, %.0f%% PCIe", res.PCIeFraction()*100)
			}
			opts = append(opts, option{fmt.Sprintf("%s (%s)", g.Name, mode), res.Latency.E2E})

			// Hybrid split only makes sense when the model does not fit.
			if !g.FitsWeights(weightsGB) {
				run := hybrid.Run{GPU: g, Host: core.SPRQuadFlat(48), Model: m,
					Batch: sc.batch, InputLen: sc.in, OutputLen: 32,
					Weights: tensor.BF16}
				split, best, err := run.BestSplit()
				if err != nil {
					log.Fatal(err)
				}
				opts = append(opts, option{
					fmt.Sprintf("hybrid %s (%d/%d layers on GPU)",
						g.Name, split.GPULayers, m.Layers),
					best.Latency.E2E})
			}
		}

		bestIdx := 0
		for i, o := range opts {
			if o.e2e < opts[bestIdx].e2e {
				bestIdx = i
			}
		}
		for i, o := range opts {
			marker := " "
			if i == bestIdx {
				marker = "→"
			}
			fmt.Printf("  %s %-42s E2E %8.2fs\n", marker, o.name, o.e2e)
		}
	}
	_ = hw.SPRMax9468
}
