// Chatbot: a TTFT-critical serving scenario (§II-C: "for a real-time
// chatbot service, TTFT is crucial"). A Poisson stream of user requests is
// batched and replayed against each platform; the example reports the
// latency metrics an interactive service cares about and picks the
// platform that meets a TTFT budget at the highest throughput.
//
// Run with: go run ./examples/chatbot
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

const (
	ttftBudgetSeconds = 2.0
	requests          = 48
	maxBatch          = 4 // interactive services keep batches small
)

func main() {
	m := core.MustModel("LLaMA2-13B")
	gen := workload.NewGenerator(11)
	gen.ArrivalRate = 2 // requests/second
	trace := gen.Trace(requests)
	batches := workload.Batches(trace, maxBatch)

	fmt.Printf("chatbot workload: %d requests, %d batches (≤%d each), model %s\n\n",
		len(trace), len(batches), maxBatch, m.Name)

	type candidate struct {
		name string
		sim  func(batch, in, out int) (core.Result, error)
	}
	candidates := []candidate{
		{"ICL CPU", func(b, in, out int) (core.Result, error) {
			return core.SimulateCPU(core.ICLBaseline(), m, b, in, out)
		}},
		{"SPR CPU (quad_flat, 48c)", func(b, in, out int) (core.Result, error) {
			return core.SimulateCPU(core.SPRQuadFlat(48), m, b, in, out)
		}},
		{"A100-40GB", func(b, in, out int) (core.Result, error) {
			return core.SimulateGPU(core.A100(), m, b, in, out)
		}},
		{"H100-80GB", func(b, in, out int) (core.Result, error) {
			return core.SimulateGPU(core.H100(), m, b, in, out)
		}},
	}

	fmt.Printf("%-26s %10s %10s %10s %12s  %s\n",
		"platform", "mean TTFT", "p-worst", "mean TPOT", "tokens/s", "meets budget?")
	bestName, bestThpt := "", 0.0
	for _, c := range candidates {
		var ttfts, tpots, thpts []float64
		for _, b := range batches {
			res, err := c.sim(b.Size(), b.InputLen(), b.OutputLen())
			if err != nil {
				log.Fatal(err)
			}
			ttfts = append(ttfts, res.Latency.TTFT)
			tpots = append(tpots, res.Latency.TPOT)
			thpts = append(thpts, res.Throughput.E2E)
		}
		meanTTFT, worst := stats.Mean(ttfts), stats.Max(ttfts)
		thpt := stats.Mean(thpts)
		ok := worst <= ttftBudgetSeconds
		fmt.Printf("%-26s %9.2fs %9.2fs %9.0fms %12.1f  %v\n",
			c.name, meanTTFT, worst, stats.Mean(tpots)*1e3, thpt, ok)
		if ok && thpt > bestThpt {
			bestName, bestThpt = c.name, thpt
		}
	}
	if bestName == "" {
		fmt.Println("\nno platform meets the TTFT budget")
		return
	}
	fmt.Printf("\nrecommendation: %s — highest throughput under the %.1fs TTFT budget\n",
		bestName, ttftBudgetSeconds)
}
