// NUMA tuning: reproduce the paper's server-configuration study (§IV-B,
// Figs 13–16) as a decision procedure — sweep the four memory/clustering
// modes and the core counts for a target model, print the normalized
// metrics, and recommend a configuration (Key Findings #2 and #3). Then
// apply the §VI hot/cold placement optimization on top.
//
// Run with: go run ./examples/numa_tuning
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/numa"
	"repro/internal/tensor"
)

func main() {
	m := core.MustModel("LLaMA2-13B")
	const batch, in, out = 8, 128, 32

	// --- memory × clustering sweep --------------------------------------
	fmt.Printf("configuration sweep for %s (batch %d):\n\n", m.Name, batch)
	fmt.Printf("%-12s %12s %12s %12s\n", "config", "E2E (s)", "tokens/s", "TTFT (ms)")
	type cfgResult struct {
		name string
		e2e  float64
	}
	var bestCfg cfgResult
	for _, cl := range []memsim.ClusterMode{memsim.Quad, memsim.SNC4} {
		for _, mem := range []memsim.MemMode{memsim.Cache, memsim.Flat} {
			setup := core.SPRQuadFlat(48)
			setup.Mem, setup.Cluster = mem, cl
			res, err := core.SimulateCPU(setup, m, batch, in, out)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %12.3f %12.1f %12.0f\n",
				setup.Name(), res.Latency.E2E, res.Throughput.E2E, res.Latency.TTFT*1e3)
			if bestCfg.name == "" || res.Latency.E2E < bestCfg.e2e {
				bestCfg = cfgResult{setup.Name(), res.Latency.E2E}
			}
		}
	}
	fmt.Printf("\n→ best configuration: %s (the paper's Key Finding #2)\n\n", bestCfg.name)

	// --- core-count sweep -------------------------------------------------
	fmt.Println("core-count sweep (quad_flat):")
	fmt.Printf("%-8s %12s %12s\n", "cores", "E2E (s)", "tokens/s")
	bestCores, bestE2E := 0, 0.0
	for _, cores := range []int{12, 24, 48, 96} {
		res, err := core.SimulateCPU(core.SPRQuadFlat(cores), m, batch, in, out)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %12.3f %12.1f\n", cores, res.Latency.E2E, res.Throughput.E2E)
		if bestCores == 0 || res.Latency.E2E < bestE2E {
			bestCores, bestE2E = cores, res.Latency.E2E
		}
	}
	fmt.Printf("\n→ best core count: %d (96 cores regress via UPI — Key Finding #3)\n\n", bestCores)

	// --- §VI hot/cold placement ------------------------------------------
	fmt.Println("§VI optimization: hot/cold NUMA placement for an oversized working set")
	topo := numa.SPRTopology(hw.SPRMax9468)
	big := core.MustModel("OPT-66B")
	weightsGB := float64(big.WeightBytes(tensor.BF16)) / 1e9
	items := []numa.Item{
		{Name: "kv-cache", SizeGB: 22, Heat: 8},
		{Name: "attn-weights", SizeGB: weightsGB * 0.33, Heat: 6},
		{Name: "ffn-weights", SizeGB: weightsGB * 0.67, Heat: 4},
		{Name: "cold-activations", SizeGB: 180, Heat: 0.3},
	}
	smart, err := numa.PlaceHotCold(items, topo)
	if err != nil {
		log.Fatal(err)
	}
	naive, err := numa.PlaceOblivious(items, topo)
	if err != nil {
		log.Fatal(err)
	}
	bwSmart, _ := numa.EffectiveBandwidth(items, smart, topo)
	bwNaive, _ := numa.EffectiveBandwidth(items, naive, topo)
	fmt.Printf("oblivious interleave: %6.0f GB/s (remote traffic %.0f%%)\n",
		bwNaive, numa.RemoteTrafficFraction(items, naive, topo)*100)
	fmt.Printf("hot/cold placement:   %6.0f GB/s (remote traffic %.0f%%) — %.2fx\n",
		bwSmart, numa.RemoteTrafficFraction(items, smart, topo)*100, bwSmart/bwNaive)
}
