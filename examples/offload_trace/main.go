// Offload trace: visualize the zig-zag schedule behind Fig 18. For
// OPT-30B on the offloading A100, the example renders the per-layer event
// timeline of a decode step and a prefill pass at batch 1 and 32 — the
// transfer-dominated row (X) versus the compute rows (C = GPU, A = host
// attention) shows exactly where the PCIe data-loading fraction comes
// from and how batching hides it.
//
// Run with: go run ./examples/offload_trace
package main

import (
	"fmt"
	"log"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/offload"
	"repro/internal/tensor"
)

func main() {
	for _, batch := range []int{1, 32} {
		run := offload.Run{
			GPU: hw.A100, Host: hw.SPRMax9468, Model: model.OPT30B,
			Batch: batch, InputLen: 128, OutputLen: 32, Weights: tensor.BF16,
		}
		plan := run.Plan()
		fmt.Printf("== OPT-30B on A100+offload, batch %d ==\n", batch)
		fmt.Printf("placement: %.1f GB weights, %.1f GB GPU-resident, %.1f GB streamed per pass\n\n",
			plan.WeightsGB, plan.ResidentGB, plan.StreamedGB)

		dec, err := run.Trace(model.Decode, 159)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("decode step (X=PCIe transfer, C=GPU compute, A=host attention):")
		fmt.Print(dec.Render(100))
		fmt.Printf("→ data-loading stall: %.0f%% of the step\n\n",
			dec.Stall/dec.Makespan*100)

		pre, err := run.Trace(model.Prefill, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("prefill pass:")
		fmt.Print(pre.Render(100))
		fmt.Printf("→ data-loading stall: %.0f%% of the pass\n\n",
			pre.Stall/pre.Makespan*100)
	}
	fmt.Println("batch 32's compute rows lengthen until they hide most transfers —")
	fmt.Println("the mechanism behind Fig 18's falling PCIe share.")
}
