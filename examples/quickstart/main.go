// Quickstart: run the two substrates end to end —
//
//  1. the functional engine: a real pure-Go transformer generating tokens
//     through the AMX-style BF16 tile kernels, and
//  2. the platform simulator: price the same workload shape on the
//     paper's four evaluation platforms.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/texttoken"
)

func main() {
	// --- 1. Functional engine -------------------------------------------
	eng, err := core.TinyEngine("llama", engine.KernelTileBF16)
	if err != nil {
		log.Fatal(err)
	}
	prompt, err := texttoken.Encode("CPUs can serve LLMs: ")
	if err != nil {
		log.Fatal(err)
	}
	out, stats, err := eng.Generate([][]int{prompt}, 12)
	if err != nil {
		log.Fatal(err)
	}
	text, err := texttoken.Decode(out[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== functional engine (tiny LLaMA-2, AMX-style BF16 tiles) ==")
	fmt.Printf("prompt tokens:    %v\n", prompt)
	fmt.Printf("generated tokens: %v\n", out[0])
	fmt.Printf("as text (random weights, so gibberish): %q\n", text)
	fmt.Printf("measured TTFT=%.2fms TPOT=%.2fms\n\n",
		stats.TTFT()*1e3, stats.TPOT()*1e3)

	// --- 2. Platform simulator ------------------------------------------
	fmt.Println("== platform simulator (OPT-30B, batch 1, in=128, out=32) ==")
	m := core.MustModel("OPT-30B")

	spr, err := core.SimulateCPU(core.SPRQuadFlat(48), m, 1, 128, 32)
	if err != nil {
		log.Fatal(err)
	}
	icl, err := core.SimulateCPU(core.ICLBaseline(), m, 1, 128, 32)
	if err != nil {
		log.Fatal(err)
	}
	a100, err := core.SimulateGPU(core.A100(), m, 1, 128, 32)
	if err != nil {
		log.Fatal(err)
	}
	h100, err := core.SimulateGPU(core.H100(), m, 1, 128, 32)
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range []core.Result{icl, spr, a100, h100} {
		line := fmt.Sprintf("%-22s E2E=%7.2fs  tokens/s=%6.2f", r.Platform, r.Latency.E2E, r.Throughput.E2E)
		if r.TransferSeconds > 0 {
			line += fmt.Sprintf("  (offloading: %.0f%% PCIe)", r.PCIeFraction()*100)
		}
		fmt.Println(line)
	}
	fmt.Println("\nOPT-30B exceeds the A100's 40 GB: the AMX+HBM CPU beats the")
	fmt.Println("offloading GPU (the paper's Key Finding #4), while the H100-80GB")
	fmt.Println("holds the model resident and wins.")
}
