// Serving policies: compare batching disciplines on the AMX CPU under
// increasing load. Static batching (TorchServe/Triton style) amortizes
// weight streaming across requests; Orca-style continuous batching
// additionally releases short requests early. This extends the paper's
// per-point metrics (§II-C) to serving-level behaviour.
//
// Run with: go run ./examples/serving_policies
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	m := core.MustModel("LLaMA2-13B")
	cost := serve.NewCPUCost(core.SPRQuadFlat(48), m)

	fmt.Printf("serving %s on the SPR CPU (quad_flat, 48 cores), 48 requests\n\n", m.Name)
	fmt.Printf("%-10s %-12s %12s %12s %12s %14s\n",
		"load", "policy", "mean TTFT", "p95 E2E", "queue wait", "tokens/s")

	for _, rate := range []float64{0.5, 2, 8} {
		gen := workload.NewGenerator(17)
		gen.ArrivalRate = rate
		gen.LenJitter = 0.8 // heterogeneous lengths favor continuous batching
		trace := gen.Trace(48)
		for _, pol := range []serve.Policy{serve.FCFS, serve.Static, serve.Continuous} {
			srv := serve.Server{Cost: cost, Policy: pol, MaxBatch: 8, BatchWait: 0.25}
			cs, err := srv.Run(trace)
			if err != nil {
				log.Fatal(err)
			}
			sm := serve.Summarize(cs)
			fmt.Printf("%-10s %-12s %11.2fs %11.2fs %11.2fs %14.1f\n",
				fmt.Sprintf("%.1f req/s", rate), pol,
				sm.MeanTTFT, sm.P95E2E, sm.MeanQueueWait, sm.TokensPerSecond)
		}
		fmt.Println()
	}
	fmt.Println("under load, batching lifts CPU throughput several-fold (the Fig 8")
	fmt.Println("amortization effect); continuous batching additionally cuts tail")
	fmt.Println("latency by releasing short requests as they finish.")
}
