// Speculative decoding: run it functionally (a real draft model proposing
// tokens that a real target model verifies — output bit-identical to the
// target's greedy generation) and analytically (expected TPOT speedup on
// the memory-bound SPR CPU, where one verification pass streams the
// weights once for k+1 candidate tokens).
//
// Run with: go run ./examples/speculative
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/specdec"
	"repro/internal/tensor"
)

func main() {
	// --- functional: tiny target + 1-layer draft -------------------------
	cfg := model.Tiny(model.OPT)
	tw, err := engine.NewWeights(cfg, 42, tensor.FP32)
	if err != nil {
		log.Fatal(err)
	}
	target, err := engine.New(tw, engine.Options{Kernel: engine.KernelBlocked})
	if err != nil {
		log.Fatal(err)
	}
	dcfg := cfg
	dcfg.Layers = 1
	dw, err := engine.NewWeights(dcfg, 7, tensor.FP32)
	if err != nil {
		log.Fatal(err)
	}
	draft, err := engine.New(dw, engine.Options{Kernel: engine.KernelBlocked})
	if err != nil {
		log.Fatal(err)
	}

	prompt := core.Prompt(target, 12, 3)
	greedy, _, err := target.Generate([][]int{prompt}, 16)
	if err != nil {
		log.Fatal(err)
	}
	spec, st, err := engine.SpeculativeGenerate(target, draft, prompt, 16, 4)
	if err != nil {
		log.Fatal(err)
	}
	match := true
	for i := range greedy[0] {
		if greedy[0][i] != spec[i] {
			match = false
		}
	}
	fmt.Println("== functional speculative decoding (tiny OPT, 1-layer draft, k=4) ==")
	fmt.Printf("greedy output:      %v\n", greedy[0])
	fmt.Printf("speculative output: %v\n", spec)
	fmt.Printf("bit-identical: %v\n", match)
	fmt.Printf("acceptance rate %.0f%%, %d target passes for 16 tokens (greedy needs 16)\n\n",
		st.AcceptanceRate()*100, st.TargetPasses)

	// --- analytic: OPT-30B target, OPT-1.3B draft on the SPR CPU ---------
	fmt.Println("== simulated speedup on SPR quad_flat (OPT-30B target, OPT-1.3B draft) ==")
	fmt.Printf("%-12s %-10s %14s %14s %9s\n",
		"acceptance", "lookahead", "baseline TPOT", "spec TPOT", "speedup")
	for _, alpha := range []float64{0.6, 0.7, 0.8, 0.9} {
		best := specdec.Result{}
		bestK := 0
		for _, k := range []int{2, 4, 6, 8} {
			run := specdec.Run{Target: model.OPT30B, Draft: model.OPT1B3,
				Setup: core.SPRQuadFlat(48), Batch: 1, InputLen: 128,
				OutputLen: 32, Lookahead: k, Acceptance: alpha}
			res, err := run.Simulate()
			if err != nil {
				log.Fatal(err)
			}
			if res.Speedup > best.Speedup {
				best, bestK = res, k
			}
		}
		fmt.Printf("%-12.2f %-10d %12.1fms %12.1fms %8.2fx\n",
			alpha, bestK, best.BaselineTPOT*1e3, best.SpecTPOT*1e3, best.Speedup)
	}
	fmt.Println("\nthe decode phase streams all weights per token (memory-bound, Figs")
	fmt.Println("9-12); verifying k tokens in one pass reuses that stream, so speedup")
	fmt.Println("tracks the expected accepted run length.")
}
