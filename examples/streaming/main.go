// Streaming: drive the functional engine through its token-streaming API
// — the delivery mode interactive services use, where TTFT (§II-C) is the
// time until the first streamed token appears. Tokens decode to printable
// text live, and a perplexity evaluation compares the FP32, AMX-style
// BF16, and INT8 execution paths on the same sequence (the accuracy side
// of the paper's BF16/INT8 hardware story).
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/texttoken"
)

func main() {
	eng, err := core.TinyEngine("opt", engine.KernelTileBF16)
	if err != nil {
		log.Fatal(err)
	}
	prompt, err := texttoken.Encode("The CPU said: ")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== streaming generation (tiny OPT, AMX-style BF16 tiles) ==")
	fmt.Print("tokens as they arrive: ")
	start := time.Now()
	var firstTok time.Duration
	out, err := eng.GenerateStream([][]int{prompt}, 16, func(seq, step, tok int) bool {
		if step == 0 {
			firstTok = time.Since(start)
		}
		if s, err := texttoken.Decode([]int{tok}); err == nil && s != "" {
			fmt.Print(s)
		} else {
			fmt.Print("·")
		}
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmeasured TTFT %.2fms for %d streamed tokens\n\n",
		firstTok.Seconds()*1e3, len(out[0]))

	// Perplexity across numeric paths on the same sequence.
	fmt.Println("== perplexity across execution paths (same weights) ==")
	seq := append(append([]int{}, prompt...), out[0]...)
	for _, k := range []engine.Kernel{engine.KernelBlocked, engine.KernelTileBF16, engine.KernelInt8} {
		e2, err := core.TinyEngine("opt", k)
		if err != nil {
			log.Fatal(err)
		}
		res, err := e2.Perplexity(seq)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s perplexity %.3f (avg logprob %.3f over %d tokens)\n",
			k, res.Perplexity, res.AvgLogProb, res.Tokens)
	}
	fmt.Println("\nBF16 and INT8 paths track the FP32 reference closely — the accuracy")
	fmt.Println("precondition for the paper's AMX-BF16/INT8 performance results.")
}
