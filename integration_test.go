package repro

// Cross-module integration tests: these exercise whole flows through the
// public facade and check consistency *between* subsystems — the
// simulator against the offload executor, the hybrid partitioner against
// both of its endpoints, the serving simulator against the point model,
// and the functional engine against the analytic op inventory.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/hybrid"
	"repro/internal/model"
	"repro/internal/offload"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// TestHybridDominatesItsEndpoints: for any oversized model, the best
// hybrid split can never be slower than either pure strategy it
// interpolates (it contains both as degenerate splits, up to the GPU
// capacity bound).
func TestHybridDominatesItsEndpoints(t *testing.T) {
	for _, c := range []struct {
		g hw.GPU
		m model.Config
		b int
	}{
		{hw.A100, model.OPT30B, 1},
		{hw.A100, model.OPT66B, 4},
		{hw.H100, model.OPT66B, 1},
		{hw.H100, model.Llama70B, 16},
	} {
		run := hybrid.Run{GPU: c.g, Host: experiments.SPRSetup(), Model: c.m,
			Batch: c.b, InputLen: 128, OutputLen: 32, Weights: tensor.BF16}
		_, best, err := run.BestSplit()
		if err != nil {
			t.Fatalf("%s/%s: %v", c.g.Name, c.m.Name, err)
		}
		cpu, err := run.CPUOnly()
		if err != nil {
			t.Fatal(err)
		}
		// The all-CPU split and the dedicated CPU model differ slightly in
		// overhead accounting; allow 10 % slack against the CPU endpoint.
		if best.Latency.E2E > cpu.Latency.E2E*1.1 {
			t.Errorf("%s/%s b=%d: best split %.2fs worse than pure CPU %.2fs",
				c.g.Name, c.m.Name, c.b, best.Latency.E2E, cpu.Latency.E2E)
		}
	}
}

// TestFacadeAgreesWithSubsystems: core.SimulateGPU must route to the
// offload executor exactly when perfmodel says the model does not fit.
func TestFacadeAgreesWithSubsystems(t *testing.T) {
	for _, m := range core.Models() {
		for _, g := range []core.GPU{core.A100(), core.H100()} {
			res, err := core.SimulateGPU(g, m, 1, 128, 32)
			if err != nil {
				t.Fatalf("%s/%s: %v", g.Name, m.Name, err)
			}
			needsOffload := offload.Run{GPU: g, Host: hw.SPRMax9468, Model: m,
				Batch: 1, InputLen: 128, OutputLen: 32, Weights: tensor.BF16}.Needed()
			if needsOffload != (res.TransferSeconds > 0) {
				t.Errorf("%s/%s: offload routing mismatch (needed=%v, transfer=%.2fs)",
					g.Name, m.Name, needsOffload, res.TransferSeconds)
			}
		}
	}
}

// TestServingConsistentWithPointModel: a single FCFS request must cost
// exactly what the point model prices for the same shape.
func TestServingConsistentWithPointModel(t *testing.T) {
	m := core.MustModel("OPT-13B")
	point, err := core.SimulateCPU(core.SPRQuadFlat(48), m, 1, 128, 32)
	if err != nil {
		t.Fatal(err)
	}
	cost := serve.NewCPUCost(experiments.SPRSetup(), m)
	srv := serve.Server{Cost: cost, Policy: serve.FCFS, MaxBatch: 1}
	cs, err := srv.Run([]workload.Request{{ID: 0, InputLen: 128, OutputLen: 32}})
	if err != nil {
		t.Fatal(err)
	}
	// The serving path prices decode steps at bucketed context lengths;
	// allow a few percent of quantization slack.
	if ratio := cs[0].E2E / point.Latency.E2E; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("serving E2E %.3fs vs point model %.3fs (ratio %.3f)",
			cs[0].E2E, point.Latency.E2E, ratio)
	}
	if cs[0].TTFT != point.Latency.TTFT {
		t.Errorf("serving TTFT %.4f != point TTFT %.4f", cs[0].TTFT, point.Latency.TTFT)
	}
}

// TestOffloadTraceMatchesSimulate: the decode timeline's makespan (plus
// the per-pass overhead) must equal the per-step time Simulate reports.
func TestOffloadTraceMatchesSimulate(t *testing.T) {
	run := offload.Run{GPU: hw.H100, Host: hw.SPRMax9468, Model: model.OPT66B,
		Batch: 1, InputLen: 128, OutputLen: 2, Weights: tensor.BF16}
	res, err := run.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	tl, err := run.Trace(model.Decode, 129)
	if err != nil {
		t.Fatal(err)
	}
	step := tl.Makespan + hw.H100.StepOverheadMS/1e3
	if ratio := step / res.DecodeSeconds; ratio < 0.98 || ratio > 1.02 {
		t.Errorf("trace step %.3fs vs simulated decode %.3fs", step, res.DecodeSeconds)
	}
}

// TestEngineMatchesOpInventoryShapes: the functional engine's KV cache
// growth must match the analytic KV sizing for its config.
func TestEngineMatchesOpInventoryShapes(t *testing.T) {
	e, err := core.TinyEngine("llama", engine.KernelBlocked)
	if err != nil {
		t.Fatal(err)
	}
	cfg := e.Config()
	const maxSeq = 48
	s := e.NewSession(2, maxSeq)
	// Engine stores FP32; analytics sized at FP32 must match exactly.
	want := 2 * cfg.KVCacheBytes(maxSeq, 1, tensor.FP32)
	if s.KVBytes() != want {
		t.Errorf("engine KV bytes %d != analytic %d", s.KVBytes(), want)
	}
}

// TestQuickstartFlow: the exact sequence the quickstart example runs must
// work end to end through the facade.
func TestQuickstartFlow(t *testing.T) {
	eng, err := core.TinyEngine("opt", engine.KernelTileBF16Parallel)
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := eng.Generate([][]int{core.Prompt(eng, 12, 3)}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0]) != 6 || stats.TTFT() <= 0 {
		t.Error("quickstart generation broken")
	}
	for _, m := range []string{"OPT-30B", "LLaMA2-70B"} {
		cpu, err := core.SimulateCPU(core.SPRQuadFlat(48), core.MustModel(m), 1, 128, 32)
		if err != nil {
			t.Fatal(err)
		}
		gpu, err := core.SimulateGPU(core.A100(), core.MustModel(m), 1, 128, 32)
		if err != nil {
			t.Fatal(err)
		}
		if gpu.Latency.E2E <= cpu.Latency.E2E {
			t.Errorf("%s: offloading A100 must lose to the CPU at batch 1", m)
		}
	}
}
