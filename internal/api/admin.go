package api

// admin.go exposes the runtime fault-injection control surface. It is an
// operator endpoint, not part of the serving data plane: chaos drills arm
// a rule set against the live gateway, watch the lanes degrade and
// recover, then disarm — without restarting the process.

import (
	"fmt"
	"net/http"

	"repro/internal/faults"
)

// armFaultsRequest is the body of POST /v1/admin/faults.
type armFaultsRequest struct {
	Rules []faults.Rule `json:"rules"`
}

// handleAdminFaults serves /v1/admin/faults:
//
//	GET     current injector status (armed rules, fire counts)
//	POST    arm a rule set (replaces any previous set)
//	DELETE  disarm all rules
func (s *Server) handleAdminFaults(w http.ResponseWriter, r *http.Request) {
	inj := s.gw.Injector()
	if inj == nil {
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable,
			fmt.Errorf("fault injection not enabled on this gateway"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, inj.Snapshot())
	case http.MethodPost:
		var req armFaultsRequest
		if err := decodeBody(r, &req); err != nil {
			writeBodyError(w, err)
			return
		}
		if len(req.Rules) == 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("rules must contain at least one fault rule"))
			return
		}
		if err := inj.Arm(req.Rules...); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, inj.Snapshot())
	case http.MethodDelete:
		inj.Disarm()
		writeJSON(w, http.StatusOK, inj.Snapshot())
	}
}
