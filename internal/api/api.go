// Package api exposes the simulator over HTTP as a JSON service — the
// shape a capacity-planning dashboard or load generator consumes. All
// traffic flows through a gateway (internal/gateway) that provides a
// bounded queue with 429 backpressure, batched execution, per-request
// cancellation, graceful drain and metrics.
//
// v1 endpoints (see docs/api.md for schemas and examples):
//
//	GET  /v1/                        endpoint index
//	GET  /v1/models                  model presets
//	GET  /v1/platforms               platform registry
//	GET|POST /v1/simulate            one simulated inference point
//	GET|POST /v1/autotune            configuration search
//	POST /v1/generate                one request through the batching gateway
//	GET  /v1/experiments             experiment keys
//	GET  /v1/experiments/{key}       one experiment's rendered tables
//	GET  /v1/scorecard               reproduction scorecard
//	GET|POST|DELETE /v1/admin/faults runtime fault injection control
//	GET  /metrics                    Prometheus metrics
//	GET  /healthz, /readyz           liveness / readiness
package api

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gateway"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/tensor"
)

// Server is the v1 API bound to one gateway.
type Server struct {
	gw   *gateway.Gateway
	reg  *metrics.Registry
	reqs *metrics.Counter
	errs *metrics.Counter
}

// NewServer returns a server routing execution through gw. A nil gw gets
// a default gateway (continuous batching, default bounds) wired to the
// standard lane resolver.
func NewServer(gw *gateway.Gateway) *Server {
	if gw == nil {
		gw = gateway.New(gateway.Config{}, LaneResolver())
	}
	reg := gw.Registry()
	return &Server{
		gw:   gw,
		reg:  reg,
		reqs: reg.Counter("api_http_requests_total", "HTTP requests received"),
		errs: reg.Counter("api_http_errors_total", "HTTP responses with status >= 400"),
	}
}

// NewHandler returns the service's HTTP handler with a default gateway
// (the historical entry point).
func NewHandler() http.Handler { return NewServer(nil).Handler() }

// Gateway returns the server's gateway (for shutdown wiring).
func (s *Server) Gateway() *gateway.Gateway { return s.gw }

// endpointInfo describes one route in the /v1/ index.
type endpointInfo struct {
	Method      string `json:"method"`
	Path        string `json:"path"`
	Description string `json:"description"`
}

var endpoints = []endpointInfo{
	{"GET", "/v1/", "this index"},
	{"GET", "/v1/models", "model presets the paper evaluates"},
	{"GET", "/v1/platforms", "platform registry (CPUs and GPUs of Tables I-II)"},
	{"GET, POST", "/v1/simulate", "price one inference point (platform, model, batch, in, out)"},
	{"GET, POST", "/v1/autotune", "search CPU configurations for an objective"},
	{"POST", "/v1/generate", "serve one generation request through the batching gateway"},
	{"GET", "/v1/experiments", "paper experiment keys"},
	{"GET", "/v1/experiments/{key}", "run one experiment, rendered tables"},
	{"GET", "/v1/scorecard", "reproduction scorecard"},
	{"GET, POST, DELETE", "/v1/admin/faults", "inspect, arm or disarm runtime fault injection"},
	{"GET", "/metrics", "Prometheus metrics (gateway queue, TTFT/TPOT/E2E histograms)"},
	{"GET", "/healthz", "liveness"},
	{"GET", "/readyz", "readiness (503 while draining)"},
}

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc, methods ...string) {
		mux.HandleFunc(pattern, s.instrument(h, methods))
	}
	route("/v1/{$}", s.handleIndex, http.MethodGet)
	route("/v1/models", s.handleModels, http.MethodGet)
	route("/v1/platforms", s.handlePlatforms, http.MethodGet)
	route("/v1/simulate", s.handleSimulate, http.MethodGet, http.MethodPost)
	route("/v1/autotune", s.handleAutotune, http.MethodGet, http.MethodPost)
	route("/v1/generate", s.handleGenerate, http.MethodPost)
	route("/v1/experiments", s.handleExperimentList, http.MethodGet)
	route("/v1/experiments/{key}", s.handleExperiment, http.MethodGet)
	route("/v1/scorecard", s.handleScorecard, http.MethodGet)
	route("/v1/admin/faults", s.handleAdminFaults, http.MethodGet, http.MethodPost, http.MethodDelete)
	route("/metrics", s.handleMetrics, http.MethodGet)
	route("/healthz", s.handleHealthz, http.MethodGet)
	route("/readyz", s.handleReadyz, http.MethodGet)
	// Uniform JSON 404 for everything unmatched.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.reqs.Inc()
		s.errs.Inc()
		writeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Errorf("no such endpoint %s (see /v1/ for the index)", r.URL.Path))
	})
	return mux
}

// instrument counts requests and enforces the allowed method set with a
// uniform 405 envelope and Allow header.
func (s *Server) instrument(h http.HandlerFunc, methods []string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.reqs.Inc()
		for _, m := range methods {
			if r.Method == m {
				h(&statusWriter{ResponseWriter: w, errs: s.errs}, r)
				return
			}
		}
		s.errs.Inc()
		w.Header().Set("Allow", strings.Join(methods, ", "))
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			fmt.Errorf("method %s not allowed on %s", r.Method, r.URL.Path))
	}
}

// statusWriter counts error responses.
type statusWriter struct {
	http.ResponseWriter
	errs    *metrics.Counter
	counted bool
}

func (sw *statusWriter) WriteHeader(status int) {
	if status >= 400 && !sw.counted {
		sw.counted = true
		sw.errs.Inc()
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"endpoints": endpoints})
}

type modelInfo struct {
	Name      string  `json:"name"`
	Family    string  `json:"family"`
	Layers    int     `json:"layers"`
	DModel    int     `json:"d_model"`
	ParamsB   float64 `json:"params_billion"`
	BF16GB    float64 `json:"bf16_gb"`
	MaxSeqLen int     `json:"max_seq_len"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	var out []modelInfo
	for _, m := range model.Evaluated() {
		out = append(out, modelInfo{
			Name: m.Name, Family: m.Family.String(),
			Layers: m.Layers, DModel: m.DModel,
			ParamsB:   float64(m.ParamCount()) / 1e9,
			BF16GB:    float64(m.WeightBytes(tensor.BF16)) / 1e9,
			MaxSeqLen: m.MaxSeq,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// platformInfo is one registry entry in JSON form.
type platformInfo struct {
	Key         string `json:"key"`
	Kind        string `json:"kind"`
	Name        string `json:"name"`
	Description string `json:"description"`
}

func (s *Server) handlePlatforms(w http.ResponseWriter, r *http.Request) {
	entries := hw.Platforms()
	out := make([]platformInfo, len(entries))
	for i, e := range entries {
		out[i] = platformInfo{Key: e.Key, Kind: e.Kind.String(),
			Name: e.Name(), Description: e.Description}
	}
	writeJSON(w, http.StatusOK, out)
}

// simResponse is the JSON form of a simulation result.
type simResponse struct {
	Platform        string  `json:"platform"`
	Model           string  `json:"model"`
	Batch           int     `json:"batch"`
	InputLen        int     `json:"input_len"`
	OutputLen       int     `json:"output_len"`
	TTFTMillis      float64 `json:"ttft_ms"`
	TPOTMillis      float64 `json:"tpot_ms"`
	E2ESeconds      float64 `json:"e2e_s"`
	TokensPerSecond float64 `json:"tokens_per_second"`
	PCIeFraction    float64 `json:"pcie_fraction"`
	LLCMPKI         float64 `json:"llc_mpki,omitempty"`
	CoreUtilization float64 `json:"core_utilization,omitempty"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	var err error
	if r.Method == http.MethodPost {
		err = decodeBody(r, &req)
	} else {
		req, err = simulateFromQuery(r)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	m, entry, err := req.normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}

	var setup core.CPUSetup
	if entry.Kind == hw.CPUPlatform {
		setup, err = cpuSetup(entry, req.Cores, req.MemMode, req.Cluster)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, err)
			return
		}
	}
	var res core.Result
	var simErr error
	gwErr := s.gw.Do(r.Context(), func(context.Context) error {
		if entry.Kind == hw.CPUPlatform {
			res, simErr = core.SimulateCPU(setup, m, req.Batch, req.InputLen, req.OutputLen)
		} else {
			res, simErr = core.SimulateGPU(*entry.GPU, m, req.Batch, req.InputLen, req.OutputLen)
		}
		return nil
	})
	if gwErr != nil {
		s.writeGatewayError(w, gwErr)
		return
	}
	if simErr != nil {
		writeError(w, http.StatusUnprocessableEntity, CodeUnprocessable, simErr)
		return
	}
	writeJSON(w, http.StatusOK, simResponse{
		Platform: res.Platform, Model: res.Model,
		Batch: res.Batch, InputLen: res.InputLen, OutputLen: res.OutputLen,
		TTFTMillis: res.Latency.TTFT * 1e3, TPOTMillis: res.Latency.TPOT * 1e3,
		E2ESeconds: res.Latency.E2E, TokensPerSecond: res.Throughput.E2E,
		PCIeFraction:    res.PCIeFraction(),
		LLCMPKI:         res.Counters.LLCMPKI,
		CoreUtilization: res.Counters.CoreUtilization,
	})
}

func (s *Server) handleAutotune(w http.ResponseWriter, r *http.Request) {
	var req AutotuneRequest
	var err error
	if r.Method == http.MethodPost {
		err = decodeBody(r, &req)
	} else {
		req, err = autotuneFromQuery(r)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	if req.InputLen == 0 {
		req.InputLen = 128
	}
	if req.OutputLen == 0 {
		req.OutputLen = 32
	}
	if req.Top == 0 {
		req.Top = 5
	}
	if req.InputLen < 0 || req.OutputLen < 0 || req.Top < 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("in, out and top must be positive"))
		return
	}
	m, err := core.ModelByName(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	var obj autotune.Objective
	switch req.Objective {
	case "", "e2e":
		obj = autotune.MinE2ELatency
	case "throughput":
		obj = autotune.MaxThroughput
	case "ttft":
		obj = autotune.MinTTFT
	default:
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("unknown objective %q (want e2e, throughput or ttft)", req.Objective))
		return
	}
	var cands []autotune.Candidate
	var tuneErr error
	gwErr := s.gw.Do(r.Context(), func(context.Context) error {
		cands, tuneErr = autotune.Tune(autotune.DefaultSpace(), autotune.Request{
			Model: m, InputLen: req.InputLen, OutputLen: req.OutputLen, Objective: obj,
		})
		return nil
	})
	if gwErr != nil {
		s.writeGatewayError(w, gwErr)
		return
	}
	if tuneErr != nil {
		writeError(w, http.StatusUnprocessableEntity, CodeUnprocessable, tuneErr)
		return
	}
	if req.Top < len(cands) {
		cands = cands[:req.Top]
	}
	resp := make([]tuneResponse, len(cands))
	for i, c := range cands {
		resp[i] = tuneResponse{
			Config: c.Setup.Name(), Cores: c.Setup.Cores, Batch: c.Batch,
			TTFTMillis:      c.Result.Latency.TTFT * 1e3,
			TPOTMillis:      c.Result.Latency.TPOT * 1e3,
			E2ESeconds:      c.Result.Latency.E2E,
			TokensPerSecond: c.Result.Throughput.E2E,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// tuneResponse is one autotune candidate in JSON form.
type tuneResponse struct {
	Config          string  `json:"config"`
	Cores           int     `json:"cores"`
	Batch           int     `json:"batch"`
	TTFTMillis      float64 `json:"ttft_ms"`
	TPOTMillis      float64 `json:"tpot_ms"`
	E2ESeconds      float64 `json:"e2e_s"`
	TokensPerSecond float64 `json:"tokens_per_second"`
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	if err := req.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	res, err := s.gw.Generate(r.Context(), gateway.Request{
		Lane: req.laneKey(), InputLen: req.InputLen, OutputLen: req.OutputLen,
	})
	if err != nil {
		s.writeGatewayError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	type exp struct{ Key, Title string }
	var out []exp
	for _, e := range experiments.All() {
		out = append(out, exp{e.Key, e.Title})
	}
	writeJSON(w, http.StatusOK, out)
}

// tableJSON is the JSON form of an experiment table.
type tableJSON struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	e, err := experiments.ByKey(key)
	if err != nil {
		writeError(w, http.StatusNotFound, CodeNotFound, err)
		return
	}
	var tabs []experiments.Table
	var runErr error
	gwErr := s.gw.Do(r.Context(), func(context.Context) error {
		tabs, runErr = e.Run()
		return nil
	})
	if gwErr != nil {
		s.writeGatewayError(w, gwErr)
		return
	}
	if runErr != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, runErr)
		return
	}
	out := make([]tableJSON, len(tabs))
	for i, t := range tabs {
		out[i] = tableJSON{ID: t.ID, Title: t.Title, Columns: t.Columns, Rows: t.Rows}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleScorecard(w http.ResponseWriter, r *http.Request) {
	tab, err := experiments.RunScorecard()
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	writeJSON(w, http.StatusOK, tableJSON{ID: tab.ID, Title: tab.Title,
		Columns: tab.Columns, Rows: tab.Rows})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.gw.Draining() {
		writeError(w, http.StatusServiceUnavailable, CodeDraining,
			fmt.Errorf("gateway draining"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}
