// Package api exposes the simulator over HTTP as a JSON service — the
// shape a capacity-planning dashboard or load generator consumes. All
// traffic flows through a gateway (internal/gateway) that provides a
// bounded queue with 429 backpressure, batched execution, per-request
// cancellation, graceful drain and metrics.
//
// v1 endpoints (see docs/api.md for schemas and examples):
//
//	GET  /v1/                        endpoint index
//	GET  /v1/models                  model presets
//	GET  /v1/platforms               platform registry
//	GET|POST /v1/simulate            one simulated inference point
//	GET|POST /v1/autotune            configuration search
//	POST /v1/generate                one request through the batching gateway
//	                                 ("stream": true → SSE per-token chunks)
//	POST /v1/chat/completions        OpenAI-compatible chat completions
//	POST /v1/completions             OpenAI-compatible text completions alias
//	GET  /v1/experiments             experiment keys
//	GET  /v1/experiments/{key}       one experiment's rendered tables
//	GET  /v1/scorecard               reproduction scorecard
//	GET  /v1/kv                      per-lane KV pool governance status
//	GET  /v1/cache                   prefix-cache status (hit rate, retained blocks)
//	GET  /v1/cluster                 replica health and failover status
//	GET|POST|DELETE /v1/admin/faults runtime fault injection control
//	POST /v1/admin/cache/flush       drop unpinned prefix-cache entries
//	GET  /metrics                    Prometheus metrics
//	GET  /healthz, /readyz           liveness / readiness
package api

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gateway"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Server is the v1 API bound to one backend — a single gateway or a
// cluster router (see backend.go).
type Server struct {
	gw   Backend
	reg  *metrics.Registry
	reqs *metrics.Counter
	errs *metrics.Counter
}

// NewServer returns a server routing execution through gw. A nil gw gets
// a default gateway (continuous batching, default bounds) wired to the
// standard lane resolver.
func NewServer(gw Backend) *Server {
	if gw == nil {
		gw = gateway.New(gateway.Config{}, LaneResolver())
	}
	reg := gw.Registry()
	return &Server{
		gw:   gw,
		reg:  reg,
		reqs: reg.Counter("api_http_requests_total", "HTTP requests received"),
		errs: reg.Counter("api_http_errors_total", "HTTP responses with status >= 400"),
	}
}

// NewHandler returns the service's HTTP handler with a default gateway
// (the historical entry point).
func NewHandler() http.Handler { return NewServer(nil).Handler() }

// Gateway returns the server's backend (for shutdown wiring).
func (s *Server) Gateway() Backend { return s.gw }

// endpointInfo describes one route in the /v1/ index.
type endpointInfo struct {
	Method      string `json:"method"`
	Path        string `json:"path"`
	Description string `json:"description"`
}

var endpoints = []endpointInfo{
	{"GET", "/v1/", "this index"},
	{"GET", "/v1/models", "model presets the paper evaluates"},
	{"GET", "/v1/platforms", "platform registry (CPUs and GPUs of Tables I-II)"},
	{"GET, POST", "/v1/simulate", "price one inference point (platform, model, batch, in, out)"},
	{"GET, POST", "/v1/autotune", "search CPU configurations for an objective"},
	{"POST", "/v1/generate", `serve one generation request through the batching gateway; "stream": true delivers per-token SSE chunks (data: {...}, data: [DONE])`},
	{"POST", "/v1/chat/completions", `OpenAI-compatible chat completions (usage, finish_reason); "stream": true delivers chat.completion.chunk SSE`},
	{"POST", "/v1/completions", "OpenAI-compatible legacy text completions alias, sharing /v1/generate validation and streaming"},
	{"GET", "/v1/experiments", "paper experiment keys"},
	{"GET", "/v1/experiments/{key}", "run one experiment, rendered tables"},
	{"GET", "/v1/scorecard", "reproduction scorecard"},
	{"GET", "/v1/traces", "recent request traces (?id= for one, ?limit= to page)"},
	{"GET", "/v1/kv", "per-lane KV pool governance: blocks, watermarks, quotas, preemptions; cache fields are deprecated here — use /v1/cache"},
	{"GET", "/v1/cache", "prefix-cache status: tree sizes, hit rate, retained blocks per lane (404 while caching is disabled)"},
	{"GET", "/v1/cluster", "replica health, routing policy and failover counters (404 unless -replicas > 1)"},
	{"GET", "/v1/overload", "overload control status: brownout level, active degradations, adaptive concurrency limit, per-class admission counters (404 while disabled)"},
	{"GET, POST, DELETE", "/v1/admin/faults", "inspect, arm or disarm runtime fault injection"},
	{"POST", "/v1/admin/cache/flush", "drop every unpinned prefix-cache entry, returning blocks_released"},
	{"GET", "/metrics", "Prometheus metrics (gateway queue, TTFT/TPOT/E2E histograms)"},
	{"GET", "/healthz", "liveness"},
	{"GET", "/readyz", "readiness (503 while draining)"},
}

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc, methods ...string) {
		mux.HandleFunc(pattern, s.instrument(h, methods))
	}
	route("/v1/{$}", s.handleIndex, http.MethodGet)
	route("/v1/models", s.handleModels, http.MethodGet)
	route("/v1/platforms", s.handlePlatforms, http.MethodGet)
	route("/v1/simulate", s.handleSimulate, http.MethodGet, http.MethodPost)
	route("/v1/autotune", s.handleAutotune, http.MethodGet, http.MethodPost)
	route("/v1/generate", s.handleGenerate, http.MethodPost)
	route("/v1/chat/completions", s.handleChatCompletions, http.MethodPost)
	route("/v1/completions", s.handleCompletions, http.MethodPost)
	route("/v1/experiments", s.handleExperimentList, http.MethodGet)
	route("/v1/experiments/{key}", s.handleExperiment, http.MethodGet)
	route("/v1/scorecard", s.handleScorecard, http.MethodGet)
	route("/v1/traces", s.handleTraces, http.MethodGet)
	route("/v1/kv", s.handleKV, http.MethodGet)
	route("/v1/cache", s.handleCache, http.MethodGet)
	route("/v1/cluster", s.handleCluster, http.MethodGet)
	route("/v1/overload", s.handleOverload, http.MethodGet)
	route("/v1/admin/faults", s.handleAdminFaults, http.MethodGet, http.MethodPost, http.MethodDelete)
	route("/v1/admin/cache/flush", s.handleCacheFlush, http.MethodPost)
	route("/metrics", s.handleMetrics, http.MethodGet)
	route("/healthz", s.handleHealthz, http.MethodGet)
	route("/readyz", s.handleReadyz, http.MethodGet)
	// Uniform JSON 404 for everything unmatched, with the same header and
	// envelope contract (X-Request-ID, X-Trace-ID, trace_id) as real routes.
	mux.HandleFunc("/", s.instrument(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Errorf("no such endpoint %s (see /v1/ for the index)", r.URL.Path))
	}, nil))
	return mux
}

// instrument is the per-route middleware: it counts requests, enforces the
// allowed method set (uniform 405 envelope with an Allow header; nil
// methods allow everything), establishes the request's identity — the
// X-Request-ID header is echoed or generated, a trace is started against
// the gateway's tracer and stamped as X-Trace-ID — and records the
// handler-phase span when the handler returns. An empty method list (the
// 404 fallback) skips method enforcement.
func (s *Server) instrument(h http.HandlerFunc, methods []string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.reqs.Inc()
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = trace.NewID()
		}
		tr := s.gw.Tracer().Start(reqID)
		w.Header().Set("X-Request-ID", reqID)
		if id := tr.ID(); id != "" {
			w.Header().Set("X-Trace-ID", id)
		}
		r = r.WithContext(trace.NewContext(r.Context(), tr))
		sw := &statusWriter{ResponseWriter: w, errs: s.errs}
		start := time.Now()
		defer func() {
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			tr.Add(trace.SpanData{Name: trace.PhaseHandler, Start: start, End: time.Now(),
				Attrs: map[string]string{"method": r.Method, "path": r.URL.Path,
					"status": strconv.Itoa(status)}})
			tr.Finish()
		}()
		if len(methods) == 0 {
			h(sw, r)
			return
		}
		for _, m := range methods {
			if r.Method == m {
				h(sw, r)
				return
			}
		}
		sw.Header().Set("Allow", strings.Join(methods, ", "))
		writeError(sw, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			fmt.Errorf("method %s not allowed on %s", r.Method, r.URL.Path))
	}
}

// statusWriter counts error responses and remembers the status for the
// handler-phase span.
type statusWriter struct {
	http.ResponseWriter
	errs    *metrics.Counter
	counted bool
	status  int
}

// Flush forwards to the wrapped writer so SSE streaming works through
// the status-capturing middleware.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer to http.ResponseController.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	if status >= 400 && !sw.counted {
		sw.counted = true
		sw.errs.Inc()
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"endpoints": endpoints})
}

type modelInfo struct {
	Name      string  `json:"name"`
	Family    string  `json:"family"`
	Layers    int     `json:"layers"`
	DModel    int     `json:"d_model"`
	Heads     int     `json:"heads"`
	KVHeads   int     `json:"kv_heads"`
	DFF       int     `json:"d_ff"`
	Vocab     int     `json:"vocab"`
	ParamsB   float64 `json:"params_billion"`
	BF16GB    float64 `json:"bf16_gb"`
	MaxSeqLen int     `json:"max_seq_len"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	var out []modelInfo
	for _, m := range model.Evaluated() {
		out = append(out, modelInfo{
			Name: m.Name, Family: m.Family.String(),
			Layers: m.Layers, DModel: m.DModel,
			Heads: m.Heads, KVHeads: m.KVHeads, DFF: m.DFF, Vocab: m.Vocab,
			ParamsB:   float64(m.ParamCount()) / 1e9,
			BF16GB:    float64(m.WeightBytes(tensor.BF16)) / 1e9,
			MaxSeqLen: m.MaxSeq,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// platformInfo is one registry entry in JSON form, with the capability
// block for its kind so clients can build request forms (core counts,
// memory modes, AMX/HBM availability) without hardcoding the registry.
type platformInfo struct {
	Key         string           `json:"key"`
	Kind        string           `json:"kind"`
	Name        string           `json:"name"`
	Description string           `json:"description"`
	CPU         *cpuCapabilities `json:"cpu,omitempty"`
	GPU         *gpuCapabilities `json:"gpu,omitempty"`
}

// cpuCapabilities summarizes a CPU platform's tunables for /v1/platforms.
type cpuCapabilities struct {
	Sockets        int      `json:"sockets"`
	CoresPerSocket int      `json:"cores_per_socket"`
	FreqGHz        float64  `json:"freq_ghz"`
	AMX            bool     `json:"amx"`
	AVX512TFLOPS   float64  `json:"avx512_peak_tflops"`
	AMXTFLOPS      float64  `json:"amx_peak_tflops,omitempty"`
	DDRGB          float64  `json:"ddr_gb"`
	DDRGBs         float64  `json:"ddr_gbs"`
	HBMGB          float64  `json:"hbm_gb,omitempty"`
	HBMGBs         float64  `json:"hbm_gbs,omitempty"`
	UPIGBs         float64  `json:"upi_gbs"`
	MemModes       []string `json:"mem_modes"`
	Clusters       []string `json:"clusters"`
}

// gpuCapabilities summarizes a GPU platform for /v1/platforms.
type gpuCapabilities struct {
	SMs          int     `json:"sms"`
	PeakTFLOPS   float64 `json:"peak_tflops"`
	MemGB        float64 `json:"mem_gb"`
	BandwidthGBs float64 `json:"bandwidth_gbs"`
	Link         string  `json:"link"`
	LinkGBs      float64 `json:"link_gbs"`
}

func platformCapabilities(e hw.PlatformEntry) (*cpuCapabilities, *gpuCapabilities) {
	if e.Kind == hw.CPUPlatform {
		c := e.CPU
		caps := &cpuCapabilities{
			Sockets:        c.Sockets,
			CoresPerSocket: c.CoresPerSocket,
			FreqGHz:        c.FreqGHz,
			AMX:            c.HasAMX(),
			AVX512TFLOPS:   c.AVX512.PeakTFLOPS,
			AMXTFLOPS:      c.AMX.PeakTFLOPS,
			DDRGB:          c.DDR.CapacityGB,
			DDRGBs:         c.DDR.BandwidthGBs,
			HBMGB:          c.HBM.CapacityGB,
			HBMGBs:         c.HBM.BandwidthGBs,
			UPIGBs:         c.UPIGBs,
			MemModes:       []string{"flat", "ddr"},
			Clusters:       []string{"quad"},
		}
		if c.HBM.CapacityGB > 0 {
			caps.MemModes = []string{"flat", "cache", "hbm-only", "ddr"}
			caps.Clusters = []string{"quad", "snc"}
		}
		return caps, nil
	}
	g := e.GPU
	return nil, &gpuCapabilities{
		SMs:          g.SMs,
		PeakTFLOPS:   g.PeakTFLOPS,
		MemGB:        g.MemGB,
		BandwidthGBs: g.BandwidthGBs,
		Link:         g.PCIe.Name,
		LinkGBs:      g.PCIe.TheoreticalGBs,
	}
}

func (s *Server) handlePlatforms(w http.ResponseWriter, r *http.Request) {
	entries := hw.Platforms()
	out := make([]platformInfo, len(entries))
	for i, e := range entries {
		cpu, gpu := platformCapabilities(e)
		out[i] = platformInfo{Key: e.Key, Kind: e.Kind.String(),
			Name: e.Name(), Description: e.Description, CPU: cpu, GPU: gpu}
	}
	writeJSON(w, http.StatusOK, out)
}

// simResponse is the JSON form of a simulation result.
type simResponse struct {
	Platform        string  `json:"platform"`
	Model           string  `json:"model"`
	Batch           int     `json:"batch"`
	InputLen        int     `json:"input_len"`
	OutputLen       int     `json:"output_len"`
	TTFTMillis      float64 `json:"ttft_ms"`
	TPOTMillis      float64 `json:"tpot_ms"`
	E2ESeconds      float64 `json:"e2e_s"`
	TokensPerSecond float64 `json:"tokens_per_second"`
	PCIeFraction    float64 `json:"pcie_fraction"`
	LLCMPKI         float64 `json:"llc_mpki,omitempty"`
	CoreUtilization float64 `json:"core_utilization,omitempty"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	var err error
	if r.Method == http.MethodPost {
		err = decodeBody(r, &req)
	} else {
		req, err = simulateFromQuery(r)
	}
	if err != nil {
		writeBodyError(w, err)
		return
	}
	m, entry, err := req.normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}

	var setup core.CPUSetup
	if entry.Kind == hw.CPUPlatform {
		setup, err = cpuSetup(entry, req.Cores, req.MemMode, req.Cluster)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, err)
			return
		}
	}
	var res core.Result
	var simErr error
	gwErr := s.gw.Do(r.Context(), func(context.Context) error {
		if entry.Kind == hw.CPUPlatform {
			res, simErr = core.SimulateCPU(setup, m, req.Batch, req.InputLen, req.OutputLen)
		} else {
			res, simErr = core.SimulateGPU(*entry.GPU, m, req.Batch, req.InputLen, req.OutputLen)
		}
		return nil
	})
	if gwErr != nil {
		s.writeGatewayError(w, gwErr)
		return
	}
	if simErr != nil {
		writeError(w, http.StatusUnprocessableEntity, CodeUnprocessable, simErr)
		return
	}
	writeJSON(w, http.StatusOK, simResponse{
		Platform: res.Platform, Model: res.Model,
		Batch: res.Batch, InputLen: res.InputLen, OutputLen: res.OutputLen,
		TTFTMillis: res.Latency.TTFT * 1e3, TPOTMillis: res.Latency.TPOT * 1e3,
		E2ESeconds: res.Latency.E2E, TokensPerSecond: res.Throughput.E2E,
		PCIeFraction:    res.PCIeFraction(),
		LLCMPKI:         res.Counters.LLCMPKI,
		CoreUtilization: res.Counters.CoreUtilization,
	})
}

func (s *Server) handleAutotune(w http.ResponseWriter, r *http.Request) {
	var req AutotuneRequest
	var err error
	if r.Method == http.MethodPost {
		err = decodeBody(r, &req)
	} else {
		req, err = autotuneFromQuery(r)
	}
	if err != nil {
		writeBodyError(w, err)
		return
	}
	if req.InputLen == 0 {
		req.InputLen = 128
	}
	if req.OutputLen == 0 {
		req.OutputLen = 32
	}
	if req.Top == 0 {
		req.Top = 5
	}
	if req.InputLen < 0 || req.OutputLen < 0 || req.Top < 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("in, out and top must be positive"))
		return
	}
	m, err := core.ModelByName(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	var obj autotune.Objective
	switch req.Objective {
	case "", "e2e":
		obj = autotune.MinE2ELatency
	case "throughput":
		obj = autotune.MaxThroughput
	case "ttft":
		obj = autotune.MinTTFT
	default:
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("unknown objective %q (want e2e, throughput or ttft)", req.Objective))
		return
	}
	var cands []autotune.Candidate
	var tuneErr error
	gwErr := s.gw.Do(r.Context(), func(context.Context) error {
		cands, tuneErr = autotune.Tune(autotune.DefaultSpace(), autotune.Request{
			Model: m, InputLen: req.InputLen, OutputLen: req.OutputLen, Objective: obj,
		})
		return nil
	})
	if gwErr != nil {
		s.writeGatewayError(w, gwErr)
		return
	}
	if tuneErr != nil {
		writeError(w, http.StatusUnprocessableEntity, CodeUnprocessable, tuneErr)
		return
	}
	if req.Top < len(cands) {
		cands = cands[:req.Top]
	}
	resp := make([]tuneResponse, len(cands))
	for i, c := range cands {
		resp[i] = tuneResponse{
			Config: c.Setup.Name(), Cores: c.Setup.Cores, Batch: c.Batch,
			TTFTMillis:      c.Result.Latency.TTFT * 1e3,
			TPOTMillis:      c.Result.Latency.TPOT * 1e3,
			E2ESeconds:      c.Result.Latency.E2E,
			TokensPerSecond: c.Result.Throughput.E2E,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// tuneResponse is one autotune candidate in JSON form.
type tuneResponse struct {
	Config          string  `json:"config"`
	Cores           int     `json:"cores"`
	Batch           int     `json:"batch"`
	TTFTMillis      float64 `json:"ttft_ms"`
	TPOTMillis      float64 `json:"tpot_ms"`
	E2ESeconds      float64 `json:"e2e_s"`
	TokensPerSecond float64 `json:"tokens_per_second"`
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	admit := time.Now()
	var req GenerateRequest
	if err := decodeBody(r, &req); err != nil {
		writeBodyError(w, err)
		return
	}
	s.serveGeneration(w, r, admit, &req, generateShape{})
}

// clientID identifies the submitting tenant for per-client KV quotas: the
// X-Client-ID header when set, otherwise the remote host (so one machine
// is one tenant regardless of ephemeral ports).
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil && host != "" {
		return host
	}
	return r.RemoteAddr
}

// handleKV serves the memory governor's per-lane pool snapshot. Without a
// governor the endpoint reports the feature disabled (404) rather than an
// empty status, so dashboards can tell "no governance" from "no lanes".
func (s *Server) handleKV(w http.ResponseWriter, r *http.Request) {
	gov := s.gw.Governor()
	if gov == nil {
		writeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Errorf("KV governance disabled (llmperfd -kv-govern=false, or no governor configured)"))
		return
	}
	writeJSON(w, http.StatusOK, gov.Snapshot())
}

// handleTraces serves retained request traces: ?id= returns one record,
// otherwise the most recent records (?limit=, default 20) newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	t := s.gw.Tracer()
	if id := r.URL.Query().Get("id"); id != "" {
		rec, ok := t.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, CodeNotFound,
				fmt.Errorf("no retained trace %q (sampled out, expired from the ring, or never existed)", id))
			return
		}
		writeJSON(w, http.StatusOK, rec)
		return
	}
	limit, err := positiveParam(r, "limit", 20)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	recs := t.Recent(limit)
	if recs == nil {
		recs = []trace.Record{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sample_rate": t.SampleRate(),
		"count":       len(recs),
		"traces":      recs,
	})
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	type exp struct{ Key, Title string }
	var out []exp
	for _, e := range experiments.All() {
		out = append(out, exp{e.Key, e.Title})
	}
	writeJSON(w, http.StatusOK, out)
}

// tableJSON is the JSON form of an experiment table.
type tableJSON struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	e, err := experiments.ByKey(key)
	if err != nil {
		writeError(w, http.StatusNotFound, CodeNotFound, err)
		return
	}
	var tabs []experiments.Table
	var runErr error
	gwErr := s.gw.Do(r.Context(), func(context.Context) error {
		tabs, runErr = e.Run()
		return nil
	})
	if gwErr != nil {
		s.writeGatewayError(w, gwErr)
		return
	}
	if runErr != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, runErr)
		return
	}
	out := make([]tableJSON, len(tabs))
	for i, t := range tabs {
		out[i] = tableJSON{ID: t.ID, Title: t.Title, Columns: t.Columns, Rows: t.Rows}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleScorecard(w http.ResponseWriter, r *http.Request) {
	tab, err := experiments.RunScorecard()
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	writeJSON(w, http.StatusOK, tableJSON{ID: tab.ID, Title: tab.Title,
		Columns: tab.Columns, Rows: tab.Rows})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.gw.Draining() {
		writeError(w, http.StatusServiceUnavailable, CodeDraining,
			fmt.Errorf("gateway draining"))
		return
	}
	if s.gw.Saturated() {
		// Sustained queue saturation: the admission queue has sat at
		// capacity past the saturation window, so new work only buys 429s.
		// Flip readiness just like KV pressure so load balancers route
		// around this instance until the backlog drains.
		writeError(w, http.StatusServiceUnavailable, CodeOverloadShed,
			fmt.Errorf("admission queue saturated past the saturation window"))
		return
	}
	if s.gw.MemoryPressure() {
		// Shedding above the KV high watermark: tell load balancers to
		// route elsewhere until the lane recovers below the low watermark.
		writeError(w, http.StatusServiceUnavailable, CodeMemoryPressure,
			fmt.Errorf("KV memory pressure: at least one lane above its high watermark"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleOverload serves the overload controller's snapshot: brownout
// level and active degradations, the adaptive concurrency limit, and
// per-class admission/shed counters. With overload control disabled the
// endpoint reports 404, matching how /v1/kv reports a missing governor.
func (s *Server) handleOverload(w http.ResponseWriter, r *http.Request) {
	st := s.gw.OverloadStatus()
	if !st.Enabled {
		writeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Errorf("overload control disabled (llmperfd -overload=false, or no controller configured)"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}
