// Package api exposes the simulator over HTTP as a small JSON service —
// the shape a capacity-planning or benchmarking dashboard would consume.
// Endpoints:
//
//	GET /v1/models                       model presets
//	GET /v1/platforms                    platform names
//	GET /v1/simulate?platform=&model=&batch=&in=&out=[&cores=&memmode=&cluster=]
//	GET /v1/experiments                  experiment keys
//	GET /v1/experiments/{key}            one experiment's rendered tables
//	GET /v1/scorecard                    reproduction scorecard
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/tensor"
)

// NewHandler returns the service's HTTP handler.
func NewHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/models", handleModels)
	mux.HandleFunc("/v1/platforms", handlePlatforms)
	mux.HandleFunc("/v1/simulate", handleSimulate)
	mux.HandleFunc("/v1/experiments", handleExperimentList)
	mux.HandleFunc("/v1/experiments/", handleExperiment)
	mux.HandleFunc("/v1/scorecard", handleScorecard)
	mux.HandleFunc("/v1/autotune", handleAutotune)
	return mux
}

// tuneResponse is one autotune candidate in JSON form.
type tuneResponse struct {
	Config          string  `json:"config"`
	Cores           int     `json:"cores"`
	Batch           int     `json:"batch"`
	TTFTMillis      float64 `json:"ttft_ms"`
	TPOTMillis      float64 `json:"tpot_ms"`
	E2ESeconds      float64 `json:"e2e_s"`
	TokensPerSecond float64 `json:"tokens_per_second"`
}

func handleAutotune(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	m, err := core.ModelByName(q.Get("model"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var obj autotune.Objective
	switch q.Get("objective") {
	case "", "e2e":
		obj = autotune.MinE2ELatency
	case "throughput":
		obj = autotune.MaxThroughput
	case "ttft":
		obj = autotune.MinTTFT
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown objective %q", q.Get("objective")))
		return
	}
	in, err := intParam(r, "in", 128)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	out, err := intParam(r, "out", 32)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	top, err := intParam(r, "top", 5)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	cands, err := autotune.Tune(autotune.DefaultSpace(), autotune.Request{
		Model: m, InputLen: in, OutputLen: out, Objective: obj,
	})
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	if top < len(cands) {
		cands = cands[:top]
	}
	resp := make([]tuneResponse, len(cands))
	for i, c := range cands {
		resp[i] = tuneResponse{
			Config: c.Setup.Name(), Cores: c.Setup.Cores, Batch: c.Batch,
			TTFTMillis:      c.Result.Latency.TTFT * 1e3,
			TPOTMillis:      c.Result.Latency.TPOT * 1e3,
			E2ESeconds:      c.Result.Latency.E2E,
			TokensPerSecond: c.Result.Throughput.E2E,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

type modelInfo struct {
	Name      string  `json:"name"`
	Family    string  `json:"family"`
	Layers    int     `json:"layers"`
	DModel    int     `json:"d_model"`
	ParamsB   float64 `json:"params_billion"`
	BF16GB    float64 `json:"bf16_gb"`
	MaxSeqLen int     `json:"max_seq_len"`
}

func handleModels(w http.ResponseWriter, r *http.Request) {
	var out []modelInfo
	for _, m := range model.Evaluated() {
		out = append(out, modelInfo{
			Name: m.Name, Family: m.Family.String(),
			Layers: m.Layers, DModel: m.DModel,
			ParamsB:   float64(m.ParamCount()) / 1e9,
			BF16GB:    float64(m.WeightBytes(tensor.BF16)) / 1e9,
			MaxSeqLen: m.MaxSeq,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func handlePlatforms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, []string{"spr", "icl", "a100", "h100", "gh200"})
}

// simResponse is the JSON form of a simulation result.
type simResponse struct {
	Platform        string  `json:"platform"`
	Model           string  `json:"model"`
	Batch           int     `json:"batch"`
	InputLen        int     `json:"input_len"`
	OutputLen       int     `json:"output_len"`
	TTFTMillis      float64 `json:"ttft_ms"`
	TPOTMillis      float64 `json:"tpot_ms"`
	E2ESeconds      float64 `json:"e2e_s"`
	TokensPerSecond float64 `json:"tokens_per_second"`
	PCIeFraction    float64 `json:"pcie_fraction"`
	LLCMPKI         float64 `json:"llc_mpki,omitempty"`
	CoreUtilization float64 `json:"core_utilization,omitempty"`
}

func intParam(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("parameter %s: %w", name, err)
	}
	return v, nil
}

func handleSimulate(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	m, err := core.ModelByName(q.Get("model"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	batch, err := intParam(r, "batch", 1)
	if err == nil && batch < 1 {
		err = fmt.Errorf("batch must be positive")
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	in, err := intParam(r, "in", 128)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	out, err := intParam(r, "out", 32)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}

	var res core.Result
	switch q.Get("platform") {
	case "spr", "icl":
		setup := core.SPRQuadFlat(0)
		if q.Get("platform") == "icl" {
			setup = core.ICLBaseline()
		}
		if cores, err := intParam(r, "cores", setup.Cores); err == nil {
			setup.Cores = cores
		} else {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		switch q.Get("memmode") {
		case "", "flat":
		case "cache":
			setup.Mem = memsim.Cache
		case "hbm-only":
			setup.Mem = memsim.HBMOnly
		case "ddr":
			setup.Mem = memsim.DDROnly
		default:
			writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown memmode %q", q.Get("memmode")))
			return
		}
		switch q.Get("cluster") {
		case "", "quad":
		case "snc":
			setup.Cluster = memsim.SNC4
		default:
			writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown cluster %q", q.Get("cluster")))
			return
		}
		res, err = core.SimulateCPU(setup, m, batch, in, out)
	case "a100":
		res, err = core.SimulateGPU(core.A100(), m, batch, in, out)
	case "h100":
		res, err = core.SimulateGPU(core.H100(), m, batch, in, out)
	case "gh200":
		res, err = core.SimulateGPU(hw.GH200, m, batch, in, out)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown platform %q", q.Get("platform")))
		return
	}
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, simResponse{
		Platform: res.Platform, Model: res.Model,
		Batch: res.Batch, InputLen: res.InputLen, OutputLen: res.OutputLen,
		TTFTMillis: res.Latency.TTFT * 1e3, TPOTMillis: res.Latency.TPOT * 1e3,
		E2ESeconds: res.Latency.E2E, TokensPerSecond: res.Throughput.E2E,
		PCIeFraction:    res.PCIeFraction(),
		LLCMPKI:         res.Counters.LLCMPKI,
		CoreUtilization: res.Counters.CoreUtilization,
	})
}

func handleExperimentList(w http.ResponseWriter, r *http.Request) {
	type exp struct{ Key, Title string }
	var out []exp
	for _, e := range experiments.All() {
		out = append(out, exp{e.Key, e.Title})
	}
	writeJSON(w, http.StatusOK, out)
}

// tableJSON is the JSON form of an experiment table.
type tableJSON struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

func handleExperiment(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/v1/experiments/")
	e, err := experiments.ByKey(key)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	tabs, err := e.Run()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	out := make([]tableJSON, len(tabs))
	for i, t := range tabs {
		out[i] = tableJSON{ID: t.ID, Title: t.Title, Columns: t.Columns, Rows: t.Rows}
	}
	writeJSON(w, http.StatusOK, out)
}

func handleScorecard(w http.ResponseWriter, r *http.Request) {
	tab, err := experiments.RunScorecard()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, tableJSON{ID: tab.ID, Title: tab.Title,
		Columns: tab.Columns, Rows: tab.Rows})
}
