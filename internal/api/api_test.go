package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func get(t *testing.T, path string) (*http.Response, []byte) {
	t.Helper()
	srv := httptest.NewServer(NewHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf []byte
	buf = make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	for n > 0 && buf[n-1] == '\n' {
		n--
	}
	return resp, buf[:n]
}

func TestModelsEndpoint(t *testing.T) {
	resp, body := get(t, "/v1/models")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var models []map[string]any
	if err := json.Unmarshal(body, &models); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(models) != 8 {
		t.Errorf("got %d models, want 8", len(models))
	}
	if models[0]["name"] != "OPT-1.3B" {
		t.Errorf("first model %v", models[0]["name"])
	}
}

func TestPlatformsEndpoint(t *testing.T) {
	resp, body := get(t, "/v1/platforms")
	if resp.StatusCode != http.StatusOK {
		t.Fatal(resp.StatusCode)
	}
	var ps []string
	if err := json.Unmarshal(body, &ps); err != nil || len(ps) != 5 {
		t.Fatalf("platforms: %v %s", err, body)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	resp, body := get(t, "/v1/simulate?platform=spr&model=OPT-30B&batch=4")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res map[string]any
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res["tokens_per_second"].(float64) <= 0 {
		t.Error("degenerate throughput")
	}
	if res["llc_mpki"].(float64) <= 0 {
		t.Error("CPU run must include counters")
	}
	// Offloaded GPU run reports a PCIe fraction.
	resp, body = get(t, "/v1/simulate?platform=a100&model=OPT-30B")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res["pcie_fraction"].(float64) < 0.5 {
		t.Errorf("offloaded PCIe fraction %v", res["pcie_fraction"])
	}
}

func TestSimulateWithConfig(t *testing.T) {
	resp, _ := get(t, "/v1/simulate?platform=spr&model=LLaMA2-13B&cores=12&memmode=cache&cluster=snc")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestSimulateErrors(t *testing.T) {
	cases := []struct {
		path string
		want int
	}{
		{"/v1/simulate?platform=tpu&model=OPT-13B", http.StatusBadRequest},
		{"/v1/simulate?platform=spr&model=GPT-5", http.StatusBadRequest},
		{"/v1/simulate?platform=spr&model=OPT-13B&batch=zero", http.StatusBadRequest},
		{"/v1/simulate?platform=spr&model=OPT-13B&batch=-1", http.StatusBadRequest},
		{"/v1/simulate?platform=spr&model=OPT-13B&memmode=weird", http.StatusBadRequest},
		{"/v1/simulate?platform=spr&model=OPT-13B&cluster=weird", http.StatusBadRequest},
		{"/v1/simulate?platform=spr&model=OPT-13B&in=bad", http.StatusBadRequest},
		{"/v1/simulate?platform=spr&model=OPT-13B&out=bad", http.StatusBadRequest},
		{"/v1/simulate?platform=spr&model=OPT-13B&cores=bad", http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := get(t, c.path)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d want %d (%s)", c.path, resp.StatusCode, c.want, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body malformed: %s", c.path, body)
		}
	}
}

func TestExperimentEndpoints(t *testing.T) {
	resp, body := get(t, "/v1/experiments")
	if resp.StatusCode != http.StatusOK {
		t.Fatal(resp.StatusCode)
	}
	var list []map[string]string
	if err := json.Unmarshal(body, &list); err != nil || len(list) < 20 {
		t.Fatalf("experiment list: %v (%d)", err, len(list))
	}
	resp, body = get(t, "/v1/experiments/fig18")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fig18 status %d", resp.StatusCode)
	}
	var tabs []map[string]any
	if err := json.Unmarshal(body, &tabs); err != nil || len(tabs) != 1 {
		t.Fatalf("fig18 body: %v %s", err, body)
	}
	resp, _ = get(t, "/v1/experiments/fig99")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown experiment status %d", resp.StatusCode)
	}
}

func TestAutotuneEndpoint(t *testing.T) {
	resp, body := get(t, "/v1/autotune?model=LLaMA2-13B&objective=throughput&top=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cands []map[string]any
	if err := json.Unmarshal(body, &cands); err != nil || len(cands) != 3 {
		t.Fatalf("autotune body: %v %s", err, body)
	}
	if cands[0]["config"] != "quad_flat" {
		t.Errorf("best config %v, want quad_flat", cands[0]["config"])
	}
	if cands[0]["batch"].(float64) != 32 {
		t.Errorf("throughput objective should pick batch 32, got %v", cands[0]["batch"])
	}
	resp, _ = get(t, "/v1/autotune?model=nope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad model status %d", resp.StatusCode)
	}
	resp, _ = get(t, "/v1/autotune?model=OPT-13B&objective=weird")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad objective status %d", resp.StatusCode)
	}
}

func TestScorecardEndpoint(t *testing.T) {
	resp, body := get(t, "/v1/scorecard")
	if resp.StatusCode != http.StatusOK {
		t.Fatal(resp.StatusCode)
	}
	var tab map[string]any
	if err := json.Unmarshal(body, &tab); err != nil {
		t.Fatal(err)
	}
	rows := tab["rows"].([]any)
	if len(rows) < 13 {
		t.Errorf("scorecard has %d rows", len(rows))
	}
	for _, r := range rows {
		cells := r.([]any)
		if cells[len(cells)-1] != "PASS" {
			t.Errorf("claim %v did not pass", cells[0])
		}
	}
}
