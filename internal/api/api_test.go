package api

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// do issues one request against a fresh server.
func do(t *testing.T, method, path string, body string) (*http.Response, []byte) {
	t.Helper()
	srv := httptest.NewServer(NewHandler())
	defer srv.Close()
	return doOn(t, srv, method, path, body)
}

func doOn(t *testing.T, srv *httptest.Server, method, path, body string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, buf
}

// get is the GET shorthand.
func get(t *testing.T, path string) (*http.Response, []byte) {
	t.Helper()
	return do(t, http.MethodGet, path, "")
}

// errEnvelope decodes the uniform error body and fails on malformed ones.
func errEnvelope(t *testing.T, body []byte) (code, message string) {
	t.Helper()
	var e struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code == "" || e.Error.Message == "" {
		t.Fatalf("malformed error envelope: %v %s", err, body)
	}
	return e.Error.Code, e.Error.Message
}

func TestIndexEndpoint(t *testing.T) {
	resp, body := get(t, "/v1/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var idx struct {
		Endpoints []map[string]string `json:"endpoints"`
	}
	if err := json.Unmarshal(body, &idx); err != nil || len(idx.Endpoints) < 10 {
		t.Fatalf("index: %v (%d entries)\n%s", err, len(idx.Endpoints), body)
	}
}

func TestModelsEndpoint(t *testing.T) {
	resp, body := get(t, "/v1/models")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var models []map[string]any
	if err := json.Unmarshal(body, &models); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(models) != 8 {
		t.Errorf("got %d models, want 8", len(models))
	}
	if models[0]["name"] != "OPT-1.3B" {
		t.Errorf("first model %v", models[0]["name"])
	}
}

func TestPlatformsFromRegistry(t *testing.T) {
	resp, body := get(t, "/v1/platforms")
	if resp.StatusCode != http.StatusOK {
		t.Fatal(resp.StatusCode)
	}
	var ps []struct {
		Key, Kind, Name, Description string
	}
	if err := json.Unmarshal(body, &ps); err != nil || len(ps) != 5 {
		t.Fatalf("platforms: %v %s", err, body)
	}
	kinds := map[string]int{}
	for _, p := range ps {
		if p.Key == "" || p.Name == "" || p.Description == "" {
			t.Errorf("incomplete entry %+v", p)
		}
		kinds[p.Kind]++
	}
	if kinds["cpu"] != 2 || kinds["gpu"] != 3 {
		t.Errorf("kind split %v, want 2 cpu + 3 gpu", kinds)
	}
}

func TestSimulateGET(t *testing.T) {
	resp, body := get(t, "/v1/simulate?platform=spr&model=OPT-30B&batch=4")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res map[string]any
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res["tokens_per_second"].(float64) <= 0 {
		t.Error("degenerate throughput")
	}
	if res["llc_mpki"].(float64) <= 0 {
		t.Error("CPU run must include counters")
	}
	resp, body = get(t, "/v1/simulate?platform=a100&model=OPT-30B")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res["pcie_fraction"].(float64) < 0.5 {
		t.Errorf("offloaded PCIe fraction %v", res["pcie_fraction"])
	}
}

func TestSimulatePOSTMatchesGET(t *testing.T) {
	srv := httptest.NewServer(NewHandler())
	defer srv.Close()
	_, getBody := doOn(t, srv, http.MethodGet,
		"/v1/simulate?platform=spr&model=LLaMA2-13B&batch=4&in=256&out=64&cores=32&memmode=cache&cluster=snc", "")
	resp, postBody := doOn(t, srv, http.MethodPost, "/v1/simulate",
		`{"platform":"spr","model":"LLaMA2-13B","batch":4,"in":256,"out":64,"cores":32,"memmode":"cache","cluster":"snc"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status %d: %s", resp.StatusCode, postBody)
	}
	if string(getBody) != string(postBody) {
		t.Errorf("GET/POST mismatch:\n%s\n%s", getBody, postBody)
	}
}

func TestSimulateValidation(t *testing.T) {
	srv := httptest.NewServer(NewHandler())
	defer srv.Close()
	cases := []struct {
		method, path, body string
		want               int
		code               string
	}{
		{"GET", "/v1/simulate?platform=tpu&model=OPT-13B", "", 400, "bad_request"},
		{"GET", "/v1/simulate?platform=spr&model=GPT-5", "", 400, "bad_request"},
		{"GET", "/v1/simulate?platform=spr&model=OPT-13B&batch=zero", "", 400, "bad_request"},
		{"GET", "/v1/simulate?platform=spr&model=OPT-13B&batch=-1", "", 400, "bad_request"},
		{"GET", "/v1/simulate?platform=spr&model=OPT-13B&in=-5", "", 400, "bad_request"},
		{"GET", "/v1/simulate?platform=spr&model=OPT-13B&out=-1", "", 400, "bad_request"},
		{"GET", "/v1/simulate?platform=spr&model=OPT-13B&cores=-4", "", 400, "bad_request"},
		{"GET", "/v1/simulate?platform=spr&model=OPT-13B&cores=0", "", 400, "bad_request"},
		{"GET", "/v1/simulate?platform=spr&model=OPT-13B&memmode=weird", "", 400, "bad_request"},
		{"GET", "/v1/simulate?platform=spr&model=OPT-13B&cluster=weird", "", 400, "bad_request"},
		{"GET", "/v1/simulate?platform=a100&model=OPT-13B&cores=8", "", 400, "bad_request"},
		{"POST", "/v1/simulate", `{"platform":"spr","model":"OPT-13B","batch":-2}`, 400, "bad_request"},
		{"POST", "/v1/simulate", `{"platform":"spr","model":"OPT-13B","bogus":1}`, 400, "bad_request"},
		{"POST", "/v1/simulate", `not json`, 400, "bad_request"},
	}
	for _, c := range cases {
		resp, body := doOn(t, srv, c.method, c.path, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: status %d want %d (%s)", c.method, c.path, resp.StatusCode, c.want, body)
			continue
		}
		if code, _ := errEnvelope(t, body); code != c.code {
			t.Errorf("%s %s: code %q want %q", c.method, c.path, code, c.code)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv := httptest.NewServer(NewHandler())
	defer srv.Close()
	cases := []struct{ method, path string }{
		{"POST", "/v1/models"},
		{"DELETE", "/v1/simulate"},
		{"GET", "/v1/generate"},
		{"PUT", "/v1/scorecard"},
	}
	for _, c := range cases {
		resp, body := doOn(t, srv, c.method, c.path, "")
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d want 405", c.method, c.path, resp.StatusCode)
			continue
		}
		if code, _ := errEnvelope(t, body); code != CodeMethodNotAllowed {
			t.Errorf("%s %s: code %q", c.method, c.path, code)
		}
		if resp.Header.Get("Allow") == "" {
			t.Errorf("%s %s: missing Allow header", c.method, c.path)
		}
	}
}

func TestUnknownPath404(t *testing.T) {
	resp, body := get(t, "/v2/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if code, _ := errEnvelope(t, body); code != CodeNotFound {
		t.Errorf("code %q", code)
	}
}

func TestExperimentEndpoints(t *testing.T) {
	srv := httptest.NewServer(NewHandler())
	defer srv.Close()
	resp, body := doOn(t, srv, "GET", "/v1/experiments", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatal(resp.StatusCode)
	}
	var list []map[string]string
	if err := json.Unmarshal(body, &list); err != nil || len(list) < 20 {
		t.Fatalf("experiment list: %v (%d)", err, len(list))
	}
	resp, body = doOn(t, srv, "GET", "/v1/experiments/fig18", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fig18 status %d", resp.StatusCode)
	}
	var tabs []map[string]any
	if err := json.Unmarshal(body, &tabs); err != nil || len(tabs) != 1 {
		t.Fatalf("fig18 body: %v %s", err, body)
	}
	resp, body = doOn(t, srv, "GET", "/v1/experiments/fig99", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown experiment status %d", resp.StatusCode)
	}
	if code, _ := errEnvelope(t, body); code != CodeNotFound {
		t.Errorf("code %q", code)
	}
}

func TestAutotuneGETAndPOST(t *testing.T) {
	srv := httptest.NewServer(NewHandler())
	defer srv.Close()
	resp, body := doOn(t, srv, "GET", "/v1/autotune?model=LLaMA2-13B&objective=throughput&top=3", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cands []map[string]any
	if err := json.Unmarshal(body, &cands); err != nil || len(cands) != 3 {
		t.Fatalf("autotune body: %v %s", err, body)
	}
	if cands[0]["config"] != "quad_flat" {
		t.Errorf("best config %v, want quad_flat", cands[0]["config"])
	}
	if cands[0]["batch"].(float64) != 32 {
		t.Errorf("throughput objective should pick batch 32, got %v", cands[0]["batch"])
	}
	resp, postBody := doOn(t, srv, "POST", "/v1/autotune",
		`{"model":"LLaMA2-13B","objective":"throughput","top":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status %d: %s", resp.StatusCode, postBody)
	}
	if string(postBody) != string(body) {
		t.Error("autotune GET/POST mismatch")
	}
	resp, body = doOn(t, srv, "GET", "/v1/autotune?model=nope", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad model status %d", resp.StatusCode)
	}
	errEnvelope(t, body)
	resp, _ = doOn(t, srv, "GET", "/v1/autotune?model=OPT-13B&objective=weird", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad objective status %d", resp.StatusCode)
	}
	resp, _ = doOn(t, srv, "GET", "/v1/autotune?model=OPT-13B&top=-1", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative top status %d", resp.StatusCode)
	}
}

func TestScorecardEndpoint(t *testing.T) {
	resp, body := get(t, "/v1/scorecard")
	if resp.StatusCode != http.StatusOK {
		t.Fatal(resp.StatusCode)
	}
	var tab map[string]any
	if err := json.Unmarshal(body, &tab); err != nil {
		t.Fatal(err)
	}
	rows := tab["rows"].([]any)
	if len(rows) < 13 {
		t.Errorf("scorecard has %d rows", len(rows))
	}
	for _, r := range rows {
		cells := r.([]any)
		if cells[len(cells)-1] != "PASS" {
			t.Errorf("claim %v did not pass", cells[0])
		}
	}
}

func TestGenerateEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewHandler())
	defer srv.Close()
	resp, body := doOn(t, srv, "POST", "/v1/generate",
		`{"platform":"spr","model":"OPT-13B","in":128,"out":8}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res map[string]any
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res["ttft_s"].(float64) <= 0 || res["e2e_s"].(float64) <= 0 {
		t.Errorf("degenerate generate result: %s", body)
	}
	// Validation errors. Unknown platform and model names are "no such
	// resource" (404); malformed field values are 400.
	for _, bad := range []struct {
		body string
		want int
	}{
		{`{"platform":"tpu","model":"OPT-13B"}`, http.StatusNotFound},
		{`{"platform":"spr","model":"GPT-5"}`, http.StatusNotFound},
		{`{"platform":"tiny-weird"}`, http.StatusNotFound},
		{`{"platform":"spr","model":"OPT-13B","in":-1}`, http.StatusBadRequest},
		{`{"platform":"a100","model":"OPT-13B","cores":4}`, http.StatusBadRequest},
	} {
		resp, body := doOn(t, srv, "POST", "/v1/generate", bad.body)
		if resp.StatusCode != bad.want {
			t.Errorf("%s: status %d want %d (%s)", bad.body, resp.StatusCode, bad.want, body)
			continue
		}
		errEnvelope(t, body)
	}
}

func TestGenerateOnRealEngine(t *testing.T) {
	srv := httptest.NewServer(NewHandler())
	defer srv.Close()
	resp, body := doOn(t, srv, "POST", "/v1/generate",
		`{"platform":"tiny-opt","in":16,"out":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res map[string]any
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res["ttft_s"].(float64) <= 0 {
		t.Errorf("engine-backed TTFT %v", res["ttft_s"])
	}
}

func TestHealthReadyMetrics(t *testing.T) {
	srv := httptest.NewServer(NewHandler())
	defer srv.Close()
	resp, _ := doOn(t, srv, "GET", "/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz %d", resp.StatusCode)
	}
	resp, _ = doOn(t, srv, "GET", "/readyz", "")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("readyz %d", resp.StatusCode)
	}
	// Drive one request so histograms are non-empty, then scrape.
	if resp, body := doOn(t, srv, "POST", "/v1/generate",
		`{"platform":"spr","model":"OPT-13B","in":64,"out":4}`); resp.StatusCode != 200 {
		t.Fatalf("generate: %d %s", resp.StatusCode, body)
	}
	resp, body := doOn(t, srv, "GET", "/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics %d", resp.StatusCode)
	}
	out := string(body)
	for _, want := range []string{
		"gateway_completed_total 1",
		"gateway_ttft_seconds_count 1",
		"gateway_queue_depth",
		"api_http_requests_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestContentTypeAndEnvelopeShape(t *testing.T) {
	resp, body := get(t, "/v1/simulate?platform=spr&model=GPT-5")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("error content-type %q", ct)
	}
	code, msg := errEnvelope(t, body)
	if code != CodeBadRequest || msg == "" {
		t.Errorf("envelope %q %q", code, msg)
	}
}
