package api

// backend.go abstracts what the HTTP surface serves through: a single
// batching gateway (the historical shape) or a fault-tolerant cluster
// router fronting N gateway replicas (internal/cluster). Both satisfy
// Backend structurally, so every endpoint — generation, streaming,
// traces, metrics, faults, readiness — behaves identically regardless
// of topology, and llmperfd switches between them with a flag.

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/gateway"
	"repro/internal/govern"
	"repro/internal/metrics"
	"repro/internal/overload"
	"repro/internal/trace"
)

// Backend is the serving surface the API binds to. *gateway.Gateway
// implements it directly; *cluster.Router implements it by routing over
// its replicas with health-aware failover.
type Backend interface {
	// Generate serves one generation request (optionally streaming
	// through req.Sink) and Do runs one unary job.
	Generate(ctx context.Context, req gateway.Request) (gateway.Result, error)
	Do(ctx context.Context, fn func(context.Context) error) error

	// Observability and control surfaces.
	Registry() *metrics.Registry
	Tracer() *trace.Tracer
	Logger() *slog.Logger
	Injector() *faults.Injector
	// Governor returns the backend's KV governor; a cluster returns nil
	// (its governance is per replica, reported by GET /v1/cluster).
	Governor() *govern.Governor

	// Lifecycle and backpressure.
	Draining() bool
	MemoryPressure() bool
	RetryAfterSeconds() int
	Shutdown(ctx context.Context) error

	// Overload control (internal/overload). Saturated reports sustained
	// admission-queue saturation (readiness flips alongside KV pressure);
	// BrownoutLevel is the degradation ladder's current rung (0 nominal,
	// also the X-Brownout-Level response header); OverloadStatus is the
	// GET /v1/overload snapshot (zero Status when the feature is off).
	Saturated() bool
	BrownoutLevel() int
	OverloadStatus() overload.Status
}

// compile-time conformance of both topologies.
var (
	_ Backend = (*gateway.Gateway)(nil)
	_ Backend = (*cluster.Router)(nil)
)

// handleCluster serves the router's replica/health/failover snapshot.
// Under a single-gateway backend the endpoint reports the topology
// disabled (404), matching how /v1/kv reports a missing governor.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	cr, ok := s.gw.(*cluster.Router)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Errorf("not running in cluster mode (llmperfd -replicas N with N > 1)"))
		return
	}
	writeJSON(w, http.StatusOK, cr.Snapshot())
}
