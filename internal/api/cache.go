package api

// cache.go serves the prefix-cache observability and control surface:
//
//	GET  /v1/cache             tree sizes, hit rates, retained blocks per lane
//	POST /v1/admin/cache/flush drop every unpinned cache entry
//
// GET /v1/cache supersedes the cache-related ambitions of GET /v1/kv:
// the KV endpoint keeps reporting pool governance (blocks, watermarks,
// quotas) and each lane's embedded cache summary, while this endpoint is
// the authoritative cache view with cluster-wide aggregation.

import (
	"fmt"
	"net/http"

	"repro/internal/cluster"
	"repro/internal/gateway"
	"repro/internal/govern"
)

// cacheBackend is the slice of the serving backend the cache endpoints
// need. Both topologies implement it: a gateway delegates to its
// governor, a cluster router aggregates across replicas.
type cacheBackend interface {
	CacheSnapshot() govern.CacheStatus
	FlushCache() int
}

var (
	_ cacheBackend = (*gateway.Gateway)(nil)
	_ cacheBackend = (*cluster.Router)(nil)
)

// errCacheDisabled is the uniform 404 detail when prefix caching is off,
// matching how /v1/kv reports a missing governor.
var errCacheDisabled = fmt.Errorf("prefix caching disabled (llmperfd -kv-cache=false, or no KV governor configured)")

// handleCache serves the prefix-cache snapshot.
func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	cb, ok := s.gw.(cacheBackend)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, errCacheDisabled)
		return
	}
	st := cb.CacheSnapshot()
	if !st.Enabled {
		writeError(w, http.StatusNotFound, CodeNotFound, errCacheDisabled)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleCacheFlush drops every unpinned cache entry (operator surface:
// before an A/B measurement, or to reclaim blocks ahead of a burst).
// Pinned paths survive and in-flight forks keep their blocks — flushing
// is always safe, never a correctness event.
func (s *Server) handleCacheFlush(w http.ResponseWriter, r *http.Request) {
	cb, ok := s.gw.(cacheBackend)
	if !ok || !cb.CacheSnapshot().Enabled {
		writeError(w, http.StatusNotFound, CodeNotFound, errCacheDisabled)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"blocks_released": cb.FlushCache()})
}
