package api

// cache_test.go covers the prefix-cache surface of the v1 API: the
// cached_tokens accounting and X-Prefix-Cache header on /v1/generate,
// the in-band prefix_cache field on the terminal SSE event, cached token
// counts in OpenAI-compatible usage (prompt_tokens_details), the
// per-request cache opt-out and min_prefix_tokens knobs with their typed
// 400, and the GET /v1/cache + POST /v1/admin/cache/flush endpoints.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/gateway"
	"repro/internal/govern"
)

// cachedServer is governedServer with the radix prefix cache enabled.
func cachedServer(t *testing.T, blocks int) (*govern.Governor, *httptest.Server) {
	t.Helper()
	return governedServer(t, blocks, func(c *govern.Config) { c.EnableCache = true })
}

// genResult is the subset of the buffered /v1/generate response the
// cache tests care about.
type genResult struct {
	CachedTokens        int     `json:"cached_tokens"`
	PrefillSavedSeconds float64 `json:"prefill_saved_s"`
}

func postGenerate(t *testing.T, srv *httptest.Server, body string) (*http.Response, genResult) {
	t.Helper()
	resp, raw := doOn(t, srv, http.MethodPost, "/v1/generate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate status %d: %s", resp.StatusCode, raw)
	}
	var res genResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	return resp, res
}

const sharedPromptBody = `{"platform":"spr","model":"OPT-13B","in":80,"out":4,
	"prefix_group":"sess","prefix_tokens":64}`

func TestGenerateCachedTokensAndHeader(t *testing.T) {
	_, srv := cachedServer(t, 64)

	resp, res := postGenerate(t, srv, sharedPromptBody)
	if res.CachedTokens != 0 {
		t.Errorf("cold request cached %d tokens, want 0", res.CachedTokens)
	}
	if h := resp.Header.Get("X-Prefix-Cache"); h != "miss" {
		t.Errorf("cold X-Prefix-Cache %q, want %q", h, "miss")
	}

	// The same shared prefix again: its 64 tokens (4 whole 16-token
	// blocks) come from the cache and the response says so in both the
	// body and the header.
	resp, res = postGenerate(t, srv, sharedPromptBody)
	if res.CachedTokens != 64 {
		t.Errorf("warm request cached %d tokens, want 64", res.CachedTokens)
	}
	// stubCost prices prefill at a flat rate, so the modeled savings are
	// zero here; cmd/llmperf's A/B demo covers the real cost model.
	if res.PrefillSavedSeconds < 0 {
		t.Errorf("warm request saved %v prefill seconds, want >= 0", res.PrefillSavedSeconds)
	}
	if h := resp.Header.Get("X-Prefix-Cache"); h != "hit;tokens=64" {
		t.Errorf("warm X-Prefix-Cache %q, want %q", h, "hit;tokens=64")
	}
}

func TestCacheOptOutPerRequest(t *testing.T) {
	_, srv := cachedServer(t, 64)
	postGenerate(t, srv, sharedPromptBody)

	resp, res := postGenerate(t, srv, `{"platform":"spr","model":"OPT-13B","in":80,"out":4,
		"prefix_group":"sess","prefix_tokens":64,"cache":{"enabled":false}}`)
	if res.CachedTokens != 0 {
		t.Errorf("opted-out request cached %d tokens, want 0", res.CachedTokens)
	}
	if h := resp.Header.Get("X-Prefix-Cache"); h != "miss" {
		t.Errorf("opted-out X-Prefix-Cache %q, want %q", h, "miss")
	}
}

func TestMinPrefixTokensIgnoresShortMatch(t *testing.T) {
	_, srv := cachedServer(t, 64)
	postGenerate(t, srv, sharedPromptBody)

	// The cached prefix is 64 tokens; demanding at least 128 makes the
	// lookup not worth adopting, so the request prefills cold.
	resp, res := postGenerate(t, srv, `{"platform":"spr","model":"OPT-13B","in":80,"out":4,
		"prefix_group":"sess","prefix_tokens":64,"cache":{"min_prefix_tokens":128}}`)
	if res.CachedTokens != 0 {
		t.Errorf("short match adopted anyway: cached %d tokens", res.CachedTokens)
	}
	if h := resp.Header.Get("X-Prefix-Cache"); h != "miss" {
		t.Errorf("X-Prefix-Cache %q, want %q", h, "miss")
	}
}

func TestInvalidCacheParam400(t *testing.T) {
	_, srv := cachedServer(t, 64)
	for _, body := range []string{
		`{"platform":"spr","model":"OPT-13B","in":32,"out":4,"cache":{"bogus":true}}`,
		`{"platform":"spr","model":"OPT-13B","in":32,"out":4,"cache":{"min_prefix_tokens":-1}}`,
		`{"platform":"spr","model":"OPT-13B","in":32,"out":4,"cache":"yes"}`,
	} {
		resp, raw := doOn(t, srv, http.MethodPost, "/v1/generate", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", body, resp.StatusCode)
			continue
		}
		if code, _ := errEnvelope(t, raw); code != CodeInvalidCacheParam {
			t.Errorf("%s: code %q, want %q", body, code, CodeInvalidCacheParam)
		}
	}
}

func TestSSETerminalEventReportsPrefixCache(t *testing.T) {
	_, srv := cachedServer(t, 64)
	prefixCacheOf := func() string {
		resp := postAccept(t, srv, "/v1/generate",
			`{"platform":"spr","model":"OPT-13B","in":80,"out":3,"stream":true,
			  "prefix_group":"sse","prefix_tokens":64}`, "text/event-stream")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream status %d", resp.StatusCode)
		}
		chunks, done := readSSE(t, resp)
		if !done || len(chunks) == 0 {
			t.Fatalf("incomplete stream: %d chunks, done=%v", len(chunks), done)
		}
		var terminal struct {
			Object      string `json:"object"`
			PrefixCache string `json:"prefix_cache"`
		}
		if err := json.Unmarshal(chunks[len(chunks)-1], &terminal); err != nil {
			t.Fatal(err)
		}
		if terminal.Object != "generate.result" {
			t.Fatalf("last chunk is %q, want generate.result", terminal.Object)
		}
		return terminal.PrefixCache
	}
	if got := prefixCacheOf(); got != "miss" {
		t.Errorf("cold stream prefix_cache %q, want %q", got, "miss")
	}
	if got := prefixCacheOf(); got != "hit;tokens=64" {
		t.Errorf("warm stream prefix_cache %q, want %q", got, "hit;tokens=64")
	}
}

func TestOpenAIUsageCachedTokens(t *testing.T) {
	_, srv := cachedServer(t, 64)
	body := `{"model":"OPT-13B","messages":[
		{"role":"system","content":"You are a careful assistant. Answer briefly and cite the manual when unsure about hardware counters."},
		{"role":"user","content":"How many memory channels does Sapphire Rapids have per socket?"}]}`

	usageOf := func() (int, *int) {
		resp, raw := doOn(t, srv, http.MethodPost, "/v1/chat/completions", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("chat status %d: %s", resp.StatusCode, raw)
		}
		var cc struct {
			Usage struct {
				CachedTokens        int `json:"cached_tokens"`
				PromptTokensDetails *struct {
					CachedTokens int `json:"cached_tokens"`
				} `json:"prompt_tokens_details"`
			} `json:"usage"`
		}
		if err := json.Unmarshal(raw, &cc); err != nil {
			t.Fatal(err)
		}
		if cc.Usage.PromptTokensDetails == nil {
			return cc.Usage.CachedTokens, nil
		}
		return cc.Usage.CachedTokens, &cc.Usage.PromptTokensDetails.CachedTokens
	}

	if cached, details := usageOf(); cached != 0 || details != nil {
		t.Errorf("cold chat: cached_tokens=%d details=%v, want 0 and absent", cached, details)
	}
	cached, details := usageOf()
	if cached <= 0 {
		t.Errorf("warm chat cached %d tokens, want > 0", cached)
	}
	if details == nil || *details != cached {
		t.Errorf("prompt_tokens_details %v, want %d", details, cached)
	}
}

func TestCacheStatusAndFlushEndpoints(t *testing.T) {
	_, srv := cachedServer(t, 64)
	postGenerate(t, srv, sharedPromptBody)
	postGenerate(t, srv, sharedPromptBody) // the hit

	resp, raw := doOn(t, srv, http.MethodGet, "/v1/cache", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/cache status %d: %s", resp.StatusCode, raw)
	}
	var st govern.CacheStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.Hits < 1 || st.RetainedBlocks == 0 || len(st.Lanes) != 1 {
		t.Errorf("cache status after a hit: %s", raw)
	}

	resp, raw = doOn(t, srv, http.MethodPost, "/v1/admin/cache/flush", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush status %d: %s", resp.StatusCode, raw)
	}
	var fl struct {
		BlocksReleased int `json:"blocks_released"`
	}
	if err := json.Unmarshal(raw, &fl); err != nil {
		t.Fatal(err)
	}
	if fl.BlocksReleased == 0 {
		t.Error("flush released no blocks despite retained prefixes")
	}

	resp, raw = doOn(t, srv, http.MethodGet, "/v1/cache", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/cache after flush: %d", resp.StatusCode)
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.RetainedBlocks != 0 {
		t.Errorf("flush left %d retained blocks", st.RetainedBlocks)
	}
}

func TestCacheEndpoints404WhenDisabled(t *testing.T) {
	// No governor at all.
	gw := gateway.New(gateway.Config{}, stubResolver(stubCost{}))
	bare := httptest.NewServer(NewServer(gw).Handler())
	defer bare.Close()
	// Governor present but caching off.
	_, governed := governedServer(t, 16, nil)

	for _, srv := range []*httptest.Server{bare, governed} {
		resp, raw := doOn(t, srv, http.MethodGet, "/v1/cache", "")
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET /v1/cache status %d, want 404: %s", resp.StatusCode, raw)
		}
		if code, _ := errEnvelope(t, raw); code != CodeNotFound {
			t.Errorf("GET /v1/cache code %q, want %q", code, CodeNotFound)
		}
		resp, raw = doOn(t, srv, http.MethodPost, "/v1/admin/cache/flush", "")
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("flush status %d, want 404: %s", resp.StatusCode, raw)
		}
	}
}
