package api

// cluster_api_test.go covers the HTTP surface added with cluster mode:
// deadline propagation (X-Request-Deadline in, typed 504 out), replica
// attribution headers on buffered responses, and the /v1/cluster status
// endpoint in both single and cluster topologies.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/gateway"
)

// clusterServer spins up an N-replica router behind the API.
func clusterServer(t *testing.T, n int) (*httptest.Server, *cluster.Router) {
	t.Helper()
	r, err := cluster.New(cluster.Config{
		Replicas: n,
		Factory: func(id string) (*gateway.Gateway, error) {
			return gateway.New(gateway.Config{}, stubResolver(stubCost{})), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = r.Shutdown(ctx)
	})
	srv := httptest.NewServer(NewServer(r).Handler())
	t.Cleanup(srv.Close)
	return srv, r
}

func TestDeadlineHeaderEnforced(t *testing.T) {
	// Timescale 1 with slowCost makes a 4-token request take ~20ms wall,
	// far past a 5ms deadline.
	gw := gateway.New(gateway.Config{Timescale: 1}, stubResolver(slowCost{}))
	srv := httptest.NewServer(NewServer(gw).Handler())
	t.Cleanup(srv.Close)

	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/generate",
		strings.NewReader(`{"platform":"spr","model":"OPT-13B","out":4}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Deadline", "5ms")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeDeadlineExceeded {
		t.Fatalf("error code = %q, want %q", env.Error.Code, CodeDeadlineExceeded)
	}
}

func TestDeadlineHeaderForms(t *testing.T) {
	gw := gateway.New(gateway.Config{}, stubResolver(stubCost{}))
	srv := httptest.NewServer(NewServer(gw).Handler())
	t.Cleanup(srv.Close)

	tests := []struct {
		name, deadline string
		status         int
	}{
		{"duration form, generous", "5s", http.StatusOK},
		{"bare milliseconds", "5000", http.StatusOK},
		{"garbage", "soon", http.StatusBadRequest},
		{"negative", "-3s", http.StatusBadRequest},
		{"zero", "0", http.StatusBadRequest},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/generate",
				strings.NewReader(`{"platform":"spr","model":"OPT-13B","out":2}`))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("X-Request-Deadline", tt.deadline)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tt.status {
				t.Fatalf("deadline %q: status = %d, want %d", tt.deadline, resp.StatusCode, tt.status)
			}
			if tt.status == http.StatusBadRequest {
				var env struct {
					Error struct {
						Code string `json:"code"`
					} `json:"error"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&env); err != nil ||
					env.Error.Code != CodeInvalidDeadline {
					t.Fatalf("error code = %q (err %v), want %q", env.Error.Code, err, CodeInvalidDeadline)
				}
			}
		})
	}
}

func TestClusterReplicaAttributionHeaders(t *testing.T) {
	srv, _ := clusterServer(t, 3)
	seen := map[string]bool{}
	for i := 0; i < 6; i++ {
		resp, body := doOn(t, srv, http.MethodPost, "/v1/generate",
			`{"platform":"spr","model":"OPT-13B","out":2}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		id := resp.Header.Get("X-Replica-ID")
		if id == "" {
			t.Fatal("200 from cluster mode without X-Replica-ID")
		}
		if resp.Header.Get("X-Failovers") == "" {
			t.Fatal("200 from cluster mode without X-Failovers")
		}
		seen[id] = true
	}
	if len(seen) < 2 {
		t.Fatalf("round-robin over 3 replicas answered only from %v", seen)
	}
}

func TestClusterStatusEndpoint(t *testing.T) {
	srv, _ := clusterServer(t, 2)
	resp, body := doOn(t, srv, http.MethodGet, "/v1/cluster", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var st cluster.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decoding status: %v from %s", err, body)
	}
	if len(st.Replicas) != 2 || st.Healthy != 2 {
		t.Fatalf("status = %+v, want 2 healthy replicas", st)
	}
	if st.Policy == "" {
		t.Fatal("status without a routing policy name")
	}
}

func TestClusterStatusNotFoundInSingleMode(t *testing.T) {
	gw := gateway.New(gateway.Config{}, stubResolver(stubCost{}))
	srv := httptest.NewServer(NewServer(gw).Handler())
	t.Cleanup(srv.Close)
	resp, body := doOn(t, srv, http.MethodGet, "/v1/cluster", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("single-mode /v1/cluster status = %d (%s), want 404", resp.StatusCode, body)
	}
}
