package api

// errors.go defines the service's uniform error envelope: every failure,
// from any handler, renders as
//
//	{"error":{"code":"bad_request","message":"..."}}
//
// so clients switch on a stable machine-readable code and log the human
// message.

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand/v2"
	"net/http"
	"strconv"

	"repro/internal/cluster"
	"repro/internal/gateway"
	"repro/internal/govern"
)

// Error codes used across the v1 API.
const (
	CodeBadRequest       = "bad_request"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeQueueFull        = "queue_full"
	CodeDraining         = "draining"
	CodeCanceled         = "canceled"
	CodeUnprocessable    = "unprocessable"
	CodeInternal         = "internal"
	// CodeUnavailable is a transient server-side failure — a quarantined
	// lane, an open breaker with no fallback, or a watchdog-cancelled
	// batch that exhausted its requeues. Retry later.
	CodeUnavailable = "unavailable"
	// CodeLanePanic marks a request failed by a recovered lane-worker
	// panic; the lane restarts, so a retry is expected to succeed.
	CodeLanePanic = "lane_panic"
	// CodeUnsupportedMedia rejects POST bodies whose Content-Type is not
	// application/json (HTTP 415).
	CodeUnsupportedMedia = "unsupported_media_type"
	// CodeMemoryPressure sheds a request because its lane's KV pool is
	// above the high watermark, or because the pool stayed exhausted
	// through the request's whole requeue budget (HTTP 503 +
	// Retry-After); /readyz reports not-ready while shedding.
	CodeMemoryPressure = "memory_pressure"
	// CodeQuotaExceeded rejects a request that would push its client over
	// the per-client in-flight KV token quota (HTTP 429 + Retry-After).
	CodeQuotaExceeded = "quota_exceeded"
	// CodeInvalidStreamParam rejects malformed streaming options (HTTP
	// 400): unparseable stream_options, unknown option fields, or
	// stream_options supplied without "stream": true.
	CodeInvalidStreamParam = "invalid_stream_param"
	// CodeInvalidCacheParam rejects malformed prefix-cache options (HTTP
	// 400): an unparseable cache object, unknown option fields, or a
	// negative min_prefix_tokens.
	CodeInvalidCacheParam = "invalid_cache_param"
	// CodeInvalidSpecParam rejects malformed speculative-decoding options
	// (HTTP 400): an unparseable speculation object, unknown option
	// fields, or a negative lookahead.
	CodeInvalidSpecParam = "invalid_spec_param"
	// CodeNotAcceptable rejects an impossible Accept/stream combination
	// (HTTP 406): a streaming request whose Accept excludes
	// text/event-stream, or a buffered request that only accepts it.
	CodeNotAcceptable = "not_acceptable"
	// CodeDeadlineExceeded fails a request whose X-Request-Deadline (or
	// context deadline) expired before the cluster/gateway finished it
	// (HTTP 504). Distinct from CodeCanceled: the server ran out the
	// client's stated budget rather than the client going away.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeInvalidDeadline rejects an unparseable X-Request-Deadline
	// header (HTTP 400).
	CodeInvalidDeadline = "invalid_deadline"
	// CodeNoHealthyReplicas sheds a request because every cluster
	// replica is ejected, down or draining (HTTP 503 + Retry-After).
	CodeNoHealthyReplicas = "no_healthy_replicas"
	// CodeInvalidSLOClass rejects an unknown priority / X-SLO-Class value
	// or a body-header disagreement (HTTP 400). Valid classes are
	// interactive, standard and batch.
	CodeInvalidSLOClass = "invalid_slo_class"
	// CodeOverloadShed sheds a request because the brownout ladder
	// reached its shed rung, or a higher-class arrival evicted it from a
	// full queue (HTTP 503 + Retry-After). Lower classes shed first;
	// retry, or resubmit with a higher priority if the work is urgent.
	CodeOverloadShed = "overload_shed"
	// CodeConcurrencyLimited rejects a request because the adaptive
	// concurrency limiter is holding admissions below the level at which
	// observed TTFT would bust the class SLO (HTTP 429 + Retry-After).
	CodeConcurrencyLimited = "concurrency_limited"
)

// errorBody is the uniform error envelope. TraceID correlates the failure
// with its retained trace (GET /v1/traces?id=) and the X-Trace-ID header.
type errorBody struct {
	Error   errorDetail `json:"error"`
	TraceID string      `json:"trace_id,omitempty"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	// The tracing middleware stamps X-Trace-ID on the response headers
	// before the handler runs; echoing it into the envelope gives clients
	// one field to quote when filing the failure.
	writeJSON(w, status, errorBody{
		Error:   errorDetail{Code: code, Message: err.Error()},
		TraceID: w.Header().Get("X-Trace-ID"),
	})
}

// writeBodyError maps request-body decoding failures onto statuses: a
// missing or non-JSON Content-Type is 415, malformed JSON is 400.
func writeBodyError(w http.ResponseWriter, err error) {
	if errors.Is(err, errUnsupportedMediaType) {
		writeError(w, http.StatusUnsupportedMediaType, CodeUnsupportedMedia, err)
		return
	}
	writeError(w, http.StatusBadRequest, CodeBadRequest, err)
}

// mapGatewayError classifies scheduler and context errors: the HTTP
// status, the envelope code, and whether the response should carry a
// derived Retry-After hint. Shared by the buffered response path
// (writeGatewayError) and the streaming path, which can only deliver the
// code inside a terminal SSE event once headers are sent.
func mapGatewayError(err error) (status int, code string, retryable bool) {
	switch {
	case errors.Is(err, gateway.ErrClassShed):
		// Brownout: the ladder's shed rung (or a class eviction) dropped
		// this request so higher classes keep their SLOs. Transient.
		return http.StatusServiceUnavailable, CodeOverloadShed, true
	case errors.Is(err, gateway.ErrConcurrencyLimited):
		// The AIMD limiter is below the offered load; the limit reopens
		// additively as TTFT recovers.
		return http.StatusTooManyRequests, CodeConcurrencyLimited, true
	case errors.Is(err, gateway.ErrDeadlineUnmeetable):
		// Queue eviction: the modeled TTFT overruns the client's stated
		// X-Request-Deadline, so serving it would only waste compute.
		return http.StatusGatewayTimeout, CodeDeadlineExceeded, false
	case errors.Is(err, gateway.ErrQueueFull):
		return http.StatusTooManyRequests, CodeQueueFull, true
	case errors.Is(err, govern.ErrQuotaExceeded):
		return http.StatusTooManyRequests, CodeQuotaExceeded, true
	case errors.Is(err, govern.ErrShedding), errors.Is(err, govern.ErrKVExhausted):
		// KV memory pressure: the lane is above its high watermark, or the
		// pool stayed exhausted through the request's requeue budget.
		return http.StatusServiceUnavailable, CodeMemoryPressure, true
	case errors.Is(err, govern.ErrNeverFits):
		// Structural: this context can never fit the lane's pool, so
		// retrying the same request is pointless.
		return http.StatusUnprocessableEntity, CodeUnprocessable, false
	case errors.Is(err, gateway.ErrDraining):
		return http.StatusServiceUnavailable, CodeDraining, true
	case errors.Is(err, gateway.ErrLaneQuarantined),
		errors.Is(err, gateway.ErrLaneBroken),
		errors.Is(err, gateway.ErrWatchdogTimeout):
		// Transient lane-level failures: quarantine cool-off, an open
		// breaker without a fallback, or a watchdog-cancelled batch that
		// exhausted its requeues. The condition clears on its own.
		return http.StatusServiceUnavailable, CodeUnavailable, true
	case errors.Is(err, gateway.ErrLanePanic):
		// The supervisor recovered the panic and is restarting the lane;
		// only this request's batch was lost.
		return http.StatusInternalServerError, CodeLanePanic, false
	case errors.Is(err, cluster.ErrNoHealthyReplicas):
		// Whole-cluster outage: every replica ejected, down or draining.
		return http.StatusServiceUnavailable, CodeNoHealthyReplicas, true
	case errors.Is(err, cluster.ErrReplicaDown):
		// The serving replica died mid-flight and failover could not (or
		// was not allowed to) rescue the request. Transient: the router
		// routes the retry to a live replica.
		return http.StatusServiceUnavailable, CodeUnavailable, true
	case errors.Is(err, context.DeadlineExceeded):
		// The client's stated time budget (X-Request-Deadline or context
		// deadline) ran out while the request was still in flight.
		return http.StatusGatewayTimeout, CodeDeadlineExceeded, false
	case errors.Is(err, context.Canceled):
		// 499-style: the client went away.
		return http.StatusRequestTimeout, CodeCanceled, false
	default:
		return http.StatusInternalServerError, CodeInternal, false
	}
}

// retryAfterJitter spreads a derived Retry-After hint by ±max(1, v/4)
// seconds so the synchronized clients of one backpressure episode don't
// all retry in lockstep against a just-recovering lane or replica
// (thundering herd). The jittered value stays in the same [1, 30]
// bounds the underlying hint honors.
func retryAfterJitter(v int) int {
	spread := v / 4
	if spread < 1 {
		spread = 1
	}
	v += rand.IntN(2*spread+1) - spread
	if v < 1 {
		v = 1
	}
	if v > 30 {
		v = 30
	}
	return v
}

// writeGatewayError maps scheduler and context errors onto HTTP statuses;
// everything else is an internal error. Every backpressure status — 429
// and every 503 — carries a derived Retry-After header so clients back
// off for as long as the backlog actually needs, not a guessed constant.
func (s *Server) writeGatewayError(w http.ResponseWriter, err error) {
	status, code, retryable := mapGatewayError(err)
	if retryable {
		// The hint is the time the current backlog needs to drain at the
		// observed completion rate, bounded to [1, 30] seconds and
		// jittered per response so retries desynchronize.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterJitter(s.gw.RetryAfterSeconds())))
	}
	writeError(w, status, code, err)
}
