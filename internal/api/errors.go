package api

// errors.go defines the service's uniform error envelope: every failure,
// from any handler, renders as
//
//	{"error":{"code":"bad_request","message":"..."}}
//
// so clients switch on a stable machine-readable code and log the human
// message.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/gateway"
)

// Error codes used across the v1 API.
const (
	CodeBadRequest       = "bad_request"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeQueueFull        = "queue_full"
	CodeDraining         = "draining"
	CodeCanceled         = "canceled"
	CodeUnprocessable    = "unprocessable"
	CodeInternal         = "internal"
)

// errorBody is the uniform error envelope.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorBody{Error: errorDetail{Code: code, Message: err.Error()}})
}

// writeGatewayError maps scheduler and context errors onto HTTP statuses;
// everything else is an internal error.
func writeGatewayError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, gateway.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, CodeQueueFull, err)
	case errors.Is(err, gateway.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, CodeDraining, err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// 499-style: the client went away or ran out its deadline.
		writeError(w, http.StatusRequestTimeout, CodeCanceled, err)
	default:
		writeError(w, http.StatusInternalServerError, CodeInternal, err)
	}
}
