package api

// errors.go defines the service's uniform error envelope: every failure,
// from any handler, renders as
//
//	{"error":{"code":"bad_request","message":"..."}}
//
// so clients switch on a stable machine-readable code and log the human
// message.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"repro/internal/gateway"
)

// Error codes used across the v1 API.
const (
	CodeBadRequest       = "bad_request"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeQueueFull        = "queue_full"
	CodeDraining         = "draining"
	CodeCanceled         = "canceled"
	CodeUnprocessable    = "unprocessable"
	CodeInternal         = "internal"
	// CodeUnavailable is a transient server-side failure — a quarantined
	// lane, an open breaker with no fallback, or a watchdog-cancelled
	// batch that exhausted its requeues. Retry later.
	CodeUnavailable = "unavailable"
	// CodeLanePanic marks a request failed by a recovered lane-worker
	// panic; the lane restarts, so a retry is expected to succeed.
	CodeLanePanic = "lane_panic"
)

// errorBody is the uniform error envelope.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorBody{Error: errorDetail{Code: code, Message: err.Error()}})
}

// writeGatewayError maps scheduler and context errors onto HTTP statuses;
// everything else is an internal error.
func (s *Server) writeGatewayError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, gateway.ErrQueueFull):
		// Tell the client when retrying is actually worthwhile: the time
		// the current backlog needs to drain at the observed completion
		// rate, not a hardcoded constant.
		w.Header().Set("Retry-After", strconv.Itoa(s.gw.RetryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, CodeQueueFull, err)
	case errors.Is(err, gateway.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, CodeDraining, err)
	case errors.Is(err, gateway.ErrLaneQuarantined),
		errors.Is(err, gateway.ErrLaneBroken),
		errors.Is(err, gateway.ErrWatchdogTimeout):
		// Transient lane-level failures: quarantine cool-off, an open
		// breaker without a fallback, or a watchdog-cancelled batch that
		// exhausted its requeues. The condition clears on its own.
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable, err)
	case errors.Is(err, gateway.ErrLanePanic):
		// The supervisor recovered the panic and is restarting the lane;
		// only this request's batch was lost.
		writeError(w, http.StatusInternalServerError, CodeLanePanic, err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// 499-style: the client went away or ran out its deadline.
		writeError(w, http.StatusRequestTimeout, CodeCanceled, err)
	default:
		writeError(w, http.StatusInternalServerError, CodeInternal, err)
	}
}
