package api

// fuzz_test.go fuzzes the v1 POST body validation path: whatever bytes
// arrive at /v1/generate — and whatever X-SLO-Class / X-Request-Deadline
// headers ride along — the handler must never panic and must answer
// either 200 with a result or an error status with the uniform envelope.
// Run with `go test -fuzz FuzzGenerateBody ./internal/api/`; the checked
// in corpus under testdata/fuzz seeds the interesting shapes.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/gateway"
	"repro/internal/overload"
)

func FuzzGenerateBody(f *testing.F) {
	// Body seeds; each is also crossed with empty headers.
	seeds := []string{
		`{"platform":"spr","model":"OPT-13B"}`,
		`{"platform":"spr","model":"OPT-13B","in":32,"out":4,"cores":16,"memmode":"cache","cluster":"snc"}`,
		`{"platform":"tiny-opt"}`,
		`{"platform":"spr","model":"OPT-13B","in":-1}`,
		`{"platform":"spr","model":"OPT-13B","out":999999999}`,
		`{"platform":"nope","model":"?"}`,
		`{"unknown_field":true}`,
		`{"platform":"spr","model":"OPT-13B"} trailing`,
		`{"platform":"spr","model":"OPT-13B",}`,
		`[]`,
		`"just a string"`,
		`{"in":"not a number"}`,
		``,
		`{`,
		"\x00\xff\xfe",
		// SLO-class body field and cache options, valid and not.
		`{"platform":"tiny-opt","priority":"interactive"}`,
		`{"platform":"tiny-opt","priority":"batch","cache":{"enabled":false}}`,
		`{"platform":"tiny-opt","priority":"urgent"}`,
		`{"platform":"tiny-opt","priority":""}`,
		`{"platform":"tiny-opt","cache":{"min_prefix_tokens":-5}}`,
		`{"platform":"tiny-opt","priority":42}`,
		// Speculation options, valid and not.
		`{"platform":"tiny-opt","speculation":{"enabled":false}}`,
		`{"platform":"tiny-opt","speculation":{"lookahead":2}}`,
		`{"platform":"tiny-opt","speculation":{"lookahead":-1}}`,
		`{"platform":"tiny-opt","speculation":{"lookhaed":3}}`,
		`{"platform":"tiny-opt","speculation":"yes"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s), "", "")
	}
	// Header combinations: agreeing and conflicting class labels, junk
	// classes, and deadline shapes from plausible to hostile.
	valid := `{"platform":"tiny-opt","out":2}`
	prio := `{"platform":"tiny-opt","priority":"interactive"}`
	for _, hs := range [][2]string{
		{"interactive", ""},
		{"batch", "750ms"},
		{"standard", "0"},
		{"bogus", ""},
		{"", "not-a-duration"},
		{"", "-3ms"},
		{"", "9999999h"},
		{"INTERACTIVE", "1s"},
	} {
		f.Add([]byte(valid), hs[0], hs[1])
		f.Add([]byte(prio), hs[0], hs[1]) // body/header agree or conflict
	}

	f.Fuzz(func(t *testing.T, body []byte, sloClass, deadline string) {
		// A fresh tiny gateway per input keeps iterations independent and
		// the lane map from growing without bound under long fuzz runs.
		// WatchdogBudget < 0 prices directly, without per-call goroutines.
		// Overload control is on so the class/brownout admission paths run.
		gw := gateway.New(gateway.Config{MaxQueue: 4, MaxBatch: 2, Workers: 1,
			WatchdogBudget: -1, Overload: &overload.Config{}}, stubResolver(stubCost{}))
		h := NewServer(gw).Handler()

		req := httptest.NewRequest(http.MethodPost, "/v1/generate", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if sloClass != "" {
			req.Header.Set("X-SLO-Class", sloClass)
		}
		if deadline != "" {
			req.Header.Set("X-Request-Deadline", deadline)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // must not panic, whatever the bytes

		checkFuzzResponse(t, rec)
	})
}

// checkFuzzResponse asserts the no-panic contract shared by the fuzzed
// generation endpoints: 200s carry decodable JSON (or well-formed SSE
// when the body selected streaming), errors carry the uniform envelope.
func checkFuzzResponse(t *testing.T, rec *httptest.ResponseRecorder) {
	t.Helper()
	res := rec.Result()
	switch res.StatusCode {
	case http.StatusOK:
		if res.Header.Get("Content-Type") == "text/event-stream" {
			for _, line := range bytes.Split(rec.Body.Bytes(), []byte("\n")) {
				if len(line) == 0 {
					continue
				}
				data, ok := bytes.CutPrefix(line, []byte("data: "))
				if !ok {
					t.Fatalf("SSE response with non-SSE line %q", line)
				}
				if !bytes.Equal(data, []byte("[DONE]")) && !json.Valid(data) {
					t.Fatalf("SSE chunk with invalid JSON: %q", data)
				}
			}
			return
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("200 with undecodable body: %s", rec.Body.Bytes())
		}
	case http.StatusBadRequest, http.StatusNotFound,
		http.StatusNotAcceptable, http.StatusRequestTimeout,
		http.StatusTooManyRequests, http.StatusUnprocessableEntity,
		http.StatusInternalServerError, http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.NewDecoder(res.Body).Decode(&env); err != nil ||
			env.Error.Code == "" || env.Error.Message == "" {
			t.Fatalf("status %d without uniform error envelope (err %v): %s",
				res.StatusCode, err, rec.Body.Bytes())
		}
	default:
		t.Fatalf("unexpected status %d: %s", res.StatusCode, rec.Body.Bytes())
	}
}

// FuzzChatCompletionsBody drives the OpenAI adapter's request mapping
// plus the shared validation and streaming path with arbitrary bytes.
// Run with `go test -fuzz FuzzChatCompletionsBody ./internal/api/`.
func FuzzChatCompletionsBody(f *testing.F) {
	seeds := []string{
		`{"model":"OPT-13B","messages":[{"role":"user","content":"hi"}]}`,
		`{"model":"OPT-13B","platform":"tiny-opt","max_tokens":4,"messages":[{"role":"user","content":"hi"}]}`,
		`{"model":"OPT-13B","messages":[{"role":"user","content":"hi"}],"stream":true}`,
		`{"model":"OPT-13B","messages":[{"role":"user","content":"hi"}],"stream":true,"stream_options":{"include_usage":true}}`,
		`{"model":"OPT-13B","messages":[{"role":"user","content":"hi"}],"stream_options":{"include_usage":true}}`,
		`{"model":"OPT-13B","messages":[{"role":"user","content":"hi"}],"temperature":0.7,"top_p":"high","seed":[1]}`,
		`{"model":"OPT-13B","messages":[{"content":"no role"}]}`,
		`{"model":"OPT-13B","messages":[],"n":2}`,
		`{"messages":[{"role":"user","content":"no model"}]}`,
		`{"model":"gpt-4","messages":[{"role":"user","content":"hi"}]}`,
		`{"model":"OPT-13B","max_completion_tokens":999999999,"messages":[{"role":"user","content":"hi"}]}`,
		`{"model":"OPT-13B","messages":"not an array"}`,
		`{"model":"OPT-13B","messages":[{"role":"user","content":"hi"}],}`,
		`[]`,
		``,
		`{`,
		"\x00\xff\xfe",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		gw := gateway.New(gateway.Config{MaxQueue: 4, MaxBatch: 2, Workers: 1,
			WatchdogBudget: -1}, stubResolver(stubCost{}))
		h := NewServer(gw).Handler()

		req := httptest.NewRequest(http.MethodPost, "/v1/chat/completions", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // must not panic, whatever the bytes

		checkFuzzResponse(t, rec)
	})
}
