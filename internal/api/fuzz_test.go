package api

// fuzz_test.go fuzzes the v1 POST body validation path: whatever bytes
// arrive at /v1/generate, the handler must never panic and must answer
// either 200 with a result or an error status with the uniform envelope.
// Run with `go test -fuzz FuzzGenerateBody ./internal/api/`; the checked
// in corpus under testdata/fuzz seeds the interesting shapes.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/gateway"
)

func FuzzGenerateBody(f *testing.F) {
	seeds := []string{
		`{"platform":"spr","model":"OPT-13B"}`,
		`{"platform":"spr","model":"OPT-13B","in":32,"out":4,"cores":16,"memmode":"cache","cluster":"snc"}`,
		`{"platform":"tiny-opt"}`,
		`{"platform":"spr","model":"OPT-13B","in":-1}`,
		`{"platform":"spr","model":"OPT-13B","out":999999999}`,
		`{"platform":"nope","model":"?"}`,
		`{"unknown_field":true}`,
		`{"platform":"spr","model":"OPT-13B"} trailing`,
		`{"platform":"spr","model":"OPT-13B",}`,
		`[]`,
		`"just a string"`,
		`{"in":"not a number"}`,
		``,
		`{`,
		"\x00\xff\xfe",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		// A fresh tiny gateway per input keeps iterations independent and
		// the lane map from growing without bound under long fuzz runs.
		// WatchdogBudget < 0 prices directly, without per-call goroutines.
		gw := gateway.New(gateway.Config{MaxQueue: 4, MaxBatch: 2, Workers: 1,
			WatchdogBudget: -1}, stubResolver(stubCost{}))
		h := NewServer(gw).Handler()

		req := httptest.NewRequest(http.MethodPost, "/v1/generate", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // must not panic, whatever the bytes

		res := rec.Result()
		switch res.StatusCode {
		case http.StatusOK:
			var out struct {
				Lane string `json:"lane"`
			}
			if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
				t.Fatalf("200 with undecodable body: %v", err)
			}
		case http.StatusBadRequest, http.StatusNotFound,
			http.StatusRequestTimeout, http.StatusTooManyRequests,
			http.StatusUnprocessableEntity, http.StatusInternalServerError,
			http.StatusServiceUnavailable:
			var env struct {
				Error struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			}
			if err := json.NewDecoder(res.Body).Decode(&env); err != nil ||
				env.Error.Code == "" || env.Error.Message == "" {
				t.Fatalf("status %d without uniform error envelope (err %v): %s",
					res.StatusCode, err, rec.Body.Bytes())
			}
		default:
			t.Fatalf("unexpected status %d: %s", res.StatusCode, rec.Body.Bytes())
		}
	})
}
