package api

// govern_test.go covers the HTTP surface of KV-memory governance: the
// memory-pressure 503 with a derived Retry-After, readiness flipping
// while shedding, per-client quota rejections, structural never-fits
// rejections, and the /v1/kv status endpoint.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/gateway"
	"repro/internal/govern"
	"repro/internal/model"
	"repro/internal/tensor"
)

// governedServer builds a gateway whose every lane gets exactly blocks
// 16-token blocks, plus an HTTP server in front of it.
func governedServer(t *testing.T, blocks int, mut func(*govern.Config)) (*govern.Governor, *httptest.Server) {
	t.Helper()
	m := model.Tiny(model.OPT)
	per := m.KVBytesPerTokenPerLayer(tensor.BF16) * int64(m.Layers) * 16
	cfg := govern.Config{
		Specs: func(lane string) (govern.PoolSpec, error) {
			return govern.PoolSpec{Model: m, DType: tensor.BF16, BlockSize: 16,
				BudgetBytes: per * int64(blocks)}, nil
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	gov := govern.New(cfg)
	gw := gateway.New(gateway.Config{Governor: gov}, stubResolver(stubCost{}))
	srv := httptest.NewServer(NewServer(gw).Handler())
	t.Cleanup(srv.Close)
	return gov, srv
}

// checkRetryAfter asserts the derived hint is an integer in the
// documented [1,30] second range.
func checkRetryAfter(t *testing.T, resp *http.Response) {
	t.Helper()
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 30 {
		t.Errorf("Retry-After %q not an integer in [1,30]", resp.Header.Get("Retry-After"))
	}
}

func TestMemoryPressure503AndReadyz(t *testing.T) {
	gov, srv := governedServer(t, 10, func(c *govern.Config) {
		c.HighWatermark = 0.8
		c.LowWatermark = 0.4
	})
	// Occupy 8 of 10 blocks on the exact lane /v1/generate resolves to,
	// pushing it over the high watermark.
	hold, err := gov.Admit("spr|OPT-13B|0||", "hog", 100, 28)
	if err != nil {
		t.Fatal(err)
	}
	if err := hold.Reserve(128); err != nil {
		t.Fatal(err)
	}

	resp, body := doOn(t, srv, http.MethodPost, "/v1/generate",
		`{"platform":"spr","model":"OPT-13B","in":16,"out":4}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if code, _ := errEnvelope(t, body); code != CodeMemoryPressure {
		t.Errorf("code %q, want %q", code, CodeMemoryPressure)
	}
	checkRetryAfter(t, resp)

	resp, body = doOn(t, srv, http.MethodGet, "/readyz", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz status %d while shedding, want 503: %s", resp.StatusCode, body)
	}
	if code, _ := errEnvelope(t, body); code != CodeMemoryPressure {
		t.Errorf("/readyz code %q, want %q", code, CodeMemoryPressure)
	}

	// /v1/kv reports the pressure while it lasts.
	resp, body = doOn(t, srv, http.MethodGet, "/v1/kv", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/kv status %d: %s", resp.StatusCode, body)
	}
	var st govern.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Shedding || len(st.Lanes) != 1 || st.Lanes[0].FreeBlocks != 2 {
		t.Errorf("/v1/kv under pressure: %s", body)
	}

	// Releasing the hoard drops utilization below the low watermark:
	// readiness and admission recover.
	hold.Release()
	resp, body = doOn(t, srv, http.MethodGet, "/readyz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz status %d after recovery: %s", resp.StatusCode, body)
	}
	resp, body = doOn(t, srv, http.MethodPost, "/v1/generate",
		`{"platform":"spr","model":"OPT-13B","in":16,"out":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate after recovery: %d %s", resp.StatusCode, body)
	}
}

func TestQuota429OverHTTP(t *testing.T) {
	_, srv := governedServer(t, 64, func(c *govern.Config) { c.QuotaTokens = 40 })
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/generate",
		strings.NewReader(`{"platform":"spr","model":"OPT-13B","in":32,"out":16}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", "tenant-a")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if code, _ := errEnvelope(t, body); code != CodeQuotaExceeded {
		t.Errorf("code %q, want %q", code, CodeQuotaExceeded)
	}
	checkRetryAfter(t, resp)

	// Under quota, the same tenant is served.
	resp2, body2 := doOn(t, srv, http.MethodPost, "/v1/generate",
		`{"platform":"spr","model":"OPT-13B","in":24,"out":8}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("under-quota request: %d %s", resp2.StatusCode, body2)
	}
}

func TestNeverFits422OverHTTP(t *testing.T) {
	_, srv := governedServer(t, 4, nil) // 64-token capacity
	resp, body := doOn(t, srv, http.MethodPost, "/v1/generate",
		`{"platform":"spr","model":"OPT-13B","in":128,"out":8}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, body)
	}
	if code, _ := errEnvelope(t, body); code != CodeUnprocessable {
		t.Errorf("code %q, want %q", code, CodeUnprocessable)
	}
	if resp.Header.Get("Retry-After") != "" {
		t.Error("structural 422 must not advertise Retry-After")
	}
}

func TestKVEndpointWithoutGovernor(t *testing.T) {
	gw := gateway.New(gateway.Config{}, stubResolver(stubCost{}))
	srv := httptest.NewServer(NewServer(gw).Handler())
	defer srv.Close()
	resp, body := doOn(t, srv, http.MethodGet, "/v1/kv", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404: %s", resp.StatusCode, body)
	}
	if code, _ := errEnvelope(t, body); code != CodeNotFound {
		t.Errorf("code %q, want %q", code, CodeNotFound)
	}
}

// TestDraining503CarriesRetryAfter covers the bugfix that every 503 —
// not only the 429 queue-full path — carries a derived Retry-After.
func TestDraining503CarriesRetryAfter(t *testing.T) {
	gw := gateway.New(gateway.Config{}, stubResolver(stubCost{}))
	srv := httptest.NewServer(NewServer(gw).Handler())
	defer srv.Close()
	if err := gw.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	resp, body := doOn(t, srv, http.MethodPost, "/v1/generate",
		`{"platform":"spr","model":"OPT-13B","in":16,"out":4}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if code, _ := errEnvelope(t, body); code != CodeDraining {
		t.Errorf("code %q, want %q", code, CodeDraining)
	}
	checkRetryAfter(t, resp)
}
