package api

// load_test.go is the gateway acceptance test: ≥64 concurrent HTTP
// clients drive /v1/generate; every request must either complete or be
// rejected with 429, with no lost or duplicated completions; /metrics
// must report non-zero TTFT/TPOT histograms and queue statistics; and
// shutdown must drain in-flight requests without dropping completions.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gateway"
)

func TestConcurrentClientsNoLostOrDuplicatedCompletions(t *testing.T) {
	gw := gateway.New(gateway.Config{MaxQueue: 32, MaxBatch: 8, Workers: 2}, LaneResolver())
	s := NewServer(gw)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const clients = 64
	var completions, rejected atomic.Int64
	seen := make([]int32, clients) // per-client completion count: must end at exactly 0 or 1
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"platform":"spr","model":"OPT-13B","in":%d,"out":8}`, 64+id%64)
			resp, err := http.Post(srv.URL+"/v1/generate", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("client %d: %v", id, err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				var res map[string]any
				if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
					t.Errorf("client %d: bad body: %v", id, err)
					return
				}
				if res["ttft_s"].(float64) <= 0 || res["e2e_s"].(float64) < res["ttft_s"].(float64) {
					t.Errorf("client %d: degenerate result %v", id, res)
				}
				completions.Add(1)
				atomic.AddInt32(&seen[id], 1)
			case http.StatusTooManyRequests:
				rejected.Add(1)
				if resp.Header.Get("Retry-After") == "" {
					t.Errorf("client %d: 429 without Retry-After", id)
				}
			default:
				t.Errorf("client %d: unexpected status %d", id, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()

	if got := completions.Load() + rejected.Load(); got != clients {
		t.Fatalf("accounted %d of %d requests (%d ok, %d rejected)",
			got, clients, completions.Load(), rejected.Load())
	}
	if completions.Load() == 0 {
		t.Fatal("every request was rejected; queue bound too tight for the test")
	}
	for id, n := range seen {
		if n > 1 {
			t.Errorf("client %d: %d completions (duplicated)", id, n)
		}
	}
	// The gateway's own ledger agrees with the client-side count.
	reg := gw.Registry()
	if got := reg.Counter("gateway_completed_total", "").Value(); got != uint64(completions.Load()) {
		t.Errorf("gateway completed %d, clients saw %d", got, completions.Load())
	}
	if got := reg.Counter("gateway_rejected_total", "").Value(); got != uint64(rejected.Load()) {
		t.Errorf("gateway rejected %d, clients saw %d", got, rejected.Load())
	}

	// /metrics reports non-zero serving histograms and queue stats.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	exposition := readAll(t, resp)
	for _, metric := range []string{"gateway_ttft_seconds", "gateway_tpot_seconds",
		"gateway_e2e_seconds", "gateway_queue_wait_seconds", "gateway_batch_size"} {
		if !histogramNonZero(exposition, metric) {
			t.Errorf("/metrics: histogram %s has no observations", metric)
		}
	}
	if !strings.Contains(exposition, "gateway_queue_depth") {
		t.Error("/metrics: missing queue depth gauge")
	}
}

func TestShutdownDrainsOverHTTP(t *testing.T) {
	gw := gateway.New(gateway.Config{MaxQueue: 128, MaxBatch: 4, Workers: 2}, LaneResolver())
	s := NewServer(gw)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const n = 16
	var completed, drained atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/generate", "application/json",
				strings.NewReader(`{"platform":"spr","model":"OPT-13B","in":128,"out":8}`))
			if err != nil {
				t.Errorf("post: %v", err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				completed.Add(1)
			case http.StatusServiceUnavailable:
				drained.Add(1)
			default:
				t.Errorf("status %d during drain", resp.StatusCode)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	if completed.Load()+drained.Load() != n {
		t.Fatalf("lost requests: %d + %d != %d", completed.Load(), drained.Load(), n)
	}
	if completed.Load() == 0 {
		t.Error("drain dropped all in-flight completions")
	}
	// Readiness flips to 503 once draining.
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain: %d", resp.StatusCode)
	}
}

// readAll drains a response body into a string.
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// histogramNonZero reports whether the exposition shows observations for
// the named histogram.
func histogramNonZero(exposition, name string) bool {
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, name+"_count ") {
			var v float64
			if _, err := fmt.Sscanf(line, name+"_count %g", &v); err == nil && v > 0 {
				return true
			}
		}
	}
	return false
}
