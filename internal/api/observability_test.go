package api

// observability_test.go covers the tracing surface of the v1 API: the
// request/trace ID header contract, the Server-Timing phase breakdown,
// trace retrieval via /v1/traces, the 415 Content-Type guard, and the
// capability fields on /v1/platforms.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestGenerateCarriesTraceAndRequestIDs(t *testing.T) {
	srv := httptest.NewServer(NewHandler())
	defer srv.Close()

	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/generate",
		strings.NewReader(`{"platform":"spr","model":"OPT-13B","in":64,"out":4}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "my-req-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "my-req-42" {
		t.Errorf("X-Request-ID %q not echoed", got)
	}
	traceID := resp.Header.Get("X-Trace-ID")
	if traceID == "" {
		t.Fatal("no X-Trace-ID header")
	}
	var res struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.TraceID != traceID {
		t.Errorf("body trace_id %q != header X-Trace-ID %q", res.TraceID, traceID)
	}
	if st := resp.Header.Get("Server-Timing"); !strings.Contains(st, "decode;dur=") {
		t.Errorf("Server-Timing lacks a decode phase: %q", st)
	}
}

func TestRequestIDGeneratedWhenAbsent(t *testing.T) {
	resp, _ := do(t, http.MethodGet, "/healthz", "")
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID generated")
	}
	if resp.Header.Get("X-Trace-ID") == "" {
		t.Error("no X-Trace-ID assigned")
	}
}

func TestErrorEnvelopeCarriesTraceID(t *testing.T) {
	resp, body := do(t, http.MethodPost, "/v1/generate", `{"platform":"nope"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	var env struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.TraceID == "" || env.TraceID != resp.Header.Get("X-Trace-ID") {
		t.Errorf("envelope trace_id %q vs header %q", env.TraceID, resp.Header.Get("X-Trace-ID"))
	}
}

// TestTraceRecordHasPhaseSpansWithCounters is the acceptance check: a
// sampled generate request's trace record, fetched by ID, holds at least
// the five serving phases with counter analogs on the compute spans.
func TestTraceRecordHasPhaseSpansWithCounters(t *testing.T) {
	srv := httptest.NewServer(NewHandler())
	defer srv.Close()

	resp, body := doOn(t, srv, http.MethodPost, "/v1/generate",
		`{"platform":"spr","model":"OPT-13B","in":64,"out":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate: status %d: %s", resp.StatusCode, body)
	}
	var res struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(body, &res); err != nil || res.TraceID == "" {
		t.Fatalf("no trace_id in %s (err %v)", body, err)
	}

	resp, body = doOn(t, srv, http.MethodGet, "/v1/traces?id="+res.TraceID, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traces: status %d: %s", resp.StatusCode, body)
	}
	var rec trace.Record
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	phases := map[string]int{}
	counters := map[string]bool{}
	for _, s := range rec.Spans {
		phases[s.Name]++
		if s.Counters != nil {
			counters[s.Name] = true
		}
	}
	for _, want := range []string{trace.PhaseQueue, trace.PhaseBatch,
		trace.PhasePrefill, trace.PhaseDecode, trace.PhasePricing} {
		if phases[want] == 0 {
			t.Errorf("trace record lacks a %s span (have %v)", want, phases)
		}
	}
	for _, want := range []string{trace.PhasePrefill, trace.PhaseDecode} {
		if !counters[want] {
			t.Errorf("%s spans carry no counter analogs", want)
		}
	}

	// Unknown IDs are 404 with the envelope.
	resp, body = doOn(t, srv, http.MethodGet, "/v1/traces?id=deadbeefdeadbeef", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace id: status %d", resp.StatusCode)
	}
	errEnvelope(t, body)
}

func TestTracesListing(t *testing.T) {
	srv := httptest.NewServer(NewHandler())
	defer srv.Close()
	for i := 0; i < 3; i++ {
		if resp, body := doOn(t, srv, http.MethodPost, "/v1/generate",
			`{"platform":"spr","model":"OPT-13B","in":32,"out":2}`); resp.StatusCode != http.StatusOK {
			t.Fatalf("generate %d: %d %s", i, resp.StatusCode, body)
		}
	}
	resp, body := doOn(t, srv, http.MethodGet, "/v1/traces?limit=2", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var page struct {
		SampleRate float64        `json:"sample_rate"`
		Count      int            `json:"count"`
		Traces     []trace.Record `json:"traces"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if page.SampleRate != 1 || len(page.Traces) != 2 {
		t.Errorf("page %+v, want sample_rate=1 and 2 traces", page)
	}
}

func TestUnsupportedMediaType415(t *testing.T) {
	srv := httptest.NewServer(NewHandler())
	defer srv.Close()
	for _, path := range []string{"/v1/generate", "/v1/simulate", "/v1/autotune"} {
		resp, err := http.Post(srv.URL+path, "text/plain", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 4096)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Errorf("%s: status %d want 415", path, resp.StatusCode)
			continue
		}
		if code, _ := errEnvelope(t, body[:n]); code != CodeUnsupportedMedia {
			t.Errorf("%s: code %q want %q", path, code, CodeUnsupportedMedia)
		}
	}
	// A charset parameter on the JSON media type is accepted.
	resp, err := http.Post(srv.URL+"/v1/generate", "application/json; charset=utf-8",
		strings.NewReader(`{"platform":"spr","model":"OPT-13B","in":16,"out":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("charset parameter rejected: status %d", resp.StatusCode)
	}
}

func TestPlatformCapabilities(t *testing.T) {
	resp, body := do(t, http.MethodGet, "/v1/platforms", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatal(resp.StatusCode)
	}
	var ps []struct {
		Key string `json:"key"`
		CPU *struct {
			AMX      bool     `json:"amx"`
			HBMGB    float64  `json:"hbm_gb"`
			MemModes []string `json:"mem_modes"`
			Clusters []string `json:"clusters"`
		} `json:"cpu"`
		GPU *struct {
			PeakTFLOPS float64 `json:"peak_tflops"`
			Link       string  `json:"link"`
		} `json:"gpu"`
	}
	if err := json.Unmarshal(body, &ps); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	byKey := map[string]int{}
	for i, p := range ps {
		byKey[p.Key] = i
		if (p.CPU == nil) == (p.GPU == nil) {
			t.Errorf("%s: exactly one of cpu/gpu must be set", p.Key)
		}
	}
	spr := ps[byKey["spr"]]
	if spr.CPU == nil || !spr.CPU.AMX || spr.CPU.HBMGB == 0 {
		t.Fatalf("spr capabilities %+v, want AMX + HBM", spr.CPU)
	}
	has := func(xs []string, want string) bool {
		for _, x := range xs {
			if x == want {
				return true
			}
		}
		return false
	}
	if !has(spr.CPU.MemModes, "cache") || !has(spr.CPU.Clusters, "snc") {
		t.Errorf("spr modes %v clusters %v, want cache and snc listed",
			spr.CPU.MemModes, spr.CPU.Clusters)
	}
	icl := ps[byKey["icl"]]
	if icl.CPU == nil || icl.CPU.AMX || icl.CPU.HBMGB != 0 {
		t.Errorf("icl capabilities %+v, want no AMX and no HBM", icl.CPU)
	}
	h100 := ps[byKey["h100"]]
	if h100.GPU == nil || h100.GPU.PeakTFLOPS == 0 {
		t.Errorf("h100 capabilities %+v", h100.GPU)
	}
}
