package api

// openai.go adapts the gateway to the OpenAI API shapes:
// POST /v1/chat/completions (chat.completion / chat.completion.chunk)
// and the older POST /v1/completions (text_completion). Both convert to
// a GenerateRequest and run through the exact validation and serving
// path as /v1/generate — the adapter owns only the request mapping and
// the response JSON.
//
// Compatibility scope (see docs/api.md for the full matrix): request and
// response framing, streaming chunks with [DONE], finish_reason and
// usage token accounting are faithful; sampling knobs (temperature,
// top_p, stop, seed, penalties) are accepted and ignored because the
// serving layer prices scheduling, not sampling — completion text is
// synthesized deterministically, one word per token. Prompt length is
// estimated character-wise, consistent with the repo's char-level
// tokenizer (internal/texttoken: one token per character plus BOS).

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"time"

	"repro/internal/gateway"
	"repro/internal/prefixcache"
	"repro/internal/trace"
)

// chatMessage is one chat turn, in requests and buffered responses.
type chatMessage struct {
	Role    string `json:"role"`
	Content string `json:"content"`
}

// chatCompletionsRequest is the body of POST /v1/chat/completions.
// RawMessage fields are accepted-but-ignored sampling parameters, kept
// raw so any JSON type a client sends passes the strict decoder.
type chatCompletionsRequest struct {
	Model    string        `json:"model"`
	Messages []chatMessage `json:"messages"`
	// MaxCompletionTokens wins over the deprecated MaxTokens; both zero
	// means the /v1/generate default (32).
	MaxTokens           int             `json:"max_tokens"`
	MaxCompletionTokens int             `json:"max_completion_tokens"`
	N                   int             `json:"n"`
	Stream              bool            `json:"stream"`
	StreamOptions       json.RawMessage `json:"stream_options"`
	Temperature         json.RawMessage `json:"temperature"`
	TopP                json.RawMessage `json:"top_p"`
	Stop                json.RawMessage `json:"stop"`
	Seed                json.RawMessage `json:"seed"`
	User                json.RawMessage `json:"user"`
	PresencePenalty     json.RawMessage `json:"presence_penalty"`
	FrequencyPenalty    json.RawMessage `json:"frequency_penalty"`
	// Vendor extensions selecting the serving lane, as on /v1/generate.
	// Platform defaults to "spr" (the paper's flagship CPU).
	Platform string `json:"platform"`
	Cores    int    `json:"cores"`
	MemMode  string `json:"memmode"`
	Cluster  string `json:"cluster"`
	// Cache is the per-request prefix-cache knob, as on /v1/generate.
	Cache json.RawMessage `json:"cache"`
	// Priority is the SLO class (interactive | standard | batch), as on
	// /v1/generate; it must agree with X-SLO-Class when both are set.
	Priority string `json:"priority"`
}

// completionsRequest is the body of POST /v1/completions, the legacy
// text-completion alias. Prompt must be a string (the array forms are
// not supported).
type completionsRequest struct {
	Model            string          `json:"model"`
	Prompt           string          `json:"prompt"`
	MaxTokens        int             `json:"max_tokens"`
	N                int             `json:"n"`
	Echo             bool            `json:"echo"`
	Stream           bool            `json:"stream"`
	StreamOptions    json.RawMessage `json:"stream_options"`
	Temperature      json.RawMessage `json:"temperature"`
	TopP             json.RawMessage `json:"top_p"`
	Stop             json.RawMessage `json:"stop"`
	Seed             json.RawMessage `json:"seed"`
	User             json.RawMessage `json:"user"`
	PresencePenalty  json.RawMessage `json:"presence_penalty"`
	FrequencyPenalty json.RawMessage `json:"frequency_penalty"`
	Platform         string          `json:"platform"`
	Cores            int             `json:"cores"`
	MemMode          string          `json:"memmode"`
	Cluster          string          `json:"cluster"`
	Cache            json.RawMessage `json:"cache"`
	Priority         string          `json:"priority"`
}

// usage is the OpenAI token-accounting block. CachedTokens is the
// vendor-native count of prompt tokens served from the prefix cache;
// PromptTokensDetails carries the same count in the OpenAI-compatible
// location.
type usage struct {
	PromptTokens        int                  `json:"prompt_tokens"`
	CompletionTokens    int                  `json:"completion_tokens"`
	TotalTokens         int                  `json:"total_tokens"`
	CachedTokens        int                  `json:"cached_tokens"`
	PromptTokensDetails *promptTokensDetails `json:"prompt_tokens_details,omitempty"`
}

// promptTokensDetails is the OpenAI prompt-token breakdown.
type promptTokensDetails struct {
	CachedTokens int `json:"cached_tokens"`
}

// usageFor derives the usage block from a gateway result.
func usageFor(res gateway.Result) usage {
	u := usage{
		PromptTokens:     res.InputLen,
		CompletionTokens: res.OutputLen,
		TotalTokens:      res.InputLen + res.OutputLen,
		CachedTokens:     res.CachedTokens,
	}
	if res.CachedTokens > 0 {
		u.PromptTokensDetails = &promptTokensDetails{CachedTokens: res.CachedTokens}
	}
	return u
}

// finishLength is the default finish_reason: every request decodes
// exactly its requested output length. Under brownout the gateway may
// clamp batch-class requests and reports finish_reason "brownout".
const finishLength = "length"

// finishReasonFor maps a gateway result to its finish_reason: the
// gateway's own reason when it set one (brownout cap), else "length".
func finishReasonFor(res gateway.Result) string {
	if res.FinishReason != "" {
		return res.FinishReason
	}
	return finishLength
}

// promptTokens estimates a chat prompt's token count: one token per
// content character (the texttoken contract) plus a fixed per-message
// template overhead for the role framing, plus BOS.
func promptTokens(msgs []chatMessage) int {
	n := 1 // BOS
	for _, m := range msgs {
		n += len(m.Content) + len(m.Role) + 4
	}
	return n
}

// defaultOpenAIPlatform serves OpenAI-shaped requests that don't pick a
// lane: the paper's flagship CPU platform.
const defaultOpenAIPlatform = "spr"

// chatSegments describes a chat prompt for the prefix cache: one
// content-hashed segment per message, so two conversations share cache
// entries exactly as far as their message lists agree — the multi-turn
// chat and shared-system-prompt patterns, with no client opt-in needed.
// Token counts mirror promptTokens exactly.
func chatSegments(msgs []chatMessage) []prefixcache.Segment {
	segs := make([]prefixcache.Segment, len(msgs))
	for i, m := range msgs {
		h := fnv.New64a()
		io.WriteString(h, m.Role)
		h.Write([]byte{0})
		io.WriteString(h, m.Content)
		tokens := len(m.Content) + len(m.Role) + 4
		if i == 0 {
			tokens++ // BOS
		}
		segs[i] = prefixcache.Segment{
			ID:     fmt.Sprintf("msg:%016x", h.Sum64()),
			Tokens: tokens,
		}
	}
	return segs
}

// promptChunkChars is the segment granularity for raw text prompts:
// completions share cache entries per aligned chunk of this many
// characters (one token per character), so a common document prefix is
// shareable without message structure.
const promptChunkChars = 256

// promptSegments describes a raw text prompt for the prefix cache as
// content-hashed fixed-size chunks. Token counts mirror the completions
// estimate (BOS + one token per character).
func promptSegments(prompt string) []prefixcache.Segment {
	if prompt == "" {
		return nil
	}
	var segs []prefixcache.Segment
	for start := 0; start < len(prompt); start += promptChunkChars {
		end := start + promptChunkChars
		if end > len(prompt) {
			end = len(prompt)
		}
		h := fnv.New64a()
		io.WriteString(h, prompt[start:end])
		tokens := end - start
		if start == 0 {
			tokens++ // BOS
		}
		segs = append(segs, prefixcache.Segment{
			ID:     fmt.Sprintf("txt:%016x", h.Sum64()),
			Tokens: tokens,
		})
	}
	return segs
}

// toGenerate maps the chat request onto the shared GenerateRequest, so
// /v1/chat/completions runs through exactly /v1/generate's validation.
func (c *chatCompletionsRequest) toGenerate() (GenerateRequest, error) {
	if c.Model == "" {
		return GenerateRequest{}, fmt.Errorf("model is required")
	}
	if len(c.Messages) == 0 {
		return GenerateRequest{}, fmt.Errorf("messages must contain at least one message")
	}
	for i, m := range c.Messages {
		if m.Role == "" {
			return GenerateRequest{}, fmt.Errorf("messages[%d]: role is required", i)
		}
	}
	if c.N > 1 {
		return GenerateRequest{}, fmt.Errorf("n=%d is not supported (only n=1)", c.N)
	}
	out := c.MaxCompletionTokens
	if out == 0 {
		out = c.MaxTokens
	}
	platform := c.Platform
	if platform == "" {
		platform = defaultOpenAIPlatform
	}
	return GenerateRequest{
		Platform:      platform,
		Model:         c.Model,
		InputLen:      promptTokens(c.Messages),
		OutputLen:     out,
		Cores:         c.Cores,
		MemMode:       c.MemMode,
		Cluster:       c.Cluster,
		Stream:        c.Stream,
		StreamOptions: c.StreamOptions,
		Cache:         c.Cache,
		Priority:      c.Priority,
		prefix:        chatSegments(c.Messages),
	}, nil
}

// toGenerate maps the text-completion request onto GenerateRequest.
func (c *completionsRequest) toGenerate() (GenerateRequest, error) {
	if c.Model == "" {
		return GenerateRequest{}, fmt.Errorf("model is required")
	}
	if c.N > 1 {
		return GenerateRequest{}, fmt.Errorf("n=%d is not supported (only n=1)", c.N)
	}
	if c.Echo {
		return GenerateRequest{}, fmt.Errorf("echo is not supported")
	}
	platform := c.Platform
	if platform == "" {
		platform = defaultOpenAIPlatform
	}
	return GenerateRequest{
		Platform:      platform,
		Model:         c.Model,
		InputLen:      1 + len(c.Prompt), // BOS + one token per character
		OutputLen:     c.MaxTokens,
		Cores:         c.Cores,
		MemMode:       c.MemMode,
		Cluster:       c.Cluster,
		Stream:        c.Stream,
		StreamOptions: c.StreamOptions,
		Cache:         c.Cache,
		Priority:      c.Priority,
		prefix:        promptSegments(c.Prompt),
	}, nil
}

// chatDelta is the incremental message fragment in a streamed chunk.
type chatDelta struct {
	Role    string `json:"role,omitempty"`
	Content string `json:"content,omitempty"`
}

// chatChoice is one choice in a chat.completion or chat.completion.chunk
// object; Message is set on buffered responses, Delta on chunks.
type chatChoice struct {
	Index        int          `json:"index"`
	Message      *chatMessage `json:"message,omitempty"`
	Delta        *chatDelta   `json:"delta,omitempty"`
	FinishReason *string      `json:"finish_reason"`
}

// chatCompletionResponse is both the buffered chat.completion object and
// the chat.completion.chunk stream objects. TraceID is a vendor
// extension correlating with X-Trace-ID and GET /v1/traces.
type chatCompletionResponse struct {
	ID      string       `json:"id"`
	Object  string       `json:"object"`
	Created int64        `json:"created"`
	Model   string       `json:"model"`
	Choices []chatChoice `json:"choices"`
	Usage   *usage       `json:"usage,omitempty"`
	TraceID string       `json:"trace_id,omitempty"`
}

// chatShape renders the OpenAI chat-completions forms.
type chatShape struct {
	id      string
	created int64
	model   string
}

func (c *chatShape) buffered(res gateway.Result) any {
	reason := finishReasonFor(res)
	u := usageFor(res)
	return chatCompletionResponse{
		ID: c.id, Object: "chat.completion", Created: c.created, Model: c.model,
		Choices: []chatChoice{{
			Message:      &chatMessage{Role: "assistant", Content: completionText(res.OutputLen)},
			FinishReason: &reason,
		}},
		Usage:   &u,
		TraceID: res.TraceID,
	}
}

func (c *chatShape) token(ev gateway.TokenEvent) any {
	delta := &chatDelta{Content: tokenText(ev.Index)}
	if ev.Index == 0 {
		delta.Role = "assistant"
	}
	return chatCompletionResponse{
		ID: c.id, Object: "chat.completion.chunk", Created: c.created, Model: c.model,
		Choices: []chatChoice{{Delta: delta}},
	}
}

func (c *chatShape) terminal(res gateway.Result, includeUsage bool) []any {
	reason := finishReasonFor(res)
	out := []any{chatCompletionResponse{
		ID: c.id, Object: "chat.completion.chunk", Created: c.created, Model: c.model,
		Choices: []chatChoice{{Delta: &chatDelta{}, FinishReason: &reason}},
	}}
	if includeUsage {
		u := usageFor(res)
		out = append(out, chatCompletionResponse{
			ID: c.id, Object: "chat.completion.chunk", Created: c.created, Model: c.model,
			Choices: []chatChoice{},
			Usage:   &u,
		})
	}
	return out
}

// textChoice is one choice in a text_completion object (buffered and
// streamed chunks share the shape).
type textChoice struct {
	Index        int     `json:"index"`
	Text         string  `json:"text"`
	FinishReason *string `json:"finish_reason"`
}

// completionsResponse is the text_completion object.
type completionsResponse struct {
	ID      string       `json:"id"`
	Object  string       `json:"object"`
	Created int64        `json:"created"`
	Model   string       `json:"model"`
	Choices []textChoice `json:"choices"`
	Usage   *usage       `json:"usage,omitempty"`
	TraceID string       `json:"trace_id,omitempty"`
}

// completionsShape renders the legacy text-completion forms.
type completionsShape struct {
	id      string
	created int64
	model   string
}

func (c *completionsShape) buffered(res gateway.Result) any {
	reason := finishReasonFor(res)
	u := usageFor(res)
	return completionsResponse{
		ID: c.id, Object: "text_completion", Created: c.created, Model: c.model,
		Choices: []textChoice{{Text: completionText(res.OutputLen), FinishReason: &reason}},
		Usage:   &u,
		TraceID: res.TraceID,
	}
}

func (c *completionsShape) token(ev gateway.TokenEvent) any {
	return completionsResponse{
		ID: c.id, Object: "text_completion", Created: c.created, Model: c.model,
		Choices: []textChoice{{Text: tokenText(ev.Index)}},
	}
}

func (c *completionsShape) terminal(res gateway.Result, includeUsage bool) []any {
	reason := finishReasonFor(res)
	out := []any{completionsResponse{
		ID: c.id, Object: "text_completion", Created: c.created, Model: c.model,
		Choices: []textChoice{{FinishReason: &reason}},
	}}
	if includeUsage {
		u := usageFor(res)
		out = append(out, completionsResponse{
			ID: c.id, Object: "text_completion", Created: c.created, Model: c.model,
			Choices: []textChoice{},
			Usage:   &u,
		})
	}
	return out
}

// completionID builds the response id from the request's trace, so the
// OpenAI-shaped id is directly greppable in /v1/traces.
func completionID(prefix string, r *http.Request) string {
	id := trace.FromContext(r.Context()).ID()
	if id == "" {
		id = trace.NewID()
	}
	return prefix + id
}

func (s *Server) handleChatCompletions(w http.ResponseWriter, r *http.Request) {
	admit := time.Now()
	var creq chatCompletionsRequest
	if err := decodeBody(r, &creq); err != nil {
		writeBodyError(w, err)
		return
	}
	greq, err := creq.toGenerate()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	shape := &chatShape{
		id:      completionID("chatcmpl-", r),
		created: time.Now().Unix(),
		model:   creq.Model,
	}
	s.serveGeneration(w, r, admit, &greq, shape)
}

func (s *Server) handleCompletions(w http.ResponseWriter, r *http.Request) {
	admit := time.Now()
	var creq completionsRequest
	if err := decodeBody(r, &creq); err != nil {
		writeBodyError(w, err)
		return
	}
	greq, err := creq.toGenerate()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	shape := &completionsShape{
		id:      completionID("cmpl-", r),
		created: time.Now().Unix(),
		model:   creq.Model,
	}
	s.serveGeneration(w, r, admit, &greq, shape)
}
