package api

// openai_test.go covers the OpenAI-compatible adapter endpoints:
// buffered and streamed chat.completion shapes, usage token accounting,
// finish_reason, the legacy /v1/completions alias, and the shared
// validation path (same 400/404 taxonomy as /v1/generate).

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func TestChatCompletionsBuffered(t *testing.T) {
	srv := streamServer(t)
	resp, body := doOn(t, srv, http.MethodPost, "/v1/chat/completions",
		`{"model":"opt","platform":"tiny-opt","max_tokens":4,
		  "messages":[{"role":"user","content":"hi"}],
		  "temperature":0.7,"top_p":0.9,"stop":["\n"],"seed":42}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr chatCompletionResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Object != "chat.completion" || !strings.HasPrefix(cr.ID, "chatcmpl-") ||
		cr.Model != "opt" || cr.Created == 0 {
		t.Errorf("envelope malformed: %+v", cr)
	}
	if len(cr.Choices) != 1 {
		t.Fatalf("got %d choices", len(cr.Choices))
	}
	ch := cr.Choices[0]
	if ch.Message == nil || ch.Message.Role != "assistant" ||
		ch.Message.Content != completionText(4) {
		t.Errorf("message malformed: %+v", ch.Message)
	}
	if ch.FinishReason == nil || *ch.FinishReason != finishLength {
		t.Errorf("finish_reason %v, want %q", ch.FinishReason, finishLength)
	}
	// Char-level estimate: BOS + len("hi") + len("user") + 4 framing = 11.
	if cr.Usage == nil || cr.Usage.PromptTokens != 11 || cr.Usage.CompletionTokens != 4 ||
		cr.Usage.TotalTokens != 15 {
		t.Errorf("usage %+v, want {11 4 15}", cr.Usage)
	}
	if cr.TraceID == "" || !strings.HasSuffix(cr.ID, cr.TraceID) {
		t.Errorf("id %q not derived from trace %q", cr.ID, cr.TraceID)
	}
}

func TestChatCompletionsStreaming(t *testing.T) {
	srv := streamServer(t)
	resp := postAccept(t, srv, "/v1/chat/completions",
		`{"model":"opt","platform":"tiny-opt","max_tokens":3,"stream":true,
		  "stream_options":{"include_usage":true},
		  "messages":[{"role":"user","content":"hi"}]}`, "text/event-stream")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	chunks, done := readSSE(t, resp)
	if !done {
		t.Error("stream did not end with [DONE]")
	}
	// 3 content chunks + finish chunk + usage chunk.
	if len(chunks) != 5 {
		t.Fatalf("got %d chunks, want 5", len(chunks))
	}
	var parsed []chatCompletionResponse
	for i, c := range chunks {
		var cr chatCompletionResponse
		if err := json.Unmarshal(c, &cr); err != nil {
			t.Fatal(err)
		}
		if cr.Object != "chat.completion.chunk" || cr.ID != parsedID(parsed, cr.ID) {
			t.Errorf("chunk %d envelope: %+v", i, cr)
		}
		parsed = append(parsed, cr)
	}
	var content strings.Builder
	for i := 0; i < 3; i++ {
		d := parsed[i].Choices[0].Delta
		if d == nil {
			t.Fatalf("chunk %d has no delta", i)
		}
		if got, want := d.Role, map[bool]string{true: "assistant", false: ""}[i == 0]; got != want {
			t.Errorf("chunk %d role %q, want %q", i, got, want)
		}
		if parsed[i].Choices[0].FinishReason != nil {
			t.Errorf("chunk %d has premature finish_reason", i)
		}
		content.WriteString(d.Content)
	}
	if content.String() != completionText(3) {
		t.Errorf("streamed content %q != buffered %q", content.String(), completionText(3))
	}
	fin := parsed[3].Choices[0]
	if fin.Delta == nil || fin.Delta.Content != "" || fin.FinishReason == nil ||
		*fin.FinishReason != finishLength {
		t.Errorf("finish chunk malformed: %+v", fin)
	}
	u := parsed[4]
	if len(u.Choices) != 0 || u.Usage == nil || u.Usage.CompletionTokens != 3 ||
		u.Usage.PromptTokens != 11 {
		t.Errorf("usage chunk malformed: %+v", u)
	}
}

// parsedID pins every chunk to the first chunk's id.
func parsedID(prev []chatCompletionResponse, id string) string {
	if len(prev) == 0 {
		return id
	}
	return prev[0].ID
}

func TestCompletionsAlias(t *testing.T) {
	srv := streamServer(t)
	resp, body := doOn(t, srv, http.MethodPost, "/v1/completions",
		`{"model":"opt","platform":"tiny-opt","prompt":"abc","max_tokens":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr completionsResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Object != "text_completion" || !strings.HasPrefix(cr.ID, "cmpl-") {
		t.Errorf("envelope malformed: %+v", cr)
	}
	if len(cr.Choices) != 1 || cr.Choices[0].Text != completionText(3) ||
		cr.Choices[0].FinishReason == nil || *cr.Choices[0].FinishReason != finishLength {
		t.Errorf("choice malformed: %+v", cr.Choices)
	}
	// BOS + one token per prompt character.
	if cr.Usage == nil || cr.Usage.PromptTokens != 4 || cr.Usage.CompletionTokens != 3 {
		t.Errorf("usage %+v, want {4 3 7}", cr.Usage)
	}
}

func TestCompletionsStreamingAlias(t *testing.T) {
	srv := streamServer(t)
	resp := postAccept(t, srv, "/v1/completions",
		`{"model":"opt","platform":"tiny-opt","prompt":"ab","max_tokens":2,"stream":true}`, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	chunks, done := readSSE(t, resp)
	if !done {
		t.Error("stream did not end with [DONE]")
	}
	if len(chunks) != 3 { // 2 text chunks + finish chunk
		t.Fatalf("got %d chunks, want 3", len(chunks))
	}
	var text strings.Builder
	for i, c := range chunks {
		var cr completionsResponse
		if err := json.Unmarshal(c, &cr); err != nil {
			t.Fatal(err)
		}
		if cr.Object != "text_completion" || len(cr.Choices) != 1 {
			t.Fatalf("chunk %d malformed: %+v", i, cr)
		}
		text.WriteString(cr.Choices[0].Text)
	}
	if text.String() != completionText(2) {
		t.Errorf("streamed text %q != buffered %q", text.String(), completionText(2))
	}
}

// TestOpenAIValidation checks the adapters share /v1/generate's error
// taxonomy: mapping errors are 400s with the uniform envelope, unknown
// resource names are 404s.
func TestOpenAIValidation(t *testing.T) {
	srv := streamServer(t)
	cases := []struct {
		name, path, body string
		wantStatus       int
		wantCode         string
	}{
		{"chat missing model", "/v1/chat/completions",
			`{"messages":[{"role":"user","content":"x"}]}`,
			http.StatusBadRequest, CodeBadRequest},
		{"chat missing messages", "/v1/chat/completions",
			`{"model":"m"}`, http.StatusBadRequest, CodeBadRequest},
		{"chat message without role", "/v1/chat/completions",
			`{"model":"m","messages":[{"content":"x"}]}`,
			http.StatusBadRequest, CodeBadRequest},
		{"chat n unsupported", "/v1/chat/completions",
			`{"model":"m","n":2,"messages":[{"role":"user","content":"x"}]}`,
			http.StatusBadRequest, CodeBadRequest},
		{"chat unknown model on cpu platform", "/v1/chat/completions",
			`{"model":"gpt-4","messages":[{"role":"user","content":"x"}]}`,
			http.StatusNotFound, CodeNotFound},
		{"chat unknown platform", "/v1/chat/completions",
			`{"model":"m","platform":"tpu","messages":[{"role":"user","content":"x"}]}`,
			http.StatusNotFound, CodeNotFound},
		{"chat stream options without stream", "/v1/chat/completions",
			`{"model":"m","platform":"tiny-opt","stream_options":{"include_usage":true},
			  "messages":[{"role":"user","content":"x"}]}`,
			http.StatusBadRequest, CodeInvalidStreamParam},
		{"completions missing model", "/v1/completions",
			`{"prompt":"x"}`, http.StatusBadRequest, CodeBadRequest},
		{"completions echo unsupported", "/v1/completions",
			`{"model":"m","platform":"tiny-opt","prompt":"x","echo":true}`,
			http.StatusBadRequest, CodeBadRequest},
		{"completions n unsupported", "/v1/completions",
			`{"model":"m","platform":"tiny-opt","prompt":"x","n":2}`,
			http.StatusBadRequest, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := doOn(t, srv, http.MethodPost, tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.wantStatus, body)
			}
			var e errorBody
			if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != tc.wantCode {
				t.Errorf("error code %q, want %q (%s)", e.Error.Code, tc.wantCode, body)
			}
		})
	}
}
