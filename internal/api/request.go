package api

// request.go holds the v1 request schemas with their two decoders — JSON
// body (POST) and query parameters (GET back-compat adapter) — and the
// shared field validation, so both forms of every endpoint run through
// identical checks.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"

	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gateway"
	"repro/internal/govern"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/overload"
	"repro/internal/prefixcache"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// maxBodyBytes bounds POST request bodies.
const maxBodyBytes = 1 << 20

// maxGenTokens bounds per-request sequence lengths on /v1/generate: the
// scheduler does work per token, so an unbounded length is an unbounded
// amount of lane time bought with one request.
const maxGenTokens = 1 << 17

// SimulateRequest is the body of POST /v1/simulate. Zero-valued numeric
// fields take the documented defaults.
type SimulateRequest struct {
	Platform  string `json:"platform"`
	Model     string `json:"model"`
	Batch     int    `json:"batch"`   // default 1
	InputLen  int    `json:"in"`      // default 128
	OutputLen int    `json:"out"`     // default 32
	Cores     int    `json:"cores"`   // CPU platforms; default per platform
	MemMode   string `json:"memmode"` // flat | cache | hbm-only | ddr
	Cluster   string `json:"cluster"` // quad | snc
}

// AutotuneRequest is the body of POST /v1/autotune.
type AutotuneRequest struct {
	Model     string `json:"model"`
	Objective string `json:"objective"` // e2e | throughput | ttft
	InputLen  int    `json:"in"`        // default 128
	OutputLen int    `json:"out"`       // default 32
	Top       int    `json:"top"`       // default 5
}

// GenerateRequest is the body of POST /v1/generate: one generation
// request served through the gateway's batching scheduler. Platform is a
// registry key, or "tiny-opt"/"tiny-llama" to execute on the real
// measured engine.
type GenerateRequest struct {
	Platform  string `json:"platform"`
	Model     string `json:"model"`
	InputLen  int    `json:"in"`  // default 128
	OutputLen int    `json:"out"` // default 32
	Cores     int    `json:"cores"`
	MemMode   string `json:"memmode"`
	Cluster   string `json:"cluster"`
	// Stream switches the response from one buffered JSON result to SSE
	// per-token delivery (Content-Type text/event-stream, data: chunks,
	// data: [DONE] termination).
	Stream bool `json:"stream"`
	// StreamOptions tunes streaming delivery, OpenAI-shaped. It is kept
	// raw here so malformed options produce the typed invalid_stream_param
	// error instead of a generic decode failure.
	StreamOptions json.RawMessage `json:"stream_options"`
	// PrefixGroup names the shared-prompt group this request belongs to
	// (a system prompt, an agent's tool preamble). Requests in one group
	// share the prefix cache for their first PrefixTokens tokens.
	PrefixGroup string `json:"prefix_group"`
	// PrefixTokens is how many leading tokens of the prompt the group
	// shares; 0 with a group set means the whole prompt.
	PrefixTokens int `json:"prefix_tokens"`
	// Cache tunes prefix caching per request ({"enabled": false} opts
	// out, "min_prefix_tokens" discards short matches). Kept raw so
	// malformed options produce the typed invalid_cache_param error.
	Cache json.RawMessage `json:"cache"`
	// Speculation tunes speculative decoding per request on lanes whose
	// server runs with a draft model ({"enabled": false} opts out,
	// "lookahead" caps the per-cycle proposal length below the server's
	// -spec-k). Kept raw so malformed options produce the typed
	// invalid_spec_param error.
	Speculation json.RawMessage `json:"speculation"`
	// Priority is the request's SLO class (interactive | standard |
	// batch; default standard). It orders queue admission and selects
	// shedding victims under overload: batch work is shed before
	// interactive ever sees a 503. Equivalent to the X-SLO-Class header;
	// when both are present they must agree.
	Priority string `json:"priority"`

	// prefix carries pre-built cache segments from adapter routes (chat
	// messages, completion prompt chunks); when nil, prefixSegments
	// derives segments from PrefixGroup/PrefixTokens.
	prefix []prefixcache.Segment
}

// streamOptions is the decoded form of the stream_options body field.
type streamOptions struct {
	// IncludeUsage appends a final usage chunk (token counts) before
	// [DONE] on the OpenAI-shaped endpoints.
	IncludeUsage bool `json:"include_usage"`
}

// errInvalidStreamParam marks malformed streaming options; handlers map
// it to HTTP 400 with the typed invalid_stream_param code.
var errInvalidStreamParam = errors.New("invalid stream parameter")

// parseStreamOptions validates the stream/stream_options pair.
// stream_options without "stream": true is rejected — silently ignoring
// it would surprise clients expecting a usage chunk.
func parseStreamOptions(stream bool, raw json.RawMessage) (streamOptions, error) {
	var opts streamOptions
	if len(raw) == 0 || string(raw) == "null" {
		return opts, nil
	}
	if !stream {
		return opts, fmt.Errorf(`%w: stream_options requires "stream": true`, errInvalidStreamParam)
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&opts); err != nil {
		return opts, fmt.Errorf("%w: stream_options: %v", errInvalidStreamParam, err)
	}
	return opts, nil
}

// cacheOptions is the decoded form of the cache body field.
type cacheOptions struct {
	// Enabled opts the request out of the prefix cache when false: no
	// lookup, no donation. Absent means enabled.
	Enabled *bool `json:"enabled"`
	// MinPrefixTokens discards cache matches shorter than this many
	// tokens — chats that want a hit only when the whole history matched.
	MinPrefixTokens int `json:"min_prefix_tokens"`
}

// disabled reports whether the options opt the request out.
func (c cacheOptions) disabled() bool { return c.Enabled != nil && !*c.Enabled }

// errInvalidCacheParam marks malformed cache options; handlers map it to
// HTTP 400 with the typed invalid_cache_param code.
var errInvalidCacheParam = errors.New("invalid cache parameter")

// parseCacheOptions strictly validates the cache body field: unknown
// fields and wrong types are rejected rather than silently ignored, so a
// client that misspells "enabled" cannot believe it opted out.
func parseCacheOptions(raw json.RawMessage) (cacheOptions, error) {
	var opts cacheOptions
	if len(raw) == 0 || string(raw) == "null" {
		return opts, nil
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&opts); err != nil {
		return opts, fmt.Errorf("%w: cache: %v", errInvalidCacheParam, err)
	}
	if opts.MinPrefixTokens < 0 {
		return opts, fmt.Errorf("%w: cache.min_prefix_tokens must be non-negative, got %d",
			errInvalidCacheParam, opts.MinPrefixTokens)
	}
	return opts, nil
}

// specOptions is the decoded form of the speculation body field.
type specOptions struct {
	// Enabled opts the request out of speculative decoding when false:
	// its sequences decode one token per iteration even on a lane with a
	// draft. Absent means enabled.
	Enabled *bool `json:"enabled"`
	// Lookahead caps this request's per-cycle draft proposal length below
	// the server's configured maximum; 0 means no per-request cap.
	Lookahead int `json:"lookahead"`
}

// disabled reports whether the options opt the request out.
func (s specOptions) disabled() bool { return s.Enabled != nil && !*s.Enabled }

// errInvalidSpecParam marks malformed speculation options; handlers map
// it to HTTP 400 with the typed invalid_spec_param code.
var errInvalidSpecParam = errors.New("invalid speculation parameter")

// parseSpecOptions strictly validates the speculation body field, with
// the same posture as parseCacheOptions: unknown fields and wrong types
// are rejected so a client that misspells "enabled" cannot believe it
// opted out.
func parseSpecOptions(raw json.RawMessage) (specOptions, error) {
	var opts specOptions
	if len(raw) == 0 || string(raw) == "null" {
		return opts, nil
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&opts); err != nil {
		return opts, fmt.Errorf("%w: speculation: %v", errInvalidSpecParam, err)
	}
	if opts.Lookahead < 0 {
		return opts, fmt.Errorf("%w: speculation.lookahead must be non-negative, got %d",
			errInvalidSpecParam, opts.Lookahead)
	}
	return opts, nil
}

// errInvalidSLOClass marks an unknown priority / X-SLO-Class value or a
// body-header disagreement; handlers map it to HTTP 400 with the typed
// invalid_slo_class code.
var errInvalidSLOClass = errors.New("invalid SLO class")

// resolveClass validates the request's SLO class from the priority body
// field and the X-SLO-Class header at the service boundary. Either
// source alone sets the class; both together must agree — silently
// preferring one would let a proxy-injected header override what the
// client asked for (or vice versa) without anyone noticing. Unknown
// values are a typed 400, never a silent downgrade to standard. An
// empty result means the caller expressed no preference (the gateway
// defaults it to standard).
func resolveClass(bodyPriority, header string) (string, error) {
	for _, v := range []string{bodyPriority, header} {
		if v == "" {
			continue
		}
		if _, err := overload.ParseClass(v); err != nil {
			return "", fmt.Errorf("%w: %v", errInvalidSLOClass, err)
		}
	}
	if bodyPriority != "" && header != "" && bodyPriority != header {
		return "", fmt.Errorf("%w: priority %q disagrees with X-SLO-Class %q",
			errInvalidSLOClass, bodyPriority, header)
	}
	if bodyPriority != "" {
		return bodyPriority, nil
	}
	return header, nil
}

// errUnsupportedMediaType marks POST bodies sent without a JSON
// Content-Type; writeBodyError maps it to HTTP 415.
var errUnsupportedMediaType = errors.New("unsupported media type")

// decodeBody strictly parses a JSON body into dst. The Content-Type must
// be application/json (charset parameters are accepted).
func decodeBody(r *http.Request, dst any) error {
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err != nil || mt != "application/json" {
		return fmt.Errorf("%w: Content-Type %q (want application/json)",
			errUnsupportedMediaType, ct)
	}
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("request body: %w", err)
	}
	if dec.More() {
		return errors.New("request body: trailing data after JSON object")
	}
	return nil
}

// positiveParam parses an optional positive integer query parameter.
func positiveParam(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("parameter %s: %w", name, err)
	}
	if v < 1 {
		return 0, fmt.Errorf("parameter %s must be positive, got %d", name, v)
	}
	return v, nil
}

// simulateFromQuery adapts the legacy GET query form.
func simulateFromQuery(r *http.Request) (SimulateRequest, error) {
	var req SimulateRequest
	q := r.URL.Query()
	req.Platform = q.Get("platform")
	req.Model = q.Get("model")
	req.MemMode = q.Get("memmode")
	req.Cluster = q.Get("cluster")
	var err error
	if req.Batch, err = positiveParam(r, "batch", 0); err != nil {
		return req, err
	}
	if req.InputLen, err = positiveParam(r, "in", 0); err != nil {
		return req, err
	}
	if req.OutputLen, err = positiveParam(r, "out", 0); err != nil {
		return req, err
	}
	if req.Cores, err = positiveParam(r, "cores", 0); err != nil {
		return req, err
	}
	return req, nil
}

// autotuneFromQuery adapts the legacy GET query form.
func autotuneFromQuery(r *http.Request) (AutotuneRequest, error) {
	var req AutotuneRequest
	q := r.URL.Query()
	req.Model = q.Get("model")
	req.Objective = q.Get("objective")
	var err error
	if req.InputLen, err = positiveParam(r, "in", 0); err != nil {
		return req, err
	}
	if req.OutputLen, err = positiveParam(r, "out", 0); err != nil {
		return req, err
	}
	if req.Top, err = positiveParam(r, "top", 0); err != nil {
		return req, err
	}
	return req, nil
}

// normalize validates the request and fills defaults; it returns the
// resolved model and platform entry.
func (req *SimulateRequest) normalize() (model.Config, hw.PlatformEntry, error) {
	if req.Batch == 0 {
		req.Batch = 1
	}
	if req.InputLen == 0 {
		req.InputLen = 128
	}
	if req.OutputLen == 0 {
		req.OutputLen = 32
	}
	for _, f := range []struct {
		name string
		v    int
	}{{"batch", req.Batch}, {"in", req.InputLen}, {"out", req.OutputLen}, {"cores", req.Cores}} {
		if f.v < 0 {
			return model.Config{}, hw.PlatformEntry{}, fmt.Errorf("field %s must be positive, got %d", f.name, f.v)
		}
	}
	m, err := core.ModelByName(req.Model)
	if err != nil {
		return model.Config{}, hw.PlatformEntry{}, err
	}
	entry, err := hw.PlatformByKey(req.Platform)
	if err != nil {
		return model.Config{}, hw.PlatformEntry{}, err
	}
	if entry.Kind == hw.GPUPlatform && (req.Cores != 0 || req.MemMode != "" || req.Cluster != "") {
		return model.Config{}, hw.PlatformEntry{}, fmt.Errorf("cores/memmode/cluster apply only to CPU platforms, not %q", req.Platform)
	}
	return m, entry, nil
}

// cpuSetup builds the memsim configuration for a CPU platform entry.
func cpuSetup(entry hw.PlatformEntry, cores int, memMode, cluster string) (memsim.Config, error) {
	setup := core.SPRQuadFlat(0)
	if entry.Key == "icl" {
		setup = core.ICLBaseline()
	}
	if cores > 0 {
		setup.Cores = cores
	}
	switch memMode {
	case "", "flat":
	case "cache":
		setup.Mem = memsim.Cache
	case "hbm-only":
		setup.Mem = memsim.HBMOnly
	case "ddr":
		setup.Mem = memsim.DDROnly
	default:
		return setup, fmt.Errorf("unknown memmode %q (want flat, cache, hbm-only or ddr)", memMode)
	}
	switch cluster {
	case "", "quad":
	case "snc":
		setup.Cluster = memsim.SNC4
	default:
		return setup, fmt.Errorf("unknown cluster %q (want quad or snc)", cluster)
	}
	return setup, nil
}

// laneKey canonicalizes the fields that determine batching compatibility:
// requests with equal keys may share a gateway lane.
func (req GenerateRequest) laneKey() string {
	return strings.Join([]string{req.Platform, req.Model,
		strconv.Itoa(req.Cores), req.MemMode, req.Cluster}, "|")
}

// normalize validates a generate request and fills defaults.
func (req *GenerateRequest) normalize() error {
	if req.InputLen == 0 {
		req.InputLen = 128
	}
	if req.OutputLen == 0 {
		req.OutputLen = 32
	}
	if req.InputLen < 0 || req.OutputLen < 0 || req.Cores < 0 {
		return fmt.Errorf("in, out and cores must be positive")
	}
	if req.InputLen > maxGenTokens || req.OutputLen > maxGenTokens {
		return fmt.Errorf("in and out must be at most %d tokens", maxGenTokens)
	}
	if req.PrefixTokens < 0 {
		return fmt.Errorf("prefix_tokens must be non-negative, got %d", req.PrefixTokens)
	}
	if req.PrefixTokens > req.InputLen {
		return fmt.Errorf("prefix_tokens (%d) exceeds the prompt length in (%d)",
			req.PrefixTokens, req.InputLen)
	}
	if req.PrefixTokens > 0 && req.PrefixGroup == "" {
		return fmt.Errorf("prefix_tokens requires prefix_group")
	}
	if strings.HasPrefix(req.Platform, "tiny-") {
		fam := strings.TrimPrefix(req.Platform, "tiny-")
		if fam != "opt" && fam != "llama" {
			return fmt.Errorf("%w: engine platform %q (want tiny-opt or tiny-llama)",
				hw.ErrUnknownPlatform, req.Platform)
		}
		return nil
	}
	entry, err := hw.PlatformByKey(req.Platform)
	if err != nil {
		return err
	}
	if _, err := core.ModelByName(req.Model); err != nil {
		return err
	}
	if entry.Kind == hw.CPUPlatform {
		if _, err := cpuSetup(entry, req.Cores, req.MemMode, req.Cluster); err != nil {
			return err
		}
	} else if req.Cores != 0 || req.MemMode != "" || req.Cluster != "" {
		return fmt.Errorf("cores/memmode/cluster apply only to CPU platforms, not %q", req.Platform)
	}
	return nil
}

// prefixGroupChunkTokens is the granularity at which a prefix_group's
// shared span is segmented. Chunking matters for growing prefixes: a
// multi-turn session whose shared context lengthens each turn must
// extend the previous turn's key chain rather than hash differently from
// token zero, and fixed-size chunks keep every completed chunk's segment
// identity stable as prefix_tokens grows.
const prefixGroupChunkTokens = 64

// prefixSegments describes the request's prompt for the prefix cache:
// adapter-built segments when present (chat messages, prompt chunks),
// otherwise the prefix_group shared span in fixed-size chunks plus a
// private per-request tail. Requests with no group and no adapter
// segments return nil and bypass the cache entirely.
func (req *GenerateRequest) prefixSegments() []prefixcache.Segment {
	if req.prefix != nil {
		return req.prefix
	}
	if req.PrefixGroup == "" {
		return nil
	}
	shared := req.PrefixTokens
	if shared == 0 || shared > req.InputLen {
		shared = req.InputLen
	}
	var segs []prefixcache.Segment
	for i := 0; i*prefixGroupChunkTokens < shared; i++ {
		n := shared - i*prefixGroupChunkTokens
		if n > prefixGroupChunkTokens {
			n = prefixGroupChunkTokens
		}
		segs = append(segs, prefixcache.Segment{
			ID:     fmt.Sprintf("group:%s#%d", req.PrefixGroup, i),
			Tokens: n,
		})
	}
	if tail := req.InputLen - shared; tail > 0 {
		segs = append(segs, prefixcache.Segment{ID: "tail", Tokens: tail, Private: true})
	}
	return segs
}

// lanePool is the single persistent worker pool shared by every tiny-*
// lane engine: gateway lanes run concurrently, and giving each engine a
// private pool would oversubscribe the cores the paper's thread-scaling
// curves show matter (one worker set per socket, not per model).
var (
	lanePool     *kernels.Pool
	lanePoolOnce sync.Once
)

func sharedLanePool() *kernels.Pool {
	lanePoolOnce.Do(func() { lanePool = kernels.NewPool(0) })
	return lanePool
}

// LaneResolver builds serve cost models from canonical lane keys. It is
// the gateway's bridge back into the simulation substrates: analytic
// platform models for the paper's evaluation hardware, and the real
// functional engine for tiny-* lanes.
func LaneResolver() gateway.Resolver {
	return func(lane string) (serve.CostModel, error) {
		parts := strings.Split(lane, "|")
		if len(parts) != 5 {
			return nil, fmt.Errorf("api: malformed lane key %q", lane)
		}
		platform, modelName, coresStr, memMode, cluster := parts[0], parts[1], parts[2], parts[3], parts[4]
		cores, err := strconv.Atoi(coresStr)
		if err != nil {
			return nil, fmt.Errorf("api: malformed lane cores in %q", lane)
		}
		if strings.HasPrefix(platform, "tiny-") {
			eng, err := core.TinyEngineWith(strings.TrimPrefix(platform, "tiny-"),
				engine.Options{Kernel: engine.KernelTileBF16Parallel, Pool: sharedLanePool()})
			if err != nil {
				return nil, err
			}
			return serve.NewEngineCost(eng), nil
		}
		m, err := core.ModelByName(modelName)
		if err != nil {
			return nil, err
		}
		entry, err := hw.PlatformByKey(platform)
		if err != nil {
			return nil, err
		}
		if entry.Kind == hw.CPUPlatform {
			setup, err := cpuSetup(entry, cores, memMode, cluster)
			if err != nil {
				return nil, err
			}
			return serve.NewCPUCost(setup, m), nil
		}
		return serve.NewGPUCost(*entry.GPU, m), nil
	}
}

// SpecLaneResolver is LaneResolver with draft-model speculation: lanes
// that can price a draft return a serve.SpecCostModel, which the gateway
// detects and upgrades to draft-assisted decode cycles. Tiny-* lanes pair
// the measured target engine with a one-layer draft of the same family
// (draftModel is ignored — the engines must share a vocabulary); analytic
// CPU lanes price the named registry draft model on the lane's platform.
// GPU lanes fall back to plain pricing — the paper's CPU-side speculation
// argument doesn't transfer, and the GPU model has no draft calibration.
func SpecLaneResolver(draftModel string) gateway.Resolver {
	base := LaneResolver()
	return func(lane string) (serve.CostModel, error) {
		parts := strings.Split(lane, "|")
		if len(parts) != 5 {
			return nil, fmt.Errorf("api: malformed lane key %q", lane)
		}
		platform, modelName, coresStr, memMode, cluster := parts[0], parts[1], parts[2], parts[3], parts[4]
		if strings.HasPrefix(platform, "tiny-") {
			fam := strings.TrimPrefix(platform, "tiny-")
			opts := engine.Options{Kernel: engine.KernelTileBF16Parallel, Pool: sharedLanePool()}
			target, err := core.TinyEngineWith(fam, opts)
			if err != nil {
				return nil, err
			}
			draft, err := core.TinyDraftEngineWith(fam, opts)
			if err != nil {
				return nil, err
			}
			return serve.NewSpecEngineCost(target, draft), nil
		}
		m, err := core.ModelByName(modelName)
		if err != nil {
			return nil, err
		}
		entry, err := hw.PlatformByKey(platform)
		if err != nil {
			return nil, err
		}
		if entry.Kind != hw.CPUPlatform {
			return base(lane)
		}
		dm, err := core.ModelByName(draftModel)
		if err != nil {
			return nil, fmt.Errorf("api: draft model: %w", err)
		}
		cores, err := strconv.Atoi(coresStr)
		if err != nil {
			return nil, fmt.Errorf("api: malformed lane cores in %q", lane)
		}
		setup, err := cpuSetup(entry, cores, memMode, cluster)
		if err != nil {
			return nil, err
		}
		return serve.NewSpecCPUCost(setup, m, dm), nil
	}
}

// PoolSpecResolver sizes per-lane KV pools for the memory governor from
// the lane's platform entry, the way the paper budgets KV capacity
// (§III, Fig 7): the platform's memory capacity minus the resident
// weights, with 10% headroom for activations and runtime overhead. CPU
// platforms prefer the HBM tier when the weights fit inside it (weights
// and cache co-resident in HBM, the paper's flat-mode sweet spot) and
// fall back to HBM+DDR otherwise; GPUs budget device memory minus the
// kernel workspace. Tiny engine lanes get a small synthetic budget —
// their interest is functional, not capacity. overrideBytes, when
// positive, replaces the derived budget for every lane (llmperfd
// -kv-budget-mb, the memdemo knob).
func PoolSpecResolver(blockSize int, overrideBytes int64) govern.SpecResolver {
	if blockSize <= 0 {
		blockSize = govern.DefaultBlockSize
	}
	return func(lane string) (govern.PoolSpec, error) {
		parts := strings.Split(lane, "|")
		if len(parts) != 5 {
			return govern.PoolSpec{}, fmt.Errorf("api: malformed lane key %q", lane)
		}
		platform, modelName := parts[0], parts[1]
		spec := govern.PoolSpec{DType: tensor.BF16, BlockSize: blockSize}
		if strings.HasPrefix(platform, "tiny-") {
			fam := model.OPT
			if strings.TrimPrefix(platform, "tiny-") == "llama" {
				fam = model.LLaMA2
			}
			spec.Model = model.Tiny(fam)
			spec.BudgetBytes = 64 << 20
		} else {
			m, err := core.ModelByName(modelName)
			if err != nil {
				return govern.PoolSpec{}, err
			}
			entry, err := hw.PlatformByKey(platform)
			if err != nil {
				return govern.PoolSpec{}, err
			}
			spec.Model = m
			weights := m.WeightBytes(spec.DType)
			var capacity int64
			if entry.Kind == hw.CPUPlatform {
				c := entry.CPU
				hbm := int64(c.HBM.CapacityGB * float64(c.Sockets) * 1e9)
				ddr := int64(c.DDR.CapacityGB * float64(c.Sockets) * 1e9)
				if hbm > weights {
					capacity = hbm // weights + KV co-resident in the HBM tier
				} else {
					capacity = hbm + ddr
				}
			} else {
				g := entry.GPU
				capacity = int64((g.MemGB - g.WorkspaceGB) * 1e9)
			}
			spec.BudgetBytes = int64(0.9 * float64(capacity-weights))
		}
		if overrideBytes > 0 {
			spec.BudgetBytes = overrideBytes
		}
		// Never size a pool below a workable floor: a lane that cannot hold
		// a handful of sequences thrashes instead of serving.
		blockBytes := spec.Model.KVBytesPerTokenPerLayer(spec.DType) *
			int64(spec.Model.Layers) * int64(blockSize)
		if minBudget := 64 * blockBytes; spec.BudgetBytes < minBudget {
			spec.BudgetBytes = minBudget
		}
		return spec, nil
	}
}

// FallbackResolver builds degraded-mode cost models for lanes whose
// primary pricing path fails. Engine-timed lanes (tiny-*) fall back to a
// pure analytic FLOPs model over the same tiny shape — cheap, cannot
// panic or stall, and keeps the lane serving with degraded accuracy while
// the breaker is open. Analytic lanes get no fallback: their primary is
// already the model of last resort.
func FallbackResolver() gateway.Resolver {
	return func(lane string) (serve.CostModel, error) {
		parts := strings.Split(lane, "|")
		if len(parts) != 5 || !strings.HasPrefix(parts[0], "tiny-") {
			return nil, nil
		}
		fam := model.OPT
		if strings.TrimPrefix(parts[0], "tiny-") == "llama" {
			fam = model.LLaMA2
		}
		return serve.NewAnalyticFallback(model.Tiny(fam), 0), nil
	}
}
