package api

// resilience_test.go covers the serving-robustness surface of the API:
// the fault-injection admin endpoint, derived Retry-After hints on 429,
// and degraded-mode responses when a lane's primary cost model fails.

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/gateway"
	"repro/internal/serve"
)

// stubCost prices instantly; gate, when non-nil, blocks prefills so tests
// can pile up a backlog.
type stubCost struct{ gate chan struct{} }

func (c stubCost) PrefillCost(batch, in int) (float64, error) {
	if c.gate != nil {
		<-c.gate
	}
	return 0.001, nil
}
func (c stubCost) DecodeStepCost(batch, ctx int) (float64, error) { return 0.0001, nil }

func stubResolver(c serve.CostModel) gateway.Resolver {
	return func(string) (serve.CostModel, error) { return c, nil }
}

func TestAdminFaultsLifecycle(t *testing.T) {
	gw := gateway.New(gateway.Config{Injector: faults.New(7)}, stubResolver(stubCost{}))
	srv := httptest.NewServer(NewServer(gw).Handler())
	defer srv.Close()

	resp, body := doOn(t, srv, http.MethodGet, "/v1/admin/faults", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status %d: %s", resp.StatusCode, body)
	}
	var st faults.Status
	if err := json.Unmarshal(body, &st); err != nil || st.Armed {
		t.Fatalf("fresh injector snapshot: %v %s", err, body)
	}

	resp, body = doOn(t, srv, http.MethodPost, "/v1/admin/faults",
		`{"rules":[{"class":"latency","site":"cost.decode","every":3,"delay_ms":1}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &st); err != nil || !st.Armed || len(st.Rules) != 1 {
		t.Fatalf("armed snapshot: %v %s", err, body)
	}
	if st.Rules[0].Class != faults.Latency || st.Rules[0].Every != 3 {
		t.Errorf("armed rule round-tripped wrong: %+v", st.Rules[0])
	}

	resp, body = doOn(t, srv, http.MethodDelete, "/v1/admin/faults", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &st); err != nil || st.Armed {
		t.Fatalf("disarmed snapshot: %v %s", err, body)
	}
}

func TestAdminFaultsRejectsBadRules(t *testing.T) {
	gw := gateway.New(gateway.Config{Injector: faults.New(1)}, stubResolver(stubCost{}))
	srv := httptest.NewServer(NewServer(gw).Handler())
	defer srv.Close()

	for _, body := range []string{
		`{"rules":[]}`,                               // no rules
		`{"rules":[{"class":"latency"}]}`,            // no trigger, no delay
		`{"rules":[{"class":"warp-core-breach"}]}`,   // unknown class
		`{"rules":[{"class":"panic","every":-1}]}`,   // negative trigger
		`{"rules":[{"class":"panic","every":1}],}`,   // malformed JSON
		`{"rules":[{"class":"panic","every":1}]}  x`, // trailing data
	} {
		resp, respBody := doOn(t, srv, http.MethodPost, "/v1/admin/faults", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s: status %d, want 400", body, resp.StatusCode)
		}
		if code, _ := errEnvelope(t, respBody); code != CodeBadRequest {
			t.Errorf("POST %s: code %q", body, code)
		}
	}
}

func TestAdminFaultsWithoutInjector(t *testing.T) {
	resp, body := do(t, http.MethodGet, "/v1/admin/faults", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if code, _ := errEnvelope(t, body); code != CodeUnavailable {
		t.Errorf("code %q, want %q", code, CodeUnavailable)
	}
}

func TestRetryAfterDerivedOn429(t *testing.T) {
	gate := make(chan struct{})
	gw := gateway.New(gateway.Config{MaxQueue: 1, MaxBatch: 1, Workers: 1,
		WatchdogBudget: -1}, // the gated prefill must be allowed to block
		stubResolver(stubCost{gate: gate}))
	srv := httptest.NewServer(NewServer(gw).Handler())
	defer srv.Close()

	// The gate must open even on assertion failure, or the blocked request
	// keeps the test server's Close waiting forever.
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	defer openGate()

	const reqBody = `{"platform":"spr","model":"OPT-13B"}`
	// One request occupies the lane (blocked in the gated prefill), one
	// fills the single queue slot, the next must bounce with 429. Submit
	// them one at a time, waiting for each to take its seat.
	results := make(chan int, 2)
	submit := func() {
		go func() {
			resp, _ := doOn(t, srv, http.MethodPost, "/v1/generate", reqBody)
			results <- resp.StatusCode
		}()
	}
	await := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("%s never happened", what)
			}
			time.Sleep(time.Millisecond)
		}
	}
	inflight := gw.Registry().Gauge("gateway_inflight", "")
	submit()
	await("first request admitted", func() bool { return inflight.Value() == 1 })
	submit()
	await("second request queued", func() bool { return gw.QueueDepth() == 1 })

	resp, body := doOn(t, srv, http.MethodPost, "/v1/generate", reqBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if code, _ := errEnvelope(t, body); code != CodeQueueFull {
		t.Errorf("429 code %q, want %q", code, CodeQueueFull)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 30 {
		t.Errorf("Retry-After %q not an integer in [1,30]", resp.Header.Get("Retry-After"))
	}
	openGate()
	for i := 0; i < 2; i++ {
		if status := <-results; status != http.StatusOK {
			t.Errorf("backlogged request finished with %d", status)
		}
	}
}

func TestGenerateReportsDegraded(t *testing.T) {
	// Primary always fails; the configured fallback keeps the lane serving
	// and the response carries degraded: true instead of a 5xx.
	failing := func(string) (serve.CostModel, error) {
		return brokenCost{}, nil
	}
	gw := gateway.New(gateway.Config{
		BreakerThreshold: 2,
		Fallback:         stubResolver(stubCost{}),
	}, failing)
	srv := httptest.NewServer(NewServer(gw).Handler())
	defer srv.Close()

	resp, body := doOn(t, srv, http.MethodPost, "/v1/generate",
		`{"platform":"spr","model":"OPT-13B","in":32,"out":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res struct {
		Degraded bool `json:"degraded"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Errorf("response not marked degraded: %s", body)
	}
}

// brokenCost always fails, standing in for a wedged engine.
type brokenCost struct{}

func (brokenCost) PrefillCost(batch, in int) (float64, error) {
	return 0, errors.New("engine wedged")
}
func (brokenCost) DecodeStepCost(batch, ctx int) (float64, error) {
	return 0, errors.New("engine wedged")
}

func TestFallbackResolverScope(t *testing.T) {
	r := FallbackResolver()
	// Malformed keys and analytic lanes get no fallback, silently: the
	// analytic models already are the model of last resort.
	for _, lane := range []string{"bad-key", "spr|OPT-13B|0||"} {
		if fb, err := r(lane); fb != nil || err != nil {
			t.Errorf("lane %q: fallback %v err %v, want none", lane, fb, err)
		}
	}
	// Engine-timed lanes degrade onto a pure analytic model.
	for _, lane := range []string{"tiny-opt||0||", "tiny-llama||4||"} {
		fb, err := r(lane)
		if err != nil || fb == nil {
			t.Fatalf("engine lane %q got no fallback: %v", lane, err)
		}
		if c, err := fb.PrefillCost(1, 64); err != nil || c <= 0 {
			t.Errorf("lane %q fallback cannot price: %g %v", lane, c, err)
		}
	}
}
