package api

// stream.go is the HTTP side of token streaming: explicit Accept
// negotiation, the SSE wire format (data: {...} chunks terminated by
// data: [DONE]), and the bridge between the gateway's scheduler-side
// token sink and the handler goroutine. The three generation endpoints
// (/v1/generate, /v1/chat/completions, /v1/completions) share one
// serving path and differ only in their responseShape — the JSON forms
// of the buffered result, the per-token chunk and the terminal chunks.
//
// Status-code correctness is the delicate part of SSE: once the first
// chunk is written the 200 is committed, so the stream is started lazily
// at the first token. A request that fails before producing any token
// (queue full, quota, shedding, cancellation) still gets its proper
// status code and JSON envelope; a request that fails mid-stream gets
// the same uniform envelope as a terminal event, without [DONE].

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/gateway"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/trace"
)

// acceptable reports whether the Accept header allows mediaType. An
// absent or empty header allows everything; parameters (q=, charset) are
// ignored — the API has exactly two response types, so preference
// ordering between acceptable types never matters.
func acceptable(r *http.Request, mediaType string) bool {
	h := strings.TrimSpace(r.Header.Get("Accept"))
	if h == "" {
		return true
	}
	want := strings.SplitN(mediaType, "/", 2)
	for _, part := range strings.Split(h, ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch {
		case mt == "":
			continue
		case mt == "*/*" || mt == mediaType:
			return true
		}
		if got := strings.SplitN(mt, "/", 2); len(got) == 2 &&
			got[0] == want[0] && got[1] == "*" {
			return true
		}
	}
	return false
}

// negotiateStream applies the explicit content-negotiation contract:
// "stream": true produces text/event-stream, anything else produces
// application/json, and an Accept header that excludes the one the body
// selected is an impossible combination (406).
func negotiateStream(r *http.Request, stream bool) error {
	if stream {
		if !acceptable(r, "text/event-stream") {
			return fmt.Errorf(`"stream": true produces text/event-stream, which Accept %q does not allow`,
				r.Header.Get("Accept"))
		}
		return nil
	}
	if !acceptable(r, "application/json") {
		if acceptable(r, "text/event-stream") {
			return fmt.Errorf(`Accept %q allows only text/event-stream, which requires "stream": true in the request body`,
				r.Header.Get("Accept"))
		}
		return fmt.Errorf("buffered responses are application/json, which Accept %q does not allow",
			r.Header.Get("Accept"))
	}
	return nil
}

// sse is a committed text/event-stream response.
type sse struct {
	w http.ResponseWriter
	f http.Flusher
}

// startSSE writes the SSE headers and the 200 status line. After this
// point the response cannot change status.
func startSSE(w http.ResponseWriter) (*sse, error) {
	f, ok := w.(http.Flusher)
	if !ok {
		return nil, errors.New("response writer does not support streaming (no http.Flusher)")
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	f.Flush()
	return &sse{w: w, f: f}, nil
}

// event writes one data: {...} chunk and flushes it to the client.
func (s *sse) event(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(s.w, "data: %s\n\n", b)
	s.f.Flush()
}

// done writes the data: [DONE] terminator.
func (s *sse) done() {
	io.WriteString(s.w, "data: [DONE]\n\n")
	s.f.Flush()
}

// tokenFeed bridges the gateway's token sink (called from the lane
// scheduler goroutine, must never block) to the handler goroutine that
// writes the response. The sink appends under a mutex and nudges a
// capacity-1 notify channel; the handler drains. The buffer grows to at
// most the request's output length, so a slow client costs memory
// bounded by its own request, never scheduler stalls — and because the
// sink side never touches the ResponseWriter, late emissions after the
// handler returned are harmless.
type tokenFeed struct {
	mu     sync.Mutex
	events []gateway.TokenEvent
	notify chan struct{}
}

func newTokenFeed() *tokenFeed {
	return &tokenFeed{notify: make(chan struct{}, 1)}
}

// sink is the gateway.TokenSink implementation.
func (f *tokenFeed) sink(ev gateway.TokenEvent) {
	f.mu.Lock()
	f.events = append(f.events, ev)
	f.mu.Unlock()
	select {
	case f.notify <- struct{}{}:
	default:
	}
}

// drain returns the buffered events and resets the buffer.
func (f *tokenFeed) drain() []gateway.TokenEvent {
	f.mu.Lock()
	evs := f.events
	f.events = nil
	f.mu.Unlock()
	return evs
}

// responseShape renders one generation endpoint's response forms. The
// serving path is shared; only the JSON differs per endpoint.
type responseShape interface {
	// buffered is the whole non-streaming response body.
	buffered(res gateway.Result) any
	// token is one streamed chunk.
	token(ev gateway.TokenEvent) any
	// terminal is the chunks sent after the last token, before [DONE].
	terminal(res gateway.Result, includeUsage bool) []any
}

// serveGeneration validates req, negotiates the response shape, and
// serves it buffered or streamed through the gateway. All three
// generation endpoints funnel here, so validation, error mapping and
// streaming semantics stay uniform.
func (s *Server) serveGeneration(w http.ResponseWriter, r *http.Request, admit time.Time, req *GenerateRequest, shape responseShape) {
	tr := trace.FromContext(r.Context())
	if err := req.normalize(); err != nil {
		// Unknown platform or model names are missing resources (404),
		// distinct from malformed parameters (400).
		if errors.Is(err, hw.ErrUnknownPlatform) || errors.Is(err, model.ErrUnknownModel) {
			writeError(w, http.StatusNotFound, CodeNotFound, err)
			return
		}
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	opts, err := parseStreamOptions(req.Stream, req.StreamOptions)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidStreamParam, err)
		return
	}
	copts, err := parseCacheOptions(req.Cache)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidCacheParam, err)
		return
	}
	sopts, err := parseSpecOptions(req.Speculation)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSpecParam, err)
		return
	}
	if err := negotiateStream(r, req.Stream); err != nil {
		writeError(w, http.StatusNotAcceptable, CodeNotAcceptable, err)
		return
	}
	class, err := resolveClass(req.Priority, r.Header.Get("X-SLO-Class"))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSLOClass, err)
		return
	}
	ctx, cancel, err := requestDeadline(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidDeadline, err)
		return
	}
	defer cancel()
	// Surface the degradation ladder on every generation response; the
	// header must be set before streaming commits the 200.
	if lvl := s.gw.BrownoutLevel(); lvl > 0 {
		w.Header().Set("X-Brownout-Level", strconv.Itoa(lvl))
	}
	tr.Add(trace.SpanData{Name: trace.PhaseAdmission, Start: admit, End: time.Now(),
		Attrs: map[string]string{"lane": req.laneKey()}})
	greq := gateway.Request{
		Lane: req.laneKey(), InputLen: req.InputLen, OutputLen: req.OutputLen,
		Client: clientID(r), Class: class, Trace: tr,
		Prefix:          req.prefixSegments(),
		CacheDisabled:   copts.disabled(),
		MinPrefixTokens: copts.MinPrefixTokens,
		SpecDisabled:    sopts.disabled(),
		SpecLookahead:   sopts.Lookahead,
	}
	if req.Stream {
		s.streamGeneration(ctx, w, r, greq, shape, opts)
		return
	}
	res, err := s.gw.Generate(ctx, greq)
	if err != nil {
		s.writeGatewayError(w, err)
		return
	}
	// Server-Timing carries the phase breakdown to clients (llmperf
	// renders p50/p99 per phase from it) without a second round-trip.
	if st := trace.FormatServerTiming(tr.PhaseSeconds()); st != "" {
		w.Header().Set("Server-Timing", st)
	}
	setReplicaHeaders(w, res)
	w.Header().Set("X-Prefix-Cache", prefixCacheValue(res))
	w.Header().Set("X-Speculation", speculationValue(res))
	if res.TraceID == "" {
		res.TraceID = tr.ID()
	}
	writeJSON(w, http.StatusOK, shape.buffered(res))
}

// requestDeadline applies the X-Request-Deadline header — the client's
// remaining time budget as a Go duration ("750ms", "2s") or a bare
// integer of milliseconds — to the request context. The cluster router
// refuses failover backoffs that would overrun it, and an expiry
// surfaces as a typed 504 deadline_exceeded. Without the header the
// request context passes through untouched.
func requestDeadline(r *http.Request) (context.Context, context.CancelFunc, error) {
	h := r.Header.Get("X-Request-Deadline")
	if h == "" {
		return r.Context(), func() {}, nil
	}
	d, err := time.ParseDuration(h)
	if err != nil {
		if ms, msErr := strconv.Atoi(h); msErr == nil {
			d, err = time.Duration(ms)*time.Millisecond, nil
		}
	}
	if err != nil || d <= 0 {
		return nil, nil, fmt.Errorf("X-Request-Deadline %q is not a positive duration (want e.g. \"750ms\", \"2s\", or integer milliseconds)", h)
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// setReplicaHeaders exposes cluster attribution on buffered responses so
// load generators can report per-replica distribution and failover/hedge
// counts without parsing bodies. Streamed responses carry the same
// fields in-band, in the terminal result event (headers are long
// committed by then).
func setReplicaHeaders(w http.ResponseWriter, res gateway.Result) {
	if res.Replica == "" {
		return
	}
	w.Header().Set("X-Replica-ID", res.Replica)
	w.Header().Set("X-Failovers", strconv.Itoa(res.Failovers))
	if res.Hedged {
		w.Header().Set("X-Hedged", "true")
	}
}

// prefixCacheValue renders the result's prefix-cache outcome in the
// X-Prefix-Cache header format, also carried in-band by the terminal SSE
// result event: "hit;tokens=N" or "miss".
func prefixCacheValue(res gateway.Result) string {
	if res.CachedTokens > 0 {
		return fmt.Sprintf("hit;tokens=%d", res.CachedTokens)
	}
	return "miss"
}

// speculationValue renders the result's speculative-decoding outcome in
// the X-Speculation header format: "on;proposed=N;accepted=N;passes=N"
// when any of the request's decode cycles ran draft-assisted, "off"
// otherwise (no draft configured, opted out, or suspended throughout).
func speculationValue(res gateway.Result) string {
	if res.SpecPasses == 0 {
		return "off"
	}
	return fmt.Sprintf("on;proposed=%d;accepted=%d;passes=%d",
		res.SpecProposed, res.SpecAccepted, res.SpecPasses)
}

// streamGeneration runs the request through the gateway with a token
// sink and relays chunks as SSE. The stream is started lazily at the
// first token so pre-token failures keep their proper status codes.
func (s *Server) streamGeneration(ctx context.Context, w http.ResponseWriter, r *http.Request, greq gateway.Request, shape responseShape, opts streamOptions) {
	feed := newTokenFeed()
	greq.Sink = feed.sink
	type outcome struct {
		res gateway.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := s.gw.Generate(ctx, greq)
		done <- outcome{res, err}
	}()

	var stream *sse
	// begin commits the 200 + SSE headers; flush relays buffered tokens.
	// Both report false only when the ResponseWriter cannot stream at all,
	// in which case the handler gives up (returning cancels r.Context(),
	// which unwinds the gateway side).
	begin := func() bool {
		if stream != nil {
			return true
		}
		st, err := startSSE(w)
		if err != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, err)
			return false
		}
		stream = st
		return true
	}
	flush := func() bool {
		for _, ev := range feed.drain() {
			if !begin() {
				return false
			}
			stream.event(shape.token(ev))
		}
		return true
	}
	finish := func(out outcome) {
		if out.err != nil {
			if !flush() {
				return
			}
			if stream == nil {
				// Failed before any token: a regular JSON error with the
				// mapped status (429/503/504/...) is still possible.
				s.writeGatewayError(w, out.err)
				return
			}
			// Mid-stream failure: the 200 is committed, so deliver the
			// uniform envelope as the terminal event and omit [DONE] —
			// clients treat a missing [DONE] as an aborted stream.
			_, code, _ := mapGatewayError(out.err)
			stream.event(errorBody{
				Error:   errorDetail{Code: code, Message: out.err.Error()},
				TraceID: w.Header().Get("X-Trace-ID"),
			})
			return
		}
		if !flush() || !begin() {
			return
		}
		for _, chunk := range shape.terminal(out.res, opts.IncludeUsage) {
			stream.event(chunk)
		}
		stream.done()
	}
	for {
		select {
		case <-feed.notify:
			if !flush() {
				return
			}
		case out := <-done:
			finish(out)
			return
		case <-ctx.Done():
			// The request context died: client disconnect or X-Request-
			// Deadline expiry. The gateway sees the same dead context —
			// queued jobs are abandoned immediately, in-flight sequences are
			// evicted (KV blocks freed) at the next iteration boundary. Wait
			// for that outcome so no goroutine outlives the handler; when
			// the client is still connected (deadline expiry, not
			// disconnect) deliver the typed 504 instead of dropping the
			// response on the floor.
			out := <-done
			if r.Context().Err() != nil {
				return // client gone: nothing left to write to
			}
			finish(out)
			return
		}
	}
}

// tokenWords synthesizes deterministic completion text. The serving
// layer prices scheduling over real or modeled kernels — it does not
// sample a vocabulary — so streamed content is placeholder prose, one
// word per token, stable across buffered and streamed responses.
var tokenWords = []string{
	"the", "decode", "step", "streams", "one", "token", "per",
	"iteration", "bounded", "by", "memory", "bandwidth",
}

// tokenText is the text of the i-th output token.
func tokenText(i int) string {
	w := tokenWords[i%len(tokenWords)]
	if i == 0 {
		return w
	}
	return " " + w
}

// completionText is the full text of an n-token completion; it equals
// the concatenation of the streamed per-token texts.
func completionText(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(tokenText(i))
	}
	return b.String()
}

// generateShape is /v1/generate's response forms: the buffered body is
// the gateway result exactly as before streaming existed, and chunks are
// the vendor-native token events.
type generateShape struct{}

// generateTokenEvent is one /v1/generate SSE chunk.
type generateTokenEvent struct {
	Object       string  `json:"object"` // "generate.token"
	Index        int     `json:"index"`
	Token        string  `json:"token"`
	VTimeSeconds float64 `json:"vtime_s"`
	Batch        int     `json:"batch"`
	Degraded     bool    `json:"degraded,omitempty"`
	Final        bool    `json:"final,omitempty"`
}

// generateResultEvent is /v1/generate's terminal SSE chunk: the buffered
// result tagged with an object type so stream parsers can switch on it.
// PrefixCache and Speculation are the in-band equivalents of the
// X-Prefix-Cache and X-Speculation headers — headers are long committed
// by then.
type generateResultEvent struct {
	Object      string `json:"object"` // "generate.result"
	PrefixCache string `json:"prefix_cache"`
	Speculation string `json:"speculation"`
	gateway.Result
}

func (generateShape) buffered(res gateway.Result) any { return res }

func (generateShape) token(ev gateway.TokenEvent) any {
	return generateTokenEvent{
		Object:       "generate.token",
		Index:        ev.Index,
		Token:        tokenText(ev.Index),
		VTimeSeconds: ev.VTime,
		Batch:        ev.Batch,
		Degraded:     ev.Degraded,
		Final:        ev.Final,
	}
}

func (generateShape) terminal(res gateway.Result, includeUsage bool) []any {
	out := []any{generateResultEvent{Object: "generate.result",
		PrefixCache: prefixCacheValue(res), Speculation: speculationValue(res),
		Result: res}}
	if includeUsage {
		out = append(out, map[string]any{
			"object": "generate.usage",
			"usage":  usageFor(res),
		})
	}
	return out
}
