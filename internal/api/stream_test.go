package api

// stream_test.go covers the HTTP streaming surface: the SSE wire format
// (data: framing, terminal [DONE]), lazy status commitment, explicit
// Accept negotiation with typed 406s, the typed invalid_stream_param
// 400s, and client-disconnect KV reclamation over a real connection.

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/gateway"
	"repro/internal/govern"
	"repro/internal/model"
	"repro/internal/tensor"
)

// slowCost prices decode steps at 5ms modeled time so Timescale-driven
// lanes take observable wall time per token.
type slowCost struct{}

func (slowCost) PrefillCost(batch, in int) (float64, error)     { return 0.002, nil }
func (slowCost) DecodeStepCost(batch, ctx int) (float64, error) { return 0.005, nil }

// streamServer is a fast stub-priced API server for wire-format tests.
func streamServer(t *testing.T) *httptest.Server {
	t.Helper()
	gw := gateway.New(gateway.Config{}, stubResolver(stubCost{}))
	srv := httptest.NewServer(NewServer(gw).Handler())
	t.Cleanup(srv.Close)
	return srv
}

// postAccept is doOn with an Accept header.
func postAccept(t *testing.T, srv *httptest.Server, path, body, accept string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, srv.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readSSE consumes a committed event stream, returning the decoded data
// payloads and whether the [DONE] terminator arrived.
func readSSE(t *testing.T, resp *http.Response) (chunks []json.RawMessage, done bool) {
	t.Helper()
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			t.Fatalf("non-SSE line in stream: %q", line)
		}
		if data == "[DONE]" {
			done = true
			continue
		}
		if !json.Valid([]byte(data)) {
			t.Fatalf("invalid JSON chunk: %q", data)
		}
		chunks = append(chunks, json.RawMessage(data))
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return chunks, done
}

func TestGenerateStreamSSEWireFormat(t *testing.T) {
	srv := streamServer(t)
	resp := postAccept(t, srv, "/v1/generate",
		`{"platform":"tiny-opt","in":16,"out":5,"stream":true}`, "text/event-stream")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	chunks, done := readSSE(t, resp)
	if !done {
		t.Error("stream did not end with [DONE]")
	}
	if len(chunks) != 6 { // 5 tokens + generate.result
		t.Fatalf("got %d chunks, want 6", len(chunks))
	}
	var text strings.Builder
	for i := 0; i < 5; i++ {
		var tok struct {
			Object string `json:"object"`
			Index  int    `json:"index"`
			Token  string `json:"token"`
			Batch  int    `json:"batch"`
			Final  bool   `json:"final"`
		}
		if err := json.Unmarshal(chunks[i], &tok); err != nil {
			t.Fatal(err)
		}
		if tok.Object != "generate.token" || tok.Index != i || tok.Batch < 1 {
			t.Fatalf("chunk %d malformed: %+v", i, tok)
		}
		if got, want := tok.Final, i == 4; got != want {
			t.Errorf("chunk %d: final=%v, want %v", i, got, want)
		}
		text.WriteString(tok.Token)
	}
	// Streamed deltas concatenate to exactly the buffered completion.
	if text.String() != completionText(5) {
		t.Errorf("streamed text %q != buffered %q", text.String(), completionText(5))
	}
	var res struct {
		Object    string `json:"object"`
		OutputLen int    `json:"output_len"`
		TraceID   string `json:"trace_id"`
	}
	if err := json.Unmarshal(chunks[5], &res); err != nil {
		t.Fatal(err)
	}
	if res.Object != "generate.result" || res.OutputLen != 5 || res.TraceID == "" {
		t.Errorf("terminal chunk malformed: %+v", res)
	}
}

// TestGenerateStreamFirstTokenEarly is the end-to-end acceptance check:
// over a real HTTP connection the first SSE chunk must arrive while the
// decode is still running, not after.
func TestGenerateStreamFirstTokenEarly(t *testing.T) {
	gw := gateway.New(gateway.Config{Timescale: 1}, stubResolver(slowCost{}))
	srv := httptest.NewServer(NewServer(gw).Handler())
	t.Cleanup(srv.Close)

	resp := postAccept(t, srv, "/v1/generate",
		`{"platform":"tiny-opt","in":16,"out":40,"stream":true}`, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var firstAt time.Time
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			firstAt = time.Now()
			break
		}
	}
	if firstAt.IsZero() {
		t.Fatal("no SSE chunk arrived")
	}
	for sc.Scan() {
	}
	// 39 remaining decode steps at 5ms modeled time separate the first
	// chunk from the end of the stream.
	if gap := time.Since(firstAt); gap < 50*time.Millisecond {
		t.Errorf("first chunk only %v before stream end; server buffered instead of streaming", gap)
	}
}

func TestStreamInvalidStreamParam(t *testing.T) {
	srv := streamServer(t)
	cases := []struct{ name, body string }{
		{"options without stream", `{"platform":"tiny-opt","stream_options":{"include_usage":true}}`},
		{"unknown option", `{"platform":"tiny-opt","stream":true,"stream_options":{"bogus":1}}`},
		{"wrong type", `{"platform":"tiny-opt","stream":true,"stream_options":5}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := doOn(t, srv, http.MethodPost, "/v1/generate", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			var e errorBody
			if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != CodeInvalidStreamParam {
				t.Errorf("error code %q, want %q (%s)", e.Error.Code, CodeInvalidStreamParam, body)
			}
		})
	}
}

func TestStreamAcceptNegotiation(t *testing.T) {
	srv := streamServer(t)
	cases := []struct {
		name, body, accept string
		wantStatus         int
	}{
		{"stream with json-only accept", `{"platform":"tiny-opt","stream":true}`,
			"application/json", http.StatusNotAcceptable},
		{"buffered with sse-only accept", `{"platform":"tiny-opt"}`,
			"text/event-stream", http.StatusNotAcceptable},
		{"buffered with unservable accept", `{"platform":"tiny-opt"}`,
			"text/html", http.StatusNotAcceptable},
		{"stream with wildcard", `{"platform":"tiny-opt","out":2,"stream":true}`,
			"*/*", http.StatusOK},
		{"stream with type wildcard", `{"platform":"tiny-opt","out":2,"stream":true}`,
			"text/*", http.StatusOK},
		{"buffered with json accept", `{"platform":"tiny-opt","out":2}`,
			"application/json; charset=utf-8", http.StatusOK},
		{"stream with both listed", `{"platform":"tiny-opt","out":2,"stream":true}`,
			"application/json, text/event-stream", http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postAccept(t, srv, "/v1/generate", tc.body, tc.accept)
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if tc.wantStatus == http.StatusNotAcceptable {
				var e errorBody
				if err := json.NewDecoder(resp.Body).Decode(&e); err != nil ||
					e.Error.Code != CodeNotAcceptable {
					t.Errorf("error code %q, want %q", e.Error.Code, CodeNotAcceptable)
				}
			}
		})
	}
}

// TestStreamDisconnectFreesKVOverHTTP closes a live streaming connection
// mid-decode and asserts every governed KV block returns to the pool —
// the end-to-end form of the scheduler-level disconnect test.
func TestStreamDisconnectFreesKVOverHTTP(t *testing.T) {
	m := model.Tiny(model.OPT)
	per := m.KVBytesPerTokenPerLayer(tensor.BF16) * int64(m.Layers) * 16
	gov := govern.New(govern.Config{
		Specs: func(string) (govern.PoolSpec, error) {
			return govern.PoolSpec{Model: m, DType: tensor.BF16, BlockSize: 16,
				BudgetBytes: per * 64}, nil
		},
	})
	gw := gateway.New(gateway.Config{Timescale: 1, Governor: gov}, stubResolver(slowCost{}))
	srv := httptest.NewServer(NewServer(gw).Handler())
	t.Cleanup(srv.Close)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/generate",
		strings.NewReader(`{"platform":"tiny-opt","in":32,"out":512,"stream":true}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	seen := 0
	for sc.Scan() && seen < 3 {
		if strings.HasPrefix(sc.Text(), "data: ") {
			seen++
		}
	}
	if seen < 3 {
		t.Fatal("stream ended before any tokens")
	}
	st := gov.Snapshot()
	if len(st.Lanes) != 1 || st.Lanes[0].FreeBlocks == st.Lanes[0].TotalBlocks {
		t.Fatalf("expected blocks held mid-stream, got %+v", st.Lanes)
	}
	cancel() // drop the connection mid-stream

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := gov.Snapshot()
		if len(st.Lanes) == 1 && st.Lanes[0].FreeBlocks == st.Lanes[0].TotalBlocks {
			return
		}
		time.Sleep(time.Millisecond)
	}
	st = gov.Snapshot()
	t.Fatalf("KV blocks not reclaimed after disconnect: %+v", st.Lanes)
}

func TestEndpointIndexListsStreamingEndpoints(t *testing.T) {
	srv := streamServer(t)
	resp, body := doOn(t, srv, http.MethodGet, "/v1/", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, want := range []string{"/v1/chat/completions", "/v1/completions", "stream"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("index missing %q", want)
		}
	}
}
