// Package autotune searches the CPU configuration space the paper
// characterizes by hand — active cores × memory mode × clustering mode ×
// batch size — for the best configuration of a given workload, optionally
// under latency constraints. It operationalizes Key Findings #2 and #3:
// given the paper's workload, the tuner must rediscover quad_flat at 48
// cores on its own.
package autotune

import (
	"fmt"
	"sort"

	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// Objective selects what the tuner maximizes or minimizes.
type Objective int

const (
	// MinE2ELatency minimizes end-to-end request latency.
	MinE2ELatency Objective = iota
	// MaxThroughput maximizes E2E tokens per second.
	MaxThroughput
	// MinTTFT minimizes time to first token.
	MinTTFT
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case MinE2ELatency:
		return "min-e2e-latency"
	case MaxThroughput:
		return "max-throughput"
	case MinTTFT:
		return "min-ttft"
	default:
		return fmt.Sprintf("objective(%d)", int(o))
	}
}

// Constraints bound acceptable configurations (0 disables a bound).
type Constraints struct {
	MaxTTFTSeconds float64
	MaxTPOTSeconds float64
}

func (c Constraints) admits(r metrics.Result) bool {
	if c.MaxTTFTSeconds > 0 && r.Latency.TTFT > c.MaxTTFTSeconds {
		return false
	}
	if c.MaxTPOTSeconds > 0 && r.Latency.TPOT > c.MaxTPOTSeconds {
		return false
	}
	return true
}

// Space is the search space. Zero-value fields get the paper's defaults.
type Space struct {
	CPU      hw.CPU
	Cores    []int
	MemModes []memsim.MemMode
	Clusters []memsim.ClusterMode
	Batches  []int
}

// DefaultSpace returns the paper's §IV-B configuration grid for the SPR
// CPU.
func DefaultSpace() Space {
	return Space{
		CPU:      hw.SPRMax9468,
		Cores:    []int{12, 24, 48, 96},
		MemModes: []memsim.MemMode{memsim.Flat, memsim.Cache},
		Clusters: []memsim.ClusterMode{memsim.Quad, memsim.SNC4},
		Batches:  []int{1, 2, 4, 8, 16, 32},
	}
}

// Candidate is one evaluated configuration.
type Candidate struct {
	Setup  memsim.Config
	Batch  int
	Result metrics.Result
	Score  float64 // objective value; lower is better (throughput negated)
}

// Name renders the candidate's configuration label.
func (c Candidate) Name() string {
	return fmt.Sprintf("%s/%dc/b%d", c.Setup.Name(), c.Setup.Cores, c.Batch)
}

// Request describes the workload to tune for.
type Request struct {
	Model               model.Config
	InputLen, OutputLen int
	Objective           Objective
	Constraints         Constraints
	// FixedBatch pins the batch size (0 searches the space's batches).
	FixedBatch int
}

// Tune evaluates the grid and returns all feasible candidates sorted best
// first. It returns an error only if simulation fails or nothing is
// feasible.
func Tune(space Space, req Request) ([]Candidate, error) {
	if err := req.Model.Validate(); err != nil {
		return nil, err
	}
	batches := space.Batches
	if req.FixedBatch > 0 {
		batches = []int{req.FixedBatch}
	}
	var out []Candidate
	for _, cores := range space.Cores {
		for _, mem := range space.MemModes {
			for _, cl := range space.Clusters {
				setup := memsim.Config{CPU: space.CPU, Cores: cores, Mem: mem, Cluster: cl}
				if setup.Validate() != nil {
					continue // e.g. HBM mode on an HBM-less CPU
				}
				for _, b := range batches {
					res, err := perfmodel.CPURun{
						Model: req.Model, Setup: setup, Batch: b,
						InputLen: req.InputLen, OutputLen: req.OutputLen,
						Weights: tensor.BF16,
					}.Simulate()
					if err != nil {
						// Infeasible placement (e.g. HBM-only overflow):
						// skip rather than fail the whole search.
						continue
					}
					if !req.Constraints.admits(res) {
						continue
					}
					out = append(out, Candidate{
						Setup: setup, Batch: b, Result: res,
						Score: score(req.Objective, res),
					})
				}
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("autotune: no feasible configuration for %s under %+v",
			req.Model.Name, req.Constraints)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Score < out[b].Score })
	return out, nil
}

func score(o Objective, r metrics.Result) float64 {
	switch o {
	case MaxThroughput:
		return -r.Throughput.E2E
	case MinTTFT:
		return r.Latency.TTFT
	default:
		return r.Latency.E2E
	}
}
