package autotune

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/model"
)

// TestRediscoversKeyFindings: for the paper's workload, the tuner must
// land on quad_flat with 48 cores (Key Findings #2 and #3) without being
// told.
func TestRediscoversKeyFindings(t *testing.T) {
	cands, err := Tune(DefaultSpace(), Request{
		Model: model.Llama13B, InputLen: 128, OutputLen: 32,
		Objective: MinE2ELatency, FixedBatch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	best := cands[0]
	if best.Setup.Name() != "quad_flat" || best.Setup.Cores != 48 {
		t.Errorf("tuner picked %s, paper says quad_flat/48c", best.Name())
	}
	// The grid has 4 cores × 2 mem × 2 cluster = 16 configurations.
	if len(cands) != 16 {
		t.Errorf("evaluated %d candidates, want 16", len(cands))
	}
	// Sorted best-first.
	for i := 1; i < len(cands); i++ {
		if cands[i].Score < cands[i-1].Score {
			t.Fatal("candidates not sorted")
		}
	}
}

// TestThroughputObjectivePrefersBigBatch: maximizing tokens/s must choose
// the largest batch.
func TestThroughputObjectivePrefersBigBatch(t *testing.T) {
	cands, err := Tune(DefaultSpace(), Request{
		Model: model.OPT13B, InputLen: 128, OutputLen: 32,
		Objective: MaxThroughput,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cands[0].Batch != 32 {
		t.Errorf("throughput tuner picked batch %d, want 32", cands[0].Batch)
	}
}

// TestConstraintsFilter: a tight TTFT budget must exclude large batches
// (their prefill is slower) while remaining feasible at batch 1.
func TestConstraintsFilter(t *testing.T) {
	unconstrained, err := Tune(DefaultSpace(), Request{
		Model: model.OPT13B, InputLen: 128, OutputLen: 32,
		Objective: MaxThroughput,
	})
	if err != nil {
		t.Fatal(err)
	}
	budget := unconstrained[0].Result.Latency.TTFT / 4
	constrained, err := Tune(DefaultSpace(), Request{
		Model: model.OPT13B, InputLen: 128, OutputLen: 32,
		Objective:   MaxThroughput,
		Constraints: Constraints{MaxTTFTSeconds: budget},
	})
	if err != nil {
		t.Fatal(err)
	}
	if constrained[0].Batch >= unconstrained[0].Batch {
		t.Errorf("TTFT budget should force a smaller batch (%d vs %d)",
			constrained[0].Batch, unconstrained[0].Batch)
	}
	for _, c := range constrained {
		if c.Result.Latency.TTFT > budget {
			t.Fatalf("infeasible candidate survived: %s", c.Name())
		}
	}
}

// TestInfeasibleErrors: an impossible constraint must return an error,
// not an empty slice.
func TestInfeasibleErrors(t *testing.T) {
	_, err := Tune(DefaultSpace(), Request{
		Model: model.OPT66B, InputLen: 128, OutputLen: 32,
		Objective:   MinTTFT,
		Constraints: Constraints{MaxTTFTSeconds: 1e-6},
	})
	if err == nil {
		t.Error("impossible constraint must error")
	}
}

// TestICLSpace: tuning the HBM-less ICL CPU must skip HBM-dependent modes
// rather than fail.
func TestICLSpace(t *testing.T) {
	space := Space{
		CPU:      hw.ICL8352Y,
		Cores:    []int{16, 32},
		MemModes: []memsim.MemMode{memsim.DDROnly, memsim.Flat}, // Flat invalid on ICL
		Clusters: []memsim.ClusterMode{memsim.Quad},
		Batches:  []int{1, 8},
	}
	cands, err := Tune(space, Request{
		Model: model.OPT6B7, InputLen: 128, OutputLen: 32, Objective: MinE2ELatency,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 cores × 1 valid mem × 1 cluster × 2 batches.
	if len(cands) != 4 {
		t.Errorf("ICL candidates = %d, want 4", len(cands))
	}
	if cands[0].Setup.Cores != 32 {
		t.Errorf("ICL best cores = %d, want 32", cands[0].Setup.Cores)
	}
}

func TestMinTTFTObjective(t *testing.T) {
	cands, err := Tune(DefaultSpace(), Request{
		Model: model.Llama7B, InputLen: 512, OutputLen: 32,
		Objective: MinTTFT, FixedBatch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Prefill is compute-bound at long inputs: more cores help; two
	// sockets' extra compute may or may not pay its UPI tax, but the best
	// candidate must not be the 12-core point.
	if cands[0].Setup.Cores == 12 {
		t.Error("min-TTFT should not pick the fewest cores")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Tune(DefaultSpace(), Request{Model: model.Config{Name: "bad"}}); err == nil {
		t.Error("invalid model must fail")
	}
	for _, o := range []Objective{MinE2ELatency, MaxThroughput, MinTTFT} {
		if o.String() == "" {
			t.Error("objective name empty")
		}
	}
}
