// Package cachesim is a trace-driven set-associative cache-hierarchy
// simulator. It grounds the repository's analytic cache-counter model
// (package counters) in an actual microarchitectural mechanism: address
// streams generated from the GEMM kernels' loop nests run through an
// SPR-like L1/L2/L3 hierarchy, demonstrating why cache blocking keeps
// activation reuse on-chip while streaming weights always miss — the
// behaviour behind the paper's LLC MPKI measurements (Figs 11/12/15).
package cachesim

import "fmt"

// Cache is one set-associative, write-allocate, LRU cache level.
type Cache struct {
	name      string
	sets      int
	ways      int
	lineShift uint
	// tags[set*ways+way]; lru holds per-line recency (higher = newer).
	tags  []uint64
	valid []bool
	lru   []uint64
	tick  uint64

	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache of sizeBytes with the given associativity and
// line size (both powers of two).
func NewCache(name string, sizeBytes, ways, lineBytes int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		return nil, fmt.Errorf("cachesim: non-positive geometry")
	}
	if lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("cachesim: line size %d not a power of two", lineBytes)
	}
	lines := sizeBytes / lineBytes
	if lines%ways != 0 || lines == 0 {
		return nil, fmt.Errorf("cachesim: %d lines not divisible by %d ways", lines, ways)
	}
	sets := lines / ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cachesim: %d sets not a power of two", sets)
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	return &Cache{
		name: name, sets: sets, ways: ways, lineShift: shift,
		tags:  make([]uint64, sets*ways),
		valid: make([]bool, sets*ways),
		lru:   make([]uint64, sets*ways),
	}, nil
}

// Access looks up addr, filling on miss (LRU eviction). It returns true
// on hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	c.tick++
	line := addr >> c.lineShift
	set := int(line) & (c.sets - 1)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			c.lru[base+w] = c.tick
			return true
		}
	}
	c.Misses++
	// Fill: pick an invalid or least-recently-used way.
	victim := base
	for w := 0; w < c.ways; w++ {
		if !c.valid[base+w] {
			victim = base + w
			break
		}
		if c.lru[base+w] < c.lru[victim] {
			victim = base + w
		}
	}
	c.tags[victim] = line
	c.valid[victim] = true
	c.lru[victim] = c.tick
	return false
}

// MissRate returns Misses/Accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Name returns the level's label.
func (c *Cache) Name() string { return c.name }

// Hierarchy is an inclusive multi-level cache: an access probes each
// level in order and fills every level it missed in.
type Hierarchy struct {
	Levels []*Cache
}

// SPRLike builds a scaled-down SPR-like hierarchy (48 KB 12-way L1,
// 2 MB 16-way L2, and an L3 sized by l3KB) with 64-byte lines. A reduced
// L3 keeps simulations of small kernels meaningful: the real 105 MB L3
// never evicts at test scale.
func SPRLike(l3KB int) (*Hierarchy, error) {
	l1, err := NewCache("L1D", 48<<10, 12, 64)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache("L2", 2<<20, 16, 64)
	if err != nil {
		return nil, err
	}
	l3, err := NewCache("L3", l3KB<<10, 16, 64)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{Levels: []*Cache{l1, l2, l3}}, nil
}

// Access probes the hierarchy; the returned level is the hit level index
// (len(Levels) means memory).
func (h *Hierarchy) Access(addr uint64) int {
	for i, c := range h.Levels {
		if c.Access(addr) {
			return i
		}
	}
	return len(h.Levels)
}

// LLCMisses returns the last level's miss count — main-memory traffic.
func (h *Hierarchy) LLCMisses() uint64 {
	return h.Levels[len(h.Levels)-1].Misses
}

// Report summarizes per-level miss rates.
func (h *Hierarchy) Report() string {
	s := ""
	for _, c := range h.Levels {
		s += fmt.Sprintf("%s: %d accesses, %d misses (%.1f%%)\n",
			c.name, c.Accesses, c.Misses, c.MissRate()*100)
	}
	return s
}
