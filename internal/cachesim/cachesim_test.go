package cachesim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCacheGeometryErrors(t *testing.T) {
	cases := []struct{ size, ways, line int }{
		{0, 4, 64},
		{1024, 0, 64},
		{1024, 4, 48},    // line not power of two
		{1024, 3, 64},    // lines not divisible by ways
		{64 * 24, 8, 64}, // sets not power of two (24/8 = 3)
	}
	for _, c := range cases {
		if _, err := NewCache("x", c.size, c.ways, c.line); err == nil {
			t.Errorf("geometry %+v must fail", c)
		}
	}
	if _, err := NewCache("ok", 32<<10, 8, 64); err != nil {
		t.Error(err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c, _ := NewCache("l1", 1<<10, 2, 64)
	if c.Access(0) {
		t.Error("cold access must miss")
	}
	if !c.Access(0) {
		t.Error("second access must hit")
	}
	if !c.Access(63) {
		t.Error("same line must hit")
	}
	if c.Access(64) {
		t.Error("next line must miss")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Errorf("stats wrong: %d/%d", c.Misses, c.Accesses)
	}
	if c.MissRate() != 0.5 {
		t.Errorf("miss rate = %v", c.MissRate())
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache with 2 sets of 64B lines (256 B total). Lines mapping
	// to set 0: addresses 0, 128, 256, ...
	c, _ := NewCache("l1", 256, 2, 64)
	c.Access(0)   // set 0, way A
	c.Access(128) // set 0, way B
	c.Access(0)   // refresh A
	c.Access(256) // evicts 128 (LRU)
	if !c.Access(0) {
		t.Error("0 must survive (recently used)")
	}
	if c.Access(128) {
		t.Error("128 must have been evicted")
	}
}

func TestEmptyMissRate(t *testing.T) {
	c, _ := NewCache("l1", 1<<10, 2, 64)
	if c.MissRate() != 0 {
		t.Error("empty cache miss rate must be 0")
	}
	if c.Name() != "l1" {
		t.Error("name wrong")
	}
}

func TestHierarchyInclusive(t *testing.T) {
	h, err := SPRLike(4096)
	if err != nil {
		t.Fatal(err)
	}
	if lvl := h.Access(0); lvl != 3 {
		t.Errorf("cold access hit level %d, want memory (3)", lvl)
	}
	if lvl := h.Access(0); lvl != 0 {
		t.Errorf("warm access hit level %d, want L1 (0)", lvl)
	}
	// Thrash L1 with a working set beyond 48 KB but within L2.
	for addr := uint64(0); addr < 256<<10; addr += 64 {
		h.Access(addr)
	}
	if lvl := h.Access(0); lvl != 1 {
		t.Errorf("L1-evicted line hit level %d, want L2 (1)", lvl)
	}
	rep := h.Report()
	for _, want := range []string{"L1D", "L2", "L3"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %s", want)
		}
	}
}

func TestInvariantHitsPlusMisses(t *testing.T) {
	f := func(addrs []uint16) bool {
		c, _ := NewCache("x", 1<<12, 4, 64)
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		return c.Misses <= c.Accesses && c.Accesses == uint64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBlockingReducesMisses is the package's headline result: on a GEMM
// whose working set exceeds L1/L2, the blocked loop nest produces far
// fewer LLC misses than the naive one — the mechanism that makes the
// paper's prefill GEMMs compute-bound rather than memory-bound.
func TestBlockingReducesMisses(t *testing.T) {
	const m, n, k = 192, 192, 192 // 3 × 192² × 4 B ≈ 442 KB ≫ L1
	naive, err := SPRLike(1024)
	if err != nil {
		t.Fatal(err)
	}
	TraceGemmNaive(m, n, k, func(a uint64) { naive.Access(a) })

	blocked, err := SPRLike(1024)
	if err != nil {
		t.Fatal(err)
	}
	TraceGemmBlocked(m, n, k, func(a uint64) { blocked.Access(a) })

	nL1 := naive.Levels[0].MissRate()
	bL1 := blocked.Levels[0].MissRate()
	if bL1 >= nL1 {
		t.Errorf("blocked L1 miss rate %.3f must beat naive %.3f", bL1, nL1)
	}
}

// TestWeightStreamAlwaysMisses: streaming weights touches each line once;
// the LLC miss count must equal the line count regardless of cache size.
func TestWeightStreamAlwaysMisses(t *testing.T) {
	h, err := SPRLike(8192)
	if err != nil {
		t.Fatal(err)
	}
	const bytes = 1 << 20
	TraceWeightStream(bytes, func(a uint64) { h.Access(a) })
	wantLines := uint64(bytes / 64)
	if h.LLCMisses() != wantLines {
		t.Errorf("LLC misses = %d, want %d (every line once)", h.LLCMisses(), wantLines)
	}
	// L1 hit rate is high (15/16 accesses within each line hit).
	if r := h.Levels[0].MissRate(); r < 0.05 || r > 0.08 {
		t.Errorf("stream L1 miss rate = %.3f, want ≈1/16", r)
	}
}

// TestTraceElementCounts: the generators must visit the analytically
// expected number of elements.
func TestTraceElementCounts(t *testing.T) {
	const m, n, k = 8, 12, 16
	var naive, blocked int
	TraceGemmNaive(m, n, k, func(uint64) { naive++ })
	TraceGemmBlocked(m, n, k, func(uint64) { blocked++ })
	wantNaive := m*n*k*2 + m*n // A+B per MAC, C once per output
	if naive != wantNaive {
		t.Errorf("naive trace = %d accesses, want %d", naive, wantNaive)
	}
	wantBlocked := m*k + m*n*k*2 // A once per (i,p) in block walk + B,C per MAC
	if blocked != wantBlocked {
		t.Errorf("blocked trace = %d accesses, want %d", blocked, wantBlocked)
	}
}
