package cachesim

// Address-trace generators for the GEMM loop nests of package kernels.
// Matrices are laid out contiguously: A at 0, B after A, C after B, four
// bytes per float32 element. The generators visit the same element order
// the corresponding kernels touch, so the simulated miss counts reflect
// the kernels' actual locality.

const elemBytes = 4

// matBases returns the base addresses of A (m×k), B (k×n), C (m×n).
func matBases(m, n, k int) (a, b, c uint64) {
	a = 0
	b = a + uint64(m*k*elemBytes)
	c = b + uint64(k*n*elemBytes)
	return
}

// TraceGemmNaive visits the i-j-p element stream of the naive kernel.
func TraceGemmNaive(m, n, k int, visit func(addr uint64)) {
	a, b, c := matBases(m, n, k)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			for p := 0; p < k; p++ {
				visit(a + uint64((i*k+p)*elemBytes))
				visit(b + uint64((p*n+j)*elemBytes))
			}
			visit(c + uint64((i*n+j)*elemBytes))
		}
	}
}

// Blocked-trace tile sizes mirror kernels.GemmBlocked.
const (
	traceBlockM = 64
	traceBlockN = 256
	traceBlockK = 256
)

// TraceGemmBlocked visits the element stream of the cache-blocked kernel
// (MC/KC/NC blocking with an i-p-j inner order).
func TraceGemmBlocked(m, n, k int, visit func(addr uint64)) {
	a, b, c := matBases(m, n, k)
	for i0 := 0; i0 < m; i0 += traceBlockM {
		iMax := min(i0+traceBlockM, m)
		for p0 := 0; p0 < k; p0 += traceBlockK {
			pMax := min(p0+traceBlockK, k)
			for j0 := 0; j0 < n; j0 += traceBlockN {
				jMax := min(j0+traceBlockN, n)
				for i := i0; i < iMax; i++ {
					for p := p0; p < pMax; p++ {
						visit(a + uint64((i*k+p)*elemBytes))
						for j := j0; j < jMax; j++ {
							visit(b + uint64((p*n+j)*elemBytes))
							visit(c + uint64((i*n+j)*elemBytes))
						}
					}
				}
			}
		}
	}
}

// TraceWeightStream visits a pure streaming read of `bytes` bytes — the
// access pattern of reading model weights once per decode step. Every
// line is touched exactly once, so it misses at every level regardless of
// cache size: the mechanism behind decode-phase LLC MPKI.
func TraceWeightStream(bytes int, visit func(addr uint64)) {
	const base = 1 << 40 // far from the GEMM arrays
	for off := 0; off < bytes; off += elemBytes {
		visit(base + uint64(off))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
