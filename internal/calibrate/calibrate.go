// Package calibrate makes the simulator's calibration auditable: the
// paper's quantitative anchors (the ratios DESIGN.md lists as shape
// targets) are evaluated against the current constants, and each
// reachable calibration knob can be swept to show how anchor error
// responds — evidence that the shipped constants sit near a loss minimum
// rather than being arbitrary.
package calibrate

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/offload"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// Env is the set of platform descriptions an evaluation runs against;
// knobs perturb copies of it.
type Env struct {
	SPR, ICL   hw.CPU
	A100, H100 hw.GPU
}

// DefaultEnv returns the shipped presets.
func DefaultEnv() Env {
	return Env{SPR: hw.SPRMax9468, ICL: hw.ICL8352Y, A100: hw.A100, H100: hw.H100}
}

func (e Env) sprSetup() memsim.Config {
	return memsim.Config{CPU: e.SPR, Cores: 48, Mem: memsim.Flat, Cluster: memsim.Quad}
}

func (e Env) cpuPoint(m model.Config, batch int) (float64, float64, error) {
	res, err := perfmodel.CPURun{Model: m, Setup: e.sprSetup(), Batch: batch,
		InputLen: 128, OutputLen: 32, Weights: tensor.BF16}.Simulate()
	return res.Latency.E2E, res.Throughput.E2E, err
}

// Anchor is one paper-reported value the calibration targets.
type Anchor struct {
	Name    string
	Target  float64
	Measure func(Env) (float64, error)
}

// Anchors returns the calibration targets (paper sources in the names).
func Anchors() []Anchor {
	return []Anchor{
		{
			Name: "fig17-a100-opt30b-thpt-ratio", Target: 12.7,
			Measure: func(e Env) (float64, error) {
				_, cpuT, err := e.cpuPoint(model.OPT30B, 1)
				if err != nil {
					return 0, err
				}
				res, err := offload.Run{GPU: e.A100, Host: e.SPR, Model: model.OPT30B,
					Batch: 1, InputLen: 128, OutputLen: 32, Weights: tensor.BF16}.Simulate()
				if err != nil {
					return 0, err
				}
				return cpuT / res.Throughput.E2E, nil
			},
		},
		{
			Name: "fig17-h100-opt66b-thpt-ratio", Target: 5.0,
			Measure: func(e Env) (float64, error) {
				_, cpuT, err := e.cpuPoint(model.OPT66B, 1)
				if err != nil {
					return 0, err
				}
				res, err := offload.Run{GPU: e.H100, Host: e.SPR, Model: model.OPT66B,
					Batch: 1, InputLen: 128, OutputLen: 32, Weights: tensor.BF16}.Simulate()
				if err != nil {
					return 0, err
				}
				return cpuT / res.Throughput.E2E, nil
			},
		},
		{
			Name: "fig17-h100-opt13b-latency-reduction", Target: 0.728,
			Measure: func(e Env) (float64, error) {
				cpuL, _, err := e.cpuPoint(model.OPT13B, 1)
				if err != nil {
					return 0, err
				}
				res, err := perfmodel.GPURun{GPU: e.H100, Model: model.OPT13B,
					Batch: 1, InputLen: 128, OutputLen: 32, Weights: tensor.BF16}.Simulate()
				if err != nil {
					return 0, err
				}
				return 1 - res.Latency.E2E/cpuL, nil
			},
		},
		{
			// The paper's prefill band is 6.3–9.1× averaged per model; at
			// batch 8 the compute-bound regime sits at the top of it.
			Name: "fig10-spr-icl-prefill-speedup-b8", Target: 9.1,
			Measure: func(e Env) (float64, error) {
				spr, err := perfmodel.CPURun{Model: model.OPT13B, Setup: e.sprSetup(),
					Batch: 8, InputLen: 128, OutputLen: 32, Weights: tensor.BF16}.Simulate()
				if err != nil {
					return 0, err
				}
				icl, err := perfmodel.CPURun{Model: model.OPT13B,
					Setup: memsim.Config{CPU: e.ICL, Cores: 32, Mem: memsim.DDROnly, Cluster: memsim.Quad},
					Batch: 8, InputLen: 128, OutputLen: 32, Weights: tensor.BF16}.Simulate()
				if err != nil {
					return 0, err
				}
				return icl.Latency.TTFT / spr.Latency.TTFT, nil
			},
		},
	}
}

// Loss returns the summed squared relative anchor error of an environment.
func Loss(e Env) (float64, error) {
	var loss float64
	for _, a := range Anchors() {
		got, err := a.Measure(e)
		if err != nil {
			return 0, fmt.Errorf("calibrate: %s: %w", a.Name, err)
		}
		rel := (got - a.Target) / a.Target
		loss += rel * rel
	}
	return loss, nil
}

// Knob is one calibration constant reachable through the platform
// structs, perturbed multiplicatively.
type Knob struct {
	Name  string
	Apply func(*Env, float64)
}

// Knobs returns the sweepable calibration constants.
func Knobs() []Knob {
	return []Knob{
		{"spr-amx-base", func(e *Env, f float64) { e.SPR.AMX.Base *= f }},
		{"spr-mem-eff", func(e *Env, f float64) { e.SPR.MemEff *= f }},
		{"a100-pipe-base", func(e *Env, f float64) { e.A100.PCIe.BasePipeEff *= f }},
		{"h100-pipe-base", func(e *Env, f float64) { e.H100.PCIe.BasePipeEff *= f }},
		{"h100-compute-base", func(e *Env, f float64) { e.H100.Compute.Base *= f }},
	}
}

// SweepPoint is one factor of a knob sweep with its loss.
type SweepPoint struct {
	Factor float64
	Loss   float64
}

// SweepKnob evaluates the loss with the knob scaled across [lo, hi] in
// `steps` points (the shipped setting is factor 1).
func SweepKnob(k Knob, lo, hi float64, steps int) ([]SweepPoint, error) {
	if steps < 2 || lo >= hi || lo <= 0 {
		return nil, fmt.Errorf("calibrate: bad sweep range [%g,%g]x%d", lo, hi, steps)
	}
	var out []SweepPoint
	for i := 0; i < steps; i++ {
		f := lo + (hi-lo)*float64(i)/float64(steps-1)
		env := DefaultEnv()
		k.Apply(&env, f)
		loss, err := Loss(env)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Factor: f, Loss: loss})
	}
	return out, nil
}
