package calibrate

import (
	"math"
	"testing"
)

// TestAnchorsNearTargets: with the shipped constants every anchor must
// measure within 15 % of its paper target.
func TestAnchorsNearTargets(t *testing.T) {
	env := DefaultEnv()
	for _, a := range Anchors() {
		got, err := a.Measure(env)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		rel := math.Abs(got-a.Target) / a.Target
		if rel > 0.15 {
			t.Errorf("%s: measured %.3g vs target %.3g (%.0f%% off)",
				a.Name, got, a.Target, rel*100)
		}
	}
}

// TestShippedCalibrationNearMinimum: for every knob, the shipped setting
// (factor 1) must not be far from the sweep's best point — the loss at
// factor 1 must be within a small margin of the minimum across the sweep.
func TestShippedCalibrationNearMinimum(t *testing.T) {
	base, err := Loss(DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range Knobs() {
		pts, err := SweepKnob(k, 0.6, 1.4, 9)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		best := pts[0].Loss
		for _, p := range pts {
			if p.Loss < best {
				best = p.Loss
			}
		}
		// The shipped loss must be within 0.08 absolute of the swept
		// minimum (anchors are shared, so one knob cannot fix another's
		// residual).
		if base > best+0.08 {
			t.Errorf("%s: shipped loss %.4f far above sweep minimum %.4f",
				k.Name, base, best)
		}
	}
}

// TestLossRespondsToKnobs: each knob must actually move the loss
// somewhere in its range — a dead knob means the audit is vacuous.
func TestLossRespondsToKnobs(t *testing.T) {
	base, err := Loss(DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range Knobs() {
		env := DefaultEnv()
		k.Apply(&env, 0.5)
		moved, err := Loss(env)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if math.Abs(moved-base) < 1e-6 {
			t.Errorf("%s: halving the knob did not move the loss", k.Name)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	k := Knobs()[0]
	if _, err := SweepKnob(k, 1, 1, 5); err == nil {
		t.Error("degenerate range must fail")
	}
	if _, err := SweepKnob(k, 0.5, 1.5, 1); err == nil {
		t.Error("single step must fail")
	}
	if _, err := SweepKnob(k, -1, 1, 5); err == nil {
		t.Error("negative range must fail")
	}
	pts, err := SweepKnob(k, 0.8, 1.2, 3)
	if err != nil || len(pts) != 3 {
		t.Fatalf("sweep: %v %d", err, len(pts))
	}
	if pts[0].Factor != 0.8 || pts[2].Factor != 1.2 {
		t.Error("sweep endpoints wrong")
	}
}
