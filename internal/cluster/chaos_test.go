package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/faults"
	"repro/internal/gateway"
	"repro/internal/govern"
)

// chaos_test.go is the cluster chaos suite: replica-scoped fault classes
// armed against a live router under concurrent load, run under -race in
// CI (make chaos-cluster). The headline invariant is exactly-one-outcome:
// every request resolves to a single result or a single typed error,
// with no token delivered twice and at most one final token, even while
// a replica dies mid-load; and the cluster recovers after disarm.

// typedOutcome reports whether err is one of the cluster's documented
// failure sentinels. Anything else is a contract violation under chaos.
func typedOutcome(err error) bool {
	switch {
	case err == nil,
		errors.Is(err, ErrNoHealthyReplicas),
		errors.Is(err, ErrReplicaDown),
		errors.Is(err, gateway.ErrQueueFull),
		errors.Is(err, gateway.ErrDraining),
		errors.Is(err, gateway.ErrWatchdogTimeout),
		errors.Is(err, gateway.ErrLanePanic),
		errors.Is(err, gateway.ErrLaneQuarantined),
		errors.Is(err, gateway.ErrLaneBroken),
		errors.Is(err, govern.ErrShedding),
		errors.Is(err, govern.ErrKVExhausted):
		return true
	}
	return false
}

// chaosSink asserts per-request delivery invariants from inside the
// token stream: strictly increasing indices and at most one final.
type chaosSink struct {
	mu     sync.Mutex
	last   int
	finals int
	bad    string
}

func newChaosSink() *chaosSink { return &chaosSink{last: -1} }

func (s *chaosSink) sink(ev gateway.TokenEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ev.Index <= s.last {
		s.bad = fmt.Sprintf("token index %d after %d (duplicate or reorder)", ev.Index, s.last)
	}
	s.last = ev.Index
	if ev.Final {
		s.finals++
	}
}

func TestClusterChaosReplicaDown(t *testing.T) {
	tc := newTestCluster(t, 3, func(cfg *Config) {
		cfg.RetryBudget = -1 // chaos hammers retries; budget policy has its own test
	})

	const clients = 64
	const perClient = 8
	var (
		wg       sync.WaitGroup
		started  = make(chan struct{})
		ok, fail atomic.Uint64
		mu       sync.Mutex
		bad      []string
	)
	report := func(format string, args ...any) {
		mu.Lock()
		bad = append(bad, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-started
			for i := 0; i < perClient; i++ {
				req := genReq()
				req.Client = fmt.Sprintf("chaos-%d", c)
				var sink *chaosSink
				if c%2 == 1 { // half the clients stream
					sink = newChaosSink()
					req.Sink = sink.sink
				}
				_, err := tc.r.Generate(context.Background(), req)
				if err == nil {
					ok.Add(1)
				} else {
					fail.Add(1)
				}
				if !typedOutcome(err) {
					report("client %d req %d: untyped error %v", c, i, err)
				}
				if sink != nil {
					sink.mu.Lock()
					switch {
					case sink.bad != "":
						report("client %d req %d: %s", c, i, sink.bad)
					case sink.finals > 1:
						report("client %d req %d: %d final tokens", c, i, sink.finals)
					case err == nil && sink.finals != 1:
						report("client %d req %d: success with %d finals", c, i, sink.finals)
					case err == nil && sink.last != req.OutputLen-1:
						report("client %d req %d: success delivered %d/%d tokens",
							c, i, sink.last+1, req.OutputLen)
					}
					sink.mu.Unlock()
				}
			}
		}(c)
	}

	// Kill r1 mid-load, hold the outage briefly, then disarm.
	close(started)
	time.Sleep(3 * time.Millisecond)
	mustArm(t, tc.inj, faults.Rule{Class: faults.ReplicaDown, Site: FaultSite, Lane: "r1"})
	time.Sleep(20 * time.Millisecond)
	tc.inj.Disarm()
	wg.Wait()

	for _, b := range bad {
		t.Error(b)
	}
	if got := ok.Load() + fail.Load(); got != clients*perClient {
		t.Fatalf("outcomes = %d, want exactly %d (one per request)", got, clients*perClient)
	}
	if ok.Load() == 0 {
		t.Fatal("no request succeeded under single-replica chaos; failover is not working")
	}

	// Recovery: once the fault is disarmed the dead replica is probed
	// back in and a full batch succeeds with no residual errors.
	waitFor(t, "all replicas healthy after disarm", func() bool {
		return tc.r.Snapshot().Healthy == 3
	})
	for i := 0; i < 3*clients/2; i++ {
		req := genReq()
		req.Client = "recovery"
		if _, err := tc.r.Generate(context.Background(), req); err != nil {
			t.Fatalf("post-recovery request %d failed: %v", i, err)
		}
	}
}

// TestClusterChaosReplicaFlap cycles r2 dead/alive while load runs,
// exercising ejection, half-open probing and readmission repeatedly.
func TestClusterChaosReplicaFlap(t *testing.T) {
	tc := newTestCluster(t, 3, func(cfg *Config) {
		cfg.RetryBudget = -1
	})
	mustArm(t, tc.inj, faults.Rule{
		Class: faults.ReplicaFlap, Site: FaultSite, Lane: "r2", DelayMillis: 10,
	})
	for i := 0; i < 200; i++ {
		req := genReq()
		req.Client = "flap"
		if _, err := tc.r.Generate(context.Background(), req); err != nil && !typedOutcome(err) {
			t.Fatalf("request %d: untyped error %v", i, err)
		}
	}
	tc.inj.Disarm()
	waitFor(t, "flapping replica settles healthy", func() bool {
		_, _ = tc.r.Generate(context.Background(), genReq())
		return tc.r.Snapshot().Healthy == 3
	})
}

// TestWrapSinkReplayFiltered is the property test for the cross-attempt
// exactly-once filter: however a failed attempt's delivery prefix
// overlaps the rescuing attempt's full replay, the caller sees each
// index exactly once, in order, with one final.
func TestWrapSinkReplayFiltered(t *testing.T) {
	prop := func(prefix, total uint8) bool {
		n := int(total%32) + 1 // rescuer delivers 0..n-1, final at n-1
		p := int(prefix) % n   // doomed attempt delivered 0..p-1 first
		st := &attemptState{}
		var got []int
		finals := 0
		sink := st.wrapSink(func(ev gateway.TokenEvent) {
			got = append(got, ev.Index)
			if ev.Final {
				finals++
			}
		})
		for i := 0; i < p; i++ { // attempt 1 dies after p tokens
			sink(gateway.TokenEvent{Index: i})
		}
		for i := 0; i < n; i++ { // attempt 2 replays from zero
			sink(gateway.TokenEvent{Index: i, Final: i == n-1})
		}
		if len(got) != n || finals != 1 {
			return false
		}
		for i, idx := range got {
			if idx != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestWrapSinkConcurrentAttempts races two attempts through the shared
// filter (run under -race): no index may reach the caller twice and the
// delivered sequence must be strictly increasing.
func TestWrapSinkConcurrentAttempts(t *testing.T) {
	for round := 0; round < 50; round++ {
		st := &attemptState{}
		var mu sync.Mutex
		last := -1
		dup := false
		sink := st.wrapSink(func(ev gateway.TokenEvent) {
			mu.Lock()
			if ev.Index <= last {
				dup = true
			}
			last = ev.Index
			mu.Unlock()
		})
		var wg sync.WaitGroup
		for a := 0; a < 2; a++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					sink(gateway.TokenEvent{Index: i})
				}
			}()
		}
		wg.Wait()
		if dup {
			t.Fatal("concurrent attempts delivered a duplicate or reordered index")
		}
	}
}
