// Package cluster is the fault-tolerant multi-replica layer over the
// serving gateway: N in-process gateway replicas — each with its own
// lanes, KV governor and supervision — behind a front router that keeps
// serving while individual replicas are slow, wedged, flapping or dead.
//
// The router owns four concerns:
//
//   - Health. An active checker polls every replica on a fixed interval:
//     it queries the fault injector's standing replica conditions
//     (replica-down, replica-slow, replica-flap at site "replica", the
//     rule's lane field naming the replica ID) and the replica's own
//     drain state. Passively, dispatch outcomes feed consecutive-error
//     counts and a latency EWMA; a replica that errors repeatedly or
//     whose EWMA drifts far above the healthiest replica's is ejected.
//     Ejected and recovered replicas re-enter through a half-open state:
//     one real request probes them before full readmission.
//
//   - Routing. Pluggable policies — round-robin, least-loaded (queue
//     depth plus KV-pool pressure), and SLO-class weighted — choose among
//     routable replicas only. With zero routable replicas submissions
//     fail fast with ErrNoHealthyReplicas (HTTP 503).
//
//   - Failover. A request that fails with a replica-level error before
//     any token has been streamed retries on the next replica, under a
//     per-client retry budget (token bucket) and exponential backoff with
//     jitter, never past the request's context deadline. Requests that
//     already streamed tokens are never re-dispatched — the mid-stream
//     failure terminates with the uniform error envelope exactly as the
//     streaming layer specifies — and a cross-attempt token filter keeps
//     delivery exactly-once even if an attempt raced its own failure.
//
//   - Hedging. Optionally, short non-streamed requests that have not
//     completed within a hedge delay are duplicated on a second replica;
//     the first outcome wins, the loser is cancelled, and the wasted
//     compute is accounted in cluster metrics.
//
// Every routing decision is observable: per-replica cluster_* metrics,
// route/failover/hedge trace spans on the request's trace, and a
// Snapshot served by the API at GET /v1/cluster.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/gateway"
	"repro/internal/govern"
	"repro/internal/metrics"
	"repro/internal/overload"
	"repro/internal/trace"
)

// Sentinel errors the API layer maps to HTTP statuses.
var (
	// ErrNoHealthyReplicas rejects a submission when every replica is
	// ejected, down or draining (HTTP 503).
	ErrNoHealthyReplicas = errors.New("cluster: no healthy replicas")
	// ErrReplicaDown marks a dispatch terminated because its replica was
	// forced down (fault injection or lifecycle) mid-flight; it is
	// retryable on another replica when nothing was streamed yet.
	ErrReplicaDown = errors.New("cluster: replica down")
	// ErrUnknownReplica rejects lifecycle operations naming no replica.
	ErrUnknownReplica = errors.New("cluster: unknown replica")
)

// FaultSite is the injection-site name the router polls for standing
// replica conditions; rules target one replica via their Lane field.
const FaultSite = "replica"

// Config tunes the router. Replicas and Factory are required.
type Config struct {
	// Replicas is the number of gateway replicas to build via Factory.
	Replicas int
	// Factory builds (or rebuilds, on restart) the gateway behind one
	// replica ID. Replica IDs are "r0".."rN-1".
	Factory func(id string) (*gateway.Gateway, error)
	// Weights are per-replica relative capacities for the weighted
	// policy (heterogeneous platforms: an AMX/HBM box outserves a DDR
	// one). Missing or non-positive entries default to 1.
	Weights []int
	// Policy selects the routing policy. Default RoundRobin.
	Policy Policy

	// Registry receives cluster instruments; a private registry is
	// created when nil. Replica gateways should share it.
	Registry *metrics.Registry
	// Tracer records route/failover/hedge spans; a default tracer over
	// Registry is created when nil.
	Tracer *trace.Tracer
	// Logger receives structured router events (ejections, readmissions,
	// failovers, lifecycle). Nil discards them.
	Logger *slog.Logger
	// Injector, when non-nil, is polled for standing replica outage
	// conditions (replica-down / replica-slow / replica-flap).
	Injector *faults.Injector

	// ProbeInterval is the active health-check period. Default 100ms.
	ProbeInterval time.Duration
	// EjectThreshold ejects a replica after this many consecutive
	// replica-level dispatch errors. Default 3.
	EjectThreshold int
	// EjectCooloff is how long a passively ejected replica waits before
	// half-open probing. Default 2s.
	EjectCooloff time.Duration
	// SlowFactor ejects a replica whose success-latency EWMA exceeds
	// SlowFactor times the best healthy replica's EWMA. Default 4.
	SlowFactor float64
	// MinSamples is the EWMA observation floor before latency-outlier
	// ejection may trigger. Default 8.
	MinSamples int

	// MaxFailovers bounds re-dispatch attempts per request beyond the
	// first. Default 2; negative disables failover.
	MaxFailovers int
	// RetryBudget is the per-client failover token bucket: at most this
	// many retries per RetryWindow, burstable to the same cap. Default 8;
	// negative disables the budget (unlimited retries within
	// MaxFailovers).
	RetryBudget int
	// RetryWindow is the budget refill window. Default 10s.
	RetryWindow time.Duration
	// BackoffBase and BackoffMax bound the exponential inter-attempt
	// backoff (full jitter). Defaults 5ms / 250ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// HedgeAfter, when positive, duplicates an eligible request on a
	// second replica if the first has not resolved within this delay.
	// 0 disables hedging.
	HedgeAfter time.Duration
	// HedgeMaxOut caps the output length of hedge-eligible requests:
	// hedging pays double compute, which only makes sense for short
	// prefill-dominated jobs. Default 4.
	HedgeMaxOut int
	// KVLoadWeight scales KV-pool utilization against queue depth in the
	// least-loaded policy's load score. Default 8.
	KVLoadWeight float64
	// Seed drives backoff jitter. Default 1.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Policy == nil {
		c.Policy = RoundRobin()
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	if c.Tracer == nil {
		c.Tracer = trace.New(trace.Config{SampleRate: 1, Registry: c.Registry})
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 100 * time.Millisecond
	}
	if c.EjectThreshold <= 0 {
		c.EjectThreshold = 3
	}
	if c.EjectCooloff <= 0 {
		c.EjectCooloff = 2 * time.Second
	}
	if c.SlowFactor <= 0 {
		c.SlowFactor = 4
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.MaxFailovers == 0 {
		c.MaxFailovers = 2
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 8
	}
	if c.RetryWindow <= 0 {
		c.RetryWindow = 10 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 5 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 250 * time.Millisecond
	}
	if c.HedgeMaxOut <= 0 {
		c.HedgeMaxOut = 4
	}
	if c.KVLoadWeight <= 0 {
		c.KVLoadWeight = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// health is one replica's routability state.
type health int

const (
	// healthy replicas take policy-routed traffic.
	healthy health = iota
	// ejected replicas took too many consecutive errors or drifted too
	// slow; they wait out a cooloff before half-open probing.
	ejected
	// halfOpen replicas accept exactly one trial request; its outcome
	// readmits or re-ejects.
	halfOpen
	// down replicas are forced dead by a standing fault or lifecycle
	// action; in-flight work is terminated.
	down
	// draining replicas are gracefully finishing in-flight work and take
	// no new requests.
	draining
)

func (h health) String() string {
	switch h {
	case healthy:
		return "healthy"
	case ejected:
		return "ejected"
	case halfOpen:
		return "half-open"
	case down:
		return "down"
	case draining:
		return "draining"
	default:
		return fmt.Sprintf("health(%d)", int(h))
	}
}

// replica is one gateway instance plus the router's view of its health.
type replica struct {
	id     string
	weight int

	mu           sync.Mutex
	gw           *gateway.Gateway
	state        health
	downCh       chan struct{} // closed while forced down
	consec       int           // consecutive replica-level errors
	ewmaMs       float64       // success-latency EWMA
	samples      int
	ejectedUntil time.Time
	trial        bool // half-open trial request in flight

	slowNs atomic.Int64 // standing replica-slow delay, set by the checker

	served atomic.Uint64
	failed atomic.Uint64
}

// gateway returns the replica's current gateway (swapped on restart).
func (r *replica) gateway() *gateway.Gateway {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gw
}

// downChan returns the channel closed while the replica is forced down.
func (r *replica) downChan() chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.downCh
}

func (r *replica) stateNow() health {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// Router fronts the replica set. It satisfies the API layer's Backend
// contract, so one llmperfd process serves either a bare gateway or a
// cluster through the same HTTP surface.
type Router struct {
	cfg      Config
	log      *slog.Logger
	inj      *faults.Injector
	m        instruments
	replicas []*replica

	rrNext atomic.Uint64 // shared monotonic cursor for cursor-bound policies

	rngMu sync.Mutex
	rng   *rand.Rand

	budgetMu sync.Mutex
	budgets  map[string]*retryBudget

	drainFlag atomic.Bool
	done      chan struct{}
	stopOnce  sync.Once
	wg        sync.WaitGroup
}

// New builds cfg.Replicas gateways through cfg.Factory and starts the
// router's health checker.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if cfg.Replicas < 1 {
		return nil, errors.New("cluster: need at least one replica")
	}
	if cfg.Factory == nil {
		return nil, errors.New("cluster: config needs a replica Factory")
	}
	r := &Router{
		cfg:     cfg,
		log:     cfg.Logger,
		inj:     cfg.Injector,
		m:       newInstruments(cfg.Registry),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		budgets: map[string]*retryBudget{},
		done:    make(chan struct{}),
	}
	for i := 0; i < cfg.Replicas; i++ {
		id := fmt.Sprintf("r%d", i)
		gw, err := cfg.Factory(id)
		if err != nil {
			return nil, fmt.Errorf("cluster: building replica %s: %w", id, err)
		}
		w := 1
		if i < len(cfg.Weights) && cfg.Weights[i] > 0 {
			w = cfg.Weights[i]
		}
		r.replicas = append(r.replicas, &replica{
			id: id, weight: w, gw: gw, downCh: make(chan struct{}),
		})
	}
	if b, ok := cfg.Policy.(cursorBinder); ok {
		b.bindCursor(func() uint64 { return r.rrNext.Add(1) - 1 })
	}
	r.m.replicas.Set(int64(len(r.replicas)))
	r.m.healthyReplicas.Set(int64(len(r.replicas)))
	r.wg.Add(1)
	go r.healthLoop()
	return r, nil
}

// Replica IDs in index order ("r0".."rN-1").
func (r *Router) ReplicaIDs() []string {
	ids := make([]string, len(r.replicas))
	for i, rep := range r.replicas {
		ids[i] = rep.id
	}
	return ids
}

func (r *Router) replicaByID(id string) *replica {
	for _, rep := range r.replicas {
		if rep.id == id {
			return rep
		}
	}
	return nil
}

// Backend surface shared with gateway.Gateway -------------------------

// Registry exposes the shared metric registry (for /metrics).
func (r *Router) Registry() *metrics.Registry { return r.cfg.Registry }

// Tracer exposes the shared tracer (for /v1/traces).
func (r *Router) Tracer() *trace.Tracer { return r.cfg.Tracer }

// Logger exposes the router's structured logger.
func (r *Router) Logger() *slog.Logger { return r.log }

// Injector exposes the shared fault injector (for /v1/admin/faults).
func (r *Router) Injector() *faults.Injector { return r.inj }

// Governor returns nil: per-replica KV governance is reported per
// replica in Snapshot (GET /v1/cluster) rather than as one pool.
func (r *Router) Governor() *govern.Governor { return nil }

// CacheSnapshot aggregates prefix-cache state across replicas (GET
// /v1/cache under a cluster backend). Lanes are namespaced "rN/lane" so
// per-replica trees stay distinguishable; Enabled reports whether any
// replica caches.
func (r *Router) CacheSnapshot() govern.CacheStatus {
	var st govern.CacheStatus
	for _, rep := range r.replicas {
		cs := rep.gateway().CacheSnapshot()
		if !cs.Enabled {
			continue
		}
		st.Enabled = true
		st.Nodes += cs.Nodes
		st.RetainedBlocks += cs.RetainedBlocks
		st.Hits += cs.Hits
		st.Misses += cs.Misses
		st.HitTokens += cs.HitTokens
		st.Evictions += cs.Evictions
		for _, lane := range cs.Lanes {
			lane.Lane = rep.id + "/" + lane.Lane
			st.Lanes = append(st.Lanes, lane)
		}
	}
	if n := st.Hits + st.Misses; n > 0 {
		st.HitRate = float64(st.Hits) / float64(n)
	}
	return st
}

// FlushCache flushes every replica's prefix cache and returns the total
// number of KV blocks released.
func (r *Router) FlushCache() int {
	released := 0
	for _, rep := range r.replicas {
		released += rep.gateway().FlushCache()
	}
	return released
}

// Draining reports whether Shutdown has begun.
func (r *Router) Draining() bool { return r.drainFlag.Load() }

// MemoryPressure reports whether the cluster has no shed-free capacity:
// every routable replica is above its KV high watermark (or nothing is
// routable at all). A single pressured replica does not flip cluster
// readiness — the router routes around it.
func (r *Router) MemoryPressure() bool {
	routable, shedding := 0, 0
	for _, rep := range r.replicas {
		st := rep.stateNow()
		if st != healthy && st != halfOpen {
			continue
		}
		routable++
		if rep.gateway().MemoryPressure() {
			shedding++
		}
	}
	return routable == 0 || shedding == routable
}

// Saturated reports whether the cluster has no unsaturated capacity:
// every routable replica's admission queue has been pinned at capacity
// past its saturation window (or nothing is routable). One saturated
// replica does not flip cluster readiness — the router routes around it.
func (r *Router) Saturated() bool {
	routable, saturated := 0, 0
	for _, rep := range r.replicas {
		st := rep.stateNow()
		if st != healthy && st != halfOpen {
			continue
		}
		routable++
		if rep.gateway().Saturated() {
			saturated++
		}
	}
	return routable == 0 || saturated == routable
}

// BrownoutLevel is the cluster's effective degradation level: the
// minimum across routable replicas, because the policies steer new work
// toward the least-degraded replica — the X-Brownout-Level a client
// sees should describe the service it will actually get. With nothing
// routable it reports the worst replica instead.
func (r *Router) BrownoutLevel() int {
	min, max, routable := 0, 0, 0
	for _, rep := range r.replicas {
		lvl := rep.gateway().BrownoutLevel()
		if lvl > max {
			max = lvl
		}
		st := rep.stateNow()
		if st != healthy && st != halfOpen {
			continue
		}
		if routable == 0 || lvl < min {
			min = lvl
		}
		routable++
	}
	if routable == 0 {
		return max
	}
	return min
}

// OverloadStatus aggregates overload control across replicas (GET
// /v1/overload under a cluster backend): the worst brownout level and
// pressure, summed concurrency capacity and per-class counters. The
// per-replica breakdown lives at GET /v1/cluster.
func (r *Router) OverloadStatus() overload.Status {
	var agg overload.Status
	for _, rep := range r.replicas {
		st := rep.gateway().OverloadStatus()
		if !st.Enabled {
			continue
		}
		if !agg.Enabled {
			agg = st
			continue
		}
		if st.BrownoutLevel > agg.BrownoutLevel {
			agg.BrownoutLevel = st.BrownoutLevel
			agg.Actions = st.Actions
		}
		if st.Pressure > agg.Pressure {
			agg.Pressure = st.Pressure
		}
		agg.Limit += st.Limit
		agg.Inflight += st.Inflight
		agg.BrownoutSteps += st.BrownoutSteps
		for i := range agg.Classes {
			if i >= len(st.Classes) {
				break
			}
			agg.Classes[i].Admitted += st.Classes[i].Admitted
			agg.Classes[i].Limited += st.Classes[i].Limited
			agg.Classes[i].Shed += st.Classes[i].Shed
			if st.Classes[i].TTFTEWMAMs > agg.Classes[i].TTFTEWMAMs {
				agg.Classes[i].TTFTEWMAMs = st.Classes[i].TTFTEWMAMs
			}
		}
	}
	return agg
}

// RetryAfterSeconds aggregates the backpressure hint across replicas:
// the soonest any routable replica expects capacity.
func (r *Router) RetryAfterSeconds() int {
	best := 0
	for _, rep := range r.replicas {
		if st := rep.stateNow(); st != healthy && st != halfOpen {
			continue
		}
		if s := rep.gateway().RetryAfterSeconds(); best == 0 || s < best {
			best = s
		}
	}
	if best == 0 {
		best = 5 // nothing routable: suggest a modest cool-off
	}
	return best
}

// Do runs a unary job on a routable replica, failing over once if the
// first replica fails at the replica level mid-job.
func (r *Router) Do(ctx context.Context, fn func(context.Context) error) error {
	if r.Draining() {
		return gateway.ErrDraining
	}
	var lastErr error
	tried := map[string]bool{}
	for attempt := 0; attempt < 2; attempt++ {
		rep, err := r.pickFor(nil, tried)
		if err != nil {
			if lastErr != nil {
				return lastErr
			}
			return err
		}
		tried[rep.id] = true
		err = r.runOnReplica(ctx, rep, func(dctx context.Context) error {
			return rep.gateway().Do(dctx, fn)
		})
		if err == nil || !retryable(err) || ctx.Err() != nil {
			return err
		}
		lastErr = err
	}
	return lastErr
}

// runOnReplica executes fn under the replica's forced-down watch: if the
// replica is forced down mid-call the work is cancelled and the error is
// rewritten to ErrReplicaDown so callers can fail over.
func (r *Router) runOnReplica(ctx context.Context, rep *replica, fn func(context.Context) error) error {
	if d := time.Duration(rep.slowNs.Load()); d > 0 {
		select { // standing replica-slow condition
		case <-time.After(d):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	downc := rep.downChan()
	go func() {
		select {
		case <-downc:
			cancel()
		case <-dctx.Done():
		}
	}()
	err := fn(dctx)
	if err != nil && ctx.Err() == nil {
		select {
		case <-downc:
			err = fmt.Errorf("%w: %s: %v", ErrReplicaDown, rep.id, err)
		default:
		}
	}
	return err
}

// Shutdown stops the health checker and drains every replica.
func (r *Router) Shutdown(ctx context.Context) error {
	r.drainFlag.Store(true)
	r.stopOnce.Do(func() { close(r.done) })
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, rep := range r.replicas {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			if err := rep.gateway().Shutdown(ctx); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("cluster: draining %s: %w", rep.id, err)
				}
				mu.Unlock()
			}
		}(rep)
	}
	wg.Wait()
	r.wg.Wait()
	return firstErr
}

// Lifecycle -----------------------------------------------------------

// DrainReplica gracefully removes one replica from rotation: it stops
// receiving traffic immediately and finishes in-flight work within ctx.
func (r *Router) DrainReplica(ctx context.Context, id string) error {
	rep := r.replicaByID(id)
	if rep == nil {
		return fmt.Errorf("%w: %q", ErrUnknownReplica, id)
	}
	rep.mu.Lock()
	rep.state = draining
	gw := rep.gw
	rep.mu.Unlock()
	r.log.Info("cluster: draining replica", "replica", id)
	r.refreshHealthyGauge()
	return gw.Shutdown(ctx)
}

// RestartReplica drains one replica, rebuilds its gateway through the
// factory, and readmits it healthy with a clean slate.
func (r *Router) RestartReplica(ctx context.Context, id string) error {
	rep := r.replicaByID(id)
	if rep == nil {
		return fmt.Errorf("%w: %q", ErrUnknownReplica, id)
	}
	if err := r.DrainReplica(ctx, id); err != nil {
		return err
	}
	gw, err := r.cfg.Factory(id)
	if err != nil {
		return fmt.Errorf("cluster: rebuilding replica %s: %w", id, err)
	}
	rep.mu.Lock()
	rep.gw = gw
	rep.state = healthy
	rep.consec, rep.ewmaMs, rep.samples = 0, 0, 0
	rep.trial = false
	if rep.downCh == nil || isClosed(rep.downCh) {
		rep.downCh = make(chan struct{})
	}
	rep.mu.Unlock()
	r.m.restarts.Inc()
	r.log.Info("cluster: restarted replica", "replica", id)
	r.refreshHealthyGauge()
	return nil
}

// RollingRestart restarts every replica in sequence, waiting for each to
// drain and rejoin before moving on — the cluster keeps serving from the
// remaining replicas throughout.
func (r *Router) RollingRestart(ctx context.Context) error {
	for _, rep := range r.replicas {
		if err := r.RestartReplica(ctx, rep.id); err != nil {
			return err
		}
	}
	return nil
}

func isClosed(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// Snapshot ------------------------------------------------------------

// ReplicaStatus is one replica's observable state (GET /v1/cluster).
type ReplicaStatus struct {
	ID                string  `json:"id"`
	Weight            int     `json:"weight"`
	State             string  `json:"state"`
	QueueDepth        int     `json:"queue_depth"`
	EWMAMillis        float64 `json:"latency_ewma_ms"`
	ConsecutiveErrors int     `json:"consecutive_errors,omitempty"`
	Served            uint64  `json:"served"`
	Failed            uint64  `json:"failed,omitempty"`
	KVUtilization     float64 `json:"kv_utilization,omitempty"`
	Shedding          bool    `json:"shedding,omitempty"`
	// BrownoutLevel is the replica's degradation-ladder rung (0 nominal);
	// routing policies steer interactive traffic away from non-zero rungs.
	BrownoutLevel int `json:"brownout_level,omitempty"`
	// Prefix-cache effectiveness on this replica, omitted while caching
	// is disabled. The full per-lane breakdown lives at GET /v1/cache.
	CacheHitRate        float64 `json:"cache_hit_rate,omitempty"`
	CacheRetainedBlocks int     `json:"cache_retained_blocks,omitempty"`
	CacheHitTokens      uint64  `json:"cache_hit_tokens,omitempty"`
}

// Status is the router's observable state (GET /v1/cluster).
type Status struct {
	Policy               string          `json:"policy"`
	Healthy              int             `json:"healthy"`
	Replicas             []ReplicaStatus `json:"replicas"`
	Failovers            uint64          `json:"failovers"`
	RetryBudgetExhausted uint64          `json:"retry_budget_exhausted"`
	Hedges               uint64          `json:"hedges"`
	HedgeWins            uint64          `json:"hedge_wins"`
	Ejections            uint64          `json:"ejections"`
	Readmissions         uint64          `json:"readmissions"`
}

// Snapshot returns the current cluster state.
func (r *Router) Snapshot() Status {
	st := Status{
		Policy:               r.cfg.Policy.Name(),
		Failovers:            r.m.failovers.Value(),
		RetryBudgetExhausted: r.m.budgetExhausted.Value(),
		Hedges:               r.m.hedges.Value(),
		HedgeWins:            r.m.hedgeWins.Value(),
		Ejections:            r.m.ejections.Value(),
		Readmissions:         r.m.readmissions.Value(),
	}
	for _, rep := range r.replicas {
		rep.mu.Lock()
		gw, state := rep.gw, rep.state
		rs := ReplicaStatus{
			ID: rep.id, Weight: rep.weight, State: state.String(),
			EWMAMillis:        rep.ewmaMs,
			ConsecutiveErrors: rep.consec,
			Served:            rep.served.Load(),
			Failed:            rep.failed.Load(),
		}
		rep.mu.Unlock()
		rs.QueueDepth = gw.QueueDepth()
		rs.KVUtilization = kvUtilization(gw)
		rs.Shedding = gw.MemoryPressure()
		rs.BrownoutLevel = gw.BrownoutLevel()
		if cs := gw.CacheSnapshot(); cs.Enabled {
			rs.CacheHitRate = cs.HitRate
			rs.CacheRetainedBlocks = cs.RetainedBlocks
			rs.CacheHitTokens = cs.HitTokens
		}
		if state == healthy || state == halfOpen {
			st.Healthy++
		}
		st.Replicas = append(st.Replicas, rs)
	}
	return st
}

// kvUtilization is the max lane KV-pool utilization on one gateway, 0
// without a governor.
func kvUtilization(gw *gateway.Gateway) float64 {
	gov := gw.Governor()
	if gov == nil {
		return 0
	}
	var max float64
	for _, lane := range gov.Snapshot().Lanes {
		if lane.Utilization > max {
			max = lane.Utilization
		}
	}
	return max
}
