package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/gateway"
	"repro/internal/metrics"
	"repro/internal/serve"
)

// fakeCost prices iterations with fixed constants (modeled seconds).
type fakeCost struct{ pre, dec float64 }

func (f fakeCost) PrefillCost(batch, in int) (float64, error)     { return f.pre, nil }
func (f fakeCost) DecodeStepCost(batch, ctx int) (float64, error) { return f.dec, nil }

// latchCost blocks every prefill on a gate, letting a test wedge one
// replica's lane while others serve. It signals entered when a prefill
// begins, so tests know the lane is occupied rather than idle.
type latchCost struct {
	fakeCost
	entered chan struct{}
	gate    chan struct{}
}

func (l *latchCost) PrefillCost(batch, in int) (float64, error) {
	select {
	case l.entered <- struct{}{}:
	default:
	}
	<-l.gate
	return l.fakeCost.PrefillCost(batch, in)
}

func fastResolver() gateway.Resolver {
	return func(string) (serve.CostModel, error) {
		return fakeCost{pre: 0.001, dec: 0.0001}, nil
	}
}

// testCluster bundles a router with the knobs tests flip.
type testCluster struct {
	r   *Router
	inj *faults.Injector
	reg *metrics.Registry
}

func newTestCluster(t *testing.T, n int, mutate func(*Config)) *testCluster {
	t.Helper()
	reg := metrics.NewRegistry()
	inj := faults.New(1)
	inj.Instrument(reg)
	cfg := Config{
		Replicas: n,
		Factory: func(id string) (*gateway.Gateway, error) {
			return gateway.New(gateway.Config{
				MaxQueue: 256, MaxBatch: 8, Workers: 2, Registry: reg, Injector: inj,
			}, fastResolver()), nil
		},
		Registry:      reg,
		Injector:      inj,
		ProbeInterval: 5 * time.Millisecond,
		EjectCooloff:  50 * time.Millisecond,
		RetryWindow:   time.Minute,
		BackoffBase:   time.Millisecond,
		BackoffMax:    5 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = r.Shutdown(ctx)
	})
	return &testCluster{r: r, inj: inj, reg: reg}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func genReq() gateway.Request {
	return gateway.Request{Lane: "spr/OPT-13B", InputLen: 64, OutputLen: 4}
}

func TestRouterServesAndAttributesReplica(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	seen := map[string]int{}
	for i := 0; i < 9; i++ {
		res, err := tc.r.Generate(context.Background(), genReq())
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if res.Replica == "" {
			t.Fatalf("request %d: no replica attribution", i)
		}
		seen[res.Replica]++
	}
	// Round-robin over three healthy replicas: an even 3/3/3 spread.
	for _, id := range []string{"r0", "r1", "r2"} {
		if seen[id] != 3 {
			t.Fatalf("round-robin spread %v, want 3 each", seen)
		}
	}
}

func TestAllUnhealthyRejectsWithNoHealthyReplicas(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	mustArm(t, tc.inj,
		faults.Rule{Class: faults.ReplicaDown, Site: FaultSite, Lane: "r0"},
		faults.Rule{Class: faults.ReplicaDown, Site: FaultSite, Lane: "r1"},
	)
	waitFor(t, "both replicas down", func() bool { return tc.r.Snapshot().Healthy == 0 })
	_, err := tc.r.Generate(context.Background(), genReq())
	if !errors.Is(err, ErrNoHealthyReplicas) {
		t.Fatalf("err = %v, want ErrNoHealthyReplicas", err)
	}
	// Readiness follows: an all-down cluster reports memory-pressure-like
	// unavailability and still offers a Retry-After hint.
	if !tc.r.MemoryPressure() {
		t.Error("all-down cluster should report no shed-free capacity")
	}
	if tc.r.RetryAfterSeconds() < 1 {
		t.Error("all-down cluster must still hint a retry delay")
	}
}

func mustArm(t *testing.T, inj *faults.Injector, rules ...faults.Rule) {
	t.Helper()
	if err := inj.Arm(rules...); err != nil {
		t.Fatal(err)
	}
}

// TestFailoverRescuesInterruptedRequest is the acceptance scenario: a
// non-streamed request caught on a replica when it dies succeeds via
// failover, within its retry budget, and reports the rescue.
func TestFailoverRescuesInterruptedRequest(t *testing.T) {
	lc := &latchCost{
		fakeCost: fakeCost{pre: 0.001, dec: 0.0001},
		entered:  make(chan struct{}, 4),
		gate:     make(chan struct{}),
	}
	gate := lc.gate
	tc := newTestCluster(t, 2, func(cfg *Config) {
		reg, inj := cfg.Registry, cfg.Injector
		cfg.Factory = func(id string) (*gateway.Gateway, error) {
			resolve := fastResolver()
			if id == "r0" {
				// r0's lane wedges in prefill until the gate opens, so work
				// lands in its queue and stays there. MaxBatch 1 keeps the
				// victim out of the decoy's batch: it must queue behind it.
				resolve = func(string) (serve.CostModel, error) { return lc, nil }
			}
			return gateway.New(gateway.Config{
				MaxQueue: 256, MaxBatch: 1, Workers: 1, Registry: reg, Injector: inj,
			}, resolve), nil
		}
	})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	defer openGate()

	// Wedge r0: a decoy submitted directly to its gateway blocks the lane.
	decoyDone := make(chan struct{})
	go func() {
		defer close(decoyDone)
		_, _ = tc.r.replicas[0].gateway().Generate(context.Background(), genReq())
	}()
	select {
	case <-lc.entered: // decoy is inside prefill, holding r0's only lane
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for the decoy to occupy r0's lane")
	}

	// The victim routes to r0 (fresh round-robin cursor) and queues
	// behind the wedged decoy.
	type outcome struct {
		res gateway.Result
		err error
	}
	victim := make(chan outcome, 1)
	go func() {
		res, err := tc.r.Generate(context.Background(), genReq())
		victim <- outcome{res, err}
	}()
	waitFor(t, "victim queued on r0", func() bool {
		return tc.r.replicas[0].gateway().QueueDepth() >= 1
	})

	// Kill r0. The health loop marks it down and cancels in-flight work;
	// the victim — zero tokens streamed — retries on r1 and succeeds.
	mustArm(t, tc.inj, faults.Rule{Class: faults.ReplicaDown, Site: FaultSite, Lane: "r0"})
	out := <-victim
	if out.err != nil {
		t.Fatalf("victim should be rescued by failover, got %v", out.err)
	}
	if out.res.Replica != "r1" {
		t.Fatalf("victim served by %q, want r1", out.res.Replica)
	}
	if out.res.Failovers < 1 {
		t.Fatalf("victim reports %d failovers, want >= 1", out.res.Failovers)
	}
	if got := tc.r.Snapshot().Failovers; got < 1 {
		t.Fatalf("cluster failover counter = %d, want >= 1", got)
	}
	// Release the wedged decoy so the test does not ride out the lane
	// watchdog before the router's cleanup drain.
	openGate()
	<-decoyDone
}

func TestReplicaRecoversThroughHalfOpen(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	mustArm(t, tc.inj, faults.Rule{Class: faults.ReplicaDown, Site: FaultSite, Lane: "r0"})
	waitFor(t, "r0 down", func() bool {
		return tc.r.replicas[0].stateNow() == down
	})
	tc.inj.Disarm()
	waitFor(t, "r0 half-open after outage clears", func() bool {
		return tc.r.replicas[0].stateNow() == halfOpen
	})
	// The next successful request through r0 readmits it.
	waitFor(t, "r0 readmitted", func() bool {
		_, _ = tc.r.Generate(context.Background(), genReq())
		return tc.r.replicas[0].stateNow() == healthy
	})
	if got := tc.r.m.readmissions.Value(); got < 1 {
		t.Fatalf("readmissions = %d, want >= 1", got)
	}
}

func TestRetryBudgetExhaustionStopsFailover(t *testing.T) {
	tc := newTestCluster(t, 2, func(cfg *Config) {
		cfg.RetryBudget = 1
		cfg.MaxFailovers = 5
	})
	// Kill both replicas but keep routing: force states down post-probe,
	// then disarm so routable sees them half-open (accepting trials that
	// will fail fast... simpler: keep one down and one up, then exhaust
	// the budget with repeated kills). Instead: down r0, requests land on
	// r1; kill r1 mid-flight repeatedly is timing-fragile. Exhaust the
	// bucket directly: it has 1 token and a slow refill.
	if !tc.r.allowRetry("c1") {
		t.Fatal("first retry should fit the budget")
	}
	if tc.r.allowRetry("c1") {
		t.Fatal("second retry should exceed the 1-token budget")
	}
	if !tc.r.allowRetry("c2") {
		t.Fatal("budgets are per client; c2 has its own bucket")
	}
}

func TestDeadlineStopsRetries(t *testing.T) {
	tc := newTestCluster(t, 2, func(cfg *Config) {
		cfg.BackoffBase = 50 * time.Millisecond
		cfg.BackoffMax = 100 * time.Millisecond
	})
	mustArm(t, tc.inj,
		faults.Rule{Class: faults.ReplicaDown, Site: FaultSite, Lane: "r0"},
		faults.Rule{Class: faults.ReplicaDown, Site: FaultSite, Lane: "r1"},
	)
	waitFor(t, "both replicas down", func() bool { return tc.r.Snapshot().Healthy == 0 })
	// A request with 20ms left cannot afford a 50ms+ backoff: the router
	// must fail promptly rather than sleep past the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := tc.r.Generate(ctx, genReq())
	if err == nil {
		t.Fatal("expected failure with an all-down cluster")
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Fatalf("router slept %v retrying past a 20ms deadline", elapsed)
	}
}

func TestHedgedRequestWinsOnSlowPrimary(t *testing.T) {
	tc := newTestCluster(t, 2, func(cfg *Config) {
		cfg.HedgeAfter = 10 * time.Millisecond
	})
	// r0 is slow-injected: every dispatch through the router eats a
	// standing 300ms delay. The hedge fires at 10ms on r1 and wins.
	mustArm(t, tc.inj, faults.Rule{
		Class: faults.ReplicaSlow, Site: FaultSite, Lane: "r0",
		DelayMillis: 300,
	})
	waitFor(t, "slow condition visible to router", func() bool {
		return tc.r.replicas[0].slowNs.Load() > 0
	})
	res, err := tc.r.Generate(context.Background(), genReq())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hedged || res.Replica != "r1" {
		t.Fatalf("res = {replica %q hedged %v}, want hedge win on r1", res.Replica, res.Hedged)
	}
	if tc.r.m.hedges.Value() < 1 || tc.r.m.hedgeWins.Value() < 1 {
		t.Fatalf("hedge counters = %d/%d, want >= 1",
			tc.r.m.hedges.Value(), tc.r.m.hedgeWins.Value())
	}
}

func TestLifecycleDrainAndRollingRestart(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	ctx := context.Background()
	if err := tc.r.DrainReplica(ctx, "r1"); err != nil {
		t.Fatal(err)
	}
	if st := tc.r.replicas[1].stateNow(); st != draining {
		t.Fatalf("r1 state = %v, want draining", st)
	}
	// A drained replica takes no traffic; the rest keep serving.
	for i := 0; i < 6; i++ {
		res, err := tc.r.Generate(ctx, genReq())
		if err != nil {
			t.Fatal(err)
		}
		if res.Replica == "r1" {
			t.Fatal("drained replica r1 must not receive traffic")
		}
	}
	if err := tc.r.RestartReplica(ctx, "r1"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "restarted r1 takes traffic again", func() bool {
		res, err := tc.r.Generate(ctx, genReq())
		return err == nil && res.Replica == "r1"
	})
	if err := tc.r.RollingRestart(ctx); err != nil {
		t.Fatal(err)
	}
	if got := tc.r.Snapshot().Healthy; got != 3 {
		t.Fatalf("healthy after rolling restart = %d, want 3", got)
	}
	if _, err := tc.r.Generate(ctx, genReq()); err != nil {
		t.Fatalf("post-restart request: %v", err)
	}
	if err := tc.r.DrainReplica(ctx, "nope"); !errors.Is(err, ErrUnknownReplica) {
		t.Fatalf("draining unknown replica: %v, want ErrUnknownReplica", err)
	}
}

func TestEjectionAfterConsecutiveErrors(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	rep := tc.r.replicas[0]
	boom := fmt.Errorf("kaput: %w", gateway.ErrLanePanic)
	for i := 0; i < tc.r.cfg.EjectThreshold; i++ {
		tc.r.observeOutcome(rep, boom, time.Millisecond)
	}
	if st := rep.stateNow(); st != ejected {
		t.Fatalf("after %d consecutive errors state = %v, want ejected",
			tc.r.cfg.EjectThreshold, st)
	}
	// Load rejections never eject: they are backpressure, not sickness.
	rep2 := tc.r.replicas[1]
	for i := 0; i < 10; i++ {
		tc.r.observeOutcome(rep2, gateway.ErrQueueFull, time.Millisecond)
	}
	if st := rep2.stateNow(); st != healthy {
		t.Fatalf("queue-full streak ejected a healthy replica (state %v)", st)
	}
	// Cooloff expiry probes half-open; a successful trial readmits.
	waitFor(t, "r0 half-open after cooloff", func() bool {
		return rep.stateNow() == halfOpen
	})
	tc.r.observeOutcome(rep, nil, time.Millisecond)
	if st := rep.stateNow(); st != healthy {
		t.Fatalf("successful trial left state %v, want healthy", st)
	}
}

func TestUnaryDoFailsOver(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	mustArm(t, tc.inj, faults.Rule{Class: faults.ReplicaDown, Site: FaultSite, Lane: "r0"})
	waitFor(t, "r0 down", func() bool { return tc.r.replicas[0].stateNow() == down })
	for i := 0; i < 4; i++ {
		ran := false
		if err := tc.r.Do(context.Background(), func(context.Context) error {
			ran = true
			return nil
		}); err != nil || !ran {
			t.Fatalf("Do %d: err=%v ran=%v", i, err, ran)
		}
	}
}

// TestSharedRegistryAcrossReplicas guards the aggregate-metrics
// contract: replica gateways share one registry without panicking or
// double-registering, and cluster_* instruments coexist with gateway_*.
func TestSharedRegistryAcrossReplicas(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	if _, err := tc.r.Generate(context.Background(), genReq()); err != nil {
		t.Fatal(err)
	}
	var buf syncBuffer
	if err := tc.reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cluster_replicas", "cluster_healthy_replicas",
		"gateway_admitted_total", "cluster_requests_routed_total"} {
		if !contains(out, want) {
			t.Fatalf("metrics output missing %s", want)
		}
	}
}

type syncBuffer struct {
	mu sync.Mutex
	b  []byte
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.b = append(s.b, p...)
	return len(p), nil
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return string(s.b)
}

func contains(haystack, needle string) bool {
	return len(haystack) >= len(needle) && indexOf(haystack, needle) >= 0
}

func indexOf(haystack, needle string) int {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return i
		}
	}
	return -1
}
