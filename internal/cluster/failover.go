package cluster

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gateway"
	"repro/internal/govern"
	"repro/internal/overload"
	"repro/internal/trace"
)

// retryable reports whether err is a replica-level failure worth a
// dispatch on another replica. Client errors (bad request, canceled
// context, deadline) and per-request verdicts (KV never fits, quota)
// are final wherever they run.
func retryable(err error) bool {
	switch {
	case errors.Is(err, ErrReplicaDown),
		errors.Is(err, gateway.ErrDraining),
		errors.Is(err, gateway.ErrLanePanic),
		errors.Is(err, gateway.ErrLaneQuarantined),
		errors.Is(err, gateway.ErrLaneBroken),
		errors.Is(err, gateway.ErrWatchdogTimeout),
		errors.Is(err, gateway.ErrQueueFull),
		errors.Is(err, gateway.ErrClassShed),
		errors.Is(err, gateway.ErrConcurrencyLimited),
		errors.Is(err, govern.ErrShedding),
		errors.Is(err, govern.ErrKVExhausted):
		return true
	}
	return false
}

// countsAgainstHealth reports whether err should grow a replica's
// consecutive-error streak. Load rejections (queue full, shedding,
// quota) are honest backpressure, not sickness: ejecting a busy replica
// shrinks the pool exactly when capacity is scarcest.
func countsAgainstHealth(err error) bool {
	switch {
	case err == nil,
		errors.Is(err, gateway.ErrQueueFull),
		errors.Is(err, gateway.ErrClassShed),
		errors.Is(err, gateway.ErrConcurrencyLimited),
		errors.Is(err, gateway.ErrDeadlineUnmeetable),
		errors.Is(err, govern.ErrShedding),
		errors.Is(err, govern.ErrQuotaExceeded),
		errors.Is(err, govern.ErrNeverFits),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return false
	}
	return true
}

// retryBudget is a per-client token bucket: RetryBudget failover tokens
// refilled continuously over RetryWindow, bursting to the cap.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// allowRetry charges one failover token for client, refusing when the
// bucket is empty. An unlimited budget (cap < 0) always allows.
func (r *Router) allowRetry(client string) bool {
	if r.cfg.RetryBudget < 0 {
		return true
	}
	cap := float64(r.cfg.RetryBudget)
	rate := cap / r.cfg.RetryWindow.Seconds()
	now := time.Now()
	r.budgetMu.Lock()
	b, ok := r.budgets[client]
	if !ok {
		b = &retryBudget{tokens: cap, last: now}
		r.budgets[client] = b
	}
	r.budgetMu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += now.Sub(b.last).Seconds() * rate
	if b.tokens > cap {
		b.tokens = cap
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// backoff returns the full-jitter exponential delay before retry
// attempt n (1-based): uniform in (0, min(BackoffMax, BackoffBase·2^n)].
func (r *Router) backoff(attempt int) time.Duration {
	max := r.cfg.BackoffBase << uint(attempt)
	if max > r.cfg.BackoffMax || max <= 0 {
		max = r.cfg.BackoffMax
	}
	r.rngMu.Lock()
	d := time.Duration(r.rng.Int63n(int64(max))) + 1
	r.rngMu.Unlock()
	return d
}

// attemptState tracks one request's delivery across dispatches: the
// cross-attempt exactly-once guard extending PR 6's produced/emitted
// split to the replica dimension.
type attemptState struct {
	// delivered is 1 + the highest token index handed to the caller's
	// sink, monotone under CAS so a racing doomed attempt can never
	// re-deliver or reorder.
	delivered atomic.Int64
	// finals counts Final-token deliveries; the chaos suite asserts it
	// never exceeds one per request.
	finals atomic.Int64
}

// wrapSink funnels one dispatch attempt's tokens through the shared
// exactly-once filter. All attempts of a request share st, so a token
// index delivered by attempt k is silently dropped if attempt k+1
// replays it.
func (st *attemptState) wrapSink(sink gateway.TokenSink) gateway.TokenSink {
	if sink == nil {
		return nil
	}
	return func(ev gateway.TokenEvent) {
		for {
			cur := st.delivered.Load()
			if int64(ev.Index) < cur {
				return // replayed by a later attempt: already delivered
			}
			if st.delivered.CompareAndSwap(cur, int64(ev.Index)+1) {
				break
			}
		}
		if ev.Final {
			st.finals.Add(1)
		}
		sink(ev)
	}
}

// streamed reports whether any token reached the caller: past this
// point the request is no longer idempotent and must not be retried.
func (st *attemptState) streamed() bool { return st.delivered.Load() > 0 }

// Generate routes one request through the cluster: pick a replica,
// dispatch, and — if the dispatch failed at the replica level before
// any token was streamed — fail over to the next replica under the
// retry budget, backoff and deadline. Short non-streamed requests may
// additionally be hedged on a second replica.
func (r *Router) Generate(ctx context.Context, req gateway.Request) (gateway.Result, error) {
	if r.Draining() {
		return gateway.Result{}, gateway.ErrDraining
	}
	st := &attemptState{}
	origSink := req.Sink
	tried := map[string]bool{}
	var lastErr error
	failovers := 0

	for attempt := 0; ; attempt++ {
		rep, err := r.pickFor(&req, tried)
		if err != nil {
			r.m.noHealthy.Inc()
			if lastErr != nil {
				return gateway.Result{}, lastErr
			}
			return gateway.Result{}, err
		}
		tried[rep.id] = true

		res, err := r.dispatch(ctx, rep, req, st, origSink, attempt)
		if err == nil {
			if res.Replica == "" { // hedged wins set their own attribution
				res.Replica = rep.id
			}
			res.Failovers = failovers
			return res, nil
		}
		lastErr = err

		// Decide whether this failure may move to another replica.
		switch {
		case !retryable(err) || ctx.Err() != nil:
			return gateway.Result{}, err
		case st.streamed():
			// Mid-stream failure: the client already saw tokens, so the
			// stream terminates with the uniform error envelope. Retrying
			// would risk duplicate delivery.
			return gateway.Result{}, err
		case attempt >= r.cfg.MaxFailovers || r.cfg.MaxFailovers < 0:
			return gateway.Result{}, err
		}
		if !r.allowRetry(req.Client) {
			r.m.budgetExhausted.Inc()
			return gateway.Result{}, err
		}
		delay := r.backoff(attempt + 1)
		if deadline, ok := ctx.Deadline(); ok && time.Now().Add(delay).After(deadline) {
			// The backoff alone would blow the client's budget: stop
			// retrying and report the real failure now, honestly.
			r.m.retriesDeadline.Inc()
			return gateway.Result{}, err
		}
		foStart := time.Now()
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return gateway.Result{}, ctx.Err()
		}
		if tr := req.Trace; tr != nil {
			tr.Add(trace.SpanData{
				Name: trace.PhaseFailover, Start: foStart, End: time.Now(),
				Attrs: map[string]string{
					"from":  rep.id,
					"cause": err.Error(),
				},
			})
		}
		r.m.failovers.Inc()
		failovers++
		r.log.Info("cluster: failing over", "replica", rep.id,
			"attempt", attempt+1, "error", err)
	}
}

// pick selects a replica for req among routable candidates not in
// tried. When every replica was tried already, the tried filter is
// dropped — re-dispatching to a previously failed replica beats
// failing a request that still has budget. Half-open trial slots
// claimed for losing candidates are released.
func (r *Router) pick(req *gateway.Request, tried map[string]bool) (*replica, []Candidate, error) {
	cands := r.routable(tried)
	if len(cands) == 0 && len(tried) > 0 {
		cands = r.routable(nil)
	}
	if len(cands) == 0 {
		return nil, nil, ErrNoHealthyReplicas
	}
	c := r.cfg.Policy.Pick(req, cands)
	return r.replicas[c.Index], cands, nil
}

// pickFor is pick plus trial-slot bookkeeping for the losers.
func (r *Router) pickFor(req *gateway.Request, tried map[string]bool) (*replica, error) {
	rep, cands, err := r.pick(req, tried)
	if err != nil {
		return nil, err
	}
	r.releaseTrial(cands, candidateFor(rep, cands))
	return rep, nil
}

// candidateFor finds rep's candidate entry (always present after pick).
func candidateFor(rep *replica, cands []Candidate) Candidate {
	for _, c := range cands {
		if c.ID == rep.id {
			return c
		}
	}
	return Candidate{ID: rep.id, Index: -1}
}

// dispatch runs one attempt of req on rep, recording the route span,
// the attempt latency, passive health, and optionally racing a hedged
// duplicate. The caller's sink is replaced by the exactly-once wrapper.
func (r *Router) dispatch(ctx context.Context, rep *replica, req gateway.Request,
	st *attemptState, origSink gateway.TokenSink, attempt int) (gateway.Result, error) {

	r.m.routed.Inc()
	req.Sink = st.wrapSink(origSink)
	start := time.Now()
	var res gateway.Result
	var err error
	if r.hedgeEligible(rep, req, attempt) {
		res, err = r.hedgedDispatch(ctx, rep, req)
	} else {
		err = r.runOnReplica(ctx, rep, func(dctx context.Context) error {
			var derr error
			res, derr = rep.gateway().Generate(dctx, req)
			return derr
		})
	}
	elapsed := time.Since(start)
	r.m.routeLatency.Observe(elapsed.Seconds())
	r.observeOutcome(rep, err, elapsed)
	r.ejectLatencyOutliers()
	if tr := req.Trace; tr != nil {
		tr.Add(trace.SpanData{
			Name: trace.PhaseRoute, Start: start, End: time.Now(),
			Attrs: map[string]string{
				"replica": rep.id,
				"policy":  r.cfg.Policy.Name(),
				"attempt": strconv.Itoa(attempt + 1),
			},
		})
	}
	return res, err
}

// hedgeEligible restricts hedging to first attempts of short,
// non-streamed requests: duplicating a stream would need cross-replica
// token reconciliation, and duplicating a long decode doubles the most
// expensive phase for a latency win only short prefill-dominated jobs
// can realize. Hedging is also the brownout ladder's first rung: a
// primary at or past LevelNoHedge is overloaded enough that speculative
// duplicates would only feed the overload.
func (r *Router) hedgeEligible(primary *replica, req gateway.Request, attempt int) bool {
	return r.cfg.HedgeAfter > 0 &&
		attempt == 0 &&
		req.Sink == nil &&
		req.OutputLen <= r.cfg.HedgeMaxOut &&
		primary.gateway().BrownoutLevel() < overload.LevelNoHedge
}

// hedgeOutcome is one arm's result in a hedged race.
type hedgeOutcome struct {
	res   gateway.Result
	err   error
	rep   *replica
	hedge bool
}

// hedgedDispatch races req on primary against a delayed duplicate on a
// second replica. The first success wins and the loser's context is
// cancelled, its burn accounted as wasted compute. If the primary fails
// before the hedge launches, the error returns immediately so the
// normal failover path (budgeted, backed off) handles it; if an arm
// fails while the other runs, the survivor decides the request.
func (r *Router) hedgedDispatch(ctx context.Context, primary *replica,
	req gateway.Request) (gateway.Result, error) {

	rctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	outcomes := make(chan hedgeOutcome, 2)
	run := func(rep *replica, hedge bool) {
		var res gateway.Result
		err := r.runOnReplica(rctx, rep, func(dctx context.Context) error {
			var derr error
			res, derr = rep.gateway().Generate(dctx, req)
			return derr
		})
		outcomes <- hedgeOutcome{res: res, err: err, rep: rep, hedge: hedge}
	}
	entry := time.Now()
	go run(primary, false)

	hedgeTimer := time.NewTimer(r.cfg.HedgeAfter)
	defer hedgeTimer.Stop()
	arms, settled := 1, 0
	var hedgeStart time.Time
	for {
		select {
		case o := <-outcomes:
			settled++
			if o.err == nil {
				cancelAll()
				if arms == 2 {
					// The loser ran from its start until this cancel.
					wasted := time.Since(entry)
					if !o.hedge {
						wasted = time.Since(hedgeStart)
					}
					r.m.hedgeWasted.Observe(wasted.Seconds())
					if o.hedge {
						r.m.hedgeWins.Inc()
						o.res.Hedged = true
						o.res.Replica = o.rep.id
						r.observeOutcome(o.rep, nil, time.Since(hedgeStart))
					}
				}
				return o.res, nil
			}
			if settled == arms {
				return gateway.Result{}, o.err
			}
			// One arm down, the other still racing: wait it out.
		case <-hedgeTimer.C:
			if arms == 1 && ctx.Err() == nil {
				if rep, ok := r.hedgeReplica(primary, &req); ok {
					hedgeStart = time.Now()
					arms++
					r.m.hedges.Inc()
					go run(rep, true)
					if tr := req.Trace; tr != nil {
						tr.Event(trace.PhaseHedge, hedgeStart, map[string]string{
							"replica": rep.id, "primary": primary.id,
						})
					}
				}
			}
		case <-ctx.Done():
			return gateway.Result{}, ctx.Err()
		}
	}
}

// hedgeReplica picks a routable replica other than primary for the
// hedged arm; ok is false when no distinct replica is available.
func (r *Router) hedgeReplica(primary *replica, req *gateway.Request) (*replica, bool) {
	cands := r.routable(map[string]bool{primary.id: true})
	if len(cands) == 0 {
		return nil, false
	}
	c := r.cfg.Policy.Pick(req, cands)
	rep := r.replicas[c.Index]
	r.releaseTrial(cands, c)
	if rep.id == primary.id {
		return nil, false
	}
	return rep, true
}
