package cluster

import (
	"time"
)

// healthLoop is the router's active checker: every ProbeInterval it
// reconciles each replica's state against the fault injector's standing
// replica conditions and the passive ejection timers. Passive signals
// (consecutive errors, latency EWMA) are folded in at dispatch time by
// observeOutcome; this loop handles everything time-driven — forced
// outages appearing and clearing, flap phase changes, cooloff expiry
// into half-open.
func (r *Router) healthLoop() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-ticker.C:
			r.probeAll()
		}
	}
}

func (r *Router) probeAll() {
	r.m.probes.Inc()
	now := time.Now()
	for _, rep := range r.replicas {
		r.probeReplica(rep, now)
	}
	r.refreshHealthyGauge()
}

// probeReplica reconciles one replica against the injector's standing
// conditions and the cooloff clock.
func (r *Router) probeReplica(rep *replica, now time.Time) {
	var forcedDown bool
	var slow time.Duration
	if r.inj != nil {
		forcedDown, slow = r.inj.Outage(FaultSite, rep.id)
	}
	rep.slowNs.Store(int64(slow))

	rep.mu.Lock()
	defer rep.mu.Unlock()
	switch {
	case forcedDown && rep.state != down && rep.state != draining:
		// Outage begins: mark down and cancel in-flight dispatches. The
		// channel close is the broadcast; runOnReplica rewrites errors to
		// ErrReplicaDown so failover can take over.
		rep.state = down
		if !isClosed(rep.downCh) {
			close(rep.downCh)
		}
		r.log.Warn("cluster: replica down", "replica", rep.id, "cause", "injected outage")

	case !forcedDown && rep.state == down:
		// Outage cleared: re-enter through half-open, not straight to
		// healthy — one trial request confirms the replica actually
		// serves before it takes policy traffic again.
		rep.state = halfOpen
		rep.trial = false
		rep.consec = 0
		rep.downCh = make(chan struct{})
		r.log.Info("cluster: replica outage cleared, probing", "replica", rep.id)

	case rep.state == ejected && now.After(rep.ejectedUntil):
		rep.state = halfOpen
		rep.trial = false
		r.log.Info("cluster: replica cooloff elapsed, probing", "replica", rep.id)
	}
}

// observeOutcome feeds one dispatch result into the replica's passive
// health: successes reset the error streak and update the latency EWMA
// (readmitting a half-open replica); replica-level failures grow the
// streak and eject at the threshold. Client-caused errors (bad request,
// context canceled) and load rejections (queue full, shedding) are not
// charged — they say nothing about replica health.
func (r *Router) observeOutcome(rep *replica, err error, elapsed time.Duration) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if err == nil {
		rep.served.Add(1)
		rep.consec = 0
		ms := float64(elapsed.Milliseconds())
		if rep.samples == 0 {
			rep.ewmaMs = ms
		} else {
			const alpha = 0.2
			rep.ewmaMs = alpha*ms + (1-alpha)*rep.ewmaMs
		}
		rep.samples++
		if rep.state == halfOpen {
			rep.state = healthy
			rep.trial = false
			r.m.readmissions.Inc()
			r.log.Info("cluster: replica readmitted", "replica", rep.id)
		}
		return
	}
	if !countsAgainstHealth(err) {
		return
	}
	rep.failed.Add(1)
	rep.consec++
	if rep.state == halfOpen {
		// Failed trial: back to ejected for another cooloff.
		rep.state = ejected
		rep.trial = false
		rep.ejectedUntil = time.Now().Add(r.cfg.EjectCooloff)
		r.m.ejections.Inc()
		r.log.Warn("cluster: replica failed half-open trial", "replica", rep.id, "error", err)
		return
	}
	if rep.state == healthy && rep.consec >= r.cfg.EjectThreshold {
		rep.state = ejected
		rep.ejectedUntil = time.Now().Add(r.cfg.EjectCooloff)
		r.m.ejections.Inc()
		r.log.Warn("cluster: replica ejected", "replica", rep.id,
			"consecutive_errors", rep.consec, "error", err)
	}
}

// ejectLatencyOutliers compares success-latency EWMAs across healthy
// replicas and ejects any whose EWMA exceeds SlowFactor times the best,
// once both sides have MinSamples observations. Called opportunistically
// from the dispatch path (not the timer) so it only runs under traffic,
// where the EWMAs are fresh.
func (r *Router) ejectLatencyOutliers() {
	type obs struct {
		rep  *replica
		ewma float64
	}
	var pool []obs
	best := 0.0
	for _, rep := range r.replicas {
		rep.mu.Lock()
		if rep.state == healthy && rep.samples >= r.cfg.MinSamples && rep.ewmaMs > 0 {
			pool = append(pool, obs{rep, rep.ewmaMs})
			if best == 0 || rep.ewmaMs < best {
				best = rep.ewmaMs
			}
		}
		rep.mu.Unlock()
	}
	if len(pool) < 2 || best == 0 {
		return // an outlier needs a baseline to be an outlier from
	}
	for _, o := range pool {
		if o.ewma <= best*r.cfg.SlowFactor {
			continue
		}
		o.rep.mu.Lock()
		if o.rep.state == healthy {
			o.rep.state = ejected
			o.rep.ejectedUntil = time.Now().Add(r.cfg.EjectCooloff)
			// Decay the EWMA so a readmitted replica is judged on fresh
			// samples, not the stale slow ones that ejected it.
			o.rep.samples = 0
			r.m.ejections.Inc()
			r.log.Warn("cluster: replica ejected as latency outlier",
				"replica", o.rep.id, "ewma_ms", o.ewma, "best_ms", best)
		}
		o.rep.mu.Unlock()
	}
	r.refreshHealthyGauge()
}

// routable returns the candidates a policy may pick from, excluding any
// replica in tried. Half-open replicas are offered only while they have
// no trial in flight, and the trial slot is claimed here (released by
// observeOutcome on whatever outcome follows).
func (r *Router) routable(tried map[string]bool) []Candidate {
	var out []Candidate
	for i, rep := range r.replicas {
		if tried[rep.id] {
			continue
		}
		rep.mu.Lock()
		ok := false
		switch rep.state {
		case healthy:
			ok = true
		case halfOpen:
			if !rep.trial {
				rep.trial = true
				ok = true
			}
		}
		gw := rep.gw
		ewma := rep.ewmaMs
		rep.mu.Unlock()
		if !ok {
			continue
		}
		out = append(out, Candidate{
			Index:         i,
			ID:            rep.id,
			Weight:        rep.weight,
			QueueDepth:    gw.QueueDepth(),
			KVUtilization: kvUtilization(gw),
			Shedding:      gw.MemoryPressure(),
			BrownoutLevel: gw.BrownoutLevel(),
			EWMAMillis:    ewma,
			SlowDelay:     time.Duration(rep.slowNs.Load()),
		})
	}
	return out
}

// releaseTrial undoes a half-open trial claim when the claimed replica
// was not actually dispatched to (another candidate won the pick).
func (r *Router) releaseTrial(cands []Candidate, picked Candidate) {
	for _, c := range cands {
		if c.Index == picked.Index {
			continue
		}
		rep := r.replicas[c.Index]
		rep.mu.Lock()
		if rep.state == halfOpen {
			rep.trial = false
		}
		rep.mu.Unlock()
	}
}

func (r *Router) refreshHealthyGauge() {
	n := 0
	for _, rep := range r.replicas {
		if st := rep.stateNow(); st == healthy || st == halfOpen {
			n++
		}
	}
	r.m.healthyReplicas.Set(int64(n))
}
