package cluster

import "repro/internal/metrics"

// instruments are the router's cluster_* metrics. Registry lookups are
// idempotent by name, so sharing one registry with the replica gateways
// is safe: the gateways' instruments and these coexist side by side.
type instruments struct {
	replicas        *metrics.Gauge
	healthyReplicas *metrics.Gauge

	routed          *metrics.Counter
	noHealthy       *metrics.Counter
	failovers       *metrics.Counter
	budgetExhausted *metrics.Counter
	retriesDeadline *metrics.Counter

	ejections    *metrics.Counter
	readmissions *metrics.Counter
	probes       *metrics.Counter
	restarts     *metrics.Counter

	hedges       *metrics.Counter
	hedgeWins    *metrics.Counter
	hedgeWasted  *metrics.Histogram
	routeLatency *metrics.Histogram
}

func newInstruments(r *metrics.Registry) instruments {
	latencyBounds := []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10}
	return instruments{
		replicas: r.Gauge("cluster_replicas",
			"Configured gateway replicas behind the router."),
		healthyReplicas: r.Gauge("cluster_healthy_replicas",
			"Replicas currently routable (healthy or half-open)."),
		routed: r.Counter("cluster_requests_routed_total",
			"Dispatch attempts routed to a replica (includes retries and hedges)."),
		noHealthy: r.Counter("cluster_no_healthy_replica_total",
			"Submissions rejected because no replica was routable."),
		failovers: r.Counter("cluster_failovers_total",
			"Requests re-dispatched to another replica after a replica-level failure."),
		budgetExhausted: r.Counter("cluster_retry_budget_exhausted_total",
			"Failovers suppressed because the client's retry budget was empty."),
		retriesDeadline: r.Counter("cluster_retry_deadline_abandoned_total",
			"Failovers abandoned because backoff would overrun the request deadline."),
		ejections: r.Counter("cluster_replica_ejections_total",
			"Replicas passively ejected (consecutive errors or latency outlier)."),
		readmissions: r.Counter("cluster_replica_readmissions_total",
			"Replicas readmitted to rotation after a successful half-open trial."),
		probes: r.Counter("cluster_health_probes_total",
			"Active health-check sweeps over the replica set."),
		restarts: r.Counter("cluster_replica_restarts_total",
			"Replica gateways rebuilt by restart or rolling restart."),
		hedges: r.Counter("cluster_hedged_requests_total",
			"Requests that spawned a hedged duplicate dispatch."),
		hedgeWins: r.Counter("cluster_hedge_wins_total",
			"Hedged requests resolved by the duplicate rather than the original."),
		hedgeWasted: r.Histogram("cluster_hedge_wasted_seconds",
			"Compute discarded when a hedge loser was cancelled.", latencyBounds),
		routeLatency: r.Histogram("cluster_route_attempt_seconds",
			"Wall time of one dispatch attempt on one replica.", latencyBounds),
	}
}
