package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gateway"
)

// Candidate is a routable replica as seen by a routing policy: health
// filtering already happened, so policies rank rather than exclude.
type Candidate struct {
	// Index is the replica's position in the router's replica slice.
	Index int
	// ID is the replica identifier ("r0"...).
	ID string
	// Weight is the configured relative capacity (≥ 1).
	Weight int
	// QueueDepth is the replica's current admission-queue depth.
	QueueDepth int
	// KVUtilization is the max lane KV-pool utilization in [0, 1].
	KVUtilization float64
	// Shedding reports the replica above its KV high watermark.
	Shedding bool
	// BrownoutLevel is the replica's degradation-ladder rung (0 nominal;
	// see internal/overload). Policies steer traffic toward nominal
	// replicas so one overloaded box degrades alone.
	BrownoutLevel int
	// EWMAMillis is the replica's success-latency EWMA (0 = no samples).
	EWMAMillis float64
	// SlowDelay is the standing replica-slow injection delay, if any.
	SlowDelay time.Duration
}

// Policy picks one replica among the routable candidates for a request.
// Policies must be safe for concurrent use; candidates is never empty.
type Policy interface {
	Name() string
	Pick(req *gateway.Request, candidates []Candidate) Candidate
}

// ParsePolicy maps a -route flag value to a policy.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "", "round-robin", "rr":
		return RoundRobin(), nil
	case "least-loaded", "ll":
		return LeastLoaded(0), nil
	case "weighted", "slo", "slo-weighted":
		return Weighted(), nil
	default:
		return nil, fmt.Errorf("cluster: unknown routing policy %q (want round-robin, least-loaded or weighted)", name)
	}
}

type rrPolicy struct {
	ctr  atomic.Uint64
	next func() uint64
}

// RoundRobin cycles through routable replicas in order; unhealthy
// replicas are not candidates, so rotation naturally skips them.
// Simple, fair under homogeneous replicas, oblivious to load skew.
func RoundRobin() Policy { return &rrPolicy{} }

func (p *rrPolicy) Name() string { return "round-robin" }

func (p *rrPolicy) Pick(req *gateway.Request, candidates []Candidate) Candidate {
	var n uint64
	if p.next != nil {
		n = p.next()
	} else {
		n = p.ctr.Add(1) - 1
	}
	return candidates[int(n%uint64(len(candidates)))]
}

// bindCursor lets the router supply its shared cursor so rotation stays
// stable if the policy instance is ever swapped or inspected.
func (p *rrPolicy) bindCursor(next func() uint64) { p.next = next }

// cursorBinder is implemented by policies that want the router's shared
// monotonic cursor (round-robin rotation, least-loaded tie-breaking).
type cursorBinder interface{ bindCursor(func() uint64) }

// llPolicy routes to the replica with the lowest load score.
type llPolicy struct {
	kvWeight float64
	tie      func() uint64
}

// LeastLoaded routes to the replica with the smallest
// queueDepth + kvWeight·kvUtilization score, breaking ties
// round-robin. kvWeight ≤ 0 selects the default (8): a full KV pool
// weighs like eight queued requests, since admission past the high
// watermark risks preemption storms rather than mere queueing delay.
// Shedding replicas are max-penalized instead of excluded so a fully
// shedding cluster still routes (and returns honest 429s) rather than
// failing closed.
func LeastLoaded(kvWeight float64) Policy {
	if kvWeight <= 0 {
		kvWeight = 8
	}
	return &llPolicy{kvWeight: kvWeight}
}

func (p *llPolicy) Name() string { return "least-loaded" }

func (p *llPolicy) bindCursor(next func() uint64) { p.tie = next }

func (p *llPolicy) score(c Candidate) float64 {
	s := float64(c.QueueDepth) + p.kvWeight*c.KVUtilization
	if c.Shedding {
		s += 1000
	}
	// Each brownout rung weighs like a growing queue backlog, so traffic
	// drains toward nominal replicas without excluding a degraded one
	// outright (a fully browned-out cluster still routes).
	s += float64(c.BrownoutLevel) * 50
	if c.SlowDelay > 0 {
		s += c.SlowDelay.Seconds() * 100
	}
	return s
}

func (p *llPolicy) Pick(req *gateway.Request, candidates []Candidate) Candidate {
	best, bestScore, ties := candidates[0], p.score(candidates[0]), 1
	for _, c := range candidates[1:] {
		switch s := p.score(c); {
		case s < bestScore:
			best, bestScore, ties = c, s, 1
		case s == bestScore:
			ties++
		}
	}
	if ties > 1 && p.tie != nil {
		// Rotate among the tied minimum so idle replicas share warm-up
		// traffic instead of piling onto the lowest index.
		k := int(p.tie() % uint64(ties))
		for _, c := range candidates {
			if p.score(c) == bestScore {
				if k == 0 {
					return c
				}
				k--
			}
		}
	}
	return best
}

// wPolicy is smooth weighted round-robin with an SLO twist.
type wPolicy struct {
	mu      sync.Mutex
	current map[int]int
}

// Weighted implements SLO-class aware smooth weighted round-robin:
// replicas are picked proportionally to their configured weights
// (heterogeneous platform capacity), and interactive-class requests are
// additionally steered away from shedding or slow-injected replicas —
// batch traffic tolerates them, latency-sensitive traffic should not.
func Weighted() Policy {
	return &wPolicy{current: map[int]int{}}
}

func (p *wPolicy) Name() string { return "weighted" }

func (p *wPolicy) Pick(req *gateway.Request, candidates []Candidate) Candidate {
	interactive := req != nil && (req.Class == "" || req.Class == "interactive")
	if interactive {
		// Prefer the subset not shedding, not browned out and not
		// slow-injected; fall back to everything when the preference would
		// empty the pool.
		var clean []Candidate
		for _, c := range candidates {
			if !c.Shedding && c.SlowDelay == 0 && c.BrownoutLevel == 0 {
				clean = append(clean, c)
			}
		}
		if len(clean) > 0 {
			candidates = clean
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, c := range candidates {
		p.current[c.Index] += c.Weight
		total += c.Weight
	}
	best := candidates[0]
	for _, c := range candidates[1:] {
		if p.current[c.Index] > p.current[best.Index] {
			best = c
		}
	}
	p.current[best.Index] -= total
	return best
}
