package cluster

import (
	"testing"

	"repro/internal/gateway"
)

// policy_test.go is the table-driven routing-policy coverage: per-policy
// behavior under load skew, the single-replica degenerate case, and the
// router-level all-unhealthy rejection (see cluster_test.go for that —
// it needs a live router).

func cands(specs ...Candidate) []Candidate { return specs }

func TestRoundRobinCycles(t *testing.T) {
	p := RoundRobin()
	cs := cands(
		Candidate{Index: 0, ID: "r0", Weight: 1},
		Candidate{Index: 1, ID: "r1", Weight: 1},
		Candidate{Index: 2, ID: "r2", Weight: 1},
	)
	var got []string
	for i := 0; i < 6; i++ {
		got = append(got, p.Pick(nil, cs).ID)
	}
	want := []string{"r0", "r1", "r2", "r0", "r1", "r2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pick %d = %s, want %s (sequence %v)", i, got[i], want[i], got)
		}
	}
}

func TestRoundRobinSingleReplica(t *testing.T) {
	p := RoundRobin()
	cs := cands(Candidate{Index: 0, ID: "r0", Weight: 1})
	for i := 0; i < 4; i++ {
		if got := p.Pick(nil, cs).ID; got != "r0" {
			t.Fatalf("single-replica pick %d = %s, want r0", i, got)
		}
	}
}

func TestLeastLoadedPolicy(t *testing.T) {
	tests := []struct {
		name string
		cs   []Candidate
		want string
	}{
		{
			name: "skewed queue depth",
			cs: cands(
				Candidate{Index: 0, ID: "r0", QueueDepth: 12},
				Candidate{Index: 1, ID: "r1", QueueDepth: 2},
				Candidate{Index: 2, ID: "r2", QueueDepth: 7},
			),
			want: "r1",
		},
		{
			name: "kv pressure outweighs a shallow queue",
			cs: cands(
				// 1 queued + 0.9 KV ≈ 8.2 load vs 4 queued + empty pool.
				Candidate{Index: 0, ID: "r0", QueueDepth: 1, KVUtilization: 0.9},
				Candidate{Index: 1, ID: "r1", QueueDepth: 4, KVUtilization: 0},
			),
			want: "r1",
		},
		{
			name: "shedding replica is a last resort",
			cs: cands(
				Candidate{Index: 0, ID: "r0", QueueDepth: 0, Shedding: true},
				Candidate{Index: 1, ID: "r1", QueueDepth: 40},
			),
			want: "r1",
		},
		{
			name: "all shedding still routes",
			cs: cands(
				Candidate{Index: 0, ID: "r0", QueueDepth: 9, Shedding: true},
				Candidate{Index: 1, ID: "r1", QueueDepth: 3, Shedding: true},
			),
			want: "r1",
		},
		{
			name: "single replica",
			cs:   cands(Candidate{Index: 0, ID: "r0", QueueDepth: 99, Shedding: true}),
			want: "r0",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := LeastLoaded(0)
			if got := p.Pick(nil, tt.cs).ID; got != tt.want {
				t.Fatalf("pick = %s, want %s", got, tt.want)
			}
		})
	}
}

func TestLeastLoadedTieRotation(t *testing.T) {
	p := LeastLoaded(0)
	var n uint64
	p.(*llPolicy).bindCursor(func() uint64 { n++; return n - 1 })
	cs := cands(
		Candidate{Index: 0, ID: "r0"},
		Candidate{Index: 1, ID: "r1"},
	)
	seen := map[string]int{}
	for i := 0; i < 10; i++ {
		seen[p.Pick(nil, cs).ID]++
	}
	if seen["r0"] == 0 || seen["r1"] == 0 {
		t.Fatalf("tied replicas should share traffic, got %v", seen)
	}
}

func TestWeightedProportionalDistribution(t *testing.T) {
	p := Weighted()
	cs := cands(
		Candidate{Index: 0, ID: "r0", Weight: 3},
		Candidate{Index: 1, ID: "r1", Weight: 1},
	)
	seen := map[string]int{}
	req := &gateway.Request{Class: "batch"}
	for i := 0; i < 40; i++ {
		seen[p.Pick(req, cs).ID]++
	}
	if seen["r0"] != 30 || seen["r1"] != 10 {
		t.Fatalf("weights 3:1 over 40 picks gave %v, want map[r0:30 r1:10]", seen)
	}
}

func TestWeightedSteersInteractiveOffShedding(t *testing.T) {
	p := Weighted()
	cs := cands(
		Candidate{Index: 0, ID: "r0", Weight: 3, Shedding: true},
		Candidate{Index: 1, ID: "r1", Weight: 1},
	)
	// Interactive traffic (empty class defaults to interactive) avoids
	// the shedding replica entirely while an alternative exists.
	for i := 0; i < 8; i++ {
		if got := p.Pick(&gateway.Request{}, cs).ID; got != "r1" {
			t.Fatalf("interactive pick %d = %s, want r1 (r0 is shedding)", i, got)
		}
	}
	// Batch traffic tolerates it, keeping the weighted spread.
	seen := map[string]int{}
	for i := 0; i < 16; i++ {
		seen[p.Pick(&gateway.Request{Class: "batch"}, cs).ID]++
	}
	if seen["r0"] == 0 {
		t.Fatalf("batch traffic should still use the shedding replica, got %v", seen)
	}
	// With every candidate shedding, interactive falls back to the pool.
	all := cands(
		Candidate{Index: 0, ID: "r0", Weight: 1, Shedding: true},
		Candidate{Index: 1, ID: "r1", Weight: 1, Shedding: true},
	)
	if got := p.Pick(&gateway.Request{Class: "interactive"}, all); got.ID == "" {
		t.Fatal("all-shedding pool must still route")
	}
}

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]string{
		"":             "round-robin",
		"rr":           "round-robin",
		"round-robin":  "round-robin",
		"ll":           "least-loaded",
		"least-loaded": "least-loaded",
		"weighted":     "weighted",
		"slo":          "weighted",
	} {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Fatalf("ParsePolicy(%q).Name() = %s, want %s", name, p.Name(), want)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy(bogus) should fail")
	}
}
