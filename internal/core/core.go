// Package core is the public facade of the reproduction library. It ties
// the two substrates together behind one API:
//
//   - the platform performance simulator (perfmodel, memsim, offload,
//     hybrid), which prices LLM inference on the paper's four evaluation
//     platforms and regenerates every table and figure, and
//   - the functional inference engine (engine, kernels, tensor), a real
//     pure-Go transformer that executes prefill/decode with a KV cache at
//     laptop scale.
//
// Typical use:
//
//	res, err := core.SimulateCPU(core.SPRQuadFlat(48), core.MustModel("OPT-30B"), 1, 128, 32)
//	fmt.Println(res)            // TTFT / TPOT / E2E / tokens-per-second
//
//	gpu, err := core.SimulateGPU(core.H100(), core.MustModel("OPT-66B"), 1, 128, 32)
//	fmt.Println(gpu.PCIeFraction())  // offloading engages automatically
package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/offload"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// Re-exported types, so most callers only import core.
type (
	// Model is a transformer architecture description.
	Model = model.Config
	// CPUSetup is a concrete CPU configuration (cores, memory and
	// clustering modes).
	CPUSetup = memsim.Config
	// Result is the metric set of one simulated point.
	Result = metrics.Result
	// Experiment is a runnable paper table/figure reproduction.
	Experiment = experiments.Experiment
	// Table is a rendered experiment result.
	Table = experiments.Table
	// GPU is a GPU platform description.
	GPU = hw.GPU
	// CPU is a CPU platform description.
	CPU = hw.CPU
)

// Models returns the eight models the paper evaluates.
func Models() []Model { return model.Evaluated() }

// ModelByName resolves a preset by its paper name (e.g. "LLaMA2-13B").
func ModelByName(name string) (Model, error) { return model.ByName(name) }

// MustModel is ModelByName for known-good literals; it panics on typos.
func MustModel(name string) Model {
	m, err := model.ByName(name)
	if err != nil {
		panic(err)
	}
	return m
}

// SPRQuadFlat returns the SPR Max CPU in its best configuration (Key
// Findings #2 and #3): quadrant clustering, flat HBM mode, `cores` active
// cores (48 = one full socket, the paper's choice; 0 defaults to 48).
func SPRQuadFlat(cores int) CPUSetup {
	if cores <= 0 {
		cores = 48
	}
	return CPUSetup{CPU: hw.SPRMax9468, Cores: cores, Mem: memsim.Flat, Cluster: memsim.Quad}
}

// ICLBaseline returns the IceLake baseline configuration (one 32-core
// socket, DDR4 only).
func ICLBaseline() CPUSetup {
	return CPUSetup{CPU: hw.ICL8352Y, Cores: 32, Mem: memsim.DDROnly, Cluster: memsim.Quad}
}

// A100 returns the A100-40GB preset (Table II).
func A100() GPU { return hw.A100 }

// H100 returns the H100-80GB preset (Table II).
func H100() GPU { return hw.H100 }

// SimulateCPU prices one CPU inference point with BF16 weights.
func SimulateCPU(setup CPUSetup, m Model, batch, inputLen, outputLen int) (Result, error) {
	return perfmodel.CPURun{
		Model: m, Setup: setup, Batch: batch,
		InputLen: inputLen, OutputLen: outputLen, Weights: tensor.BF16,
	}.Simulate()
}

// SimulateGPU prices one GPU inference point, automatically switching to
// FlexGen-style offloading when the model exceeds GPU memory (the paper's
// §V methodology). Offloaded runs populate Result.TransferSeconds with the
// PCIe data-loading time of Fig 18.
func SimulateGPU(g GPU, m Model, batch, inputLen, outputLen int) (Result, error) {
	resident := perfmodel.GPURun{GPU: g, Model: m, Batch: batch,
		InputLen: inputLen, OutputLen: outputLen, Weights: tensor.BF16}
	if resident.Fits() {
		return resident.Simulate()
	}
	return offload.Run{GPU: g, Host: hw.SPRMax9468, Model: m, Batch: batch,
		InputLen: inputLen, OutputLen: outputLen, Weights: tensor.BF16}.Simulate()
}

// Experiments returns every paper table/figure reproduction plus the §VI
// optimization ablations, in paper order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByKey resolves one experiment by CLI key ("fig18", "table1").
func ExperimentByKey(key string) (Experiment, error) { return experiments.ByKey(key) }

// TinyEngine builds a runnable miniature functional engine of the given
// family ("opt" or "llama"), with deterministic random BF16 weights.
func TinyEngine(family string, kernel engine.Kernel) (*engine.Engine, error) {
	return TinyEngineWith(family, engine.Options{Kernel: kernel})
}

// TinyEngineWith is TinyEngine with full Options control — callers can
// share a kernels.Pool across engines (gateway lanes), disable weight
// packing for baseline measurements, or attach hooks.
func TinyEngineWith(family string, opts engine.Options) (*engine.Engine, error) {
	var f model.Family
	switch family {
	case "opt":
		f = model.OPT
	case "llama":
		f = model.LLaMA2
	default:
		return nil, fmt.Errorf("core: unknown family %q (want opt or llama)", family)
	}
	w, err := engine.NewWeights(model.Tiny(f), 42, tensor.BF16)
	if err != nil {
		return nil, err
	}
	if opts.Kernel == engine.KernelInt8 || opts.Kernel == engine.KernelLUT {
		w.QuantizeAll()
	}
	return engine.New(w, opts)
}

// TinyDraftEngineWith builds the draft companion for a tiny-* lane: the
// same family and shapes as TinyEngineWith's target but a single
// transformer layer, so one draft decode step is a small fraction of a
// target step. The vocabulary and embedding width match the target, which
// speculative verification requires.
func TinyDraftEngineWith(family string, opts engine.Options) (*engine.Engine, error) {
	var f model.Family
	switch family {
	case "opt":
		f = model.OPT
	case "llama":
		f = model.LLaMA2
	default:
		return nil, fmt.Errorf("core: unknown family %q (want opt or llama)", family)
	}
	cfg := model.Tiny(f)
	cfg.Layers = 1
	w, err := engine.NewWeights(cfg, 43, tensor.BF16)
	if err != nil {
		return nil, err
	}
	if opts.Kernel == engine.KernelInt8 || opts.Kernel == engine.KernelLUT {
		w.QuantizeAll()
	}
	return engine.New(w, opts)
}

// Prompt samples a deterministic random prompt for an engine.
func Prompt(e *engine.Engine, n int, seed int64) []int {
	return workload.NewGenerator(seed).Prompt(n, e.Config().Vocab)
}
