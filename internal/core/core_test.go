package core

import (
	"testing"

	"repro/internal/engine"
)

func TestSimulateCPU(t *testing.T) {
	res, err := SimulateCPU(SPRQuadFlat(0), MustModel("OPT-13B"), 1, 128, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.E2E <= 0 || res.Throughput.E2E <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
}

func TestSimulateGPUAutoOffload(t *testing.T) {
	resident, err := SimulateGPU(H100(), MustModel("OPT-13B"), 1, 128, 32)
	if err != nil {
		t.Fatal(err)
	}
	if resident.TransferSeconds != 0 {
		t.Error("resident run must not report PCIe stalls")
	}
	offloaded, err := SimulateGPU(H100(), MustModel("OPT-66B"), 1, 128, 32)
	if err != nil {
		t.Fatal(err)
	}
	if offloaded.TransferSeconds <= 0 {
		t.Error("oversized model must engage offloading")
	}
}

func TestModels(t *testing.T) {
	if len(Models()) != 8 {
		t.Errorf("Models() = %d entries, want 8", len(Models()))
	}
	if _, err := ModelByName("nope"); err == nil {
		t.Error("unknown model must error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustModel must panic on typo")
		}
	}()
	MustModel("nope")
}

func TestSetups(t *testing.T) {
	if SPRQuadFlat(0).Cores != 48 || SPRQuadFlat(24).Cores != 24 {
		t.Error("SPRQuadFlat cores wrong")
	}
	if ICLBaseline().CPU.HasAMX() {
		t.Error("ICL baseline must not have AMX")
	}
}

func TestExperiments(t *testing.T) {
	if len(Experiments()) < 19 {
		t.Errorf("only %d experiments registered", len(Experiments()))
	}
	e, err := ExperimentByKey("fig1")
	if err != nil {
		t.Fatal(err)
	}
	tabs, err := e.Run()
	if err != nil || len(tabs) == 0 {
		t.Fatal("fig1 did not run")
	}
}

func TestTinyEngine(t *testing.T) {
	for _, fam := range []string{"opt", "llama"} {
		e, err := TinyEngine(fam, engine.KernelTileBF16)
		if err != nil {
			t.Fatal(err)
		}
		out, stats, err := e.Generate([][]int{Prompt(e, 8, 1)}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(out[0]) != 4 || stats.TTFT() <= 0 {
			t.Errorf("%s: generation broken", fam)
		}
	}
	if _, err := TinyEngine("gpt", engine.KernelBlocked); err == nil {
		t.Error("unknown family must error")
	}
	if e, err := TinyEngine("opt", engine.KernelInt8); err != nil || e == nil {
		t.Errorf("int8 tiny engine must auto-quantize: %v", err)
	}
}
