package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
)

// Simulate OPT-30B on the SPR Max CPU in its best configuration.
func ExampleSimulateCPU() {
	res, err := core.SimulateCPU(core.SPRQuadFlat(48), core.MustModel("OPT-30B"), 1, 128, 32)
	if err != nil {
		panic(err)
	}
	fmt.Printf("TPOT %.0f ms, throughput %.1f tokens/s\n",
		res.Latency.TPOT*1e3, res.Throughput.E2E)
	// Output: TPOT 124 ms, throughput 8.0 tokens/s
}

// Offloading engages automatically for models beyond GPU memory.
func ExampleSimulateGPU() {
	res, err := core.SimulateGPU(core.A100(), core.MustModel("OPT-30B"), 1, 128, 32)
	if err != nil {
		panic(err)
	}
	fmt.Printf("offloaded: %v, PCIe share %.0f%%\n",
		res.TransferSeconds > 0, res.PCIeFraction()*100)
	// Output: offloaded: true, PCIe share 96%
}

// The functional engine generates real tokens at tiny scale.
func ExampleTinyEngine() {
	eng, err := core.TinyEngine("opt", engine.KernelTileBF16)
	if err != nil {
		panic(err)
	}
	out, _, err := eng.Generate([][]int{core.Prompt(eng, 8, 1)}, 4)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(out[0]), "tokens generated")
	// Output: 4 tokens generated
}

// Every paper experiment is runnable by key.
func ExampleExperimentByKey() {
	e, err := core.ExperimentByKey("table2")
	if err != nil {
		panic(err)
	}
	tabs, err := e.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println(tabs[0].Rows[1][0])
	// Output: H100-80GB
}
