// Package counters emulates the hardware performance counters the paper
// reports via Linux perf and VTune (Figs 11, 12, 15, 16): LLC misses per
// kilo-instruction, core utilization, normalized load/store counts, remote
// LLC accesses, and UPI utilization.
//
// Counts are derived from the same quantities the performance model
// prices: retired vector/matrix instructions follow from FLOPs and the
// ISA's FLOPs-per-instruction, memory-side counters follow from the bytes
// each phase streams, and locality counters follow from the NUMA model's
// remote-access fractions.
package counters

// CacheLineBytes is the coherence granularity of the modeled CPUs.
const CacheLineBytes = 64

// FLOPs retired per dynamic instruction for each compute path. An AMX
// TDPBF16PS retires 16×16×32 MACs; an AVX-512 BF16 dot-product instruction
// retires 32 MACs per 512-bit lane-pair.
const (
	FLOPsPerInstrAMX    = 16 * 16 * 32 * 2
	FLOPsPerInstrAVX512 = 64
)

// scalarOverheadPerFLOP models the scalar bookkeeping instructions
// (address generation, loop control, framework glue) retired per
// floating-point operation's worth of work.
const scalarOverheadPerFLOP = 0.002

// Inputs are the phase-level quantities the performance model hands to the
// counter emulation.
type Inputs struct {
	FLOPs           float64 // floating-point operations executed
	FLOPsPerInstr   float64 // of the dominant compute path
	BytesFromMemory float64 // bytes streamed past the LLC (misses)
	BytesRead       float64 // total bytes loaded (incl. cache hits)
	BytesWritten    float64 // total bytes stored
	ComputeSeconds  float64 // time the cores spent compute-bound
	TotalSeconds    float64 // wall-clock time of the phase
	RemoteFraction  float64 // LLC misses served by a remote NUMA domain
	UPIFraction     float64 // bytes crossing sockets over UPI
	UPIBandwidthGBs float64 // available UPI bandwidth
	ActiveCores     int
	TotalCores      int
}

// Report is the emulated counter set for one run.
type Report struct {
	Instructions     float64
	Loads            float64
	Stores           float64
	LLCMisses        float64
	LLCMPKI          float64 // misses per kilo-instruction
	CoreUtilization  float64 // 0..1, fraction of cycle capacity doing work
	RemoteLLCAccess  float64 // LLC misses served remotely
	UPIUtilization   float64 // 0..1 of UPI bandwidth
	PhysicalCoreUtil float64 // CoreUtilization × ActiveCores/TotalCores
	// MemoryBoundFraction is the fraction of the phase's wall time the
	// cores spent stalled on memory rather than computing — the
	// complement of CoreUtilization, reported separately because it is
	// the quantity the paper's bottleneck analysis reasons about.
	MemoryBoundFraction float64
}

// Derive computes the counter report from the model inputs.
func Derive(in Inputs) Report {
	var r Report
	if in.FLOPsPerInstr <= 0 {
		in.FLOPsPerInstr = FLOPsPerInstrAVX512
	}
	compute := in.FLOPs / in.FLOPsPerInstr
	loads := in.BytesRead / CacheLineBytes
	stores := in.BytesWritten / CacheLineBytes
	overhead := in.FLOPs * scalarOverheadPerFLOP
	r.Instructions = compute + loads + stores + overhead
	r.Loads = loads
	r.Stores = stores
	r.LLCMisses = in.BytesFromMemory / CacheLineBytes
	if r.Instructions > 0 {
		r.LLCMPKI = r.LLCMisses / (r.Instructions / 1000)
	}
	if in.TotalSeconds > 0 {
		r.CoreUtilization = clamp01(in.ComputeSeconds / in.TotalSeconds)
		r.MemoryBoundFraction = 1 - r.CoreUtilization
		if in.UPIBandwidthGBs > 0 {
			upiBytes := in.BytesFromMemory * in.UPIFraction
			r.UPIUtilization = clamp01(upiBytes / 1e9 / in.UPIBandwidthGBs / in.TotalSeconds)
		}
	}
	r.RemoteLLCAccess = r.LLCMisses * in.RemoteFraction
	if in.TotalCores > 0 {
		r.PhysicalCoreUtil = r.CoreUtilization * float64(in.ActiveCores) / float64(in.TotalCores)
	} else {
		r.PhysicalCoreUtil = r.CoreUtilization
	}
	return r
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
