package counters

import (
	"testing"
	"testing/quick"
)

func baseInputs() Inputs {
	return Inputs{
		FLOPs:           1e12,
		FLOPsPerInstr:   FLOPsPerInstrAMX,
		BytesFromMemory: 26e9,
		BytesRead:       60e9,
		BytesWritten:    5e9,
		ComputeSeconds:  0.02,
		TotalSeconds:    0.06,
		RemoteFraction:  0.1,
		UPIFraction:     0,
		UPIBandwidthGBs: 62.4,
		ActiveCores:     48,
		TotalCores:      48,
	}
}

func TestDeriveBasics(t *testing.T) {
	r := Derive(baseInputs())
	if r.Instructions <= 0 || r.LLCMisses <= 0 || r.LLCMPKI <= 0 {
		t.Fatalf("non-positive counters: %+v", r)
	}
	wantMisses := 26e9 / 64
	if r.LLCMisses != wantMisses {
		t.Errorf("LLC misses = %g, want %g", r.LLCMisses, wantMisses)
	}
	if r.CoreUtilization < 0.32 || r.CoreUtilization > 0.34 {
		t.Errorf("core util = %g, want 1/3", r.CoreUtilization)
	}
	if r.RemoteLLCAccess != r.LLCMisses*0.1 {
		t.Error("remote LLC accesses wrong")
	}
}

// TestMPKIFallsWithBatchScaling models the Fig 11/12 trend: multiplying
// compute (batch) while memory traffic stays near-constant must lower
// MPKI and raise core utilization.
func TestMPKIFallsWithBatchScaling(t *testing.T) {
	b1 := baseInputs()
	b32 := b1
	b32.FLOPs *= 32    // decode compute scales with batch
	b32.BytesRead *= 2 // KV grows, weights don't
	b32.BytesFromMemory *= 2
	b32.ComputeSeconds *= 20 // compute time grows with batch
	b32.TotalSeconds *= 4    // total grows less: step stays memory-dominated
	r1, r32 := Derive(b1), Derive(b32)
	if r32.LLCMPKI >= r1.LLCMPKI {
		t.Errorf("MPKI must fall with batch: %g -> %g", r1.LLCMPKI, r32.LLCMPKI)
	}
	if r32.CoreUtilization <= r1.CoreUtilization {
		t.Errorf("core util must rise with batch: %g -> %g",
			r1.CoreUtilization, r32.CoreUtilization)
	}
}

func TestUPIUtilization(t *testing.T) {
	in := baseInputs()
	in.UPIFraction = 0.5
	in.TotalSeconds = 0.1
	r := Derive(in)
	// 13 GB over UPI in 0.1 s = 130 GB/s demand on a 62.4 GB/s link → 1.0.
	if r.UPIUtilization != 1 {
		t.Errorf("UPI utilization = %g, want saturated 1.0", r.UPIUtilization)
	}
	in.UPIFraction = 0
	if Derive(in).UPIUtilization != 0 {
		t.Error("no UPI traffic must mean zero utilization")
	}
}

func TestAMXRetiresFewerInstructions(t *testing.T) {
	amx := baseInputs()
	avx := amx
	avx.FLOPsPerInstr = FLOPsPerInstrAVX512
	if Derive(amx).Instructions >= Derive(avx).Instructions {
		t.Error("AMX path must retire fewer instructions for equal FLOPs")
	}
}

func TestDefaultsAndClamps(t *testing.T) {
	in := baseInputs()
	in.FLOPsPerInstr = 0 // must default, not divide by zero
	if r := Derive(in); r.Instructions <= 0 {
		t.Error("default FLOPs-per-instr not applied")
	}
	in = baseInputs()
	in.ComputeSeconds = 10
	in.TotalSeconds = 1
	if r := Derive(in); r.CoreUtilization != 1 {
		t.Error("core utilization must clamp to 1")
	}
	in = baseInputs()
	in.TotalSeconds = 0
	r := Derive(in)
	if r.CoreUtilization != 0 || r.UPIUtilization != 0 {
		t.Error("zero wall time must yield zero utilizations")
	}
	in = baseInputs()
	in.TotalCores = 0
	if r := Derive(in); r.PhysicalCoreUtil != r.CoreUtilization {
		t.Error("zero TotalCores must fall back to CoreUtilization")
	}
}

func TestCounterProperties(t *testing.T) {
	f := func(flopsRaw, memRaw uint32, remotePct uint8) bool {
		in := baseInputs()
		in.FLOPs = float64(flopsRaw) + 1
		in.BytesFromMemory = float64(memRaw) + 1
		in.BytesRead = in.BytesFromMemory * 2
		in.RemoteFraction = float64(remotePct%101) / 100
		r := Derive(in)
		return r.Instructions > 0 &&
			r.LLCMPKI >= 0 &&
			r.RemoteLLCAccess <= r.LLCMisses+1e-9 &&
			r.CoreUtilization >= 0 && r.CoreUtilization <= 1 &&
			r.UPIUtilization >= 0 && r.UPIUtilization <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
