// Package econ quantifies the paper's economic motivation: footnote 1
// notes the Xeon Max 9468's listing price is ~3× below an H100-80GB, and
// §I frames CPU inference as attractive "when considering the hardware
// cost". This module combines the performance model's tokens/s with
// hardware listing prices into throughput-per-dollar, the metric that
// decides whether an AMX CPU or an offloading GPU serves a model more
// economically.
package econ

import (
	"fmt"

	"repro/internal/metrics"
)

// Pricing is a hardware listing price in USD plus the part's TDP. The
// paper's proxy values (late-2023/2024 listing prices, as in its footnote
// 1 and ref [41]): the Max 9468 lists ~$12.9k, the H100-80GB $30–40k, the
// A100-40GB ~$10k on the refurb market it competed in; §V-B puts
// Grace-Hopper at ~4× the SPR's cost. TDPs are the public specifications.
// A server chassis, memory and power delivery are deliberately excluded,
// as in the paper's own proxy.
type Pricing struct {
	Name     string
	PriceUSD float64
	TDPWatts float64
}

// Paper-proxy listing prices and spec TDPs.
var (
	PriceSPRMax9468 = Pricing{Name: "Xeon Max 9468", PriceUSD: 12980, TDPWatts: 350}
	PriceICL8352Y   = Pricing{Name: "Xeon 8352Y", PriceUSD: 3450, TDPWatts: 205}
	PriceA100       = Pricing{Name: "A100-40GB", PriceUSD: 10000, TDPWatts: 400}
	PriceH100       = Pricing{Name: "H100-80GB", PriceUSD: 36500, TDPWatts: 700}
	PriceGH200      = Pricing{Name: "GH200", PriceUSD: 4 * 12980, TDPWatts: 1000}
)

// Efficiency is the cost-normalized view of one simulation result.
type Efficiency struct {
	Platform               string
	PriceUSD               float64
	TokensPerSecond        float64
	TokensPerSecondPerKUSD float64 // throughput per thousand dollars
	// JoulesPerToken is a TDP-based upper bound on energy per generated
	// token (the part running at its rated power for the whole request).
	JoulesPerToken float64
}

// Evaluate derives cost efficiency from a simulated result. For CPU
// platforms that use one socket of a two-socket server, pass the
// per-socket price (the paper's per-processor listing).
func Evaluate(res metrics.Result, price Pricing) (Efficiency, error) {
	if price.PriceUSD <= 0 {
		return Efficiency{}, fmt.Errorf("econ: non-positive price for %s", price.Name)
	}
	e := Efficiency{
		Platform:               res.Platform,
		PriceUSD:               price.PriceUSD,
		TokensPerSecond:        res.Throughput.E2E,
		TokensPerSecondPerKUSD: res.Throughput.E2E / (price.PriceUSD / 1000),
	}
	if price.TDPWatts > 0 && res.Throughput.E2E > 0 {
		e.JoulesPerToken = price.TDPWatts / res.Throughput.E2E
	}
	return e, nil
}

// PriceRatio returns a.Price/b.Price — e.g. H100 vs SPR ≈ 2.8, the
// paper's "3× cheaper" proxy.
func PriceRatio(a, b Pricing) float64 {
	return a.PriceUSD / b.PriceUSD
}
