package econ

import (
	"testing"

	"repro/internal/metrics"
)

func TestPriceRatioMatchesPaperFootnote(t *testing.T) {
	// Footnote 1: the Max 9468 is ~3× cheaper than an H100-80GB.
	r := PriceRatio(PriceH100, PriceSPRMax9468)
	if r < 2.4 || r > 3.6 {
		t.Errorf("H100/SPR price ratio = %.2f, paper proxy ≈3", r)
	}
}

func TestEvaluate(t *testing.T) {
	res := metrics.New("SPR", "OPT-30B", 1, 128, 32, 0.2, 3.0)
	e, err := Evaluate(res, PriceSPRMax9468)
	if err != nil {
		t.Fatal(err)
	}
	if e.TokensPerSecond != res.Throughput.E2E {
		t.Error("tokens/s must pass through")
	}
	want := res.Throughput.E2E / (PriceSPRMax9468.PriceUSD / 1000)
	if e.TokensPerSecondPerKUSD != want {
		t.Errorf("per-k$ = %v, want %v", e.TokensPerSecondPerKUSD, want)
	}
	if _, err := Evaluate(res, Pricing{Name: "free"}); err == nil {
		t.Error("zero price must fail")
	}
}
