package engine

import (
	"repro/internal/kernels"
)

// arena is per-Session scratch for the fused batch decode path. Every
// buffer is grow-only and reused across decode steps, so steady-state
// decode performs zero per-token heap allocations — the paper's decode
// phase is memory-bandwidth-bound, and allocator traffic plus GC pressure
// on top of it is pure overhead. The arena also owns the reusable packed
// GEMM dispatch state (job) and the attention fan-out descriptor (attn),
// keeping pool dispatch allocation-free too.
type arena struct {
	x      []float32 // [batch, d] residual stream
	h      []float32 // [batch, d] normed hidden
	q      []float32 // [batch, d] query projection
	k      []float32 // [batch, kvDim]
	v      []float32 // [batch, kvDim]
	att    []float32 // [batch, d] attention output
	proj   []float32 // [batch, d] output projection
	up     []float32 // [batch, dff]
	gate   []float32 // [batch, dff]
	logits []float32 // [batch, vocab] — the reused logits view DecodeStep returns
	scores []float32 // [batch, ctxCap] attention score scratch
	accs   []float64 // [batch, headDim] flash-attention accumulators
	xq     []int8    // [max(d,dff)] per-row int8 activation scratch
	next   []int     // [batch] sampled tokens, reused view

	batch  int
	ctxCap int

	job  kernels.PackedJob
	attn attnJob
}

// ensure sizes the arena for a batch of the given size attending over at
// most ctxCap positions. Sizing scores to the KV cache *capacity* (not the
// current context) means no buffer grows as decode advances.
func (ar *arena) ensure(e *Engine, batch, ctxCap int) {
	if batch <= ar.batch && ctxCap <= ar.ctxCap {
		return
	}
	if batch < ar.batch {
		batch = ar.batch
	}
	if ctxCap < ar.ctxCap {
		ctxCap = ar.ctxCap
	}
	d, kvDim, dff := e.cfg.DModel, e.cfg.KVDim(), e.cfg.DFF
	ar.x = make([]float32, batch*d)
	ar.h = make([]float32, batch*d)
	ar.q = make([]float32, batch*d)
	ar.k = make([]float32, batch*kvDim)
	ar.v = make([]float32, batch*kvDim)
	ar.att = make([]float32, batch*d)
	ar.proj = make([]float32, batch*d)
	ar.up = make([]float32, batch*dff)
	ar.gate = make([]float32, batch*dff)
	ar.logits = make([]float32, batch*e.cfg.Vocab)
	ar.scores = make([]float32, batch*ctxCap)
	ar.accs = make([]float64, batch*e.cfg.HeadDim())
	n := d
	if dff > n {
		n = dff
	}
	ar.xq = make([]int8, n)
	ar.next = make([]int, batch)
	ar.batch, ar.ctxCap = batch, ctxCap
}

// attnJob fans causal attention for one decode step out over the worker
// pool: the batched linear layers run as fused GEMMs, but attention stays
// per-KV-cache (each sequence reads its own cache), so the B independent
// single-row attentions are the natural parallel unit.
type attnJob struct {
	e      *Engine
	caches []KVStore
	layer  int
	pos    int
	q      []float32 // [batch, d]
	att    []float32 // [batch, d]
	scores []float32 // [batch, ctxCap]
	accs   []float64 // [batch, headDim]
	ctxCap int
}

// RunPart implements kernels.Task: part b computes attention for sequence b.
func (j *attnJob) RunPart(b, parts int) {
	e := j.e
	d := e.cfg.DModel
	qrow := j.q[b*d : (b+1)*d]
	arow := j.att[b*d : (b+1)*d]
	if e.opts.FlashAttention {
		hd := e.cfg.HeadDim()
		e.flashRow(j.caches[b], j.layer, j.pos, qrow, arow, j.accs[b*hd:(b+1)*hd])
	} else {
		e.attnRow(j.caches[b], j.layer, j.pos, qrow, arow, j.scores[b*j.ctxCap:(b+1)*j.ctxCap])
	}
}
