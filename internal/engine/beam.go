package engine

import (
	"fmt"
	"math"
	"sort"
)

// Beam search: keep the Width highest-scoring partial continuations,
// expanding each by its best next tokens every step. Scores are summed
// log-probabilities. Each beam owns an independent KV cache, cloned at
// branch points — the memory amplification that motivates paged KV
// allocators with copy-on-write (package kvpool models the allocation
// side; here the caches are physically copied).

// BeamResult is one completed hypothesis.
type BeamResult struct {
	Tokens  []int
	LogProb float64
}

// beam is one live hypothesis during search.
type beam struct {
	cache   *KVCache
	pos     int
	tokens  []int
	logProb float64
	last    int
}

// logSoftmax converts logits into log-probabilities.
func logSoftmax(logits []float32) []float64 {
	maxL := float64(logits[0])
	for _, v := range logits[1:] {
		if float64(v) > maxL {
			maxL = float64(v)
		}
	}
	var sum float64
	lps := make([]float64, len(logits))
	for i, v := range logits {
		e := math.Exp(float64(v) - maxL)
		lps[i] = float64(v) - maxL
		sum += e
	}
	logSum := math.Log(sum)
	for i := range lps {
		lps[i] -= logSum
	}
	return lps
}

// BeamSearch generates maxNew tokens for one prompt keeping `width`
// hypotheses, and returns completed hypotheses best-first. Width 1
// reduces exactly to greedy generation.
func (e *Engine) BeamSearch(prompt []int, maxNew, width int) ([]BeamResult, error) {
	if maxNew <= 0 {
		return nil, errMaxNew
	}
	if width <= 0 {
		return nil, fmt.Errorf("engine: beam width must be positive")
	}
	if len(prompt) == 0 {
		return nil, fmt.Errorf("engine: empty prompt")
	}
	if err := e.checkTokens(prompt); err != nil {
		return nil, err
	}

	maxSeq := len(prompt) + maxNew
	d := e.cfg.DModel

	// Prefill once; all beams share the prompt prefix by cloning.
	root := NewKVCache(e.cfg.Layers, e.cfg.KVDim(), maxSeq)
	x := make([]float32, len(prompt)*d)
	for i, tok := range prompt {
		e.embed(tok, i, x[i*d:(i+1)*d])
	}
	e.forwardSeq(root, x, len(prompt), 0)
	root.ExtendTo(len(prompt))
	lps := logSoftmax(e.logits(x[(len(prompt)-1)*d:]))

	beams := seedBeams(root, len(prompt), lps, width)
	for step := 1; step < maxNew; step++ {
		type expansion struct {
			parent  int
			token   int
			logProb float64
			lps     []float64 // filled after forward
		}
		// Advance every beam one step and collect its token distribution.
		dists := make([][]float64, len(beams))
		for i := range beams {
			bm := &beams[i]
			xv := make([]float32, d)
			e.embed(bm.last, bm.pos, xv)
			e.forwardSeq(bm.cache, xv, 1, bm.pos)
			bm.cache.ExtendTo(bm.pos + 1)
			bm.pos++
			dists[i] = logSoftmax(e.logits(xv))
		}
		// Gather the top `width` continuations of each beam, then keep the
		// global top `width`.
		var exps []expansion
		for i, dist := range dists {
			for _, tok := range topK(dist, width) {
				exps = append(exps, expansion{
					parent: i, token: tok,
					logProb: beams[i].logProb + dist[tok],
				})
			}
		}
		sort.SliceStable(exps, func(a, b int) bool { return exps[a].logProb > exps[b].logProb })
		if len(exps) > width {
			exps = exps[:width]
		}
		// Materialize the surviving beams (cloning caches shared by more
		// than one survivor).
		used := map[int]int{}
		next := make([]beam, 0, len(exps))
		for _, ex := range exps {
			parent := beams[ex.parent]
			cache := parent.cache
			if used[ex.parent] > 0 {
				cache = parent.cache.Clone()
			}
			used[ex.parent]++
			next = append(next, beam{
				cache: cache, pos: parent.pos,
				tokens:  append(append([]int{}, parent.tokens...), ex.token),
				logProb: ex.logProb,
				last:    ex.token,
			})
		}
		beams = next
	}

	out := make([]BeamResult, len(beams))
	for i, bm := range beams {
		out[i] = BeamResult{Tokens: bm.tokens, LogProb: bm.logProb}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].LogProb > out[b].LogProb })
	return out, nil
}

// seedBeams creates the initial beams from the prefill distribution.
func seedBeams(root *KVCache, pos int, lps []float64, width int) []beam {
	toks := topK(lps, width)
	beams := make([]beam, 0, len(toks))
	for i, tok := range toks {
		cache := root
		if i > 0 {
			cache = root.Clone()
		}
		beams = append(beams, beam{
			cache: cache, pos: pos,
			tokens:  []int{tok},
			logProb: lps[tok],
			last:    tok,
		})
	}
	return beams
}

// topK returns the indices of the k largest values, best first.
func topK(vals []float64, k int) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
