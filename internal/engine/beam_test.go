package engine

import (
	"math"
	"testing"

	"repro/internal/model"
)

// TestBeamWidthOneIsGreedy: beam search with width 1 must produce exactly
// the greedy tokens.
func TestBeamWidthOneIsGreedy(t *testing.T) {
	for _, f := range []model.Family{model.OPT, model.LLaMA2} {
		e := tinyEngine(t, f, KernelBlocked)
		p := prompt(e, 10, 61)
		want, _, err := e.Generate([][]int{p}, 7)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.BeamSearch(p, 7, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 {
			t.Fatalf("%s: width-1 returned %d hypotheses", f, len(res))
		}
		for i := range want[0] {
			if res[0].Tokens[i] != want[0][i] {
				t.Fatalf("%s: width-1 beam diverged from greedy at %d", f, i)
			}
		}
	}
}

// TestBeamImprovesLogProb: the best width-4 hypothesis must score at
// least as well as the greedy sequence (greedy is in the width-1 search
// space, which is a subset).
func TestBeamImprovesLogProb(t *testing.T) {
	e := tinyEngine(t, model.OPT, KernelBlocked)
	p := prompt(e, 10, 62)
	greedy, err := e.BeamSearch(p, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := e.BeamSearch(p, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if wide[0].LogProb < greedy[0].LogProb-1e-9 {
		t.Errorf("width-4 best %.4f worse than greedy %.4f",
			wide[0].LogProb, greedy[0].LogProb)
	}
	if len(wide) != 4 {
		t.Errorf("width-4 returned %d hypotheses", len(wide))
	}
	// Hypotheses sorted best-first and all distinct.
	seen := map[string]bool{}
	for i, h := range wide {
		if i > 0 && h.LogProb > wide[i-1].LogProb+1e-12 {
			t.Error("hypotheses not sorted")
		}
		key := fmtTokens(h.Tokens)
		if seen[key] {
			t.Errorf("duplicate hypothesis %v", h.Tokens)
		}
		seen[key] = true
		if len(h.Tokens) != 6 {
			t.Errorf("hypothesis length %d", len(h.Tokens))
		}
	}
}

func fmtTokens(toks []int) string {
	s := ""
	for _, t := range toks {
		s += string(rune(t + 33))
	}
	return s
}

// TestBeamLogProbsAreValid: scores must be finite negative log-probs.
func TestBeamLogProbsAreValid(t *testing.T) {
	e := tinyEngine(t, model.LLaMA2, KernelBlocked)
	res, err := e.BeamSearch(prompt(e, 8, 63), 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res {
		if math.IsNaN(h.LogProb) || math.IsInf(h.LogProb, 0) || h.LogProb > 0 {
			t.Errorf("invalid log-prob %v", h.LogProb)
		}
	}
}

// TestBeamCacheIsolation: running beam search must not corrupt a
// subsequent greedy generation (cache cloning must be complete).
func TestBeamCacheIsolation(t *testing.T) {
	e := tinyEngine(t, model.OPT, KernelBlocked)
	p := prompt(e, 8, 64)
	before, _, err := e.Generate([][]int{p}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.BeamSearch(p, 5, 3); err != nil {
		t.Fatal(err)
	}
	after, _, err := e.Generate([][]int{p}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before[0] {
		if before[0][i] != after[0][i] {
			t.Fatal("beam search corrupted engine state")
		}
	}
}

func TestBeamValidation(t *testing.T) {
	e := tinyEngine(t, model.OPT, KernelBlocked)
	if _, err := e.BeamSearch(nil, 4, 2); err == nil {
		t.Error("empty prompt must fail")
	}
	if _, err := e.BeamSearch([]int{1}, 0, 2); err == nil {
		t.Error("zero maxNew must fail")
	}
	if _, err := e.BeamSearch([]int{1}, 4, 0); err == nil {
		t.Error("zero width must fail")
	}
	if _, err := e.BeamSearch([]int{-5}, 4, 2); err == nil {
		t.Error("bad token must fail")
	}
}

func TestLogSoftmax(t *testing.T) {
	lps := logSoftmax([]float32{1, 2, 3})
	var sum float64
	for _, lp := range lps {
		sum += math.Exp(lp)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("log-softmax probs sum to %v", sum)
	}
	if !(lps[2] > lps[1] && lps[1] > lps[0]) {
		t.Error("ordering not preserved")
	}
}

func TestKVCacheClone(t *testing.T) {
	c := NewKVCache(1, 2, 4)
	c.Put(0, 0, []float32{1, 2}, []float32{3, 4})
	c.ExtendTo(1)
	d := c.Clone()
	d.Put(0, 1, []float32{9, 9}, []float32{9, 9})
	d.ExtendTo(2)
	if c.Len() != 1 {
		t.Error("clone must not share length")
	}
	c.Put(0, 1, []float32{5, 5}, []float32{5, 5})
	c.ExtendTo(2)
	if d.Keys(0)[2] != 9 || c.Keys(0)[2] != 5 {
		t.Error("clone must not share storage")
	}
}
