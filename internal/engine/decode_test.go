package engine

import (
	"sync"
	"testing"

	"repro/internal/kernels"
	"repro/internal/model"
	"repro/internal/tensor"
)

// tinyEngineOpts builds an engine over Tiny weights with full Options
// control (tinyEngine fixes Workers=2 and default packing).
func tinyEngineOpts(t *testing.T, f model.Family, opts Options) *Engine {
	t.Helper()
	cfg := model.Tiny(f)
	w, err := NewWeights(cfg, 42, tensor.FP32)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Kernel == KernelInt8 {
		w.QuantizeAll()
	}
	e, err := New(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func generateTokens(t *testing.T, e *Engine, batch, promptLen, maxNew int) [][]int {
	t.Helper()
	prompts := make([][]int, batch)
	for b := range prompts {
		prompts[b] = prompt(e, promptLen, int64(100+b))
	}
	out, _, err := e.Generate(prompts, maxNew)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFusedDecodeMatchesPerSeq is the tentpole invariant: the fused
// batched decode path (packed weights, arena scratch, pooled attention)
// must emit exactly the same tokens as the legacy per-sequence loop, for
// every kernel tier, both model families, and several batch sizes.
func TestFusedDecodeMatchesPerSeq(t *testing.T) {
	kernelsUnder := []Kernel{KernelBlocked, KernelParallel, KernelTileBF16, KernelTileBF16Parallel, KernelInt8}
	for _, f := range []model.Family{model.OPT, model.LLaMA2} {
		for _, k := range kernelsUnder {
			for _, batch := range []int{1, 3, 8} {
				fused := tinyEngineOpts(t, f, Options{Kernel: k, Workers: 2})
				legacy := tinyEngineOpts(t, f, Options{Kernel: k, Workers: 2, DisablePacking: true})
				got := generateTokens(t, fused, batch, 6, 10)
				want := generateTokens(t, legacy, batch, 6, 10)
				for b := range want {
					for i := range want[b] {
						if got[b][i] != want[b][i] {
							t.Fatalf("%s/%s batch=%d: fused decode diverged at seq %d tok %d (%d vs %d)",
								f, k, batch, b, i, got[b][i], want[b][i])
						}
					}
				}
			}
		}
	}
}

// TestFusedDecodeFlashAttention covers the pooled flash-attention row path.
func TestFusedDecodeFlashAttention(t *testing.T) {
	for _, f := range []model.Family{model.OPT, model.LLaMA2} {
		fused := tinyEngineOpts(t, f, Options{Kernel: KernelTileBF16, FlashAttention: true})
		legacy := tinyEngineOpts(t, f, Options{Kernel: KernelTileBF16, FlashAttention: true, DisablePacking: true})
		got := generateTokens(t, fused, 4, 5, 8)
		want := generateTokens(t, legacy, 4, 5, 8)
		for b := range want {
			for i := range want[b] {
				if got[b][i] != want[b][i] {
					t.Fatalf("%s flash: fused decode diverged at seq %d tok %d", f, b, i)
				}
			}
		}
	}
}

// TestFusedDecodePagedSession checks the fused path over paged KV caches.
func TestFusedDecodePagedSession(t *testing.T) {
	e := tinyEngineOpts(t, model.LLaMA2, Options{Kernel: KernelBlocked})
	p := prompt(e, 6, 7)
	dense := e.NewSession(2, 32)
	paged := e.NewPagedSession(2, 32, 4)
	td, err := e.Prefill(dense, [][]int{p, p})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := e.Prefill(paged, [][]int{p, p})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 10; step++ {
		if td[0] != tp[0] || td[1] != tp[1] {
			t.Fatalf("step %d: paged fused decode diverged", step)
		}
		// Copy: DecodeStep returns a reused view.
		tdc := append([]int(nil), td...)
		tpc := append([]int(nil), tp...)
		if td, err = e.DecodeStep(dense, tdc); err != nil {
			t.Fatal(err)
		}
		if tp, err = e.DecodeStep(paged, tpc); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDecodeStepZeroAlloc is the acceptance criterion: once the arena is
// warm, a steady-state fused decode step performs ZERO heap allocations —
// including the logits, which are served from the arena as a reused view.
func TestDecodeStepZeroAlloc(t *testing.T) {
	for _, k := range []Kernel{KernelBlocked, KernelTileBF16, KernelTileBF16Parallel, KernelInt8} {
		for _, f := range []model.Family{model.OPT, model.LLaMA2} {
			e := tinyEngineOpts(t, f, Options{Kernel: k, Workers: 2})
			s := e.NewSession(4, e.Config().MaxSeq)
			prompts := make([][]int, 4)
			for b := range prompts {
				prompts[b] = prompt(e, 4, int64(b+1))
			}
			toks, err := e.Prefill(s, prompts)
			if err != nil {
				t.Fatal(err)
			}
			// One step warms the arena; AllocsPerRun then runs 1 warmup +
			// 20 measured steps, all within MaxSeq.
			toks, err = e.DecodeStep(s, toks)
			if err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(20, func() {
				var derr error
				toks, derr = e.DecodeStep(s, toks)
				if derr != nil {
					t.Fatal(derr)
				}
			})
			if allocs != 0 {
				t.Errorf("%s/%s: DecodeStep allocated %v times per step, want 0", f, k, allocs)
			}
		}
	}
}

// TestEnginesSharingPool runs two engines concurrently over one explicit
// kernels.Pool (the gateway-lane configuration) under load; run with -race.
func TestEnginesSharingPool(t *testing.T) {
	pool := kernels.NewPool(4)
	defer pool.Close()
	e1 := tinyEngineOpts(t, model.OPT, Options{Kernel: KernelTileBF16Parallel, Pool: pool})
	e2 := tinyEngineOpts(t, model.LLaMA2, Options{Kernel: KernelTileBF16Parallel, Pool: pool})

	want1 := generateTokens(t, e1, 2, 5, 8)
	want2 := generateTokens(t, e2, 2, 5, 8)

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for it := 0; it < 4; it++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			got := generateTokens(t, e1, 2, 5, 8)
			for b := range want1 {
				for i := range want1[b] {
					if got[b][i] != want1[b][i] {
						t.Errorf("shared pool: e1 output changed under concurrency")
						return
					}
				}
			}
		}()
		go func() {
			defer wg.Done()
			got := generateTokens(t, e2, 2, 5, 8)
			for b := range want2 {
				for i := range want2[b] {
					if got[b][i] != want2[b][i] {
						t.Errorf("shared pool: e2 output changed under concurrency")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestDecodeStepReturnsReusedView documents the API contract change from
// the logits/next-token arena: the slice DecodeStep returns is valid until
// the next step on the same session.
func TestDecodeStepReturnsReusedView(t *testing.T) {
	e := tinyEngineOpts(t, model.OPT, Options{Kernel: KernelBlocked})
	s := e.NewSession(2, 32)
	toks, err := e.Prefill(s, [][]int{prompt(e, 4, 1), prompt(e, 4, 2)})
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.DecodeStep(s, toks)
	if err != nil {
		t.Fatal(err)
	}
	first := append([]int(nil), a...)
	b, err := e.DecodeStep(s, a)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("DecodeStep should return the session's reused token view")
	}
	_ = first
}

// TestPackedWeightsSharedAcrossEngines: two engines over the same Weights
// must not race packing (ensurePacked is mutex-guarded, packs built once).
func TestPackedWeightsSharedAcrossEngines(t *testing.T) {
	cfg := model.Tiny(model.LLaMA2)
	w, err := NewWeights(cfg, 7, tensor.FP32)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(k Kernel) {
			defer wg.Done()
			if _, err := New(w, Options{Kernel: k}); err != nil {
				t.Error(err)
			}
		}([]Kernel{KernelBlocked, KernelTileBF16, KernelBlocked, KernelTileBF16}[i])
	}
	wg.Wait()
	if w.Layers[0].Wq.pf32 == nil || w.Layers[0].Wq.pbf16 == nil {
		t.Fatal("expected both precision packs after concurrent construction")
	}
}
