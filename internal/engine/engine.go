package engine

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/kernels"
	"repro/internal/model"
	"repro/internal/tensor"
)

var (
	errMaxNew    = errors.New("engine: maxNew must be positive")
	errNoPrompts = errors.New("engine: no prompts")
)

// forEachSeq runs f for every sequence index, in parallel when the engine
// is configured for sequence parallelism. It returns the first error.
func (e *Engine) forEachSeq(n int, f func(b int) error) error {
	if !e.opts.SeqParallel || n <= 1 {
		for b := 0; b < n; b++ {
			if err := f(b); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for b := 0; b < n; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			errs[b] = f(b)
		}(b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// lapTimer measures consecutive phase durations.
type lapTimer struct{ last time.Time }

func newTimer() *lapTimer { return &lapTimer{last: time.Now()} }

func (t *lapTimer) lap() float64 {
	now := time.Now()
	d := now.Sub(t.last).Seconds()
	t.last = now
	return d
}

// Options configures the execution of forward passes.
type Options struct {
	// Kernel selects the GEMM tier for linear layers.
	Kernel Kernel
	// Workers bounds goroutines for the parallel kernels (0 = GOMAXPROCS).
	Workers int
	// SeqParallel runs the independent sequences of a batch on separate
	// goroutines (sampling stays serialized, so outputs are identical to
	// serial execution).
	SeqParallel bool
	// FlashAttention switches attention to the single-pass online-softmax
	// formulation (numerically equivalent; one KV stream per query).
	FlashAttention bool
	// Pool is the persistent worker pool used by the packed kernels and
	// batched attention. Nil creates a private pool for the parallel kernel
	// tiers (serial tiers stay serial); passing one lets several engines —
	// e.g. all gateway lanes — share a single set of workers instead of
	// oversubscribing the machine.
	Pool *kernels.Pool
	// DisablePacking turns off packed weight shadows and the fused batch
	// decode path, keeping the legacy per-sequence loop and unpacked
	// kernels. It exists as the honest A/B baseline for benchmarks.
	DisablePacking bool
	// Hooks receive phase-completion callbacks from forward passes, so
	// callers (tracing, profiling) can attribute measured engine time
	// without wrapping every call site. Nil hooks are skipped.
	Hooks Hooks
}

// Hooks are optional observers of the engine's execution phases. They run
// synchronously on the calling goroutine after the phase completes, so
// implementations must be fast and must not call back into the engine.
type Hooks struct {
	// OnPrefill fires after a successful prompt prefill (monolithic or
	// chunked) with the batch size, prompt length in tokens, and the
	// measured wall time of the phase.
	OnPrefill func(batch, promptLen int, elapsed time.Duration)
	// OnDecodeStep fires after each successful decode step with the batch
	// size, the context position the step consumed (tokens already
	// committed), and the measured wall time of the step.
	OnDecodeStep func(batch, pos int, elapsed time.Duration)
}

// Engine executes forward passes for one set of weights.
type Engine struct {
	cfg  model.Config
	w    *Weights
	opts Options
	pool *kernels.Pool // persistent workers; nil means serial execution
}

// New returns an engine over the given weights. The INT8 kernel requires
// quantized shadows (Weights.QuantizeAll). Unless opts.DisablePacking is
// set, weights are panel-packed once here (shared Weights pack once) and
// a persistent worker pool is attached for the parallel kernel tiers.
func New(w *Weights, opts Options) (*Engine, error) {
	if w == nil {
		return nil, fmt.Errorf("engine: nil weights")
	}
	if (opts.Kernel == KernelInt8 || opts.Kernel == KernelLUT) && w.Layers[0].Wq.Q == nil {
		return nil, fmt.Errorf("engine: %s kernel requires quantized weights (call QuantizeAll)", opts.Kernel)
	}
	if opts.Kernel == KernelLUT && opts.DisablePacking {
		return nil, fmt.Errorf("engine: lut-gemv kernel requires packing (codebooks are built at pack time)")
	}
	pool := opts.Pool
	if pool == nil && (opts.Kernel == KernelParallel || opts.Kernel == KernelTileBF16Parallel) {
		pool = kernels.NewPool(opts.Workers)
	}
	if !opts.DisablePacking {
		w.ensurePacked(opts.Kernel)
	}
	return &Engine{cfg: w.Config, w: w, opts: opts, pool: pool}, nil
}

// Config returns the model configuration the engine runs.
func (e *Engine) Config() model.Config { return e.cfg }

// Session holds the per-request state of a batch of sequences generated in
// lockstep (homogeneous lengths, as in the paper's workloads).
type Session struct {
	caches []KVStore
	pos    int   // committed tokens per sequence
	ar     arena // reused scratch for the fused decode path
}

// NewSession allocates dense KV caches for a batch of sequences.
func (e *Engine) NewSession(batch, maxSeq int) *Session {
	if maxSeq <= 0 || maxSeq > e.cfg.MaxSeq {
		maxSeq = e.cfg.MaxSeq
	}
	s := &Session{caches: make([]KVStore, batch)}
	for i := range s.caches {
		s.caches[i] = NewKVCache(e.cfg.Layers, e.cfg.KVDim(), maxSeq)
	}
	return s
}

// NewPagedSession allocates paged KV caches (vLLM-style lazy blocks of
// blockSize positions). Generation is bit-identical to a dense session;
// only the allocation pattern differs.
func (e *Engine) NewPagedSession(batch, maxSeq, blockSize int) *Session {
	if maxSeq <= 0 || maxSeq > e.cfg.MaxSeq {
		maxSeq = e.cfg.MaxSeq
	}
	s := &Session{caches: make([]KVStore, batch)}
	for i := range s.caches {
		s.caches[i] = NewPagedKVCache(e.cfg.Layers, e.cfg.KVDim(), maxSeq, blockSize)
	}
	return s
}

// Pos returns the number of committed tokens per sequence.
func (s *Session) Pos() int { return s.pos }

// Batch returns the session's batch size.
func (s *Session) Batch() int { return len(s.caches) }

// KVBytes returns the total allocated KV-cache footprint of the session.
func (s *Session) KVBytes() int64 {
	var b int64
	for _, c := range s.caches {
		b += c.Bytes()
	}
	return b
}

// linear computes out = x·W (+bias) for m rows using the configured
// kernel. x is [m, l.In] row-major; out must hold m*l.Out values. When the
// weight has a packed shadow for the active tier it is consumed instead of
// the unpacked kernel — numerically bit-identical, but the per-call weight
// conversion and strided streaming disappear.
func (e *Engine) linear(m int, x []float32, l *Linear, out []float32) {
	if pl := e.lutOf(l); pl != nil {
		kernels.GemmLUT(m, x, pl, out)
		e.addBias(m, l, out)
		return
	}
	if pb := e.packOf(l); pb != nil {
		var j kernels.PackedJob
		kernels.GemmPackedPooled(e.pool, &j, m, x, pb, out)
		e.addBias(m, l, out)
		return
	}
	switch e.opts.Kernel {
	case KernelBlocked:
		kernels.GemmBlocked(m, l.Out, l.In, x, l.W, out)
	case KernelParallel:
		kernels.GemmParallel(m, l.Out, l.In, x, l.W, out, e.opts.Workers)
	case KernelTileBF16:
		kernels.GemmTileBF16(m, l.Out, l.In, x, l.W, out)
	case KernelTileBF16Parallel:
		kernels.GemmTileBF16Parallel(m, l.Out, l.In, x, l.W, out, e.opts.Workers)
	case KernelInt8:
		xq, xs := tensor.QuantizeInt8(x[:m*l.In])
		kernels.GemmInt8(m, l.Out, l.In, xq, xs, l.Q, l.QScale, out)
	default:
		kernels.GemmBlocked(m, l.Out, l.In, x, l.W, out)
	}
	e.addBias(m, l, out)
}

// packOf returns l's packed shadow for the active kernel tier, or nil when
// packing is disabled or the tier has none.
func (e *Engine) packOf(l *Linear) *kernels.PackedB {
	if e.opts.DisablePacking {
		return nil
	}
	return l.packFor(e.opts.Kernel)
}

// lutOf returns l's codebook pack when the LUT tier is active and the
// layer has one (the logits head deliberately has none — it stays exact).
func (e *Engine) lutOf(l *Linear) *kernels.PackedLUT {
	if e.opts.Kernel != KernelLUT || e.opts.DisablePacking {
		return nil
	}
	return l.plut
}

func (e *Engine) addBias(m int, l *Linear, out []float32) {
	if l.Bias == nil {
		return
	}
	for i := 0; i < m; i++ {
		kernels.AddBias(out[i*l.Out:(i+1)*l.Out], l.Bias)
	}
}

// linBatch is the fused-decode variant of linear: the batch's hidden rows
// multiply the weight in ONE GEMM call (scratch served from the arena, so
// steady state allocates nothing). The INT8 tier quantizes activations
// per row — each sequence keeps its own scale, exactly as the legacy
// per-sequence loop did, so fused and per-seq decode stay bit-identical.
func (e *Engine) linBatch(ar *arena, m int, x []float32, l *Linear, out []float32) {
	if pl := e.lutOf(l); pl != nil {
		// Row-independent lookups: fused and per-seq LUT decode agree bit
		// for bit, like every other tier.
		kernels.GemmLUT(m, x, pl, out)
		e.addBias(m, l, out)
		return
	}
	if e.opts.Kernel == KernelInt8 && l.Q != nil {
		for i := 0; i < m; i++ {
			xq := ar.xq[:l.In]
			xs := tensor.QuantizeInt8Into(xq, x[i*l.In:(i+1)*l.In])
			kernels.GemmInt8(1, l.Out, l.In, xq, xs, l.Q, l.QScale, out[i*l.Out:(i+1)*l.Out])
		}
		e.addBias(m, l, out)
		return
	}
	if pb := e.packOf(l); pb != nil {
		kernels.GemmPackedPooled(e.pool, &ar.job, m, x, pb, out)
		e.addBias(m, l, out)
		return
	}
	e.linear(m, x, l, out)
}

func (e *Engine) norm(x, gain, bias []float32) {
	if e.cfg.Family == model.OPT {
		kernels.LayerNorm(x, gain, bias, 1e-5)
	} else {
		kernels.RMSNorm(x, gain, 1e-5)
	}
}

// embed writes the embedding of token at position pos into dst.
func (e *Engine) embed(token, pos int, dst []float32) {
	d := e.cfg.DModel
	copy(dst, e.w.TokenEmb[token*d:(token+1)*d])
	if e.w.PosEmb != nil {
		kernels.Add(dst, e.w.PosEmb[pos*d:(pos+1)*d])
	}
}

// attention computes causal multi-head attention for rows x[q..] of one
// sequence. q/k/v are [rows, ·] projections for positions startPos..; the
// KV cache must already contain k/v for all attended positions. Output is
// written to att [rows, d].
func (e *Engine) attention(cache KVStore, layer, rows, startPos int, q, att []float32) {
	d := e.cfg.DModel
	maxCtx := startPos + rows
	scores := make([]float32, maxCtx)
	for i := 0; i < rows; i++ {
		e.attnRow(cache, layer, startPos+i, q[i*d:(i+1)*d], att[i*d:(i+1)*d], scores)
	}
}

// attnRow computes causal attention for the single query row q at position
// pos (attending to cache positions 0..pos), writing the result to att.
// scores is caller-provided scratch of at least pos+1 values, so the fused
// decode path can serve it from the session arena.
func (e *Engine) attnRow(cache KVStore, layer, pos int, q, att, scores []float32) {
	hd := e.cfg.HeadDim()
	groups := e.cfg.Heads / e.cfg.KVHeads
	scale := float32(1 / math.Sqrt(float64(hd)))

	ctx := pos + 1 // causal: attend to positions < ctx
	for h := 0; h < e.cfg.Heads; h++ {
		kvh := h / groups
		qv := q[h*hd : (h+1)*hd]
		sc := scores[:ctx]
		for t := 0; t < ctx; t++ {
			kr := cache.RowK(layer, t)
			sc[t] = kernels.Dot(qv, kr[kvh*hd:kvh*hd+hd]) * scale
		}
		kernels.Softmax(sc)
		out := att[h*hd : (h+1)*hd]
		for j := range out {
			out[j] = 0
		}
		for t := 0; t < ctx; t++ {
			w := sc[t]
			vr := cache.RowV(layer, t)
			vv := vr[kvh*hd : kvh*hd+hd]
			for j := range out {
				out[j] += w * vv[j]
			}
		}
	}
}

// forwardSeq runs all decoder blocks over rows tokens of one sequence
// starting at startPos, filling the KV cache, and returns the hidden
// states [rows, d]. x is modified in place.
func (e *Engine) forwardSeq(cache KVStore, x []float32, rows, startPos int) []float32 {
	d, kvDim, dff := e.cfg.DModel, e.cfg.KVDim(), e.cfg.DFF
	hd := e.cfg.HeadDim()
	h := make([]float32, rows*d)
	q := make([]float32, rows*d)
	k := make([]float32, rows*kvDim)
	v := make([]float32, rows*kvDim)
	att := make([]float32, rows*d)
	proj := make([]float32, rows*d)
	up := make([]float32, rows*dff)
	gate := make([]float32, rows*dff)

	for layer := range e.w.Layers {
		lw := &e.w.Layers[layer]
		// Attention block.
		copy(h, x)
		for i := 0; i < rows; i++ {
			e.norm(h[i*d:(i+1)*d], lw.AttnNormGain, lw.AttnNormBias)
		}
		e.linear(rows, h, &lw.Wq, q)
		e.linear(rows, h, &lw.Wk, k)
		e.linear(rows, h, &lw.Wv, v)
		if e.cfg.Family == model.LLaMA2 {
			for i := 0; i < rows; i++ {
				pos := startPos + i
				for head := 0; head < e.cfg.Heads; head++ {
					kernels.RoPE(q[i*d+head*hd:i*d+(head+1)*hd], pos, hd)
				}
				for head := 0; head < e.cfg.KVHeads; head++ {
					kernels.RoPE(k[i*kvDim+head*hd:i*kvDim+(head+1)*hd], pos, hd)
				}
			}
		}
		for i := 0; i < rows; i++ {
			cache.Put(layer, startPos+i, k[i*kvDim:(i+1)*kvDim], v[i*kvDim:(i+1)*kvDim])
		}
		if e.opts.FlashAttention {
			e.flashAttention(cache, layer, rows, startPos, q, att)
		} else {
			e.attention(cache, layer, rows, startPos, q, att)
		}
		e.linear(rows, att, &lw.Wo, proj)
		kernels.Add(x[:rows*d], proj[:rows*d])

		// Feed-forward block.
		copy(h, x)
		for i := 0; i < rows; i++ {
			e.norm(h[i*d:(i+1)*d], lw.FFNNormGain, lw.FFNNormBias)
		}
		if e.cfg.Family == model.LLaMA2 {
			e.linear(rows, h, &lw.WGate, gate)
			kernels.SiLU(gate[:rows*dff])
			e.linear(rows, h, &lw.W1, up)
			for i := range gate[:rows*dff] {
				gate[i] *= up[i]
			}
			e.linear(rows, gate, &lw.W2, proj)
		} else {
			e.linear(rows, h, &lw.W1, up)
			kernels.ReLU(up[:rows*dff])
			e.linear(rows, up, &lw.W2, proj)
		}
		kernels.Add(x[:rows*d], proj[:rows*d])
	}
	return x
}

// forwardBatch runs all decoder blocks over one token per sequence for a
// batch of B sequences at the same position — the fused decode step. The
// per-sequence hidden states are stacked into one M=B activation matrix so
// every linear layer runs ONCE per layer as a batched GEMM (the weights
// stream from memory once per layer instead of once per sequence — the
// paper's arithmetic-intensity lever); attention stays per-KV-cache but
// fans out over the worker pool. All scratch comes from the arena:
// steady-state decode performs zero heap allocations. Outputs are
// bit-identical to B independent forwardSeq calls.
func (e *Engine) forwardBatch(s *Session, x []float32, B, pos int) {
	ar := &s.ar
	d, kvDim, dff := e.cfg.DModel, e.cfg.KVDim(), e.cfg.DFF
	hd := e.cfg.HeadDim()

	for layer := range e.w.Layers {
		lw := &e.w.Layers[layer]
		// Attention block.
		copy(ar.h[:B*d], x[:B*d])
		for i := 0; i < B; i++ {
			e.norm(ar.h[i*d:(i+1)*d], lw.AttnNormGain, lw.AttnNormBias)
		}
		e.linBatch(ar, B, ar.h, &lw.Wq, ar.q)
		e.linBatch(ar, B, ar.h, &lw.Wk, ar.k)
		e.linBatch(ar, B, ar.h, &lw.Wv, ar.v)
		if e.cfg.Family == model.LLaMA2 {
			for i := 0; i < B; i++ {
				for head := 0; head < e.cfg.Heads; head++ {
					kernels.RoPE(ar.q[i*d+head*hd:i*d+(head+1)*hd], pos, hd)
				}
				for head := 0; head < e.cfg.KVHeads; head++ {
					kernels.RoPE(ar.k[i*kvDim+head*hd:i*kvDim+(head+1)*hd], pos, hd)
				}
			}
		}
		for b := 0; b < B; b++ {
			s.caches[b].Put(layer, pos, ar.k[b*kvDim:(b+1)*kvDim], ar.v[b*kvDim:(b+1)*kvDim])
		}
		ar.attn = attnJob{
			e: e, caches: s.caches, layer: layer, pos: pos,
			q: ar.q, att: ar.att, scores: ar.scores, accs: ar.accs,
			ctxCap: ar.ctxCap,
		}
		e.pool.Run(&ar.attn, B)
		e.linBatch(ar, B, ar.att, &lw.Wo, ar.proj)
		kernels.Add(x[:B*d], ar.proj[:B*d])

		// Feed-forward block.
		copy(ar.h[:B*d], x[:B*d])
		for i := 0; i < B; i++ {
			e.norm(ar.h[i*d:(i+1)*d], lw.FFNNormGain, lw.FFNNormBias)
		}
		if e.cfg.Family == model.LLaMA2 {
			e.linBatch(ar, B, ar.h, &lw.WGate, ar.gate)
			kernels.SiLU(ar.gate[:B*dff])
			e.linBatch(ar, B, ar.h, &lw.W1, ar.up)
			for i := range ar.gate[:B*dff] {
				ar.gate[i] *= ar.up[i]
			}
			e.linBatch(ar, B, ar.gate, &lw.W2, ar.proj)
		} else {
			e.linBatch(ar, B, ar.h, &lw.W1, ar.up)
			kernels.ReLU(ar.up[:B*dff])
			e.linBatch(ar, B, ar.up, &lw.W2, ar.proj)
		}
		kernels.Add(x[:B*d], ar.proj[:B*d])
	}
}

// logits computes the vocabulary logits for one hidden state (the final
// norm is applied to a copy).
func (e *Engine) logits(hidden []float32) []float32 {
	d := e.cfg.DModel
	h := append([]float32(nil), hidden[:d]...)
	e.norm(h, e.w.FinalNormGain, e.w.FinalNormBias)
	out := make([]float32, e.cfg.Vocab)
	if e.cfg.Family == model.OPT {
		// Tied head: logits = TokenEmb · h.
		if th := e.tiedHeadPack(); th != nil {
			var j kernels.PackedJob
			kernels.GemmPackedPooled(e.pool, &j, 1, h, th, out)
		} else {
			kernels.GemmTransB(1, e.cfg.Vocab, d, h, e.w.TokenEmb, out)
		}
	} else {
		e.linear(1, h, &e.w.LMHead, out)
	}
	return out
}

func (e *Engine) tiedHeadPack() *kernels.PackedB {
	if e.opts.DisablePacking {
		return nil
	}
	return e.w.tiedHead
}

// logitsBatch computes logits for the batch's final hidden states into the
// arena's reused logits buffer (no per-token vocab-sized allocation — the
// fix for Engine.logits allocating per sequence per token). hidden rows
// are copied into ar.h before the final norm; results land in ar.logits.
func (e *Engine) logitsBatch(ar *arena, m int, hidden []float32) {
	d := e.cfg.DModel
	copy(ar.h[:m*d], hidden[:m*d])
	for i := 0; i < m; i++ {
		e.norm(ar.h[i*d:(i+1)*d], e.w.FinalNormGain, e.w.FinalNormBias)
	}
	if e.cfg.Family == model.OPT {
		if th := e.tiedHeadPack(); th != nil {
			kernels.GemmPackedPooled(e.pool, &ar.job, m, ar.h, th, ar.logits)
		} else {
			kernels.GemmTransB(m, e.cfg.Vocab, d, ar.h, e.w.TokenEmb, ar.logits)
		}
	} else {
		e.linBatch(ar, m, ar.h, &e.w.LMHead, ar.logits)
	}
}

// Prefill processes the prompts of a batch (all of equal length) and
// returns the greedy first output token of each sequence.
func (e *Engine) Prefill(s *Session, prompts [][]int) ([]int, error) {
	return e.prefillSample(s, prompts, nil)
}

func (e *Engine) prefillSample(s *Session, prompts [][]int, sampler *Sampler) ([]int, error) {
	if len(prompts) != s.Batch() {
		return nil, fmt.Errorf("engine: %d prompts for batch %d", len(prompts), s.Batch())
	}
	if s.pos != 0 {
		return nil, fmt.Errorf("engine: session already prefilled")
	}
	rows := len(prompts[0])
	if rows == 0 {
		return nil, fmt.Errorf("engine: empty prompt")
	}
	d := e.cfg.DModel
	for _, prompt := range prompts {
		if len(prompt) != rows {
			return nil, fmt.Errorf("engine: ragged prompts (%d vs %d); pad the batch", len(prompt), rows)
		}
		if err := e.checkTokens(prompt); err != nil {
			return nil, err
		}
	}
	start := time.Now()
	logits := make([][]float32, len(prompts))
	err := e.forEachSeq(len(prompts), func(b int) error {
		x := make([]float32, rows*d)
		for i, tok := range prompts[b] {
			e.embed(tok, i, x[i*d:(i+1)*d])
		}
		e.forwardSeq(s.caches[b], x, rows, 0)
		s.caches[b].ExtendTo(rows)
		logits[b] = e.logits(x[(rows-1)*d:])
		return nil
	})
	if err != nil {
		return nil, err
	}
	next := make([]int, len(prompts))
	for b := range next {
		next[b] = sampler.Sample(logits[b])
	}
	s.pos = rows
	if h := e.opts.Hooks.OnPrefill; h != nil {
		h(len(prompts), rows, time.Since(start))
	}
	return next, nil
}

// PrefillChunked processes the prompts in chunks of at most `chunk`
// tokens (Sarathi-style chunked prefill). The KV cache and the returned
// first tokens are identical to a monolithic Prefill — causal attention
// makes prefix processing order-independent across chunk boundaries.
func (e *Engine) PrefillChunked(s *Session, prompts [][]int, chunk int, sampler *Sampler) ([]int, error) {
	if chunk <= 0 {
		return nil, fmt.Errorf("engine: non-positive prefill chunk %d", chunk)
	}
	if len(prompts) != s.Batch() {
		return nil, fmt.Errorf("engine: %d prompts for batch %d", len(prompts), s.Batch())
	}
	if s.pos != 0 {
		return nil, fmt.Errorf("engine: session already prefilled")
	}
	rows := len(prompts[0])
	if rows == 0 {
		return nil, fmt.Errorf("engine: empty prompt")
	}
	d := e.cfg.DModel
	start := time.Now()
	next := make([]int, len(prompts))
	for b, prompt := range prompts {
		if len(prompt) != rows {
			return nil, fmt.Errorf("engine: ragged prompts (%d vs %d); pad the batch", len(prompt), rows)
		}
		if err := e.checkTokens(prompt); err != nil {
			return nil, err
		}
		var lastHidden []float32
		for start := 0; start < rows; start += chunk {
			end := start + chunk
			if end > rows {
				end = rows
			}
			n := end - start
			x := make([]float32, n*d)
			for i := 0; i < n; i++ {
				e.embed(prompt[start+i], start+i, x[i*d:(i+1)*d])
			}
			e.forwardSeq(s.caches[b], x, n, start)
			s.caches[b].ExtendTo(end)
			lastHidden = x[(n-1)*d:]
		}
		next[b] = sampler.Sample(e.logits(lastHidden))
	}
	s.pos = rows
	if h := e.opts.Hooks.OnPrefill; h != nil {
		h(len(prompts), rows, time.Since(start))
	}
	return next, nil
}

// DecodeStep feeds one token per sequence and returns the next greedy
// token for each.
func (e *Engine) DecodeStep(s *Session, tokens []int) ([]int, error) {
	return e.decodeSample(s, tokens, nil)
}

func (e *Engine) decodeSample(s *Session, tokens []int, sampler *Sampler) ([]int, error) {
	if len(tokens) != s.Batch() {
		return nil, fmt.Errorf("engine: %d tokens for batch %d", len(tokens), s.Batch())
	}
	if s.pos == 0 {
		return nil, fmt.Errorf("engine: decode before prefill")
	}
	if err := e.checkTokens(tokens); err != nil {
		return nil, err
	}
	if e.opts.DisablePacking {
		return e.decodePerSeq(s, tokens, sampler)
	}
	start := time.Now()
	B, d := len(tokens), e.cfg.DModel
	ar := &s.ar
	ar.ensure(e, B, s.caches[0].Cap())
	for b, tok := range tokens {
		e.embed(tok, s.pos, ar.x[b*d:(b+1)*d])
	}
	e.forwardBatch(s, ar.x, B, s.pos)
	for b := 0; b < B; b++ {
		s.caches[b].ExtendTo(s.pos + 1)
	}
	e.logitsBatch(ar, B, ar.x)
	vocab := e.cfg.Vocab
	for b := 0; b < B; b++ {
		ar.next[b] = sampler.Sample(ar.logits[b*vocab : (b+1)*vocab])
	}
	if h := e.opts.Hooks.OnDecodeStep; h != nil {
		h(B, s.pos, time.Since(start))
	}
	s.pos++
	// ar.next is a reused view, valid until the next decode step; callers
	// needing to retain it copy (Generate appends element-wise).
	return ar.next[:B], nil
}

// decodePerSeq is the legacy decode: each sequence runs an independent
// rows=1 forward pass, re-streaming every weight matrix B times per token
// and allocating scratch per pass. Kept (behind Options.DisablePacking) as
// the measured baseline the fused path is benchmarked against.
func (e *Engine) decodePerSeq(s *Session, tokens []int, sampler *Sampler) ([]int, error) {
	start := time.Now()
	d := e.cfg.DModel
	logits := make([][]float32, len(tokens))
	err := e.forEachSeq(len(tokens), func(b int) error {
		x := make([]float32, d)
		e.embed(tokens[b], s.pos, x)
		e.forwardSeq(s.caches[b], x, 1, s.pos)
		s.caches[b].ExtendTo(s.pos + 1)
		logits[b] = e.logits(x)
		return nil
	})
	if err != nil {
		return nil, err
	}
	next := make([]int, len(tokens))
	for b := range next {
		next[b] = sampler.Sample(logits[b])
	}
	if h := e.opts.Hooks.OnDecodeStep; h != nil {
		h(len(tokens), s.pos, time.Since(start))
	}
	s.pos++
	return next, nil
}

func (e *Engine) checkTokens(toks []int) error {
	for _, t := range toks {
		if t < 0 || t >= e.cfg.Vocab {
			return fmt.Errorf("engine: token %d outside vocab %d", t, e.cfg.Vocab)
		}
	}
	return nil
}

// Stats reports measured timings of a Generate call — the functional
// engine's real TTFT/TPOT, the quantities the simulator models at scale.
type Stats struct {
	PrefillSeconds float64
	DecodeSeconds  float64
	TokensOut      int
}

// TTFT returns the measured time to first token.
func (s Stats) TTFT() float64 { return s.PrefillSeconds }

// TPOT returns the measured mean time per subsequent output token.
func (s Stats) TPOT() float64 {
	if s.TokensOut <= 1 {
		return 0
	}
	return s.DecodeSeconds / float64(s.TokensOut-1)
}

// Generate runs greedy generation of maxNew tokens for a batch of equal-
// length prompts, returning the generated tokens per sequence and timing.
func (e *Engine) Generate(prompts [][]int, maxNew int) ([][]int, Stats, error) {
	if maxNew <= 0 {
		return nil, Stats{}, errMaxNew
	}
	if len(prompts) == 0 {
		return nil, Stats{}, errNoPrompts
	}
	s := e.NewSession(len(prompts), len(prompts[0])+maxNew)

	start := time.Now()
	toks, err := e.Prefill(s, prompts)
	if err != nil {
		return nil, Stats{}, err
	}
	stats := Stats{PrefillSeconds: time.Since(start).Seconds(), TokensOut: maxNew}

	out := make([][]int, len(prompts))
	for b := range out {
		out[b] = append(out[b], toks[b])
	}
	decodeStart := time.Now()
	for step := 1; step < maxNew; step++ {
		toks, err = e.DecodeStep(s, toks)
		if err != nil {
			return nil, Stats{}, err
		}
		for b := range out {
			out[b] = append(out[b], toks[b])
		}
	}
	stats.DecodeSeconds = time.Since(decodeStart).Seconds()
	return out, stats, nil
}
