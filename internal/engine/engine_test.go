package engine

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/workload"
)

func tinyEngine(t *testing.T, f model.Family, k Kernel) *Engine {
	t.Helper()
	cfg := model.Tiny(f)
	w, err := NewWeights(cfg, 42, tensor.FP32)
	if err != nil {
		t.Fatal(err)
	}
	if k == KernelInt8 {
		w.QuantizeAll()
	}
	e, err := New(w, Options{Kernel: k, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func prompt(e *Engine, n int, seed int64) []int {
	g := workload.NewGenerator(seed)
	return g.Prompt(n, e.Config().Vocab)
}

func TestGenerateDeterministic(t *testing.T) {
	for _, f := range []model.Family{model.OPT, model.LLaMA2} {
		e := tinyEngine(t, f, KernelBlocked)
		p := prompt(e, 12, 1)
		out1, _, err := e.Generate([][]int{p}, 8)
		if err != nil {
			t.Fatal(err)
		}
		out2, _, err := e.Generate([][]int{p}, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i := range out1[0] {
			if out1[0][i] != out2[0][i] {
				t.Fatalf("%s: generation not deterministic at %d", f, i)
			}
		}
		if len(out1[0]) != 8 {
			t.Fatalf("%s: generated %d tokens, want 8", f, len(out1[0]))
		}
	}
}

// TestKVCacheConsistency is the engine's central invariant: decoding
// token-by-token with the KV cache must produce exactly the same tokens
// as prefilling the whole (prompt ++ generated) prefix from scratch.
func TestKVCacheConsistency(t *testing.T) {
	for _, f := range []model.Family{model.OPT, model.LLaMA2} {
		e := tinyEngine(t, f, KernelBlocked)
		p := prompt(e, 10, 2)
		out, _, err := e.Generate([][]int{p}, 6)
		if err != nil {
			t.Fatal(err)
		}
		// Recompute: prefill over prompt + generated[:n-1] must greedily
		// predict generated[n-1].
		for n := 1; n <= 6; n++ {
			full := append(append([]int{}, p...), out[0][:n-1]...)
			s := e.NewSession(1, len(full)+1)
			next, err := e.Prefill(s, [][]int{full})
			if err != nil {
				t.Fatal(err)
			}
			if next[0] != out[0][n-1] {
				t.Fatalf("%s: cached decode diverged at token %d: %d vs %d",
					f, n, out[0][n-1], next[0])
			}
		}
	}
}

// TestBatchMatchesSingle: each sequence of a batch must generate exactly
// what it would alone (batch must not cross-contaminate).
func TestBatchMatchesSingle(t *testing.T) {
	e := tinyEngine(t, model.OPT, KernelBlocked)
	p1, p2 := prompt(e, 8, 3), prompt(e, 8, 4)
	batched, _, err := e.Generate([][]int{p1, p2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	solo1, _, err := e.Generate([][]int{p1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	solo2, _, err := e.Generate([][]int{p2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batched[0] {
		if batched[0][i] != solo1[0][i] || batched[1][i] != solo2[0][i] {
			t.Fatalf("batching changed outputs at step %d", i)
		}
	}
}

// TestSeqParallelMatchesSerial: sequence-parallel execution must produce
// exactly the serial outputs (weights are read-only; caches are private).
func TestSeqParallelMatchesSerial(t *testing.T) {
	cfg := model.Tiny(model.LLaMA2)
	w, err := NewWeights(cfg, 42, tensor.FP32)
	if err != nil {
		t.Fatal(err)
	}
	serial, _ := New(w, Options{Kernel: KernelBlocked})
	parallel, _ := New(w, Options{Kernel: KernelBlocked, SeqParallel: true})
	prompts := [][]int{prompt(serial, 8, 51), prompt(serial, 8, 52), prompt(serial, 8, 53)}
	want, _, err := serial.Generate(prompts, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := parallel.Generate(prompts, 5)
	if err != nil {
		t.Fatal(err)
	}
	for b := range want {
		for i := range want[b] {
			if got[b][i] != want[b][i] {
				t.Fatalf("seq-parallel diverged at seq %d token %d", b, i)
			}
		}
	}
}

// TestKernelTiersAgree: every GEMM tier must generate the same greedy
// tokens as the blocked FP32 reference on a tiny model (BF16/INT8 paths
// perturb logits but argmax should be stable at this scale).
func TestKernelTiersAgree(t *testing.T) {
	ref := tinyEngine(t, model.LLaMA2, KernelBlocked)
	p := prompt(ref, 10, 5)
	want, _, err := ref.Generate([][]int{p}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Kernel{KernelParallel, KernelTileBF16, KernelTileBF16Parallel} {
		e := tinyEngine(t, model.LLaMA2, k)
		got, _, err := e.Generate([][]int{p}, 4)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		agree := 0
		for i := range want[0] {
			if got[0][i] == want[0][i] {
				agree++
			}
		}
		if agree < len(want[0])-1 {
			t.Errorf("%s agreed on %d/%d tokens", k, agree, len(want[0]))
		}
	}
}

// TestLogitsCloseAcrossPrecisions: BF16 tile logits must track FP32 logits
// within bf16 rounding error accumulated over the network.
func TestLogitsCloseAcrossPrecisions(t *testing.T) {
	cfg := model.Tiny(model.OPT)
	w, err := NewWeights(cfg, 7, tensor.FP32)
	if err != nil {
		t.Fatal(err)
	}
	fp, _ := New(w, Options{Kernel: KernelBlocked})
	bf, _ := New(w, Options{Kernel: KernelTileBF16})
	p := workload.NewGenerator(9).Prompt(6, cfg.Vocab)

	logitsOf := func(e *Engine) []float32 {
		s := e.NewSession(1, 16)
		if _, err := e.Prefill(s, [][]int{p}); err != nil {
			t.Fatal(err)
		}
		d := cfg.DModel
		x := make([]float32, len(p)*d)
		for i, tok := range p {
			e.embed(tok, i, x[i*d:(i+1)*d])
		}
		s2 := e.NewSession(1, 16)
		e.forwardSeq(s2.caches[0], x, len(p), 0)
		return e.logits(x[(len(p)-1)*d:])
	}
	a, b := logitsOf(fp), logitsOf(bf)
	var maxDiff, scale float64
	for i := range a {
		d := math.Abs(float64(a[i] - b[i]))
		if d > maxDiff {
			maxDiff = d
		}
		if s := math.Abs(float64(a[i])); s > scale {
			scale = s
		}
	}
	if maxDiff > 0.05*(scale+1) {
		t.Errorf("bf16 logits diverge: max diff %g at scale %g", maxDiff, scale)
	}
}

func TestInt8PathRuns(t *testing.T) {
	e := tinyEngine(t, model.OPT, KernelInt8)
	out, _, err := e.Generate([][]int{prompt(e, 8, 11)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0]) != 4 {
		t.Fatal("int8 generation wrong length")
	}
	// INT8 without quantized shadows must be rejected.
	w, _ := NewWeights(model.Tiny(model.OPT), 1, tensor.FP32)
	if _, err := New(w, Options{Kernel: KernelInt8}); err == nil {
		t.Error("int8 engine without shadows must fail")
	}
}

// TestGQA: the LLaMA-2 tiny config uses grouped-query attention (4 heads,
// 2 KV heads); generation must work and the cache must be KVDim-sized.
func TestGQA(t *testing.T) {
	e := tinyEngine(t, model.LLaMA2, KernelBlocked)
	cfg := e.Config()
	if cfg.KVHeads >= cfg.Heads {
		t.Fatal("tiny llama must exercise GQA")
	}
	s := e.NewSession(1, 32)
	wantBytes := int64(cfg.Layers) * 2 * int64(32*cfg.KVDim()) * 4
	if s.KVBytes() != wantBytes {
		t.Errorf("KV bytes = %d, want %d", s.KVBytes(), wantBytes)
	}
	if _, _, err := e.Generate([][]int{prompt(e, 8, 13)}, 4); err != nil {
		t.Fatal(err)
	}
}

func TestSessionLifecycle(t *testing.T) {
	e := tinyEngine(t, model.OPT, KernelBlocked)
	s := e.NewSession(2, 32)
	if s.Batch() != 2 || s.Pos() != 0 {
		t.Fatal("fresh session state wrong")
	}
	p := prompt(e, 4, 17)
	if _, err := e.DecodeStep(s, []int{1, 2}); err == nil {
		t.Error("decode before prefill must fail")
	}
	if _, err := e.Prefill(s, [][]int{p}); err == nil {
		t.Error("prompt count mismatch must fail")
	}
	toks, err := e.Prefill(s, [][]int{p, p})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Prefill(s, [][]int{p, p}); err == nil {
		t.Error("double prefill must fail")
	}
	if _, err := e.DecodeStep(s, toks); err != nil {
		t.Fatal(err)
	}
	if s.Pos() != 5 {
		t.Errorf("pos = %d, want 5", s.Pos())
	}
}

func TestErrorPaths(t *testing.T) {
	e := tinyEngine(t, model.OPT, KernelBlocked)
	if _, _, err := e.Generate(nil, 4); err == nil {
		t.Error("no prompts must fail")
	}
	if _, _, err := e.Generate([][]int{{1, 2}}, 0); err == nil {
		t.Error("zero maxNew must fail")
	}
	if _, _, err := e.Generate([][]int{{-1}}, 2); err == nil {
		t.Error("out-of-vocab token must fail")
	}
	if _, _, err := e.Generate([][]int{{1, 2}, {1}}, 2); err == nil {
		t.Error("ragged prompts must fail")
	}
	s := e.NewSession(1, 8)
	if _, err := e.Prefill(s, [][]int{{}}); err == nil {
		t.Error("empty prompt must fail")
	}
	if _, err := New(nil, Options{}); err == nil {
		t.Error("nil weights must fail")
	}
}

func TestStats(t *testing.T) {
	e := tinyEngine(t, model.OPT, KernelBlocked)
	_, st, err := e.Generate([][]int{prompt(e, 8, 19)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.TTFT() <= 0 || st.TPOT() <= 0 || st.TokensOut != 4 {
		t.Errorf("stats wrong: %+v", st)
	}
	if (Stats{TokensOut: 1}).TPOT() != 0 {
		t.Error("single-token TPOT must be 0")
	}
}

func TestKernelString(t *testing.T) {
	names := map[Kernel]string{
		KernelBlocked: "blocked-fp32", KernelParallel: "parallel-fp32",
		KernelTileBF16: "tile-bf16", KernelTileBF16Parallel: "parallel-tile-bf16",
		KernelInt8: "int8",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d: %q", k, k.String())
		}
	}
}
