package engine

import (
	"fmt"
	"math"
)

// Perplexity evaluation: teacher-forced log-likelihood of a token
// sequence under the model — the standard language-modeling quality
// metric, used here to verify that quantized/reduced-precision execution
// paths preserve model behaviour (the accuracy side of the INT8/INT4
// optimizations the performance side measures).

// EvalResult reports sequence-level likelihood metrics.
type EvalResult struct {
	Tokens       int     // predicted positions (len(seq)-1)
	TotalLogProb float64 // Σ log p(seq[i+1] | seq[..i])
	AvgLogProb   float64
	Perplexity   float64
	WorstTokenLP float64 // most surprising single token
}

// Perplexity computes teacher-forced perplexity of seq (at least two
// tokens: each position predicts the next).
func (e *Engine) Perplexity(seq []int) (EvalResult, error) {
	if len(seq) < 2 {
		return EvalResult{}, fmt.Errorf("engine: perplexity needs ≥2 tokens, got %d", len(seq))
	}
	if err := e.checkTokens(seq); err != nil {
		return EvalResult{}, err
	}
	d := e.cfg.DModel
	cache := NewKVCache(e.cfg.Layers, e.cfg.KVDim(), len(seq))
	x := make([]float32, len(seq)*d)
	for i, tok := range seq {
		e.embed(tok, i, x[i*d:(i+1)*d])
	}
	e.forwardSeq(cache, x, len(seq), 0)

	res := EvalResult{Tokens: len(seq) - 1, WorstTokenLP: 0}
	for i := 0; i+1 < len(seq); i++ {
		lps := logSoftmax(e.logits(x[i*d : (i+1)*d]))
		lp := lps[seq[i+1]]
		res.TotalLogProb += lp
		if lp < res.WorstTokenLP {
			res.WorstTokenLP = lp
		}
	}
	res.AvgLogProb = res.TotalLogProb / float64(res.Tokens)
	res.Perplexity = math.Exp(-res.AvgLogProb)
	return res, nil
}

// TokenCallback receives each newly generated token (sequence index,
// step, token). Returning false stops that sequence's generation early.
type TokenCallback func(seq, step, token int) bool

// GenerateStream runs greedy generation, invoking cb as each token is
// produced — the engine's streaming API (the serving path's token-by-
// token delivery). Output per sequence ends where cb stopped it.
func (e *Engine) GenerateStream(prompts [][]int, maxNew int, cb TokenCallback) ([][]int, error) {
	if maxNew <= 0 {
		return nil, errMaxNew
	}
	if len(prompts) == 0 {
		return nil, errNoPrompts
	}
	if cb == nil {
		return nil, fmt.Errorf("engine: nil stream callback")
	}
	s := e.NewSession(len(prompts), len(prompts[0])+maxNew)
	toks, err := e.Prefill(s, prompts)
	if err != nil {
		return nil, err
	}
	out := make([][]int, len(prompts))
	stopped := make([]bool, len(prompts))
	live := 0
	for b, tok := range toks {
		if cb(b, 0, tok) {
			out[b] = append(out[b], tok)
			live++
		} else {
			stopped[b] = true
		}
	}
	for step := 1; step < maxNew && live > 0; step++ {
		toks, err = e.DecodeStep(s, toks)
		if err != nil {
			return nil, err
		}
		for b, tok := range toks {
			if stopped[b] {
				continue
			}
			if cb(b, step, tok) {
				out[b] = append(out[b], tok)
			} else {
				stopped[b] = true
				live--
			}
		}
	}
	return out, nil
}
