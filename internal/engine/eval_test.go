package engine

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/tensor"
)

func TestPerplexityBasics(t *testing.T) {
	e := tinyEngine(t, model.OPT, KernelBlocked)
	seq := prompt(e, 16, 81)
	res, err := e.Perplexity(seq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tokens != 15 {
		t.Errorf("tokens = %d, want 15", res.Tokens)
	}
	if res.Perplexity < 1 || math.IsInf(res.Perplexity, 0) || math.IsNaN(res.Perplexity) {
		t.Errorf("perplexity = %v, must be finite and ≥ 1", res.Perplexity)
	}
	// Random weights over a 97-token vocab: perplexity should be near the
	// uniform limit, certainly within (1, vocab²).
	if res.Perplexity > float64(e.Config().Vocab*e.Config().Vocab) {
		t.Errorf("perplexity %v implausibly high", res.Perplexity)
	}
	if res.TotalLogProb >= 0 || res.WorstTokenLP > res.AvgLogProb {
		t.Errorf("log-prob accounting wrong: %+v", res)
	}
}

// TestPerplexityGreedyLowest: a sequence continued greedily by the model
// itself must have lower perplexity on its generated suffix than a random
// continuation.
func TestPerplexityGreedyLowest(t *testing.T) {
	e := tinyEngine(t, model.LLaMA2, KernelBlocked)
	p := prompt(e, 10, 82)
	out, _, err := e.Generate([][]int{p}, 8)
	if err != nil {
		t.Fatal(err)
	}
	greedySeq := append(append([]int{}, p...), out[0]...)
	randomSeq := append(append([]int{}, p...), prompt(e, 8, 83)...)
	g, err := e.Perplexity(greedySeq)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Perplexity(randomSeq)
	if err != nil {
		t.Fatal(err)
	}
	if g.Perplexity >= r.Perplexity {
		t.Errorf("greedy continuation ppl %.1f not below random %.1f",
			g.Perplexity, r.Perplexity)
	}
}

// TestPerplexityAcrossPrecisions: BF16-tile and INT8 execution must keep
// perplexity close to the FP32 reference — the accuracy check behind the
// quantization performance claims.
func TestPerplexityAcrossPrecisions(t *testing.T) {
	cfg := model.Tiny(model.OPT)
	w, err := NewWeights(cfg, 42, tensor.FP32)
	if err != nil {
		t.Fatal(err)
	}
	w.QuantizeAll()
	seq := prompt(&Engine{cfg: cfg, w: w}, 16, 84)
	ppl := func(k Kernel) float64 {
		e, err := New(w, Options{Kernel: k})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Perplexity(seq)
		if err != nil {
			t.Fatal(err)
		}
		return res.Perplexity
	}
	ref := ppl(KernelBlocked)
	for _, k := range []Kernel{KernelTileBF16, KernelInt8} {
		got := ppl(k)
		if rel := math.Abs(got-ref) / ref; rel > 0.05 {
			t.Errorf("%s perplexity %.2f deviates %.1f%% from fp32 %.2f",
				k, got, rel*100, ref)
		}
	}
}

func TestPerplexityValidation(t *testing.T) {
	e := tinyEngine(t, model.OPT, KernelBlocked)
	if _, err := e.Perplexity([]int{1}); err == nil {
		t.Error("single token must fail")
	}
	if _, err := e.Perplexity([]int{1, -1}); err == nil {
		t.Error("bad token must fail")
	}
}

func TestGenerateStream(t *testing.T) {
	e := tinyEngine(t, model.OPT, KernelBlocked)
	p := prompt(e, 8, 85)
	want, _, err := e.Generate([][]int{p, p}, 6)
	if err != nil {
		t.Fatal(err)
	}
	var streamed [][]int = make([][]int, 2)
	out, err := e.GenerateStream([][]int{p, p}, 6, func(seq, step, tok int) bool {
		streamed[seq] = append(streamed[seq], tok)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for b := range want {
		for i := range want[b] {
			if out[b][i] != want[b][i] || streamed[b][i] != want[b][i] {
				t.Fatalf("stream diverged at seq %d tok %d", b, i)
			}
		}
	}
}

// TestGenerateStreamEarlyStop: a callback returning false must stop that
// sequence only.
func TestGenerateStreamEarlyStop(t *testing.T) {
	e := tinyEngine(t, model.OPT, KernelBlocked)
	p := prompt(e, 8, 86)
	out, err := e.GenerateStream([][]int{p, p}, 6, func(seq, step, tok int) bool {
		return !(seq == 0 && step == 2) // stop sequence 0 at step 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0]) != 2 {
		t.Errorf("stopped sequence has %d tokens, want 2", len(out[0]))
	}
	if len(out[1]) != 6 {
		t.Errorf("running sequence has %d tokens, want 6", len(out[1]))
	}
}

func TestGenerateStreamValidation(t *testing.T) {
	e := tinyEngine(t, model.OPT, KernelBlocked)
	if _, err := e.GenerateStream(nil, 4, func(int, int, int) bool { return true }); err == nil {
		t.Error("no prompts must fail")
	}
	if _, err := e.GenerateStream([][]int{{1}}, 0, func(int, int, int) bool { return true }); err == nil {
		t.Error("zero maxNew must fail")
	}
	if _, err := e.GenerateStream([][]int{{1}}, 4, nil); err == nil {
		t.Error("nil callback must fail")
	}
}
