package engine

import (
	"math"
)

// FlashAttention-style attention: instead of materializing the full score
// vector, applying softmax, and re-reading the values, the online-softmax
// formulation streams the KV cache once per query, maintaining a running
// maximum, a running denominator, and a running weighted sum that are
// rescaled as larger scores appear. The result is mathematically
// identical to softmax attention but touches each KV row exactly once
// with O(1) extra state — the memory-traffic shape that makes long-context
// attention tractable on bandwidth-bound hardware (the decode regime of
// Figs 11/12).
//
// Reference: Dao et al., "FlashAttention: Fast and Memory-Efficient Exact
// Attention with IO-Awareness" (the single-pass online softmax of
// Milakov & Gimelshein).

// flashAttention computes causal multi-head attention for `rows` query
// rows starting at startPos, equivalent to Engine.attention but with the
// streaming formulation.
func (e *Engine) flashAttention(cache KVStore, layer, rows, startPos int, q, att []float32) {
	d := e.cfg.DModel
	acc := make([]float64, e.cfg.HeadDim())
	for i := 0; i < rows; i++ {
		e.flashRow(cache, layer, startPos+i, q[i*d:(i+1)*d], att[i*d:(i+1)*d], acc)
	}
}

// flashRow is the single-query-row streaming attention at position pos.
// acc is caller-provided headDim scratch (the online-softmax value
// accumulator), so the fused decode path can serve it from the arena.
func (e *Engine) flashRow(cache KVStore, layer, pos int, q, att []float32, acc []float64) {
	hd := e.cfg.HeadDim()
	groups := e.cfg.Heads / e.cfg.KVHeads
	scale := 1 / math.Sqrt(float64(hd))

	ctx := pos + 1
	for h := 0; h < e.cfg.Heads; h++ {
		kvh := h / groups
		qv := q[h*hd : (h+1)*hd]

		// Online softmax state: running max m, denominator l, and the
		// value accumulator (scaled by exp(score-m) weights).
		m := math.Inf(-1)
		l := 0.0
		for j := range acc {
			acc[j] = 0
		}
		for t := 0; t < ctx; t++ {
			kr := cache.RowK(layer, t)
			var s float64
			for j := 0; j < hd; j++ {
				s += float64(qv[j]) * float64(kr[kvh*hd+j])
			}
			s *= scale
			if s > m {
				// Rescale previous accumulation to the new maximum.
				corr := math.Exp(m - s)
				l *= corr
				for j := range acc {
					acc[j] *= corr
				}
				m = s
			}
			w := math.Exp(s - m)
			l += w
			vr := cache.RowV(layer, t)
			for j := 0; j < hd; j++ {
				acc[j] += w * float64(vr[kvh*hd+j])
			}
		}
		out := att[h*hd : (h+1)*hd]
		inv := 1 / l
		for j := range out {
			out[j] = float32(acc[j] * inv)
		}
	}
}
