package engine

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/tensor"
)

// TestFlashMatchesStandardAttention: the online-softmax formulation must
// be numerically equivalent to standard softmax attention on the same
// weights (tokens identical, logits within float tolerance).
func TestFlashMatchesStandardAttention(t *testing.T) {
	for _, f := range []model.Family{model.OPT, model.LLaMA2} {
		cfg := model.Tiny(f)
		w, err := NewWeights(cfg, 42, tensor.FP32)
		if err != nil {
			t.Fatal(err)
		}
		std, _ := New(w, Options{Kernel: KernelBlocked})
		flash, _ := New(w, Options{Kernel: KernelBlocked, FlashAttention: true})
		p := prompt(std, 14, 91)
		want, _, err := std.Generate([][]int{p}, 8)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := flash.Generate([][]int{p}, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want[0] {
			if got[0][i] != want[0][i] {
				t.Fatalf("%s: flash attention diverged at token %d", f, i)
			}
		}
	}
}

// TestFlashLogitsClose: beyond argmax agreement, the raw hidden states
// must match the standard path to float32 rounding.
func TestFlashLogitsClose(t *testing.T) {
	cfg := model.Tiny(model.LLaMA2)
	w, err := NewWeights(cfg, 7, tensor.FP32)
	if err != nil {
		t.Fatal(err)
	}
	std, _ := New(w, Options{Kernel: KernelBlocked})
	flash, _ := New(w, Options{Kernel: KernelBlocked, FlashAttention: true})
	p := prompt(std, 12, 92)

	hidden := func(e *Engine) []float32 {
		s := e.NewSession(1, 32)
		d := cfg.DModel
		x := make([]float32, len(p)*d)
		for i, tok := range p {
			e.embed(tok, i, x[i*d:(i+1)*d])
		}
		e.forwardSeq(s.caches[0], x, len(p), 0)
		return x[(len(p)-1)*d:]
	}
	a, b := hidden(std), hidden(flash)
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > 1e-4*(math.Abs(float64(a[i]))+1) {
			t.Fatalf("hidden[%d]: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestFlashOverflowSafety: the online rescaling must survive extreme
// score magnitudes that would overflow a naive exp-sum.
func TestFlashOverflowSafety(t *testing.T) {
	cfg := model.Tiny(model.OPT)
	w, err := NewWeights(cfg, 3, tensor.FP32)
	if err != nil {
		t.Fatal(err)
	}
	// Inflate the query/key projections to force |scores| into the
	// hundreds, where exp() without max-shifting overflows float32.
	r := rand.New(rand.NewSource(1))
	for l := range w.Layers {
		for i := range w.Layers[l].Wq.W {
			w.Layers[l].Wq.W[i] = float32(r.NormFloat64())
		}
		for i := range w.Layers[l].Wk.W {
			w.Layers[l].Wk.W[i] = float32(r.NormFloat64())
		}
	}
	flash, _ := New(w, Options{Kernel: KernelBlocked, FlashAttention: true})
	std, _ := New(w, Options{Kernel: KernelBlocked})
	p := prompt(flash, 10, 93)
	got, _, err := flash.Generate([][]int{p}, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := std.Generate([][]int{p}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want[0] {
		if got[0][i] != want[0][i] {
			t.Fatalf("extreme-score divergence at %d", i)
		}
	}
}

// TestFlashWithPagedStore: the streaming formulation composes with the
// paged KV store.
func TestFlashWithPagedStore(t *testing.T) {
	cfg := model.Tiny(model.LLaMA2)
	w, err := NewWeights(cfg, 42, tensor.FP32)
	if err != nil {
		t.Fatal(err)
	}
	flash, _ := New(w, Options{Kernel: KernelBlocked, FlashAttention: true})
	std, _ := New(w, Options{Kernel: KernelBlocked})
	p := prompt(std, 10, 94)

	want, _, err := std.Generate([][]int{p}, 6)
	if err != nil {
		t.Fatal(err)
	}
	s := flash.NewPagedSession(1, 32, 4)
	toks, err := flash.Prefill(s, [][]int{p})
	if err != nil {
		t.Fatal(err)
	}
	out := []int{toks[0]}
	for len(out) < 6 {
		toks, err = flash.DecodeStep(s, toks)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, toks[0])
	}
	for i := range want[0] {
		if out[i] != want[0][i] {
			t.Fatalf("flash+paged diverged at %d", i)
		}
	}
}
