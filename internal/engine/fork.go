package engine

// fork.go is the functional layer under the serving stack's radix prefix
// cache (internal/prefixcache over kvpool blocks): a cache hit forks the
// session that already computed a shared prompt prefix instead of
// recomputing its prefill. ForkPagedSession adopts the source's KV
// blocks copy-on-write, and PrefillResume runs only the unmatched prompt
// tail — causal attention makes the combination bit-identical to a cold
// prefill of the whole prompt.

import (
	"fmt"
	"time"
)

// ForkPagedSession returns a new session whose KV caches alias the first
// prefix positions of src copy-on-write (whole blocks shared, the
// partial boundary block copied). src must be a paged session with at
// least prefix committed positions; it stays usable and is never mutated
// through the fork. The fork resumes at position prefix — finish its
// prompt with PrefillResume before decoding.
func (e *Engine) ForkPagedSession(src *Session, prefix int) (*Session, error) {
	if prefix <= 0 || prefix > src.pos {
		return nil, fmt.Errorf("engine: fork prefix %d outside (0,%d]", prefix, src.pos)
	}
	s := &Session{caches: make([]KVStore, len(src.caches)), pos: prefix}
	for i, store := range src.caches {
		pc, ok := store.(*PagedKVCache)
		if !ok {
			return nil, fmt.Errorf("engine: fork requires a paged session (cache %d is %T)", i, store)
		}
		f := NewPagedKVCache(pc.layers, pc.kvDim, pc.maxSeq, pc.blockSize)
		f.AdoptPrefix(pc, prefix)
		s.caches[i] = f
	}
	return s, nil
}

// PrefillResume completes the prefill of a forked session: prompts are
// the full prompts, and only the positions from s.Pos() on are embedded
// and run through the network on top of the adopted KV prefix. The
// returned greedy next tokens match what a cold Prefill of the full
// prompts would produce. At least one position must remain — a fork
// never adopts the entire prompt, because the last position's logits are
// what generation starts from.
func (e *Engine) PrefillResume(s *Session, prompts [][]int) ([]int, error) {
	if len(prompts) != s.Batch() {
		return nil, fmt.Errorf("engine: %d prompts for batch %d", len(prompts), s.Batch())
	}
	rows := len(prompts[0])
	if s.pos <= 0 {
		return nil, fmt.Errorf("engine: PrefillResume on an unfilled session; use Prefill")
	}
	if s.pos >= rows {
		return nil, fmt.Errorf("engine: nothing to resume (%d committed of %d prompt positions)", s.pos, rows)
	}
	d := e.cfg.DModel
	for _, prompt := range prompts {
		if len(prompt) != rows {
			return nil, fmt.Errorf("engine: ragged prompts (%d vs %d); pad the batch", len(prompt), rows)
		}
		if err := e.checkTokens(prompt); err != nil {
			return nil, err
		}
	}
	start := time.Now()
	from := s.pos
	n := rows - from
	logits := make([][]float32, len(prompts))
	err := e.forEachSeq(len(prompts), func(b int) error {
		x := make([]float32, n*d)
		for i := 0; i < n; i++ {
			e.embed(prompts[b][from+i], from+i, x[i*d:(i+1)*d])
		}
		e.forwardSeq(s.caches[b], x, n, from)
		s.caches[b].ExtendTo(rows)
		logits[b] = e.logits(x[(n-1)*d:])
		return nil
	})
	if err != nil {
		return nil, err
	}
	var sampler *Sampler
	next := make([]int, len(prompts))
	for b := range next {
		next[b] = sampler.Sample(logits[b])
	}
	s.pos = rows
	if h := e.opts.Hooks.OnPrefill; h != nil {
		h(len(prompts), n, time.Since(start))
	}
	return next, nil
}
