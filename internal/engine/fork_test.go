package engine

// fork_test.go proves the prefix-cache correctness contract at the
// functional layer: serving a prompt by forking a session that already
// prefilled a shared prefix must produce tokens bit-identical to a cold
// prefill of the whole prompt — on every GEMM tier, since the serving
// stack treats the cache as transparent regardless of numeric path.

import (
	"testing"

	"repro/internal/model"
)

const forkBlock = 8 // KV block size: prefix 20 = 2 whole blocks + 4 partial

// generateVia prefills with fill and greedily decodes steps tokens.
func generateVia(t *testing.T, e *Engine, s *Session, steps int,
	fill func() ([]int, error)) []int {
	t.Helper()
	next, err := fill()
	if err != nil {
		t.Fatal(err)
	}
	out := []int{next[0]}
	for i := 1; i < steps; i++ {
		next, err = e.DecodeStep(s, next)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, next[0])
	}
	return out
}

func TestForkedPrefixBitIdenticalAcrossKernels(t *testing.T) {
	const (
		promptLen = 28
		prefixLen = 20
		steps     = 8
	)
	for _, k := range []Kernel{KernelBlocked, KernelParallel, KernelTileBF16,
		KernelTileBF16Parallel, KernelInt8} {
		t.Run(k.String(), func(t *testing.T) {
			e := tinyEngine(t, model.LLaMA2, k)
			p := prompt(e, promptLen, 11)
			maxSeq := promptLen + steps

			cold := e.NewPagedSession(1, maxSeq, forkBlock)
			want := generateVia(t, e, cold, steps, func() ([]int, error) {
				return e.Prefill(cold, [][]int{p})
			})

			// The "cache": one session that prefilled only the shared prefix.
			parent := e.NewPagedSession(1, maxSeq, forkBlock)
			if _, err := e.Prefill(parent, [][]int{p[:prefixLen]}); err != nil {
				t.Fatal(err)
			}

			// Two concurrent hits fork it; each must reproduce the cold
			// tokens exactly, and neither may disturb the other or the
			// parent (copy-on-write isolation).
			for hit := 0; hit < 2; hit++ {
				fork, err := e.ForkPagedSession(parent, prefixLen)
				if err != nil {
					t.Fatal(err)
				}
				pc := fork.caches[0].(*PagedKVCache)
				if pc.SharedBlocks() == 0 {
					t.Fatal("fork adopted no shared blocks — it is a cold prefill in disguise")
				}
				if owned, cold := pc.AllocatedBlocks(), cold.caches[0].(*PagedKVCache).AllocatedBlocks(); owned >= cold {
					t.Errorf("fork owns %d blocks, no fewer than the cold session's %d", owned, cold)
				}
				got := generateVia(t, e, fork, steps, func() ([]int, error) {
					return e.PrefillResume(fork, [][]int{p})
				})
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("hit %d diverged from cold prefill at token %d: got %v want %v",
							hit, i, got, want)
					}
				}
			}

			// The parent is still positioned at the prefix and can decode on.
			if parent.Pos() != prefixLen {
				t.Fatalf("parent position %d mutated by forks, want %d", parent.Pos(), prefixLen)
			}
			if _, err := e.DecodeStep(parent, []int{p[prefixLen]}); err != nil {
				t.Fatalf("parent unusable after forks: %v", err)
			}
		})
	}
}

// TestAdoptPrefixCopyOnWrite pins the block-level mechanics: adopted
// whole blocks alias the parent until written, the boundary block is
// copied eagerly, and a write to a shared block copies it without the
// parent observing the new values.
func TestAdoptPrefixCopyOnWrite(t *testing.T) {
	const (
		layers = 2
		kvDim  = 4
		maxSeq = 64
		block  = 8
	)
	src := NewPagedKVCache(layers, kvDim, maxSeq, block)
	row := func(v float32) []float32 {
		r := make([]float32, kvDim)
		for i := range r {
			r[i] = v
		}
		return r
	}
	for pos := 0; pos < 20; pos++ {
		for l := 0; l < layers; l++ {
			src.Put(l, pos, row(float32(pos)), row(float32(-pos)))
		}
	}
	src.ExtendTo(20)

	c := NewPagedKVCache(layers, kvDim, maxSeq, block)
	c.AdoptPrefix(src, 20)
	if c.Len() != 20 {
		t.Fatalf("adopted length %d, want 20", c.Len())
	}
	// 2 whole blocks per layer aliased, the 4-position boundary copied.
	if c.SharedBlocks() != 2*layers || c.AllocatedBlocks() != layers {
		t.Fatalf("shared=%d owned=%d, want %d and %d",
			c.SharedBlocks(), c.AllocatedBlocks(), 2*layers, layers)
	}
	if &c.RowK(0, 3)[0] != &src.RowK(0, 3)[0] {
		t.Error("whole prefix block not aliased")
	}
	if &c.RowK(0, 17)[0] == &src.RowK(0, 17)[0] {
		t.Error("boundary block aliased, want an eager copy")
	}

	// Writing into an aliased block must copy it first.
	c.Put(0, 2, row(99), row(99))
	if c.SharedBlocks() != 2*layers-1 {
		t.Errorf("shared count %d after copy-on-write, want %d", c.SharedBlocks(), 2*layers-1)
	}
	if got := src.RowK(0, 2)[0]; got != 2 {
		t.Errorf("parent row mutated through the fork: %v", got)
	}
	if got := c.RowK(0, 2)[0]; got != 99 {
		t.Errorf("fork write lost: %v", got)
	}

	// Truncating away aliased blocks releases references, not owned memory.
	c.Truncate(0)
	if c.SharedBlocks() != 0 {
		t.Errorf("%d shared refs survive Truncate(0)", c.SharedBlocks())
	}
	if c.AllocatedBlocks() != 0 {
		t.Errorf("%d owned blocks survive Truncate(0)", c.AllocatedBlocks())
	}
}
