package engine

// hooks_test.go covers the Options.Hooks phase callbacks: every prefill
// flavor and every decode step must fire exactly once with the right
// shape arguments, and nil hooks must be skipped without any effect on
// the generated tokens.

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/tensor"
)

// hookedEngine builds a tiny engine whose hooks append into the returned
// event log.
type hookEvent struct {
	phase   string // "prefill" | "decode"
	batch   int
	lenPos  int
	elapsed time.Duration
}

func hookedEngine(t *testing.T, events *[]hookEvent) *Engine {
	t.Helper()
	w, err := NewWeights(model.Tiny(model.OPT), 42, tensor.FP32)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(w, Options{Kernel: KernelBlocked, Hooks: Hooks{
		OnPrefill: func(batch, promptLen int, elapsed time.Duration) {
			*events = append(*events, hookEvent{"prefill", batch, promptLen, elapsed})
		},
		OnDecodeStep: func(batch, pos int, elapsed time.Duration) {
			*events = append(*events, hookEvent{"decode", batch, pos, elapsed})
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestHooksFirePerPhase(t *testing.T) {
	var events []hookEvent
	e := hookedEngine(t, &events)
	prompts := [][]int{prompt(e, 6, 1), prompt(e, 6, 2)}

	s := e.NewSession(len(prompts), 32)
	next, err := e.Prefill(s, prompts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if next, err = e.DecodeStep(s, next); err != nil {
			t.Fatal(err)
		}
	}

	if len(events) != 4 {
		t.Fatalf("got %d hook events, want 4: %+v", len(events), events)
	}
	pre := events[0]
	if pre.phase != "prefill" || pre.batch != 2 || pre.lenPos != 6 {
		t.Errorf("prefill event %+v, want batch=2 promptLen=6", pre)
	}
	for i, ev := range events[1:] {
		if ev.phase != "decode" || ev.batch != 2 {
			t.Errorf("decode event %d: %+v, want phase=decode batch=2", i, ev)
		}
		// The step at index i consumes context position promptLen+i.
		if want := 6 + i; ev.lenPos != want {
			t.Errorf("decode event %d: pos %d, want %d", i, ev.lenPos, want)
		}
	}
	for i, ev := range events {
		if ev.elapsed <= 0 {
			t.Errorf("event %d: non-positive elapsed %v", i, ev.elapsed)
		}
	}
}

func TestHooksFireOnChunkedPrefill(t *testing.T) {
	var events []hookEvent
	e := hookedEngine(t, &events)
	prompts := [][]int{prompt(e, 9, 3)}

	s := e.NewSession(1, 32)
	if _, err := e.PrefillChunked(s, prompts, 4, nil); err != nil {
		t.Fatal(err)
	}
	// Chunked prefill is one logical phase: one event for the whole
	// prompt, not one per chunk.
	if len(events) != 1 || events[0].phase != "prefill" || events[0].lenPos != 9 {
		t.Fatalf("chunked prefill events %+v, want one prefill with promptLen=9", events)
	}
}

func TestHooksSkipOnError(t *testing.T) {
	var events []hookEvent
	e := hookedEngine(t, &events)
	s := e.NewSession(1, 32)
	if _, err := e.DecodeStep(s, []int{0}); err == nil {
		t.Fatal("decode before prefill should fail")
	}
	if len(events) != 0 {
		t.Fatalf("failed phase fired hooks: %+v", events)
	}
}

func TestNilHooksMatchHookedOutput(t *testing.T) {
	var events []hookEvent
	hooked := hookedEngine(t, &events)
	plain := tinyEngine(t, model.OPT, KernelBlocked)
	prompts := [][]int{prompt(plain, 5, 7)}

	sh := hooked.NewSession(1, 32)
	sp := plain.NewSession(1, 32)
	nh, err := hooked.Prefill(sh, prompts)
	if err != nil {
		t.Fatal(err)
	}
	np, err := plain.Prefill(sp, prompts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if nh[0] != np[0] {
			t.Fatalf("step %d: hooked token %d != plain token %d", i, nh[0], np[0])
		}
		if nh, err = hooked.DecodeStep(sh, nh); err != nil {
			t.Fatal(err)
		}
		if np, err = plain.DecodeStep(sp, np); err != nil {
			t.Fatal(err)
		}
	}
}
