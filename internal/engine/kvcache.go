package engine

import "fmt"

// KVStore is the engine's per-sequence cache abstraction. Two
// implementations exist: KVCache (dense, preallocated to the maximum
// sequence length) and PagedKVCache (vLLM-style block-granular lazy
// allocation). The forward pass is implementation-agnostic.
type KVStore interface {
	// Put stores the key/value vectors for a position of one layer.
	Put(layer, pos int, key, value []float32)
	// ExtendTo commits positions up to n (exclusive).
	ExtendTo(n int)
	// Truncate discards committed positions beyond n.
	Truncate(n int)
	// Len returns the number of committed positions; Cap the maximum.
	Len() int
	Cap() int
	// RowK and RowV return one position's key/value vector. Rows written
	// by Put are readable even before ExtendTo commits them (speculative
	// verification depends on this).
	RowK(layer, pos int) []float32
	RowV(layer, pos int) []float32
	// Bytes returns the store's current memory footprint.
	Bytes() int64
}

// KVCache stores the key and value vectors of one sequence for all layers,
// the de-facto decode optimization whose footprint the paper analyzes
// (§II-B). Layout is [layer][position][kvDim], dense and preallocated to
// the maximum sequence length.
type KVCache struct {
	layers int
	kvDim  int
	maxSeq int
	n      int // tokens currently visible
	k, v   []float32
}

// NewKVCache allocates an empty cache.
func NewKVCache(layers, kvDim, maxSeq int) *KVCache {
	return &KVCache{
		layers: layers, kvDim: kvDim, maxSeq: maxSeq,
		k: make([]float32, layers*maxSeq*kvDim),
		v: make([]float32, layers*maxSeq*kvDim),
	}
}

// Len returns the number of committed positions.
func (c *KVCache) Len() int { return c.n }

// Cap returns the maximum number of positions.
func (c *KVCache) Cap() int { return c.maxSeq }

// Bytes returns the cache's allocated footprint in bytes (FP32 storage).
func (c *KVCache) Bytes() int64 {
	return int64(len(c.k)+len(c.v)) * 4
}

// Put stores the key/value vectors for a position of one layer. Positions
// become visible to Keys/Values once ExtendTo commits them.
func (c *KVCache) Put(layer, pos int, key, value []float32) {
	if len(key) != c.kvDim || len(value) != c.kvDim {
		panic(fmt.Sprintf("engine: kv put dim %d/%d, want %d", len(key), len(value), c.kvDim))
	}
	if pos < 0 || pos >= c.maxSeq {
		panic(fmt.Sprintf("engine: kv position %d out of [0,%d)", pos, c.maxSeq))
	}
	if layer < 0 || layer >= c.layers {
		panic(fmt.Sprintf("engine: kv layer %d out of [0,%d)", layer, c.layers))
	}
	off := (layer*c.maxSeq + pos) * c.kvDim
	copy(c.k[off:off+c.kvDim], key)
	copy(c.v[off:off+c.kvDim], value)
}

// ExtendTo commits positions up to n (exclusive), making them visible.
func (c *KVCache) ExtendTo(n int) {
	if n < c.n || n > c.maxSeq {
		panic(fmt.Sprintf("engine: kv extend to %d outside [%d,%d]", n, c.n, c.maxSeq))
	}
	c.n = n
}

// Keys returns the committed keys of a layer as a contiguous [Len, kvDim]
// row-major slice sharing the cache's storage.
func (c *KVCache) Keys(layer int) []float32 {
	off := layer * c.maxSeq * c.kvDim
	return c.k[off : off+c.n*c.kvDim]
}

// Values returns the committed values of a layer as [Len, kvDim] rows.
func (c *KVCache) Values(layer int) []float32 {
	off := layer * c.maxSeq * c.kvDim
	return c.v[off : off+c.n*c.kvDim]
}

// RowK returns the key vector at one position (sharing storage).
func (c *KVCache) RowK(layer, pos int) []float32 {
	off := (layer*c.maxSeq + pos) * c.kvDim
	return c.k[off : off+c.kvDim]
}

// RowV returns the value vector at one position (sharing storage).
func (c *KVCache) RowV(layer, pos int) []float32 {
	off := (layer*c.maxSeq + pos) * c.kvDim
	return c.v[off : off+c.kvDim]
}

// KeysAt returns the keys of a layer up to n positions regardless of the
// committed length (used by causal prefill attention).
func (c *KVCache) KeysAt(layer, n int) []float32 {
	off := layer * c.maxSeq * c.kvDim
	return c.k[off : off+n*c.kvDim]
}

// ValuesAt returns the values of a layer up to n positions.
func (c *KVCache) ValuesAt(layer, n int) []float32 {
	off := layer * c.maxSeq * c.kvDim
	return c.v[off : off+n*c.kvDim]
}

// Clone returns an independent deep copy of the cache (beam search's
// branch point).
func (c *KVCache) Clone() *KVCache {
	d := &KVCache{
		layers: c.layers, kvDim: c.kvDim, maxSeq: c.maxSeq, n: c.n,
		k: append([]float32(nil), c.k...),
		v: append([]float32(nil), c.v...),
	}
	return d
}

// Truncate discards committed positions beyond n (speculative decoding's
// rollback on rejected proposals).
func (c *KVCache) Truncate(n int) {
	if n < 0 || n > c.n {
		panic(fmt.Sprintf("engine: truncate to %d outside [0,%d]", n, c.n))
	}
	c.n = n
}

// Reset empties the cache for reuse.
func (c *KVCache) Reset() { c.n = 0 }
