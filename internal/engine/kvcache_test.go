package engine

import (
	"testing"
	"testing/quick"
)

func TestKVCacheBasics(t *testing.T) {
	c := NewKVCache(2, 4, 8)
	if c.Len() != 0 || c.Cap() != 8 {
		t.Fatal("fresh cache state wrong")
	}
	k := []float32{1, 2, 3, 4}
	v := []float32{5, 6, 7, 8}
	c.Put(0, 0, k, v)
	c.Put(1, 0, v, k)
	c.ExtendTo(1)
	if c.Len() != 1 {
		t.Fatal("extend failed")
	}
	got := c.Keys(0)
	if len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Errorf("Keys(0) = %v", got)
	}
	if c.Values(1)[0] != 1 {
		t.Errorf("Values(1) = %v", c.Values(1))
	}
	if c.Bytes() != int64(2*8*4*4*2) {
		t.Errorf("Bytes = %d", c.Bytes())
	}
}

func TestKVCacheLayerIsolation(t *testing.T) {
	c := NewKVCache(3, 2, 4)
	c.Put(0, 0, []float32{1, 1}, []float32{1, 1})
	c.Put(1, 0, []float32{2, 2}, []float32{2, 2})
	c.Put(2, 0, []float32{3, 3}, []float32{3, 3})
	c.ExtendTo(1)
	for layer := 0; layer < 3; layer++ {
		if c.Keys(layer)[0] != float32(layer+1) {
			t.Errorf("layer %d keys = %v", layer, c.Keys(layer))
		}
	}
}

func TestKVCacheViews(t *testing.T) {
	c := NewKVCache(1, 2, 4)
	for p := 0; p < 3; p++ {
		c.Put(0, p, []float32{float32(p), 0}, []float32{0, float32(p)})
	}
	c.ExtendTo(2)
	if len(c.Keys(0)) != 4 { // 2 committed positions × dim 2
		t.Errorf("committed view length %d", len(c.Keys(0)))
	}
	if len(c.KeysAt(0, 3)) != 6 {
		t.Errorf("KeysAt(0,3) length %d", len(c.KeysAt(0, 3)))
	}
	if c.ValuesAt(0, 3)[5] != 2 {
		t.Errorf("ValuesAt content wrong: %v", c.ValuesAt(0, 3))
	}
}

func TestKVCacheReset(t *testing.T) {
	c := NewKVCache(1, 2, 4)
	c.Put(0, 0, []float32{1, 2}, []float32{3, 4})
	c.ExtendTo(1)
	c.Reset()
	if c.Len() != 0 || len(c.Keys(0)) != 0 {
		t.Error("reset failed")
	}
}

func TestKVCachePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	c := NewKVCache(1, 2, 2)
	mustPanic("bad dim", func() { c.Put(0, 0, []float32{1}, []float32{1, 2}) })
	mustPanic("bad pos", func() { c.Put(0, 2, []float32{1, 2}, []float32{1, 2}) })
	mustPanic("bad layer", func() { c.Put(1, 0, []float32{1, 2}, []float32{1, 2}) })
	mustPanic("extend beyond cap", func() { c.ExtendTo(3) })
	c.ExtendTo(1)
	mustPanic("shrink", func() { c.ExtendTo(0) })
}

func TestKVCacheRoundTripProperty(t *testing.T) {
	// Property: what goes in comes back out at the same (layer, pos).
	f := func(layerRaw, posRaw uint8, a, b float32) bool {
		c := NewKVCache(4, 2, 8)
		layer, pos := int(layerRaw%4), int(posRaw%8)
		c.Put(layer, pos, []float32{a, b}, []float32{b, a})
		c.ExtendTo(8)
		k := c.Keys(layer)
		v := c.Values(layer)
		return k[pos*2] == a && k[pos*2+1] == b && v[pos*2] == b && v[pos*2+1] == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
