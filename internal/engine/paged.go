package engine

import "fmt"

// PagedKVCache is the functional counterpart of vLLM's PagedAttention
// storage (and of the allocation policy package kvpool models at fleet
// scale): the KV cache is split into fixed-size blocks of positions,
// allocated lazily as the sequence grows. A request that reserves a long
// maximum context but generates little occupies only the blocks it
// actually touched — the property behind the Fig 7 capacity argument.
type PagedKVCache struct {
	layers    int
	kvDim     int
	blockSize int
	maxSeq    int
	n         int
	// k and v are [layer][block] → []float32 of blockSize×kvDim values,
	// nil until first touched.
	k, v      [][][]float32
	allocated int // blocks this cache owns across layers (K and V pairs)
	// shared marks blocks aliased from another cache by AdoptPrefix.
	// They are read-only until a Put copies them (copy-on-write) and are
	// not counted in allocated or Bytes — the source cache owns them.
	shared  [][]bool
	sharedN int
}

// NewPagedKVCache builds an empty paged cache.
func NewPagedKVCache(layers, kvDim, maxSeq, blockSize int) *PagedKVCache {
	if blockSize <= 0 {
		panic(fmt.Sprintf("engine: non-positive KV block size %d", blockSize))
	}
	blocks := (maxSeq + blockSize - 1) / blockSize
	c := &PagedKVCache{
		layers: layers, kvDim: kvDim, blockSize: blockSize, maxSeq: maxSeq,
		k:      make([][][]float32, layers),
		v:      make([][][]float32, layers),
		shared: make([][]bool, layers),
	}
	for l := 0; l < layers; l++ {
		c.k[l] = make([][]float32, blocks)
		c.v[l] = make([][]float32, blocks)
		c.shared[l] = make([]bool, blocks)
	}
	return c
}

// Len returns the committed length; Cap the maximum.
func (c *PagedKVCache) Len() int { return c.n }

// Cap returns the maximum number of positions.
func (c *PagedKVCache) Cap() int { return c.maxSeq }

// AllocatedBlocks returns how many (K,V) block pairs this cache owns.
func (c *PagedKVCache) AllocatedBlocks() int { return c.allocated }

// SharedBlocks returns how many (K,V) block pairs are currently aliased
// from another cache via AdoptPrefix and not yet copied on write.
func (c *PagedKVCache) SharedBlocks() int { return c.sharedN }

// Bytes returns the footprint of the allocated blocks (FP32 storage).
func (c *PagedKVCache) Bytes() int64 {
	return int64(c.allocated) * int64(c.blockSize*c.kvDim) * 4 * 2
}

func (c *PagedKVCache) check(layer, pos int) {
	if layer < 0 || layer >= c.layers {
		panic(fmt.Sprintf("engine: kv layer %d out of [0,%d)", layer, c.layers))
	}
	if pos < 0 || pos >= c.maxSeq {
		panic(fmt.Sprintf("engine: kv position %d out of [0,%d)", pos, c.maxSeq))
	}
}

// Put stores one position's key/value, allocating its block on first
// touch.
func (c *PagedKVCache) Put(layer, pos int, key, value []float32) {
	c.check(layer, pos)
	if len(key) != c.kvDim || len(value) != c.kvDim {
		panic(fmt.Sprintf("engine: kv put dim %d/%d, want %d", len(key), len(value), c.kvDim))
	}
	b := pos / c.blockSize
	if c.k[layer][b] == nil {
		c.k[layer][b] = make([]float32, c.blockSize*c.kvDim)
		c.v[layer][b] = make([]float32, c.blockSize*c.kvDim)
		c.allocated++
	} else if c.shared[layer][b] {
		// Copy-on-write: never mutate a block another cache owns.
		nk := make([]float32, len(c.k[layer][b]))
		nv := make([]float32, len(c.v[layer][b]))
		copy(nk, c.k[layer][b])
		copy(nv, c.v[layer][b])
		c.k[layer][b], c.v[layer][b] = nk, nv
		c.shared[layer][b] = false
		c.sharedN--
		c.allocated++
	}
	off := (pos % c.blockSize) * c.kvDim
	copy(c.k[layer][b][off:off+c.kvDim], key)
	copy(c.v[layer][b][off:off+c.kvDim], value)
}

// RowK returns the key vector at one position. The block must have been
// written (reading an untouched block panics, catching misuse early).
func (c *PagedKVCache) RowK(layer, pos int) []float32 {
	c.check(layer, pos)
	b := c.k[layer][pos/c.blockSize]
	if b == nil {
		panic(fmt.Sprintf("engine: read of unwritten kv block at layer %d pos %d", layer, pos))
	}
	off := (pos % c.blockSize) * c.kvDim
	return b[off : off+c.kvDim]
}

// RowV returns the value vector at one position.
func (c *PagedKVCache) RowV(layer, pos int) []float32 {
	c.check(layer, pos)
	b := c.v[layer][pos/c.blockSize]
	if b == nil {
		panic(fmt.Sprintf("engine: read of unwritten kv block at layer %d pos %d", layer, pos))
	}
	off := (pos % c.blockSize) * c.kvDim
	return b[off : off+c.kvDim]
}

// ExtendTo commits positions up to n (exclusive).
func (c *PagedKVCache) ExtendTo(n int) {
	if n < c.n || n > c.maxSeq {
		panic(fmt.Sprintf("engine: kv extend to %d outside [%d,%d]", n, c.n, c.maxSeq))
	}
	c.n = n
}

// Truncate discards committed positions beyond n. Blocks past the new
// length are released (freeing their memory), except the partial boundary
// block.
func (c *PagedKVCache) Truncate(n int) {
	if n < 0 || n > c.n {
		panic(fmt.Sprintf("engine: truncate to %d outside [0,%d]", n, c.n))
	}
	c.n = n
	firstFree := (n + c.blockSize - 1) / c.blockSize
	for l := 0; l < c.layers; l++ {
		for b := firstFree; b < len(c.k[l]); b++ {
			if c.k[l][b] != nil {
				c.k[l][b], c.v[l][b] = nil, nil
				if c.shared[l][b] {
					// Dropping an aliased block releases the reference,
					// not memory this cache owns.
					c.shared[l][b] = false
					c.sharedN--
				} else {
					c.allocated--
				}
			}
		}
	}
}

// AdoptPrefix aliases the first prefix positions of src into c, which
// must be empty and share src's geometry. Whole blocks are shared by
// reference and marked copy-on-write — a later Put into one copies it
// first, so neither cache can corrupt the other — while the partial
// boundary block is copied eagerly (the adopting sequence appends into
// it immediately). This is the functional analog of kvpool's Fork: a
// prefix-cache hit adopts the retained blocks instead of recomputing
// their prefill.
func (c *PagedKVCache) AdoptPrefix(src *PagedKVCache, prefix int) {
	if c.n != 0 || c.allocated != 0 || c.sharedN != 0 {
		panic("engine: AdoptPrefix into a non-empty cache")
	}
	if c.layers != src.layers || c.kvDim != src.kvDim || c.blockSize != src.blockSize {
		panic("engine: AdoptPrefix across mismatched cache geometry")
	}
	if prefix <= 0 || prefix > src.n || prefix > c.maxSeq {
		panic(fmt.Sprintf("engine: adopt prefix %d outside (0,%d]", prefix, src.n))
	}
	whole, rem := prefix/c.blockSize, prefix%c.blockSize
	for l := 0; l < c.layers; l++ {
		for b := 0; b < whole; b++ {
			if src.k[l][b] == nil {
				continue
			}
			c.k[l][b], c.v[l][b] = src.k[l][b], src.v[l][b]
			c.shared[l][b] = true
			c.sharedN++
		}
		if rem > 0 && src.k[l][whole] != nil {
			nk := make([]float32, len(src.k[l][whole]))
			nv := make([]float32, len(src.v[l][whole]))
			copy(nk, src.k[l][whole])
			copy(nv, src.v[l][whole])
			c.k[l][whole], c.v[l][whole] = nk, nv
			c.allocated++
		}
	}
	c.n = prefix
}
