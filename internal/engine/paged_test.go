package engine

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// TestPagedMatchesDense is functional PagedAttention's defining property:
// a paged session must generate exactly the tokens a dense session does,
// for both families (including GQA and RoPE).
func TestPagedMatchesDense(t *testing.T) {
	for _, f := range []model.Family{model.OPT, model.LLaMA2} {
		e := tinyEngine(t, f, KernelBlocked)
		prompts := [][]int{prompt(e, 11, 71), prompt(e, 11, 72)}

		dense := e.NewSession(2, 48)
		want1, err := e.Prefill(dense, prompts)
		if err != nil {
			t.Fatal(err)
		}
		paged := e.NewPagedSession(2, 48, 8)
		got1, err := e.Prefill(paged, prompts)
		if err != nil {
			t.Fatal(err)
		}
		for b := range want1 {
			if want1[b] != got1[b] {
				t.Fatalf("%s: paged prefill diverged on seq %d", f, b)
			}
		}
		wantToks, gotToks := want1, got1
		for step := 0; step < 6; step++ {
			wantToks, err = e.DecodeStep(dense, wantToks)
			if err != nil {
				t.Fatal(err)
			}
			gotToks, err = e.DecodeStep(paged, gotToks)
			if err != nil {
				t.Fatal(err)
			}
			for b := range wantToks {
				if wantToks[b] != gotToks[b] {
					t.Fatalf("%s: paged decode diverged at step %d seq %d", f, step, b)
				}
			}
		}
	}
}

// TestPagedLazyAllocation: a paged session must allocate only the blocks
// it touches — far less than a dense preallocation for short sequences.
func TestPagedLazyAllocation(t *testing.T) {
	e := tinyEngine(t, model.OPT, KernelBlocked)
	const maxSeq, blockSize = 64, 8
	paged := e.NewPagedSession(1, maxSeq, blockSize)
	dense := e.NewSession(1, maxSeq)
	if paged.KVBytes() != 0 {
		t.Error("untouched paged session must hold zero bytes")
	}
	p := prompt(e, 10, 73) // 10 tokens → 2 blocks of 8
	if _, err := e.Prefill(paged, [][]int{p}); err != nil {
		t.Fatal(err)
	}
	c := paged.caches[0].(*PagedKVCache)
	wantBlocks := 2 * e.Config().Layers
	if c.AllocatedBlocks() != wantBlocks {
		t.Errorf("allocated %d block pairs, want %d", c.AllocatedBlocks(), wantBlocks)
	}
	if paged.KVBytes() >= dense.KVBytes() {
		t.Errorf("paged footprint %d must undercut dense %d for a short sequence",
			paged.KVBytes(), dense.KVBytes())
	}
}

// TestPagedChunkedPrefillAndSampling: the paged store must compose with
// the other generation features.
func TestPagedChunkedPrefill(t *testing.T) {
	e := tinyEngine(t, model.LLaMA2, KernelBlocked)
	p := prompt(e, 13, 74)
	dense := e.NewSession(1, 32)
	want, err := e.Prefill(dense, [][]int{p})
	if err != nil {
		t.Fatal(err)
	}
	paged := e.NewPagedSession(1, 32, 4)
	got, err := e.PrefillChunked(paged, [][]int{p}, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want[0] != got[0] {
		t.Error("paged chunked prefill diverged")
	}
}

func TestPagedTruncateFreesBlocks(t *testing.T) {
	c := NewPagedKVCache(2, 4, 32, 8)
	kv := []float32{1, 2, 3, 4}
	for pos := 0; pos < 20; pos++ { // 3 blocks per layer
		c.Put(0, pos, kv, kv)
		c.Put(1, pos, kv, kv)
	}
	c.ExtendTo(20)
	if c.AllocatedBlocks() != 6 {
		t.Fatalf("allocated %d, want 6", c.AllocatedBlocks())
	}
	c.Truncate(9) // keeps blocks 0 and 1 (positions 0..15)
	if c.AllocatedBlocks() != 4 {
		t.Errorf("after truncate: %d block pairs, want 4", c.AllocatedBlocks())
	}
	if c.Len() != 9 {
		t.Error("length wrong after truncate")
	}
	// Surviving data intact.
	if c.RowK(0, 8)[0] != 1 {
		t.Error("surviving block corrupted")
	}
}

func TestPagedPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero block size", func() { NewPagedKVCache(1, 2, 8, 0) })
	c := NewPagedKVCache(1, 2, 8, 4)
	mustPanic("bad dim", func() { c.Put(0, 0, []float32{1}, []float32{1, 2}) })
	mustPanic("bad layer", func() { c.Put(1, 0, []float32{1, 2}, []float32{1, 2}) })
	mustPanic("bad pos", func() { c.Put(0, 8, []float32{1, 2}, []float32{1, 2}) })
	mustPanic("unwritten read", func() { c.RowK(0, 0) })
	mustPanic("bad extend", func() { c.ExtendTo(9) })
	c.Put(0, 0, []float32{1, 2}, []float32{3, 4})
	c.ExtendTo(1)
	mustPanic("bad truncate", func() { c.Truncate(2) })
}

// TestPagedRoundTripProperty: any put is readable at the same position.
func TestPagedRoundTripProperty(t *testing.T) {
	f := func(layerRaw, posRaw uint8, a, b float32) bool {
		c := NewPagedKVCache(3, 2, 16, 4)
		layer, pos := int(layerRaw%3), int(posRaw%16)
		c.Put(layer, pos, []float32{a, b}, []float32{b, a})
		k, v := c.RowK(layer, pos), c.RowV(layer, pos)
		return k[0] == a && k[1] == b && v[0] == b && v[1] == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSpeculativeWithPagedTarget: speculation's cache rollback must work
// on the paged store too.
func TestSpeculativeOnPagedStore(t *testing.T) {
	// SpeculativeGenerate builds its own dense sessions; verify instead
	// that verifyRows + rollback semantics hold on a paged store directly.
	e := tinyEngine(t, model.OPT, KernelBlocked)
	s := e.NewPagedSession(1, 32, 4)
	p := prompt(e, 8, 75)
	first, err := e.Prefill(s, [][]int{p})
	if err != nil {
		t.Fatal(err)
	}
	next, err := e.VerifyRows(s, []int{first[0], 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(next) != 3 {
		t.Fatal("verify row count wrong")
	}
	s.rollback(s.pos + 1) // accept one row
	if s.pos != 9 {
		t.Errorf("pos = %d, want 9", s.pos)
	}
}
