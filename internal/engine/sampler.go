package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/kernels"
)

// Sampler converts logits into a token. The zero value (or a nil *Sampler)
// samples greedily; Temperature > 0 enables stochastic sampling with
// optional top-k and nucleus (top-p) truncation, seeded deterministically.
type Sampler struct {
	Temperature float64
	TopK        int     // keep the K most likely tokens (0 = all)
	TopP        float64 // keep the smallest nucleus with mass ≥ TopP (0 = all)
	rng         *rand.Rand
}

// NewSampler returns a deterministic sampler.
func NewSampler(seed int64, temperature float64, topK int, topP float64) *Sampler {
	return &Sampler{
		Temperature: temperature,
		TopK:        topK,
		TopP:        topP,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// Sample picks a token from the logits.
func (s *Sampler) Sample(logits []float32) int {
	if s == nil || s.Temperature <= 0 {
		return kernels.Argmax(logits)
	}
	// Softmax over temperature-scaled logits.
	probs := make([]float64, len(logits))
	maxL := float64(logits[0])
	for _, v := range logits[1:] {
		if float64(v) > maxL {
			maxL = float64(v)
		}
	}
	var sum float64
	for i, v := range logits {
		p := math.Exp((float64(v) - maxL) / s.Temperature)
		probs[i] = p
		sum += p
	}
	for i := range probs {
		probs[i] /= sum
	}

	// Candidate set, most likely first.
	idx := make([]int, len(probs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return probs[idx[a]] > probs[idx[b]] })
	keep := len(idx)
	if s.TopK > 0 && s.TopK < keep {
		keep = s.TopK
	}
	if s.TopP > 0 && s.TopP < 1 {
		var mass float64
		for i := 0; i < keep; i++ {
			mass += probs[idx[i]]
			if mass >= s.TopP {
				keep = i + 1
				break
			}
		}
	}
	// Renormalize and draw.
	var mass float64
	for i := 0; i < keep; i++ {
		mass += probs[idx[i]]
	}
	r := s.rng.Float64() * mass
	for i := 0; i < keep; i++ {
		r -= probs[idx[i]]
		if r <= 0 {
			return idx[i]
		}
	}
	return idx[keep-1]
}

// GenerateOptions controls sampled generation.
type GenerateOptions struct {
	MaxNew int
	// Sampler selects tokens; nil means greedy.
	Sampler *Sampler
	// Stop enables early stopping on StopToken (the zero value never
	// stops early, so token 0 remains usable).
	Stop      bool
	StopToken int
	// PrefillChunk processes the prompt in chunks of this many tokens
	// (Sarathi-style chunked prefill; 0 = whole prompt at once). The
	// result is bit-identical to unchunked prefill — chunking bounds the
	// latency impact of long prompts on co-scheduled decodes.
	PrefillChunk int
}

func (o GenerateOptions) stops(tok int) bool {
	return o.Stop && tok == o.StopToken
}

// GenerateWith runs generation with sampling, early stopping, and
// optional chunked prefill. Output per sequence ends at (and excludes)
// the stop token.
func (e *Engine) GenerateWith(prompts [][]int, opts GenerateOptions) ([][]int, Stats, error) {
	if opts.MaxNew <= 0 {
		return nil, Stats{}, errMaxNew
	}
	if len(prompts) == 0 {
		return nil, Stats{}, errNoPrompts
	}
	if opts.PrefillChunk < 0 {
		return nil, Stats{}, fmt.Errorf("engine: negative prefill chunk %d", opts.PrefillChunk)
	}
	s := e.NewSession(len(prompts), len(prompts[0])+opts.MaxNew)

	timer := newTimer()
	var toks []int
	var err error
	if opts.PrefillChunk > 0 {
		toks, err = e.PrefillChunked(s, prompts, opts.PrefillChunk, opts.Sampler)
	} else {
		toks, err = e.prefillSample(s, prompts, opts.Sampler)
	}
	if err != nil {
		return nil, Stats{}, err
	}
	stats := Stats{PrefillSeconds: timer.lap(), TokensOut: opts.MaxNew}

	out := make([][]int, len(prompts))
	done := make([]bool, len(prompts))
	liveCount := 0
	for b := range out {
		if opts.stops(toks[b]) {
			done[b] = true
			continue
		}
		out[b] = append(out[b], toks[b])
		liveCount++
	}
	for step := 1; step < opts.MaxNew && liveCount > 0; step++ {
		toks, err = e.decodeSample(s, toks, opts.Sampler)
		if err != nil {
			return nil, Stats{}, err
		}
		for b := range out {
			if done[b] {
				continue
			}
			if opts.stops(toks[b]) {
				done[b] = true
				liveCount--
				continue
			}
			out[b] = append(out[b], toks[b])
		}
	}
	stats.DecodeSeconds = timer.lap()
	return out, stats, nil
}
