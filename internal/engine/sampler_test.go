package engine

import (
	"math"
	"testing"

	"repro/internal/model"
)

func TestSamplerGreedy(t *testing.T) {
	logits := []float32{0.1, 2.0, -1.0}
	var nilS *Sampler
	if nilS.Sample(logits) != 1 {
		t.Error("nil sampler must be greedy")
	}
	if NewSampler(1, 0, 0, 0).Sample(logits) != 1 {
		t.Error("temperature 0 must be greedy")
	}
}

func TestSamplerDeterministicPerSeed(t *testing.T) {
	logits := []float32{1, 1.1, 0.9, 1.05}
	a := NewSampler(7, 1.0, 0, 0)
	b := NewSampler(7, 1.0, 0, 0)
	for i := 0; i < 20; i++ {
		if a.Sample(logits) != b.Sample(logits) {
			t.Fatal("same seed must give same draws")
		}
	}
}

func TestSamplerTopK(t *testing.T) {
	// With TopK=1, sampling must always return the argmax.
	logits := []float32{0.5, 3.0, 0.4, 2.9}
	s := NewSampler(3, 1.5, 1, 0)
	for i := 0; i < 50; i++ {
		if s.Sample(logits) != 1 {
			t.Fatal("top-1 sampling must equal argmax")
		}
	}
}

func TestSamplerTopKRestrictsSupport(t *testing.T) {
	logits := []float32{5, 4.9, -10, -10, -10}
	s := NewSampler(4, 2.0, 2, 0)
	for i := 0; i < 100; i++ {
		tok := s.Sample(logits)
		if tok != 0 && tok != 1 {
			t.Fatalf("top-2 sampled token %d", tok)
		}
	}
}

func TestSamplerTopP(t *testing.T) {
	// Token 0 carries ~88% of the mass; a 0.5 nucleus is {0}.
	logits := []float32{2, 0, 0, 0}
	s := NewSampler(5, 1.0, 0, 0.5)
	for i := 0; i < 50; i++ {
		if s.Sample(logits) != 0 {
			t.Fatal("0.5 nucleus must be the single dominant token")
		}
	}
}

func TestSamplerDistribution(t *testing.T) {
	// At temperature 1 with two equal logits, both tokens appear.
	logits := []float32{1, 1}
	s := NewSampler(6, 1.0, 0, 0)
	counts := [2]int{}
	for i := 0; i < 400; i++ {
		counts[s.Sample(logits)]++
	}
	ratio := float64(counts[0]) / 400
	if math.Abs(ratio-0.5) > 0.1 {
		t.Errorf("equal logits sampled %.2f/%.2f", ratio, 1-ratio)
	}
}

func TestGenerateWithGreedyMatchesGenerate(t *testing.T) {
	e := tinyEngine(t, model.OPT, KernelBlocked)
	p := prompt(e, 10, 21)
	want, _, err := e.Generate([][]int{p}, 6)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := e.GenerateWith([][]int{p}, GenerateOptions{MaxNew: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want[0] {
		if got[0][i] != want[0][i] {
			t.Fatalf("greedy GenerateWith diverged at %d", i)
		}
	}
}

// TestChunkedPrefillEquivalence: Sarathi-style chunked prefill must be
// bit-equivalent to monolithic prefill for any chunk size.
func TestChunkedPrefillEquivalence(t *testing.T) {
	for _, fam := range []model.Family{model.OPT, model.LLaMA2} {
		e := tinyEngine(t, fam, KernelBlocked)
		p := prompt(e, 13, 22)
		want, _, err := e.Generate([][]int{p}, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, chunk := range []int{1, 3, 4, 13, 100} {
			got, _, err := e.GenerateWith([][]int{p},
				GenerateOptions{MaxNew: 5, PrefillChunk: chunk})
			if err != nil {
				t.Fatalf("chunk %d: %v", chunk, err)
			}
			for i := range want[0] {
				if got[0][i] != want[0][i] {
					t.Fatalf("%s chunk %d: diverged at token %d (%d vs %d)",
						fam, chunk, i, got[0][i], want[0][i])
				}
			}
		}
	}
}

func TestStopToken(t *testing.T) {
	e := tinyEngine(t, model.OPT, KernelBlocked)
	p := prompt(e, 8, 23)
	full, _, err := e.Generate([][]int{p}, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Stop on the second generated token: output must be truncated before
	// it.
	stop := full[0][1]
	got, _, err := e.GenerateWith([][]int{p},
		GenerateOptions{MaxNew: 6, Stop: true, StopToken: stop})
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range got[0] {
		if tok == stop {
			t.Fatal("stop token leaked into output")
		}
	}
	if len(got[0]) >= len(full[0]) {
		t.Errorf("stopped output length %d not shorter than %d", len(got[0]), len(full[0]))
	}
	// Without Stop set, token 0 must never terminate generation.
	got, _, err = e.GenerateWith([][]int{p}, GenerateOptions{MaxNew: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0]) != 6 {
		t.Error("zero-value options must not stop early")
	}
}

func TestGenerateWithValidation(t *testing.T) {
	e := tinyEngine(t, model.OPT, KernelBlocked)
	if _, _, err := e.GenerateWith(nil, GenerateOptions{MaxNew: 1}); err == nil {
		t.Error("no prompts must fail")
	}
	if _, _, err := e.GenerateWith([][]int{{1}}, GenerateOptions{}); err == nil {
		t.Error("zero MaxNew must fail")
	}
	if _, _, err := e.GenerateWith([][]int{{1}},
		GenerateOptions{MaxNew: 2, PrefillChunk: -1}); err == nil {
		t.Error("negative chunk must fail")
	}
}

func TestSampledGenerationStaysInVocab(t *testing.T) {
	e := tinyEngine(t, model.LLaMA2, KernelBlocked)
	p := prompt(e, 8, 24)
	out, _, err := e.GenerateWith([][]int{p}, GenerateOptions{
		MaxNew: 8, Sampler: NewSampler(9, 0.8, 20, 0.95)})
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range out[0] {
		if tok < 0 || tok >= e.Config().Vocab {
			t.Fatalf("sampled token %d outside vocab", tok)
		}
	}
}
