package engine

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/model"
)

// Weight-file format: a small header followed by raw little-endian
// float32 tensors in a fixed traversal order. The format stores the full
// architecture so a file round-trips without external metadata.
const (
	weightsMagic   = 0x4C4C4D57 // "LLMW"
	weightsVersion = 1
)

type weightsHeader struct {
	Magic, Version                                  uint32
	Family                                          uint32
	Layers, DModel, Heads, KVHeads, DFF, Vocab, Max uint32
}

// WriteTo serializes the weights. It implements io.WriterTo.
func (w *Weights) WriteTo(out io.Writer) (int64, error) {
	bw := bufio.NewWriter(out)
	cw := &countWriter{w: bw}
	h := weightsHeader{
		Magic: weightsMagic, Version: weightsVersion,
		Family: uint32(w.Config.Family),
		Layers: uint32(w.Config.Layers), DModel: uint32(w.Config.DModel),
		Heads: uint32(w.Config.Heads), KVHeads: uint32(w.Config.KVHeads),
		DFF: uint32(w.Config.DFF), Vocab: uint32(w.Config.Vocab),
		Max: uint32(w.Config.MaxSeq),
	}
	if err := binary.Write(cw, binary.LittleEndian, h); err != nil {
		return cw.n, err
	}
	var err error
	w.visit(func(name string, s []float32) {
		if err != nil {
			return
		}
		if werr := writeSlice(cw, s); werr != nil {
			err = fmt.Errorf("engine: writing %s: %w", name, werr)
		}
	})
	if err != nil {
		return cw.n, err
	}
	return cw.n, bw.Flush()
}

// ReadWeights deserializes a weight file written by WriteTo.
func ReadWeights(in io.Reader) (*Weights, error) {
	br := bufio.NewReader(in)
	var h weightsHeader
	if err := binary.Read(br, binary.LittleEndian, &h); err != nil {
		return nil, fmt.Errorf("engine: reading header: %w", err)
	}
	if h.Magic != weightsMagic {
		return nil, fmt.Errorf("engine: bad magic %#x", h.Magic)
	}
	if h.Version != weightsVersion {
		return nil, fmt.Errorf("engine: unsupported version %d", h.Version)
	}
	cfg := model.Config{
		Name:   "loaded",
		Family: model.Family(h.Family),
		Layers: int(h.Layers), DModel: int(h.DModel),
		Heads: int(h.Heads), KVHeads: int(h.KVHeads),
		DFF: int(h.DFF), Vocab: int(h.Vocab), MaxSeq: int(h.Max),
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Build a skeleton with the right slice shapes, then overwrite.
	w, err := NewWeights(cfg, 0, 0)
	if err != nil {
		return nil, err
	}
	w.visit(func(name string, s []float32) {
		if err != nil {
			return
		}
		if rerr := readSlice(br, s); rerr != nil {
			err = fmt.Errorf("engine: reading %s: %w", name, rerr)
		}
	})
	if err != nil {
		return nil, err
	}
	return w, nil
}

// visit walks every float32 tensor in a deterministic order shared by the
// writer and the reader.
func (w *Weights) visit(f func(name string, s []float32)) {
	visitMaybe := func(name string, s []float32) {
		if s != nil {
			f(name, s)
		}
	}
	f("token_emb", w.TokenEmb)
	visitMaybe("pos_emb", w.PosEmb)
	f("final_norm_gain", w.FinalNormGain)
	visitMaybe("final_norm_bias", w.FinalNormBias)
	visitMaybe("lm_head", w.LMHead.W)
	visitMaybe("lm_head_bias", w.LMHead.Bias)
	for i := range w.Layers {
		lw := &w.Layers[i]
		pfx := fmt.Sprintf("layer%d.", i)
		f(pfx+"attn_norm_gain", lw.AttnNormGain)
		visitMaybe(pfx+"attn_norm_bias", lw.AttnNormBias)
		f(pfx+"ffn_norm_gain", lw.FFNNormGain)
		visitMaybe(pfx+"ffn_norm_bias", lw.FFNNormBias)
		for _, l := range []struct {
			name string
			lin  *Linear
		}{
			{"wq", &lw.Wq}, {"wk", &lw.Wk}, {"wv", &lw.Wv}, {"wo", &lw.Wo},
			{"w1", &lw.W1}, {"wgate", &lw.WGate}, {"w2", &lw.W2},
		} {
			visitMaybe(pfx+l.name, l.lin.W)
			visitMaybe(pfx+l.name+"_bias", l.lin.Bias)
		}
	}
}

func writeSlice(w io.Writer, s []float32) error {
	buf := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readSlice(r io.Reader, s []float32) error {
	buf := make([]byte, 4*len(s))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range s {
		s[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
