package engine

import (
	"bytes"
	"testing"

	"repro/internal/model"
	"repro/internal/tensor"
)

func TestWeightsRoundTrip(t *testing.T) {
	for _, fam := range []model.Family{model.OPT, model.LLaMA2} {
		w, err := NewWeights(model.Tiny(fam), 42, tensor.BF16)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		n, err := w.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
		}
		got, err := ReadWeights(&buf)
		if err != nil {
			t.Fatal(err)
		}
		// Round-tripped weights must generate identical tokens.
		e1, _ := New(w, Options{Kernel: KernelBlocked})
		e2, _ := New(got, Options{Kernel: KernelBlocked})
		p := prompt(e1, 10, 31)
		out1, _, err := e1.Generate([][]int{p}, 5)
		if err != nil {
			t.Fatal(err)
		}
		out2, _, err := e2.Generate([][]int{p}, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range out1[0] {
			if out1[0][i] != out2[0][i] {
				t.Fatalf("%s: loaded weights diverged at token %d", fam, i)
			}
		}
		// Config fields must survive.
		if got.Config.DFF != w.Config.DFF || got.Config.KVHeads != w.Config.KVHeads {
			t.Errorf("%s: config fields lost: %+v", fam, got.Config)
		}
	}
}

func TestReadWeightsErrors(t *testing.T) {
	if _, err := ReadWeights(bytes.NewReader(nil)); err == nil {
		t.Error("empty input must fail")
	}
	// Bad magic.
	bad := make([]byte, 4*9)
	if _, err := ReadWeights(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic must fail")
	}
	// Truncated body: valid header, missing tensors.
	w, _ := NewWeights(model.Tiny(model.OPT), 1, tensor.FP32)
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadWeights(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated file must fail")
	}
	// Corrupted version.
	data := append([]byte(nil), buf.Bytes()...)
	data[4] = 99
	if _, err := ReadWeights(bytes.NewReader(data)); err == nil {
		t.Error("bad version must fail")
	}
}

func TestVisitCoversEverything(t *testing.T) {
	// The serialized byte count must equal the header plus 4 bytes per
	// parameter-or-norm scalar the config implies, for both families.
	for _, fam := range []model.Family{model.OPT, model.LLaMA2} {
		w, _ := NewWeights(model.Tiny(fam), 1, tensor.FP32)
		var total int
		w.visit(func(_ string, s []float32) { total += len(s) })
		var buf bytes.Buffer
		n, err := w.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(4*10) + int64(4*total) // 10-field header + tensors
		if n != want {
			t.Errorf("%s: wrote %d bytes, want %d", fam, n, want)
		}
	}
}
