package engine

// spec_tiers_test.go asserts speculative decoding's defining invariant on
// every kernel tier and attention/session variant: greedy output through
// the draft+verify path is bit-identical to the same engine's own greedy
// generation. The lut-gemv tier is approximate relative to the exact
// tiers (bounded error, asserted in kernels/lut_test.go), but speculation
// on it must still match *its own* greedy decode bit for bit — the
// verification pass and the plain decode path run the same kernels.

import (
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/tensor"
)

var allKernelTiers = []Kernel{KernelBlocked, KernelParallel, KernelTileBF16,
	KernelTileBF16Parallel, KernelInt8, KernelLUT}

func TestSpeculativeBitIdenticalOnAllTiers(t *testing.T) {
	cfg := model.Tiny(model.OPT)
	tw, err := NewWeights(cfg, 42, tensor.BF16)
	if err != nil {
		t.Fatal(err)
	}
	tw.QuantizeAll() // int8 and lut-gemv tiers need the INT8 shadow
	dcfg := cfg
	dcfg.Layers = 1
	dw, err := NewWeights(dcfg, 7, tensor.BF16)
	if err != nil {
		t.Fatal(err)
	}
	dw.QuantizeAll()

	const maxNew, lookahead = 12, 3
	for _, kern := range allKernelTiers {
		for _, flash := range []bool{false, true} {
			for _, paged := range []bool{false, true} {
				name := fmt.Sprintf("%s/flash=%v/paged=%v", kern, flash, paged)
				t.Run(name, func(t *testing.T) {
					opts := Options{Kernel: kern, FlashAttention: flash}
					target, err := New(tw, opts)
					if err != nil {
						t.Fatal(err)
					}
					draft, err := New(dw, opts)
					if err != nil {
						t.Fatal(err)
					}
					p := prompt(target, 10, 41)
					want, _, err := target.Generate([][]int{p}, maxNew)
					if err != nil {
						t.Fatal(err)
					}
					got, st, err := SpeculativeGenerateOpts(target, draft, p, maxNew,
						SpecOptions{Lookahead: lookahead, Paged: paged, BlockSize: 8})
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != maxNew {
						t.Fatalf("got %d tokens, want %d", len(got), maxNew)
					}
					for i := range want[0] {
						if got[i] != want[0][i] {
							t.Fatalf("diverged from greedy at token %d (%d vs %d), stats %+v",
								i, got[i], want[0][i], st)
						}
					}
					if st.Proposed <= 0 || st.TargetPasses <= 0 {
						t.Errorf("degenerate stats %+v", st)
					}
				})
			}
		}
	}
}

// TestSpeculativeSteeringPreservesGreedy: an adversarial Steer function —
// one that rewrites every proposal to a fixed wrong token — must not
// change the output, only the acceptance rate. This is what lets
// gemmbench pin acceptance at arbitrary α without compromising the
// bit-identity guarantee.
func TestSpeculativeSteeringPreservesGreedy(t *testing.T) {
	target, draft := specEngines(t, 7)
	p := prompt(target, 10, 41)
	want, _, err := target.Generate([][]int{p}, 12)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := SpeculativeGenerateOpts(target, draft, p, 12, SpecOptions{
		Lookahead: 4,
		Steer:     func(outLen, i, proposed int) int { return (proposed + 1) % target.cfg.Vocab },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want[0] {
		if got[i] != want[0][i] {
			t.Fatalf("steered speculation diverged at %d", i)
		}
	}
	if st.AcceptanceRate() >= 1 {
		t.Errorf("uniformly wrong steering should not be fully accepted: %+v", st)
	}
}
