package engine

import (
	"fmt"

	"repro/internal/kernels"
)

// Speculative decoding (the paper's related work [37], SpecInfer): a small
// draft model proposes lookahead tokens autoregressively and the target
// model verifies the whole proposal in one forward pass. With greedy
// acceptance the output is bit-identical to the target's own greedy
// generation — the draft only changes *how fast* tokens are produced,
// converting k memory-bound target steps into one multi-row pass. On the
// CPUs this paper characterizes that is exactly the decode-phase
// bandwidth bottleneck (Figs 9–12), which makes speculation a natural
// §VI-style optimization.

// SpecStats reports the dynamics of one speculative generation.
type SpecStats struct {
	// Proposed counts draft-proposed tokens; Accepted counts those the
	// target kept. AcceptanceRate is their ratio.
	Proposed, Accepted int
	// TargetPasses counts target forward passes (each verifies k+ tokens);
	// plain greedy decoding would need one pass per token.
	TargetPasses int
}

// AcceptanceRate returns Accepted/Proposed (0 when nothing was proposed).
func (s SpecStats) AcceptanceRate() float64 {
	if s.Proposed == 0 {
		return 0
	}
	return float64(s.Accepted) / float64(s.Proposed)
}

// SpecOptions tunes SpeculativeGenerateOpts beyond the plain lookahead.
type SpecOptions struct {
	// Lookahead is the draft proposal length k per cycle.
	Lookahead int
	// Paged allocates paged KV sessions (vLLM-style blocks) for both
	// engines instead of dense caches; BlockSize defaults to 16.
	Paged     bool
	BlockSize int
	// Steer, when non-nil, rewrites each draft proposal before
	// verification: it receives the output length so far, the proposal
	// index i within the cycle, and the draft's proposed token, and
	// returns the token to propose instead. Benchmarks use it to pin the
	// measured acceptance rate (propose the known-correct token with
	// probability α) while the draft still runs honestly for cost — the
	// verification pass repairs any wrong proposal, so greedy output is
	// unchanged by any Steer function.
	Steer func(outLen, i, proposed int) int
}

// SpeculativeGenerate generates maxNew tokens for a single prompt using
// draft to propose lookahead batches of k tokens and the target engine to
// verify them greedily. Both engines must share the vocabulary. The
// returned tokens are identical to target.Generate's greedy output.
func SpeculativeGenerate(target, draft *Engine, prompt []int, maxNew, k int) ([]int, SpecStats, error) {
	return SpeculativeGenerateOpts(target, draft, prompt, maxNew, SpecOptions{Lookahead: k})
}

// SpeculativeGenerateOpts is SpeculativeGenerate with session and
// steering control (see SpecOptions).
func SpeculativeGenerateOpts(target, draft *Engine, prompt []int, maxNew int, opts SpecOptions) ([]int, SpecStats, error) {
	var st SpecStats
	k := opts.Lookahead
	if maxNew <= 0 {
		return nil, st, errMaxNew
	}
	if k <= 0 {
		return nil, st, fmt.Errorf("engine: lookahead k must be positive")
	}
	if target.cfg.Vocab != draft.cfg.Vocab {
		return nil, st, fmt.Errorf("engine: draft vocab %d != target vocab %d",
			draft.cfg.Vocab, target.cfg.Vocab)
	}
	maxSeq := len(prompt) + maxNew + k + 1
	var ts, ds *Session
	if opts.Paged {
		bs := opts.BlockSize
		if bs <= 0 {
			bs = 16
		}
		ts = target.NewPagedSession(1, maxSeq, bs)
		ds = draft.NewPagedSession(1, maxSeq, bs)
	} else {
		ts = target.NewSession(1, maxSeq)
		ds = draft.NewSession(1, maxSeq)
	}

	// Both models prefill the prompt; the target's greedy token is the
	// first output.
	tTok, err := target.Prefill(ts, [][]int{prompt})
	if err != nil {
		return nil, st, err
	}
	if _, err := draft.Prefill(ds, [][]int{prompt}); err != nil {
		return nil, st, err
	}
	st.TargetPasses++
	out := []int{tTok[0]}

	for len(out) < maxNew {
		// Draft proposes up to k tokens continuing from the accepted
		// sequence. The draft cache first catches up on any accepted
		// tokens it has not seen (they were produced by the target).
		if err := syncDraft(draft, ds, prompt, out); err != nil {
			return nil, st, err
		}
		lookahead := k
		if rem := maxNew - len(out); lookahead > rem {
			lookahead = rem
		}
		proposal := make([]int, 0, lookahead)
		last := out[len(out)-1]
		for i := 0; i < lookahead; i++ {
			next, err := draft.DecodeStep(ds, []int{last})
			if err != nil {
				return nil, st, err
			}
			tok := next[0]
			if opts.Steer != nil {
				tok = opts.Steer(len(out), i, tok)
				if tok < 0 || tok >= target.cfg.Vocab {
					return nil, st, fmt.Errorf("engine: steered token %d outside vocab %d", tok, target.cfg.Vocab)
				}
			}
			proposal = append(proposal, tok)
			last = tok
		}
		st.Proposed += len(proposal)

		// Target verifies: one forward pass over [lastAccepted, proposal...]
		// produces the target's greedy next-token at every position.
		verify := append([]int{out[len(out)-1]}, proposal...)
		targetNext, err := target.VerifyRows(ts, verify)
		if err != nil {
			return nil, st, err
		}
		st.TargetPasses++

		// Greedy acceptance: keep proposals while they match the target's
		// own choice; the first mismatch is replaced by the target token.
		accepted := 0
		for accepted < len(proposal) && proposal[accepted] == targetNext[accepted] {
			accepted++
		}
		st.Accepted += accepted
		newTokens := append(append([]int{}, proposal[:accepted]...), targetNext[accepted])
		// Commit exactly the consumed rows into the target cache: the row
		// for out's last token plus the accepted proposals.
		ts.rollback(ts.pos + 1 + accepted)
		for _, tok := range newTokens {
			out = append(out, tok)
			if len(out) == maxNew {
				break
			}
		}
	}
	return out[:maxNew], st, nil
}

// VerifyRows runs one multi-row target pass over toks (continuing the
// committed cache) and returns the greedy next token after each row —
// the fused verification step of speculative decoding, exported so cost
// models and benchmarks can time the pass in isolation. The cache is
// left *uncommitted* beyond the current position; the caller commits the
// accepted prefix via Commit (or discards by committing the old
// position).
func (e *Engine) VerifyRows(s *Session, toks []int) ([]int, error) {
	if err := e.checkTokens(toks); err != nil {
		return nil, err
	}
	d := e.cfg.DModel
	rows := len(toks)
	x := make([]float32, rows*d)
	for i, tok := range toks {
		e.embed(tok, s.pos+i, x[i*d:(i+1)*d])
	}
	e.forwardSeq(s.caches[0], x, rows, s.pos)
	next := make([]int, rows)
	for i := 0; i < rows; i++ {
		next[i] = kernels.Argmax(e.logits(x[i*d : (i+1)*d]))
	}
	return next, nil
}

// Commit fixes the session's caches at exactly n positions (which may be
// beyond the previous commit — VerifyRows has already written the KV
// entries — but never before it). It is the acceptance step after a
// verification pass: commit pos+1+accepted to keep the consumed row for
// the previous token plus the accepted proposals.
func (s *Session) Commit(n int) {
	for _, c := range s.caches {
		c.ExtendTo(n)
	}
	s.pos = n
}

// rollback is the historical internal name for Commit.
func (s *Session) rollback(n int) { s.Commit(n) }

// syncDraft replays target-accepted tokens the draft has not processed
// yet, so the draft cache always reflects the accepted sequence.
func syncDraft(draft *Engine, ds *Session, prompt, out []int) error {
	want := len(prompt) + len(out) - 1 // cache holds everything before the last token
	if ds.pos > want {
		// The draft speculated past the accepted point: discard.
		for _, c := range ds.caches {
			c.Truncate(want)
		}
		ds.pos = want
		return nil
	}
	full := append(append([]int{}, prompt...), out...)
	for ds.pos < want {
		tok := full[ds.pos] // the sequence token belonging at cache position ds.pos
		if _, err := draft.DecodeStep(ds, []int{tok}); err != nil {
			return err
		}
	}
	return nil
}
