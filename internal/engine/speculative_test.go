package engine

import (
	"testing"

	"repro/internal/model"
	"repro/internal/tensor"
)

func specEngines(t *testing.T, draftSeed int64) (target, draft *Engine) {
	t.Helper()
	cfg := model.Tiny(model.OPT)
	tw, err := NewWeights(cfg, 42, tensor.FP32)
	if err != nil {
		t.Fatal(err)
	}
	target, err = New(tw, Options{Kernel: KernelBlocked})
	if err != nil {
		t.Fatal(err)
	}
	// The draft is a one-layer model over the same vocabulary.
	dcfg := cfg
	dcfg.Layers = 1
	dw, err := NewWeights(dcfg, draftSeed, tensor.FP32)
	if err != nil {
		t.Fatal(err)
	}
	draft, err = New(dw, Options{Kernel: KernelBlocked})
	if err != nil {
		t.Fatal(err)
	}
	return target, draft
}

// TestSpeculativeMatchesGreedy is speculation's defining invariant: the
// output must be bit-identical to the target's own greedy generation, no
// matter how good or bad the draft is, for every lookahead depth.
func TestSpeculativeMatchesGreedy(t *testing.T) {
	target, draft := specEngines(t, 7)
	p := prompt(target, 10, 41)
	want, _, err := target.Generate([][]int{p}, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 5, 8} {
		got, st, err := SpeculativeGenerate(target, draft, p, 12, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(got) != 12 {
			t.Fatalf("k=%d: got %d tokens", k, len(got))
		}
		for i := range want[0] {
			if got[i] != want[0][i] {
				t.Fatalf("k=%d: diverged from greedy at token %d (%d vs %d)",
					k, i, got[i], want[0][i])
			}
		}
		if st.TargetPasses <= 0 || st.Proposed <= 0 {
			t.Errorf("k=%d: degenerate stats %+v", k, st)
		}
	}
}

// TestSpeculativeSelfDraftAcceptsEverything: drafting with the target
// itself must accept every proposal and cut target passes by ~k.
func TestSpeculativeSelfDraftAcceptsEverything(t *testing.T) {
	cfg := model.Tiny(model.OPT)
	w, err := NewWeights(cfg, 42, tensor.FP32)
	if err != nil {
		t.Fatal(err)
	}
	target, _ := New(w, Options{Kernel: KernelBlocked})
	draft, _ := New(w, Options{Kernel: KernelBlocked})
	p := prompt(target, 8, 43)
	const maxNew, k = 13, 4
	out, st, err := SpeculativeGenerate(target, draft, p, maxNew, k)
	if err != nil {
		t.Fatal(err)
	}
	if st.AcceptanceRate() != 1.0 {
		t.Errorf("self-draft acceptance = %.2f, want 1.0", st.AcceptanceRate())
	}
	// Each verify pass yields k+1 tokens: passes ≈ 1 (prefill) + ceil((maxNew-1)/(k+1)).
	if st.TargetPasses >= maxNew {
		t.Errorf("speculation used %d target passes for %d tokens", st.TargetPasses, maxNew)
	}
	want, _, err := target.Generate([][]int{p}, maxNew)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want[0] {
		if out[i] != want[0][i] {
			t.Fatalf("self-draft diverged at %d", i)
		}
	}
}

// TestSpeculativePartialAcceptance: an unrelated draft must still yield
// correct output with acceptance strictly below 1 (otherwise the test
// setup is degenerate).
func TestSpeculativePartialAcceptance(t *testing.T) {
	target, draft := specEngines(t, 999)
	p := prompt(target, 12, 44)
	_, st, err := SpeculativeGenerate(target, draft, p, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.AcceptanceRate() >= 1.0 {
		t.Skipf("draft coincidentally perfect (acceptance %.2f)", st.AcceptanceRate())
	}
	if st.Accepted > st.Proposed {
		t.Errorf("accepted %d > proposed %d", st.Accepted, st.Proposed)
	}
}

// TestSpeculativeLlama: the invariant must also hold with RoPE attention
// (positions matter more).
func TestSpeculativeLlama(t *testing.T) {
	cfg := model.Tiny(model.LLaMA2)
	tw, _ := NewWeights(cfg, 42, tensor.FP32)
	target, _ := New(tw, Options{Kernel: KernelBlocked})
	dcfg := cfg
	dcfg.Layers = 1
	dw, _ := NewWeights(dcfg, 5, tensor.FP32)
	draft, _ := New(dw, Options{Kernel: KernelBlocked})
	p := prompt(target, 9, 45)
	want, _, err := target.Generate([][]int{p}, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := SpeculativeGenerate(target, draft, p, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want[0] {
		if got[i] != want[0][i] {
			t.Fatalf("llama speculation diverged at %d", i)
		}
	}
}

func TestSpeculativeValidation(t *testing.T) {
	target, draft := specEngines(t, 7)
	p := prompt(target, 4, 46)
	if _, _, err := SpeculativeGenerate(target, draft, p, 0, 2); err == nil {
		t.Error("zero maxNew must fail")
	}
	if _, _, err := SpeculativeGenerate(target, draft, p, 4, 0); err == nil {
		t.Error("zero lookahead must fail")
	}
	other := model.Tiny(model.LLaMA2)
	other.Vocab = 53 // genuinely different vocabulary
	ow, _ := NewWeights(other, 1, tensor.FP32)
	oe, _ := New(ow, Options{Kernel: KernelBlocked})
	if _, _, err := SpeculativeGenerate(target, oe, p, 4, 2); err == nil {
		t.Error("vocab mismatch must fail")
	}
}

func TestKVCacheTruncate(t *testing.T) {
	c := NewKVCache(1, 2, 4)
	c.Put(0, 0, []float32{1, 2}, []float32{3, 4})
	c.Put(0, 1, []float32{5, 6}, []float32{7, 8})
	c.ExtendTo(2)
	c.Truncate(1)
	if c.Len() != 1 {
		t.Error("truncate failed")
	}
	c.ExtendTo(2) // re-extend over retained data
	if c.Keys(0)[2] != 5 {
		t.Error("data must survive truncate+extend")
	}
	defer func() {
		if recover() == nil {
			t.Error("truncate beyond length must panic")
		}
	}()
	c.Truncate(3)
}
