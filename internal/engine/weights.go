// Package engine is a functional decoder-only transformer inference engine
// in pure Go. It executes real forward passes (prefill and decode with a
// KV cache, batching, greedy sampling) over the kernels package, supporting
// the architectural variants of both model families the paper evaluates
// (OPT: LayerNorm/ReLU/learned positions/biases; LLaMA-2: RMSNorm/SwiGLU/
// RoPE/grouped-query attention) and the numeric paths of the studied
// hardware (FP32 reference, AMX-style BF16 tiles, INT8).
//
// The engine is the laptop-scale substitute for running IPEX on Xeon
// silicon: it exercises the same dataflow the performance model prices.
package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/kernels"
	"repro/internal/model"
	"repro/internal/tensor"
)

// Kernel selects the GEMM implementation for the linear layers.
type Kernel int

const (
	// KernelBlocked uses the cache-blocked FP32 GEMM (AVX-512 analog).
	KernelBlocked Kernel = iota
	// KernelParallel uses the multi-goroutine blocked GEMM.
	KernelParallel
	// KernelTileBF16 uses the AMX-emulating BF16 tile GEMM.
	KernelTileBF16
	// KernelTileBF16Parallel uses the parallel AMX-emulating GEMM.
	KernelTileBF16Parallel
	// KernelInt8 uses INT8 weights with VNNI-style int32 accumulation.
	KernelInt8
	// KernelLUT uses NoMAD/SAIL-style lookup-table GEMV over codebook-
	// quantized weights, built on the INT8 path (the codebooks quantize
	// the dequantized INT8 shadow). Approximate: outputs are bounded-error
	// rather than bit-identical to FP32; the logits head stays exact.
	KernelLUT
)

// String returns the kernel name.
func (k Kernel) String() string {
	switch k {
	case KernelBlocked:
		return "blocked-fp32"
	case KernelParallel:
		return "parallel-fp32"
	case KernelTileBF16:
		return "tile-bf16"
	case KernelTileBF16Parallel:
		return "parallel-tile-bf16"
	case KernelInt8:
		return "int8"
	case KernelLUT:
		return "lut-gemv"
	default:
		return fmt.Sprintf("kernel(%d)", int(k))
	}
}

// Linear is one weight matrix with optional bias and an optional INT8
// shadow for the quantized path. Weights are stored row-major [In, Out] so
// that Y = X·W. The unexported pack fields hold panel-packed shadows built
// once at engine construction (Weights.ensurePacked); they are invisible
// to the serializer, so loaded checkpoints repack lazily.
type Linear struct {
	In, Out int
	W       []float32
	Bias    []float32 // nil for bias-free families
	Q       []int8    // int8 shadow, populated by Quantize
	QScale  float32

	pf32  *kernels.PackedB   // FP32 panel pack (blocked/parallel tiers)
	pbf16 *kernels.PackedB   // BF16 pre-rounded panel pack (tile tiers)
	plut  *kernels.PackedLUT // codebook pack (LUT tier, from the INT8 shadow)
}

// Quantize populates the INT8 shadow representation.
func (l *Linear) Quantize() {
	l.Q, l.QScale = tensor.QuantizeInt8(l.W)
}

// packFor returns the packed shadow matching the kernel tier's numerics,
// or nil when the tier has none (INT8) or packing hasn't run.
func (l *Linear) packFor(k Kernel) *kernels.PackedB {
	switch k {
	case KernelTileBF16, KernelTileBF16Parallel:
		return l.pbf16
	case KernelBlocked, KernelParallel:
		return l.pf32
	default:
		return nil
	}
}

// LayerWeights holds one decoder block's parameters.
type LayerWeights struct {
	AttnNormGain, AttnNormBias []float32
	Wq, Wk, Wv, Wo             Linear
	FFNNormGain, FFNNormBias   []float32
	W1                         Linear // up projection
	WGate                      Linear // LLaMA-2 gate projection (zero for OPT)
	W2                         Linear // down projection
}

// Weights holds a full model's parameters.
type Weights struct {
	Config        model.Config
	TokenEmb      []float32 // [vocab, d]
	PosEmb        []float32 // [maxSeq, d], OPT only
	Layers        []LayerWeights
	FinalNormGain []float32
	FinalNormBias []float32
	LMHead        Linear // untied head (LLaMA-2); OPT ties to TokenEmb

	packMu   sync.Mutex
	tiedHead *kernels.PackedB // FP32 pack of TokenEmbᵀ (OPT tied logits head)
}

// ensurePacked builds the panel-packed weight shadows the given kernel
// tier consumes: BF16 pre-rounded packs for the tile tiers, FP32 packs for
// the blocked/parallel tiers, and (for OPT) an FP32 pack of the transposed
// token embedding used as the tied logits head by every tier. Packing runs
// once per precision class — repeat calls and engines sharing one Weights
// are no-ops — and is guarded by a mutex so concurrent engine construction
// is safe.
func (w *Weights) ensurePacked(k Kernel) {
	w.packMu.Lock()
	defer w.packMu.Unlock()
	pack := func(l *Linear) {
		if l.W == nil {
			return
		}
		switch k {
		case KernelTileBF16, KernelTileBF16Parallel:
			if l.pbf16 == nil {
				l.pbf16 = kernels.PackBBF16(l.In, l.Out, l.W)
			}
		case KernelBlocked, KernelParallel:
			if l.pf32 == nil {
				l.pf32 = kernels.PackB(l.In, l.Out, l.W)
			}
		case KernelLUT:
			if l.plut == nil && l.Q != nil {
				// The codebooks quantize the dequantized INT8 shadow, so
				// the LUT tier sits on the INT8 path's numerics rather
				// than introducing a third weight representation.
				deq := make([]float32, l.In*l.Out)
				for i, q := range l.Q {
					deq[i] = float32(q) * l.QScale
				}
				l.plut = kernels.PackLUT(l.In, l.Out, deq)
			}
		}
	}
	for i := range w.Layers {
		lw := &w.Layers[i]
		for _, l := range []*Linear{&lw.Wq, &lw.Wk, &lw.Wv, &lw.Wo, &lw.W1, &lw.WGate, &lw.W2} {
			pack(l)
		}
	}
	if k != KernelLUT {
		// The logits head stays exact on the LUT tier: argmax over ~vocab
		// logits is the one place bounded error flips discrete outputs.
		pack(&w.LMHead)
	}
	if w.Config.Family == model.OPT && w.tiedHead == nil {
		// The tied head is computed in FP32 by every kernel tier
		// (GemmTransB previously), so its pack is always FP32.
		w.tiedHead = kernels.PackBTrans(w.Config.DModel, w.Config.Vocab, w.TokenEmb)
	}
}

// NewWeights initializes deterministic random weights at the scale typical
// of trained transformers (N(0, 0.02)), optionally rounding to BF16 so the
// stored values match what an AMX pipeline would hold.
func NewWeights(cfg model.Config, seed int64, dt tensor.DType) (*Weights, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	d, kv, dff := cfg.DModel, cfg.KVDim(), cfg.DFF
	hasBias := cfg.Family == model.OPT

	randSlice := func(n int, scale float64) []float32 {
		s := make([]float32, n)
		for i := range s {
			v := float32(rng.NormFloat64() * scale)
			if dt == tensor.BF16 {
				v = tensor.RoundBF16(v)
			}
			s[i] = v
		}
		return s
	}
	ones := func(n int) []float32 {
		s := make([]float32, n)
		for i := range s {
			s[i] = 1
		}
		return s
	}
	lin := func(in, out int) Linear {
		l := Linear{In: in, Out: out, W: randSlice(in*out, 0.02/math.Sqrt(float64(in)/128))}
		if hasBias {
			l.Bias = make([]float32, out) // zero biases, still exercised
		}
		return l
	}

	w := &Weights{
		Config:        cfg,
		TokenEmb:      randSlice(cfg.Vocab*d, 0.02),
		FinalNormGain: ones(d),
		Layers:        make([]LayerWeights, cfg.Layers),
	}
	if cfg.Family == model.OPT {
		w.PosEmb = randSlice(cfg.MaxSeq*d, 0.02)
		w.FinalNormBias = make([]float32, d)
	} else {
		w.LMHead = lin(d, cfg.Vocab)
	}
	for i := range w.Layers {
		lw := &w.Layers[i]
		lw.AttnNormGain, lw.FFNNormGain = ones(d), ones(d)
		if hasBias {
			lw.AttnNormBias = make([]float32, d)
			lw.FFNNormBias = make([]float32, d)
		}
		lw.Wq, lw.Wk, lw.Wv = lin(d, d), lin(d, kv), lin(d, kv)
		lw.Wo = lin(d, d)
		lw.W1, lw.W2 = lin(d, dff), lin(dff, d)
		if cfg.Family == model.LLaMA2 {
			lw.WGate = lin(d, dff)
		}
	}
	return w, nil
}

// QuantizeAll populates INT8 shadows on every linear layer.
func (w *Weights) QuantizeAll() {
	for i := range w.Layers {
		lw := &w.Layers[i]
		for _, l := range []*Linear{&lw.Wq, &lw.Wk, &lw.Wv, &lw.Wo, &lw.W1, &lw.W2} {
			l.Quantize()
		}
		if lw.WGate.W != nil {
			lw.WGate.Quantize()
		}
	}
	if w.LMHead.W != nil {
		w.LMHead.Quantize()
	}
}
