package experiments

import (
	"fmt"

	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/stats"
)

// Fig8 reproduces the end-to-end ICL-vs-SPR comparison: per model and
// batch size, SPR's E2E latency normalized to ICL (a) and its throughput
// speedup (b).
func Fig8() ([]Table, error) {
	lat := Table{ID: "Fig 8a", Title: "E2E latency, SPR normalized to ICL (lower is better)",
		Columns: batchColumns("model")}
	thr := Table{ID: "Fig 8b", Title: "E2E throughput speedup, SPR over ICL",
		Columns: batchColumns("model")}
	for _, m := range model.Evaluated() {
		latRow, thrRow := []string{m.Name}, []string{m.Name}
		for _, b := range PaperBatches {
			spr, err := CPUPoint(SPRSetup(), m, b, DefaultIn, DefaultOut)
			if err != nil {
				return nil, err
			}
			icl, err := CPUPoint(ICLSetup(), m, b, DefaultIn, DefaultOut)
			if err != nil {
				return nil, err
			}
			latRow = append(latRow, f2(spr.Latency.E2E/icl.Latency.E2E))
			thrRow = append(thrRow, f2(spr.Throughput.E2E/icl.Throughput.E2E))
		}
		lat.Rows = append(lat.Rows, latRow)
		thr.Rows = append(thr.Rows, thrRow)
	}
	return []Table{lat, thr}, nil
}

// Fig9 reproduces the phase-latency comparison: SPR's TTFT and TPOT
// normalized to ICL per model and batch.
func Fig9() ([]Table, error) {
	pre := Table{ID: "Fig 9a", Title: "Prefill latency (TTFT), SPR normalized to ICL",
		Columns: batchColumns("model")}
	dec := Table{ID: "Fig 9b", Title: "Decode latency (TPOT), SPR normalized to ICL",
		Columns: batchColumns("model")}
	err := forEachPair(func(m model.Config, b int, spr, icl metrics.Result) {
		appendCell(&pre, m.Name, f2(spr.Latency.TTFT/icl.Latency.TTFT))
		appendCell(&dec, m.Name, f2(spr.Latency.TPOT/icl.Latency.TPOT))
	})
	if err != nil {
		return nil, err
	}
	return []Table{pre, dec}, nil
}

// Fig10 reproduces the phase-throughput comparison: SPR's prefill and
// decode tokens/s speedup over ICL.
func Fig10() ([]Table, error) {
	pre := Table{ID: "Fig 10a", Title: "Prefill throughput speedup, SPR over ICL",
		Columns: batchColumns("model")}
	dec := Table{ID: "Fig 10b", Title: "Decode throughput speedup, SPR over ICL",
		Columns: batchColumns("model")}
	err := forEachPair(func(m model.Config, b int, spr, icl metrics.Result) {
		appendCell(&pre, m.Name, f2(spr.Throughput.Prefill/icl.Throughput.Prefill))
		appendCell(&dec, m.Name, f2(spr.Throughput.Decode/icl.Throughput.Decode))
	})
	if err != nil {
		return nil, err
	}
	return []Table{pre, dec}, nil
}

// countersByBatch renders the Fig 11/12 counter trends for one model on
// the SPR CPU: LLC MPKI, core utilization, and load/store counts
// normalized to batch 1.
func countersByBatch(id string, m model.Config) (Table, error) {
	t := Table{ID: id,
		Title:   fmt.Sprintf("HW counters for %s on SPR vs batch size (loads/stores normalized to batch 1)", m.Name),
		Columns: []string{"batch", "LLC MPKI", "core util", "loads (norm)", "stores (norm)"},
	}
	var base metrics.Result
	for i, b := range PaperBatches {
		res, err := CPUPoint(SPRSetup(), m, b, DefaultIn, DefaultOut)
		if err != nil {
			return Table{}, err
		}
		if i == 0 {
			base = res
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", b),
			f1(res.Counters.LLCMPKI),
			f2(res.Counters.CoreUtilization),
			f2(res.Counters.Loads / base.Counters.Loads),
			f2(res.Counters.Stores / base.Counters.Stores),
		})
	}
	return t, nil
}

// Fig11 renders the LLaMA2-13B counter trends.
func Fig11() ([]Table, error) {
	t, err := countersByBatch("Fig 11", model.Llama13B)
	if err != nil {
		return nil, err
	}
	return []Table{t}, nil
}

// Fig12 renders the OPT-66B counter trends.
func Fig12() ([]Table, error) {
	t, err := countersByBatch("Fig 12", model.OPT66B)
	if err != nil {
		return nil, err
	}
	return []Table{t}, nil
}

// numaConfigs are the four SPR memory/clustering combinations of Fig 13.
func numaConfigs() []memsim.Config {
	var cfgs []memsim.Config
	for _, cl := range []memsim.ClusterMode{memsim.Quad, memsim.SNC4} {
		for _, mem := range []memsim.MemMode{memsim.Cache, memsim.Flat} {
			c := SPRSetup()
			c.Mem, c.Cluster = mem, cl
			cfgs = append(cfgs, c)
		}
	}
	return cfgs
}

// aggregate runs every evaluated model × paper batch under setup and
// returns the mean of each metric extractor.
func aggregate(setup memsim.Config, extract map[string]func(metrics.Result) float64) (map[string]float64, error) {
	sums := map[string][]float64{}
	for _, m := range model.Evaluated() {
		for _, b := range PaperBatches {
			res, err := CPUPoint(setup, m, b, DefaultIn, DefaultOut)
			if err != nil {
				return nil, err
			}
			for name, f := range extract {
				sums[name] = append(sums[name], f(res))
			}
		}
	}
	out := map[string]float64{}
	for name, vals := range sums {
		out[name] = stats.Mean(vals)
	}
	return out, nil
}

var latThptMetrics = map[string]func(metrics.Result) float64{
	"E2E latency":  func(r metrics.Result) float64 { return r.Latency.E2E },
	"TTFT":         func(r metrics.Result) float64 { return r.Latency.TTFT },
	"TPOT":         func(r metrics.Result) float64 { return r.Latency.TPOT },
	"prefill thpt": func(r metrics.Result) float64 { return r.Throughput.Prefill },
	"decode thpt":  func(r metrics.Result) float64 { return r.Throughput.Decode },
	"E2E thpt":     func(r metrics.Result) float64 { return r.Throughput.E2E },
}

var metricOrder = []string{"E2E latency", "TTFT", "TPOT", "prefill thpt", "decode thpt", "E2E thpt"}

// Fig13 reproduces the NUMA-configuration comparison: each latency and
// throughput metric averaged across all models and batches, normalized to
// the quad_cache configuration.
func Fig13() ([]Table, error) {
	t := Table{ID: "Fig 13",
		Title:   "SPR server configurations, metrics normalized to quad_cache (mean over models and batches)",
		Columns: append([]string{"config"}, metricOrder...),
	}
	var base map[string]float64
	for i, cfg := range numaConfigs() {
		agg, err := aggregate(cfg, latThptMetrics)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			base = agg
		}
		row := []string{cfg.Name()}
		for _, name := range metricOrder {
			row = append(row, f2(agg[name]/base[name]))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// Fig14Cores is the core-count sweep of Fig 14.
var Fig14Cores = []int{12, 24, 48, 96}

// Fig14 reproduces the core-count comparison: metrics averaged across all
// models and batches, normalized to 12 cores.
func Fig14() ([]Table, error) {
	t := Table{ID: "Fig 14",
		Title:   "Core-count sweep on SPR quad_flat, metrics normalized to 12 cores (mean over models and batches)",
		Columns: append([]string{"cores"}, metricOrder...),
	}
	var base map[string]float64
	for i, cores := range Fig14Cores {
		cfg := SPRSetup()
		cfg.Cores = cores
		agg, err := aggregate(cfg, latThptMetrics)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			base = agg
		}
		row := []string{fmt.Sprintf("%d", cores)}
		for _, name := range metricOrder {
			row = append(row, f2(agg[name]/base[name]))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// Fig15 reproduces the per-configuration counters for LLaMA2-13B at batch
// 8: LLC MPKI, core utilization, and remote LLC accesses (normalized to
// quad_cache).
func Fig15() ([]Table, error) {
	t := Table{ID: "Fig 15",
		Title:   "HW counters for LLaMA2-13B (batch 8) across SPR configurations",
		Columns: []string{"config", "LLC MPKI", "core util", "remote LLC misses (M)"},
	}
	for _, cfg := range numaConfigs() {
		res, err := CPUPoint(cfg, model.Llama13B, 8, DefaultIn, DefaultOut)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			cfg.Name(), f1(res.Counters.LLCMPKI),
			f2(res.Counters.CoreUtilization),
			f1(res.Counters.RemoteLLCAccess / 1e6),
		})
	}
	return []Table{t}, nil
}

// Fig16 reproduces the per-core-count counters for LLaMA2-7B at batch 8:
// LLC MPKI, core utilization, and UPI utilization.
func Fig16() ([]Table, error) {
	t := Table{ID: "Fig 16",
		Title:   "HW counters for LLaMA2-7B (batch 8) as core count increases",
		Columns: []string{"cores", "LLC MPKI", "physical core util", "UPI util"},
	}
	for _, cores := range Fig14Cores {
		cfg := SPRSetup()
		cfg.Cores = cores
		res, err := CPUPoint(cfg, model.Llama7B, 8, DefaultIn, DefaultOut)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", cores), f1(res.Counters.LLCMPKI),
			f2(res.Counters.PhysicalCoreUtil), f2(res.Counters.UPIUtilization),
		})
	}
	return []Table{t}, nil
}

// batchColumns builds the standard "<first>, b=1..32" header.
func batchColumns(first string) []string {
	cols := []string{first}
	for _, b := range PaperBatches {
		cols = append(cols, fmt.Sprintf("b=%d", b))
	}
	return cols
}

// forEachPair runs every evaluated model × batch on SPR and ICL.
func forEachPair(visit func(m model.Config, b int, spr, icl metrics.Result)) error {
	for _, m := range model.Evaluated() {
		for _, b := range PaperBatches {
			spr, err := CPUPoint(SPRSetup(), m, b, DefaultIn, DefaultOut)
			if err != nil {
				return err
			}
			icl, err := CPUPoint(ICLSetup(), m, b, DefaultIn, DefaultOut)
			if err != nil {
				return err
			}
			visit(m, b, spr, icl)
		}
	}
	return nil
}

// appendCell appends a value to the row labeled `label`, creating it on
// first use (rows fill left to right across the batch sweep).
func appendCell(t *Table, label, cell string) {
	for i := range t.Rows {
		if t.Rows[i][0] == label {
			t.Rows[i] = append(t.Rows[i], cell)
			return
		}
	}
	t.Rows = append(t.Rows, []string{label, cell})
}
