// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a named constructor that runs the
// simulator (and, where relevant, the functional engine) over the paper's
// workload grid and renders the same rows/series the paper reports.
//
// The per-experiment index lives in DESIGN.md; paper-vs-measured values
// are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/offload"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// Table is a rendered experiment result: an ID (matching the paper's
// numbering), a caption, column headers, and formatted rows.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// Markdown formats the table as a GitHub-flavored Markdown table.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	b.WriteString("|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Render formats the table as aligned plain text.
func (t Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Standard configurations used across the evaluation (§IV-B): the SPR CPU
// at its best configuration (48 cores, quad_flat) and the ICL CPU on one
// 32-core socket.
func SPRSetup() memsim.Config {
	return memsim.Config{CPU: hw.SPRMax9468, Cores: 48, Mem: memsim.Flat, Cluster: memsim.Quad}
}

// ICLSetup returns the IceLake baseline configuration.
func ICLSetup() memsim.Config {
	return memsim.Config{CPU: hw.ICL8352Y, Cores: 32, Mem: memsim.DDROnly, Cluster: memsim.Quad}
}

// PaperBatches are the batch sizes of the paper's sweeps.
var PaperBatches = []int{1, 2, 4, 8, 16, 32}

// DefaultIn and DefaultOut are the paper's workload shape.
const (
	DefaultIn  = 128
	DefaultOut = 32
)

// CPUPoint simulates one CPU point with the standard workload shape.
func CPUPoint(setup memsim.Config, m model.Config, batch, in, out int) (metrics.Result, error) {
	return perfmodel.CPURun{
		Model: m, Setup: setup, Batch: batch,
		InputLen: in, OutputLen: out, Weights: tensor.BF16,
	}.Simulate()
}

// GPUPoint simulates one GPU point, choosing resident execution when the
// model fits and FlexGen-style offloading when it does not — exactly the
// paper's §V methodology.
func GPUPoint(g hw.GPU, m model.Config, batch, in, out int) (metrics.Result, error) {
	resident := perfmodel.GPURun{GPU: g, Model: m, Batch: batch,
		InputLen: in, OutputLen: out, Weights: tensor.BF16}
	if resident.Fits() {
		return resident.Simulate()
	}
	return offload.Run{GPU: g, Host: hw.SPRMax9468, Model: m, Batch: batch,
		InputLen: in, OutputLen: out, Weights: tensor.BF16}.Simulate()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }

// TableI renders the CPU server table.
func TableI() Table {
	row := func(c hw.CPU, compute string) []string {
		hbm := "-"
		if c.HBM.CapacityGB > 0 {
			hbm = fmt.Sprintf("%s %.0fGB @ %.0f GB/s", c.HBM.Name, c.HBM.CapacityGB*float64(c.Sockets), c.HBM.BandwidthGBs)
		}
		return []string{
			c.Name, c.Gen, fmt.Sprintf("%.2f GHz", c.FreqGHz),
			compute,
			fmt.Sprintf("%d / %d", c.CoresPerSocket, c.Sockets),
			fmt.Sprintf("%.0fKB / %.2gMB", c.L1DKB, c.L2MB),
			fmt.Sprintf("%.0f MB", c.L3MB),
			fmt.Sprintf("%s %.0fGB @ %.1f GB/s", c.DDR.Name, c.DDR.CapacityGB*float64(c.Sockets), c.DDR.BandwidthGBs),
			hbm,
		}
	}
	return Table{
		ID: "Table I", Title: "Evaluation setup for CPU servers",
		Columns: []string{"CPU", "Gen", "Freq", "BF16 TFLOPS", "Cores/Sockets",
			"L1D/L2 per core", "L3", "DDR (STREAM)", "HBM (STREAM)"},
		Rows: [][]string{
			row(hw.ICL8352Y, "18.0 (AVX-512)"),
			row(hw.SPRMax9468, "25.6 (AVX-512) / 206.4 (AMX)"),
		},
	}
}

// TableII renders the GPU server table.
func TableII() Table {
	row := func(g hw.GPU) []string {
		return []string{
			g.Name, fmt.Sprintf("%d", g.SMs), f0(g.PeakTFLOPS),
			fmt.Sprintf("%.0fKB / %.0fMB", g.L1KB, g.L2MB),
			fmt.Sprintf("%.0f GB", g.MemGB),
			fmt.Sprintf("%.1f GB/s", g.BandwidthGBs),
			fmt.Sprintf("%s, %.0f GB/s", g.PCIe.Name, g.PCIe.TheoreticalGBs),
		}
	}
	return Table{
		ID: "Table II", Title: "Evaluation setup for GPU servers",
		Columns: []string{"GPU", "SMs", "BF16 TFLOPS", "L1/L2", "Memory",
			"Mem BW (STREAM)", "CPU-GPU interconnect"},
		Rows: [][]string{row(hw.A100), row(hw.H100)},
	}
}
