package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func cell(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[row][col], "%"), 64)
	if err != nil {
		t.Fatalf("%s[%d][%d] = %q not numeric", tab.ID, row, col, tab.Rows[row][col])
	}
	return v
}

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		tabs, err := e.Run()
		if err != nil {
			t.Errorf("%s: %v", e.Key, err)
			continue
		}
		if len(tabs) == 0 {
			t.Errorf("%s: no tables", e.Key)
			continue
		}
		for _, tab := range tabs {
			if len(tab.Rows) == 0 || len(tab.Columns) == 0 {
				t.Errorf("%s/%s: empty table", e.Key, tab.ID)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Errorf("%s/%s: row width %d != %d columns: %v",
						e.Key, tab.ID, len(row), len(tab.Columns), row)
				}
			}
			if !strings.Contains(tab.Render(), tab.ID) {
				t.Errorf("%s: Render missing ID", e.Key)
			}
		}
	}
}

func TestByKey(t *testing.T) {
	e, err := ByKey("fig18")
	if err != nil || e.Key != "fig18" {
		t.Fatalf("ByKey(fig18) = %v, %v", e.Key, err)
	}
	if _, err := ByKey("fig99"); err == nil {
		t.Error("unknown key must error")
	}
}

func TestRegistryCoversEvaluation(t *testing.T) {
	want := []string{"table1", "table2", "fig1", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18", "fig19", "fig20", "fig21"}
	have := map[string]bool{}
	for _, e := range All() {
		have[e.Key] = true
	}
	for _, k := range want {
		if !have[k] {
			t.Errorf("registry missing paper experiment %s", k)
		}
	}
}

// TestFig1Shape: SPR AMX must sit far above ICL and below the GPUs at
// large dimensions, the ordering Fig 1 shows.
func TestFig1Shape(t *testing.T) {
	tab := Fig1()
	last := len(tab.Rows) - 1 // dim 8192
	icl, spr := cell(t, tab, last, 1), cell(t, tab, last, 2)
	a100, h100 := cell(t, tab, last, 3), cell(t, tab, last, 4)
	if !(icl < spr && spr < a100 && a100 < h100) {
		t.Errorf("Fig1 ordering broken at 8192: icl=%v spr=%v a100=%v h100=%v",
			icl, spr, a100, h100)
	}
	if spr/icl < 4 {
		t.Errorf("SPR AMX advantage over ICL only %.1fx at 8192", spr/icl)
	}
	// At the smallest dim the AMX advantage must shrink.
	icl0, spr0 := cell(t, tab, 0, 1), cell(t, tab, 0, 2)
	if spr0/icl0 >= spr/icl {
		t.Error("AMX advantage should grow with matrix dimension")
	}
}

// TestFig6Shape: footprints grow with size; LLaMA2-70B must not fit H100.
func TestFig6Shape(t *testing.T) {
	tab := Fig6()
	for _, row := range tab.Rows {
		if row[0] == "LLaMA2-70B" && row[4] != "false" {
			t.Error("LLaMA2-70B must not fit an H100")
		}
		if row[0] == "OPT-13B" && row[4] != "true" {
			t.Error("OPT-13B must fit an H100")
		}
	}
}

// TestFig7Shape: KV cache must eventually exceed the model size at large
// batch × sequence (the paper's headline memory observation).
func TestFig7Shape(t *testing.T) {
	tab := Fig7()
	lastRow := tab.Rows[len(tab.Rows)-1] // seq 32768
	if lastRow[len(lastRow)-1] == "-" {
		t.Error("KV cache never exceeded the model size at seq 32768")
	}
	// Linearity: batch 32 column = 32 × batch 1 column (use the seq-2048
	// row where two-decimal rounding is negligible).
	b1 := cell(t, tab, 3, 1)
	b32 := cell(t, tab, 3, 4)
	if b32/b1 < 31.8 || b32/b1 > 32.2 {
		t.Errorf("KV batch scaling = %.2f, want 32", b32/b1)
	}
}

// TestFig8Shape: every normalized SPR latency must be < 1 (SPR always
// wins) and within the paper's 0.16–0.32 envelope on average.
func TestFig8Shape(t *testing.T) {
	tabs, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	lat := tabs[0]
	var sum float64
	var n int
	for r := range lat.Rows {
		for c := 1; c < len(lat.Rows[r]); c++ {
			v := cell(t, lat, r, c)
			if v >= 1 {
				t.Errorf("SPR slower than ICL at %v: %v", lat.Rows[r][0], v)
			}
			sum += v
			n++
		}
	}
	mean := sum / float64(n)
	if mean < 0.13 || mean > 0.35 {
		t.Errorf("mean normalized SPR latency = %.2f, paper band 0.16–0.32", mean)
	}
}

// TestFig9Fig10Shape: phase tables must show SPR winning both phases, with
// the prefill advantage exceeding the decode advantage at large batch
// (AMX helps compute-bound prefill more than HBM helps decode).
func TestFig9Fig10Shape(t *testing.T) {
	tabs9, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tabs9 {
		for r := range tab.Rows {
			for c := 1; c < len(tab.Rows[r]); c++ {
				if v := cell(t, tab, r, c); v >= 1 {
					t.Errorf("%s %s: SPR slower than ICL (%v)", tab.ID, tab.Rows[r][0], v)
				}
			}
		}
	}
	tabs10, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	pre, dec := tabs10[0], tabs10[1]
	lastCol := len(pre.Columns) - 1
	for r := range pre.Rows {
		p := cell(t, pre, r, lastCol)
		d := cell(t, dec, r, lastCol)
		if p <= d {
			t.Errorf("%s: batch-32 prefill speedup %.1f not above decode %.1f",
				pre.Rows[r][0], p, d)
		}
	}
}

// TestMarkdownRendering: tables must render as valid GitHub Markdown.
func TestMarkdownRendering(t *testing.T) {
	md := TableII().Markdown()
	for _, want := range []string{"### Table II", "| GPU |", "|---|", "| H100-80GB |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	// Pipe escaping.
	tab := Table{ID: "x", Title: "t", Columns: []string{"a"}, Rows: [][]string{{"p|q"}}}
	if !strings.Contains(tab.Markdown(), `p\|q`) {
		t.Error("pipes must be escaped")
	}
}

// TestFig13Shape: quad_flat must be the best configuration on E2E latency
// and E2E throughput (Key Finding #2).
func TestFig13Shape(t *testing.T) {
	tabs, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	bestLat, bestThr := "", ""
	var minLat, maxThr float64
	for r, row := range tab.Rows {
		lat := cell(t, tab, r, 1)
		thr := cell(t, tab, r, len(row)-1)
		if bestLat == "" || lat < minLat {
			bestLat, minLat = row[0], lat
		}
		if bestThr == "" || thr > maxThr {
			bestThr, maxThr = row[0], thr
		}
	}
	if bestLat != "quad_flat" || bestThr != "quad_flat" {
		t.Errorf("best config = %s (lat) / %s (thr), paper says quad_flat", bestLat, bestThr)
	}
}

// TestFig14Shape: 48 cores must be the best E2E latency; 96 must regress
// (Key Finding #3). The paper reports ~0.40 normalized latency at 48.
func TestFig14Shape(t *testing.T) {
	tabs, err := Fig14()
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	byCores := map[string]float64{}
	for r, row := range tab.Rows {
		byCores[row[0]] = cell(t, tab, r, 1)
	}
	if !(byCores["48"] < byCores["24"] && byCores["24"] < byCores["12"]) {
		t.Errorf("latency must fall to 48 cores: %v", byCores)
	}
	if byCores["96"] <= byCores["48"] {
		t.Errorf("96 cores must regress: %v", byCores)
	}
	if byCores["48"] < 0.28 || byCores["48"] > 0.55 {
		t.Errorf("48-core normalized latency = %.2f, paper ≈0.40", byCores["48"])
	}
}

// TestFig17Shape reads Key Finding #4 off the table: GPUs win for models
// that fit, the CPU wins for offloaded models.
func TestFig17Shape(t *testing.T) {
	tabs, err := Fig17()
	if err != nil {
		t.Fatal(err)
	}
	lat := tabs[0]
	for r, row := range lat.Rows {
		h100 := cell(t, lat, r, 3)
		switch row[0] {
		case "OPT-1.3B", "OPT-6.7B", "LLaMA2-7B", "OPT-13B", "LLaMA2-13B":
			if h100 >= 1 {
				t.Errorf("%s: H100 must beat CPU (got %.2f)", row[0], h100)
			}
		case "OPT-66B", "LLaMA2-70B":
			if h100 <= 1 {
				t.Errorf("%s: CPU must beat offloading H100 (got %.2f)", row[0], h100)
			}
		}
		if row[0] == "OPT-30B" {
			a100 := cell(t, lat, r, 2)
			if a100 <= 1 {
				t.Errorf("OPT-30B: CPU must beat offloading A100 (got %.2f)", a100)
			}
			if row[5] != "resident" {
				t.Error("OPT-30B must run resident on H100")
			}
		}
	}
}

// TestFig18Shape: PCIe share must decrease monotonically with batch for
// both configurations.
func TestFig18Shape(t *testing.T) {
	tabs, err := Fig18()
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	for _, col := range []int{1, 3} {
		prev := 101.0
		for r := range tab.Rows {
			v := cell(t, tab, r, col)
			if v > prev {
				t.Errorf("col %d: PCIe share rose from %.0f to %.0f at batch %s",
					col, prev, v, tab.Rows[r][0])
			}
			prev = v
		}
	}
}

// TestFig20Fig21Shape: batch-1 sweep — CPU must stay best for LLaMA2-70B
// at every length; batch-16 — H100 must take over at some length ≥ 256
// while A100 never wins.
func TestFig20Fig21Shape(t *testing.T) {
	tabs, err := Fig20()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tabs[0].Rows {
		if row[0] == "LLaMA2-70B" && row[len(row)-1] != "CPU" {
			t.Errorf("Fig20: LLaMA2-70B at input %s won by %s, paper says CPU",
				row[1], row[len(row)-1])
		}
	}
	tabs, err = Fig21()
	if err != nil {
		t.Fatal(err)
	}
	h100Wins := false
	for _, row := range tabs[0].Rows {
		if row[0] != "LLaMA2-70B" {
			continue
		}
		if row[len(row)-1] == "H100" {
			h100Wins = true
		}
		if row[len(row)-1] == "A100" {
			t.Errorf("Fig21: A100 won LLaMA2-70B at input %s", row[1])
		}
	}
	if !h100Wins {
		t.Error("Fig21: H100 never overtakes CPU on LLaMA2-70B")
	}
}

// TestOptPagedShape: the paged-KV gain must grow as actual lengths shrink
// below the reservation, with negligible internal waste.
func TestOptPagedShape(t *testing.T) {
	tabs, err := OptPaged()
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	prev := 0.0
	for r := range tab.Rows {
		gain := cell(t, tab, r, 3)
		if gain < prev {
			t.Errorf("paged gain must grow as sequences shorten: row %d", r)
		}
		prev = gain
	}
	if prev < 8 {
		t.Errorf("gain at 256 tokens = %.1f, want ≥ 8", prev)
	}
}

// TestServePoliciesShape: at the highest load, continuous ≥ static ≥ FCFS
// on throughput, and continuous must slash mean TTFT.
func TestServePoliciesShape(t *testing.T) {
	tabs, err := ServePolicies()
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	byPolicy := map[string][]float64{} // policy -> [ttft, thpt] at last load
	n := len(tab.Rows)
	for r := n - 3; r < n; r++ {
		byPolicy[tab.Rows[r][1]] = []float64{cell(t, tab, r, 2), cell(t, tab, r, 4)}
	}
	if byPolicy["continuous"][1] < byPolicy["static"][1] ||
		byPolicy["static"][1] < byPolicy["fcfs"][1] {
		t.Errorf("throughput ordering broken: %v", byPolicy)
	}
	if byPolicy["continuous"][0] >= byPolicy["static"][0] {
		t.Errorf("continuous TTFT %.2f must beat static %.2f",
			byPolicy["continuous"][0], byPolicy["static"][0])
	}
}

// TestGH200Shape: the §V-B discussion point — NVLink offloading must beat
// PCIe offloading by a wide margin and be at least competitive with the
// CPU on latency, while the CPU keeps the per-dollar edge (the "~4× cost"
// caveat).
func TestGH200Shape(t *testing.T) {
	tabs, err := GH200Exp()
	if err != nil {
		t.Fatal(err)
	}
	for r, row := range tabs[0].Rows {
		cpu := cell(t, tabs[0], r, 1)
		h100 := cell(t, tabs[0], r, 2)
		gh := cell(t, tabs[0], r, 3)
		if gh > h100/3 {
			t.Errorf("%s: GH200 (%.1fs) should crush PCIe offloading (%.1fs)", row[0], gh, h100)
		}
		if gh > cpu*1.1 {
			t.Errorf("%s: GH200 (%.1fs) should be at least CPU-competitive (%.1fs)", row[0], gh, cpu)
		}
		if cell(t, tabs[0], r, 4) <= cell(t, tabs[0], r, 5) {
			t.Errorf("%s: CPU must keep the per-dollar edge", row[0])
		}
	}
}

// TestEconShape: the paper's economic argument read off the table — the
// cheap A100 wins per-dollar on models it fits; the SPR CPU wins
// per-dollar on models that force GPU offloading.
func TestEconShape(t *testing.T) {
	tabs, err := Econ()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tabs[0].Rows {
		switch row[0] {
		case "OPT-13B":
			if row[4] != "A100" {
				t.Errorf("OPT-13B best value = %s, want A100", row[4])
			}
		case "OPT-66B", "LLaMA2-70B":
			if row[4] != "SPR" {
				t.Errorf("%s best value = %s, want SPR", row[0], row[4])
			}
		}
	}
}

// TestOptAblations: both §VI optimizations must show a benefit.
func TestOptAblations(t *testing.T) {
	tabs, err := OptNUMA()
	if err != nil {
		t.Fatal(err)
	}
	if sp := cell(t, tabs[0], 1, 3); sp <= 1 {
		t.Errorf("NUMA placement speedup = %.2f, want > 1", sp)
	}
	tabs, err = OptHybrid()
	if err != nil {
		t.Fatal(err)
	}
	for r := range tabs[0].Rows {
		if sp := cell(t, tabs[0], r, 5); sp <= 1 {
			t.Errorf("hybrid vs offload speedup = %.2f, want > 1", sp)
		}
	}
	tabs, err = OptInt8()
	if err != nil {
		t.Fatal(err)
	}
	for r := range tabs[0].Rows {
		if sp := cell(t, tabs[0], r, 5); sp < 1.3 {
			t.Errorf("int8 speedup = %.2f, want ≳1.5 (half the weight bytes)", sp)
		}
	}
}
