package experiments

import (
	"fmt"

	"repro/internal/econ"
	"repro/internal/hw"
	"repro/internal/kvpool"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/offload"
	"repro/internal/perfmodel"
	"repro/internal/serve"
	"repro/internal/specdec"
	"repro/internal/tensor"
	"repro/internal/tp"
	"repro/internal/workload"
)

// OptPaged renders the paged-KV-cache ablation: concurrent sequences
// admitted under a fixed KV budget with contiguous max-length reservation
// versus vLLM-style paged allocation, as actual sequence lengths shrink
// relative to the reservation (the Fig 7 memory-pressure scenario).
func OptPaged() ([]Table, error) {
	cfg := model.Llama13B
	const maxLen = 4096
	budget := cfg.KVCacheBytes(maxLen, 8, tensor.BF16) // room for 8 worst-case seqs
	t := Table{ID: "Opt 4 (ext)",
		Title: fmt.Sprintf("Paged vs contiguous KV allocation, %s, budget %.0f GiB (8 max-length reservations)",
			cfg.Name, float64(budget)/(1<<30)),
		Columns: []string{"actual seq len", "contiguous seqs", "paged seqs", "gain", "paged waste"},
	}
	contiguous := kvpool.MaxContiguousSequences(cfg, tensor.BF16, budget, maxLen)
	for _, actual := range []int{4096, 2048, 1024, 512, 256} {
		p, err := kvpool.New(cfg, tensor.BF16, 16, budget)
		if err != nil {
			return nil, err
		}
		admitted, wasted := 0, 0
		for {
			s := p.NewSequence()
			if err := s.Append(actual); err != nil {
				break
			}
			admitted++
			wasted += s.WastedSlots()
		}
		waste := "0.0%"
		if admitted > 0 {
			waste = fmt.Sprintf("%.1f%%", float64(wasted)/float64(admitted*actual)*100)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", actual),
			fmt.Sprintf("%d", contiguous),
			fmt.Sprintf("%d", admitted),
			f1(float64(admitted) / float64(contiguous)),
			waste,
		})
	}
	return []Table{t}, nil
}

// OptTP renders the tensor-parallel two-socket ablation: E2E latency of
// one socket, both sockets NUMA-naively (the paper's regressing 96-core
// case), and Megatron-style TP-2 with per-socket weight shards.
func OptTP() ([]Table, error) {
	t := Table{ID: "Opt 5 (ext)",
		Title:   "Two-socket execution strategies on SPR (batch 1, in=128, out=32)",
		Columns: []string{"model", "1 socket E2E (s)", "naive 96c E2E (s)", "TP-2 E2E (s)", "TP-2 vs 1 socket", "TP-2 vs naive"},
	}
	for _, m := range []model.Config{model.OPT13B, model.OPT30B, model.OPT66B, model.Llama70B} {
		run := tp.Run{CPU: hw.SPRMax9468, Ways: 2, Mem: memsim.Flat,
			Cluster: memsim.Quad, Model: m, Batch: 1,
			InputLen: DefaultIn, OutputLen: DefaultOut, Weights: tensor.BF16}
		tp2, err := run.Simulate()
		if err != nil {
			return nil, err
		}
		one, naive, err := run.Baselines()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			m.Name, f2(one.Latency.E2E), f2(naive.Latency.E2E), f2(tp2.Latency.E2E),
			f2(one.Latency.E2E / tp2.Latency.E2E),
			f2(naive.Latency.E2E / tp2.Latency.E2E),
		})
	}
	return []Table{t}, nil
}

// OptSpec renders the speculative-decoding ablation (related work [37]):
// expected TPOT speedup on the SPR CPU with an OPT-1.3B draft for OPT-13B
// and OPT-30B targets across acceptance rates and lookahead depths.
func OptSpec() ([]Table, error) {
	t := Table{ID: "Opt 6 (ext)",
		Title:   "Speculative decoding on SPR quad_flat (draft OPT-1.3B, batch 1)",
		Columns: []string{"target", "acceptance", "lookahead", "baseline TPOT (ms)", "spec TPOT (ms)", "speedup", "tokens/pass"},
	}
	for _, target := range []model.Config{model.OPT13B, model.OPT30B} {
		for _, alpha := range []float64{0.6, 0.8} {
			for _, k := range []int{2, 4, 8} {
				run := specdec.Run{Target: target, Draft: model.OPT1B3,
					Setup: SPRSetup(), Batch: 1,
					InputLen: DefaultIn, OutputLen: DefaultOut,
					Lookahead: k, Acceptance: alpha}
				res, err := run.Simulate()
				if err != nil {
					return nil, err
				}
				t.Rows = append(t.Rows, []string{
					target.Name, f2(alpha), fmt.Sprintf("%d", k),
					f1(res.BaselineTPOT * 1e3), f1(res.SpecTPOT * 1e3),
					f2(res.Speedup), f2(res.TokensPerPass),
				})
			}
		}
	}
	return []Table{t}, nil
}

// Sensitivity renders parameter elasticities (%Δmetric per %Δparameter)
// for a memory-bound point (batch 1) and a compute-leaning one (batch 8):
// the quantitative version of the paper's phase characterization.
func Sensitivity() ([]Table, error) {
	t := Table{ID: "Sensitivity (ext)",
		Title:   "Hardware-parameter elasticities for LLaMA2-13B on SPR quad_flat (+10% perturbation)",
		Columns: []string{"parameter", "TTFT b=1", "TPOT b=1", "TTFT b=8", "TPOT b=8"},
	}
	run := func(batch int) ([]perfmodel.Elasticity, error) {
		return perfmodel.CPURun{Model: model.Llama13B, Setup: SPRSetup(),
			Batch: batch, InputLen: DefaultIn, OutputLen: DefaultOut,
			Weights: tensor.BF16}.Sensitivities(0.1)
	}
	b1, err := run(1)
	if err != nil {
		return nil, err
	}
	b8, err := run(8)
	if err != nil {
		return nil, err
	}
	by8 := map[string]perfmodel.Elasticity{}
	for _, e := range b8 {
		by8[e.Parameter] = e
	}
	for _, e := range b1 {
		o := by8[e.Parameter]
		t.Rows = append(t.Rows, []string{
			e.Parameter, f2(e.TTFT), f2(e.TPOT), f2(o.TTFT), f2(o.TPOT),
		})
	}
	return []Table{t}, nil
}

// Pareto renders the latency–throughput frontier the serving literature
// (Sarathi-Serve, §VII) frames: for each platform, the batch sweep traces
// TTFT against tokens/s; points marked pareto are not dominated on either
// axis.
func Pareto() ([]Table, error) {
	m := model.Llama13B
	t := Table{ID: "Pareto (ext)",
		Title:   "TTFT vs throughput frontier for LLaMA2-13B (batch 1–32, in=128, out=32)",
		Columns: []string{"platform", "batch", "TTFT (ms)", "tokens/s", "pareto"},
	}
	type point struct {
		platform   string
		batch      int
		ttft, thpt float64
	}
	var pts []point
	for _, b := range PaperBatches {
		cpu, err := CPUPoint(SPRSetup(), m, b, DefaultIn, DefaultOut)
		if err != nil {
			return nil, err
		}
		pts = append(pts, point{"SPR", b, cpu.Latency.TTFT * 1e3, cpu.Throughput.E2E})
		gpu, err := GPUPoint(hw.H100, m, b, DefaultIn, DefaultOut)
		if err != nil {
			return nil, err
		}
		pts = append(pts, point{"H100", b, gpu.Latency.TTFT * 1e3, gpu.Throughput.E2E})
	}
	dominated := func(p point) bool {
		for _, q := range pts {
			if q.ttft <= p.ttft && q.thpt >= p.thpt &&
				(q.ttft < p.ttft || q.thpt > p.thpt) {
				return true
			}
		}
		return false
	}
	for _, p := range pts {
		mark := ""
		if !dominated(p) {
			mark = "*"
		}
		t.Rows = append(t.Rows, []string{
			p.platform, fmt.Sprintf("%d", p.batch), f1(p.ttft), f1(p.thpt), mark,
		})
	}
	return []Table{t}, nil
}

// GH200 renders the §V-B Grace-Hopper discussion point: for oversized
// models, NVLink-C2C (450 GB/s per direction vs PCIe 5.0's 64 GB/s spec)
// makes offloading fast enough to beat the SPR CPU outright — "albeit at
// a cost of ~4× of the SPR CPU", which the per-dollar column quantifies.
func GH200Exp() ([]Table, error) {
	t := Table{ID: "GH200 (§V-B)",
		Title:   "Grace-Hopper offloading vs PCIe offloading vs the SPR CPU (batch 1, in=128, out=32)",
		Columns: []string{"model", "SPR E2E (s)", "H100+PCIe E2E (s)", "GH200+NVLink E2E (s)", "SPR tok/s/k$", "GH200 tok/s/k$"},
	}
	for _, m := range []model.Config{model.OPT66B, model.Llama70B} {
		cpu, err := CPUPoint(SPRSetup(), m, 1, DefaultIn, DefaultOut)
		if err != nil {
			return nil, err
		}
		h, err := GPUPoint(hw.H100, m, 1, DefaultIn, DefaultOut)
		if err != nil {
			return nil, err
		}
		gh, err := GPUPoint(hw.GH200, m, 1, DefaultIn, DefaultOut)
		if err != nil {
			return nil, err
		}
		ce, err := econ.Evaluate(cpu, econ.PriceSPRMax9468)
		if err != nil {
			return nil, err
		}
		ge, err := econ.Evaluate(gh, econ.PriceGH200)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			m.Name, f2(cpu.Latency.E2E), f2(h.Latency.E2E), f2(gh.Latency.E2E),
			f2(ce.TokensPerSecondPerKUSD), f2(ge.TokensPerSecondPerKUSD),
		})
	}
	return []Table{t}, nil
}

// OffloadCompress renders the 4-bit-compression ablation: offloaded E2E
// latency with and without FlexGen's group-wise weight compression,
// against the CPU. Compression quarters PCIe traffic and can flip
// large-model offloading back ahead of the CPU — the likely explanation
// for Fig 21's early crossover (see EXPERIMENTS.md).
func OffloadCompress() ([]Table, error) {
	t := Table{ID: "Compress (ext)",
		Title:   "FlexGen 4-bit weight compression under offloading (in=128, out=32)",
		Columns: []string{"config", "batch", "CPU E2E (s)", "offload E2E (s)", "offload+4bit E2E (s)", "winner"},
	}
	for _, c := range []struct {
		g hw.GPU
		m model.Config
		b int
	}{
		{hw.A100, model.OPT30B, 1},
		{hw.H100, model.OPT66B, 1},
		{hw.H100, model.Llama70B, 16},
	} {
		cpu, err := CPUPoint(SPRSetup(), c.m, c.b, DefaultIn, DefaultOut)
		if err != nil {
			return nil, err
		}
		plain, err := offload.Run{GPU: c.g, Host: hw.SPRMax9468, Model: c.m,
			Batch: c.b, InputLen: DefaultIn, OutputLen: DefaultOut,
			Weights: tensor.BF16}.Simulate()
		if err != nil {
			return nil, err
		}
		comp, err := offload.Run{GPU: c.g, Host: hw.SPRMax9468, Model: c.m,
			Batch: c.b, InputLen: DefaultIn, OutputLen: DefaultOut,
			Weights: tensor.BF16, Compress4Bit: true}.Simulate()
		if err != nil {
			return nil, err
		}
		winner := "CPU"
		if comp.Latency.E2E < cpu.Latency.E2E {
			winner = c.g.Name + "+4bit"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s/%s", c.g.Name, c.m.Name), fmt.Sprintf("%d", c.b),
			f2(cpu.Latency.E2E), f2(plain.Latency.E2E), f2(comp.Latency.E2E),
			winner,
		})
	}
	return []Table{t}, nil
}

// ServeMemory renders the memory-aware serving ablation: continuous
// batching for LLaMA2-13B on the SPR CPU under shrinking KV budgets (the
// HBM left after weights, then fractions of it). Admission control by the
// paged allocator turns the Fig 7 capacity pressure into queueing delay.
func ServeMemory() ([]Table, error) {
	m := model.Llama13B
	t := Table{ID: "Serving-mem (ext)",
		Title:   "Memory-aware continuous batching, LLaMA2-13B on SPR (32 requests, in≈512, out≈64)",
		Columns: []string{"KV budget (GiB)", "tokens/s", "mean queue wait (s)", "p95 E2E (s)"},
	}
	cost := serve.NewCPUCost(SPRSetup(), m)
	gen := workload.NewGenerator(23)
	gen.ArrivalRate = 4
	gen.MeanInputLen, gen.MeanOutputLen = 512, 64
	trace := gen.Trace(32)
	// Full budget: the HBM left after BF16 weights (64 − 26 GB).
	fullGiB := 38.0
	for _, frac := range []float64{1, 0.25, 0.08} {
		budget := int64(fullGiB * frac * (1 << 30))
		pool, err := kvpool.New(m, tensor.BF16, 16, budget)
		if err != nil {
			return nil, err
		}
		srv := serve.MemoryAwareServer{Cost: cost, Pool: pool, MaxBatch: 16}
		cs, err := srv.Run(trace)
		if err != nil {
			return nil, err
		}
		sm := serve.Summarize(cs)
		t.Rows = append(t.Rows, []string{
			f1(fullGiB * frac), f1(sm.TokensPerSecond),
			f2(sm.MeanQueueWait), f2(sm.P95E2E),
		})
	}
	return []Table{t}, nil
}

// Econ renders the cost-efficiency analysis behind the paper's footnote 1
// ("the Max 9468 is 3× cheaper than an H100"): tokens/s per thousand
// dollars of processor listing price, per model at batch 16.
func Econ() ([]Table, error) {
	t := Table{ID: "Econ (ext)",
		Title:   "Throughput per processor-k$ (batch 16, in=128, out=32; listing-price proxy as in footnote 1)",
		Columns: []string{"model", "SPR tok/s/k$", "A100 tok/s/k$", "H100 tok/s/k$", "best value"},
	}
	for _, m := range model.Evaluated() {
		cpu, err := CPUPoint(SPRSetup(), m, 16, DefaultIn, DefaultOut)
		if err != nil {
			return nil, err
		}
		ce, err := econ.Evaluate(cpu, econ.PriceSPRMax9468)
		if err != nil {
			return nil, err
		}
		a, err := GPUPoint(hw.A100, m, 16, DefaultIn, DefaultOut)
		if err != nil {
			return nil, err
		}
		ae, err := econ.Evaluate(a, econ.PriceA100)
		if err != nil {
			return nil, err
		}
		h, err := GPUPoint(hw.H100, m, 16, DefaultIn, DefaultOut)
		if err != nil {
			return nil, err
		}
		he, err := econ.Evaluate(h, econ.PriceH100)
		if err != nil {
			return nil, err
		}
		best := "SPR"
		bestV := ce.TokensPerSecondPerKUSD
		if ae.TokensPerSecondPerKUSD > bestV {
			best, bestV = "A100", ae.TokensPerSecondPerKUSD
		}
		if he.TokensPerSecondPerKUSD > bestV {
			best = "H100"
		}
		t.Rows = append(t.Rows, []string{
			m.Name, f1(ce.TokensPerSecondPerKUSD),
			f1(ae.TokensPerSecondPerKUSD), f1(he.TokensPerSecondPerKUSD), best,
		})
	}
	return []Table{t}, nil
}

// ServePolicies renders the serving-policy comparison: batching
// disciplines on the SPR CPU under three load levels.
func ServePolicies() ([]Table, error) {
	t := Table{ID: "Serving (ext)",
		Title:   "Batching policies on SPR quad_flat, LLaMA2-13B, 48 heterogeneous requests",
		Columns: []string{"load (req/s)", "policy", "mean TTFT (s)", "p95 E2E (s)", "tokens/s"},
	}
	cost := serve.NewCPUCost(SPRSetup(), model.Llama13B)
	for _, rate := range []float64{0.5, 2, 8} {
		gen := workload.NewGenerator(17)
		gen.ArrivalRate = rate
		gen.LenJitter = 0.8
		trace := gen.Trace(48)
		for _, pol := range []serve.Policy{serve.FCFS, serve.Static, serve.Continuous} {
			srv := serve.Server{Cost: cost, Policy: pol, MaxBatch: 8, BatchWait: 0.25}
			cs, err := srv.Run(trace)
			if err != nil {
				return nil, err
			}
			sm := serve.Summarize(cs)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.1f", rate), pol.String(),
				f2(sm.MeanTTFT), f2(sm.P95E2E), f1(sm.TokensPerSecond),
			})
		}
	}
	return []Table{t}, nil
}
