package experiments

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/tensor"
)

// Fig1Dims is the matrix-dimension sweep of Fig 1.
var Fig1Dims = []int64{256, 512, 1024, 2048, 4096, 8192}

// Fig1 reproduces the GEMM-throughput comparison of Fig 1: achievable
// TFLOPS on square M×N×K GEMMs for the ICL CPU (AVX-512), the SPR Max CPU
// (AMX), and the A100/H100 tensor cores.
func Fig1() Table {
	t := Table{
		ID:    "Fig 1",
		Title: "GEMM throughput (TFLOPS) across matrix dimensions",
		Columns: []string{"dim", "ICL 8352Y (AVX-512)", "SPR Max 9468 (AMX)",
			"A100", "H100"},
	}
	paths := []hw.ComputePath{
		hw.ICL8352Y.AVX512, hw.SPRMax9468.AMX, hw.A100.Compute, hw.H100.Compute,
	}
	for _, d := range Fig1Dims {
		row := []string{fmt.Sprintf("%d", d)}
		for _, p := range paths {
			row = append(row, f1(p.EffectiveFLOPS(d, d, d)/1e12))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig6Models is the model list of Fig 6.
var Fig6Models = []model.Config{
	model.OPT1B3, model.OPT6B7, model.Llama7B, model.OPT13B, model.Llama13B,
	model.OPT30B, model.OPT66B, model.Llama70B, model.OPT175B,
}

// Fig6 reproduces the FP16 weight-footprint chart of Fig 6, annotating
// which GPUs each model fits into.
func Fig6() Table {
	t := Table{
		ID:      "Fig 6",
		Title:   "Memory footprint of model parameters (FP16)",
		Columns: []string{"model", "params (B)", "FP16 GB", "fits A100-40G", "fits H100-80G"},
	}
	for _, m := range Fig6Models {
		gb := float64(m.WeightBytes(tensor.FP16)) / 1e9
		t.Rows = append(t.Rows, []string{
			m.Name,
			f1(float64(m.ParamCount()) / 1e9),
			f1(gb),
			fmt.Sprintf("%v", hw.A100.FitsWeights(gb)),
			fmt.Sprintf("%v", hw.H100.FitsWeights(gb)),
		})
	}
	return t
}

// Fig7SeqLens and Fig7Batches are the sweep of Fig 7.
var (
	Fig7SeqLens = []int{128, 512, 1024, 2048, 4096, 8192, 16384, 32768}
	Fig7Batches = []int{1, 8, 16, 32}
)

// Fig7 reproduces the KV-cache footprint chart of Fig 7 for LLaMA2-13B:
// GiB of KV cache per (sequence length, batch size), with the model's own
// footprint as the reference line.
func Fig7() Table {
	m := model.Llama13B
	t := Table{
		ID: "Fig 7",
		Title: fmt.Sprintf("KV-cache footprint (GiB) for %s; model weights = %.1f GiB",
			m.Name, float64(m.WeightBytes(tensor.FP16))/(1<<30)),
		Columns: []string{"seq len", "batch 1", "batch 8", "batch 16", "batch 32",
			"exceeds model @"},
	}
	modelGiB := float64(m.WeightBytes(tensor.FP16)) / (1 << 30)
	for _, s := range Fig7SeqLens {
		row := []string{fmt.Sprintf("%d", s)}
		exceeds := "-"
		for _, b := range Fig7Batches {
			gib := float64(m.KVCacheBytes(s, b, tensor.FP16)) / (1 << 30)
			row = append(row, f2(gib))
			if exceeds == "-" && gib > modelGiB {
				exceeds = fmt.Sprintf("batch %d", b)
			}
		}
		row = append(row, exceeds)
		t.Rows = append(t.Rows, row)
	}
	return t
}
