package experiments

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/offload"
	"repro/internal/tensor"
)

// cpuVsGPUs renders the Fig 17/19 comparison at one batch size: per
// model, A100 and H100 latency and throughput normalized to the SPR CPU,
// with offloading engaged automatically for models beyond GPU memory.
func cpuVsGPUs(id string, batch int) ([]Table, error) {
	lat := Table{ID: id + "a",
		Title:   fmt.Sprintf("E2E latency normalized to SPR CPU, batch=%d (<1 means GPU faster)", batch),
		Columns: []string{"model", "CPU (s)", "A100", "H100", "A100 mode", "H100 mode"},
	}
	thr := Table{ID: id + "b",
		Title:   fmt.Sprintf("Throughput normalized to SPR CPU, batch=%d (>1 means GPU faster)", batch),
		Columns: []string{"model", "CPU (tok/s)", "A100", "H100"},
	}
	for _, m := range model.Evaluated() {
		cpu, err := CPUPoint(SPRSetup(), m, batch, DefaultIn, DefaultOut)
		if err != nil {
			return nil, err
		}
		a, err := GPUPoint(hw.A100, m, batch, DefaultIn, DefaultOut)
		if err != nil {
			return nil, err
		}
		h, err := GPUPoint(hw.H100, m, batch, DefaultIn, DefaultOut)
		if err != nil {
			return nil, err
		}
		mode := func(g hw.GPU) string {
			if g.FitsWeights(float64(m.WeightBytes(tensor.BF16)) / 1e9) {
				return "resident"
			}
			return "offload"
		}
		lat.Rows = append(lat.Rows, []string{
			m.Name, f2(cpu.Latency.E2E),
			f2(a.Latency.E2E / cpu.Latency.E2E),
			f2(h.Latency.E2E / cpu.Latency.E2E),
			mode(hw.A100), mode(hw.H100),
		})
		thr.Rows = append(thr.Rows, []string{
			m.Name, f1(cpu.Throughput.E2E),
			f2(a.Throughput.E2E / cpu.Throughput.E2E),
			f2(h.Throughput.E2E / cpu.Throughput.E2E),
		})
	}
	return []Table{lat, thr}, nil
}

// Fig17 reproduces the batch-1 CPU-vs-GPU comparison.
func Fig17() ([]Table, error) { return cpuVsGPUs("Fig 17", 1) }

// Fig19 reproduces the batch-16 CPU-vs-GPU comparison.
func Fig19() ([]Table, error) { return cpuVsGPUs("Fig 19", 16) }

// Fig18 reproduces the offloading execution-time breakdown: the share of
// time spent loading data over PCIe for OPT-30B on the A100 and OPT-66B
// on the H100, batch 1–32.
func Fig18() ([]Table, error) {
	t := Table{ID: "Fig 18",
		Title:   "GPU execution-time breakdown under offloading (% of E2E)",
		Columns: []string{"batch", "A100/OPT-30B PCIe", "A100/OPT-30B compute", "H100/OPT-66B PCIe", "H100/OPT-66B compute"},
	}
	for _, b := range PaperBatches {
		row := []string{fmt.Sprintf("%d", b)}
		for _, c := range []struct {
			g hw.GPU
			m model.Config
		}{{hw.A100, model.OPT30B}, {hw.H100, model.OPT66B}} {
			res, err := offload.Run{GPU: c.g, Host: hw.SPRMax9468, Model: c.m,
				Batch: b, InputLen: DefaultIn, OutputLen: DefaultOut,
				Weights: tensor.BF16}.Simulate()
			if err != nil {
				return nil, err
			}
			pcie := res.PCIeFraction() * 100
			row = append(row, f0(pcie)+"%", f0(100-pcie)+"%")
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// SeqLens is the §V-C input-length sweep.
var SeqLens = []int{128, 256, 512, 1024}

// seqLenSweep renders Fig 20/21: E2E latency and throughput for every
// model across input lengths at one batch size, on all three platforms.
func seqLenSweep(id string, batch int) ([]Table, error) {
	t := Table{ID: id,
		Title:   fmt.Sprintf("Sequence-length sensitivity, batch=%d, output=32", batch),
		Columns: []string{"model", "input", "CPU E2E (s)", "A100 E2E (s)", "H100 E2E (s)", "CPU tok/s", "best"},
	}
	for _, m := range model.Evaluated() {
		for _, in := range SeqLens {
			cpu, err := CPUPoint(SPRSetup(), m, batch, in, DefaultOut)
			if err != nil {
				return nil, err
			}
			a, err := GPUPoint(hw.A100, m, batch, in, DefaultOut)
			if err != nil {
				return nil, err
			}
			h, err := GPUPoint(hw.H100, m, batch, in, DefaultOut)
			if err != nil {
				return nil, err
			}
			best := "CPU"
			bestLat := cpu.Latency.E2E
			if a.Latency.E2E < bestLat {
				best, bestLat = "A100", a.Latency.E2E
			}
			if h.Latency.E2E < bestLat {
				best = "H100"
			}
			t.Rows = append(t.Rows, []string{
				m.Name, fmt.Sprintf("%d", in),
				f2(cpu.Latency.E2E), f2(a.Latency.E2E), f2(h.Latency.E2E),
				f1(cpu.Throughput.E2E), best,
			})
		}
	}
	return []Table{t}, nil
}

// Fig20 reproduces the batch-1 sequence-length sweep.
func Fig20() ([]Table, error) { return seqLenSweep("Fig 20", 1) }

// Fig21 reproduces the batch-16 sequence-length sweep.
func Fig21() ([]Table, error) { return seqLenSweep("Fig 21", 16) }
