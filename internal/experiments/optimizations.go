package experiments

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/hybrid"
	"repro/internal/model"
	"repro/internal/numa"
	"repro/internal/offload"
	"repro/internal/tensor"
)

// OptNUMA renders the §VI "NUMA-aware designs" ablation: effective memory
// bandwidth and remote-traffic fraction of hot/cold placement versus
// NUMA-oblivious interleaving for an OPT-66B-scale working set that
// exceeds one socket's local memory.
func OptNUMA() ([]Table, error) {
	topo := numa.SPRTopology(hw.SPRMax9468)
	items := []numa.Item{
		{Name: "kv-cache", SizeGB: 22, Heat: 8},
		{Name: "attn-weights", SizeGB: 44, Heat: 6},
		{Name: "ffn-weights-hot", SizeGB: 60, Heat: 4},
		{Name: "ffn-weights-cold", SizeGB: 28, Heat: 1},
		{Name: "activations-cold", SizeGB: 180, Heat: 0.3},
	}
	t := Table{ID: "Opt 1 (§VI)",
		Title:   "NUMA-aware hot/cold placement vs oblivious interleaving (OPT-66B-scale working set)",
		Columns: []string{"policy", "effective GB/s", "remote traffic", "speedup"},
	}
	smart, err := numa.PlaceHotCold(items, topo)
	if err != nil {
		return nil, err
	}
	naive, err := numa.PlaceOblivious(items, topo)
	if err != nil {
		return nil, err
	}
	bwSmart, err := numa.EffectiveBandwidth(items, smart, topo)
	if err != nil {
		return nil, err
	}
	bwNaive, err := numa.EffectiveBandwidth(items, naive, topo)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		[]string{"oblivious interleave", f0(bwNaive),
			fmt.Sprintf("%.0f%%", numa.RemoteTrafficFraction(items, naive, topo)*100), "1.00"},
		[]string{"hot/cold placement", f0(bwSmart),
			fmt.Sprintf("%.0f%%", numa.RemoteTrafficFraction(items, smart, topo)*100),
			f2(bwSmart / bwNaive)},
	)
	return []Table{t}, nil
}

// OptHybrid renders the §VI "CPU-GPU hybrid execution" ablation: E2E
// latency of pure offloading, pure CPU, and the best layer partition for
// the two oversized-model configurations, batch 1.
func OptHybrid() ([]Table, error) {
	t := Table{ID: "Opt 2 (§VI)",
		Title:   "CPU-GPU hybrid layer partitioning vs offloading and pure CPU (batch 1, in=128, out=32)",
		Columns: []string{"config", "offload E2E (s)", "CPU E2E (s)", "hybrid E2E (s)", "GPU layers", "hybrid vs offload", "hybrid vs CPU"},
	}
	for _, c := range []struct {
		g hw.GPU
		m model.Config
	}{{hw.A100, model.OPT30B}, {hw.H100, model.OPT66B}} {
		run := hybrid.Run{GPU: c.g, Host: SPRSetup(), Model: c.m, Batch: 1,
			InputLen: DefaultIn, OutputLen: DefaultOut, Weights: tensor.BF16}
		split, best, err := run.BestSplit()
		if err != nil {
			return nil, err
		}
		cpu, err := run.CPUOnly()
		if err != nil {
			return nil, err
		}
		off, err := offload.Run{GPU: c.g, Host: hw.SPRMax9468, Model: c.m,
			Batch: 1, InputLen: DefaultIn, OutputLen: DefaultOut,
			Weights: tensor.BF16}.Simulate()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s/%s", c.g.Name, c.m.Name),
			f2(off.Latency.E2E), f2(cpu.Latency.E2E), f2(best.Latency.E2E),
			fmt.Sprintf("%d/%d", split.GPULayers, c.m.Layers),
			f2(off.Latency.E2E / best.Latency.E2E),
			f2(cpu.Latency.E2E / best.Latency.E2E),
		})
	}
	return []Table{t}, nil
}

// OptInt8 renders the INT8 (AMX INT8 path) ablation: simulated SPR
// latency/throughput with BF16 versus INT8 weights, which halve the
// streamed bytes of the memory-bound decode phase.
func OptInt8() ([]Table, error) {
	t := Table{ID: "Opt 3 (ext)",
		Title:   "Weight-only INT8 on SPR quad_flat (batch 1, in=128, out=32)",
		Columns: []string{"model", "BF16 TPOT (ms)", "INT8 TPOT (ms)", "BF16 tok/s", "INT8 tok/s", "speedup"},
	}
	for _, m := range []model.Config{model.OPT13B, model.OPT30B, model.OPT66B, model.Llama70B} {
		bf, err := CPUPoint(SPRSetup(), m, 1, DefaultIn, DefaultOut)
		if err != nil {
			return nil, err
		}
		i8run := SPRSetup()
		res, err := CPUPointWithWeights(i8run, m, 1, DefaultIn, DefaultOut, tensor.INT8)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			m.Name,
			f1(bf.Latency.TPOT * 1e3), f1(res.Latency.TPOT * 1e3),
			f2(bf.Throughput.E2E), f2(res.Throughput.E2E),
			f2(res.Throughput.E2E / bf.Throughput.E2E),
		})
	}
	return []Table{t}, nil
}
