package experiments

import (
	"fmt"
	"sort"

	"repro/internal/hw"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// CPUPointWithWeights is CPUPoint with an explicit weight dtype (used by
// the quantization ablation).
func CPUPointWithWeights(setup memsim.Config, m model.Config, batch, in, out int, dt tensor.DType) (metrics.Result, error) {
	return perfmodel.CPURun{
		Model: m, Setup: setup, Batch: batch,
		InputLen: in, OutputLen: out, Weights: dt,
	}.Simulate()
}

// Experiment is a runnable reproduction of one paper table/figure (or a
// §VI optimization ablation).
type Experiment struct {
	Key   string // CLI key, e.g. "fig18"
	Title string
	Run   func() ([]Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	wrap1 := func(f func() Table) func() ([]Table, error) {
		return func() ([]Table, error) { return []Table{f()}, nil }
	}
	return []Experiment{
		{"table1", "CPU server setup", wrap1(TableI)},
		{"table2", "GPU server setup", wrap1(TableII)},
		{"fig1", "GEMM throughput across platforms", wrap1(Fig1)},
		{"fig6", "Model weight footprints", wrap1(Fig6)},
		{"fig7", "KV-cache footprints (LLaMA2-13B)", wrap1(Fig7)},
		{"fig8", "E2E latency/throughput: ICL vs SPR", Fig8},
		{"fig9", "Phase latency: ICL vs SPR", Fig9},
		{"fig10", "Phase throughput: ICL vs SPR", Fig10},
		{"fig11", "Counters vs batch: LLaMA2-13B", Fig11},
		{"fig12", "Counters vs batch: OPT-66B", Fig12},
		{"fig13", "NUMA memory/clustering modes", Fig13},
		{"fig14", "Core-count sweep", Fig14},
		{"fig15", "Counters per NUMA config", Fig15},
		{"fig16", "Counters per core count", Fig16},
		{"fig17", "CPU vs GPUs, batch 1", Fig17},
		{"fig18", "Offloading time breakdown", Fig18},
		{"fig19", "CPU vs GPUs, batch 16", Fig19},
		{"fig20", "Sequence-length sweep, batch 1", Fig20},
		{"fig21", "Sequence-length sweep, batch 16", Fig21},
		{"opt-numa", "§VI NUMA-aware placement ablation", OptNUMA},
		{"opt-hybrid", "§VI CPU-GPU hybrid execution ablation", OptHybrid},
		{"opt-int8", "INT8 weight quantization ablation", OptInt8},
		{"opt-paged", "Paged KV-cache allocation ablation", OptPaged},
		{"opt-tp", "Tensor-parallel two-socket ablation", OptTP},
		{"opt-spec", "Speculative-decoding ablation", OptSpec},
		{"serve-policies", "Serving batching-policy comparison", ServePolicies},
		{"gh200", "Grace-Hopper NVLink offloading (§V-B)", GH200Exp},
		{"pareto", "TTFT vs throughput frontier", Pareto},
		{"sensitivity", "Hardware-parameter elasticities", Sensitivity},
		{"offload-compress", "4-bit compression under offloading", OffloadCompress},
		{"serve-memory", "Memory-aware serving under KV budgets", ServeMemory},
		{"econ", "Cost-efficiency analysis (footnote 1)", Econ},
	}
}

// ByKey returns the experiment with the given key.
func ByKey(key string) (Experiment, error) {
	for _, e := range All() {
		if e.Key == key {
			return e, nil
		}
	}
	keys := make([]string, 0, len(All()))
	for _, e := range All() {
		keys = append(keys, e.Key)
	}
	sort.Strings(keys)
	return Experiment{}, fmt.Errorf("experiments: unknown key %q (have %v)", key, keys)
}

// GPUs returns the evaluated GPU presets in Table II order.
func GPUs() []hw.GPU { return []hw.GPU{hw.A100, hw.H100} }
