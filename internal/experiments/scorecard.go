package experiments

import (
	"fmt"

	"repro/internal/metrics"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/offload"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Claim is one quantitative statement from the paper together with the
// code that measures it on the simulator.
type Claim struct {
	ID        string
	Source    string // figure/table/section
	Statement string // the paper's claim
	Paper     string // the paper's number(s)
	// Measure returns the measured value and whether it reproduces the
	// claim (within the tolerance stated in EXPERIMENTS.md).
	Measure func() (measured string, pass bool, err error)
}

// Scorecard returns every tracked claim in paper order.
func Scorecard() []Claim {
	return []Claim{
		{
			ID: "mem-opt175b", Source: "§III / Fig 6",
			Statement: "OPT-175B needs ~350 GB in FP16",
			Paper:     "350 GB",
			Measure: func() (string, bool, error) {
				gb := float64(model.OPT175B.WeightBytes(tensor.FP16)) / 1e9
				return fmt.Sprintf("%.0f GB", gb), gb > 330 && gb < 370, nil
			},
		},
		{
			ID: "mem-kv288", Source: "§I / §II-B",
			Statement: "OPT-66B KV cache at seq 4096, batch 32 is 288 GB",
			Paper:     "288 GB",
			Measure: func() (string, bool, error) {
				gib := float64(model.OPT66B.KVCacheBytes(4096, 32, tensor.BF16)) / (1 << 30)
				return fmt.Sprintf("%.0f GiB", gib), gib > 280 && gib < 296, nil
			},
		},
		{
			ID: "kf1-e2e", Source: "Fig 8 / KF#1",
			Statement: "SPR cuts E2E latency 68.4–84.1% vs ICL (mean over models × batches)",
			Paper:     "−68.4…−84.1%",
			Measure: func() (string, bool, error) {
				r, err := meanSPRICLRatio(func(spr, icl float64) float64 { return spr / icl })
				if err != nil {
					return "", false, err
				}
				red := (1 - r) * 100
				return fmt.Sprintf("−%.1f%%", red), red > 55 && red < 87, nil
			},
		},
		{
			ID: "kf1-thpt", Source: "Fig 8 / KF#1",
			Statement: "SPR throughput 3.2–6.3× over ICL",
			Paper:     "3.2–6.3×",
			Measure: func() (string, bool, error) {
				var ratios []float64
				err := forEachPair(func(m model.Config, b int, spr, icl metrics.Result) {
					ratios = append(ratios, spr.Throughput.E2E/icl.Throughput.E2E)
				})
				if err != nil {
					return "", false, err
				}
				g, _ := stats.GeoMean(ratios)
				return fmt.Sprintf("geomean %.1f× (max %.1f×)", g, stats.Max(ratios)),
					g > 2.8 && stats.Max(ratios) < 7, nil
			},
		},
		{
			ID: "kf2-quadflat", Source: "Fig 13 / KF#2",
			Statement: "quad_flat is the best SPR configuration",
			Paper:     "quad_flat best",
			Measure: func() (string, bool, error) {
				tabs, err := Fig13()
				if err != nil {
					return "", false, err
				}
				best, bestV := "", 0.0
				for _, row := range tabs[0].Rows {
					v := parseF(row[1])
					if best == "" || v < bestV {
						best, bestV = row[0], v
					}
				}
				return best, best == "quad_flat", nil
			},
		},
		{
			ID: "kf3-cores", Source: "Fig 14 / KF#3",
			Statement: "48 cores cut E2E latency ~59.8% vs 12; 96 cores regress",
			Paper:     "−59.8% @48",
			Measure: func() (string, bool, error) {
				tabs, err := Fig14()
				if err != nil {
					return "", false, err
				}
				vals := map[string]float64{}
				for _, row := range tabs[0].Rows {
					vals[row[0]] = parseF(row[1])
				}
				red := (1 - vals["48"]) * 100
				ok := red > 45 && red < 72 && vals["96"] > vals["48"]
				return fmt.Sprintf("−%.1f%% @48, 96c at %.2f", red, vals["96"]), ok, nil
			},
		},
		{
			ID: "counters-trend", Source: "Figs 11/12",
			Statement: "LLC MPKI falls and core utilization rises with batch size",
			Paper:     "monotone trends",
			Measure: func() (string, bool, error) {
				r1, err := CPUPoint(SPRSetup(), model.Llama13B, 1, DefaultIn, DefaultOut)
				if err != nil {
					return "", false, err
				}
				r32, err := CPUPoint(SPRSetup(), model.Llama13B, 32, DefaultIn, DefaultOut)
				if err != nil {
					return "", false, err
				}
				ok := r32.Counters.LLCMPKI < r1.Counters.LLCMPKI &&
					r32.Counters.CoreUtilization > r1.Counters.CoreUtilization
				return fmt.Sprintf("MPKI %.0f→%.0f, util %.2f→%.2f",
					r1.Counters.LLCMPKI, r32.Counters.LLCMPKI,
					r1.Counters.CoreUtilization, r32.Counters.CoreUtilization), ok, nil
			},
		},
		{
			ID: "kf4-h100-opt13b", Source: "Fig 17 / KF#4",
			Statement: "H100 cuts OPT-13B batch-1 E2E latency 72.8% vs the CPU",
			Paper:     "−72.8%",
			Measure: func() (string, bool, error) {
				cpu, err := CPUPoint(SPRSetup(), model.OPT13B, 1, DefaultIn, DefaultOut)
				if err != nil {
					return "", false, err
				}
				gpu, err := GPUPoint(hw.H100, model.OPT13B, 1, DefaultIn, DefaultOut)
				if err != nil {
					return "", false, err
				}
				red := (1 - gpu.Latency.E2E/cpu.Latency.E2E) * 100
				return fmt.Sprintf("−%.1f%%", red), red > 60 && red < 82, nil
			},
		},
		{
			ID: "kf4-a100-opt30b", Source: "Fig 17 / KF#4",
			Statement: "CPU beats the offloading A100 on OPT-30B by 12.7× throughput",
			Paper:     "12.7×",
			Measure: func() (string, bool, error) {
				cpu, err := CPUPoint(SPRSetup(), model.OPT30B, 1, DefaultIn, DefaultOut)
				if err != nil {
					return "", false, err
				}
				gpu, err := GPUPoint(hw.A100, model.OPT30B, 1, DefaultIn, DefaultOut)
				if err != nil {
					return "", false, err
				}
				x := cpu.Throughput.E2E / gpu.Throughput.E2E
				return fmt.Sprintf("%.1f×", x), x > 9 && x < 16, nil
			},
		},
		{
			ID: "kf4-h100-opt66b", Source: "Fig 17 / KF#4",
			Statement: "CPU beats the offloading H100 on OPT-66B by 5× throughput",
			Paper:     "5×",
			Measure: func() (string, bool, error) {
				cpu, err := CPUPoint(SPRSetup(), model.OPT66B, 1, DefaultIn, DefaultOut)
				if err != nil {
					return "", false, err
				}
				gpu, err := GPUPoint(hw.H100, model.OPT66B, 1, DefaultIn, DefaultOut)
				if err != nil {
					return "", false, err
				}
				x := cpu.Throughput.E2E / gpu.Throughput.E2E
				return fmt.Sprintf("%.1f×", x), x > 3.5 && x < 6.5, nil
			},
		},
		{
			ID: "fig18-band", Source: "Fig 18",
			Statement: "PCIe data loading takes 67–95% (A100) / 59–92% (H100) of offloaded execution, falling with batch",
			Paper:     "95→67% / 92→59%",
			Measure: func() (string, bool, error) {
				f := func(g hw.GPU, m model.Config, b int) (float64, error) {
					res, err := offload.Run{GPU: g, Host: hw.SPRMax9468, Model: m,
						Batch: b, InputLen: DefaultIn, OutputLen: DefaultOut,
						Weights: tensor.BF16}.Simulate()
					return res.PCIeFraction() * 100, err
				}
				a1, err := f(hw.A100, model.OPT30B, 1)
				if err != nil {
					return "", false, err
				}
				a32, _ := f(hw.A100, model.OPT30B, 32)
				h1, _ := f(hw.H100, model.OPT66B, 1)
				h32, _ := f(hw.H100, model.OPT66B, 32)
				ok := a1 > 85 && a32 < a1 && h1 > 85 && h32 < h1 && a32 > 20 && h32 > 20
				return fmt.Sprintf("%.0f→%.0f%% / %.0f→%.0f%%", a1, a32, h1, h32), ok, nil
			},
		},
		{
			ID: "kf5-fig20", Source: "Fig 20 / KF#5",
			Statement: "at batch 1 the CPU wins LLaMA2-70B at every input length",
			Paper:     "CPU wins all lengths",
			Measure: func() (string, bool, error) {
				wins := 0
				for _, in := range SeqLens {
					cpu, err := CPUPoint(SPRSetup(), model.Llama70B, 1, in, DefaultOut)
					if err != nil {
						return "", false, err
					}
					gpu, err := GPUPoint(hw.H100, model.Llama70B, 1, in, DefaultOut)
					if err != nil {
						return "", false, err
					}
					if cpu.Latency.E2E < gpu.Latency.E2E {
						wins++
					}
				}
				return fmt.Sprintf("CPU wins %d/%d lengths", wins, len(SeqLens)),
					wins == len(SeqLens), nil
			},
		},
		{
			ID: "kf5-fig21", Source: "Fig 21 / KF#5",
			Statement: "at batch 16 the offloading H100 overtakes the CPU on LLaMA2-70B at long inputs; the A100 never does",
			Paper:     "crossover ≥256 (ours lands at 1024); A100 never",
			Measure: func() (string, bool, error) {
				h100Win, a100Win := -1, false
				for _, in := range SeqLens {
					cpu, err := CPUPoint(SPRSetup(), model.Llama70B, 16, in, DefaultOut)
					if err != nil {
						return "", false, err
					}
					h, err := GPUPoint(hw.H100, model.Llama70B, 16, in, DefaultOut)
					if err != nil {
						return "", false, err
					}
					a, err := GPUPoint(hw.A100, model.Llama70B, 16, in, DefaultOut)
					if err != nil {
						return "", false, err
					}
					if h.Latency.E2E < cpu.Latency.E2E && h100Win < 0 {
						h100Win = in
					}
					if a.Latency.E2E < cpu.Latency.E2E {
						a100Win = true
					}
				}
				ok := h100Win >= 256 && !a100Win
				return fmt.Sprintf("H100 crossover at %d; A100 wins: %v", h100Win, a100Win), ok, nil
			},
		},
	}
}

// RunScorecard evaluates every claim and renders the result table.
func RunScorecard() (Table, error) {
	t := Table{ID: "Scorecard",
		Title:   "Reproduction scorecard: paper claims vs this repository",
		Columns: []string{"claim", "source", "paper", "measured", "status"},
	}
	for _, c := range Scorecard() {
		measured, pass, err := c.Measure()
		if err != nil {
			return Table{}, fmt.Errorf("scorecard %s: %w", c.ID, err)
		}
		status := "PASS"
		if !pass {
			status = "FAIL"
		}
		t.Rows = append(t.Rows, []string{c.ID, c.Source, c.Paper, measured, status})
	}
	return t, nil
}

func parseF(s string) float64 {
	var v float64
	fmt.Sscanf(s, "%f", &v)
	return v
}

// meanSPRICLRatio averages f(spr, icl) over the standard grid using E2E
// latency.
func meanSPRICLRatio(f func(spr, icl float64) float64) (float64, error) {
	var vals []float64
	err := forEachPair(func(m model.Config, b int, spr, icl metrics.Result) {
		vals = append(vals, f(spr.Latency.E2E, icl.Latency.E2E))
	})
	if err != nil {
		return 0, err
	}
	return stats.Mean(vals), nil
}
