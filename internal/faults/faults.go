// Package faults is a deterministic, rule-based fault injector for the
// serving stack. Chaos scenarios — latency spikes, wedged (stalled)
// calls, worker panics, and cost-model errors — are described as rules,
// armed at runtime, and evaluated at named sites the gateway threads
// through its hot path. Every decision is driven by per-rule evaluation
// counters and a seeded RNG, so a given (seed, rule set, schedule) is
// reproducible: the same faults fire at the same evaluations in tests
// and in live chaos drills.
//
// The gateway consults four sites:
//
//	lane          top of each lane-scheduler iteration (panic injection)
//	cost.prefill  inside the primary cost model's prefill pricing
//	cost.decode   inside the primary cost model's decode pricing
//	govern.kv     standing mem-pressure queries by the memory governor
//	overload      standing load-spike queries by the overload controller
//
// An Injector is safe for concurrent use and nil-safe: a nil *Injector
// applies nothing, so callers never branch on whether chaos is enabled.
package faults

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Class is a fault category.
type Class int

const (
	// Latency sleeps Delay at the site: a slow memory tier or a GC
	// pause, visible as a tail-latency spike but not an error.
	Latency Class = iota
	// Stall sleeps Delay at the site, where Delay is expected to exceed
	// the gateway's watchdog budget: a wedged engine call.
	Stall
	// Panic panics at the site with an *Injected value; the lane
	// supervisor must recover it.
	Panic
	// CostError returns an *Injected error from the site, modelling a
	// failing cost model or engine.
	CostError
	// MemPressure is a standing condition, not a firing fault: while a
	// rule of this class is armed, Fraction of the matching lane's
	// KV-block capacity is withheld (a co-tenant eating the platform's
	// memory). The memory governor queries it with Pressure; Apply
	// ignores it.
	MemPressure
	// ReplicaDown is a standing replica-scoped condition: while armed,
	// the matching replica (the rule's Lane field names the replica ID)
	// is dead — the cluster router fails its health probes, stops
	// routing to it, and terminates its in-flight work. The router
	// queries it with Outage; Apply ignores it.
	ReplicaDown
	// ReplicaSlow is a standing replica-scoped condition: while armed,
	// every request dispatched to the matching replica is delayed by
	// DelayMillis before execution — a wedged-but-alive box whose
	// latency EWMA should trip passive outlier ejection.
	ReplicaSlow
	// ReplicaFlap is a standing replica-scoped condition: the matching
	// replica alternates dead and alive with half-period DelayMillis,
	// exercising ejection, half-open probing and readmission in a loop.
	ReplicaFlap
	// LoadSpike is a standing condition for overload drills: while
	// armed, the gateway's overload controller reads Fraction as extra
	// admission pressure (offered load beyond capacity), driving the
	// adaptive limiter and the brownout ladder deterministically. The
	// controller queries it with Spike; Apply ignores it.
	LoadSpike
)

// String names the class; ParseClass is its inverse.
func (c Class) String() string {
	switch c {
	case Latency:
		return "latency"
	case Stall:
		return "stall"
	case Panic:
		return "panic"
	case CostError:
		return "cost-error"
	case MemPressure:
		return "mem-pressure"
	case ReplicaDown:
		return "replica-down"
	case ReplicaSlow:
		return "replica-slow"
	case ReplicaFlap:
		return "replica-flap"
	case LoadSpike:
		return "load-spike"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ParseClass resolves a class name.
func ParseClass(s string) (Class, error) {
	switch s {
	case "latency":
		return Latency, nil
	case "stall":
		return Stall, nil
	case "panic":
		return Panic, nil
	case "cost-error", "costerror", "cost_error":
		return CostError, nil
	case "mem-pressure", "mempressure", "mem_pressure":
		return MemPressure, nil
	case "replica-down", "replica_down":
		return ReplicaDown, nil
	case "replica-slow", "replica_slow":
		return ReplicaSlow, nil
	case "replica-flap", "replica_flap":
		return ReplicaFlap, nil
	case "load-spike", "load_spike", "loadspike":
		return LoadSpike, nil
	default:
		return 0, fmt.Errorf("faults: unknown class %q (want latency, stall, panic, cost-error, mem-pressure, replica-down, replica-slow, replica-flap or load-spike)", s)
	}
}

// MarshalJSON renders the class name.
func (c Class) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", c.String())), nil
}

// UnmarshalJSON parses a class name.
func (c *Class) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("faults: class must be a JSON string, got %s", b)
	}
	v, err := ParseClass(string(b[1 : len(b)-1]))
	if err != nil {
		return err
	}
	*c = v
	return nil
}

// Rule describes one injectable fault. A rule fires at a matching site
// evaluation either every Every-th evaluation (deterministic) or with
// probability P per evaluation (seeded), at most Count times (0 =
// unlimited).
type Rule struct {
	Class Class `json:"class"`
	// Site filters by injection site: "" matches every site, a name
	// ending in '*' matches by prefix, anything else matches exactly.
	Site string `json:"site,omitempty"`
	// Lane filters by lane key; "" matches every lane.
	Lane string `json:"lane,omitempty"`
	// Every fires the rule on each Every-th matching evaluation.
	Every int `json:"every,omitempty"`
	// P fires the rule with this probability when Every is zero.
	P float64 `json:"p,omitempty"`
	// Count caps total fires; 0 is unlimited.
	Count int `json:"count,omitempty"`
	// DelayMillis is the sleep for Latency and Stall faults.
	DelayMillis float64 `json:"delay_ms,omitempty"`
	// Fraction is the share of KV-block capacity a MemPressure rule
	// withholds while armed, in (0, 1].
	Fraction float64 `json:"fraction,omitempty"`
}

// Validate rejects rules that could never fire or have no trigger.
func (r Rule) Validate() error {
	if r.Every < 0 || r.Count < 0 || r.P < 0 || r.P > 1 || r.DelayMillis < 0 {
		return fmt.Errorf("faults: rule %s has negative or out-of-range trigger fields", r.Class)
	}
	if r.Class == MemPressure || r.Class == LoadSpike {
		// Standing conditions: armed is active, so they have no trigger.
		if r.Fraction <= 0 || r.Fraction > 1 {
			return fmt.Errorf("faults: %s rule needs fraction in (0, 1], got %g", r.Class, r.Fraction)
		}
		if r.Every != 0 || r.P != 0 || r.Count != 0 || r.DelayMillis != 0 {
			return fmt.Errorf("faults: %s rules take only site, lane and fraction", r.Class)
		}
		return nil
	}
	if r.Class == ReplicaDown || r.Class == ReplicaSlow || r.Class == ReplicaFlap {
		// Standing replica conditions: armed is active. Slow and flap
		// need a delay (the added latency / the flap half-period).
		if r.Every != 0 || r.P != 0 || r.Count != 0 || r.Fraction != 0 {
			return fmt.Errorf("faults: %s rules take only site, lane and delay", r.Class)
		}
		if r.Class != ReplicaDown && r.DelayMillis <= 0 {
			return fmt.Errorf("faults: %s rule needs delay_ms > 0", r.Class)
		}
		if r.Class == ReplicaDown && r.DelayMillis != 0 {
			return fmt.Errorf("faults: replica-down rules take no delay")
		}
		return nil
	}
	if r.Fraction != 0 {
		return fmt.Errorf("faults: fraction applies only to mem-pressure and load-spike rules")
	}
	if r.Every == 0 && r.P == 0 {
		return fmt.Errorf("faults: rule %s needs every > 0 or p > 0", r.Class)
	}
	if (r.Class == Latency || r.Class == Stall) && r.DelayMillis == 0 {
		return fmt.Errorf("faults: %s rule needs delay_ms > 0", r.Class)
	}
	return nil
}

func (r Rule) delay() time.Duration {
	return time.Duration(r.DelayMillis * float64(time.Millisecond))
}

func (r Rule) matches(site, lane string) bool {
	switch {
	case r.Site == "":
	case len(r.Site) > 0 && r.Site[len(r.Site)-1] == '*':
		prefix := r.Site[:len(r.Site)-1]
		if len(site) < len(prefix) || site[:len(prefix)] != prefix {
			return false
		}
	case r.Site != site:
		return false
	}
	return r.Lane == "" || r.Lane == lane
}

// Injected is both the error returned by CostError rules and the panic
// value raised by Panic rules, so supervisors and tests can recognize
// injected faults unambiguously.
type Injected struct {
	Rule Rule // the rule that fired
	N    int  // how many times the rule has fired, 1-based
	Site string
	Lane string
}

// Error describes the injected fault.
func (e *Injected) Error() string {
	return fmt.Sprintf("faults: injected %s at %s (lane %q, fire %d)",
		e.Rule.Class, e.Site, e.Lane, e.N)
}

// Attrs renders the fault as span attributes, so chaos events show up
// tagged in the request traces they failed.
func (e *Injected) Attrs() map[string]string {
	return map[string]string{
		"fault.class": e.Rule.Class.String(),
		"fault.site":  e.Site,
		"fault.lane":  e.Lane,
		"fault.fire":  strconv.Itoa(e.N),
	}
}

// ruleState pairs a rule with its evaluation bookkeeping. armedAt
// anchors time-varying standing conditions (replica-flap phases).
type ruleState struct {
	Rule
	evals   int
	fired   int
	armedAt time.Time
}

// RuleStatus is one rule with its counters, for snapshots.
type RuleStatus struct {
	Rule
	Evals int `json:"evals"`
	Fired int `json:"fired"`
}

// Status is the injector's observable state.
type Status struct {
	Seed     int64        `json:"seed"`
	Armed    bool         `json:"armed"`
	Injected uint64       `json:"injected_total"`
	Rules    []RuleStatus `json:"rules"`
}

// Injector evaluates armed rules at injection sites.
type Injector struct {
	mu    sync.Mutex
	seed  int64
	rng   *rand.Rand
	rules []ruleState

	total    *metrics.Counter
	byClass  map[Class]*metrics.Counter
	armed    *metrics.Gauge
	injected uint64
}

// New returns a disarmed injector whose probabilistic decisions derive
// from seed.
func New(seed int64) *Injector {
	return &Injector{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Instrument exports the injector's activity through reg:
// faults_injected_total, per-class faults_injected_<class>_total, and the
// faults_armed gauge.
func (i *Injector) Instrument(reg *metrics.Registry) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.total = reg.Counter("faults_injected_total", "faults injected across all classes")
	i.armed = reg.Gauge("faults_armed_rules", "fault rules currently armed")
	i.byClass = map[Class]*metrics.Counter{
		Latency:     reg.Counter("faults_injected_latency_total", "latency-spike faults injected"),
		Stall:       reg.Counter("faults_injected_stall_total", "stall faults injected"),
		Panic:       reg.Counter("faults_injected_panic_total", "panic faults injected"),
		CostError:   reg.Counter("faults_injected_cost_error_total", "cost-model-error faults injected"),
		MemPressure: reg.Counter("faults_injected_mem_pressure_total", "mem-pressure conditions applied"),
		ReplicaDown: reg.Counter("faults_injected_replica_down_total", "replica-down conditions applied"),
		ReplicaSlow: reg.Counter("faults_injected_replica_slow_total", "replica-slow conditions applied"),
		ReplicaFlap: reg.Counter("faults_injected_replica_flap_total", "replica-flap conditions applied"),
		LoadSpike:   reg.Counter("faults_injected_load_spike_total", "load-spike conditions applied"),
	}
	return i
}

// Arm replaces the rule set (and resets its counters and the RNG to the
// seed, so an identical arm replays identically). Invalid rules are
// rejected wholesale.
func (i *Injector) Arm(rules ...Rule) error {
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rng = rand.New(rand.NewSource(i.seed))
	i.rules = make([]ruleState, len(rules))
	now := time.Now()
	for idx, r := range rules {
		i.rules[idx] = ruleState{Rule: r, armedAt: now}
	}
	if i.armed != nil {
		i.armed.Set(int64(len(rules)))
	}
	return nil
}

// Disarm clears every rule; subsequent Apply calls are no-ops.
func (i *Injector) Disarm() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules = nil
	if i.armed != nil {
		i.armed.Set(0)
	}
}

// Armed reports whether any rules are active.
func (i *Injector) Armed() bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return len(i.rules) > 0
}

// Snapshot returns the current rules and counters.
func (i *Injector) Snapshot() Status {
	if i == nil {
		return Status{}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	st := Status{Seed: i.seed, Armed: len(i.rules) > 0, Injected: i.injected,
		Rules: make([]RuleStatus, len(i.rules))}
	for idx, r := range i.rules {
		st.Rules[idx] = RuleStatus{Rule: r.Rule, Evals: r.evals, Fired: r.fired}
	}
	return st
}

// Apply evaluates every armed rule against (site, lane). Latency and
// Stall fires sleep here; a Panic fire panics with an *Injected value; a
// CostError fire returns an *Injected error. Sleeps and the panic happen
// outside the injector's lock, so a recovered panic never wedges it.
func (i *Injector) Apply(site, lane string) error {
	if i == nil {
		return nil
	}
	var sleep time.Duration
	var panicV, errV *Injected

	i.mu.Lock()
	for idx := range i.rules {
		r := &i.rules[idx]
		if r.Class == MemPressure || r.Class == ReplicaDown ||
			r.Class == ReplicaSlow || r.Class == ReplicaFlap ||
			r.Class == LoadSpike {
			continue // standing conditions, queried via Pressure/Outage/Spike
		}
		if !r.matches(site, lane) {
			continue
		}
		r.evals++
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		var fire bool
		if r.Every > 0 {
			fire = r.evals%r.Every == 0
		} else {
			fire = i.rng.Float64() < r.P
		}
		if !fire {
			continue
		}
		r.fired++
		i.injected++
		if i.total != nil {
			i.total.Inc()
			i.byClass[r.Class].Inc()
		}
		inj := &Injected{Rule: r.Rule, N: r.fired, Site: site, Lane: lane}
		switch r.Class {
		case Latency, Stall:
			sleep += r.delay()
		case Panic:
			if panicV == nil {
				panicV = inj
			}
		case CostError:
			if errV == nil {
				errV = inj
			}
		}
	}
	i.mu.Unlock()

	if sleep > 0 {
		time.Sleep(sleep)
	}
	if panicV != nil {
		panic(panicV)
	}
	if errV != nil {
		return errV
	}
	return nil
}

// Pressure returns the capacity fraction withheld at (site, lane) by
// armed mem-pressure rules: the sum of matching rules' fractions, capped
// at 1. Unlike firing classes, a mem-pressure rule exerts its effect for
// as long as it stays armed; disarming it releases the pressure. The
// method is nil-safe and counts each query as an evaluation, and the
// first query that observes a rule's pressure as its fire, so snapshots
// show standing rules taking effect.
func (i *Injector) Pressure(site, lane string) float64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	var frac float64
	for idx := range i.rules {
		r := &i.rules[idx]
		if r.Class != MemPressure || !r.matches(site, lane) {
			continue
		}
		r.evals++
		if r.fired == 0 {
			r.fired = 1
			i.injected++
			if i.total != nil {
				i.total.Inc()
				i.byClass[MemPressure].Inc()
			}
		}
		frac += r.Fraction
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}

// Spike returns the extra admission pressure standing load-spike rules
// exert at (site, lane): the sum of matching rules' fractions, capped at
// 1. The overload controller folds it into its pressure signal, so an
// armed load-spike drives the brownout ladder exactly as real offered
// load beyond capacity would — and disarming it recovers. Nil-safe;
// each query counts as an evaluation, and the first query that observes
// a rule's effect counts as its fire.
func (i *Injector) Spike(site, lane string) float64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	var frac float64
	for idx := range i.rules {
		r := &i.rules[idx]
		if r.Class != LoadSpike || !r.matches(site, lane) {
			continue
		}
		r.evals++
		if r.fired == 0 {
			r.fired = 1
			i.injected++
			if i.total != nil {
				i.total.Inc()
				i.byClass[LoadSpike].Inc()
			}
		}
		frac += r.Fraction
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}

// Outage reports the standing replica condition at (site, lane): whether
// matching replica-down/replica-flap rules hold the replica dead right
// now, and the extra per-request latency matching replica-slow rules
// impose. The cluster router's health checker polls it with site
// "replica" and the replica ID as the lane; like Pressure, the effect
// lasts for as long as the rule stays armed and ends at disarm. A
// replica-flap rule alternates dead and alive with half-period
// DelayMillis, anchored at arm time so the schedule is stable across
// polls. Nil-safe; each query counts as an evaluation, and the first
// query that observes a rule's effect counts as its fire.
func (i *Injector) Outage(site, lane string) (down bool, slow time.Duration) {
	if i == nil {
		return false, 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	now := time.Now()
	for idx := range i.rules {
		r := &i.rules[idx]
		var active bool
		switch r.Class {
		case ReplicaDown:
			active = true
		case ReplicaFlap:
			// Dead during even half-periods (starting at arm), alive
			// during odd ones.
			phase := int(now.Sub(r.armedAt) / r.delay())
			active = phase%2 == 0
		case ReplicaSlow:
			active = true
		default:
			continue
		}
		if !r.matches(site, lane) {
			continue
		}
		r.evals++
		if !active {
			continue
		}
		if r.fired == 0 {
			r.fired = 1
			i.injected++
			if i.total != nil {
				i.total.Inc()
				i.byClass[r.Class].Inc()
			}
		}
		switch r.Class {
		case ReplicaDown, ReplicaFlap:
			down = true
		case ReplicaSlow:
			slow += r.delay()
		}
	}
	return down, slow
}
