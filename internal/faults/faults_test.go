package faults

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestEveryFiresDeterministically(t *testing.T) {
	i := New(1)
	if err := i.Arm(Rule{Class: CostError, Site: "cost.decode", Every: 3}); err != nil {
		t.Fatal(err)
	}
	var fired []int
	for n := 1; n <= 9; n++ {
		if err := i.Apply("cost.decode", "l"); err != nil {
			fired = append(fired, n)
			var inj *Injected
			if !errors.As(err, &inj) {
				t.Fatalf("error %v is not *Injected", err)
			}
		}
	}
	if len(fired) != 3 || fired[0] != 3 || fired[1] != 6 || fired[2] != 9 {
		t.Fatalf("fired at %v, want [3 6 9]", fired)
	}
	if st := i.Snapshot(); st.Rules[0].Evals != 9 || st.Rules[0].Fired != 3 {
		t.Errorf("snapshot %+v", st.Rules[0])
	}
}

func TestCountCapsAndSiteLaneFilters(t *testing.T) {
	i := New(1)
	if err := i.Arm(Rule{Class: CostError, Site: "cost.*", Lane: "a", Every: 1, Count: 2}); err != nil {
		t.Fatal(err)
	}
	if err := i.Apply("lane", "a"); err != nil {
		t.Error("site filter leaked to lane site")
	}
	if err := i.Apply("cost.prefill", "b"); err != nil {
		t.Error("lane filter leaked to lane b")
	}
	hits := 0
	for n := 0; n < 5; n++ {
		if i.Apply("cost.prefill", "a") != nil {
			hits++
		}
	}
	if hits != 2 {
		t.Errorf("count cap: %d fires, want 2", hits)
	}
}

func TestProbabilisticIsSeedReproducible(t *testing.T) {
	run := func() []bool {
		i := New(42)
		if err := i.Arm(Rule{Class: CostError, P: 0.5}); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 32)
		for n := range out {
			out[n] = i.Apply("cost.decode", "l") != nil
		}
		return out
	}
	a, b := run(), run()
	some := false
	for n := range a {
		if a[n] != b[n] {
			t.Fatalf("same seed diverged at eval %d", n)
		}
		some = some || a[n]
	}
	if !some {
		t.Error("p=0.5 over 32 evals never fired")
	}
}

func TestPanicCarriesInjectedValue(t *testing.T) {
	i := New(1)
	if err := i.Arm(Rule{Class: Panic, Site: "lane", Every: 1, Count: 1}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		inj, ok := r.(*Injected)
		if !ok || inj.Rule.Class != Panic || inj.Site != "lane" {
			t.Fatalf("recovered %#v", r)
		}
		// The injector must not be wedged after the panic.
		if err := i.Apply("lane", "l"); err != nil {
			t.Errorf("post-panic apply: %v", err)
		}
	}()
	i.Apply("lane", "l")
	t.Fatal("panic rule did not panic")
}

func TestLatencySleeps(t *testing.T) {
	i := New(1)
	if err := i.Arm(Rule{Class: Latency, Every: 1, Count: 1, DelayMillis: 30}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := i.Apply("cost.decode", "l"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("latency fault slept only %v", d)
	}
}

func TestNilInjectorIsNoop(t *testing.T) {
	var i *Injector
	if err := i.Apply("lane", "l"); err != nil {
		t.Fatal(err)
	}
	if i.Armed() {
		t.Error("nil injector armed")
	}
	if st := i.Snapshot(); st.Armed || len(st.Rules) != 0 {
		t.Errorf("nil snapshot %+v", st)
	}
}

func TestArmValidatesAndResets(t *testing.T) {
	i := New(1)
	if err := i.Arm(Rule{Class: Latency, Every: 1}); err == nil {
		t.Error("latency without delay accepted")
	}
	if err := i.Arm(Rule{Class: CostError}); err == nil {
		t.Error("rule without trigger accepted")
	}
	if err := i.Arm(Rule{Class: CostError, P: 1.5}); err == nil {
		t.Error("p > 1 accepted")
	}
	if err := i.Arm(Rule{Class: CostError, Every: 2}); err != nil {
		t.Fatal(err)
	}
	i.Apply("x", "")
	i.Apply("x", "")
	if err := i.Arm(Rule{Class: CostError, Every: 2}); err != nil {
		t.Fatal(err)
	}
	if st := i.Snapshot(); st.Rules[0].Evals != 0 {
		t.Error("re-arm did not reset counters")
	}
	i.Disarm()
	if i.Armed() {
		t.Error("still armed after Disarm")
	}
}

func TestConcurrentApplyIsSafe(t *testing.T) {
	i := New(7).Instrument(metrics.NewRegistry())
	if err := i.Arm(Rule{Class: CostError, P: 0.3}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 200; n++ {
				_ = i.Apply("cost.decode", "l")
			}
		}()
	}
	wg.Wait()
	st := i.Snapshot()
	if st.Rules[0].Evals != 1600 {
		t.Errorf("evals %d, want 1600", st.Rules[0].Evals)
	}
	if st.Injected == 0 || uint64(st.Rules[0].Fired) != st.Injected {
		t.Errorf("injected %d, rule fired %d", st.Injected, st.Rules[0].Fired)
	}
}

func TestMetricsExported(t *testing.T) {
	reg := metrics.NewRegistry()
	i := New(1).Instrument(reg)
	if err := i.Arm(Rule{Class: CostError, Every: 1, Count: 1}); err != nil {
		t.Fatal(err)
	}
	_ = i.Apply("cost.decode", "l")
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"faults_injected_total 1",
		"faults_injected_cost_error_total 1",
		"faults_armed_rules 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec("panic@lane:every=50,count=3; latency@cost.decode:p=0.05,delay=20ms,lane=x")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("%d rules", len(rules))
	}
	if r := rules[0]; r.Class != Panic || r.Site != "lane" || r.Every != 50 || r.Count != 3 {
		t.Errorf("rule 0: %+v", r)
	}
	if r := rules[1]; r.Class != Latency || r.P != 0.05 || r.DelayMillis != 20 || r.Lane != "x" {
		t.Errorf("rule 1: %+v", r)
	}
	for _, bad := range []string{
		"", "bogus@lane:every=1", "panic@lane", "panic@lane:every", "panic@lane:weird=1",
		"latency:every=1", "stall:delay=abc", "cost-error:p=2",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestRuleJSONRoundTrip(t *testing.T) {
	in := Rule{Class: Stall, Site: "cost.prefill", Every: 4, Count: 2, DelayMillis: 100}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"class":"stall"`) {
		t.Errorf("class not marshaled as name: %s", b)
	}
	var out Rule
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip %+v != %+v", out, in)
	}
	if err := json.Unmarshal([]byte(`{"class":"nope"}`), &out); err == nil {
		t.Error("unknown class accepted")
	}
	if err := json.Unmarshal([]byte(`{"class":7}`), &out); err == nil {
		t.Error("numeric class accepted")
	}
}

func TestReplicaOutageConditions(t *testing.T) {
	inj := New(1)
	if down, slow := inj.Outage("replica", "r0"); down || slow != 0 {
		t.Fatalf("disarmed injector reports outage down=%v slow=%v", down, slow)
	}
	if err := inj.Arm(
		Rule{Class: ReplicaDown, Site: "replica", Lane: "r1"},
		Rule{Class: ReplicaSlow, Site: "replica", Lane: "r2", DelayMillis: 25},
	); err != nil {
		t.Fatal(err)
	}
	if down, slow := inj.Outage("replica", "r0"); down || slow != 0 {
		t.Errorf("unmatched replica r0: down=%v slow=%v", down, slow)
	}
	if down, _ := inj.Outage("replica", "r1"); !down {
		t.Error("replica-down rule did not take r1 down")
	}
	if down, slow := inj.Outage("replica", "r2"); down || slow != 25*time.Millisecond {
		t.Errorf("replica-slow on r2: down=%v slow=%v", down, slow)
	}
	inj.Disarm()
	if down, _ := inj.Outage("replica", "r1"); down {
		t.Error("outage survives disarm")
	}

	// Flap alternates dead/alive with half-period delay, dead first.
	if err := inj.Arm(Rule{Class: ReplicaFlap, Site: "replica", Lane: "r1", DelayMillis: 40}); err != nil {
		t.Fatal(err)
	}
	if down, _ := inj.Outage("replica", "r1"); !down {
		t.Error("flap not down in its first half-period")
	}
	time.Sleep(50 * time.Millisecond)
	if down, _ := inj.Outage("replica", "r1"); down {
		t.Error("flap still down in its second half-period")
	}
}

func TestReplicaRuleValidation(t *testing.T) {
	for _, bad := range []Rule{
		{Class: ReplicaDown, DelayMillis: 5},          // down takes no delay
		{Class: ReplicaSlow},                          // slow needs delay
		{Class: ReplicaFlap},                          // flap needs delay
		{Class: ReplicaDown, Every: 3},                // standing: no trigger
		{Class: ReplicaSlow, DelayMillis: 5, P: 0.5},  // standing: no trigger
		{Class: ReplicaFlap, DelayMillis: 5, Count: 1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("rule %+v accepted", bad)
		}
	}
	for _, spec := range []string{
		"replica-down@replica:lane=r1",
		"replica-slow@replica:lane=r1,delay=50ms",
		"replica-flap@replica:lane=r2,delay=200ms",
	} {
		if _, err := ParseSpec(spec); err != nil {
			t.Errorf("spec %q rejected: %v", spec, err)
		}
	}
}
