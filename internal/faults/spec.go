package faults

// spec.go parses the compact command-line fault specification used by
// `llmperfd -fault-spec`, so chaos drills can be configured at process
// start without touching the admin endpoint:
//
//	class[@site][:key=value,...][;more rules]
//
// e.g. "panic@lane:every=50,count=3;latency@cost.decode:p=0.05,delay=20ms"

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses a rule list in the compact flag syntax.
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faults: empty spec %q", spec)
	}
	return rules, nil
}

func parseRule(s string) (Rule, error) {
	head, opts, _ := strings.Cut(s, ":")
	name, site, _ := strings.Cut(head, "@")
	class, err := ParseClass(strings.TrimSpace(name))
	if err != nil {
		return Rule{}, err
	}
	r := Rule{Class: class, Site: strings.TrimSpace(site)}
	if opts != "" {
		for _, kv := range strings.Split(opts, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return Rule{}, fmt.Errorf("faults: malformed option %q in %q (want key=value)", kv, s)
			}
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			switch k {
			case "every":
				if r.Every, err = strconv.Atoi(v); err != nil {
					return Rule{}, fmt.Errorf("faults: every: %w", err)
				}
			case "count":
				if r.Count, err = strconv.Atoi(v); err != nil {
					return Rule{}, fmt.Errorf("faults: count: %w", err)
				}
			case "p":
				if r.P, err = strconv.ParseFloat(v, 64); err != nil {
					return Rule{}, fmt.Errorf("faults: p: %w", err)
				}
			case "delay":
				d, err := time.ParseDuration(v)
				if err != nil {
					return Rule{}, fmt.Errorf("faults: delay: %w", err)
				}
				r.DelayMillis = float64(d) / float64(time.Millisecond)
			case "fraction":
				if r.Fraction, err = strconv.ParseFloat(v, 64); err != nil {
					return Rule{}, fmt.Errorf("faults: fraction: %w", err)
				}
			case "lane":
				r.Lane = v
			default:
				return Rule{}, fmt.Errorf("faults: unknown option %q in %q", k, s)
			}
		}
	}
	if err := r.Validate(); err != nil {
		return Rule{}, err
	}
	return r, nil
}
