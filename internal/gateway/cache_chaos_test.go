package gateway

// cache_chaos_test.go drills the prefix cache under memory pressure: a
// standing mem-pressure fault halves the pool while concurrent sessions
// share prompt prefixes. The cache must keep its accounting exact —
// every request ends in exactly one contract outcome, hits still happen,
// eviction under the watermark never corrupts an in-flight fork, and
// after disarm + flush the pool is fully free.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/govern"
	"repro/internal/prefixcache"
)

// sessionPrefix builds the segment spec the API layer would: a shared
// per-session chunk plus a private tail, 80 tokens total.
func sessionPrefix(session int) []prefixcache.Segment {
	return []prefixcache.Segment{
		{ID: fmt.Sprintf("sess-%d#0", session), Tokens: 64},
		{ID: "tail", Tokens: 16, Private: true},
	}
}

func TestChaosCacheUnderMemPressure(t *testing.T) {
	inj := faults.New(1)
	if err := inj.Arm(faults.Rule{Class: faults.MemPressure, Site: "govern.kv", Fraction: 0.5}); err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig(inj)
	cfg.MaxRequeues = 100
	// 96 blocks, halved to 48 by the fault. The single chaos lane keeps
	// ~8 requests in flight (MaxBatch 8), holding ~48 blocks with the
	// retained prefixes: over the halved pool's 0.9 watermark (so the
	// pressure machinery — eviction, preemption, shedding — engages) but
	// inside the full pool (so the recovery wave's cache survives long
	// enough to be hit).
	gov := memGovernor(t, cfg.Registry, 96, func(c *govern.Config) {
		c.EnableCache = true
		c.HighWatermark = 0.9
		c.LowWatermark = 0.5
	})
	cfg.Governor = gov
	g := New(cfg, fixedResolver(fakeCost{pre: 0.002, dec: 0.0002}))
	defer g.Shutdown(context.Background())

	// 64 clients across 8 sessions: within a session every request shares
	// its 64 leading tokens, so once any one of them prefills, the rest
	// can fork from the cache — even while the fault keeps the effective
	// pool at half size and the watermark evicts retained prefixes.
	cacheWave := func(n int) ([]Result, []error) {
		results := make([]Result, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = g.Generate(context.Background(), Request{
					Lane: "chaos", InputLen: 80, OutputLen: 4,
					Prefix: sessionPrefix(i % 8),
				})
			}(i)
		}
		wg.Wait()
		return results, errs
	}

	results, errs := cacheWave(chaosClients)
	var completed, shed, cached int
	for i, err := range errs {
		switch {
		case err == nil:
			completed++
			if results[i].OutputLen != 4 {
				t.Errorf("request %d: truncated result %+v", i, results[i])
			}
			if results[i].CachedTokens > 0 {
				cached++
			}
		case errors.Is(err, govern.ErrShedding), errors.Is(err, govern.ErrKVExhausted):
			shed++
		default:
			t.Errorf("request %d: outcome outside the contract: %v", i, err)
		}
	}
	if completed == 0 {
		t.Error("no request completed under 50% mem pressure with caching on")
	}
	m := func(name string) uint64 { return cfg.Registry.Counter(name, "").Value() }
	if got := m("gateway_completed_total") + m("gateway_failed_total") + m("gateway_rejected_total"); got != chaosClients {
		t.Errorf("outcome counters sum to %d, want exactly %d (lost or double-counted requests)", got, chaosClients)
	}
	cs := gov.CacheSnapshot()
	t.Logf("pressure wave: %d completed (%d from cache), %d shed, %d preempted; cache hits=%d evictions=%d retained=%d",
		completed, cached, shed, m("gateway_preempted_total"), cs.Hits, cs.Evictions, cs.RetainedBlocks)

	// Disarm: a clean follow-up wave must complete fully and, with the
	// whole pool back, actually exploit the shared prefixes.
	inj.Disarm()
	results, errs = cacheWave(chaosClients)
	cached = 0
	for i, err := range errs {
		if err != nil {
			t.Errorf("recovery wave request %d failed: %v", i, err)
		} else if results[i].CachedTokens > 0 {
			cached++
		}
	}
	if cached == 0 {
		t.Error("recovery wave scored no cache hits despite 8x-shared prefixes")
	}

	// The only blocks still held must be the cache's retained prefixes —
	// flushing them must leave the pool exactly fully free, proving no
	// refcount leaked through preemption, eviction, or forking.
	waitFor(t, func() bool {
		st, cst := gov.Snapshot(), gov.CacheSnapshot()
		return !st.Shedding && len(st.Lanes) == 1 &&
			st.Lanes[0].FreeBlocks+cst.RetainedBlocks == st.Lanes[0].TotalBlocks
	})
	gov.FlushCache()
	st := gov.Snapshot()
	if st.Lanes[0].FreeBlocks != st.Lanes[0].TotalBlocks {
		t.Errorf("pool not fully free after flush: %+v", st.Lanes[0])
	}
	if cst := gov.CacheSnapshot(); cst.RetainedBlocks != 0 {
		t.Errorf("cache still retains %d blocks after flush", cst.RetainedBlocks)
	}
}
