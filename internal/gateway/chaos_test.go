package gateway

// chaos_test.go drives the resilience machinery with the fault injector:
// every fault class is injected under 64-client concurrent load and the
// suite asserts the serving invariants — exactly one outcome per request
// (nothing lost, nothing duplicated), error counts bounded by the armed
// fault budget, the process never crashes, and availability returns to
// 100% once the faults are disarmed.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
)

const chaosClients = 64

// chaosConfig is a gateway tuned for fast chaos iterations: tiny restart
// backoff, a crash limit high enough that restart tests never quarantine,
// and modeled costs that finish a 64-client wave in milliseconds.
func chaosConfig(inj *faults.Injector) Config {
	return Config{
		MaxQueue:          256,
		MaxBatch:          8,
		Workers:           2,
		Registry:          metrics.NewRegistry(),
		Injector:          inj,
		RestartBackoff:    time.Millisecond,
		RestartBackoffMax: 5 * time.Millisecond,
		CrashLimit:        100,
		BreakerThreshold:  100,
	}
}

// runWave fires n concurrent requests and waits for every outcome.
func runWave(t *testing.T, g *Gateway, n int) ([]Result, []error) {
	t.Helper()
	results := make([]Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = g.Generate(context.Background(),
				Request{Lane: "chaos", InputLen: 64, OutputLen: 4})
		}(i)
	}
	wg.Wait()
	return results, errs
}

func TestChaosFaultClasses(t *testing.T) {
	cases := []struct {
		name         string
		rules        []faults.Rule
		tune         func(*Config)
		fallback     bool
		maxErrors    int
		errOK        func(error) bool
		wantDegraded bool
		check        func(*testing.T, *Gateway)
	}{
		{
			// Lane-worker panics: the supervisor recovers each one, fails
			// only the in-flight batch, and restarts the lane. With 3
			// fires and MaxBatch 8, at most 24 requests may fail.
			name:      "panic",
			rules:     []faults.Rule{{Class: faults.Panic, Site: "lane", Every: 9, Count: 3}},
			maxErrors: 24,
			errOK:     func(err error) bool { return errors.Is(err, ErrLanePanic) },
			check: func(t *testing.T, g *Gateway) {
				if got := g.Registry().Counter("gateway_lane_panics_total", "").Value(); got < 1 {
					t.Errorf("no recovered panics counted (got %d)", got)
				}
			},
		},
		{
			// Latency spikes slow iterations but break nothing.
			name: "latency",
			rules: []faults.Rule{{Class: faults.Latency, Site: "cost.decode",
				Every: 3, Count: 10, DelayMillis: 2}},
			maxErrors: 0,
		},
		{
			// A stalled primary cost model overruns the watchdog; with a
			// fallback armed the lane keeps serving, marked degraded.
			name: "stall with fallback",
			rules: []faults.Rule{{Class: faults.Stall, Site: "cost.prefill",
				Every: 2, Count: 4, DelayMillis: 100}},
			tune:         func(c *Config) { c.WatchdogBudget = 15 * time.Millisecond },
			fallback:     true,
			maxErrors:    0,
			wantDegraded: true,
			check: func(t *testing.T, g *Gateway) {
				if got := g.Registry().Counter("gateway_watchdog_timeouts_total", "").Value(); got < 1 {
					t.Errorf("no watchdog timeouts counted (got %d)", got)
				}
			},
		},
		{
			// Without a fallback a watchdog-cancelled batch is requeued to
			// the queue front; two fires stay inside every job's requeue
			// budget, so all 64 requests still complete.
			name: "stall requeues without fallback",
			rules: []faults.Rule{{Class: faults.Stall, Site: "cost.prefill",
				Every: 1, Count: 2, DelayMillis: 100}},
			tune:      func(c *Config) { c.WatchdogBudget = 15 * time.Millisecond },
			maxErrors: 0,
			check: func(t *testing.T, g *Gateway) {
				if got := g.Registry().Counter("gateway_requeued_total", "").Value(); got < 1 {
					t.Errorf("no requeues counted (got %d)", got)
				}
			},
		},
		{
			// A failing cost model with a fallback serves every request,
			// the poisoned iterations priced degraded.
			name: "cost error with fallback",
			rules: []faults.Rule{{Class: faults.CostError, Site: "cost.decode",
				Every: 3}},
			fallback:     true,
			maxErrors:    0,
			wantDegraded: true,
		},
		{
			// A failing cost model without a fallback fails the in-flight
			// batch with the injected error: at most fires x MaxBatch.
			name: "cost error without fallback",
			rules: []faults.Rule{{Class: faults.CostError, Site: "cost.decode",
				Every: 5, Count: 3}},
			maxErrors: 24,
			errOK: func(err error) bool {
				var inj *faults.Injected
				return errors.As(err, &inj)
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj := faults.New(1)
			cfg := chaosConfig(inj)
			if tc.tune != nil {
				tc.tune(&cfg)
			}
			if tc.fallback {
				cfg.Fallback = fixedResolver(fakeCost{pre: 0.001, dec: 0.0005})
			}
			if err := inj.Arm(tc.rules...); err != nil {
				t.Fatal(err)
			}
			g := New(cfg, fixedResolver(fakeCost{pre: 0.002, dec: 0.0005}))

			results, errs := runWave(t, g, chaosClients)
			var failed, degraded int
			for i, err := range errs {
				switch {
				case err == nil:
					if results[i].Degraded {
						degraded++
					}
				case tc.errOK != nil && tc.errOK(err):
					failed++
				default:
					t.Errorf("request %d: unexpected error %v", i, err)
					failed++
				}
			}
			if failed > tc.maxErrors {
				t.Errorf("%d requests failed, fault budget allows at most %d", failed, tc.maxErrors)
			}
			if tc.wantDegraded && degraded == 0 {
				t.Error("expected degraded completions, saw none")
			}
			if tc.check != nil {
				tc.check(t, g)
			}

			// No lost or duplicated completions: the counters must account
			// for exactly one outcome per request.
			reg := g.Registry()
			completed := reg.Counter("gateway_completed_total", "").Value()
			counted := reg.Counter("gateway_failed_total", "").Value()
			if completed != uint64(chaosClients-failed) || counted != uint64(failed) {
				t.Errorf("outcome accounting: completed=%d failed=%d, want %d and %d",
					completed, counted, chaosClients-failed, failed)
			}

			// Recovery: disarm and the next 64-client wave is fault-free.
			inj.Disarm()
			recResults, recErrs := runWave(t, g, chaosClients)
			recFailed := 0
			for i, err := range recErrs {
				if err != nil {
					recFailed++
					t.Errorf("post-disarm request %d failed: %v", i, err)
				} else if recResults[i].Degraded && !tc.fallback {
					t.Errorf("post-disarm request %d degraded without a fallback", i)
				}
			}
			if got := reg.Counter("gateway_completed_total", "").Value(); got != completed+uint64(chaosClients-recFailed) {
				t.Errorf("recovery wave lost completions: counter %d", got)
			}
			if g.QueueDepth() != 0 {
				t.Errorf("queue depth %d after recovery wave", g.QueueDepth())
			}
		})
	}
}

func TestChaosQuarantineAfterRepeatedCrashes(t *testing.T) {
	inj := faults.New(1)
	cfg := chaosConfig(inj)
	cfg.CrashLimit = 3
	cfg.QuarantinePeriod = 60 * time.Millisecond
	if err := inj.Arm(faults.Rule{Class: faults.Panic, Site: "lane", Every: 1}); err != nil {
		t.Fatal(err)
	}
	g := New(cfg, fixedResolver(fakeCost{pre: 0.002, dec: 0.0005}))

	// Every scheduler iteration panics, so the lane crash-loops into
	// quarantine and everything queued fails fast with the typed error.
	_, errs := runWave(t, g, 16)
	for i, err := range errs {
		if !errors.Is(err, ErrLaneQuarantined) && !errors.Is(err, ErrLanePanic) {
			t.Errorf("request %d: got %v, want quarantine or panic error", i, err)
		}
	}
	reg := g.Registry()
	if got := reg.Counter("gateway_lane_quarantines_total", "").Value(); got != 1 {
		t.Errorf("quarantine counter %d, want 1", got)
	}
	if got := reg.Gauge("gateway_quarantined_lanes", "").Value(); got != 1 {
		t.Errorf("quarantined lanes gauge %d, want 1", got)
	}
	// While quarantined, new submissions are rejected immediately.
	if _, err := g.Generate(context.Background(),
		Request{Lane: "chaos", InputLen: 64, OutputLen: 4}); !errors.Is(err, ErrLaneQuarantined) {
		t.Fatalf("submission during quarantine returned %v", err)
	}

	// After the cool-off, with the fault gone, the lane serves again.
	inj.Disarm()
	time.Sleep(80 * time.Millisecond)
	results, errs2 := runWave(t, g, 16)
	for i, err := range errs2 {
		if err != nil {
			t.Errorf("post-quarantine request %d failed: %v", i, err)
		} else if results[i].OutputLen != 4 {
			t.Errorf("post-quarantine request %d: bad result %+v", i, results[i])
		}
	}
	if got := reg.Gauge("gateway_quarantined_lanes", "").Value(); got != 0 {
		t.Errorf("quarantined lanes gauge %d after recovery, want 0", got)
	}
}

// flakyCost is a primary cost model whose failure mode is togglable, for
// driving the circuit breaker through trip and heal.
type flakyCost struct {
	mu   sync.Mutex
	fail bool
	fakeCost
}

func (f *flakyCost) setFail(v bool) { f.mu.Lock(); f.fail = v; f.mu.Unlock() }
func (f *flakyCost) failing() bool  { f.mu.Lock(); defer f.mu.Unlock(); return f.fail }

func (f *flakyCost) PrefillCost(batch, in int) (float64, error) {
	if f.failing() {
		return 0, errors.New("engine wedged")
	}
	return f.fakeCost.PrefillCost(batch, in)
}

func (f *flakyCost) DecodeStepCost(batch, ctx int) (float64, error) {
	if f.failing() {
		return 0, errors.New("engine wedged")
	}
	return f.fakeCost.DecodeStepCost(batch, ctx)
}

func TestChaosBreakerTripsAndHeals(t *testing.T) {
	primary := &flakyCost{fakeCost: fakeCost{pre: 0.002, dec: 0.0005}}
	primary.setFail(true)
	cfg := chaosConfig(nil)
	cfg.BreakerThreshold = 2
	cfg.BreakerOpenPeriod = 40 * time.Millisecond
	cfg.Fallback = fixedResolver(fakeCost{pre: 0.001, dec: 0.0005})
	g := New(cfg, fixedResolver(primary))

	// Failing primary: every request still completes, transparently served
	// by the analytic fallback and marked degraded — never a 5xx.
	results, errs := runWave(t, g, 16)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d failed despite fallback: %v", i, err)
		}
		if !results[i].Degraded {
			t.Errorf("request %d not marked degraded while primary is down", i)
		}
	}
	reg := g.Registry()
	if got := reg.Counter("gateway_breaker_opened_total", "").Value(); got < 1 {
		t.Errorf("breaker never opened (counter %d)", got)
	}
	if got := reg.Counter("gateway_degraded_total", "").Value(); got != 16 {
		t.Errorf("degraded counter %d, want 16", got)
	}

	// Heal the primary: after the open period a half-open probe succeeds,
	// the breaker closes, and service returns to non-degraded pricing.
	primary.setFail(false)
	time.Sleep(cfg.BreakerOpenPeriod + 10*time.Millisecond)
	waitFor(t, func() bool {
		r, err := g.Generate(context.Background(),
			Request{Lane: "chaos", InputLen: 64, OutputLen: 4})
		return err == nil && !r.Degraded
	})
	if got := reg.Counter("gateway_breaker_closed_total", "").Value(); got < 1 {
		t.Errorf("breaker never closed after heal (counter %d)", got)
	}
}

func TestChunkedDeadlineEvictsMidBatch(t *testing.T) {
	// Chunked policy with real-time pacing: the victim's deadline expires
	// while its prefill is still chunking, and the lane must evict it
	// without stalling the rest of the batch.
	g := New(Config{MaxQueue: 16, MaxBatch: 4, Workers: 1,
		Policy: Chunked, PrefillChunk: 16, Timescale: 1,
		Registry: metrics.NewRegistry()},
		fixedResolver(fakeCost{pre: 0.2, dec: 0.02}))

	victimCtx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	victim := make(chan error, 1)
	go func() {
		_, err := g.Generate(victimCtx, Request{Lane: "l", InputLen: 128, OutputLen: 8})
		victim <- err
	}()
	waitFor(t, func() bool {
		return g.Registry().Gauge("gateway_inflight", "").Value() == 1
	})

	const others = 2
	done := make(chan error, others)
	for i := 0; i < others; i++ {
		go func() {
			_, err := g.Generate(context.Background(),
				Request{Lane: "l", InputLen: 32, OutputLen: 4})
			done <- err
		}()
	}

	// The victim must come back with its own deadline error promptly —
	// not wait for the whole batch to finish.
	select {
	case err := <-victim:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("victim returned %v, want deadline exceeded", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("victim not released after its deadline expired")
	}
	for i := 0; i < others; i++ {
		if err := <-done; err != nil {
			t.Errorf("survivor request failed: %v", err)
		}
	}
	reg := g.Registry()
	if got := reg.Counter("gateway_canceled_total", "").Value(); got != 1 {
		t.Errorf("canceled counter %d, want 1", got)
	}
	if got := reg.Counter("gateway_completed_total", "").Value(); got != others {
		t.Errorf("completed counter %d, want %d", got, others)
	}
	waitFor(t, func() bool { return g.QueueDepth() == 0 })
}

func TestRetryAfterHint(t *testing.T) {
	cases := []struct {
		depth int
		rate  float64
		want  int
	}{
		{0, 5, 1},      // empty queue: retry immediately
		{-3, 5, 1},     // defensive: negative depth
		{10, 5, 2},     // 10 queued at 5/s drains in 2s
		{9, 10, 1},     // sub-second drain rounds up to the 1s floor
		{1000, 5, 30},  // deep backlog clamps at the cap
		{100, 0, 4},    // no rate observed yet: depth heuristic
		{10000, 0, 30}, // depth heuristic also clamps
		{1, 1000, 1},   // fast drain still answers at least 1
		{64, 0.5, 30},  // slow drain clamps
		{30, 10, 3},    // exact division
	}
	for _, tc := range cases {
		if got := RetryAfterHint(tc.depth, tc.rate); got != tc.want {
			t.Errorf("RetryAfterHint(%d, %g) = %d, want %d", tc.depth, tc.rate, got, tc.want)
		}
	}
}

// TestChaosStreamingStallRequeues runs streaming clients through decode
// stalls that trip the watchdog into cancel-and-requeue, with a quarter
// of the clients disconnecting mid-stream. The invariant under test is
// exactly-once token delivery: whatever the scheduler does behind the
// scenes (requeue, re-prefill, drop), each sink must observe a gap-free,
// strictly increasing prefix of token indices with no duplicates, and
// completed requests must see every token exactly once.
func TestChaosStreamingStallRequeues(t *testing.T) {
	inj := faults.New(7)
	cfg := chaosConfig(inj)
	cfg.WatchdogBudget = 15 * time.Millisecond
	if err := inj.Arm(faults.Rule{Class: faults.Stall, Site: "cost.decode",
		Every: 4, Count: 4, DelayMillis: 100}); err != nil {
		t.Fatal(err)
	}
	g := New(cfg, fixedResolver(fakeCost{pre: 0.002, dec: 0.0005}))

	const out = 8
	sinks := make([]*collector, chaosClients)
	errs := make([]error, chaosClients)
	var wg sync.WaitGroup
	for i := 0; i < chaosClients; i++ {
		sinks[i] = &collector{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			record := sinks[i].sink()
			sink := record
			if i%4 == 3 {
				// Every fourth client walks away after its second token.
				cctx, cancel := context.WithCancel(ctx)
				defer cancel()
				ctx = cctx
				sink = func(ev TokenEvent) {
					record(ev)
					if ev.Index == 1 {
						cancel()
					}
				}
			}
			_, errs[i] = g.Generate(ctx,
				Request{Lane: "chaos", InputLen: 64, OutputLen: out, Sink: sink})
		}(i)
	}
	wg.Wait()
	// Let the scheduler finish dropping canceled sequences so no sink is
	// still being fed while we inspect it.
	waitFor(t, func() bool {
		return g.QueueDepth() == 0 &&
			g.Registry().Gauge("gateway_inflight", "").Value() == 0
	})
	time.Sleep(20 * time.Millisecond)

	var failed, canceled int
	for i, err := range errs {
		events := sinks[i].snapshot()
		// Exactly-once, in-order delivery regardless of requeues: the
		// sink's view is a gap-free prefix of 0..out-1.
		for k, ev := range events {
			if ev.Index != k {
				t.Fatalf("request %d: event %d has index %d (duplicate or gap)", i, k, ev.Index)
			}
			if got, want := ev.Final, ev.Index == out-1; got != want {
				t.Errorf("request %d event %d: Final=%v, want %v", i, k, got, want)
			}
		}
		switch {
		case err == nil:
			if len(events) != out {
				t.Errorf("request %d completed with %d/%d tokens streamed", i, len(events), out)
			}
		case errors.Is(err, context.Canceled):
			canceled++
			if len(events) > out {
				t.Errorf("request %d canceled but saw %d tokens", i, len(events))
			}
		case errors.Is(err, ErrWatchdogTimeout):
			failed++
		default:
			t.Errorf("request %d: unexpected error %v", i, err)
			failed++
		}
	}
	if canceled == 0 {
		t.Error("no mid-stream disconnects took effect")
	}
	// 4 stall fires x MaxBatch 8 bounds the requeue-budget casualties.
	if failed > 32 {
		t.Errorf("%d requests failed, fault budget allows at most 32", failed)
	}
	// Exactly one outcome per request across the counters: completed,
	// failed, or dropped after cancellation.
	reg := g.Registry()
	total := reg.Counter("gateway_completed_total", "").Value() +
		reg.Counter("gateway_failed_total", "").Value() +
		reg.Counter("gateway_canceled_total", "").Value()
	if total != chaosClients {
		t.Errorf("outcome accounting: %d outcomes for %d requests", total, chaosClients)
	}
	if got := reg.Counter("gateway_requeued_total", "").Value(); got < 1 {
		t.Errorf("no requeues counted (got %d) — stall fault did not exercise the path", got)
	}
}
