// Package gateway is the serving layer between the HTTP API and the
// engine/simulator substrates: a production-shaped request scheduler with
// admission control in front of the priced (or measured) inference
// iterations.
//
// Requests enter through Generate (token-generation jobs batched per
// lane) or Do (unary calculator jobs such as one-shot simulations). Both
// paths share a bounded queue: when it is full, submissions are rejected
// immediately with ErrQueueFull, which the API layer maps to HTTP 429 —
// backpressure instead of unbounded buffering (the paper's serving
// context, §II-C/§VII).
//
// Generation jobs are grouped into lanes keyed by (platform, model,
// configuration). Each lane owns a serve.CostModel and runs Orca-style
// continuous batching — optionally Sarathi-style chunked prefill — at
// iteration granularity: waiting requests join when slots free, leave the
// moment their last token is produced, and every iteration advances the
// lane's virtual clock by the modeled (or engine-measured) cost. A worker
// pool bounds how many lanes execute concurrently.
//
// Every request carries a context.Context: cancellation or deadline
// expiry removes it from the queue, or evicts it from its batch at the
// next iteration boundary. Shutdown stops admission and drains in-flight
// work. All activity is observable through a metrics.Registry: queue
// depth, admission rejects, TTFT/TPOT/E2E histograms, batch-size
// distribution, and live in-flight gauges.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/govern"
	"repro/internal/metrics"
	"repro/internal/overload"
	"repro/internal/prefixcache"
	"repro/internal/serve"
	"repro/internal/trace"
)

// Sentinel errors the API layer maps to HTTP statuses.
var (
	// ErrQueueFull rejects a submission when the bounded queue is at
	// capacity (HTTP 429).
	ErrQueueFull = errors.New("gateway: queue full")
	// ErrDraining rejects submissions arriving after Shutdown began
	// (HTTP 503).
	ErrDraining = errors.New("gateway: draining")
	// ErrClassShed rejects a request shed class-ordered by overload
	// control: a queued lower-priority victim evicted so a higher class
	// could admit, or a batch-class submission refused at the top
	// brownout rung (HTTP 503).
	ErrClassShed = errors.New("gateway: shed by overload control")
	// ErrConcurrencyLimited rejects a submission the adaptive
	// concurrency limiter cannot fit right now: observed TTFT is busting
	// SLO targets, so the front door closes before the queue or the KV
	// watermark would (HTTP 429).
	ErrConcurrencyLimited = errors.New("gateway: adaptive concurrency limit reached")
	// ErrDeadlineUnmeetable rejects a queued request at dequeue when its
	// propagated deadline can no longer be met by the recently observed
	// TTFT — no prefill compute is burned on doomed work (HTTP 504).
	ErrDeadlineUnmeetable = errors.New("gateway: deadline can no longer be met")
)

// Policy selects the lane batching discipline.
type Policy int

const (
	// Continuous is Orca-style iteration-level batching: an arriving
	// request's whole prefill runs as one iteration.
	Continuous Policy = iota
	// Chunked is Sarathi-style chunked prefill: prompt pieces coalesce
	// with the decode batch, bounding inter-token stalls.
	Chunked
)

// String names the policy.
func (p Policy) String() string {
	if p == Chunked {
		return "chunked"
	}
	return "continuous"
}

// Config tunes the gateway.
type Config struct {
	// MaxQueue bounds requests waiting for execution across all lanes
	// and the unary pool; submissions beyond it get ErrQueueFull.
	// Default 256.
	MaxQueue int
	// MaxBatch is the per-lane in-flight sequence limit. Default 8.
	MaxBatch int
	// Policy selects continuous or chunked-prefill batching.
	Policy Policy
	// PrefillChunk is the chunk size (tokens) under the Chunked policy.
	// Default 64.
	PrefillChunk int
	// Workers bounds concurrently executing lanes plus unary jobs.
	// Default 4.
	Workers int
	// Timescale, when positive, makes lanes sleep iterationCost ×
	// Timescale after each iteration so wall-clock behavior tracks the
	// modeled time (useful for live demos and load tests). 0 runs
	// iterations back-to-back.
	Timescale float64
	// Registry receives the gateway's instruments; a private registry is
	// created when nil.
	Registry *metrics.Registry

	// Fallback resolves a degraded-mode cost model for a lane, used when
	// the lane's circuit breaker is open (e.g. the analytic model behind
	// an engine-measured lane). Returning (nil, nil) means no fallback
	// for that lane. Nil disables degraded mode entirely.
	Fallback Resolver
	// Injector, when non-nil, is consulted at the gateway's injection
	// sites ("lane", "cost.prefill", "cost.decode", "govern.kv") so chaos
	// scenarios can be driven deterministically. Nil disables fault
	// injection.
	Injector *faults.Injector
	// Governor, when non-nil, places every lane under a finite KV-memory
	// budget: block reservations at admission, per-token growth and
	// preemption-by-recompute under optimistic mode, watermark load
	// shedding, and per-client token quotas. Nil serves ungoverned.
	Governor *govern.Governor
	// Overload, when non-nil, enables SLO-class overload control
	// (internal/overload): class-priority queueing and shedding, the
	// AIMD adaptive concurrency limiter gating admission ahead of the KV
	// watermark, deadline-aware queue eviction, and the brownout
	// degradation ladder. Nil serves with the legacy blunt backpressure
	// (queue-full 429s and watermark 503s only).
	Overload *overload.Config
	// SaturationWindow is how long the admission queue must stay at
	// capacity before the gateway reports itself saturated (flipping
	// /readyz and the cluster shedding signal). Default 500ms.
	SaturationWindow time.Duration
	// Spec, when non-nil, enables draft-assisted speculative decoding on
	// lanes whose cost model implements serve.SpecCostModel (spec.go):
	// decode iterations become speculation cycles — k draft steps plus
	// one fused verification pass — committing the accepted run through
	// the exactly-once token path. Lanes whose model cannot price a draft
	// decode plainly; nil disables speculation everywhere.
	Spec *SpecConfig

	// Tracer records per-request phase spans. When nil a default tracer
	// is created over Registry (sample rate 1), so traces are always
	// available; requests without a Trace still skip span recording.
	Tracer *trace.Tracer
	// Logger receives structured gateway events (panics, quarantines,
	// breaker transitions, requeues), correlated by lane and trace ID.
	// Nil discards them.
	Logger *slog.Logger

	// CrashLimit quarantines a lane after this many recovered panics
	// inside CrashWindow. Default 3.
	CrashLimit int
	// CrashWindow is the sliding window for counting lane crashes.
	// Default 30s.
	CrashWindow time.Duration
	// QuarantinePeriod is how long a quarantined lane rejects
	// submissions before it may serve again. Default 10s.
	QuarantinePeriod time.Duration
	// RestartBackoff and RestartBackoffMax bound the exponential backoff
	// between lane restarts after a recovered panic. Defaults 10ms / 1s.
	RestartBackoff    time.Duration
	RestartBackoffMax time.Duration
	// WatchdogBudget is the wall-clock deadline for one priced call
	// (prefill or decode); an overrunning batch is cancelled and
	// requeued. Default 10s; negative disables the watchdog.
	WatchdogBudget time.Duration
	// MaxRequeues bounds how often one job may be requeued by the
	// watchdog before it fails. Default 2; negative disables requeueing.
	MaxRequeues int
	// BreakerThreshold is the consecutive primary-cost-model failures
	// that open a lane's circuit breaker. Default 3.
	BreakerThreshold int
	// BreakerOpenPeriod is the cool-off before an open breaker lets a
	// half-open probe through. Default 5s.
	BreakerOpenPeriod time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.PrefillChunk <= 0 {
		c.PrefillChunk = 64
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	if c.Tracer == nil {
		c.Tracer = trace.New(trace.Config{SampleRate: 1, Registry: c.Registry})
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.CrashLimit <= 0 {
		c.CrashLimit = 3
	}
	if c.CrashWindow <= 0 {
		c.CrashWindow = 30 * time.Second
	}
	if c.QuarantinePeriod <= 0 {
		c.QuarantinePeriod = 10 * time.Second
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 10 * time.Millisecond
	}
	if c.RestartBackoffMax <= 0 {
		c.RestartBackoffMax = time.Second
	}
	if c.WatchdogBudget == 0 {
		c.WatchdogBudget = 10 * time.Second
	}
	if c.MaxRequeues == 0 {
		c.MaxRequeues = 2
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerOpenPeriod <= 0 {
		c.BreakerOpenPeriod = 5 * time.Second
	}
	if c.SaturationWindow <= 0 {
		c.SaturationWindow = 500 * time.Millisecond
	}
	return c
}

// Request is one generation job.
type Request struct {
	// Lane groups requests that may batch together (same platform,
	// model and configuration). The gateway resolves its cost model
	// through the resolver given to New.
	Lane string
	// InputLen and OutputLen are the prompt and generation lengths.
	InputLen, OutputLen int
	// Client identifies the submitting tenant for per-client KV token
	// quotas (the API layer fills it from X-Client-ID, falling back to
	// the remote address). Empty means anonymous.
	Client string
	// Class is the request's SLO class ("interactive", "standard" or
	// "batch"; empty means standard). The overload layer keys admission
	// priority, limiter shares and brownout shedding on it, and the
	// cluster router's SLO-weighted policy steers on it. The API layer
	// fills it from the validated `priority` body field / X-SLO-Class
	// header; unrecognized values are treated as standard.
	Class string
	// Trace, when non-nil, receives the request's phase spans (queue
	// wait, batching, prefill, per-token decode, pricing) as the
	// scheduler moves it through the lane. The caller owns Finish.
	Trace *trace.Trace
	// Sink, when non-nil, receives one TokenEvent per output token as the
	// scheduler produces it — the transport feeding SSE streaming. It is
	// called from the lane goroutine and must not block (see TokenSink).
	Sink TokenSink
	// Prefix describes the prompt as hashable segments for the prefix
	// cache (internal/prefixcache): requests whose segment lists agree
	// share cached KV blocks and skip prefill for the matched prefix.
	// Empty means the request is unmatchable (and donates nothing).
	Prefix []prefixcache.Segment
	// CacheDisabled opts this request out of prefix-cache lookup and
	// donation (the API's "cache":{"enabled":false}).
	CacheDisabled bool
	// MinPrefixTokens discards cache matches shorter than this many
	// tokens (the API's "cache":{"min_prefix_tokens":N}).
	MinPrefixTokens int
	// SpecDisabled opts this request out of speculative decoding (the
	// API's "speculation":{"enabled":false}); its sequences commit one
	// token per cycle even when the lane speculates.
	SpecDisabled bool
	// SpecLookahead, when positive, caps the draft proposal length for
	// this request's sequences below the lane's adaptive k (the API's
	// "speculation":{"lookahead":N}). 0 means the lane default.
	SpecLookahead int
}

// Result reports one served request. Queue and wall times are measured
// in real time; TTFT/TPOT/E2E are the lane's virtual (modeled or
// engine-measured) service times, excluding queueing.
type Result struct {
	Lane             string  `json:"lane"`
	InputLen         int     `json:"input_len"`
	OutputLen        int     `json:"output_len"`
	QueueSeconds     float64 `json:"queue_s"`
	TTFTSeconds      float64 `json:"ttft_s"`
	TPOTSeconds      float64 `json:"tpot_s"`
	E2ESeconds       float64 `json:"e2e_s"`
	WallSeconds      float64 `json:"wall_s"`
	BatchAtAdmission int     `json:"batch_at_admission"`
	TokensPerSecond  float64 `json:"tokens_per_second"`
	// Degraded marks a request served (wholly or partly) by the lane's
	// fallback cost model because the primary was failing or its
	// breaker was open.
	Degraded bool `json:"degraded,omitempty"`
	// TraceID identifies the request's trace when one was recorded; its
	// full phase timeline is served by GET /v1/traces?id=.
	TraceID string `json:"trace_id,omitempty"`
	// FinishReason is set to "brownout" when the brownout ladder capped
	// this request's output length (batch class at LevelCapBatch and
	// above); the OpenAI-shaped endpoints surface it as finish_reason.
	FinishReason string `json:"finish_reason,omitempty"`

	// Cluster attribution, filled by the cluster router (internal/cluster)
	// when the request was served through a multi-replica front end; a
	// single-gateway deployment leaves them zero. Replica is the ID of the
	// replica that produced the result, Failovers counts dispatch attempts
	// beyond the first, and Hedged marks a result raced against (and won
	// over) a hedged duplicate.
	Replica   string `json:"replica,omitempty"`
	Failovers int    `json:"failovers,omitempty"`
	Hedged    bool   `json:"hedged,omitempty"`

	// Prefix-cache attribution. CachedTokens counts prompt tokens whose
	// KV was adopted from the lane's prefix cache (prefill skipped);
	// PrefillSavedSeconds is the prefill model-seconds the hit saved per
	// the platform cost model at the request's actual batch size.
	CachedTokens        int     `json:"cached_tokens"`
	PrefillSavedSeconds float64 `json:"prefill_saved_s,omitempty"`

	// Speculative-decoding attribution (spec.go), zero when the lane
	// never speculated for this request: SpecProposed/SpecAccepted count
	// draft-proposed tokens and those the verification kept, and
	// SpecPasses counts fused verification passes the request rode
	// (plain greedy decoding would need one pass per token). The API
	// layer surfaces them as the X-Speculation header and in the
	// terminal SSE event.
	SpecProposed int `json:"spec_proposed,omitempty"`
	SpecAccepted int `json:"spec_accepted,omitempty"`
	SpecPasses   int `json:"spec_passes,omitempty"`
}

// Resolver builds the cost model for a lane key on first use.
type Resolver func(lane string) (serve.CostModel, error)

// instruments is the gateway's metric set.
type instruments struct {
	admitted, rejected, canceled *metrics.Counter
	completed, failed, iters     *metrics.Counter
	queueDepth, inflight, lanes  *metrics.Gauge
	queueWait, ttft, tpot, e2e   *metrics.Histogram
	wall, batchSize              *metrics.Histogram

	// Streaming instruments (stream.go): wall-clock first-token latency,
	// inter-token latency, and tokens delivered to sinks.
	firstToken, itl *metrics.Histogram
	streamTokens    *metrics.Counter

	// Resilience instruments (supervisor.go, memory.go).
	panics, restarts, quarantines      *metrics.Counter
	watchdogTimeouts, requeued         *metrics.Counter
	preempted                          *metrics.Counter
	degraded, degradedIters            *metrics.Counter
	breakerOpened, breakerClosed       *metrics.Counter
	quarantinedLanes, breakerOpenLanes *metrics.Gauge

	// Prefix-cache instruments (memory.go, lane.go).
	cacheHits, cacheMisses *metrics.Counter
	cacheTokens            *metrics.Counter
	cacheSaved             *metrics.Histogram

	// Overload-control instruments (overload.go).
	classShed, deadlineEvicted, brownoutCapped *metrics.Counter

	// Speculative-decoding instruments (spec.go).
	specCycles, specProposed, specAccepted *metrics.Counter
	specSuspended                          *metrics.Counter
}

func newInstruments(r *metrics.Registry) instruments {
	lat := metrics.LatencyBuckets()
	return instruments{
		admitted:   r.Counter("gateway_admitted_total", "requests admitted to the queue"),
		rejected:   r.Counter("gateway_rejected_total", "requests rejected by admission control (429)"),
		canceled:   r.Counter("gateway_canceled_total", "requests canceled or expired before completion"),
		completed:  r.Counter("gateway_completed_total", "requests completed successfully"),
		failed:     r.Counter("gateway_failed_total", "requests failed in execution"),
		iters:      r.Counter("gateway_iterations_total", "scheduler iterations executed"),
		queueDepth: r.Gauge("gateway_queue_depth", "requests waiting for execution"),
		inflight:   r.Gauge("gateway_inflight", "sequences being decoded plus running unary jobs"),
		lanes:      r.Gauge("gateway_active_lanes", "lanes currently executing"),
		queueWait:  r.Histogram("gateway_queue_wait_seconds", "real time from submission to execution start", lat),
		ttft:       r.Histogram("gateway_ttft_seconds", "modeled time to first token", lat),
		tpot:       r.Histogram("gateway_tpot_seconds", "modeled time per output token", lat),
		e2e:        r.Histogram("gateway_e2e_seconds", "modeled request service time", lat),
		wall:       r.Histogram("gateway_wall_seconds", "real time from submission to completion", lat),
		batchSize:  r.Histogram("gateway_batch_size", "sequences per decode iteration", metrics.LinearBuckets(1, 1, 32)),

		// Token-level latencies need finer buckets than LatencyBuckets:
		// without a timescale an iteration is microseconds of wall time.
		firstToken:   r.Histogram("gateway_first_token_seconds", "real time from submission to first emitted token", metrics.ExponentialBuckets(1e-6, 2, 27)),
		itl:          r.Histogram("gateway_itl_seconds", "real time between consecutive emitted tokens (inter-token latency)", metrics.ExponentialBuckets(1e-6, 2, 27)),
		streamTokens: r.Counter("gateway_stream_tokens_total", "tokens delivered to per-request token sinks"),

		panics:           r.Counter("gateway_lane_panics_total", "lane worker panics recovered by the supervisor"),
		restarts:         r.Counter("gateway_lane_restarts_total", "lane restarts after recovered panics"),
		quarantines:      r.Counter("gateway_lane_quarantines_total", "lanes quarantined after repeated crashes"),
		watchdogTimeouts: r.Counter("gateway_watchdog_timeouts_total", "priced calls cancelled by the iteration watchdog"),
		requeued:         r.Counter("gateway_requeued_total", "requests requeued after a watchdog cancellation"),
		preempted:        r.Counter("gateway_preempted_total", "sequences preempted on KV exhaustion and requeued for recompute"),
		degraded:         r.Counter("gateway_degraded_total", "requests completed in degraded mode (fallback cost model)"),
		degradedIters:    r.Counter("gateway_degraded_iterations_total", "iterations priced by a fallback cost model"),
		breakerOpened:    r.Counter("gateway_breaker_opened_total", "lane circuit breakers tripped closed to open"),
		breakerClosed:    r.Counter("gateway_breaker_closed_total", "lane circuit breakers recovered to closed"),
		quarantinedLanes: r.Gauge("gateway_quarantined_lanes", "lanes currently quarantined"),
		breakerOpenLanes: r.Gauge("gateway_breaker_open_lanes", "lanes whose circuit breaker is open or half-open"),

		cacheHits:   r.Counter("gateway_cache_hits_total", "admissions whose prompt prefix was served from the KV prefix cache"),
		cacheMisses: r.Counter("gateway_cache_misses_total", "cache-eligible admissions that found no usable prefix"),
		cacheTokens: r.Counter("gateway_cache_cached_tokens_total", "prompt tokens served from the prefix cache instead of prefill"),
		cacheSaved:  r.Histogram("gateway_cache_prefill_saved_seconds", "prefill model-seconds saved per cache-hit request", lat),

		classShed:       r.Counter("gateway_class_shed_total", "requests shed class-ordered by overload control (queued victims evicted or batch refused under brownout)"),
		deadlineEvicted: r.Counter("gateway_deadline_evicted_total", "queued requests evicted at dequeue because their deadline could no longer be met"),
		brownoutCapped:  r.Counter("gateway_brownout_capped_total", "batch-class requests whose output length was capped by the brownout ladder"),

		specCycles:    r.Counter("gateway_spec_cycles_total", "speculative decode cycles executed (k draft steps + one fused verification pass)"),
		specProposed:  r.Counter("gateway_spec_proposed_total", "draft-proposed tokens across speculative cycles"),
		specAccepted:  r.Counter("gateway_spec_accepted_total", "draft-proposed tokens the verification pass accepted"),
		specSuspended: r.Counter("gateway_spec_suspended_total", "decode iterations where speculation was suspended (brownout rung, open breaker, or degraded pricing)"),
	}
}

// Gateway schedules requests onto batching lanes with admission control.
type Gateway struct {
	cfg     Config
	resolve Resolver
	inj     *faults.Injector
	gov     *govern.Governor
	ctl     *overload.Controller // nil when overload control is off
	tracer  *trace.Tracer
	log     *slog.Logger
	m       instruments

	slots chan struct{} // worker-pool tokens

	mu       sync.Mutex
	lanes    map[string]*lane
	waiting  int // jobs admitted but not yet executing (queue depth)
	draining bool
	// satSince anchors sustained queue saturation: set when the queue
	// reaches capacity, cleared when it drains below half (overload.go).
	satSince time.Time
	wg       sync.WaitGroup // lane goroutines and unary jobs

	// Drain-rate estimator feeding Retry-After hints (guarded by mu).
	retryAt        time.Time
	retryCompleted uint64
	retryRate      float64 // completions per second, smoothed
}

// New returns a gateway using resolve to build lane cost models.
func New(cfg Config, resolve Resolver) *Gateway {
	cfg = cfg.withDefaults()
	if cfg.Injector != nil {
		cfg.Injector.Instrument(cfg.Registry)
	}
	var ctl *overload.Controller
	if cfg.Overload != nil {
		oc := *cfg.Overload
		if oc.Registry == nil {
			oc.Registry = cfg.Registry
		}
		ctl = overload.New(oc)
	}
	return &Gateway{
		cfg:     cfg,
		resolve: resolve,
		inj:     cfg.Injector,
		gov:     cfg.Governor,
		ctl:     ctl,
		tracer:  cfg.Tracer,
		log:     cfg.Logger,
		m:       newInstruments(cfg.Registry),
		slots:   make(chan struct{}, cfg.Workers),
		lanes:   map[string]*lane{},
	}
}

// Registry exposes the gateway's metric registry (for /metrics).
func (g *Gateway) Registry() *metrics.Registry { return g.cfg.Registry }

// Tracer exposes the gateway's tracer; the API layer serves its retained
// records at /v1/traces and starts a trace per HTTP request against it.
func (g *Gateway) Tracer() *trace.Tracer { return g.tracer }

// Logger exposes the gateway's structured logger so the layers above log
// into the same stream.
func (g *Gateway) Logger() *slog.Logger { return g.log }

// Injector exposes the gateway's fault injector (nil when chaos is
// disabled); the API layer serves it at /v1/admin/faults.
func (g *Gateway) Injector() *faults.Injector { return g.inj }

// Governor exposes the gateway's KV-memory governor (nil when memory
// governance is disabled); the API layer serves its snapshot at /v1/kv.
func (g *Gateway) Governor() *govern.Governor { return g.gov }

// MemoryPressure reports whether the gateway should be steered around:
// any lane shedding above its KV high watermark, or the admission queue
// saturated for a sustained window. Feeds /readyz and the cluster
// router's shedding signal — a replica whose queue is wedged returning
// 429s is as unready as one out of KV, even though its pool is healthy.
func (g *Gateway) MemoryPressure() bool { return g.gov.Shedding() || g.Saturated() }

// CacheSnapshot exposes the governor's prefix-cache status (for
// GET /v1/cache). Disabled without a governor.
func (g *Gateway) CacheSnapshot() govern.CacheStatus { return g.gov.CacheSnapshot() }

// FlushCache drops every unpinned prefix-cache entry across lanes and
// returns the number of KV blocks released (POST /v1/admin/cache/flush).
func (g *Gateway) FlushCache() int { return g.gov.FlushCache() }

// Draining reports whether Shutdown has begun (for /readyz).
func (g *Gateway) Draining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// QueueDepth returns the number of requests waiting for execution.
func (g *Gateway) QueueDepth() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiting
}

// Generate submits one generation request and blocks until it completes,
// is rejected, or ctx is done. Rejections return ErrQueueFull or
// ErrDraining without blocking.
func (g *Gateway) Generate(ctx context.Context, req Request) (Result, error) {
	if req.InputLen < 1 || req.OutputLen < 1 {
		err := errors.New("gateway: input and output lengths must be positive")
		req.Trace.SetError(err)
		return Result{}, err
	}
	now := time.Now()
	// Without overload control every request is plain Standard: class
	// ordering, eviction and shedding all become no-ops and the gateway
	// behaves as the legacy class-blind FIFO (the overload-demo baseline).
	cls := overload.Standard
	if g.ctl != nil {
		cls = overload.ClassOf(req.Class)
	}
	j := &job{req: req, ctx: ctx, class: cls,
		submitted: now, lastMark: now, done: make(chan jobOutcome, 1)}
	req.Trace.SetLane(req.Lane)

	reject := func(err error) (Result, error) {
		g.m.rejected.Inc()
		req.Trace.Event("rejected", time.Now(), map[string]string{"reason": err.Error()})
		req.Trace.SetError(err)
		g.log.Debug("gateway: rejected", "lane", req.Lane, "trace_id", req.Trace.ID(), "err", err)
		return Result{}, err
	}

	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		return reject(ErrDraining)
	}
	// Overload control: sample pressure, advance the brownout ladder and
	// apply its class-ordered degradations before any queue or KV check.
	level, flush := g.overloadEvalLocked(now)
	if overload.ShedsClass(level, j.class) {
		g.noteSaturationLocked(now)
		g.mu.Unlock()
		g.runOverloadActions(flush)
		g.m.classShed.Inc()
		g.ctl.NoteShed(j.class)
		req.Trace.Event("overload", time.Now(), map[string]string{
			"action": "shed-batch", "level": fmt.Sprint(level)})
		return reject(fmt.Errorf("%w: brownout level %d sheds %s-class work",
			ErrClassShed, level, j.class))
	}
	if g.ctl != nil {
		if tokenCap := overload.CapFor(level, j.class, g.ctl.Config().BatchTokenCap); tokenCap > 0 && j.req.OutputLen > tokenCap {
			j.req.OutputLen = tokenCap
			j.brownout = true
			g.m.brownoutCapped.Inc()
			req.Trace.Event("overload", now, map[string]string{
				"action": "cap-batch-tokens", "level": fmt.Sprint(level),
				"max_tokens": fmt.Sprint(tokenCap)})
		}
	}
	if g.waiting >= g.cfg.MaxQueue {
		// Shedding drops the lowest class first: a full queue rejects
		// this request only if no strictly lower-priority job can be
		// evicted to make room — batch sheds before interactive ever
		// sees a rejection.
		if !g.evictLowerClassLocked(j.class, now) {
			g.noteSaturationLocked(now)
			g.mu.Unlock()
			g.runOverloadActions(flush)
			return reject(ErrQueueFull)
		}
	}
	l := g.lanes[req.Lane]
	if l != nil && !l.quarantinedUntil.IsZero() {
		if time.Now().Before(l.quarantinedUntil) {
			g.mu.Unlock()
			return reject(fmt.Errorf("%w: lane %s", ErrLaneQuarantined, req.Lane))
		}
		// Quarantine elapsed: let the lane try again with a clean slate.
		l.quarantinedUntil = time.Time{}
		g.m.quarantinedLanes.Dec()
		g.log.Info("gateway: quarantine lifted", "lane", req.Lane)
	}
	if l == nil {
		cost, err := g.resolve(req.Lane)
		if err != nil {
			g.mu.Unlock()
			return reject(err)
		}
		l = &lane{key: req.Lane, cost: cost}
		if g.cfg.Fallback != nil {
			if fb, err := g.cfg.Fallback(req.Lane); err == nil && fb != nil {
				l.fallback = fb
			}
		}
		g.initLaneSpec(l)
		g.lanes[req.Lane] = l
	}
	// Adaptive concurrency limiter: the front door closes ahead of the
	// KV watermark when observed TTFT busts per-class SLO targets, and
	// lower classes lose their share of the shrinking limit first.
	if !g.ctl.Acquire(j.class) {
		g.mu.Unlock()
		g.runOverloadActions(flush)
		req.Trace.Event("overload", time.Now(), map[string]string{
			"action": "concurrency-limited", "class": j.class.String()})
		return reject(fmt.Errorf("%w: %s class", ErrConcurrencyLimited, j.class))
	}
	// Memory governance: structural fit, client quota and watermark shed
	// checks, charging the client's quota on success. The lease follows
	// the job through every terminal path.
	lease, err := g.gov.Admit(req.Lane, req.Client, j.req.InputLen, j.req.OutputLen)
	if err != nil {
		g.mu.Unlock()
		g.ctl.Release(j.class)
		return reject(err)
	}
	j.lease = lease
	l.enqueueLocked(j)
	g.waiting++
	g.noteSaturationLocked(now)
	g.m.queueDepth.Inc()
	g.m.admitted.Inc()
	g.ensureRunningLocked(l)
	g.mu.Unlock()
	g.runOverloadActions(flush)

	select {
	case out := <-j.done:
		g.ctl.Release(j.class)
		if out.err != nil {
			req.Trace.SetError(out.err)
		} else if out.res.Degraded {
			req.Trace.SetDegraded()
		}
		return out.res, out.err
	case <-ctx.Done():
		// Still queued: pull the job out and free its KV blocks and quota
		// now rather than waiting for the lane's next admission scan.
		// Already executing: the lane evicts it (and releases the lease) at
		// the next iteration boundary.
		g.abandonQueued(j)
		g.ctl.Release(j.class)
		req.Trace.SetError(ctx.Err())
		return Result{}, ctx.Err()
	}
}

// Do runs a unary job (e.g. a one-shot simulation) under the gateway's
// admission control and worker pool. The queue wait and execution time
// feed the same histograms as generation traffic.
func (g *Gateway) Do(ctx context.Context, fn func(context.Context) error) error {
	tr := trace.FromContext(ctx)
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		g.m.rejected.Inc()
		tr.SetError(ErrDraining)
		return ErrDraining
	}
	if g.waiting >= g.cfg.MaxQueue {
		g.mu.Unlock()
		g.m.rejected.Inc()
		tr.SetError(ErrQueueFull)
		return ErrQueueFull
	}
	g.waiting++
	g.wg.Add(1)
	g.mu.Unlock()
	g.m.queueDepth.Inc()
	g.m.admitted.Inc()
	defer g.wg.Done()

	start := time.Now()
	release := func() {
		g.mu.Lock()
		g.waiting--
		g.mu.Unlock()
		g.m.queueDepth.Dec()
	}
	select {
	case g.slots <- struct{}{}:
	case <-ctx.Done():
		release()
		g.m.canceled.Inc()
		tr.SetError(ctx.Err())
		return ctx.Err()
	}
	release()
	defer func() { <-g.slots }()

	admit := time.Now()
	tr.Add(trace.SpanData{Name: trace.PhaseQueue, Start: start, End: admit})
	g.m.queueWait.Observe(admit.Sub(start).Seconds())
	g.m.inflight.Inc()
	defer g.m.inflight.Dec()
	err := fn(ctx)
	tr.Add(trace.SpanData{Name: trace.PhaseHandler, Start: admit, End: time.Now()})
	g.m.wall.Observe(time.Since(start).Seconds())
	switch {
	case err == nil:
		g.m.completed.Inc()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		g.m.canceled.Inc()
		tr.SetError(err)
	default:
		g.m.failed.Inc()
		tr.SetError(err)
	}
	return err
}

// ensureRunningLocked spawns the lane scheduler if idle. Callers hold g.mu.
func (g *Gateway) ensureRunningLocked(l *lane) {
	if l.active {
		return
	}
	l.active = true
	g.wg.Add(1)
	go g.runLane(l)
}

// Shutdown stops admission and waits for queued and in-flight requests
// to drain, or for ctx to expire. New submissions fail with ErrDraining;
// nothing already admitted is dropped.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.mu.Lock()
	g.draining = true
	g.mu.Unlock()
	done := make(chan struct{})
	go func() {
		g.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RetryAfterSeconds suggests how long a backpressured client should wait
// before retrying: the current queue depth divided by the recently
// observed drain rate, bounded to [1, 30] seconds. The rate is estimated
// from completion-counter deltas between calls and smoothed, so bursts
// of 429s during a spike all carry a hint that tracks the backlog.
func (g *Gateway) RetryAfterSeconds() int {
	now := time.Now()
	completed := g.m.completed.Value()
	g.mu.Lock()
	depth := g.waiting
	if g.retryAt.IsZero() {
		g.retryAt, g.retryCompleted = now, completed
	} else if dt := now.Sub(g.retryAt).Seconds(); dt >= 0.05 {
		inst := float64(completed-g.retryCompleted) / dt
		if g.retryRate == 0 {
			g.retryRate = inst
		} else {
			g.retryRate = 0.5*g.retryRate + 0.5*inst
		}
		g.retryAt, g.retryCompleted = now, completed
	}
	rate := g.retryRate
	g.mu.Unlock()
	return RetryAfterHint(depth, rate)
}

// RetryAfterHint converts a queue depth and a drain rate (completions
// per second) into a bounded Retry-After value in whole seconds.
func RetryAfterHint(depth int, drainPerSec float64) int {
	const maxRetryAfter = 30
	if depth <= 0 {
		return 1
	}
	if drainPerSec <= 0 {
		// No drain observed yet (cold start): scale modestly with the
		// backlog instead of guessing a rate.
		if est := 1 + depth/32; est < maxRetryAfter {
			return est
		}
		return maxRetryAfter
	}
	est := int(math.Ceil(float64(depth) / drainPerSec))
	if est < 1 {
		return 1
	}
	if est > maxRetryAfter {
		return maxRetryAfter
	}
	return est
}
