package gateway

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
)

// fakeCost prices iterations with fixed constants.
type fakeCost struct{ pre, dec float64 }

func (f fakeCost) PrefillCost(batch, in int) (float64, error) {
	return f.pre * float64(in) / 128, nil
}
func (f fakeCost) DecodeStepCost(batch, ctx int) (float64, error) { return f.dec, nil }

// gatedCost blocks prefills until the gate is closed or fed.
type gatedCost struct{ gate chan struct{} }

func (g gatedCost) PrefillCost(batch, in int) (float64, error) {
	<-g.gate
	return 0.01, nil
}
func (g gatedCost) DecodeStepCost(batch, ctx int) (float64, error) { return 0.001, nil }

func fixedResolver(c serve.CostModel) Resolver {
	return func(string) (serve.CostModel, error) { return c, nil }
}

// latchCost blocks the scheduler's first prefill until released, letting a
// test pile up a known backlog before any iteration runs.
type latchCost struct {
	fakeCost
	once  sync.Once
	ready chan struct{}
}

func (l *latchCost) PrefillCost(batch, in int) (float64, error) {
	l.once.Do(func() { <-l.ready })
	return l.fakeCost.PrefillCost(batch, in)
}

func TestGenerateCompletesConcurrentLoad(t *testing.T) {
	reg := metrics.NewRegistry()
	cost := &latchCost{fakeCost: fakeCost{pre: 0.010, dec: 0.001}, ready: make(chan struct{})}
	g := New(Config{MaxQueue: 256, MaxBatch: 8, Workers: 2, Registry: reg},
		fixedResolver(cost))

	const n = 64
	results := make([]Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = g.Generate(context.Background(),
				Request{Lane: "spr/OPT-13B", InputLen: 128, OutputLen: 8})
		}(i)
	}
	// Hold the scheduler on its first prefill until the backlog is real: at
	// most MaxBatch are admitted before the latch, so the queue must reach
	// n-MaxBatch. Releasing then guarantees multi-sequence decode batches.
	waitFor(t, func() bool { return g.QueueDepth() >= n-8 })
	close(cost.ready)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		r := results[i]
		if r.TTFTSeconds <= 0 || r.E2ESeconds < r.TTFTSeconds || r.TPOTSeconds <= 0 {
			t.Errorf("request %d: degenerate metrics %+v", i, r)
		}
		if r.BatchAtAdmission < 1 || r.BatchAtAdmission > 8 {
			t.Errorf("request %d: batch at admission %d", i, r.BatchAtAdmission)
		}
	}
	if got := g.Registry().Counter("gateway_completed_total", "").Value(); got != n {
		t.Errorf("completed counter %d, want %d", got, n)
	}
	if g.QueueDepth() != 0 {
		t.Errorf("queue depth %d after drain", g.QueueDepth())
	}
	if c := g.Registry().Histogram("gateway_ttft_seconds", "", nil).Count(); c != n {
		t.Errorf("ttft histogram count %d", c)
	}
	// Batching actually happened: with 64 arrivals and MaxBatch 8 the
	// decode batch-size histogram must have seen multi-sequence batches.
	bs := g.Registry().Histogram("gateway_batch_size", "", nil)
	if bs.Count() == 0 || bs.Quantile(1) < 2 {
		t.Errorf("no multi-sequence decode batches observed (count=%d max=%g)",
			bs.Count(), bs.Quantile(1))
	}
}

func TestBackpressureQueueFull(t *testing.T) {
	gate := make(chan struct{})
	g := New(Config{MaxQueue: 2, MaxBatch: 1, Workers: 1},
		fixedResolver(gatedCost{gate: gate}))

	errCh := make(chan error, 8)
	// First request is admitted and blocks inside the gated prefill.
	go func() {
		_, err := g.Generate(context.Background(), Request{Lane: "l", InputLen: 16, OutputLen: 2})
		errCh <- err
	}()
	waitFor(t, func() bool {
		return g.Registry().Gauge("gateway_inflight", "").Value() == 1
	})
	// Two more fill the bounded queue.
	for i := 0; i < 2; i++ {
		go func() {
			_, err := g.Generate(context.Background(), Request{Lane: "l", InputLen: 16, OutputLen: 2})
			errCh <- err
		}()
	}
	waitFor(t, func() bool { return g.QueueDepth() == 2 })
	// The next submission must be rejected immediately.
	if _, err := g.Generate(context.Background(), Request{Lane: "l", InputLen: 16, OutputLen: 2}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
	if got := g.Registry().Counter("gateway_rejected_total", "").Value(); got != 1 {
		t.Errorf("rejected counter %d, want 1", got)
	}
	close(gate) // release everything
	for i := 0; i < 3; i++ {
		if err := <-errCh; err != nil {
			t.Errorf("queued request failed: %v", err)
		}
	}
}

func TestQueuedCancellation(t *testing.T) {
	gate := make(chan struct{})
	g := New(Config{MaxQueue: 8, MaxBatch: 1, Workers: 1},
		fixedResolver(gatedCost{gate: gate}))

	first := make(chan error, 1)
	go func() {
		_, err := g.Generate(context.Background(), Request{Lane: "l", InputLen: 16, OutputLen: 2})
		first <- err
	}()
	waitFor(t, func() bool {
		return g.Registry().Gauge("gateway_inflight", "").Value() == 1
	})

	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() {
		_, err := g.Generate(ctx, Request{Lane: "l", InputLen: 16, OutputLen: 2})
		queued <- err
	}()
	waitFor(t, func() bool { return g.QueueDepth() == 1 })
	cancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled request returned %v", err)
	}
	close(gate)
	if err := <-first; err != nil {
		t.Fatalf("first request: %v", err)
	}
	waitFor(t, func() bool {
		return g.Registry().Counter("gateway_canceled_total", "").Value() == 1
	})
	if g.QueueDepth() != 0 {
		t.Errorf("queue depth %d after cancellation drain", g.QueueDepth())
	}
}

func TestDeadlineExpiryReturnsEarly(t *testing.T) {
	g := New(Config{MaxQueue: 4, MaxBatch: 1, Workers: 1, Timescale: 1},
		fixedResolver(fakeCost{pre: 0.05, dec: 0.05}))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := g.Generate(ctx, Request{Lane: "l", InputLen: 128, OutputLen: 64})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected deadline exceeded, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Errorf("deadline return took %v", time.Since(start))
	}
}

func TestShutdownDrains(t *testing.T) {
	g := New(Config{MaxQueue: 128, MaxBatch: 4, Workers: 2},
		fixedResolver(fakeCost{pre: 0.01, dec: 0.001}))

	const n = 24
	var completed, drained atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := g.Generate(context.Background(), Request{Lane: "l", InputLen: 64, OutputLen: 4})
			switch {
			case err == nil:
				completed.Add(1)
			case errors.Is(err, ErrDraining):
				drained.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	wg.Wait()
	if completed.Load()+drained.Load() != n {
		t.Fatalf("lost requests: %d completed + %d drain-rejected != %d",
			completed.Load(), drained.Load(), n)
	}
	if completed.Load() == 0 {
		t.Error("shutdown dropped every in-flight request")
	}
	// Post-drain submissions are rejected.
	if _, err := g.Generate(context.Background(), Request{Lane: "l", InputLen: 8, OutputLen: 2}); !errors.Is(err, ErrDraining) {
		t.Errorf("post-shutdown submit returned %v", err)
	}
}

func TestChunkedPolicy(t *testing.T) {
	g := New(Config{MaxQueue: 64, MaxBatch: 4, Workers: 1,
		Policy: Chunked, PrefillChunk: 32},
		fixedResolver(fakeCost{pre: 0.010, dec: 0.001}))
	var wg sync.WaitGroup
	errs := make([]error, 8)
	results := make([]Result, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = g.Generate(context.Background(),
				Request{Lane: "l", InputLen: 128, OutputLen: 4})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if results[i].TTFTSeconds <= 0 || results[i].E2ESeconds < results[i].TTFTSeconds {
			t.Errorf("request %d: %+v", i, results[i])
		}
	}
	if Policy(0).String() != "continuous" || Chunked.String() != "chunked" {
		t.Error("policy names")
	}
}

func TestResolverErrorRejects(t *testing.T) {
	g := New(Config{}, func(lane string) (serve.CostModel, error) {
		return nil, fmt.Errorf("no such lane %q", lane)
	})
	if _, err := g.Generate(context.Background(), Request{Lane: "x", InputLen: 1, OutputLen: 1}); err == nil {
		t.Fatal("expected resolver error")
	}
	if _, err := g.Generate(context.Background(), Request{Lane: "x", InputLen: 0, OutputLen: 1}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestUnaryDo(t *testing.T) {
	g := New(Config{MaxQueue: 4, Workers: 2}, nil)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := g.Do(context.Background(), func(context.Context) error {
				ran.Add(1)
				return nil
			})
			if err != nil && !errors.Is(err, ErrQueueFull) {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	wg.Wait()
	if ran.Load() == 0 {
		t.Fatal("no unary jobs ran")
	}
	if err := g.Do(context.Background(), func(context.Context) error {
		return errors.New("boom")
	}); err == nil {
		t.Fatal("expected propagated error")
	}
	if g.Registry().Counter("gateway_failed_total", "").Value() != 1 {
		t.Error("failed counter not incremented")
	}
}

func TestMetricsExposition(t *testing.T) {
	g := New(Config{}, fixedResolver(fakeCost{pre: 0.01, dec: 0.001}))
	if _, err := g.Generate(context.Background(), Request{Lane: "l", InputLen: 32, OutputLen: 4}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"gateway_admitted_total 1",
		"gateway_completed_total 1",
		"gateway_ttft_seconds_count 1",
		"gateway_queue_depth 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// waitFor polls cond for up to 5 s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}
