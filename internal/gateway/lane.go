package gateway

// lane.go is the per-lane scheduler: one goroutine per active lane runs
// iteration-level batching over the lane's cost model, mirroring the
// discrete-event policies in internal/serve but driven by live requests
// arriving over real channels. The lane owns a virtual clock advanced by
// each iteration's modeled cost; queue waits and wall times are measured
// against the real clock.
//
// The scheduler runs under a supervisor (runLane): a panic anywhere in
// the iteration loop fails only the in-flight requests with a typed
// PanicError, then the lane restarts with exponential backoff; a lane
// that keeps crashing is quarantined. Priced calls run under a watchdog
// and a circuit breaker (supervisor.go), so a wedged or failing cost
// model degrades onto the fallback model instead of stalling the lane.

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/govern"
	"repro/internal/overload"
	"repro/internal/trace"
)

// jobOutcome is what Generate receives back.
type jobOutcome struct {
	res Result
	err error
}

// job is one queued generation request.
type job struct {
	req       Request
	ctx       context.Context
	submitted time.Time
	done      chan jobOutcome

	// class is the request's parsed SLO class; it orders queue insertion
	// (interactive ahead of batch) and selects shedding victims under
	// brownout.
	class overload.Class
	// brownout records that admission clamped the request's output length
	// (the cap-batch-tokens rung); surfaced as finish_reason "brownout".
	brownout bool

	// Set at admission by the lane goroutine.
	admitWall time.Time
	admitV    float64
	batchAt   int
	// requeues counts watchdog cancellations and KV preemptions that sent
	// the job back to the queue.
	requeues int
	// lease is the job's KV-memory claim (nil when the gateway runs
	// without a governor). Reserved at lane admission, grown per decode
	// step under optimistic mode, and released exactly once at any
	// terminal outcome (lease methods are nil-safe and idempotent).
	lease *govern.Lease
	// lastMark is the trace-tiling cursor: the end of the job's previous
	// tiling span (queue/stalled). It starts at submission and is advanced
	// at admission and on requeue, so consecutive tiling spans share
	// boundaries and their durations sum to the job's gateway residence.
	lastMark time.Time
	// emitted is the token-delivery high-water mark: the count of token
	// indices already handed to the sink (and observed by the ITL
	// histograms). It survives requeues, so recomputed tokens are not
	// re-delivered (stream.go).
	emitted int
	// lastToken is when the job's most recent token was emitted.
	lastToken time.Time
	// cached counts prompt tokens adopted from the prefix cache at the
	// most recent admission (0 on a miss); saved is the prefill
	// model-seconds that adoption avoided, fixed at prefill pricing.
	cached int
	saved  float64
	// Speculative-decoding attribution (spec.go): draft tokens proposed
	// for this job, those verification accepted, and the fused passes it
	// rode. Job-level so they survive requeues, like emitted.
	specProposed int
	specAccepted int
	specPasses   int
}

// seq is one in-flight sequence being decoded.
type seq struct {
	j         *job
	ctxLen    int
	remaining int
	ttftV     float64
	// prefillDone tracks chunked-prefill progress in tokens.
	prefillDone int
	// produced counts tokens produced by this execution attempt; it
	// restarts at zero after a requeue while job.emitted does not, which
	// is how recomputed tokens are deduplicated (stream.go).
	produced int
	// degraded records that at least one of the sequence's iterations
	// was priced by the fallback cost model.
	degraded bool
	// mark continues the job's trace-tiling cursor through execution:
	// every prefill/decode span covers [mark, now) and advances it.
	mark time.Time
}

// lane is a batching stream for one (platform, model, config) key.
type lane struct {
	key      string
	cost     costModel
	fallback costModel // degraded-mode stand-in; nil when none exists

	// queue, active and quarantinedUntil are guarded by the gateway
	// mutex; the scheduler goroutine owns everything else.
	queue            []*job
	active           bool
	quarantinedUntil time.Time

	// Supervisor state, owned by the single runLane goroutine.
	running  []*seq
	pre      *seq // chunked-prefill slot
	br       breaker
	crashes  []time.Time
	restarts int

	// spec is the lane's speculative-decoding state (spec.go); nil when
	// the gateway or this lane's cost model doesn't support speculation.
	spec *laneSpec

	vclock float64
}

// enqueueLocked inserts j into the lane queue in class-priority order:
// ahead of any strictly lower class (batch yields to interactive) but
// behind equal-class work, preserving arrival order within a class.
// Watchdog/preemption requeues sit at the front with compute already
// paid for; the scan stops at them so a new arrival never jumps a
// requeued job regardless of class. Callers hold g.mu.
func (l *lane) enqueueLocked(j *job) {
	i := len(l.queue)
	for i > 0 && l.queue[i-1].class > j.class && l.queue[i-1].requeues == 0 {
		i--
	}
	l.queue = append(l.queue, nil)
	copy(l.queue[i+1:], l.queue[i:])
	l.queue[i] = j
}

// costModel is serve.CostModel, restated locally to keep the lane file
// self-describing.
type costModel interface {
	PrefillCost(batch, inputLen int) (float64, error)
	DecodeStepCost(batch, ctxLen int) (float64, error)
}

// runLane supervises the lane scheduler: it reruns laneSession until the
// lane parks cleanly, restarting after recovered panics with exponential
// backoff and quarantining the lane once crashes exceed the limit inside
// the crash window. It holds a worker-pool slot while executing.
func (g *Gateway) runLane(l *lane) {
	defer g.wg.Done()
	g.slots <- struct{}{}
	g.m.lanes.Inc()
	defer func() {
		g.m.lanes.Dec()
		<-g.slots
	}()

	for {
		if g.laneSession(l) {
			return // parked cleanly: queue and batch empty
		}
		// The session panicked and was recovered. Restart or quarantine.
		now := time.Now()
		l.crashes = append(l.crashes, now)
		cutoff := now.Add(-g.cfg.CrashWindow)
		kept := l.crashes[:0]
		for _, c := range l.crashes {
			if c.After(cutoff) {
				kept = append(kept, c)
			}
		}
		l.crashes = kept
		if len(l.crashes) >= g.cfg.CrashLimit {
			g.quarantineLane(l, now)
			return
		}
		g.m.restarts.Inc()
		backoff := g.cfg.RestartBackoff << l.restarts
		if backoff <= 0 || backoff > g.cfg.RestartBackoffMax {
			backoff = g.cfg.RestartBackoffMax
		}
		l.restarts++
		g.log.Warn("gateway: lane restarting after panic",
			"lane", l.key, "backoff", backoff, "recent_crashes", len(l.crashes))
		time.Sleep(backoff)
	}
}

// laneSession drains the lane until both its queue and batch are empty,
// then parks (returns true). A panic is recovered: the in-flight batch
// fails with a typed PanicError and the session reports a crash (returns
// false) so the supervisor can restart it. Queued jobs survive a crash.
func (g *Gateway) laneSession(l *lane) (parked bool) {
	defer func() {
		if r := recover(); r != nil {
			g.m.panics.Inc()
			g.failInflight(l, &PanicError{Lane: l.key, Value: r})
		}
	}()

	for {
		// Fault-injection site for worker crashes: a panic raised here is
		// indistinguishable from a scheduler bug to the supervisor.
		if err := g.inj.Apply(siteLane, l.key); err != nil {
			g.failInflight(l, err)
			continue
		}
		// Propagate standing mem-pressure rules into the lane's effective
		// pool before admitting; deleting the rule recovers here too.
		if g.gov != nil {
			g.gov.SetPressure(l.key, g.inj.Pressure(siteGovern, l.key))
		}

		// Admission: take waiting jobs into free slots, discarding any
		// whose context died while queued. Each admitted job reserves its
		// KV blocks first; a job the pool cannot hold right now stays
		// queued (memBlocked) until blocks free up or pressure lifts.
		g.mu.Lock()
		l.queue = g.dropCanceledLocked(l.queue)
		var admitted []*job
		memBlocked := false
		if g.cfg.Policy == Chunked {
			if l.pre == nil && len(l.running) < g.cfg.MaxBatch && len(l.queue) > 0 {
				if g.reserveAdmit(l.queue[0]) {
					admitted = append(admitted, l.queue[0])
					l.queue = l.queue[1:]
				} else {
					memBlocked = true
				}
			}
		} else {
			free := g.cfg.MaxBatch - len(l.running)
			for len(l.queue) > 0 && len(admitted) < free {
				if !g.reserveAdmit(l.queue[0]) {
					memBlocked = true
					break
				}
				admitted = append(admitted, l.queue[0])
				l.queue = l.queue[1:]
			}
		}
		if len(admitted) == 0 && len(l.running) == 0 && l.pre == nil && len(l.queue) == 0 {
			l.active = false
			l.restarts = 0
			g.mu.Unlock()
			return true
		}
		g.waiting -= len(admitted)
		g.noteSaturationLocked(time.Now())
		g.mu.Unlock()

		if len(admitted) == 0 && len(l.running) == 0 && l.pre == nil && memBlocked {
			// Everything is queued behind an exhausted (or pressure-shrunk)
			// pool with nothing running to free blocks. Back off briefly
			// instead of spinning; recovery comes from the pressure query
			// at the top of the loop or from client cancellations.
			time.Sleep(2 * time.Millisecond)
			continue
		}

		now := time.Now()
		for _, j := range admitted {
			g.m.queueDepth.Dec()
			j.admitWall = now
			j.admitV = l.vclock
			if tr := j.req.Trace; tr != nil {
				attrs := map[string]string{"lane": l.key}
				if j.requeues > 0 {
					attrs["requeues"] = strconv.Itoa(j.requeues)
				}
				tr.Add(trace.SpanData{Name: trace.PhaseQueue,
					Start: j.lastMark, End: now, Attrs: attrs})
			}
			j.lastMark = now
			g.m.queueWait.Observe(now.Sub(j.submitted).Seconds())
			g.m.inflight.Inc()
		}

		var iterCost float64
		var err error
		if g.cfg.Policy == Chunked {
			iterCost, err = g.chunkedIteration(l, admitted)
		} else {
			iterCost, err = g.continuousIteration(l, admitted)
		}
		if err != nil {
			if errors.Is(err, ErrWatchdogTimeout) {
				// The batch overran its deadline: cancel and requeue it
				// rather than losing or failing every request outright.
				g.requeueInflight(l, err)
				continue
			}
			// A broken cost model fails everything currently in the lane.
			g.failInflight(l, err)
			continue
		}
		if iterCost > 0 {
			g.m.iters.Inc()
			if g.cfg.Timescale > 0 {
				time.Sleep(time.Duration(iterCost * g.cfg.Timescale * float64(time.Second)))
			}
		}
	}
}

// dropCanceledLocked filters dead and deadline-unmeetable jobs out of a
// queue slice, maintaining the waiting count. A job whose context
// carries a deadline the limiter's modeled TTFT says can no longer be
// met is failed here with a typed error rather than burning prefill
// compute on a response the client will discard. Callers hold g.mu.
func (g *Gateway) dropCanceledLocked(queue []*job) []*job {
	now := time.Now()
	kept := queue[:0]
	for _, j := range queue {
		if j.ctx.Err() != nil {
			j.lease.Release()
			g.waiting--
			g.m.queueDepth.Dec()
			g.m.canceled.Inc()
			continue
		}
		if g.ctl != nil {
			if dl, ok := j.ctx.Deadline(); ok {
				if est := g.ctl.ExpectedTTFT(j.class); est > 0 && now.Add(est).After(dl) {
					g.waiting--
					g.m.queueDepth.Dec()
					g.m.deadlineEvicted.Inc()
					j.req.Trace.Event("overload", now, map[string]string{
						"action": "deadline-evict", "class": j.class.String(),
						"expected_ttft": est.String()})
					g.failQueuedJob(j, fmt.Errorf(
						"%w: modeled TTFT %v overruns the request deadline",
						ErrDeadlineUnmeetable, est.Round(time.Millisecond)))
					continue
				}
			}
		}
		kept = append(kept, j)
	}
	return kept
}

// continuousIteration runs one Orca-style iteration: a dedicated batched
// prefill when requests were admitted, otherwise one decode step for the
// whole running batch. Admitted jobs join l.running before pricing, so an
// error or panic mid-iteration fails (or requeues) them uniformly.
func (g *Gateway) continuousIteration(l *lane, admitted []*job) (float64, error) {
	if len(admitted) > 0 {
		iterStart := time.Now()
		maxIn := 0
		batch := len(l.running) + len(admitted)
		start := len(l.running)
		for _, j := range admitted {
			// Cache-hit prompts only prefill their uncached suffix; the
			// batched prefill is priced over the longest *effective*
			// prompt, which is where the cache's compute saving lands.
			if eff := j.req.InputLen - j.cached; eff > maxIn {
				maxIn = eff
			}
			j.batchAt = batch
			s := &seq{j: j, ctxLen: j.req.InputLen,
				remaining: j.req.OutputLen - 1, mark: j.lastMark}
			if tr := j.req.Trace; tr != nil {
				tr.Add(trace.SpanData{Name: trace.PhaseBatch,
					Start: s.mark, End: iterStart,
					Attrs: map[string]string{"batch": strconv.Itoa(batch)}})
				s.mark = iterStart
			}
			l.running = append(l.running, s)
		}
		cost, info, err := g.priceIteration(l, true, len(admitted), maxIn)
		if err != nil {
			return 0, err
		}
		l.vclock += cost
		now := time.Now()
		cnt := iterCounters(l.running[start:], info, true, len(admitted), maxIn)
		kept := l.running[:start]
		for _, s := range l.running[start:] {
			s.ttftV = l.vclock
			s.degraded = s.degraded || info.degraded
			g.iterSpans(s, trace.PhasePrefill, now, cost, info, cnt,
				map[string]string{
					"batch":     strconv.Itoa(len(admitted)),
					"input_len": strconv.Itoa(maxIn),
				})
			g.noteCacheHit(s.j, info.model, len(admitted), iterStart)
			g.donatePrefix(s.j)
			g.emitToken(l, s, batch, info.degraded, now)
			if s.remaining == 0 {
				g.completeSeq(l, s)
				continue
			}
			kept = append(kept, s)
		}
		l.running = kept
		return cost, nil
	}

	l.running = g.evictCanceled(l.running)
	g.growRunning(l)
	if len(l.running) == 0 {
		return 0, nil
	}
	maxCtx := 0
	for _, s := range l.running {
		if s.ctxLen > maxCtx {
			maxCtx = s.ctxLen
		}
	}
	batch := len(l.running)
	if l.spec != nil {
		if g.specSuspended(l, time.Now()) {
			g.m.specSuspended.Inc()
		} else if cost, ok, err := g.speculativeDecode(l, batch, maxCtx); ok || err != nil {
			return cost, err
		}
	}
	cost, info, err := g.priceIteration(l, false, batch, maxCtx)
	if err != nil {
		return 0, err
	}
	l.vclock += cost
	now := time.Now()
	cnt := iterCounters(l.running, info, false, batch, maxCtx)
	g.m.batchSize.Observe(float64(batch))
	kept := l.running[:0]
	for _, s := range l.running {
		s.ctxLen++
		s.remaining--
		s.degraded = s.degraded || info.degraded
		g.iterSpans(s, trace.PhaseDecode, now, cost, info, cnt,
			map[string]string{
				"token": strconv.Itoa(s.j.req.OutputLen - s.remaining),
				"batch": strconv.Itoa(batch),
				"ctx":   strconv.Itoa(s.ctxLen),
			})
		g.emitToken(l, s, batch, info.degraded, now)
		if s.remaining == 0 {
			g.completeSeq(l, s)
			continue
		}
		kept = append(kept, s)
	}
	l.running = kept
	return cost, nil
}

// chunkedIteration runs one Sarathi-style iteration: a decode step for
// the running batch coalesced with one prefill chunk of the admitting
// request.
func (g *Gateway) chunkedIteration(l *lane, admitted []*job) (float64, error) {
	if len(admitted) > 0 { // at most one under Chunked
		j := admitted[0]
		j.batchAt = len(l.running) + 1
		// prefillDone starts at the cached prefix: those chunks are
		// never priced, which is the chunked policy's cache saving.
		l.pre = &seq{j: j, remaining: j.req.OutputLen - 1,
			prefillDone: j.cached, mark: j.lastMark}
		if tr := j.req.Trace; tr != nil {
			now := time.Now()
			tr.Add(trace.SpanData{Name: trace.PhaseBatch,
				Start: l.pre.mark, End: now,
				Attrs: map[string]string{"batch": strconv.Itoa(j.batchAt)}})
			l.pre.mark = now
		}
	}
	l.running = g.evictCanceled(l.running)
	if l.pre != nil && l.pre.j.ctx.Err() != nil {
		l.pre.j.lease.Release()
		g.m.canceled.Inc()
		g.m.inflight.Dec()
		l.pre = nil
	}
	g.growRunning(l)
	if l.pre == nil && len(l.running) == 0 {
		return 0, nil
	}

	var iter, decodeCost float64
	var decodeInfo priceInfo
	var decodeCnt *trace.Counters
	batch := len(l.running)
	if batch > 0 {
		maxCtx := 0
		for _, s := range l.running {
			if s.ctxLen > maxCtx {
				maxCtx = s.ctxLen
			}
		}
		d, info, err := g.priceIteration(l, false, batch, maxCtx)
		if err != nil {
			return 0, err
		}
		iter += d
		decodeCost, decodeInfo = d, info
		decodeCnt = iterCounters(l.running, info, false, batch, maxCtx)
		g.m.batchSize.Observe(float64(batch))
	}
	if l.pre != nil {
		chunk := g.cfg.PrefillChunk
		if rem := l.pre.j.req.InputLen - l.pre.prefillDone; chunk > rem {
			chunk = rem
		}
		c, info, err := g.priceIteration(l, true, 1, chunk)
		if err != nil {
			return 0, err
		}
		iter += c
		l.pre.prefillDone += chunk
		l.pre.degraded = l.pre.degraded || info.degraded
		var cnt *trace.Counters
		if l.pre.j.req.Trace != nil {
			cnt = counterAnalogs(info.model, true, 1, chunk)
		}
		g.iterSpans(l.pre, trace.PhasePrefill, time.Now(), c, info, cnt,
			map[string]string{
				"chunk": strconv.Itoa(chunk),
				"done":  strconv.Itoa(l.pre.prefillDone),
			})
	}
	l.vclock += iter

	now := time.Now()
	kept := l.running[:0]
	for _, s := range l.running {
		s.ctxLen++
		s.remaining--
		s.degraded = s.degraded || decodeInfo.degraded
		g.iterSpans(s, trace.PhaseDecode, now, decodeCost, decodeInfo, decodeCnt,
			map[string]string{
				"token": strconv.Itoa(s.j.req.OutputLen - s.remaining),
				"batch": strconv.Itoa(batch),
				"ctx":   strconv.Itoa(s.ctxLen),
			})
		g.emitToken(l, s, batch, decodeInfo.degraded, now)
		if s.remaining == 0 {
			g.completeSeq(l, s)
			continue
		}
		kept = append(kept, s)
	}
	l.running = kept

	if l.pre != nil && l.pre.prefillDone >= l.pre.j.req.InputLen {
		g.noteCacheHit(l.pre.j, l.cost, 1, now)
		g.donatePrefix(l.pre.j)
		l.pre.ctxLen = l.pre.j.req.InputLen
		l.pre.ttftV = l.vclock
		g.emitToken(l, l.pre, len(l.running)+1, l.pre.degraded, now)
		if l.pre.remaining == 0 {
			g.completeSeq(l, l.pre)
		} else {
			l.running = append(l.running, l.pre)
		}
		l.pre = nil
	}
	return iter, nil
}

// evictCanceled removes sequences whose request context died mid-flight.
func (g *Gateway) evictCanceled(running []*seq) []*seq {
	kept := running[:0]
	for _, s := range running {
		if s.j.ctx.Err() != nil {
			s.j.lease.Release()
			g.m.canceled.Inc()
			g.m.inflight.Dec()
			continue
		}
		kept = append(kept, s)
	}
	return kept
}

// completeSeq delivers a finished sequence's result and records metrics.
func (g *Gateway) completeSeq(l *lane, s *seq) {
	j := s.j
	e2e := l.vclock - j.admitV
	ttft := s.ttftV - j.admitV
	var tpot float64
	if steps := j.req.OutputLen - 1; steps > 0 {
		tpot = (l.vclock - s.ttftV) / float64(steps)
	}
	res := Result{
		Lane:             j.req.Lane,
		InputLen:         j.req.InputLen,
		OutputLen:        j.req.OutputLen,
		CachedTokens:     j.cached,
		QueueSeconds:     j.admitWall.Sub(j.submitted).Seconds(),
		TTFTSeconds:      ttft,
		TPOTSeconds:      tpot,
		E2ESeconds:       e2e,
		WallSeconds:      time.Since(j.submitted).Seconds(),
		BatchAtAdmission: j.batchAt,
		Degraded:         s.degraded,
		TraceID:          j.req.Trace.ID(),
	}
	if e2e > 0 {
		res.TokensPerSecond = float64(j.req.OutputLen) / e2e
	}
	res.PrefillSavedSeconds = j.saved
	res.SpecProposed = j.specProposed
	res.SpecAccepted = j.specAccepted
	res.SpecPasses = j.specPasses
	if j.brownout {
		res.FinishReason = "brownout"
	}
	g.m.ttft.Observe(ttft)
	if tpot > 0 {
		g.m.tpot.Observe(tpot)
	}
	g.m.e2e.Observe(e2e)
	g.m.wall.Observe(res.WallSeconds)
	g.m.completed.Inc()
	if s.degraded {
		g.m.degraded.Inc()
	}
	g.m.inflight.Dec()
	j.lease.Release()
	j.done <- jobOutcome{res: res}
}

// failSeq reports an execution error for an in-flight sequence.
func (g *Gateway) failSeq(s *seq, err error) {
	g.failJob(s.j, err)
}

// failJob reports an execution error for a job that was already admitted.
func (g *Gateway) failJob(j *job, err error) {
	g.m.failed.Inc()
	g.m.inflight.Dec()
	j.lease.Release()
	j.done <- jobOutcome{err: err}
}

// iterSpans records one sequence's participation in a priced iteration:
// an overlapping pricing span (the wall time spent inside the cost model
// or engine) and the tiling prefill/decode span covering the sequence's
// wall time since its previous tiling span. The sequence's tiling mark
// advances to end, so consecutive spans stay contiguous and their
// durations sum to the request's gateway residence.
func (g *Gateway) iterSpans(s *seq, phase string, end time.Time, cost float64,
	info priceInfo, cnt *trace.Counters, attrs map[string]string) {
	tr := s.j.req.Trace
	if tr == nil {
		return
	}
	pattrs := map[string]string{"site": info.site}
	if info.degraded {
		pattrs["degraded"] = "true"
		attrs["degraded"] = "true"
	}
	tr.Add(trace.SpanData{Name: trace.PhasePricing,
		Start: info.start, End: info.end, ModelSeconds: cost, Attrs: pattrs})
	tr.Add(trace.SpanData{Name: phase,
		Start: s.mark, End: end, ModelSeconds: cost, Attrs: attrs, Counters: cnt})
	s.mark = end
}

// iterCounters derives the counter analogs for one priced iteration, once,
// when at least one participating sequence is being traced. The lookup
// shares the cost model's pricing memo, so it never re-simulates.
func iterCounters(parts []*seq, info priceInfo, prefill bool, batch, length int) *trace.Counters {
	for _, s := range parts {
		if s.j.req.Trace != nil {
			return counterAnalogs(info.model, prefill, batch, length)
		}
	}
	return nil
}
