package gateway

// lane.go is the per-lane scheduler: one goroutine per active lane runs
// iteration-level batching over the lane's cost model, mirroring the
// discrete-event policies in internal/serve but driven by live requests
// arriving over real channels. The lane owns a virtual clock advanced by
// each iteration's modeled cost; queue waits and wall times are measured
// against the real clock.

import (
	"context"
	"time"
)

// jobOutcome is what Generate receives back.
type jobOutcome struct {
	res Result
	err error
}

// job is one queued generation request.
type job struct {
	req       Request
	ctx       context.Context
	submitted time.Time
	done      chan jobOutcome

	// Set at admission by the lane goroutine.
	admitWall time.Time
	admitV    float64
	batchAt   int
}

// seq is one in-flight sequence being decoded.
type seq struct {
	j         *job
	ctxLen    int
	remaining int
	ttftV     float64
	// prefillDone tracks chunked-prefill progress in tokens.
	prefillDone int
}

// lane is a batching stream for one (platform, model, config) key.
type lane struct {
	key  string
	cost costModel

	// queue and active are guarded by the gateway mutex; the scheduler
	// goroutine owns everything else.
	queue  []*job
	active bool

	vclock float64
}

// costModel is serve.CostModel, restated locally to keep the lane file
// self-describing.
type costModel interface {
	PrefillCost(batch, inputLen int) (float64, error)
	DecodeStepCost(batch, ctxLen int) (float64, error)
}

// runLane drains the lane until both its queue and batch are empty, then
// parks. It holds a worker-pool slot while executing.
func (g *Gateway) runLane(l *lane) {
	defer g.wg.Done()
	g.slots <- struct{}{}
	g.m.lanes.Inc()
	defer func() {
		g.m.lanes.Dec()
		<-g.slots
	}()

	var running []*seq
	var pre *seq // chunked-prefill slot

	for {
		// Admission: take waiting jobs into free slots, discarding any
		// whose context died while queued.
		g.mu.Lock()
		l.queue = g.dropCanceledLocked(l.queue)
		var admitted []*job
		if g.cfg.Policy == Chunked {
			if pre == nil && len(running) < g.cfg.MaxBatch && len(l.queue) > 0 {
				admitted = append(admitted, l.queue[0])
				l.queue = l.queue[1:]
			}
		} else {
			free := g.cfg.MaxBatch - len(running)
			for len(l.queue) > 0 && len(admitted) < free {
				admitted = append(admitted, l.queue[0])
				l.queue = l.queue[1:]
			}
		}
		if len(admitted) == 0 && len(running) == 0 && pre == nil && len(l.queue) == 0 {
			l.active = false
			g.mu.Unlock()
			return
		}
		g.waiting -= len(admitted)
		g.mu.Unlock()

		now := time.Now()
		for _, j := range admitted {
			g.m.queueDepth.Dec()
			j.admitWall = now
			j.admitV = l.vclock
			g.m.queueWait.Observe(now.Sub(j.submitted).Seconds())
			g.m.inflight.Inc()
		}

		var iterCost float64
		var err error
		if g.cfg.Policy == Chunked {
			pre, running, iterCost, err = g.chunkedIteration(l, pre, admitted, running)
		} else {
			running, iterCost, err = g.continuousIteration(l, admitted, running)
		}
		if err != nil {
			// A broken cost model fails everything currently in the lane.
			for _, s := range running {
				g.failSeq(s, err)
			}
			running = running[:0]
			if pre != nil {
				g.failSeq(pre, err)
				pre = nil
			}
			continue
		}
		if iterCost > 0 {
			g.m.iters.Inc()
			if g.cfg.Timescale > 0 {
				time.Sleep(time.Duration(iterCost * g.cfg.Timescale * float64(time.Second)))
			}
		}
	}
}

// dropCanceledLocked filters dead jobs out of a queue slice, maintaining
// the waiting count. Callers hold g.mu.
func (g *Gateway) dropCanceledLocked(queue []*job) []*job {
	kept := queue[:0]
	for _, j := range queue {
		if j.ctx.Err() != nil {
			g.waiting--
			g.m.queueDepth.Dec()
			g.m.canceled.Inc()
			continue
		}
		kept = append(kept, j)
	}
	return kept
}

// continuousIteration runs one Orca-style iteration: a dedicated batched
// prefill when requests were admitted, otherwise one decode step for the
// whole running batch.
func (g *Gateway) continuousIteration(l *lane, admitted []*job, running []*seq) ([]*seq, float64, error) {
	if len(admitted) > 0 {
		maxIn := 0
		for _, j := range admitted {
			if j.req.InputLen > maxIn {
				maxIn = j.req.InputLen
			}
		}
		cost, err := g.lanePrefill(l, len(admitted), maxIn)
		if err != nil {
			for _, j := range admitted {
				g.failJob(j, err)
			}
			return running, 0, err
		}
		batch := len(running) + len(admitted)
		for _, j := range admitted {
			j.batchAt = batch
			s := &seq{j: j, ctxLen: j.req.InputLen,
				remaining: j.req.OutputLen - 1, ttftV: l.vclock}
			if s.remaining == 0 {
				g.completeSeq(l, s)
				continue
			}
			running = append(running, s)
		}
		return running, cost, nil
	}

	running = g.evictCanceled(running)
	if len(running) == 0 {
		return running, 0, nil
	}
	maxCtx := 0
	for _, s := range running {
		if s.ctxLen > maxCtx {
			maxCtx = s.ctxLen
		}
	}
	cost, err := g.laneDecode(l, len(running), maxCtx)
	if err != nil {
		return running, 0, err
	}
	g.m.batchSize.Observe(float64(len(running)))
	kept := running[:0]
	for _, s := range running {
		s.ctxLen++
		s.remaining--
		if s.remaining == 0 {
			g.completeSeq(l, s)
			continue
		}
		kept = append(kept, s)
	}
	return kept, cost, nil
}

// chunkedIteration runs one Sarathi-style iteration: a decode step for
// the running batch coalesced with one prefill chunk of the admitting
// request.
func (g *Gateway) chunkedIteration(l *lane, pre *seq, admitted []*job, running []*seq) (*seq, []*seq, float64, error) {
	if len(admitted) > 0 { // at most one under Chunked
		j := admitted[0]
		j.batchAt = len(running) + 1
		pre = &seq{j: j, remaining: j.req.OutputLen - 1}
	}
	running = g.evictCanceled(running)
	if pre != nil && pre.j.ctx.Err() != nil {
		g.m.canceled.Inc()
		g.m.inflight.Dec()
		pre = nil
	}
	if pre == nil && len(running) == 0 {
		return nil, running, 0, nil
	}

	var iter float64
	if len(running) > 0 {
		maxCtx := 0
		for _, s := range running {
			if s.ctxLen > maxCtx {
				maxCtx = s.ctxLen
			}
		}
		d, err := g.laneDecode(l, len(running), maxCtx)
		if err != nil {
			return pre, running, 0, err
		}
		iter += d
		g.m.batchSize.Observe(float64(len(running)))
	}
	if pre != nil {
		chunk := g.cfg.PrefillChunk
		if rem := pre.j.req.InputLen - pre.prefillDone; chunk > rem {
			chunk = rem
		}
		c, err := l.cost.PrefillCost(1, chunk)
		if err != nil {
			return pre, running, 0, err
		}
		iter += c
		pre.prefillDone += chunk
	}
	l.vclock += iter

	kept := running[:0]
	for _, s := range running {
		s.ctxLen++
		s.remaining--
		if s.remaining == 0 {
			g.completeSeq(l, s)
			continue
		}
		kept = append(kept, s)
	}
	running = kept

	if pre != nil && pre.prefillDone >= pre.j.req.InputLen {
		pre.ctxLen = pre.j.req.InputLen
		pre.ttftV = l.vclock
		if pre.remaining == 0 {
			g.completeSeq(l, pre)
		} else {
			running = append(running, pre)
		}
		pre = nil
	}
	return pre, running, iter, nil
}

// lanePrefill prices a batched prefill and advances the virtual clock.
func (g *Gateway) lanePrefill(l *lane, batch, maxIn int) (float64, error) {
	c, err := l.cost.PrefillCost(batch, maxIn)
	if err != nil {
		return 0, err
	}
	l.vclock += c
	return c, nil
}

// laneDecode prices one decode step; continuous iterations advance the
// clock here, chunked ones accumulate into the iteration total first.
func (g *Gateway) laneDecode(l *lane, batch, maxCtx int) (float64, error) {
	c, err := l.cost.DecodeStepCost(batch, maxCtx)
	if err != nil {
		return 0, err
	}
	if g.cfg.Policy != Chunked {
		l.vclock += c
	}
	return c, nil
}

// evictCanceled removes sequences whose request context died mid-flight.
func (g *Gateway) evictCanceled(running []*seq) []*seq {
	kept := running[:0]
	for _, s := range running {
		if s.j.ctx.Err() != nil {
			g.m.canceled.Inc()
			g.m.inflight.Dec()
			continue
		}
		kept = append(kept, s)
	}
	return kept
}

// completeSeq delivers a finished sequence's result and records metrics.
func (g *Gateway) completeSeq(l *lane, s *seq) {
	j := s.j
	e2e := l.vclock - j.admitV
	ttft := s.ttftV - j.admitV
	var tpot float64
	if steps := j.req.OutputLen - 1; steps > 0 {
		tpot = (l.vclock - s.ttftV) / float64(steps)
	}
	res := Result{
		Lane:             j.req.Lane,
		InputLen:         j.req.InputLen,
		OutputLen:        j.req.OutputLen,
		QueueSeconds:     j.admitWall.Sub(j.submitted).Seconds(),
		TTFTSeconds:      ttft,
		TPOTSeconds:      tpot,
		E2ESeconds:       e2e,
		WallSeconds:      time.Since(j.submitted).Seconds(),
		BatchAtAdmission: j.batchAt,
	}
	if e2e > 0 {
		res.TokensPerSecond = float64(j.req.OutputLen) / e2e
	}
	g.m.ttft.Observe(ttft)
	if tpot > 0 {
		g.m.tpot.Observe(tpot)
	}
	g.m.e2e.Observe(e2e)
	g.m.wall.Observe(res.WallSeconds)
	g.m.completed.Inc()
	g.m.inflight.Dec()
	j.done <- jobOutcome{res: res}
}

// failSeq reports an execution error for an in-flight sequence.
func (g *Gateway) failSeq(s *seq, err error) {
	g.failJob(s.j, err)
}

// failJob reports an execution error for a job that was already admitted.
func (g *Gateway) failJob(j *job, err error) {
	g.m.failed.Inc()
	g.m.inflight.Dec()
	j.done <- jobOutcome{err: err}
}
