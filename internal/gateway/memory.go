package gateway

// memory.go is the lane scheduler's side of KV-memory governance
// (internal/govern): block reservation at admission, per-token growth
// under optimistic admission, and preemption-by-recompute when the
// lane's pool runs out — the live counterpart of serve/preempt.go's
// runOptimistic. Everything here is a no-op when the gateway runs
// without a governor (every lease is nil).

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/govern"
	"repro/internal/trace"
)

// reserveAdmit reserves the KV blocks a job needs to enter execution:
// its full context under conservative admission, its prompt under
// optimistic admission. False means the pool cannot hold the job right
// now and it must stay queued. Callers hold g.mu (the lease locks the
// governor and pool below it; see the lock order in govern).
func (g *Gateway) reserveAdmit(j *job) bool {
	if j.lease == nil {
		return true
	}
	tokens := g.gov.AdmitTokens(j.req.InputLen, j.req.OutputLen)
	j.cached = 0
	if j.req.CacheDisabled || !g.gov.CacheEnabled() || len(j.req.Prefix) == 0 {
		return j.lease.Reserve(tokens) == nil
	}
	start := time.Now()
	cached, err := j.lease.ReserveWithPrefix(j.req.Prefix, tokens,
		j.req.InputLen, j.req.MinPrefixTokens)
	if tr := j.req.Trace; tr != nil {
		attrs := map[string]string{"result": "miss"}
		if cached > 0 {
			attrs["result"] = "hit"
			attrs["cached_tokens"] = strconv.Itoa(cached)
		}
		tr.Add(trace.SpanData{Name: trace.PhaseCacheLookup,
			Start: start, End: time.Now(), Attrs: attrs})
	}
	if err != nil {
		return false
	}
	j.cached = cached
	if cached > 0 {
		g.m.cacheHits.Inc()
		g.m.cacheTokens.Add(uint64(cached))
	} else {
		g.m.cacheMisses.Inc()
	}
	return true
}

// noteCacheHit fixes a cache-hit job's prefill saving once its (possibly
// shortened) prefill has been priced: the saving is the cost-model delta
// between prefilling the full prompt and the uncached suffix at the
// iteration's batch size, recorded on the trace as a cache_hit marker
// span and observed by the saved-seconds histogram. Misses are no-ops.
func (g *Gateway) noteCacheHit(j *job, m costModel, batch int, at time.Time) {
	if j.cached <= 0 {
		return
	}
	j.saved = estimateSaved(m, batch, j.req.InputLen, j.cached)
	g.m.cacheSaved.Observe(j.saved)
	if tr := j.req.Trace; tr != nil {
		tr.Add(trace.SpanData{Name: trace.PhaseCacheHit,
			Start: at, End: at, ModelSeconds: j.saved,
			Attrs: map[string]string{
				"cached_tokens": strconv.Itoa(j.cached),
				"saved_s":       strconv.FormatFloat(j.saved, 'g', 6, 64),
			}})
	}
}

// estimateSaved prices the prefill compute a cache hit avoided: the
// platform cost model's full-prompt prefill minus the uncached-suffix
// prefill, at the iteration's batch size. Both calls ride the model's
// pricing memo. Best-effort: a failing model yields 0, never an error.
func estimateSaved(m costModel, batch, fullIn, cached int) float64 {
	if cached <= 0 || m == nil {
		return 0
	}
	full, err1 := m.PrefillCost(batch, fullIn)
	eff, err2 := m.PrefillCost(batch, fullIn-cached)
	if err1 != nil || err2 != nil || eff >= full {
		return 0
	}
	return full - eff
}

// donatePrefix offers a just-prefilled job's prompt blocks to its lane's
// prefix cache so later requests sharing the prefix skip that compute.
// Opted-out and unmatchable requests donate nothing.
func (g *Gateway) donatePrefix(j *job) {
	if j.req.CacheDisabled || len(j.req.Prefix) == 0 {
		return
	}
	j.lease.DonatePrefix(j.req.Prefix)
}

// growRunning extends every running sequence's reservation by the one
// token the upcoming decode step appends (optimistic admission only —
// conservative reservations already cover the full context). When the
// pool cannot supply a block, the youngest sequence — the last admitted,
// which has the least progress to lose — is preempted back to the queue
// and the remaining batch retries, exactly vLLM's recompute policy as
// modeled by serve/preempt.go.
func (g *Gateway) growRunning(l *lane) {
	if g.gov == nil || g.gov.Conservative() || len(l.running) == 0 {
		return
	}
	grew := make([]bool, len(l.running))
	for len(l.running) > 0 {
		ok := true
		for i, s := range l.running {
			if grew[i] {
				continue
			}
			if err := s.j.lease.Grow(1); err != nil {
				ok = false
				break
			}
			grew[i] = true
		}
		if ok {
			return
		}
		victim := l.running[len(l.running)-1]
		l.running = l.running[:len(l.running)-1]
		grew = grew[:len(l.running)]
		g.preemptSeq(l, victim)
	}
}

// preemptSeq evicts one sequence on KV exhaustion: its blocks return to
// the pool, its execution so far tiles into a preempted span, and the job
// goes back to the front of the queue to recompute from prefill — unless
// its requeue budget is spent, in which case it fails with
// govern.ErrKVExhausted (HTTP 503 + Retry-After).
func (g *Gateway) preemptSeq(l *lane, s *seq) {
	j := s.j
	now := time.Now()
	if tr := j.req.Trace; tr != nil {
		tr.Add(trace.SpanData{Name: trace.PhasePreempted,
			Start: s.mark, End: now,
			Attrs: map[string]string{"cause": "kv pool exhausted"}})
	}
	j.lease.Preempt()
	if j.requeues >= g.cfg.MaxRequeues {
		g.failSeq(s, fmt.Errorf("%w: lane %s", govern.ErrKVExhausted, l.key))
		return
	}
	j.requeues++
	j.lastMark = now
	g.m.inflight.Dec()
	g.m.preempted.Inc()
	g.log.Warn("gateway: KV preemption",
		"lane", l.key, "trace_id", j.req.Trace.ID(), "requeues", j.requeues)
	g.mu.Lock()
	l.queue = append([]*job{j}, l.queue...)
	g.waiting++
	g.mu.Unlock()
	g.m.queueDepth.Inc()
}
