package gateway

// memory.go is the lane scheduler's side of KV-memory governance
// (internal/govern): block reservation at admission, per-token growth
// under optimistic admission, and preemption-by-recompute when the
// lane's pool runs out — the live counterpart of serve/preempt.go's
// runOptimistic. Everything here is a no-op when the gateway runs
// without a governor (every lease is nil).

import (
	"fmt"
	"time"

	"repro/internal/govern"
	"repro/internal/trace"
)

// reserveAdmit reserves the KV blocks a job needs to enter execution:
// its full context under conservative admission, its prompt under
// optimistic admission. False means the pool cannot hold the job right
// now and it must stay queued. Callers hold g.mu (the lease locks the
// governor and pool below it; see the lock order in govern).
func (g *Gateway) reserveAdmit(j *job) bool {
	if j.lease == nil {
		return true
	}
	return j.lease.Reserve(g.gov.AdmitTokens(j.req.InputLen, j.req.OutputLen)) == nil
}

// growRunning extends every running sequence's reservation by the one
// token the upcoming decode step appends (optimistic admission only —
// conservative reservations already cover the full context). When the
// pool cannot supply a block, the youngest sequence — the last admitted,
// which has the least progress to lose — is preempted back to the queue
// and the remaining batch retries, exactly vLLM's recompute policy as
// modeled by serve/preempt.go.
func (g *Gateway) growRunning(l *lane) {
	if g.gov == nil || g.gov.Conservative() || len(l.running) == 0 {
		return
	}
	grew := make([]bool, len(l.running))
	for len(l.running) > 0 {
		ok := true
		for i, s := range l.running {
			if grew[i] {
				continue
			}
			if err := s.j.lease.Grow(1); err != nil {
				ok = false
				break
			}
			grew[i] = true
		}
		if ok {
			return
		}
		victim := l.running[len(l.running)-1]
		l.running = l.running[:len(l.running)-1]
		grew = grew[:len(l.running)]
		g.preemptSeq(l, victim)
	}
}

// preemptSeq evicts one sequence on KV exhaustion: its blocks return to
// the pool, its execution so far tiles into a preempted span, and the job
// goes back to the front of the queue to recompute from prefill — unless
// its requeue budget is spent, in which case it fails with
// govern.ErrKVExhausted (HTTP 503 + Retry-After).
func (g *Gateway) preemptSeq(l *lane, s *seq) {
	j := s.j
	now := time.Now()
	if tr := j.req.Trace; tr != nil {
		tr.Add(trace.SpanData{Name: trace.PhasePreempted,
			Start: s.mark, End: now,
			Attrs: map[string]string{"cause": "kv pool exhausted"}})
	}
	j.lease.Preempt()
	if j.requeues >= g.cfg.MaxRequeues {
		g.failSeq(s, fmt.Errorf("%w: lane %s", govern.ErrKVExhausted, l.key))
		return
	}
	j.requeues++
	j.lastMark = now
	g.m.inflight.Dec()
	g.m.preempted.Inc()
	g.log.Warn("gateway: KV preemption",
		"lane", l.key, "trace_id", j.req.Trace.ID(), "requeues", j.requeues)
	g.mu.Lock()
	l.queue = append([]*job{j}, l.queue...)
	g.waiting++
	g.mu.Unlock()
	g.m.queueDepth.Inc()
}
