package gateway

// memory_test.go covers KV-memory governance on the live serving path:
// preemption-by-recompute with trace tiling, watermark shedding and
// recovery under an injected mem-pressure fault, per-client quotas, and
// conservative admission never preempting.

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/govern"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// memGovernor builds a governor whose every lane holds exactly blocks
// 16-token blocks of the tiny OPT shape.
func memGovernor(t *testing.T, reg *metrics.Registry, blocks int, mut func(*govern.Config)) *govern.Governor {
	t.Helper()
	m := model.Tiny(model.OPT)
	per := m.KVBytesPerTokenPerLayer(tensor.BF16) * int64(m.Layers) * 16
	cfg := govern.Config{
		Registry: reg,
		Specs: func(lane string) (govern.PoolSpec, error) {
			return govern.PoolSpec{Model: m, DType: tensor.BF16, BlockSize: 16,
				BudgetBytes: per * int64(blocks)}, nil
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	return govern.New(cfg)
}

// TestKVPreemptionTraceTiling forces preemption with a pool too small for
// the concurrent batch and asserts the contract the tracing layer
// promises: preempted requests still complete, their traces carry a
// preempted span, and the tiling spans (queue, batch, prefill, decode,
// preempted) still sum to the measured latency within 5%.
func TestKVPreemptionTraceTiling(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := trace.New(trace.Config{SampleRate: 1, Registry: reg})
	// 64-token prompts prefill into exactly 4 blocks, so the first decode
	// token of each sequence needs a 5th; 13 blocks admit three prefills
	// but leave only one spare, forcing the youngest sequence out and
	// back through the queue.
	gov := memGovernor(t, reg, 13, nil)
	g := New(Config{MaxQueue: 64, MaxBatch: 4, Workers: 1, Timescale: 1,
		MaxRequeues: 100, Registry: reg, Tracer: tr, Governor: gov},
		fixedResolver(fakeCost{pre: 0.040, dec: 0.006}))
	defer g.Shutdown(context.Background())

	const n = 3
	var wg sync.WaitGroup
	ids := make([]string, n)
	walls := make([]float64, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tc := tr.Start("req")
			ids[i] = tc.ID()
			start := time.Now()
			_, errs[i] = g.Generate(context.Background(),
				Request{Lane: "t", InputLen: 64, OutputLen: 12, Trace: tc})
			walls[i] = time.Since(start).Seconds()
			tc.Finish()
		}(i)
	}
	wg.Wait()

	var preempted int
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		rec, ok := tr.Get(ids[i])
		if !ok {
			t.Fatalf("request %d: trace %s not retained", i, ids[i])
		}
		for _, s := range rec.Spans {
			if s.Name == trace.PhasePreempted {
				preempted++
				if s.Attrs["cause"] == "" {
					t.Errorf("request %d: preempted span has no cause attr", i)
				}
				break
			}
		}
		sum := tilingSum(rec)
		if walls[i] < 0.05 {
			t.Fatalf("request %d: wall %.4fs too small for a meaningful ±5%% check", i, walls[i])
		}
		if rel := math.Abs(sum-walls[i]) / walls[i]; rel > 0.05 {
			t.Errorf("request %d: tiling span sum %.4fs vs wall %.4fs (%.1f%% off)",
				i, sum, walls[i], rel*100)
		}
	}
	if preempted == 0 {
		t.Error("no trace carries a preempted span despite an undersized pool")
	}
	if got := reg.Counter("gateway_preempted_total", "").Value(); got < 1 {
		t.Errorf("gateway_preempted_total = %d, want >= 1", got)
	}
	if st := gov.Snapshot(); st.Lanes[0].FreeBlocks != st.Lanes[0].TotalBlocks {
		t.Errorf("pool not fully free after completion: %+v", st.Lanes[0])
	}
}

// TestChaosMemPressure is the acceptance drill: a standing mem-pressure
// rule halves the pool under a 64-client wave. Every request must end in
// exactly one of {completed (possibly after preemption), shed with a
// memory-pressure 503, quota-rejected}; nothing may be lost. Deleting the
// rule must return the gateway to steady state: pool fully free, no
// shedding, empty queue, and a clean follow-up wave.
func TestChaosMemPressure(t *testing.T) {
	inj := faults.New(1)
	if err := inj.Arm(faults.Rule{Class: faults.MemPressure, Site: "govern.kv", Fraction: 0.5}); err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig(inj)
	cfg.MaxRequeues = 100
	gov := memGovernor(t, cfg.Registry, 48, func(c *govern.Config) {
		c.HighWatermark = 0.9
		c.LowWatermark = 0.5
	})
	cfg.Governor = gov
	g := New(cfg, fixedResolver(fakeCost{pre: 0.002, dec: 0.0002}))
	defer g.Shutdown(context.Background())

	_, errs := runWave(t, g, chaosClients)
	var completed, shed int
	for i, err := range errs {
		switch {
		case err == nil:
			completed++
		case errors.Is(err, govern.ErrShedding), errors.Is(err, govern.ErrKVExhausted):
			shed++
		case errors.Is(err, govern.ErrQuotaExceeded):
			// An allowed outcome class in general, but this config sets no
			// quota, so seeing one here is a bug.
			t.Errorf("request %d: quota rejection without a quota: %v", i, err)
		default:
			t.Errorf("request %d: outcome outside the contract: %v", i, err)
		}
	}
	if completed == 0 {
		t.Error("no request completed under 50% mem pressure")
	}
	m := func(name string) uint64 { return cfg.Registry.Counter(name, "").Value() }
	if got := m("gateway_completed_total") + m("gateway_failed_total") + m("gateway_rejected_total"); got != chaosClients {
		t.Errorf("outcome counters sum to %d, want exactly %d (lost or double-counted requests)", got, chaosClients)
	}
	if got := m("faults_injected_mem_pressure_total"); got != 1 {
		t.Errorf("faults_injected_mem_pressure_total = %d, want 1 standing condition", got)
	}
	t.Logf("pressure wave: %d completed, %d shed, %d preempted",
		completed, shed, m("gateway_preempted_total"))

	// Delete the fault rule: the next scheduler pass restores the
	// effective pool, and a full follow-up wave must run clean.
	inj.Disarm()
	results, errs := runWave(t, g, chaosClients)
	for i, err := range errs {
		if err != nil {
			t.Errorf("recovery wave request %d failed: %v", i, err)
		} else if results[i].OutputLen != 4 {
			t.Errorf("recovery wave request %d: truncated result %+v", i, results[i])
		}
	}
	waitFor(t, func() bool {
		st := gov.Snapshot()
		return !st.Shedding && len(st.Lanes) == 1 &&
			st.Lanes[0].FreeBlocks == st.Lanes[0].TotalBlocks &&
			st.Lanes[0].EffectiveBlocks == st.Lanes[0].TotalBlocks
	})
	if g.QueueDepth() != 0 {
		t.Errorf("queue depth %d after drain, want 0", g.QueueDepth())
	}
}

// TestKVQuotaRejectsBurst pins execution with a latched cost model, then
// bursts one client past its token quota: the overflow must be rejected
// with ErrQuotaExceeded while another client still gets in, and the quota
// must free again once the held requests finish.
func TestKVQuotaRejectsBurst(t *testing.T) {
	reg := metrics.NewRegistry()
	cost := &latchCost{fakeCost: fakeCost{pre: 0.001, dec: 0.0001}, ready: make(chan struct{})}
	// Quota 300 tokens: four 68-token requests (in 64 + out 4) charge 272
	// and fit; the fifth and sixth from the same client do not.
	gov := memGovernor(t, reg, 64, func(c *govern.Config) { c.QuotaTokens = 300 })
	g := New(Config{MaxQueue: 64, MaxBatch: 2, Workers: 1, Registry: reg, Governor: gov},
		fixedResolver(cost))
	defer g.Shutdown(context.Background())

	const n = 6
	errs := make([]error, n)
	var quotaRejected atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := g.Generate(context.Background(),
				Request{Lane: "q", Client: "alice", InputLen: 64, OutputLen: 4})
			errs[i] = err
			if errors.Is(err, govern.ErrQuotaExceeded) {
				quotaRejected.Add(1)
			}
		}(i)
	}
	// Quota is charged at submission and nothing completes while the latch
	// holds, so the burst settles into exactly 4 admitted + 2 rejected.
	waitFor(t, func() bool { return quotaRejected.Load() == n-4 })
	// Another tenant is not affected by alice's exhausted quota.
	done := make(chan error, 1)
	go func() {
		_, err := g.Generate(context.Background(),
			Request{Lane: "q", Client: "bob", InputLen: 64, OutputLen: 4})
		done <- err
	}()
	close(cost.ready)
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatalf("other client rejected during alice's burst: %v", err)
	}
	var completed, quota int
	for i, err := range errs {
		switch {
		case err == nil:
			completed++
		case errors.Is(err, govern.ErrQuotaExceeded):
			quota++
		default:
			t.Errorf("request %d: unexpected outcome %v", i, err)
		}
	}
	if completed != 4 || quota != n-4 {
		t.Errorf("outcomes: %d completed, %d quota-rejected; want 4 and %d", completed, quota, n-4)
	}
	// The charge is refunded at completion: the client admits again.
	if _, err := g.Generate(context.Background(),
		Request{Lane: "q", Client: "alice", InputLen: 64, OutputLen: 4}); err != nil {
		t.Fatalf("admit after quota refund: %v", err)
	}
}

// TestKVConservativeNeverPreempts reserves the full context at admission,
// so decode can never exhaust the pool: a full wave completes with zero
// preemptions even though the pool only fits three requests at a time.
func TestKVConservativeNeverPreempts(t *testing.T) {
	reg := metrics.NewRegistry()
	gov := memGovernor(t, reg, 16, func(c *govern.Config) { c.Conservative = true })
	g := New(Config{MaxQueue: 64, MaxBatch: 8, Workers: 1, Registry: reg, Governor: gov},
		fixedResolver(fakeCost{pre: 0.002, dec: 0.0002}))
	defer g.Shutdown(context.Background())

	_, errs := runWave(t, g, 32)
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d: %v", i, err)
		}
	}
	if got := reg.Counter("gateway_preempted_total", "").Value(); got != 0 {
		t.Errorf("conservative admission preempted %d sequences, want 0", got)
	}
	if st := gov.Snapshot(); st.Lanes[0].FreeBlocks != st.Lanes[0].TotalBlocks {
		t.Errorf("pool not fully free after wave: %+v", st.Lanes[0])
	}
}

// TestKVNeverFitsRejectedAtSubmission: a context larger than the whole
// pool is rejected up front with ErrNeverFits instead of deadlocking the
// lane, and serving continues for normal-sized requests.
func TestKVNeverFitsRejectedAtSubmission(t *testing.T) {
	reg := metrics.NewRegistry()
	gov := memGovernor(t, reg, 8, nil) // 128-token capacity
	g := New(Config{MaxQueue: 8, MaxBatch: 2, Workers: 1, Registry: reg, Governor: gov},
		fixedResolver(fakeCost{pre: 0.001, dec: 0.0001}))
	defer g.Shutdown(context.Background())

	_, err := g.Generate(context.Background(),
		Request{Lane: "t", InputLen: 256, OutputLen: 8})
	if !errors.Is(err, govern.ErrNeverFits) {
		t.Fatalf("oversized context error = %v, want ErrNeverFits", err)
	}
	if _, err := g.Generate(context.Background(),
		Request{Lane: "t", InputLen: 64, OutputLen: 4}); err != nil {
		t.Fatalf("normal request after never-fits rejection: %v", err)
	}
}
