package gateway

// overload.go wires the overload controller (internal/overload) into
// the admission path: the pressure signal that drives the brownout
// ladder, class-ordered queue eviction, sustained-saturation readiness,
// and the snapshot surface behind GET /v1/overload. The controller
// itself is evaluated lazily — every admission, scheduler pass and
// status query feeds it a fresh pressure sample — so the ladder climbs
// under live load and steps back down when probes or queries observe
// the pressure gone, without a dedicated goroutine.

import (
	"fmt"
	"time"

	"repro/internal/overload"
)

// siteOverload is the injection site the overload controller queries
// for standing load-spike rules (see internal/faults).
const siteOverload = "overload"

// overloadEvalLocked samples admission pressure and advances the
// brownout ladder, returning the current level and whether a prefix-
// cache flush action fired (to run after the lock is released). The
// pressure signal is the worst of: queue fill fraction, KV watermark
// shedding, and any standing load-spike fault. Callers hold g.mu.
func (g *Gateway) overloadEvalLocked(now time.Time) (level int, flush bool) {
	if g.ctl == nil {
		return 0, false
	}
	p := 0.0
	if g.cfg.MaxQueue > 0 {
		p = float64(g.waiting) / float64(g.cfg.MaxQueue)
	}
	if g.gov.Shedding() {
		p = 1
	}
	if s := g.inj.Spike(siteOverload, ""); s > p {
		p = s
	}
	level, step := g.ctl.Evaluate(p, now)
	if step != 0 {
		g.log.Warn("gateway: brownout level changed",
			"level", level, "step", step, "pressure", p,
			"actions", overload.Actions(level))
	}
	// Entering LevelEvictCache (or climbing past it) flushes the prefix
	// cache once per upward step: recomputation is cheaper than holding
	// reclaimable KV while the pool is the bottleneck.
	flush = step > 0 && level >= overload.LevelEvictCache
	return level, flush
}

// runOverloadActions performs brownout side effects that must not run
// under g.mu (the governor takes its own locks).
func (g *Gateway) runOverloadActions(flush bool) {
	if !flush || g.gov == nil {
		return
	}
	if n := g.gov.FlushCache(); n > 0 {
		g.log.Warn("gateway: brownout flushed prefix cache", "blocks", n)
	}
}

// evictLowerClassLocked makes room in a full queue for an arriving
// request of class cls by failing the newest queued job of a strictly
// lower class (batch first), returning whether a victim was evicted.
// Lane queues are class-ordered, so each lane's candidate is its tail;
// watchdog/preemption requeues sit at the queue front and are never
// victims — their partial compute is already paid for. Callers hold
// g.mu.
func (g *Gateway) evictLowerClassLocked(cls overload.Class, now time.Time) bool {
	var victim *job
	var vl *lane
	for _, l := range g.lanes {
		n := len(l.queue)
		if n == 0 {
			continue
		}
		q := l.queue[n-1]
		if q.class <= cls || q.requeues > 0 {
			continue
		}
		if victim == nil || q.class > victim.class ||
			(q.class == victim.class && q.submitted.After(victim.submitted)) {
			victim, vl = q, l
		}
	}
	if victim == nil {
		return false
	}
	vl.queue = vl.queue[:len(vl.queue)-1]
	g.waiting--
	g.m.queueDepth.Dec()
	g.m.classShed.Inc()
	g.ctl.NoteShed(victim.class)
	victim.req.Trace.Event("overload", now, map[string]string{
		"action": "class-evict", "class": victim.class.String(),
		"for": cls.String()})
	g.failQueuedJob(victim, fmt.Errorf("%w: %s-class victim evicted for %s-class admission",
		ErrClassShed, victim.class, cls))
	return true
}

// noteSaturationLocked updates the sustained-saturation tracker with
// hysteresis: the anchor is set when the queue reaches capacity and
// cleared only once it drains below half. Callers hold g.mu.
func (g *Gateway) noteSaturationLocked(now time.Time) {
	switch {
	case g.waiting >= g.cfg.MaxQueue:
		if g.satSince.IsZero() {
			g.satSince = now
		}
	case g.waiting <= g.cfg.MaxQueue/2:
		g.satSince = time.Time{}
	}
}

// Saturated reports sustained queue saturation: the admission queue has
// been at capacity for at least SaturationWindow without draining below
// half. A saturated gateway returning 429s is not ready — /readyz and
// the cluster router's shedding signal both consult this, so traffic is
// steered away instead of piling onto a wedged queue.
func (g *Gateway) Saturated() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.noteSaturationLocked(time.Now())
	return !g.satSince.IsZero() && time.Since(g.satSince) >= g.cfg.SaturationWindow
}

// BrownoutLevel samples pressure, advances the brownout ladder, and
// returns its level (0 when overload control is off or service is
// nominal). The cluster router polls it to steer around browned-out
// replicas and to suppress hedging.
func (g *Gateway) BrownoutLevel() int {
	if g.ctl == nil {
		return 0
	}
	g.mu.Lock()
	level, flush := g.overloadEvalLocked(time.Now())
	g.mu.Unlock()
	g.runOverloadActions(flush)
	return level
}

// OverloadStatus samples pressure, advances the ladder and returns the
// controller's observable state (GET /v1/overload). The zero Status
// (Enabled false) means overload control is off.
func (g *Gateway) OverloadStatus() overload.Status {
	if g.ctl == nil {
		return overload.Status{}
	}
	g.mu.Lock()
	_, flush := g.overloadEvalLocked(time.Now())
	g.mu.Unlock()
	g.runOverloadActions(flush)
	return g.ctl.Snapshot()
}
