package gateway

// overload_test.go covers the overload-control wiring: class-ordered
// queueing (with a testing/quick ordering property), class-ordered
// eviction of queued victims, deadline-aware queue eviction, sustained-
// saturation readiness, the brownout ladder's batch degradations, and a
// chaos drill (TestChaosOverload) that drives a standing load-spike
// through 64 mixed-class clients and asserts interactive goodput
// survives while batch is shed, then full recovery after disarm.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/overload"
)

// overloadConfig is a gateway with overload control on and the ladder
// timers pinned so tests control every transition: StepUp is instant on
// the second high sample, StepDown is effectively never unless a test
// opts in.
func overloadConfig(oc *overload.Config) Config {
	return Config{
		MaxQueue: 256,
		MaxBatch: 8,
		Workers:  2,
		Registry: metrics.NewRegistry(),
		Overload: oc,
	}
}

func mkJob(cls overload.Class, id int, requeues int) *job {
	return &job{
		req:       Request{Lane: "ol", InputLen: id, OutputLen: 4},
		ctx:       context.Background(),
		class:     cls,
		requeues:  requeues,
		submitted: time.Now().Add(time.Duration(id) * time.Microsecond),
		done:      make(chan jobOutcome, 1),
	}
}

func TestEnqueueClassOrdering(t *testing.T) {
	l := &lane{key: "ol"}
	l.enqueueLocked(mkJob(overload.Standard, 0, 0))
	l.enqueueLocked(mkJob(overload.Batch, 1, 0))
	l.enqueueLocked(mkJob(overload.Interactive, 2, 0))
	l.enqueueLocked(mkJob(overload.Batch, 3, 0))
	l.enqueueLocked(mkJob(overload.Interactive, 4, 0))

	wantClass := []overload.Class{overload.Interactive, overload.Interactive,
		overload.Standard, overload.Batch, overload.Batch}
	wantID := []int{2, 4, 0, 1, 3} // FIFO within class
	for i, j := range l.queue {
		if j.class != wantClass[i] || j.req.InputLen != wantID[i] {
			t.Fatalf("queue[%d] = class %v id %d, want class %v id %d",
				i, j.class, j.req.InputLen, wantClass[i], wantID[i])
		}
	}
}

func TestEnqueueNeverJumpsRequeuedJobs(t *testing.T) {
	// A watchdog requeue puts a batch job back at the queue front with
	// its compute already paid for; a newly arriving interactive request
	// must not leapfrog it.
	l := &lane{key: "ol"}
	requeued := mkJob(overload.Batch, 0, 1)
	l.queue = []*job{requeued}
	l.enqueueLocked(mkJob(overload.Interactive, 1, 0))
	if l.queue[0] != requeued {
		t.Fatal("new interactive arrival jumped ahead of a requeued job")
	}
}

// TestQuickClassOrderingProperty is the satellite ordering property: for
// any arrival sequence, the queue never inverts priorities — classes are
// non-decreasing front to back, and equal-class jobs keep arrival order.
func TestQuickClassOrderingProperty(t *testing.T) {
	prop := func(arrivals []uint8) bool {
		l := &lane{key: "ol"}
		for i, a := range arrivals {
			l.enqueueLocked(mkJob(overload.Class(int(a)%3), i, 0))
		}
		for i := 1; i < len(l.queue); i++ {
			prev, cur := l.queue[i-1], l.queue[i]
			if cur.class < prev.class {
				return false // priority inverted
			}
			if cur.class == prev.class && cur.req.InputLen < prev.req.InputLen {
				return false // arrival order broken within a class
			}
		}
		return len(l.queue) == len(arrivals)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEvictLowerClassPicksNewestLowestPriority(t *testing.T) {
	g := New(overloadConfig(&overload.Config{}), fixedResolver(fakeCost{pre: 0.001, dec: 0.0005}))
	l := &lane{key: "ol"}
	g.lanes["ol"] = l
	jobs := []*job{
		mkJob(overload.Standard, 0, 0),
		mkJob(overload.Batch, 1, 0),
		mkJob(overload.Batch, 2, 0), // newest batch job: the victim
	}
	for _, j := range jobs {
		l.enqueueLocked(j)
	}
	g.waiting = len(jobs)

	g.mu.Lock()
	ok := g.evictLowerClassLocked(overload.Interactive, time.Now())
	g.mu.Unlock()
	if !ok {
		t.Fatal("expected a batch victim to be evicted for interactive admission")
	}
	select {
	case out := <-jobs[2].done:
		if !errors.Is(out.err, ErrClassShed) {
			t.Fatalf("victim outcome = %v, want ErrClassShed", out.err)
		}
	default:
		t.Fatal("newest batch job was not the evicted victim")
	}
	if g.waiting != 2 || len(l.queue) != 2 {
		t.Fatalf("waiting=%d queue=%d after eviction, want 2/2", g.waiting, len(l.queue))
	}
	if got := g.Registry().Counter("gateway_class_shed_total", "").Value(); got != 1 {
		t.Fatalf("gateway_class_shed_total = %d, want 1", got)
	}

	// No strictly lower class left for a batch arrival: nothing to evict.
	g.mu.Lock()
	ok = g.evictLowerClassLocked(overload.Batch, time.Now())
	g.mu.Unlock()
	if ok {
		t.Fatal("batch arrival must not evict batch or better")
	}
}

func TestEvictLowerClassSparesRequeuedJobs(t *testing.T) {
	g := New(overloadConfig(&overload.Config{}), fixedResolver(fakeCost{pre: 0.001, dec: 0.0005}))
	l := &lane{key: "ol"}
	g.lanes["ol"] = l
	l.queue = []*job{mkJob(overload.Batch, 0, 1)} // requeued: compute already paid
	g.waiting = 1

	g.mu.Lock()
	ok := g.evictLowerClassLocked(overload.Interactive, time.Now())
	g.mu.Unlock()
	if ok {
		t.Fatal("requeued job must never be an eviction victim")
	}
}

// TestGenerateClassEviction drives the eviction end to end: a full queue
// rejects batch to admit interactive instead of bouncing the higher
// class.
func TestGenerateClassEviction(t *testing.T) {
	cost := &latchCost{fakeCost: fakeCost{pre: 0.001, dec: 0.0005}, ready: make(chan struct{})}
	cfg := overloadConfig(&overload.Config{StepUp: time.Minute, StepDown: time.Minute})
	cfg.MaxQueue = 2
	cfg.MaxBatch = 1
	cfg.Workers = 1
	g := New(cfg, fixedResolver(cost))

	// Filler occupies the lane's only batch slot, blocked in prefill.
	fillerErr := make(chan error, 1)
	go func() {
		_, err := g.Generate(context.Background(), Request{Lane: "ol", InputLen: 64, OutputLen: 4})
		fillerErr <- err
	}()
	waitFor(t, func() bool {
		return g.Registry().Gauge("gateway_inflight", "").Value() == 1
	})

	// Two batch-class requests fill the queue to MaxQueue.
	batchErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := g.Generate(context.Background(),
				Request{Lane: "ol", InputLen: 64, OutputLen: 4, Class: "batch"})
			batchErrs <- err
		}()
	}
	waitFor(t, func() bool { return g.QueueDepth() == 2 })

	// Interactive arrival against the full queue: a batch victim is
	// evicted immediately (so the shed error arrives before the latch
	// opens) and the interactive request takes its place.
	interErr := make(chan error, 1)
	go func() {
		_, err := g.Generate(context.Background(),
			Request{Lane: "ol", InputLen: 64, OutputLen: 4, Class: "interactive"})
		interErr <- err
	}()
	select {
	case err := <-batchErrs:
		if !errors.Is(err, ErrClassShed) {
			t.Fatalf("evicted batch request got %v, want ErrClassShed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no batch request was evicted for the interactive arrival")
	}

	close(cost.ready)
	for ch, name := range map[chan error]string{fillerErr: "filler", interErr: "interactive", batchErrs: "surviving batch"} {
		if err := <-ch; err != nil {
			t.Fatalf("%s request failed: %v", name, err)
		}
	}
}

func TestDeadlineEvictionInQueue(t *testing.T) {
	cost := &latchCost{fakeCost: fakeCost{pre: 0.001, dec: 0.0005}, ready: make(chan struct{})}
	cfg := overloadConfig(&overload.Config{StepUp: time.Minute, StepDown: time.Minute})
	cfg.MaxBatch = 1
	cfg.Workers = 1
	g := New(cfg, fixedResolver(cost))

	// Teach the limiter that standard-class TTFT is ~1 s, so a queued
	// request with a 300 ms deadline is provably doomed.
	g.ctl.Observe(overload.Standard, time.Second, time.Now())

	fillerErr := make(chan error, 1)
	go func() {
		_, err := g.Generate(context.Background(), Request{Lane: "ol", InputLen: 64, OutputLen: 8})
		fillerErr <- err
	}()
	waitFor(t, func() bool {
		return g.Registry().Gauge("gateway_inflight", "").Value() == 1
	})

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	doomedErr := make(chan error, 1)
	go func() {
		_, err := g.Generate(ctx, Request{Lane: "ol", InputLen: 64, OutputLen: 4})
		doomedErr <- err
	}()
	waitFor(t, func() bool { return g.QueueDepth() == 1 })

	// Open the latch: the scheduler's next admission scan models the
	// queued request's TTFT against its deadline and evicts it with the
	// typed 504 instead of burning prefill on it.
	close(cost.ready)
	select {
	case err := <-doomedErr:
		if !errors.Is(err, ErrDeadlineUnmeetable) {
			t.Fatalf("doomed request got %v, want ErrDeadlineUnmeetable", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadline-doomed request was never evicted")
	}
	if err := <-fillerErr; err != nil {
		t.Fatalf("filler failed: %v", err)
	}
	if got := g.Registry().Counter("gateway_deadline_evicted_total", "").Value(); got != 1 {
		t.Fatalf("gateway_deadline_evicted_total = %d, want 1", got)
	}
}

func TestSaturationHysteresis(t *testing.T) {
	cfg := overloadConfig(&overload.Config{StepUp: time.Minute, StepDown: time.Minute})
	cfg.MaxQueue = 4
	cfg.SaturationWindow = 20 * time.Millisecond
	g := New(cfg, fixedResolver(fakeCost{pre: 0.001, dec: 0.0005}))

	setWaiting := func(n int) {
		g.mu.Lock()
		g.waiting = n
		g.noteSaturationLocked(time.Now())
		g.mu.Unlock()
	}

	setWaiting(4)
	if g.Saturated() {
		t.Fatal("saturated before the window elapsed")
	}
	time.Sleep(30 * time.Millisecond)
	if !g.Saturated() {
		t.Fatal("not saturated after a full window at capacity")
	}
	if !g.MemoryPressure() {
		t.Fatal("MemoryPressure must fold in sustained saturation")
	}

	// Draining to half-full (hysteresis midpoint) keeps the anchor: a
	// queue oscillating just below capacity is still saturated.
	setWaiting(3)
	if !g.Saturated() {
		t.Fatal("anchor dropped inside the hysteresis band")
	}

	// Below half clears it.
	setWaiting(2)
	if g.Saturated() {
		t.Fatal("still saturated after draining below half")
	}
}

// climb steps the ladder up n rungs by feeding full-pressure samples
// with controlled timestamps (StepUp apart).
func climb(t *testing.T, ctl *overload.Controller, n int) {
	t.Helper()
	base := time.Now()
	step := ctl.Config().StepUp
	ctl.Evaluate(1, base)
	for i := 1; i <= n; i++ {
		lvl, _ := ctl.Evaluate(1, base.Add(time.Duration(i)*(step+time.Millisecond)))
		if lvl != i {
			t.Fatalf("ladder at %d after %d up-samples, want %d", lvl, i, i)
		}
	}
}

func TestBrownoutCapsBatchTokens(t *testing.T) {
	// StepDown is pinned far out so Generate's own low-pressure samples
	// cannot walk the ladder back down mid-test.
	g := New(overloadConfig(&overload.Config{
		StepUp: time.Millisecond, StepDown: time.Hour, BatchTokenCap: 4,
	}), fixedResolver(fakeCost{pre: 0.001, dec: 0.0005}))
	climb(t, g.ctl, overload.LevelCapBatch)

	res, err := g.Generate(context.Background(),
		Request{Lane: "ol", InputLen: 64, OutputLen: 32, Class: "batch"})
	if err != nil {
		t.Fatalf("capped batch request failed: %v", err)
	}
	if res.FinishReason != "brownout" || res.OutputLen != 4 {
		t.Fatalf("got finish_reason %q output_len %d, want \"brownout\" / 4",
			res.FinishReason, res.OutputLen)
	}
	if got := g.Registry().Counter("gateway_brownout_capped_total", "").Value(); got != 1 {
		t.Fatalf("gateway_brownout_capped_total = %d, want 1", got)
	}

	// Interactive is never capped, at any rung.
	res, err = g.Generate(context.Background(),
		Request{Lane: "ol", InputLen: 64, OutputLen: 32, Class: "interactive"})
	if err != nil || res.FinishReason != "" || res.OutputLen != 32 {
		t.Fatalf("interactive under brownout: res=%+v err=%v", res, err)
	}
}

func TestBrownoutShedsBatchAtTopRung(t *testing.T) {
	g := New(overloadConfig(&overload.Config{
		StepUp: time.Millisecond, StepDown: time.Hour,
	}), fixedResolver(fakeCost{pre: 0.001, dec: 0.0005}))
	climb(t, g.ctl, overload.LevelShedBatch)

	if _, err := g.Generate(context.Background(),
		Request{Lane: "ol", InputLen: 64, OutputLen: 4, Class: "batch"}); !errors.Is(err, ErrClassShed) {
		t.Fatalf("batch at LevelShedBatch got %v, want ErrClassShed", err)
	}
	if _, err := g.Generate(context.Background(),
		Request{Lane: "ol", InputLen: 64, OutputLen: 4, Class: "interactive"}); err != nil {
		t.Fatalf("interactive at LevelShedBatch failed: %v", err)
	}
}

// runClassWave fires n concurrent requests cycling interactive /
// standard / batch and returns the outcome error per class.
func runClassWave(t *testing.T, g *Gateway, n int) map[overload.Class][]error {
	t.Helper()
	classes := []string{"interactive", "standard", "batch"}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = g.Generate(context.Background(), Request{
				Lane: "chaos", InputLen: 64, OutputLen: 4, Class: classes[i%3]})
		}(i)
	}
	wg.Wait()
	out := map[overload.Class][]error{}
	for i, err := range errs {
		cls := overload.ClassOf(classes[i%3])
		out[cls] = append(out[cls], err)
	}
	return out
}

func countOK(errs []error) int {
	n := 0
	for _, err := range errs {
		if err == nil {
			n++
		}
	}
	return n
}

// TestChaosOverload is the overload chaos drill: a standing load-spike
// (offered load at 2× capacity) drives the ladder to its top rung under
// 64 mixed-class clients. Interactive goodput must survive — batch is
// shed class-ordered, never the other way — and once the spike is
// disarmed the ladder must walk back to nominal and full availability.
func TestChaosOverload(t *testing.T) {
	inj := faults.New(1)
	cfg := chaosConfig(inj)
	cfg.Overload = &overload.Config{
		StepUp:   time.Millisecond,
		StepDown: 5 * time.Millisecond,
		// Generous limits: this drill isolates the ladder; the limiter's
		// own gating is covered by the overload package tests.
		InitialLimit: 128,
		MaxLimit:     256,
	}
	g := New(cfg, fixedResolver(fakeCost{pre: 0.002, dec: 0.0005}))

	if err := inj.Arm(faults.Rule{Class: faults.LoadSpike, Site: siteOverload, Fraction: 1}); err != nil {
		t.Fatal(err)
	}

	// Wave 1 rides the ladder up; classes race the climb, so assert only
	// the invariant: interactive goodput is never worse than batch.
	wave1 := runClassWave(t, g, chaosClients)
	okI, okB := countOK(wave1[overload.Interactive]), countOK(wave1[overload.Batch])
	if okI < okB {
		t.Fatalf("interactive goodput (%d) below batch (%d) under spike", okI, okB)
	}
	if okI == 0 {
		t.Fatal("interactive goodput collapsed to zero under spike")
	}
	for _, err := range wave1[overload.Interactive] {
		if err != nil && !errors.Is(err, ErrConcurrencyLimited) && !errors.Is(err, ErrQueueFull) {
			t.Fatalf("interactive saw unexpected error under spike: %v", err)
		}
	}

	// The standing spike holds pressure at 1: the ladder must reach the
	// top rung and stay there.
	waitFor(t, func() bool { return g.BrownoutLevel() == overload.LevelShedBatch })

	// Wave 2 at the top rung is deterministic: every batch request is
	// shed with the typed 503, every interactive request completes.
	wave2 := runClassWave(t, g, chaosClients)
	if n := countOK(wave2[overload.Interactive]); n != len(wave2[overload.Interactive]) {
		t.Fatalf("interactive goodput %d/%d at top rung, want all",
			n, len(wave2[overload.Interactive]))
	}
	for _, err := range wave2[overload.Batch] {
		if !errors.Is(err, ErrClassShed) {
			t.Fatalf("batch at top rung got %v, want ErrClassShed", err)
		}
	}

	// Disarm: pressure drops to the (empty) queue's fill fraction, the
	// ladder steps down one rung per StepDown, and service fully
	// recovers — the brownout satellite's monotonic-recovery property,
	// observed end to end.
	inj.Disarm()
	last := overload.LevelShedBatch
	waitFor(t, func() bool {
		lvl := g.BrownoutLevel()
		if lvl > last {
			t.Errorf("ladder climbed from %d to %d during recovery", last, lvl)
		}
		last = lvl
		return lvl == overload.LevelNominal
	})

	wave3 := runClassWave(t, g, chaosClients)
	for cls, errs := range wave3 {
		if n := countOK(errs); n != len(errs) {
			t.Fatalf("%v goodput %d/%d after recovery, want all", cls, n, len(errs))
		}
	}
	if got := g.Registry().Counter("overload_brownout_steps_up_total", "").Value(); got < uint64(overload.LevelShedBatch) {
		t.Errorf("brownout steps up = %d, want >= %d", got, overload.LevelShedBatch)
	}

	if err := g.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
