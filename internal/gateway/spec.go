package gateway

// spec.go wires speculative decoding (internal/specdec, engine
// speculative.go) into the live serving path. A lane whose cost model
// implements serve.SpecCostModel gains a draft engine: each decode
// iteration becomes one speculation cycle — k draft steps plus one fused
// multi-row verification pass over the running batch — and every sequence
// commits its accepted run plus the verification bonus token. The cycle
// is priced through the same watchdog/injection/breaker weave as a plain
// decode step (pricedCall), so chaos faults, watchdog requeues, KV
// preemption and degraded mode keep working; committed tokens flow
// through the exactly-once emission path (stream.go), so SSE streaming
// and requeue deduplication are untouched.
//
// The gateway schedules priced iterations over synthetic index-only
// tokens, so acceptance is sampled rather than computed from logits: each
// sequence's accepted run is the leading Bernoulli(α) successes of its
// proposal, with α the configured acceptance rate and the sampler seeded
// per lane for reproducibility. The adaptive controller
// (specdec.Adaptive) tracks realized acceptance and shrinks k — to 1
// when α is poor — exactly as a logit-verifying scheduler would. Greedy
// equivalence of real speculative decoding is the engine layer's
// property (bit-identity tests in internal/engine); this layer models
// its scheduling, pricing and governance.

import (
	"hash/fnv"
	"math/rand"
	"strconv"
	"time"

	"repro/internal/overload"
	"repro/internal/serve"
	"repro/internal/specdec"
	"repro/internal/trace"
)

// SpecConfig tunes gateway-wide speculative decoding.
type SpecConfig struct {
	// Lookahead is the maximum draft proposal length k per cycle; the
	// per-lane adaptive controller works downward from it. Default 4.
	Lookahead int
	// Acceptance is the modeled per-token probability α that the target
	// accepts a draft token. Default 0.8.
	Acceptance float64
	// Seed seeds the per-lane acceptance samplers (combined with the
	// lane key, so distinct lanes draw independent streams). 0 means 1.
	Seed int64
}

func (c *SpecConfig) withDefaults() SpecConfig {
	s := *c
	if s.Lookahead <= 0 {
		s.Lookahead = 4
	}
	if s.Acceptance <= 0 {
		s.Acceptance = 0.8
	}
	if s.Acceptance > 1 {
		s.Acceptance = 1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// laneSpec is a lane's speculative state, owned by the lane goroutine
// except adapt (internally locked) which metrics snapshots may read.
type laneSpec struct {
	cm    serve.SpecCostModel
	rng   *rand.Rand
	adapt *specdec.Adaptive
	alpha float64
	maxK  int
}

// initLaneSpec attaches speculative state to a newly created lane when
// the gateway is configured for speculation and the lane's cost model can
// price draft steps and verification passes. Lanes whose model cannot
// simply decode plainly.
func (g *Gateway) initLaneSpec(l *lane) {
	if g.cfg.Spec == nil {
		return
	}
	scm, ok := l.cost.(serve.SpecCostModel)
	if !ok {
		return
	}
	sc := g.cfg.Spec.withDefaults()
	h := fnv.New64a()
	h.Write([]byte(l.key))
	l.spec = &laneSpec{
		cm:    scm,
		rng:   rand.New(rand.NewSource(sc.Seed ^ int64(h.Sum64()))),
		adapt: specdec.NewAdaptive(sc.Lookahead),
		alpha: sc.Acceptance,
		maxK:  sc.Lookahead,
	}
}

// specSuspended reports whether this iteration must decode plainly even
// though the lane is speculation-capable: the brownout ladder at or above
// the cap-batch rung sheds the draft's extra compute first, and an open
// breaker means pricing would come from the fallback model, which cannot
// price a draft. The read is non-advancing (Controller.Level), so
// checking it here never moves the ladder.
func (g *Gateway) specSuspended(l *lane, now time.Time) bool {
	if g.ctl.Level() >= overload.LevelCapBatch {
		return true
	}
	return !l.br.allowPrimary(now)
}

// speculativeDecode runs one speculation cycle for the lane's running
// batch. It returns ok=false — without pricing anything — when no
// sequence can usefully speculate this iteration (all disabled or on
// their final token), letting the caller fall through to a plain decode
// step. Sequences are assumed to have grown their leases by one token
// already (growRunning); the extra proposal pages are claimed here and
// are the first thing dropped under KV pressure.
func (g *Gateway) speculativeDecode(l *lane, batch, maxCtx int) (cost float64, ok bool, err error) {
	sp := l.spec
	k := sp.adapt.K()
	if k > sp.maxK {
		k = sp.maxK
	}

	// Plan each sequence's proposal and sample its accepted run up front:
	// acceptance drives KV growth, and the sampler must advance exactly
	// once per participating sequence per cycle for reproducibility.
	type plan struct {
		proposed, accepted, committed int
	}
	plans := make([]plan, len(l.running))
	cycleK := 0
	for i, s := range l.running {
		prop := k
		if lim := s.j.req.SpecLookahead; lim > 0 && lim < prop {
			prop = lim
		}
		if rem := s.remaining - 1; prop > rem {
			prop = rem
		}
		if s.j.req.SpecDisabled || prop < 0 {
			prop = 0
		}
		acc := 0
		for acc < prop && sp.rng.Float64() < sp.alpha {
			acc++
		}
		plans[i] = plan{proposed: prop, accepted: acc, committed: acc + 1}
		if prop > cycleK {
			cycleK = prop
		}
	}
	if cycleK == 0 {
		return 0, false, nil
	}

	// KV governance: each sequence's lease must also cover the proposal
	// rows beyond the one token growRunning already granted. Draft state
	// is the first casualty of memory pressure — a sequence whose extra
	// pages don't fit falls back to a plain single-token commit (its
	// sampled run is discarded with the pages) instead of anyone being
	// preempted.
	for i, s := range l.running {
		if extra := plans[i].committed - 1; extra > 0 {
			if gerr := s.j.lease.Grow(extra); gerr != nil {
				plans[i] = plan{proposed: plans[i].proposed, accepted: 0, committed: 1}
			}
		}
	}

	// Price the cycle — cycleK draft steps plus one fused verification
	// pass over cycleK+1 rows — through the resilience weave. A fallback
	// model cannot price a draft, so degraded pricing charges a plain
	// decode step and the cycle commits one token per sequence.
	var fallback func() (float64, error)
	if l.fallback != nil {
		fallback = func() (float64, error) { return l.fallback.DecodeStepCost(batch, maxCtx) }
	}
	cost, info, err := g.pricedCall(l, siteDecode, func() (float64, error) {
		d, derr := sp.cm.DraftStepCost(batch, maxCtx)
		if derr != nil {
			return 0, derr
		}
		v, verr := sp.cm.VerifyCost(batch, maxCtx, cycleK+1)
		if verr != nil {
			return 0, verr
		}
		return float64(cycleK)*d + v, nil
	}, fallback)
	if err != nil {
		return 0, true, err
	}
	specOK := !info.degraded

	l.vclock += cost
	now := time.Now()
	g.m.batchSize.Observe(float64(batch))
	cycleProp, cycleAcc := 0, 0
	kept := l.running[:0]
	for i, s := range l.running {
		p := plans[i]
		if !specOK {
			p = plan{committed: 1}
		}
		s.degraded = s.degraded || info.degraded
		j := s.j
		if specOK && p.proposed > 0 {
			j.specProposed += p.proposed
			j.specAccepted += p.accepted
			j.specPasses++
			cycleProp += p.proposed
			cycleAcc += p.accepted
			g.iterSpans(s, trace.PhaseSpeculative, now, cost, info, nil,
				map[string]string{
					"k":         strconv.Itoa(cycleK),
					"proposed":  strconv.Itoa(p.proposed),
					"accepted":  strconv.Itoa(p.accepted),
					"committed": strconv.Itoa(p.committed),
					"batch":     strconv.Itoa(batch),
					"ctx":       strconv.Itoa(s.ctxLen + p.committed),
				})
		} else {
			g.iterSpans(s, trace.PhaseDecode, now, cost, info, nil,
				map[string]string{
					"token": strconv.Itoa(s.j.req.OutputLen - s.remaining + 1),
					"batch": strconv.Itoa(batch),
					"ctx":   strconv.Itoa(s.ctxLen + 1),
				})
		}
		for t := 0; t < p.committed; t++ {
			s.ctxLen++
			s.remaining--
			g.emitToken(l, s, batch, info.degraded, now)
		}
		if s.remaining == 0 {
			g.completeSeq(l, s)
			continue
		}
		kept = append(kept, s)
	}
	l.running = kept

	if specOK {
		g.m.specCycles.Inc()
		g.m.specProposed.Add(uint64(cycleProp))
		g.m.specAccepted.Add(uint64(cycleAcc))
		sp.adapt.Observe(cycleProp, cycleAcc)
	} else {
		g.m.specSuspended.Inc()
	}
	return cost, true, nil
}
