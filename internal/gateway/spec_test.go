package gateway

// spec_test.go exercises speculative decoding in the serving path: the
// scheduler's cycle accounting against the specdec analytic model, the
// per-request opt-out and lookahead cap, brownout/breaker suspension,
// degraded-pricing fallback to plain commits, and a chaos wave proving
// speculation composes with watchdog requeues and exactly-once outcomes.
// Bit-identity of real speculative generation is the engine layer's
// property (internal/engine/spec_tiers_test.go); here the contract is
// scheduling, pricing and governance.

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/overload"
	"repro/internal/serve"
	"repro/internal/specdec"
)

// fakeSpecCost prices draft steps and verification passes with fixed
// constants on top of fakeCost, making any lane speculation-capable.
type fakeSpecCost struct {
	fakeCost
	draft, verify float64
}

func (f fakeSpecCost) DraftStepCost(batch, ctx int) (float64, error)    { return f.draft, nil }
func (f fakeSpecCost) VerifyCost(batch, ctx, rows int) (float64, error) { return f.verify, nil }

var _ serve.SpecCostModel = fakeSpecCost{}

func specTestConfig(spec *SpecConfig) Config {
	return Config{
		MaxQueue: 256,
		MaxBatch: 8,
		Workers:  2,
		Registry: metrics.NewRegistry(),
		Spec:     spec,
	}
}

func TestSpeculationEndToEnd(t *testing.T) {
	g := New(specTestConfig(&SpecConfig{Lookahead: 4, Acceptance: 0.9, Seed: 7}),
		fixedResolver(fakeSpecCost{fakeCost: fakeCost{pre: 0.002, dec: 0.001},
			draft: 0.0001, verify: 0.0012}))

	const n, outputLen = 32, 16
	results := make([]Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = g.Generate(context.Background(),
				Request{Lane: "spec/OPT-13B", InputLen: 64, OutputLen: outputLen})
		}(i)
	}
	wg.Wait()

	var proposed, accepted, passes int
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		r := results[i]
		if r.OutputLen != outputLen {
			t.Errorf("request %d: output len %d, want %d", i, r.OutputLen, outputLen)
		}
		if r.SpecPasses <= 0 {
			t.Errorf("request %d: no speculation passes recorded: %+v", i, r)
		}
		if r.SpecPasses > outputLen-1 {
			t.Errorf("request %d: %d verify passes for %d decode tokens", i,
				r.SpecPasses, outputLen-1)
		}
		if r.SpecAccepted > r.SpecProposed {
			t.Errorf("request %d: accepted %d > proposed %d", i, r.SpecAccepted, r.SpecProposed)
		}
		proposed += r.SpecProposed
		accepted += r.SpecAccepted
		passes += r.SpecPasses
	}
	// At α = 0.9 the aggregate acceptance over 32×15 decode tokens is far
	// from the coin-flip regime; well above one committed token per pass.
	if rate := float64(accepted) / float64(proposed); rate < 0.5 {
		t.Errorf("aggregate acceptance %.2f at modeled α=0.9", rate)
	}
	if perPass := float64(accepted+passes) / float64(passes); perPass < 1.5 {
		t.Errorf("%.2f committed tokens per verify pass, speculation not paying off", perPass)
	}

	reg := g.Registry()
	if got := reg.Counter("gateway_completed_total", "").Value(); got != n {
		t.Errorf("completed counter %d, want %d", got, n)
	}
	if got := reg.Counter("gateway_spec_cycles_total", "").Value(); got == 0 {
		t.Error("gateway_spec_cycles_total did not advance")
	}
	if p, a := reg.Counter("gateway_spec_proposed_total", "").Value(),
		reg.Counter("gateway_spec_accepted_total", "").Value(); p != uint64(proposed) || a != uint64(accepted) {
		t.Errorf("spec counters proposed=%d accepted=%d, results say %d/%d", p, a, proposed, accepted)
	}
}

// TestSpeculationAnalyticCrossCheck pins the live path's cycle accounting
// to the specdec analytic model at α = 1: every proposal is accepted, so
// each cycle commits exactly k+1 tokens and the pass count is the
// deterministic ceil((out-1)/(k+1)) — the prefill emits the first token,
// speculation covers the rest.
func TestSpeculationAnalyticCrossCheck(t *testing.T) {
	const k, outputLen = 4, 11
	cfg := specTestConfig(&SpecConfig{Lookahead: k, Acceptance: 1, Seed: 1})
	cfg.MaxBatch, cfg.Workers = 1, 1
	g := New(cfg, fixedResolver(fakeSpecCost{fakeCost: fakeCost{pre: 0.002, dec: 0.001},
		draft: 0.0001, verify: 0.0012}))

	res, err := g.Generate(context.Background(),
		Request{Lane: "spec", InputLen: 32, OutputLen: outputLen})
	if err != nil {
		t.Fatal(err)
	}

	decodeTokens := outputLen - 1
	wantPasses := (decodeTokens + k) / (k + 1)
	if res.SpecPasses != wantPasses {
		t.Errorf("verify passes %d, want %d", res.SpecPasses, wantPasses)
	}
	if res.SpecProposed != decodeTokens-wantPasses || res.SpecAccepted != res.SpecProposed {
		t.Errorf("proposed/accepted %d/%d, want %d/%d (all accepted at α=1)",
			res.SpecProposed, res.SpecAccepted, decodeTokens-wantPasses, decodeTokens-wantPasses)
	}
	// The realized tokens-per-cycle must match the analytic expectation:
	// at α = 1 a cycle of lookahead k yields exactly k+1 tokens, which is
	// also specdec.ExpectedTokensPerCycle's limit value.
	want := specdec.ExpectedTokensPerCycle(1, k)
	if got := float64(res.SpecAccepted+res.SpecPasses) / float64(res.SpecPasses); got != want {
		t.Errorf("tokens per cycle %.3f, analytic model says %.3f", got, want)
	}
}

func TestSpeculationPerRequestControls(t *testing.T) {
	newGateway := func() *Gateway {
		cfg := specTestConfig(&SpecConfig{Lookahead: 4, Acceptance: 1, Seed: 1})
		cfg.MaxBatch, cfg.Workers = 1, 1
		return New(cfg, fixedResolver(fakeSpecCost{fakeCost: fakeCost{pre: 0.002, dec: 0.001},
			draft: 0.0001, verify: 0.0012}))
	}

	t.Run("disabled", func(t *testing.T) {
		g := newGateway()
		res, err := g.Generate(context.Background(),
			Request{Lane: "spec", InputLen: 32, OutputLen: 8, SpecDisabled: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.SpecPasses != 0 || res.SpecProposed != 0 || res.SpecAccepted != 0 {
			t.Errorf("opted-out request has speculation attribution: %+v", res)
		}
		if res.OutputLen != 8 {
			t.Errorf("output len %d, want 8", res.OutputLen)
		}
		if got := g.Registry().Counter("gateway_spec_cycles_total", "").Value(); got != 0 {
			t.Errorf("spec cycles %d for a fully opted-out lane", got)
		}
	})

	t.Run("lookahead cap", func(t *testing.T) {
		g := newGateway()
		// With the per-request cap at 1 and α = 1, every cycle commits
		// exactly 2 tokens: 6 decode tokens take exactly 3 passes.
		res, err := g.Generate(context.Background(),
			Request{Lane: "spec", InputLen: 32, OutputLen: 7, SpecLookahead: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.SpecPasses != 3 || res.SpecProposed != 3 || res.SpecAccepted != 3 {
			t.Errorf("capped lookahead accounting %+v, want passes=3 proposed=3 accepted=3", res)
		}
	})
}

// TestSpeculationBrownoutSuspends: at or above the cap-batch rung the
// draft's extra compute is the first thing shed — speculation-capable
// lanes decode plainly and count the suspension.
func TestSpeculationBrownoutSuspends(t *testing.T) {
	cfg := overloadConfig(&overload.Config{StepUp: time.Millisecond, StepDown: time.Hour})
	cfg.Spec = &SpecConfig{Lookahead: 4, Acceptance: 1, Seed: 1}
	g := New(cfg, fixedResolver(fakeSpecCost{fakeCost: fakeCost{pre: 0.002, dec: 0.001},
		draft: 0.0001, verify: 0.0012}))
	climb(t, g.ctl, overload.LevelCapBatch)

	res, err := g.Generate(context.Background(),
		Request{Lane: "spec", InputLen: 32, OutputLen: 4, Class: "interactive"})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpecPasses != 0 || res.SpecProposed != 0 {
		t.Errorf("speculation ran at brownout level %d: %+v", overload.LevelCapBatch, res)
	}
	if got := g.Registry().Counter("gateway_spec_suspended_total", "").Value(); got == 0 {
		t.Error("gateway_spec_suspended_total did not advance under brownout")
	}
}

// TestSpeculationDegradedFallsBack: when primary pricing fails and the
// fallback model takes over, a fallback cannot price a draft — the cycle
// charges a plain decode step and commits one token per sequence, with
// no speculation attribution on the result.
func TestSpeculationDegradedFallsBack(t *testing.T) {
	inj := faults.New(1)
	cfg := chaosConfig(inj)
	cfg.Spec = &SpecConfig{Lookahead: 4, Acceptance: 1, Seed: 1}
	cfg.Fallback = fixedResolver(fakeCost{pre: 0.001, dec: 0.0005})
	if err := inj.Arm(faults.Rule{Class: faults.CostError, Site: "cost.decode", Every: 1}); err != nil {
		t.Fatal(err)
	}
	g := New(cfg, fixedResolver(fakeSpecCost{fakeCost: fakeCost{pre: 0.002, dec: 0.001},
		draft: 0.0001, verify: 0.0012}))

	res, err := g.Generate(context.Background(),
		Request{Lane: "chaos", InputLen: 64, OutputLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Error("result not marked degraded with every decode priced by the fallback")
	}
	if res.SpecPasses != 0 || res.SpecProposed != 0 || res.SpecAccepted != 0 {
		t.Errorf("degraded cycles carry speculation attribution: %+v", res)
	}
	if res.OutputLen != 4 {
		t.Errorf("output len %d, want 4", res.OutputLen)
	}
	if got := g.Registry().Counter("gateway_spec_suspended_total", "").Value(); got == 0 {
		t.Error("gateway_spec_suspended_total did not advance for degraded cycles")
	}
}

// TestChaosSpeculation runs the chaos wave with speculation enabled:
// watchdog-cancelled speculative iterations requeue like plain ones,
// every request still sees exactly one outcome, and the spec counters
// prove cycles actually ran. Named TestChaos* so `make chaos` picks it
// up under -race.
func TestChaosSpeculation(t *testing.T) {
	inj := faults.New(1)
	cfg := chaosConfig(inj)
	cfg.Spec = &SpecConfig{Lookahead: 4, Acceptance: 0.8, Seed: 3}
	cfg.WatchdogBudget = 15 * time.Millisecond
	// Two stall fires stay inside every job's requeue budget, so the
	// whole wave still completes (matching the plain-decode chaos case).
	if err := inj.Arm(faults.Rule{Class: faults.Stall, Site: "cost.decode",
		Every: 2, Count: 2, DelayMillis: 100}); err != nil {
		t.Fatal(err)
	}
	g := New(cfg, fixedResolver(fakeSpecCost{fakeCost: fakeCost{pre: 0.002, dec: 0.0005},
		draft: 0.00005, verify: 0.0006}))

	results, errs := runWave(t, g, chaosClients)
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d: %v", i, err)
		} else if results[i].OutputLen != 4 {
			t.Errorf("request %d: output len %d, want 4", i, results[i].OutputLen)
		}
	}

	reg := g.Registry()
	if got := reg.Counter("gateway_completed_total", "").Value(); got != chaosClients {
		t.Errorf("completed counter %d, want %d", got, chaosClients)
	}
	if got := reg.Counter("gateway_spec_cycles_total", "").Value(); got == 0 {
		t.Error("no speculation cycles ran under chaos")
	}
	if got := reg.Counter("gateway_requeued_total", "").Value(); got == 0 {
		t.Error("stall faults armed but nothing requeued")
	}

	// Recovery: disarm and the next wave is fault-free and still speculating.
	inj.Disarm()
	cycles := reg.Counter("gateway_spec_cycles_total", "").Value()
	recResults, recErrs := runWave(t, g, chaosClients)
	for i, err := range recErrs {
		if err != nil {
			t.Errorf("post-disarm request %d failed: %v", i, err)
		} else if recResults[i].SpecPasses == 0 {
			t.Errorf("post-disarm request %d did not speculate: %+v", i, recResults[i])
		}
	}
	if got := reg.Counter("gateway_spec_cycles_total", "").Value(); got <= cycles {
		t.Error("speculation did not resume after disarm")
	}
	if g.QueueDepth() != 0 {
		t.Errorf("queue depth %d after recovery wave", g.QueueDepth())
	}
}
