package gateway

// stream.go is the gateway's per-token delivery path. The lane scheduler
// produces tokens at iteration granularity — the whole admitted batch gets
// its first token when a prefill iteration completes, then one token per
// decode iteration — and emitToken fans each one out to the request's
// optional TokenSink, records the first_token trace span, and feeds the
// wall-clock TTFT and inter-token-latency histograms. The paper's point
// (§II-C) is that CPU decode is memory-bound per token, so user-perceived
// latency is governed by exactly these two signals rather than E2E cost;
// streaming makes them observable per request instead of only in
// aggregate.
//
// Emission is exactly-once per token index even though the scheduler may
// recompute work: a watchdog requeue or KV preemption sends a job back to
// the queue and replays its prefill and early decode steps, so the
// per-attempt counter (seq.produced) is checked against the job's
// high-water mark (job.emitted) and already-delivered indices are skipped.

import (
	"strconv"
	"time"

	"repro/internal/trace"
)

// TokenEvent is one generated token as observed by the lane scheduler.
// The gateway schedules priced iterations rather than sampling real text,
// so the event identifies the token by position; transports that need
// text (the OpenAI-shaped endpoints) synthesize it deterministically.
type TokenEvent struct {
	// Index is the zero-based position of the token in the output.
	Index int
	// Wall is the real time the scheduler produced the token.
	Wall time.Time
	// VTime is the lane's virtual clock (modeled seconds) at production.
	VTime float64
	// Batch is the number of sequences sharing the producing iteration.
	Batch int
	// Degraded marks a token priced by the lane's fallback cost model.
	Degraded bool
	// Final marks the request's last token.
	Final bool
}

// TokenSink receives a request's tokens as they are produced. It is
// called from the lane's scheduler goroutine, so implementations must not
// block: buffer and hand off, never wait on the consumer. Delivery stops
// at the request's terminal outcome; tokens recomputed after a watchdog
// requeue or KV preemption are not re-delivered.
type TokenSink func(TokenEvent)

// emitToken delivers the token just produced for s (if not already
// delivered by a pre-requeue attempt) and records first-token/ITL
// observability. batch is the sequence count of the producing iteration.
func (g *Gateway) emitToken(l *lane, s *seq, batch int, degraded bool, now time.Time) {
	j := s.j
	idx := s.produced
	s.produced++
	if idx < j.emitted {
		return // recomputed after requeue/preemption: already delivered
	}
	j.emitted = idx + 1
	if idx == 0 {
		g.m.firstToken.Observe(now.Sub(j.submitted).Seconds())
		g.ctl.Observe(j.class, now.Sub(j.submitted), now)
		if tr := j.req.Trace; tr != nil {
			tr.Add(trace.SpanData{Name: trace.PhaseFirstToken,
				Start: j.submitted, End: now,
				Attrs: map[string]string{"batch": strconv.Itoa(batch)}})
		}
	} else {
		g.m.itl.Observe(now.Sub(j.lastToken).Seconds())
	}
	j.lastToken = now
	if j.req.Sink == nil {
		return
	}
	g.m.streamTokens.Inc()
	j.req.Sink(TokenEvent{
		Index:    idx,
		Wall:     now,
		VTime:    l.vclock,
		Batch:    batch,
		Degraded: degraded,
		Final:    idx == j.req.OutputLen-1,
	})
}

// abandonQueued removes a job whose context died while it was still
// waiting in its lane's queue, releasing its KV blocks and client quota
// immediately. Without this, a cancelled-but-queued request held its
// reservation until the lane's next admission scan — which never comes
// while the lane is wedged inside a long priced call, exactly when
// reclaiming memory matters most. Returns false when the job was not
// found queued (it is executing or already finished; the scheduler's
// eviction and completion paths own cleanup there).
func (g *Gateway) abandonQueued(j *job) bool {
	g.mu.Lock()
	l := g.lanes[j.req.Lane]
	removed := false
	if l != nil {
		for i, q := range l.queue {
			if q == j {
				l.queue = append(l.queue[:i], l.queue[i+1:]...)
				g.waiting--
				removed = true
				break
			}
		}
	}
	g.mu.Unlock()
	if !removed {
		return false
	}
	j.lease.Release()
	g.m.queueDepth.Dec()
	g.m.canceled.Inc()
	return true
}
