package gateway

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/govern"
	"repro/internal/metrics"
)

// collector is a test TokenSink that records events under a lock so the
// test goroutine can inspect them while the lane goroutine appends.
type collector struct {
	mu     sync.Mutex
	events []TokenEvent
}

func (c *collector) sink() TokenSink {
	return func(ev TokenEvent) {
		c.mu.Lock()
		c.events = append(c.events, ev)
		c.mu.Unlock()
	}
}

func (c *collector) snapshot() []TokenEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]TokenEvent(nil), c.events...)
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// assertTokenStream checks the exactly-once delivery contract: indices
// 0..n-1 in order, Final set on exactly the last event.
func assertTokenStream(t *testing.T, events []TokenEvent, n int) {
	t.Helper()
	if len(events) != n {
		t.Fatalf("got %d token events, want %d", len(events), n)
	}
	for i, ev := range events {
		if ev.Index != i {
			t.Fatalf("event %d has index %d, want %d", i, ev.Index, i)
		}
		if got, want := ev.Final, i == n-1; got != want {
			t.Errorf("event %d: Final=%v, want %v", i, got, want)
		}
		if ev.Wall.IsZero() || ev.Batch < 1 {
			t.Errorf("event %d: degenerate metadata %+v", i, ev)
		}
	}
}

func TestStreamDeliversEveryToken(t *testing.T) {
	for name, pol := range map[string]Policy{"continuous": Continuous, "chunked": Chunked} {
		t.Run(name, func(t *testing.T) {
			reg := metrics.NewRegistry()
			g := New(Config{MaxBatch: 4, Workers: 1, Policy: pol, Registry: reg},
				fixedResolver(fakeCost{pre: 0.010, dec: 0.001}))

			const out = 7
			var col collector
			res, err := g.Generate(context.Background(), Request{
				Lane: "spr/OPT-13B", InputLen: 128, OutputLen: out, Sink: col.sink()})
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			assertTokenStream(t, col.snapshot(), out)
			if res.OutputLen != out {
				t.Errorf("result output len %d, want %d", res.OutputLen, out)
			}
			// Streaming instruments: one first-token sample, out-1 ITL
			// samples, out streamed tokens.
			if c := reg.Histogram("gateway_first_token_seconds", "", nil).Count(); c != 1 {
				t.Errorf("first_token histogram count %d, want 1", c)
			}
			if c := reg.Histogram("gateway_itl_seconds", "", nil).Count(); c != out-1 {
				t.Errorf("itl histogram count %d, want %d", c, out-1)
			}
			if c := reg.Counter("gateway_stream_tokens_total", "").Value(); c != out {
				t.Errorf("stream tokens counter %v, want %d", c, out)
			}
		})
	}
}

// TestStreamFirstTokenBeforeCompletion is the acceptance criterion for
// the streaming tentpole: the first token must reach the sink while the
// decode is still running, not after Generate returns. Timescale makes
// each decode step take real wall time so the gap is observable.
func TestStreamFirstTokenBeforeCompletion(t *testing.T) {
	g := New(Config{MaxBatch: 1, Workers: 1, Timescale: 1},
		fixedResolver(fakeCost{pre: 0.005, dec: 0.005}))

	first := make(chan time.Time, 1)
	var once sync.Once
	_, err := g.Generate(context.Background(), Request{
		Lane: "l", InputLen: 64, OutputLen: 32,
		Sink: func(ev TokenEvent) {
			once.Do(func() { first <- time.Now() })
		}})
	doneAt := time.Now()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	select {
	case at := <-first:
		// 31 decode steps at 5ms modeled time each separate the first
		// token from completion; require a comfortably observable gap.
		if gap := doneAt.Sub(at); gap < 50*time.Millisecond {
			t.Errorf("first token only %v before completion; want streaming, not buffering", gap)
		}
	default:
		t.Fatal("no token reached the sink")
	}
}

// TestStreamNoSinkStillObservesLatency checks the ITL/first-token
// histograms are fed for every request, streaming or not, so /metrics
// reflects the whole workload.
func TestStreamNoSinkStillObservesLatency(t *testing.T) {
	reg := metrics.NewRegistry()
	g := New(Config{MaxBatch: 1, Workers: 1, Registry: reg},
		fixedResolver(fakeCost{pre: 0.010, dec: 0.001}))
	if _, err := g.Generate(context.Background(),
		Request{Lane: "l", InputLen: 32, OutputLen: 4}); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if c := reg.Histogram("gateway_first_token_seconds", "", nil).Count(); c != 1 {
		t.Errorf("first_token histogram count %d, want 1", c)
	}
	if c := reg.Histogram("gateway_itl_seconds", "", nil).Count(); c != 3 {
		t.Errorf("itl histogram count %d, want 3", c)
	}
	// But the stream counter only moves for sinked requests.
	if c := reg.Counter("gateway_stream_tokens_total", "").Value(); c != 0 {
		t.Errorf("stream tokens counter %v for unsinked request, want 0", c)
	}
}

// TestStreamDisconnectFreesKV cancels a streaming request mid-decode and
// asserts its KV blocks return to the governed pool without waiting for
// the generation to finish — the client walked away, the memory must not
// stay leased.
func TestStreamDisconnectFreesKV(t *testing.T) {
	reg := metrics.NewRegistry()
	gov := memGovernor(t, reg, 64, nil)
	g := New(Config{MaxBatch: 1, Workers: 1, Timescale: 1, Governor: gov, Registry: reg},
		fixedResolver(fakeCost{pre: 0.002, dec: 0.020}))

	ctx, cancel := context.WithCancel(context.Background())
	var col collector
	done := make(chan error, 1)
	go func() {
		_, err := g.Generate(ctx, Request{
			Lane: "l", InputLen: 64, OutputLen: 512, Sink: col.sink()})
		done <- err
	}()
	// Let a few tokens stream, proving the sequence is mid-decode with
	// KV blocks held, then drop the client.
	waitFor(t, func() bool { return col.len() >= 3 })
	st := gov.Snapshot()
	if len(st.Lanes) != 1 || st.Lanes[0].FreeBlocks == st.Lanes[0].TotalBlocks {
		t.Fatalf("expected blocks in use mid-decode, got %+v", st.Lanes)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Generate after cancel: %v, want context.Canceled", err)
	}
	// The scheduler drops the canceled sequence on its next pass and the
	// lease releases every block.
	waitFor(t, func() bool {
		st := gov.Snapshot()
		return len(st.Lanes) == 1 && st.Lanes[0].FreeBlocks == st.Lanes[0].TotalBlocks
	})
	produced := col.len()
	if produced >= 512 {
		t.Errorf("sink saw %d tokens; cancellation should stop generation early", produced)
	}
	// No stray emissions after the drop settled.
	time.Sleep(20 * time.Millisecond)
	if col.len() != produced {
		t.Errorf("sink kept receiving after cancel: %d -> %d", produced, col.len())
	}
}

// TestQueuedCancelReleasesLease is the satellite bugfix regression test:
// a request canceled while still queued must release its KV reservation
// and client quota immediately, even when the lane goroutine is wedged
// inside a priced call and cannot run its own cancellation sweep.
func TestQueuedCancelReleasesLease(t *testing.T) {
	reg := metrics.NewRegistry()
	gov := memGovernor(t, reg, 64, func(c *govern.Config) { c.QuotaTokens = 256 })
	cost := &latchCost{fakeCost: fakeCost{pre: 0.010, dec: 0.001}, ready: make(chan struct{})}
	// MaxBatch 1 and an unreleased latch: request A occupies the lane
	// inside PrefillCost, so nothing schedules until the latch opens.
	g := New(Config{MaxBatch: 1, Workers: 1, Governor: gov, Registry: reg,
		WatchdogBudget: -1}, fixedResolver(cost))

	resA := make(chan error, 1)
	go func() {
		_, err := g.Generate(context.Background(),
			Request{Lane: "l", InputLen: 64, OutputLen: 4, Client: "tenant-a"})
		resA <- err
	}()
	waitFor(t, func() bool {
		return g.Registry().Gauge("gateway_inflight", "").Value() == 1
	})

	ctxB, cancelB := context.WithCancel(context.Background())
	resB := make(chan error, 1)
	go func() {
		_, err := g.Generate(ctxB,
			Request{Lane: "l", InputLen: 64, OutputLen: 8, Client: "tenant-b"})
		resB <- err
	}()
	waitFor(t, func() bool { return g.QueueDepth() == 1 })
	if got := gov.Snapshot().Clients["tenant-b"]; got != 72 {
		t.Fatalf("tenant-b in-flight tokens %d before cancel, want 72", got)
	}

	cancelB()
	if err := <-resB; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued request after cancel: %v, want context.Canceled", err)
	}
	// The lane is still wedged in A's prefill, so only the proactive
	// release on the submission path can have freed B's lease.
	if got := gov.Snapshot().Clients["tenant-b"]; got != 0 {
		t.Errorf("tenant-b still holds %d in-flight tokens after queued cancel", got)
	}
	if depth := g.QueueDepth(); depth != 0 {
		t.Errorf("queue depth %d after queued cancel, want 0", depth)
	}
	if c := reg.Counter("gateway_canceled_total", "").Value(); c != 1 {
		t.Errorf("canceled counter %v, want 1", c)
	}

	close(cost.ready)
	if err := <-resA; err != nil {
		t.Fatalf("wedged request failed after release: %v", err)
	}
	st := gov.Snapshot()
	if len(st.Lanes) != 1 || st.Lanes[0].FreeBlocks != st.Lanes[0].TotalBlocks {
		t.Errorf("pool not fully free after drain: %+v", st.Lanes)
	}
}
