package gateway

// supervisor.go is the gateway's resilience layer: panic isolation and
// restart of lane workers, a per-call watchdog over the priced iteration,
// a per-lane circuit breaker that reroutes pricing to a degraded-mode
// fallback cost model, and quarantine of lanes that crash repeatedly.
// The aim is the serving posture the paper's context demands: partial
// failure (a wedged engine, a panicking worker, a failing cost model)
// degrades one lane's service, never the process.

import (
	"errors"
	"fmt"
	"time"
)

// Typed failure sentinels. The API layer maps these onto HTTP statuses;
// tests and clients match them with errors.Is.
var (
	// ErrLanePanic marks requests failed because their lane worker
	// panicked; the supervisor recovered it and restarted the lane.
	ErrLanePanic = errors.New("gateway: lane worker panicked")
	// ErrLaneQuarantined rejects submissions to a lane that crashed
	// repeatedly and is cooling off.
	ErrLaneQuarantined = errors.New("gateway: lane quarantined")
	// ErrWatchdogTimeout marks an iteration whose priced call exceeded
	// the watchdog budget; its batch is cancelled and requeued.
	ErrWatchdogTimeout = errors.New("gateway: iteration exceeded watchdog deadline")
	// ErrLaneBroken fails requests on a lane whose breaker is open and
	// which has no fallback cost model to degrade onto.
	ErrLaneBroken = errors.New("gateway: lane circuit breaker open")
)

// PanicError carries a recovered lane panic to the requests it failed.
type PanicError struct {
	Lane  string
	Value any
}

// Error describes the recovered panic.
func (e *PanicError) Error() string {
	return fmt.Sprintf("gateway: lane %s panicked: %v", e.Lane, e.Value)
}

// Unwrap lets errors.Is(err, ErrLanePanic) match.
func (e *PanicError) Unwrap() error { return ErrLanePanic }

// Injection sites the gateway threads through its hot path (see
// internal/faults).
const (
	siteLane    = "lane"
	sitePrefill = "cost.prefill"
	siteDecode  = "cost.decode"
)

// breakerState is the classic three-state circuit breaker.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker guards a lane's primary cost model. It is owned by the lane's
// scheduler goroutine — no locking. Consecutive primary failures open it;
// while open, pricing reroutes to the lane's fallback (degraded mode).
// After BreakerOpenPeriod one probe call is let through (half-open):
// success closes the breaker, failure re-opens it.
type breaker struct {
	state    breakerState
	fails    int
	reopenAt time.Time
}

// allowPrimary reports whether the primary cost model may be called now,
// transitioning open → half-open once the cool-off has elapsed.
func (b *breaker) allowPrimary(now time.Time) bool {
	if b.state != breakerOpen {
		return true
	}
	if now.Before(b.reopenAt) {
		return false
	}
	b.state = breakerHalfOpen
	return true
}

// onSuccess closes the breaker; it reports whether this was a transition
// out of open/half-open (for metrics).
func (b *breaker) onSuccess() bool {
	was := b.state
	b.state = breakerClosed
	b.fails = 0
	return was != breakerClosed
}

// onFailure records a primary failure; it reports whether this failure
// tripped the breaker closed → open (a half-open probe failure merely
// extends the open period).
func (b *breaker) onFailure(now time.Time, threshold int, openFor time.Duration) bool {
	b.fails++
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.reopenAt = now.Add(openFor)
	case breakerClosed:
		if b.fails >= threshold {
			b.state = breakerOpen
			b.reopenAt = now.Add(openFor)
			return true
		}
	}
	return false
}

// priceIteration prices one prefill or decode call for the lane, weaving
// in fault injection, the watchdog, the breaker and the degraded-mode
// fallback. It reports whether the returned cost came from the fallback.
func (g *Gateway) priceIteration(l *lane, prefill bool, batch, length int) (cost float64, degraded bool, err error) {
	if l.br.allowPrimary(time.Now()) {
		cost, err = g.watchdogCall(l, func() (float64, error) {
			site := siteDecode
			if prefill {
				site = sitePrefill
			}
			if ierr := g.inj.Apply(site, l.key); ierr != nil {
				return 0, ierr
			}
			if prefill {
				return l.cost.PrefillCost(batch, length)
			}
			return l.cost.DecodeStepCost(batch, length)
		})
		if err == nil {
			if l.br.onSuccess() {
				g.m.breakerClosed.Inc()
				g.m.breakerOpenLanes.Dec()
			}
			return cost, false, nil
		}
		if errors.Is(err, ErrWatchdogTimeout) {
			g.m.watchdogTimeouts.Inc()
		}
		if l.br.onFailure(time.Now(), g.cfg.BreakerThreshold, g.cfg.BreakerOpenPeriod) {
			g.m.breakerOpened.Inc()
			g.m.breakerOpenLanes.Inc()
		}
		if l.fallback == nil {
			return 0, false, err
		}
		// Primary failed but a fallback exists: serve this very call
		// degraded rather than failing the batch.
	} else if l.fallback == nil {
		return 0, false, fmt.Errorf("%w: lane %s", ErrLaneBroken, l.key)
	}
	if prefill {
		cost, err = l.fallback.PrefillCost(batch, length)
	} else {
		cost, err = l.fallback.DecodeStepCost(batch, length)
	}
	if err != nil {
		return 0, false, err
	}
	g.m.degradedIters.Inc()
	return cost, true, nil
}

// watchdogCall runs one priced call under the watchdog deadline. A call
// that overruns the budget is abandoned (its goroutine finishes in the
// background) and reported as ErrWatchdogTimeout so the scheduler can
// cancel and requeue the batch. A panic inside the call is converted to
// a PanicError instead of crashing the lane: cost-model panics are
// failures, not process events.
func (g *Gateway) watchdogCall(l *lane, f func() (float64, error)) (float64, error) {
	budget := g.cfg.WatchdogBudget
	if budget <= 0 {
		return f()
	}
	type priced struct {
		c   float64
		err error
	}
	ch := make(chan priced, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- priced{0, &PanicError{Lane: l.key, Value: r}}
			}
		}()
		c, err := f()
		ch <- priced{c, err}
	}()
	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case p := <-ch:
		return p.c, p.err
	case <-timer.C:
		return 0, fmt.Errorf("%w: lane %s exceeded %v", ErrWatchdogTimeout, l.key, budget)
	}
}

// failInflight fails every in-flight sequence of the lane with err.
func (g *Gateway) failInflight(l *lane, err error) {
	for _, s := range l.running {
		g.failSeq(s, err)
	}
	l.running = nil
	if l.pre != nil {
		g.failSeq(l.pre, err)
		l.pre = nil
	}
}

// requeueInflight pushes the lane's in-flight sequences back to the front
// of its queue after a watchdog cancellation, failing any job that has
// exhausted its requeue budget. Requeued jobs restart from prefill.
func (g *Gateway) requeueInflight(l *lane, cause error) {
	seqs := l.running
	if l.pre != nil {
		seqs = append(seqs, l.pre)
	}
	l.running = nil
	l.pre = nil
	var requeue []*job
	for _, s := range seqs {
		j := s.j
		if j.requeues >= g.cfg.MaxRequeues {
			g.failSeq(s, cause)
			continue
		}
		j.requeues++
		g.m.inflight.Dec()
		g.m.requeued.Inc()
		requeue = append(requeue, j)
	}
	if len(requeue) == 0 {
		return
	}
	g.mu.Lock()
	l.queue = append(requeue, l.queue...)
	g.waiting += len(requeue)
	g.mu.Unlock()
	g.m.queueDepth.Add(int64(len(requeue)))
}

// quarantineLane takes a repeatedly crashing lane out of service: queued
// jobs fail fast with ErrLaneQuarantined, and new submissions are
// rejected until the quarantine period elapses.
func (g *Gateway) quarantineLane(l *lane, now time.Time) {
	g.m.quarantines.Inc()
	g.m.quarantinedLanes.Inc()
	qerr := fmt.Errorf("%w: lane %s", ErrLaneQuarantined, l.key)
	g.mu.Lock()
	l.quarantinedUntil = now.Add(g.cfg.QuarantinePeriod)
	l.crashes = nil
	l.restarts = 0
	queued := l.queue
	l.queue = nil
	g.waiting -= len(queued)
	l.active = false
	g.mu.Unlock()
	for _, j := range queued {
		g.m.queueDepth.Dec()
		g.failQueuedJob(j, qerr)
	}
}

// failQueuedJob reports an error for a job that never reached admission
// (unlike failJob, it must not touch the in-flight gauge).
func (g *Gateway) failQueuedJob(j *job, err error) {
	g.m.failed.Inc()
	j.done <- jobOutcome{err: err}
}
