package gateway

// supervisor.go is the gateway's resilience layer: panic isolation and
// restart of lane workers, a per-call watchdog over the priced iteration,
// a per-lane circuit breaker that reroutes pricing to a degraded-mode
// fallback cost model, and quarantine of lanes that crash repeatedly.
// The aim is the serving posture the paper's context demands: partial
// failure (a wedged engine, a panicking worker, a failing cost model)
// degrades one lane's service, never the process.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/serve"
	"repro/internal/trace"
)

// Typed failure sentinels. The API layer maps these onto HTTP statuses;
// tests and clients match them with errors.Is.
var (
	// ErrLanePanic marks requests failed because their lane worker
	// panicked; the supervisor recovered it and restarted the lane.
	ErrLanePanic = errors.New("gateway: lane worker panicked")
	// ErrLaneQuarantined rejects submissions to a lane that crashed
	// repeatedly and is cooling off.
	ErrLaneQuarantined = errors.New("gateway: lane quarantined")
	// ErrWatchdogTimeout marks an iteration whose priced call exceeded
	// the watchdog budget; its batch is cancelled and requeued.
	ErrWatchdogTimeout = errors.New("gateway: iteration exceeded watchdog deadline")
	// ErrLaneBroken fails requests on a lane whose breaker is open and
	// which has no fallback cost model to degrade onto.
	ErrLaneBroken = errors.New("gateway: lane circuit breaker open")
)

// PanicError carries a recovered lane panic to the requests it failed.
type PanicError struct {
	Lane  string
	Value any
}

// Error describes the recovered panic.
func (e *PanicError) Error() string {
	return fmt.Sprintf("gateway: lane %s panicked: %v", e.Lane, e.Value)
}

// Unwrap lets errors.Is(err, ErrLanePanic) match.
func (e *PanicError) Unwrap() error { return ErrLanePanic }

// Injection sites the gateway threads through its hot path (see
// internal/faults).
const (
	siteLane    = "lane"
	sitePrefill = "cost.prefill"
	siteDecode  = "cost.decode"
	siteGovern  = "govern.kv"
)

// breakerState is the classic three-state circuit breaker.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker guards a lane's primary cost model. It is owned by the lane's
// scheduler goroutine — no locking. Consecutive primary failures open it;
// while open, pricing reroutes to the lane's fallback (degraded mode).
// After BreakerOpenPeriod one probe call is let through (half-open):
// success closes the breaker, failure re-opens it.
type breaker struct {
	state    breakerState
	fails    int
	reopenAt time.Time
}

// allowPrimary reports whether the primary cost model may be called now,
// transitioning open → half-open once the cool-off has elapsed.
func (b *breaker) allowPrimary(now time.Time) bool {
	if b.state != breakerOpen {
		return true
	}
	if now.Before(b.reopenAt) {
		return false
	}
	b.state = breakerHalfOpen
	return true
}

// onSuccess closes the breaker; it reports whether this was a transition
// out of open/half-open (for metrics).
func (b *breaker) onSuccess() bool {
	was := b.state
	b.state = breakerClosed
	b.fails = 0
	return was != breakerClosed
}

// onFailure records a primary failure; it reports whether this failure
// tripped the breaker closed → open (a half-open probe failure merely
// extends the open period).
func (b *breaker) onFailure(now time.Time, threshold int, openFor time.Duration) bool {
	b.fails++
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.reopenAt = now.Add(openFor)
	case breakerClosed:
		if b.fails >= threshold {
			b.state = breakerOpen
			b.reopenAt = now.Add(openFor)
			return true
		}
	}
	return false
}

// priceInfo describes how one priced call was served, so the scheduler can
// attach pricing spans and counter analogs to the traces of the sequences
// that rode the iteration: whether the fallback served it, the wall-clock
// window of the call, the injection site, and the model that produced the
// price (primary or fallback).
type priceInfo struct {
	degraded   bool
	start, end time.Time
	site       string
	model      costModel
}

// priceIteration prices one prefill or decode call for the lane, weaving
// in fault injection, the watchdog, the breaker and the degraded-mode
// fallback. The returned priceInfo reports whether the cost came from the
// fallback and which model priced it.
func (g *Gateway) priceIteration(l *lane, prefill bool, batch, length int) (float64, priceInfo, error) {
	site := siteDecode
	primary := func() (float64, error) { return l.cost.DecodeStepCost(batch, length) }
	if prefill {
		site = sitePrefill
		primary = func() (float64, error) { return l.cost.PrefillCost(batch, length) }
	}
	var fallback func() (float64, error)
	if l.fallback != nil {
		fallback = func() (float64, error) {
			if prefill {
				return l.fallback.PrefillCost(batch, length)
			}
			return l.fallback.DecodeStepCost(batch, length)
		}
	}
	return g.pricedCall(l, site, primary, fallback)
}

// pricedCall runs one priced call through the lane's resilience weave:
// fault injection at site, the watchdog deadline, the circuit breaker,
// and — when the primary fails or the breaker is open — the degraded-mode
// fallback (nil when the lane has none). The speculative scheduler routes
// its cycle pricing through here too, so chaos faults, watchdog requeues
// and breaker trips behave identically with and without speculation.
func (g *Gateway) pricedCall(l *lane, site string, primary, fallback func() (float64, error)) (float64, priceInfo, error) {
	info := priceInfo{start: time.Now(), site: site, model: l.cost}
	var cost float64
	var err error
	if l.br.allowPrimary(info.start) {
		cost, err = g.watchdogCall(l, func() (float64, error) {
			if ierr := g.inj.Apply(site, l.key); ierr != nil {
				return 0, ierr
			}
			return primary()
		})
		info.end = time.Now()
		if err == nil {
			if l.br.onSuccess() {
				g.m.breakerClosed.Inc()
				g.m.breakerOpenLanes.Dec()
				g.log.Info("gateway: breaker closed", "lane", l.key)
			}
			return cost, info, nil
		}
		if errors.Is(err, ErrWatchdogTimeout) {
			g.m.watchdogTimeouts.Inc()
			g.log.Warn("gateway: watchdog timeout",
				"lane", l.key, "site", info.site, "err", err)
		}
		if l.br.onFailure(info.end, g.cfg.BreakerThreshold, g.cfg.BreakerOpenPeriod) {
			g.m.breakerOpened.Inc()
			g.m.breakerOpenLanes.Inc()
			g.log.Warn("gateway: breaker opened", "lane", l.key, "err", err)
		}
		if fallback == nil {
			return 0, info, err
		}
		// Primary failed but a fallback exists: serve this very call
		// degraded rather than failing the batch.
	} else if fallback == nil {
		info.end = info.start
		return 0, info, fmt.Errorf("%w: lane %s", ErrLaneBroken, l.key)
	}
	info.model = l.fallback
	cost, err = fallback()
	info.end = time.Now()
	if err != nil {
		return 0, info, err
	}
	g.m.degradedIters.Inc()
	info.degraded = true
	return cost, info, nil
}

// counterAnalogs asks the model that priced an iteration for the phase's
// emulated hardware counters (LLC MPKI, core utilization, memory-bound
// fraction, UPI utilization). Models that cannot emulate counters —
// measured engines, GPU models — yield nil, and the span simply carries
// timing only.
func counterAnalogs(m costModel, prefill bool, batch, length int) *trace.Counters {
	cm, ok := m.(serve.CounterModel)
	if !ok {
		return nil
	}
	rep, ok := cm.PhaseCounters(prefill, batch, length)
	if !ok {
		return nil
	}
	return &trace.Counters{
		LLCMPKI:             rep.LLCMPKI,
		CoreUtilization:     rep.CoreUtilization,
		MemoryBoundFraction: rep.MemoryBoundFraction,
		UPIUtilization:      rep.UPIUtilization,
	}
}

// faultAttrs extracts injected-fault span attributes from an execution
// error, unwrapping recovered panics whose panic value was an injected
// fault. Non-injected failures yield nil.
func faultAttrs(err error) map[string]string {
	var inj *faults.Injected
	if errors.As(err, &inj) {
		return inj.Attrs()
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		if v, ok := pe.Value.(*faults.Injected); ok {
			attrs := v.Attrs()
			attrs["fault.panic"] = "true"
			return attrs
		}
	}
	return nil
}

// watchdogCall runs one priced call under the watchdog deadline. A call
// that overruns the budget is abandoned (its goroutine finishes in the
// background) and reported as ErrWatchdogTimeout so the scheduler can
// cancel and requeue the batch. A panic inside the call is converted to
// a PanicError instead of crashing the lane: cost-model panics are
// failures, not process events.
func (g *Gateway) watchdogCall(l *lane, f func() (float64, error)) (float64, error) {
	budget := g.cfg.WatchdogBudget
	if budget <= 0 {
		return f()
	}
	type priced struct {
		c   float64
		err error
	}
	ch := make(chan priced, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- priced{0, &PanicError{Lane: l.key, Value: r}}
			}
		}()
		c, err := f()
		ch <- priced{c, err}
	}()
	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case p := <-ch:
		return p.c, p.err
	case <-timer.C:
		return 0, fmt.Errorf("%w: lane %s exceeded %v", ErrWatchdogTimeout, l.key, budget)
	}
}

// failInflight fails every in-flight sequence of the lane with err,
// tagging each sequence's trace with the fault that killed it.
func (g *Gateway) failInflight(l *lane, err error) {
	n := len(l.running)
	if l.pre != nil {
		n++
	}
	if n == 0 {
		return
	}
	attrs := faultAttrs(err)
	now := time.Now()
	fail := func(s *seq) {
		if tr := s.j.req.Trace; tr != nil {
			if attrs != nil {
				tr.Event("fault", now, attrs)
			}
			tr.Event("failed", now, map[string]string{"err": err.Error()})
		}
		g.failSeq(s, err)
	}
	for _, s := range l.running {
		fail(s)
	}
	l.running = nil
	if l.pre != nil {
		fail(l.pre)
		l.pre = nil
	}
	g.log.Error("gateway: in-flight batch failed",
		"lane", l.key, "requests", n, "err", err)
}

// requeueInflight pushes the lane's in-flight sequences back to the front
// of its queue after a watchdog cancellation, failing any job that has
// exhausted its requeue budget. Requeued jobs restart from prefill.
func (g *Gateway) requeueInflight(l *lane, cause error) {
	seqs := l.running
	if l.pre != nil {
		seqs = append(seqs, l.pre)
	}
	l.running = nil
	l.pre = nil
	now := time.Now()
	var requeue []*job
	for _, s := range seqs {
		j := s.j
		// A requeued job restarts from prefill, so its KV reservation goes
		// back to the pool now; the lease (and its quota charge) survives
		// for readmission.
		j.lease.ReleaseBlocks()
		if tr := j.req.Trace; tr != nil {
			// The cancelled iteration's wall time tiles into a stalled
			// span, so the requeue round-trip stays visible and the
			// trace's tiling spans still sum to the request's residence.
			tr.Add(trace.SpanData{Name: trace.PhaseStalled,
				Start: s.mark, End: now,
				Attrs: map[string]string{"cause": cause.Error()}})
		}
		if j.requeues >= g.cfg.MaxRequeues {
			g.failSeq(s, cause)
			continue
		}
		j.requeues++
		j.lastMark = now
		j.req.Trace.Event("requeued", now,
			map[string]string{"requeues": fmt.Sprint(j.requeues)})
		g.m.inflight.Dec()
		g.m.requeued.Inc()
		requeue = append(requeue, j)
	}
	if len(requeue) == 0 {
		return
	}
	g.log.Warn("gateway: watchdog requeue",
		"lane", l.key, "requests", len(requeue), "cause", cause)
	g.mu.Lock()
	l.queue = append(requeue, l.queue...)
	g.waiting += len(requeue)
	g.mu.Unlock()
	g.m.queueDepth.Add(int64(len(requeue)))
}

// quarantineLane takes a repeatedly crashing lane out of service: queued
// jobs fail fast with ErrLaneQuarantined, and new submissions are
// rejected until the quarantine period elapses.
func (g *Gateway) quarantineLane(l *lane, now time.Time) {
	g.m.quarantines.Inc()
	g.m.quarantinedLanes.Inc()
	qerr := fmt.Errorf("%w: lane %s", ErrLaneQuarantined, l.key)
	g.mu.Lock()
	l.quarantinedUntil = now.Add(g.cfg.QuarantinePeriod)
	l.crashes = nil
	l.restarts = 0
	queued := l.queue
	l.queue = nil
	g.waiting -= len(queued)
	l.active = false
	g.mu.Unlock()
	g.log.Error("gateway: lane quarantined",
		"lane", l.key, "until", l.quarantinedUntil, "queued_failed", len(queued))
	for _, j := range queued {
		g.m.queueDepth.Dec()
		j.req.Trace.Event("quarantined", now, map[string]string{"lane": l.key})
		g.failQueuedJob(j, qerr)
	}
}

// failQueuedJob reports an error for a job that never reached admission
// (unlike failJob, it must not touch the in-flight gauge).
func (g *Gateway) failQueuedJob(j *job, err error) {
	g.m.failed.Inc()
	j.lease.Release()
	j.done <- jobOutcome{err: err}
}
