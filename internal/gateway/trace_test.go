package gateway

// trace_test.go covers the tracing contract of the serving path: the
// tiling phase spans (queue, batch, prefill, decode, stalled, preempted)
// partition a request's gateway residence so their sum matches measured
// latency, injected faults surface as tagged spans, and errored traces
// are retained regardless of the sample rate.

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// tilingPhases are the span names that partition gateway residence;
// pricing and admission spans overlap them and are excluded from the sum.
var tilingPhases = map[string]bool{
	trace.PhaseQueue:     true,
	trace.PhaseBatch:     true,
	trace.PhasePrefill:   true,
	trace.PhaseDecode:    true,
	trace.PhaseStalled:   true,
	trace.PhasePreempted: true,
}

func tilingSum(rec trace.Record) float64 {
	var sum float64
	for _, s := range rec.Spans {
		if tilingPhases[s.Name] {
			sum += float64(s.DurationNanos) / 1e9
		}
	}
	return sum
}

// TestTraceSpanSumMatchesLatency runs concurrent requests against a
// timescaled gateway (so modeled sleeps dominate wall time) and asserts
// each trace's tiling spans sum to the measured Generate latency within
// 5%, including requests that spend most of their life queued or batched
// with others.
func TestTraceSpanSumMatchesLatency(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := trace.New(trace.Config{SampleRate: 1, Registry: reg})
	g := New(Config{MaxQueue: 64, MaxBatch: 4, Workers: 1, Timescale: 1,
		Registry: reg, Tracer: tr},
		fixedResolver(fakeCost{pre: 0.040, dec: 0.004}))
	defer g.Shutdown(context.Background())

	const n = 6
	var wg sync.WaitGroup
	ids := make([]string, n)
	walls := make([]float64, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tc := tr.Start("req")
			ids[i] = tc.ID()
			start := time.Now()
			_, errs[i] = g.Generate(context.Background(),
				Request{Lane: "t", InputLen: 128, OutputLen: 8, Trace: tc})
			walls[i] = time.Since(start).Seconds()
			tc.Finish()
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		rec, ok := tr.Get(ids[i])
		if !ok {
			t.Fatalf("request %d: trace %s not retained", i, ids[i])
		}
		sum := tilingSum(rec)
		if walls[i] < 0.05 {
			t.Fatalf("request %d: wall %.4fs too small for a meaningful ±5%% check", i, walls[i])
		}
		if rel := math.Abs(sum-walls[i]) / walls[i]; rel > 0.05 {
			t.Errorf("request %d: tiling span sum %.4fs vs wall %.4fs (%.1f%% off)",
				i, sum, walls[i], rel*100)
		}
	}
}

// TestTraceFaultSpansTagged injects a cost-model fault and asserts the
// failed request's trace is retained (despite sample rate 0) and carries
// a "fault" event tagged with the injected rule's class and site.
func TestTraceFaultSpansTagged(t *testing.T) {
	inj := faults.New(1)
	if err := inj.Arm(faults.Rule{Class: faults.CostError, Site: "cost.prefill", Every: 1, Count: 1}); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	tr := trace.New(trace.Config{SampleRate: 0, Registry: reg})
	g := New(Config{MaxQueue: 16, MaxBatch: 2, Workers: 1,
		Registry: reg, Tracer: tr, Injector: inj},
		fixedResolver(fakeCost{pre: 0.001, dec: 0.001}))
	defer g.Shutdown(context.Background())

	tc := tr.Start("req")
	_, err := g.Generate(context.Background(),
		Request{Lane: "t", InputLen: 64, OutputLen: 2, Trace: tc})
	if err == nil {
		t.Fatal("injected cost error did not fail the request")
	}
	tc.Finish()

	rec, ok := tr.Get(tc.ID())
	if !ok {
		t.Fatal("errored trace was not retained at sample rate 0")
	}
	if rec.Status != "error" {
		t.Errorf("trace status %q, want error", rec.Status)
	}
	var fault *trace.Span
	for i := range rec.Spans {
		if rec.Spans[i].Name == "fault" {
			fault = &rec.Spans[i]
		}
	}
	if fault == nil {
		t.Fatalf("no fault event in spans: %+v", rec.Spans)
	}
	if fault.Attrs["fault.class"] != "cost-error" || fault.Attrs["fault.site"] != "cost.prefill" {
		t.Errorf("fault attrs %v, want class=cost-error site=cost.prefill", fault.Attrs)
	}
}

// TestChaosTracesSurviveLanePanics runs a traced wave through lane-worker
// panics (the chaos drill) and asserts tracing never loses a request:
// every failed request's trace is retained with its error and a tagged
// fault event, and successful traces keep their full phase tiling.
func TestChaosTracesSurviveLanePanics(t *testing.T) {
	inj := faults.New(1)
	if err := inj.Arm(faults.Rule{Class: faults.Panic, Site: "lane", Every: 9, Count: 3}); err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig(inj)
	tr := trace.New(trace.Config{SampleRate: 1, Registry: cfg.Registry})
	cfg.Tracer = tr
	g := New(cfg, fixedResolver(fakeCost{pre: 0.002, dec: 0.0002}))
	defer g.Shutdown(context.Background())

	const n = chaosClients
	var wg sync.WaitGroup
	ids := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tc := tr.Start("req")
			ids[i] = tc.ID()
			_, errs[i] = g.Generate(context.Background(),
				Request{Lane: "chaos", InputLen: 64, OutputLen: 4, Trace: tc})
			tc.Finish()
		}(i)
	}
	wg.Wait()

	var failed int
	for i := 0; i < n; i++ {
		rec, ok := tr.Get(ids[i])
		if !ok {
			t.Fatalf("request %d: trace %s lost (err=%v)", i, ids[i], errs[i])
		}
		if errs[i] != nil {
			failed++
			if rec.Status != "error" {
				t.Errorf("request %d failed (%v) but trace status is %q", i, errs[i], rec.Status)
			}
			var tagged bool
			for _, s := range rec.Spans {
				if s.Name == "fault" && s.Attrs["fault.class"] == "panic" {
					tagged = true
				}
			}
			if !tagged {
				t.Errorf("request %d: panic-failed trace has no tagged fault event: %+v", i, rec.Spans)
			}
			continue
		}
		// Survivors must keep a complete tiling: queue through decode.
		for _, phase := range []string{trace.PhaseQueue, trace.PhasePrefill, trace.PhaseDecode} {
			var found bool
			for _, s := range rec.Spans {
				if s.Name == phase {
					found = true
				}
			}
			if !found {
				t.Errorf("request %d: missing %s span after chaos: %+v", i, phase, rec.Spans)
			}
		}
	}
	// The panic rule may fire on a pass with an empty batch (failing no
	// request), so assert the drill happened via the recovery counter, as
	// the seed chaos suite does.
	if got := g.Registry().Counter("gateway_lane_panics_total", "").Value(); got < 1 {
		t.Errorf("no recovered panics counted (got %d)", got)
	}
	if failed > 3*cfg.MaxBatch {
		t.Errorf("%d failures exceed the 3-fire × batch budget", failed)
	}
}
