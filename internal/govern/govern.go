// Package govern is the live gateway's KV-memory governor. The paper's
// Fig 7 story (§III) is that KV-cache demand — batch × sequence length —
// caps serving throughput before compute does; internal/serve models that
// offline over internal/kvpool. This package brings the same finite-budget
// discipline to the live serving path: every gateway lane owns a paged
// kvpool.Pool sized from its platform's memory tiers, requests reserve
// blocks at admission (conservative full-context or vLLM-style optimistic
// prompt-only reservation, mirroring serve/preempt.go), and memory
// exhaustion becomes a first-class, recoverable serving condition instead
// of silent oversubscription:
//
//   - watermark load shedding: above HighWatermark of the effective pool
//     the lane sheds new admissions with ErrShedding (HTTP 503 +
//     Retry-After) and recovers below LowWatermark (hysteresis);
//   - per-client token quotas: one tenant cannot hold more than
//     QuotaTokens of KV context in flight (ErrQuotaExceeded, HTTP 429);
//   - preemption accounting for the gateway's evict-youngest-and-recompute
//     path, exported per lane through the metrics registry;
//   - a standing mem-pressure hook (SetPressure) the fault injector drives
//     to shrink a lane's effective pool at runtime.
package govern

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/kvpool"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/prefixcache"
	"repro/internal/tensor"
)

// Sentinel errors the API layer maps to HTTP statuses.
var (
	// ErrShedding rejects a submission while its lane is above the high
	// watermark (HTTP 503 + Retry-After; /readyz reports not-ready).
	ErrShedding = errors.New("govern: KV memory pressure, shedding new work")
	// ErrQuotaExceeded rejects a submission that would push its client
	// over the per-client in-flight token quota (HTTP 429 + Retry-After).
	ErrQuotaExceeded = errors.New("govern: per-client KV token quota exceeded")
	// ErrNeverFits rejects a request whose full context exceeds the
	// lane's entire pool — it could never complete, only deadlock or
	// thrash (HTTP 422).
	ErrNeverFits = errors.New("govern: request context can never fit the lane's KV pool")
	// ErrKVExhausted fails a request that was preempted more times than
	// its requeue budget allows while the pool stayed exhausted
	// (HTTP 503 + Retry-After).
	ErrKVExhausted = errors.New("govern: KV pool exhausted, requeue budget spent")
)

// PoolSpec sizes one lane's KV pool.
type PoolSpec struct {
	// Model provides the KV-bytes-per-token geometry.
	Model model.Config
	// DType is the cache element type (typically tensor.BF16).
	DType tensor.DType
	// BlockSize is the paged-allocation granularity in tokens; 0 takes
	// DefaultBlockSize.
	BlockSize int
	// BudgetBytes is the lane's KV budget, typically the platform's
	// HBM/DDR capacity minus resident weights.
	BudgetBytes int64
}

// DefaultBlockSize is the paged-attention block granularity in tokens.
const DefaultBlockSize = 16

// SpecResolver maps a lane key to its pool sizing on first use.
type SpecResolver func(lane string) (PoolSpec, error)

// Config tunes the governor.
type Config struct {
	// Specs resolves per-lane pool sizing. Required.
	Specs SpecResolver
	// Conservative reserves a request's full context (in + out) at
	// admission, so decode can never exhaust the pool mid-flight. The
	// default (false) is vLLM-style optimistic admission: prompt-only
	// reservation, per-token growth, preemption-by-recompute of the
	// youngest sequence on exhaustion.
	Conservative bool
	// HighWatermark is the effective-pool utilization at or above which a
	// lane sheds new admissions. Default 0.95.
	HighWatermark float64
	// LowWatermark is the utilization at or below which a shedding lane
	// recovers. Default 0.75.
	LowWatermark float64
	// QuotaTokens bounds one client's in-flight KV context (in + out
	// tokens summed over its unfinished requests) across all lanes.
	// 0 disables quotas.
	QuotaTokens int
	// EnableCache gives every lane a prefix-cache radix tree over its
	// pool: finished prefills donate their prompt blocks, and later
	// requests sharing a token prefix adopt them copy-on-write instead
	// of recomputing prefill. Retained blocks are charged against the
	// same budget as live sequences and evicted LRU-first when the lane
	// crosses its high watermark, before any shedding.
	EnableCache bool
	// Registry receives the governor's instruments; a private registry is
	// created when nil.
	Registry *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.HighWatermark <= 0 || c.HighWatermark > 1 {
		c.HighWatermark = 0.95
	}
	if c.LowWatermark <= 0 || c.LowWatermark >= c.HighWatermark {
		c.LowWatermark = 0.75 * c.HighWatermark / 0.95
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	return c
}

// laneState is one lane's pool with its governance bookkeeping.
type laneState struct {
	key         string
	pool        *kvpool.Pool
	tree        *prefixcache.Tree // nil unless Config.EnableCache
	pressure    float64
	shedding    bool
	preemptions int

	// Per-lane instruments with delta cursors for the pool's monotonic
	// counters (the registry has no labels, so names embed the lane key).
	total, free, effective, shedGauge    *metrics.Gauge
	allocsC, cowC, preemptsC             *metrics.Counter
	lastAllocs, lastCoW                  int
	cacheHitsC, cacheMissC               *metrics.Counter
	cacheTokC, cacheEvictC               *metrics.Counter
	cacheRetainedG                       *metrics.Gauge
	lastHits, lastMiss, lastTok, lastEvt uint64
}

// Governor places every lane of a gateway under a finite KV budget.
type Governor struct {
	cfg Config

	mu        sync.Mutex
	lanes     map[string]*laneState
	clients   map[string]int // client → in-flight KV tokens
	shedCount int            // lanes currently shedding

	shedTotal, quotaRejects, preemptTotal *metrics.Counter
	sheddingLanes, governedLanes          *metrics.Gauge
}

// New returns a governor. It panics if cfg.Specs is nil — a governor
// without pool sizing cannot admit anything.
func New(cfg Config) *Governor {
	if cfg.Specs == nil {
		panic("govern: Config.Specs is required")
	}
	cfg = cfg.withDefaults()
	r := cfg.Registry
	return &Governor{
		cfg:     cfg,
		lanes:   map[string]*laneState{},
		clients: map[string]int{},

		shedTotal:     r.Counter("govern_shed_total", "admissions shed above the KV high watermark (503)"),
		quotaRejects:  r.Counter("govern_quota_rejected_total", "admissions rejected by per-client token quotas (429)"),
		preemptTotal:  r.Counter("govern_preemptions_total", "sequences preempted back to the queue on KV exhaustion"),
		sheddingLanes: r.Gauge("govern_shedding_lanes", "lanes currently above the KV high watermark"),
		governedLanes: r.Gauge("govern_lanes", "lanes under KV governance"),
	}
}

// Conservative reports the admission mode (see Config.Conservative).
func (g *Governor) Conservative() bool { return g != nil && g.cfg.Conservative }

// Mode names the admission mode for status output.
func (g *Governor) Mode() string {
	if g.Conservative() {
		return "conservative"
	}
	return "optimistic"
}

// AdmitTokens returns how many tokens a lane must reserve at admission
// for a request: the full context under conservative mode, the prompt
// only under optimistic mode.
func (g *Governor) AdmitTokens(in, out int) int {
	if g.Conservative() {
		return in + out
	}
	return in
}

// sanitizeMetric maps a lane key onto a Prometheus-legal metric suffix:
// the flat registry has no label support, so per-lane series embed the
// lane in the metric name.
func sanitizeMetric(lane string) string {
	b := []byte(lane)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// laneLocked resolves (or creates) a lane's governed pool. Callers hold g.mu.
func (g *Governor) laneLocked(lane string) (*laneState, error) {
	if ls := g.lanes[lane]; ls != nil {
		return ls, nil
	}
	spec, err := g.cfg.Specs(lane)
	if err != nil {
		return nil, err
	}
	if spec.BlockSize <= 0 {
		spec.BlockSize = DefaultBlockSize
	}
	pool, err := kvpool.New(spec.Model, spec.DType, spec.BlockSize, spec.BudgetBytes)
	if err != nil {
		return nil, fmt.Errorf("govern: sizing lane %s: %w", lane, err)
	}
	r := g.cfg.Registry
	sfx := sanitizeMetric(lane)
	ls := &laneState{
		key:       lane,
		pool:      pool,
		total:     r.Gauge("govern_kv_blocks_total_"+sfx, "KV pool capacity in blocks, lane "+lane),
		free:      r.Gauge("govern_kv_blocks_free_"+sfx, "free KV blocks, lane "+lane),
		effective: r.Gauge("govern_kv_blocks_effective_"+sfx, "usable KV blocks under mem-pressure, lane "+lane),
		shedGauge: r.Gauge("govern_kv_shedding_"+sfx, "1 while the lane sheds above the high watermark, lane "+lane),
		allocsC:   r.Counter("govern_kv_allocs_total_"+sfx, "KV block allocations, lane "+lane),
		cowC:      r.Counter("govern_kv_cow_copies_total_"+sfx, "copy-on-write block copies, lane "+lane),
		preemptsC: r.Counter("govern_kv_preemptions_total_"+sfx, "sequences preempted on KV exhaustion, lane "+lane),
	}
	if g.cfg.EnableCache {
		ls.tree = prefixcache.New(pool)
		ls.cacheHitsC = r.Counter("govern_cache_hits_total_"+sfx, "prefix-cache lookup hits, lane "+lane)
		ls.cacheMissC = r.Counter("govern_cache_misses_total_"+sfx, "prefix-cache lookup misses, lane "+lane)
		ls.cacheTokC = r.Counter("govern_cache_hit_tokens_total_"+sfx, "prompt tokens served from the prefix cache, lane "+lane)
		ls.cacheEvictC = r.Counter("govern_cache_evictions_total_"+sfx, "prefix-cache blocks evicted, lane "+lane)
		ls.cacheRetainedG = r.Gauge("govern_cache_retained_blocks_"+sfx, "pool blocks retained by the prefix cache, lane "+lane)
	}
	g.lanes[lane] = ls
	g.governedLanes.Inc()
	g.evalLocked(ls)
	return ls, nil
}

// evalLocked refreshes a lane's exported pool statistics and applies the
// watermark hysteresis: utilization of the *effective* (pressure-shrunk)
// capacity at or above HighWatermark starts shedding; at or below
// LowWatermark it stops. Callers hold g.mu.
func (g *Governor) evalLocked(ls *laneState) {
	st := ls.pool.Stats()
	ls.total.Set(int64(st.TotalBlocks))
	ls.free.Set(int64(st.FreeBlocks))
	ls.effective.Set(int64(st.EffectiveBlocks))
	if d := st.Allocations - ls.lastAllocs; d > 0 {
		ls.allocsC.Add(uint64(d))
		ls.lastAllocs = st.Allocations
	}
	if d := st.CoWCopies - ls.lastCoW; d > 0 {
		ls.cowC.Add(uint64(d))
		ls.lastCoW = st.CoWCopies
	}
	if ls.tree != nil {
		// Watermark pressure evicts cold cache before it sheds live
		// traffic: above the high mark, drop LRU retained blocks until
		// usage would fall to the low mark (pinned paths are skipped,
		// and adopted forks keep their blocks via pool refcounts, so
		// eviction never breaks an in-flight request).
		used := st.TotalBlocks - st.FreeBlocks
		if st.EffectiveBlocks > 0 &&
			float64(used)/float64(st.EffectiveBlocks) >= g.cfg.HighWatermark {
			target := int(g.cfg.LowWatermark * float64(st.EffectiveBlocks))
			if excess := used - target; excess > 0 {
				if ls.tree.EvictLRU(excess) > 0 {
					st = ls.pool.Stats()
				}
			}
		}
		cs := ls.tree.Stats()
		if d := cs.Hits - ls.lastHits; d > 0 {
			ls.cacheHitsC.Add(d)
			ls.lastHits = cs.Hits
		}
		if d := cs.Misses - ls.lastMiss; d > 0 {
			ls.cacheMissC.Add(d)
			ls.lastMiss = cs.Misses
		}
		if d := cs.HitTokens - ls.lastTok; d > 0 {
			ls.cacheTokC.Add(d)
			ls.lastTok = cs.HitTokens
		}
		if d := cs.Evictions - ls.lastEvt; d > 0 {
			ls.cacheEvictC.Add(d)
			ls.lastEvt = cs.Evictions
		}
		ls.cacheRetainedG.Set(int64(cs.RetainedBlocks))
	}

	used := st.TotalBlocks - st.FreeBlocks
	util := 1.0 // a zero effective pool is saturated by definition
	if st.EffectiveBlocks > 0 {
		util = float64(used) / float64(st.EffectiveBlocks)
	} else if used == 0 && st.TotalBlocks > 0 {
		// Nothing held and nothing usable: stay shedding until pressure
		// lifts, except a lane that never admitted anything.
		util = 1.0
	}
	switch {
	case !ls.shedding && util >= g.cfg.HighWatermark:
		ls.shedding = true
		ls.shedGauge.Set(1)
		g.shedCount++
		g.sheddingLanes.Inc()
	case ls.shedding && util <= g.cfg.LowWatermark:
		ls.shedding = false
		ls.shedGauge.Set(0)
		g.shedCount--
		g.sheddingLanes.Dec()
	}
}

// Admit runs the admission checks for one request and, when they pass,
// charges the client's quota and returns the request's Lease. The checks,
// in order: the context must structurally fit the lane's pool
// (ErrNeverFits), the client must have quota headroom (ErrQuotaExceeded),
// and the lane must be below its shedding watermark (ErrShedding). A nil
// governor admits everything with a nil lease.
func (g *Governor) Admit(lane, client string, in, out int) (*Lease, error) {
	if g == nil {
		return nil, nil
	}
	if client == "" {
		client = "anonymous"
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	ls, err := g.laneLocked(lane)
	if err != nil {
		return nil, err
	}
	need := in + out
	bs := ls.pool.BlockSize()
	if (need+bs-1)/bs > ls.pool.TotalBlocks() {
		return nil, fmt.Errorf("%w: lane %s context %d tokens, pool capacity %d",
			ErrNeverFits, lane, need, ls.pool.TotalBlocks()*bs)
	}
	if q := g.cfg.QuotaTokens; q > 0 && g.clients[client]+need > q {
		g.quotaRejects.Inc()
		return nil, fmt.Errorf("%w: client %q holds %d tokens in flight, quota %d",
			ErrQuotaExceeded, client, g.clients[client], q)
	}
	g.evalLocked(ls)
	if ls.shedding {
		g.shedTotal.Inc()
		return nil, fmt.Errorf("%w: lane %s", ErrShedding, lane)
	}
	g.clients[client] += need
	return &Lease{g: g, ls: ls, client: client, tokens: need}, nil
}

// SetPressure applies the fault injector's standing mem-pressure to a
// lane: frac of the pool's capacity is withheld from allocation. The
// lane's shedding state re-evaluates immediately in both directions, so
// deleting the fault rule starts recovery at the next scheduler pass.
func (g *Governor) SetPressure(lane string, frac float64) {
	if g == nil {
		return
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	ls := g.lanes[lane]
	if ls == nil || ls.pressure == frac {
		return
	}
	ls.pressure = frac
	total := ls.pool.TotalBlocks()
	ls.pool.SetEffectiveCapacity(total - int(frac*float64(total)))
	g.evalLocked(ls)
}

// Shedding reports whether any lane is above its high watermark (for
// /readyz). Nil-safe.
func (g *Governor) Shedding() bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.shedCount > 0
}

// LaneStatus is one lane's governance snapshot.
type LaneStatus struct {
	Lane            string  `json:"lane"`
	BlockSize       int     `json:"block_size"`
	TotalBlocks     int     `json:"total_blocks"`
	FreeBlocks      int     `json:"free_blocks"`
	EffectiveBlocks int     `json:"effective_blocks"`
	Utilization     float64 `json:"utilization"`
	Pressure        float64 `json:"pressure,omitempty"`
	Shedding        bool    `json:"shedding,omitempty"`
	Allocations     int     `json:"allocations"`
	CoWCopies       int     `json:"cow_copies"`
	Preemptions     int     `json:"preemptions"`
	// Cache is the lane's prefix-cache summary; nil when caching is off.
	Cache *prefixcache.Stats `json:"cache,omitempty"`
}

// Status is the governor's observable state (GET /v1/kv).
type Status struct {
	Mode          string         `json:"mode"`
	HighWatermark float64        `json:"high_watermark"`
	LowWatermark  float64        `json:"low_watermark"`
	Shedding      bool           `json:"shedding"`
	QuotaTokens   int            `json:"quota_tokens_per_client,omitempty"`
	Clients       map[string]int `json:"clients_in_flight,omitempty"`
	Lanes         []LaneStatus   `json:"lanes"`
}

// Snapshot returns the current per-lane pool state, lanes sorted by key.
func (g *Governor) Snapshot() Status {
	if g == nil {
		return Status{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := Status{
		Mode:          g.Mode(),
		HighWatermark: g.cfg.HighWatermark,
		LowWatermark:  g.cfg.LowWatermark,
		Shedding:      g.shedCount > 0,
		QuotaTokens:   g.cfg.QuotaTokens,
		Lanes:         make([]LaneStatus, 0, len(g.lanes)),
	}
	if len(g.clients) > 0 {
		st.Clients = make(map[string]int, len(g.clients))
		for c, t := range g.clients {
			st.Clients[c] = t
		}
	}
	for _, ls := range g.lanes {
		ps := ls.pool.Stats()
		used := ps.TotalBlocks - ps.FreeBlocks
		var util float64
		if ps.EffectiveBlocks > 0 {
			util = float64(used) / float64(ps.EffectiveBlocks)
		} else if used > 0 {
			util = 1
		}
		lst := LaneStatus{
			Lane: ls.key, BlockSize: ls.pool.BlockSize(),
			TotalBlocks: ps.TotalBlocks, FreeBlocks: ps.FreeBlocks,
			EffectiveBlocks: ps.EffectiveBlocks, Utilization: util,
			Pressure: ls.pressure, Shedding: ls.shedding,
			Allocations: ps.Allocations, CoWCopies: ps.CoWCopies,
			Preemptions: ls.preemptions,
		}
		if ls.tree != nil {
			cs := ls.tree.Stats()
			lst.Cache = &cs
		}
		st.Lanes = append(st.Lanes, lst)
	}
	sort.Slice(st.Lanes, func(a, b int) bool { return st.Lanes[a].Lane < st.Lanes[b].Lane })
	return st
}

// CacheEnabled reports whether lanes carry prefix-cache trees. Nil-safe.
func (g *Governor) CacheEnabled() bool { return g != nil && g.cfg.EnableCache }

// CacheLaneStatus is one lane's prefix-cache snapshot (GET /v1/cache).
type CacheLaneStatus struct {
	Lane string `json:"lane"`
	prefixcache.Stats
	HitRate float64 `json:"hit_rate"`
}

// CacheStatus aggregates prefix-cache state across lanes.
type CacheStatus struct {
	Enabled        bool              `json:"enabled"`
	Nodes          int               `json:"nodes"`
	RetainedBlocks int               `json:"retained_blocks"`
	Hits           uint64            `json:"hits"`
	Misses         uint64            `json:"misses"`
	HitTokens      uint64            `json:"hit_tokens"`
	Evictions      uint64            `json:"evictions"`
	HitRate        float64           `json:"hit_rate"`
	Lanes          []CacheLaneStatus `json:"lanes,omitempty"`
}

// CacheSnapshot returns the prefix-cache state, lanes sorted by key.
func (g *Governor) CacheSnapshot() CacheStatus {
	if g == nil {
		return CacheStatus{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := CacheStatus{Enabled: g.cfg.EnableCache}
	for _, ls := range g.lanes {
		if ls.tree == nil {
			continue
		}
		cs := ls.tree.Stats()
		st.Nodes += cs.Nodes
		st.RetainedBlocks += cs.RetainedBlocks
		st.Hits += cs.Hits
		st.Misses += cs.Misses
		st.HitTokens += cs.HitTokens
		st.Evictions += cs.Evictions
		st.Lanes = append(st.Lanes, CacheLaneStatus{
			Lane: ls.key, Stats: cs, HitRate: cs.HitRate(),
		})
	}
	if n := st.Hits + st.Misses; n > 0 {
		st.HitRate = float64(st.Hits) / float64(n)
	}
	sort.Slice(st.Lanes, func(a, b int) bool { return st.Lanes[a].Lane < st.Lanes[b].Lane })
	return st
}

// FlushCache drops every unpinned cache entry across all lanes and
// returns how many pool blocks were released (POST /v1/admin/cache/flush).
func (g *Governor) FlushCache() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	released := 0
	for _, ls := range g.lanes {
		if ls.tree == nil {
			continue
		}
		released += ls.tree.Flush()
		g.evalLocked(ls)
	}
	return released
}

// Lease is one admitted request's claim on its lane's pool and its
// client's quota. The gateway's lane scheduler drives it: Reserve at lane
// admission, Grow per decoded token (optimistic mode), Preempt or
// ReleaseBlocks when the sequence is evicted back to the queue, Release
// exactly once when the request reaches any terminal outcome. All methods
// are nil-safe and Release is idempotent, so every gateway exit path may
// call it unconditionally.
type Lease struct {
	g      *Governor
	ls     *laneState
	client string
	tokens int

	mu       sync.Mutex
	alloc    *kvpool.Sequence
	released bool
}

// note re-evaluates the lane's watermarks and stats after a pool change.
func (l *Lease) note() {
	l.g.mu.Lock()
	l.g.evalLocked(l.ls)
	l.g.mu.Unlock()
}

// Reserve allocates blocks for tokens of context (the prompt, or the full
// context under conservative admission). On exhaustion it returns
// kvpool.ErrOutOfBlocks with nothing held.
func (l *Lease) Reserve(tokens int) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	if l.released {
		l.mu.Unlock()
		return fmt.Errorf("govern: reserve on a released lease")
	}
	if l.alloc != nil {
		l.mu.Unlock()
		return fmt.Errorf("govern: lease already holds a reservation")
	}
	s := l.ls.pool.NewSequence()
	err := s.Append(tokens)
	if err == nil {
		l.alloc = s
	}
	l.mu.Unlock()
	l.note()
	return err
}

// ReserveWithPrefix is Reserve with a prefix-cache lookup: the request's
// prompt, described as hashable segments, is matched against the lane's
// radix tree, matched blocks are adopted copy-on-write, and only the
// remainder is freshly allocated. tokens is the reservation size (prompt,
// or full context under conservative admission); promptTokens is the
// prompt length the segments describe. It returns how many prompt tokens
// the cache covered (0 on a miss, on a match shorter than minPrefix, or
// when caching is off). At least one prompt token is always left to
// prefill — the last position's logits seed decode — so cached <
// promptTokens always holds. On exhaustion it evicts LRU cache entries
// once and retries; a reservation that still fails holds nothing.
func (l *Lease) ReserveWithPrefix(segs []prefixcache.Segment, tokens, promptTokens, minPrefix int) (int, error) {
	if l == nil {
		return 0, nil
	}
	tree := l.ls.tree
	if tree == nil || len(segs) == 0 {
		return 0, l.Reserve(tokens)
	}
	if promptTokens > tokens {
		promptTokens = tokens
	}
	bs := l.ls.pool.BlockSize()
	keys := prefixcache.BlockKeys(segs, bs)
	if len(keys) == 0 {
		return 0, l.Reserve(tokens)
	}
	l.mu.Lock()
	if l.released {
		l.mu.Unlock()
		return 0, fmt.Errorf("govern: reserve on a released lease")
	}
	if l.alloc != nil {
		l.mu.Unlock()
		return 0, fmt.Errorf("govern: lease already holds a reservation")
	}
	m := tree.Lookup(keys)
	cached := 0
	var s *kvpool.Sequence
	if m != nil {
		nblocks := len(m.Blocks)
		if limit := (promptTokens - 1) / bs; nblocks > limit {
			nblocks = limit
		}
		if nblocks > 0 && nblocks*bs >= minPrefix {
			adopted, err := l.ls.pool.AdoptPrefix(m.Blocks[:nblocks], nblocks*bs)
			if err == nil {
				s = adopted
				cached = nblocks * bs
			}
		}
	}
	if s == nil {
		s = l.ls.pool.NewSequence()
	}
	err := s.Append(tokens - cached)
	if err != nil {
		// Exhaustion with cold cache retained: reclaim and retry once.
		if tree.EvictLRU((tokens+bs-1)/bs) > 0 {
			err = s.Append(tokens - cached)
		}
	}
	if err != nil && cached > 0 {
		_ = s.Free() // drop the adopted references; hold nothing
		cached = 0
	} else if err == nil {
		l.alloc = s
	}
	m.Release()
	l.mu.Unlock()
	l.note()
	return cached, err
}

// DonatePrefix offers the reservation's prompt blocks to the lane's
// prefix cache under the same segment hashing ReserveWithPrefix matches
// on. Only whole blocks covered by the shareable segment prefix are
// indexed; the tree takes its own pool references, so the donor's later
// Free leaves cached blocks alive. Returns how many new blocks the tree
// retained (0 when caching is off or everything was already cached).
func (l *Lease) DonatePrefix(segs []prefixcache.Segment) int {
	if l == nil || l.ls.tree == nil || len(segs) == 0 {
		return 0
	}
	bs := l.ls.pool.BlockSize()
	keys := prefixcache.BlockKeys(segs, bs)
	if len(keys) == 0 {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.released || l.alloc == nil {
		return 0
	}
	blocks := l.alloc.Blocks()
	n := len(keys)
	if n > len(blocks) {
		n = len(blocks)
	}
	if n == 0 {
		return 0
	}
	return l.ls.tree.Insert(keys[:n], blocks[:n])
}

// Grow extends the reservation by n tokens (one per decode step under
// optimistic admission). A failed grow holds what it held before.
func (l *Lease) Grow(n int) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	if l.alloc == nil {
		l.mu.Unlock()
		return fmt.Errorf("govern: grow without a reservation")
	}
	err := l.alloc.Append(n)
	l.mu.Unlock()
	l.note()
	return err
}

// Held reports whether the lease currently holds blocks.
func (l *Lease) Held() bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.alloc != nil
}

// releaseBlocks frees the reservation, keeping the lease (and its quota
// charge) alive for readmission.
func (l *Lease) releaseBlocks() {
	l.mu.Lock()
	if l.alloc != nil {
		_ = l.alloc.Free()
		l.alloc = nil
	}
	l.mu.Unlock()
	l.note()
}

// ReleaseBlocks frees the reservation without a terminal outcome — the
// watchdog-requeue path, where the request restarts from prefill later.
func (l *Lease) ReleaseBlocks() {
	if l == nil {
		return
	}
	l.releaseBlocks()
}

// Preempt frees the reservation and counts a preemption — the
// KV-exhaustion eviction path (recompute on readmission).
func (l *Lease) Preempt() {
	if l == nil {
		return
	}
	l.releaseBlocks()
	l.g.mu.Lock()
	l.ls.preemptions++
	l.ls.preemptsC.Inc()
	l.g.preemptTotal.Inc()
	l.g.mu.Unlock()
}

// Release frees the reservation and refunds the client's quota. It is
// idempotent; every terminal path of the gateway calls it.
func (l *Lease) Release() {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.released {
		l.mu.Unlock()
		return
	}
	l.released = true
	if l.alloc != nil {
		_ = l.alloc.Free()
		l.alloc = nil
	}
	l.mu.Unlock()

	l.g.mu.Lock()
	if rem := l.g.clients[l.client] - l.tokens; rem > 0 {
		l.g.clients[l.client] = rem
	} else {
		delete(l.g.clients, l.client)
	}
	l.g.evalLocked(l.ls)
	l.g.mu.Unlock()
}
