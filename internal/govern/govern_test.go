package govern

import (
	"errors"
	"testing"

	"repro/internal/kvpool"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/prefixcache"
	"repro/internal/tensor"
)

// specFor returns a resolver sizing every lane to exactly blocks blocks of
// blockSize tokens over the tiny OPT shape.
func specFor(blocks, blockSize int) SpecResolver {
	m := model.Tiny(model.OPT)
	per := m.KVBytesPerTokenPerLayer(tensor.BF16) * int64(m.Layers) * int64(blockSize)
	return func(lane string) (PoolSpec, error) {
		return PoolSpec{Model: m, DType: tensor.BF16, BlockSize: blockSize,
			BudgetBytes: per * int64(blocks)}, nil
	}
}

func TestAdmitNeverFits(t *testing.T) {
	g := New(Config{Specs: specFor(4, 16), Registry: metrics.NewRegistry()})
	// 4 blocks × 16 tokens = 64-token capacity; a 100-token context can
	// never complete.
	if _, err := g.Admit("l", "c", 90, 10); !errors.Is(err, ErrNeverFits) {
		t.Fatalf("Admit(100 tokens into 64-token pool) = %v, want ErrNeverFits", err)
	}
	// Exactly at capacity is admissible.
	lease, err := g.Admit("l", "c", 54, 10)
	if err != nil {
		t.Fatalf("Admit(64 tokens) failed: %v", err)
	}
	lease.Release()
}

func TestAdmitQuota(t *testing.T) {
	g := New(Config{Specs: specFor(64, 16), QuotaTokens: 100,
		Registry: metrics.NewRegistry()})
	first, err := g.Admit("l", "alice", 60, 20) // 80 in flight
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if _, err := g.Admit("l", "alice", 30, 10); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota admit = %v, want ErrQuotaExceeded", err)
	}
	// Quotas are per client: another tenant is unaffected.
	other, err := g.Admit("l", "bob", 30, 10)
	if err != nil {
		t.Fatalf("other client admit: %v", err)
	}
	other.Release()
	// Releasing refunds the charge, reopening headroom.
	first.Release()
	lease, err := g.Admit("l", "alice", 30, 10)
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	lease.Release()
	first.Release() // idempotent: must not double-refund
	if _, err := g.Admit("l", "alice", 60, 40); err != nil {
		t.Fatalf("quota accounting drifted after double release: %v", err)
	}
}

func TestWatermarkHysteresis(t *testing.T) {
	g := New(Config{Specs: specFor(10, 16), HighWatermark: 0.8, LowWatermark: 0.4,
		Registry: metrics.NewRegistry()})
	hold, err := g.Admit("l", "c", 100, 28) // fits: 128 tokens = 8 blocks
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if err := hold.Reserve(128); err != nil { // 8 of 10 blocks: util 0.8
		t.Fatalf("reserve: %v", err)
	}
	if !g.Shedding() {
		t.Fatal("not shedding at util 0.8 with high watermark 0.8")
	}
	if _, err := g.Admit("l", "c2", 16, 16); !errors.Is(err, ErrShedding) {
		t.Fatalf("admit while shedding = %v, want ErrShedding", err)
	}
	// Hysteresis: recovery needs util <= low, and releasing everything
	// gets there.
	hold.Release()
	if g.Shedding() {
		t.Fatal("still shedding after pool drained below low watermark")
	}
	lease, err := g.Admit("l", "c2", 16, 16)
	if err != nil {
		t.Fatalf("admit after recovery: %v", err)
	}
	lease.Release()
}

func TestSetPressureShrinksAndRecovers(t *testing.T) {
	g := New(Config{Specs: specFor(10, 16), HighWatermark: 0.8, LowWatermark: 0.5,
		Registry: metrics.NewRegistry()})
	hold, err := g.Admit("l", "c", 48, 16) // 64 tokens = 4 blocks
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if err := hold.Reserve(64); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	if g.Shedding() {
		t.Fatal("shedding at util 0.4")
	}
	// 80% pressure withholds 8 of 10 blocks: 4 used of 2 effective.
	g.SetPressure("l", 0.8)
	if !g.Shedding() {
		t.Fatal("not shedding with effective capacity below current usage")
	}
	st := g.Snapshot()
	if len(st.Lanes) != 1 || st.Lanes[0].EffectiveBlocks != 2 || !st.Lanes[0].Shedding {
		t.Fatalf("snapshot under pressure: %+v", st.Lanes)
	}
	// A grow beyond the effective cap must fail even with free blocks.
	if err := hold.Grow(64); !errors.Is(err, kvpool.ErrOutOfBlocks) {
		t.Fatalf("grow under pressure = %v, want ErrOutOfBlocks", err)
	}
	// Lifting the pressure recovers: util back to 4/10 <= 0.5.
	g.SetPressure("l", 0)
	if g.Shedding() {
		t.Fatal("still shedding after pressure lifted")
	}
	hold.Release()
	if st := g.Snapshot(); st.Lanes[0].FreeBlocks != st.Lanes[0].TotalBlocks {
		t.Fatalf("pool not fully free after release: %+v", st.Lanes[0])
	}
}

func TestLeasePreemptReleasesBlocksKeepsQuota(t *testing.T) {
	g := New(Config{Specs: specFor(8, 16), QuotaTokens: 200,
		Registry: metrics.NewRegistry()})
	lease, err := g.Admit("l", "c", 64, 36)
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if err := lease.Reserve(64); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	lease.Preempt()
	if lease.Held() {
		t.Fatal("lease still holds blocks after preemption")
	}
	st := g.Snapshot()
	if st.Lanes[0].FreeBlocks != st.Lanes[0].TotalBlocks {
		t.Fatalf("blocks not returned on preempt: %+v", st.Lanes[0])
	}
	if st.Lanes[0].Preemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", st.Lanes[0].Preemptions)
	}
	// The quota charge survives preemption (the request is still live):
	// the client holds 100 of 200, so 120 more must be rejected.
	if _, err := g.Admit("l", "c", 100, 20); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("quota dropped across preemption: %v", err)
	}
	// Readmission re-reserves on the same lease.
	if err := lease.Reserve(64); err != nil {
		t.Fatalf("re-reserve after preempt: %v", err)
	}
	lease.Release()
	if _, ok := g.Snapshot().Clients["c"]; ok {
		t.Fatal("client quota entry not cleared after terminal release")
	}
}

func TestAdmitTokensByMode(t *testing.T) {
	opt := New(Config{Specs: specFor(8, 16), Registry: metrics.NewRegistry()})
	if got := opt.AdmitTokens(100, 28); got != 100 {
		t.Errorf("optimistic AdmitTokens = %d, want prompt-only 100", got)
	}
	cons := New(Config{Specs: specFor(8, 16), Conservative: true,
		Registry: metrics.NewRegistry()})
	if got := cons.AdmitTokens(100, 28); got != 128 {
		t.Errorf("conservative AdmitTokens = %d, want full context 128", got)
	}
	var nilGov *Governor
	if nilGov.Conservative() || nilGov.Shedding() {
		t.Error("nil governor must report no mode and no shedding")
	}
	if lease, err := nilGov.Admit("l", "c", 1, 1); lease != nil || err != nil {
		t.Errorf("nil governor Admit = (%v, %v), want (nil, nil)", lease, err)
	}
}

// segsFor builds a shareable prompt description: one group segment plus a
// private per-request tail, the shape the gateway produces.
func segsFor(group string, shared, private int) []prefixcache.Segment {
	return []prefixcache.Segment{
		{ID: group, Tokens: shared},
		{ID: "tail", Tokens: private, Private: true},
	}
}

func TestCachedReserveDonateAndHit(t *testing.T) {
	g := New(Config{Specs: specFor(64, 16), EnableCache: true,
		Registry: metrics.NewRegistry()})
	if !g.CacheEnabled() {
		t.Fatal("cache should be enabled")
	}
	segs := segsFor("sys", 48, 16)

	// Cold request: miss, full reservation, then donation after prefill.
	l1, err := g.Admit("lane", "c1", 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := l1.ReserveWithPrefix(segs, 64, 64, 0)
	if err != nil || cached != 0 {
		t.Fatalf("cold reserve: cached=%d err=%v", cached, err)
	}
	if n := l1.DonatePrefix(segs); n != 3 { // 48 shared tokens → 3 blocks
		t.Fatalf("donated %d blocks, want 3", n)
	}

	// Second request sharing the prefix: hit covering the 3 blocks.
	l2, err := g.Admit("lane", "c2", 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	cached, err = l2.ReserveWithPrefix(segs, 64, 64, 0)
	if err != nil || cached != 48 {
		t.Fatalf("warm reserve: cached=%d err=%v", cached, err)
	}
	// min_prefix_tokens above the match turns it into a miss.
	l3, err := g.Admit("lane", "c3", 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	cached, err = l3.ReserveWithPrefix(segs, 64, 64, 64)
	if err != nil || cached != 0 {
		t.Fatalf("min-prefix reserve: cached=%d err=%v", cached, err)
	}

	st := g.CacheSnapshot()
	if !st.Enabled || st.RetainedBlocks != 3 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("cache snapshot %+v", st)
	}
	if kv := g.Snapshot(); kv.Lanes[0].Cache == nil {
		t.Error("lane status must carry cache stats when enabled")
	}

	l1.Release()
	l2.Release()
	l3.Release()
	if n := g.FlushCache(); n != 3 {
		t.Fatalf("flush released %d, want 3", n)
	}
	if st := g.CacheSnapshot(); st.RetainedBlocks != 0 {
		t.Fatalf("retained %d after flush", st.RetainedBlocks)
	}
	// Everything released and flushed: the pool must be exactly full.
	if free := g.Snapshot().Lanes[0].FreeBlocks; free != 64 {
		t.Fatalf("free=%d at end, want 64", free)
	}
}

// TestCacheEvictionUnderWatermark drives the lane over its high watermark
// with cache-retained blocks present and checks the governor reclaims the
// cache instead of shedding live traffic.
func TestCacheEvictionUnderWatermark(t *testing.T) {
	g := New(Config{Specs: specFor(16, 16), EnableCache: true,
		HighWatermark: 0.8, LowWatermark: 0.4, Registry: metrics.NewRegistry()})
	// Donate 8 blocks of cache (two 64-token groups).
	for _, grp := range []string{"a", "b"} {
		l, err := g.Admit("lane", "c", 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.ReserveWithPrefix(segsFor(grp, 64, 0), 64, 64, 0); err != nil {
			t.Fatal(err)
		}
		l.DonatePrefix(segsFor(grp, 64, 0))
		l.Release()
	}
	if st := g.CacheSnapshot(); st.RetainedBlocks != 8 {
		t.Fatalf("retained %d, want 8", st.RetainedBlocks)
	}
	// A live request pushing usage to 14/16 (87%) crosses the high
	// watermark; admission must evict cache down to the low mark and
	// keep serving rather than shed.
	l, err := g.Admit("lane", "c", 96, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReserveWithPrefix(nil, 96, 96, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Admit("lane", "c", 16, 1); err != nil {
		t.Fatalf("admission after cache eviction: %v", err)
	}
	if st := g.CacheSnapshot(); st.Evictions == 0 {
		t.Error("watermark pressure should have evicted cache blocks")
	}
	if g.Shedding() {
		t.Error("lane must not shed while cold cache is reclaimable")
	}
}

// TestCachedReserveExhaustionRetry fills the pool with cache, then checks
// a miss-path reservation reclaims cache via the evict-and-retry path.
func TestCachedReserveExhaustionRetry(t *testing.T) {
	g := New(Config{Specs: specFor(8, 16), EnableCache: true,
		HighWatermark: 0.999, LowWatermark: 0.99, Registry: metrics.NewRegistry()})
	l, err := g.Admit("lane", "c", 112, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReserveWithPrefix(segsFor("big", 112, 0), 112, 112, 0); err != nil {
		t.Fatal(err)
	}
	l.DonatePrefix(segsFor("big", 112, 0))
	l.Release() // pool now mostly retained by the tree
	if st := g.CacheSnapshot(); st.RetainedBlocks != 7 {
		t.Fatalf("retained %d, want 7", st.RetainedBlocks)
	}
	l2, err := g.Admit("lane", "c", 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := l2.ReserveWithPrefix(segsFor("other", 64, 0), 64, 64, 0)
	if err != nil {
		t.Fatalf("reserve should evict-and-retry: %v", err)
	}
	if cached != 0 {
		t.Fatalf("different group must miss, got %d cached", cached)
	}
	l2.Release()
}
